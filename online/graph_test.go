package online

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func est(np int, v float64) []float64 {
	out := make([]float64, np)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSubmitGraphChain(t *testing.T) {
	s := newStarted(t, 3, 4)
	var mu sync.Mutex
	var order []string
	node := func(name string, deps ...int) GraphTask {
		return GraphTask{
			Task: Task{
				Name:  name,
				EstMs: est(3, 1),
				Run: func(ctx context.Context, p ProcID) error {
					mu.Lock()
					order = append(order, name)
					mu.Unlock()
					return nil
				},
			},
			Deps: deps,
		}
	}
	h, err := s.SubmitGraph([]GraphTask{node("a"), node("b", 0), node("c", 1)})
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if want := []string{"a", "b", "c"}; fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("execution order = %v, want %v", order, want)
	}
}

func TestSubmitGraphValidation(t *testing.T) {
	s := newStarted(t, 2, 4)
	if _, err := s.SubmitGraph(nil); err == nil {
		t.Error("empty graph accepted")
	}
	mk := func(deps ...int) GraphTask { return GraphTask{Task: Task{EstMs: est(2, 1)}, Deps: deps} }
	if _, err := s.SubmitGraph([]GraphTask{mk(5)}); err == nil {
		t.Error("out-of-range dependency accepted")
	}
	if _, err := s.SubmitGraph([]GraphTask{mk(0)}); err == nil {
		t.Error("self dependency accepted")
	}
	if _, err := s.SubmitGraph([]GraphTask{mk(1), mk(0)}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := s.SubmitGraph([]GraphTask{{Task: Task{EstMs: est(3, 1)}}}); err == nil {
		t.Error("wrong estimate count accepted")
	}
	// Validation failures must not have submitted anything.
	if st := s.Stats(); st.Submitted != 0 {
		t.Errorf("Submitted = %d after rejected graphs, want 0", st.Submitted)
	}
}

func TestSubmitGraphFailurePropagates(t *testing.T) {
	s := newStarted(t, 2, 4)
	boom := errors.New("boom")
	tasks := []GraphTask{
		{Task: Task{Name: "ok", EstMs: est(2, 1)}},
		{Task: Task{Name: "fail", EstMs: est(2, 1), Run: func(context.Context, ProcID) error { return boom }}},
		{Task: Task{Name: "dep-of-fail", EstMs: est(2, 1)}, Deps: []int{1}},
		{Task: Task{Name: "dep-of-ok", EstMs: est(2, 1)}, Deps: []int{0}},
		{Task: Task{Name: "transitive", EstMs: est(2, 1)}, Deps: []int{2}},
	}
	h, err := s.SubmitGraph(tasks)
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if !errors.Is(res.Err, boom) {
		t.Fatalf("graph err = %v, want boom", res.Err)
	}
	if res.Results[0].Err != nil || res.Results[3].Err != nil {
		t.Errorf("independent branch failed: %v, %v", res.Results[0].Err, res.Results[3].Err)
	}
	if !errors.Is(res.Results[1].Err, boom) {
		t.Errorf("failing task err = %v", res.Results[1].Err)
	}
	for _, i := range []int{2, 4} {
		if !errors.Is(res.Results[i].Err, ErrDependency) {
			t.Errorf("dependent %d err = %v, want ErrDependency", i, res.Results[i].Err)
		}
	}
}

// TestSubmitGraphDependencyOrdering drives a random layered DAG through a
// concurrent scheduler and asserts, from inside every task, that all
// predecessors had finished before it started. Run with -race this also
// shakes out synchronisation bugs in the release path.
func TestSubmitGraphDependencyOrdering(t *testing.T) {
	s := newStarted(t, 4, 8)
	const n = 400
	rng := rand.New(rand.NewSource(7))
	finished := make([]atomic.Bool, n)
	tasks := make([]GraphTask, n)
	var violations atomic.Int32
	for i := 0; i < n; i++ {
		i := i
		var deps []int
		for d := 0; d < 3 && i > 0; d++ {
			deps = append(deps, rng.Intn(i))
		}
		tasks[i] = GraphTask{
			Task: Task{
				Name:  fmt.Sprintf("t%d", i),
				EstMs: []float64{1 + float64(i%5), 1 + float64((i*3)%7), 2, 3},
				Run: func(ctx context.Context, p ProcID) error {
					for _, d := range deps {
						if !finished[d].Load() {
							violations.Add(1)
						}
					}
					finished[i].Store(true)
					return nil
				},
			},
			Deps: deps,
		}
	}
	h, err := s.SubmitGraph(tasks)
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d tasks started before a predecessor finished", v)
	}
	for i := range finished {
		if !finished[i].Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
	if st := s.Stats(); st.Completed != n {
		t.Errorf("Completed = %d, want %d", st.Completed, n)
	}
}

// TestSubmitGraphConcurrentWithSubmits interleaves plain submissions with
// graph submissions from several goroutines.
func TestSubmitGraphConcurrentWithSubmits(t *testing.T) {
	s := newStarted(t, 4, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				h, err := s.SubmitGraph([]GraphTask{
					{Task: Task{Name: "a", EstMs: est(4, 1)}},
					{Task: Task{Name: "b", EstMs: est(4, 2)}, Deps: []int{0}},
					{Task: Task{Name: "c", EstMs: est(4, 3)}, Deps: []int{0}},
					{Task: Task{Name: "d", EstMs: est(4, 1)}, Deps: []int{1, 2}},
				})
				if err != nil {
					errs <- err
					return
				}
				if res := <-h.Done; res.Err != nil {
					errs <- res.Err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				h, err := s.Submit(Task{Name: "plain", EstMs: est(4, 1)})
				if err != nil {
					errs <- err
					return
				}
				if res := <-h.Done; res.Err != nil {
					errs <- res.Err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := 4*8*4 + 4*32
	if st := s.Stats(); st.Completed != want {
		t.Errorf("Completed = %d, want %d", st.Completed, want)
	}
}

func TestSubmitGraphAfterClose(t *testing.T) {
	s, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Close()
	if _, err := s.SubmitGraph([]GraphTask{{Task: Task{EstMs: est(2, 1)}}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitGraph after Close err = %v, want ErrClosed", err)
	}
}

func TestDrainFinishesGraph(t *testing.T) {
	s := newStarted(t, 2, 4)
	const n = 30
	tasks := make([]GraphTask, n)
	for i := range tasks {
		deps := []int{}
		if i > 0 {
			deps = append(deps, i-1)
		}
		tasks[i] = GraphTask{Task: Task{Name: fmt.Sprintf("t%d", i), EstMs: est(2, 1)}, Deps: deps}
	}
	h, err := s.SubmitGraph(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Drain must let the chain's internal releases keep flowing even
	// though external admission stops immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-h.Done:
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	default:
		t.Fatal("graph not finished after Drain returned")
	}
	if _, err := s.Submit(Task{EstMs: est(2, 1)}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Drain err = %v, want ErrClosed", err)
	}
	if st := s.Stats(); st.Completed != n || st.Submitted != n {
		t.Errorf("stats = %+v, want %d completed", st, n)
	}
}

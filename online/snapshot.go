package online

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
)

// SnapshotVersion is the format version written by Snapshot.WriteJSON.
// ReadSnapshot and Restore accept any version from 1 up to this value:
// version 2 added per-task attempt counts and per-processor breaker state,
// both optional, so a version-1 snapshot restores with zeroed attempts and
// closed breakers. Bump on any incompatible schema change.
const SnapshotVersion = 2

// SnapshotTask is one serialised task. Run functions cannot cross a
// process boundary, so the snapshot carries the placement inputs and the
// opaque Payload; the restoring process rebuilds Run via a RebuildFunc.
type SnapshotTask struct {
	Name    string          `json:"name"`
	EstMs   []float64       `json:"est_ms"`
	XferMs  []float64       `json:"xfer_ms,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Deps holds intra-graph dependency indices (into the enclosing
	// SnapshotGraph.Tasks); always empty for independent tasks.
	Deps []int `json:"deps,omitempty"`
	// Attempts is how many execution attempts the task had already used at
	// capture time (version 2+); a restored task resumes its retry budget
	// from here instead of starting over.
	Attempts int `json:"attempts,omitempty"`
}

// SnapshotBreaker is one processor's circuit-breaker state at capture time
// (version 2+). Restore re-arms an open breaker with a fresh cooldown: the
// fault that tripped it may well outlive the restart.
type SnapshotBreaker struct {
	State            string `json:"state"` // "closed", "open" or "half-open"
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	Trips            int    `json:"trips,omitempty"`
}

// SnapshotGraph is the unfinished frontier of one SubmitGraph job:
// the not-yet-finished tasks with dependency edges remapped among
// themselves (edges to finished predecessors are dropped, nodes doomed by
// a failed predecessor are excluded).
type SnapshotGraph struct {
	Tasks []SnapshotTask `json:"tasks"`
}

// Snapshot is a versioned, JSON-serialisable capture of a scheduler's
// accepted-but-unfinished work: independent tasks still waiting for a
// processor plus the unfinished frontier of every in-flight graph.
//
// Semantics are at-least-once: a task that was executing at capture time
// is included (its completion had not been observed), so after a restore
// it runs again. Tasks whose completion was recorded are never included.
type Snapshot struct {
	Version int     `json:"version"`
	Procs   int     `json:"procs"`
	Alpha   float64 `json:"alpha"`

	Tasks  []SnapshotTask  `json:"tasks,omitempty"`
	Graphs []SnapshotGraph `json:"graphs,omitempty"`
	// Breakers holds per-processor breaker state, indexed by processor
	// (version 2+; empty when the captured scheduler ran without breakers).
	Breakers []SnapshotBreaker `json:"breakers,omitempty"`
}

// Count returns the total number of tasks the snapshot carries.
func (sn *Snapshot) Count() int {
	n := len(sn.Tasks)
	for _, g := range sn.Graphs {
		n += len(g.Tasks)
	}
	return n
}

// snapTask deep-copies a task's serialisable fields.
func snapTask(t *Task, deps []int, attempts int) SnapshotTask {
	return SnapshotTask{
		Name:     t.Name,
		EstMs:    append([]float64(nil), t.EstMs...),
		XferMs:   append([]float64(nil), t.XferMs...),
		Payload:  append(json.RawMessage(nil), t.Payload...),
		Deps:     deps,
		Attempts: attempts,
	}
}

// Snapshot captures the scheduler's accepted-but-unfinished work. It is
// meant for the drain-timeout path: quiesce first (Quiesce), snapshot
// what did not finish in time, then Close — tasks the snapshot captured
// may still fail with ErrClosed locally, but the snapshot preserves them
// for a restored scheduler. Snapshotting a live, un-drained scheduler is
// safe too (the queues are locked briefly); it simply races with ongoing
// placements, which only moves tasks between the "queued" (captured) and
// "executing" (captured, at-least-once) cases.
func (s *Scheduler) Snapshot() (*Snapshot, error) {
	if !s.started.Load() {
		return nil, fmt.Errorf("online: Snapshot before Start")
	}
	sn := &Snapshot{Version: SnapshotVersion, Procs: s.np, Alpha: s.Alpha()}

	// Queued independent tasks: gather the stripes into the FCFS queue and
	// copy every externally-submitted waiter (graph-internal tasks have no
	// done channel; their jobs capture them below, including the ones
	// already released into this queue).
	s.pend.mu.Lock()
	q := s.gatherLocked()
	s.pend.q = q
	for _, lt := range q {
		if lt.done != nil {
			sn.Tasks = append(sn.Tasks, snapTask(&lt.task, nil, int(lt.attempt.Load())))
		}
	}
	s.pend.mu.Unlock()

	// Independent tasks waiting out a retry backoff (graph-internal
	// retries are captured by their job's frontier below).
	for _, lt := range s.retrySnapshot() {
		sn.Tasks = append(sn.Tasks, snapTask(&lt.task, nil, int(lt.attempt.Load())))
	}

	for _, j := range s.graphJobs() {
		if sg, ok := j.snapshotFrontier(); ok {
			sn.Graphs = append(sn.Graphs, sg)
		}
	}

	if s.brk != nil {
		for _, ph := range s.ProcHealth() {
			sn.Breakers = append(sn.Breakers, SnapshotBreaker{
				State:            ph.State,
				ConsecutiveFails: ph.ConsecutiveFails,
				Trips:            ph.Trips,
			})
		}
	}
	return sn, nil
}

// WriteJSON writes the snapshot as indented JSON.
func (sn *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sn)
}

// ReadSnapshot parses a snapshot written by WriteJSON and validates its
// version.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sn); err != nil {
		return nil, fmt.Errorf("online: invalid snapshot: %w", err)
	}
	if sn.Version < 1 || sn.Version > SnapshotVersion {
		return nil, fmt.Errorf("online: snapshot version %d, want 1..%d", sn.Version, SnapshotVersion)
	}
	return &sn, nil
}

// RebuildFunc reconstructs a task's Run function from its serialised
// form, typically by interpreting SnapshotTask.Payload. Returning an
// error aborts the restore.
type RebuildFunc func(SnapshotTask) (func(context.Context, ProcID) error, error)

// Restore resubmits a snapshot's tasks into s through the normal
// admission path: independent tasks via SubmitCtx (blocking on the queue
// bound, honouring ctx) and graph frontiers via SubmitGraph. rebuild
// reconstructs each task's Run function; a nil rebuild restores every
// task as a no-op (useful for tests and for draining a backlog without
// side effects). Restore returns the number of tasks submitted; on error
// the count covers what was submitted before the failure.
//
// The target scheduler must be started and have the same processor count
// as the snapshot (estimate vectors are per-processor).
func Restore(ctx context.Context, s *Scheduler, sn *Snapshot, rebuild RebuildFunc) (int, error) {
	if sn.Version < 1 || sn.Version > SnapshotVersion {
		return 0, fmt.Errorf("online: snapshot version %d, want 1..%d", sn.Version, SnapshotVersion)
	}
	if sn.Procs != s.np {
		return 0, fmt.Errorf("online: snapshot for %d processors, scheduler has %d", sn.Procs, s.np)
	}
	// Re-arm breaker state first, so restored work immediately avoids the
	// processors that were unhealthy at capture time (no-op for version-1
	// snapshots or breaker-less schedulers).
	for p, sb := range sn.Breakers {
		if p >= s.np {
			break
		}
		s.restoreBreaker(p, sb)
	}
	restoreTask := func(st SnapshotTask) (Task, error) {
		t := Task{Name: st.Name, EstMs: st.EstMs, XferMs: st.XferMs, Payload: st.Payload, restoredAttempts: st.Attempts}
		if rebuild != nil {
			run, err := rebuild(st)
			if err != nil {
				return Task{}, fmt.Errorf("online: rebuild %q: %w", st.Name, err)
			}
			t.Run = run
		}
		return t, nil
	}
	n := 0
	for _, st := range sn.Tasks {
		t, err := restoreTask(st)
		if err != nil {
			return n, err
		}
		if _, err := s.SubmitCtx(ctx, t); err != nil {
			return n, fmt.Errorf("online: restore %q: %w", st.Name, err)
		}
		n++
	}
	for gi, sg := range sn.Graphs {
		gts := make([]GraphTask, len(sg.Tasks))
		for i, st := range sg.Tasks {
			t, err := restoreTask(st)
			if err != nil {
				return n, err
			}
			gts[i] = GraphTask{Task: t, Deps: st.Deps}
		}
		if _, err := s.SubmitGraph(gts); err != nil {
			return n, fmt.Errorf("online: restore graph %d: %w", gi, err)
		}
		n += len(gts)
	}
	return n, nil
}

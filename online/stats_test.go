package online

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestStatsDuringCloseRace pins the drain-path fix: Stats may be called
// concurrently with completion callbacks and Close, and once Close has
// returned every snapshot is the final one, published exactly once.
// Run with -race this also proves the accesses are synchronised.
func TestStatsDuringCloseRace(t *testing.T) {
	s, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Stats()
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if _, err := s.Submit(Task{Name: "t", EstMs: []float64{1, 2, 3, 4}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	close(stop)
	wg.Wait()

	final := s.Stats()
	for i := 0; i < 10; i++ {
		if got := s.Stats(); !reflect.DeepEqual(got, final) {
			t.Fatalf("post-Close Stats differ:\n%+v\n%+v", got, final)
		}
	}
	// Every accepted task either completed or was failed at close; the
	// final snapshot must be internally consistent.
	if final.Completed > final.Submitted {
		t.Errorf("Completed %d > Submitted %d", final.Completed, final.Submitted)
	}
	perProc := 0
	for _, c := range final.PerProc {
		perProc += c
	}
	if perProc != final.Completed {
		t.Errorf("per-proc sum %d != Completed %d", perProc, final.Completed)
	}
	if final.Sojourn.Count != final.Completed {
		t.Errorf("Sojourn.Count = %d, want %d", final.Sojourn.Count, final.Completed)
	}
}

// TestStatsHistogramMergeAcrossShards checks that the per-processor
// latency shards merge into one coherent distribution: counts add up,
// per-processor extrema bound the merged extrema, and percentiles are
// ordered.
func TestStatsHistogramMergeAcrossShards(t *testing.T) {
	s := newStarted(t, 4, 16)
	const n = 300
	var handles []*Handle
	for i := 0; i < n; i++ {
		h, err := s.Submit(Task{
			Name:  fmt.Sprintf("t%d", i),
			EstMs: []float64{1 + float64(i%4), 1 + float64((i+1)%4), 1 + float64((i+2)%4), 1 + float64((i+3)%4)},
			Run: func(ctx context.Context, p ProcID) error {
				time.Sleep(time.Duration(50+i%7*20) * time.Microsecond)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res := <-h.Done; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := s.Stats()
	if st.Sojourn.Count != n {
		t.Fatalf("Sojourn.Count = %d, want %d", st.Sojourn.Count, n)
	}
	if st.QueueWait.Count != n {
		t.Fatalf("QueueWait.Count = %d, want %d", st.QueueWait.Count, n)
	}
	busyProcs := 0
	for _, c := range st.PerProc {
		if c > 0 {
			busyProcs++
		}
	}
	if busyProcs < 2 {
		t.Fatalf("merge test degenerate: only %d processors used", busyProcs)
	}
	for _, sum := range []LatencySummary{st.Sojourn, st.QueueWait} {
		if sum.MinMs < 0 || sum.MaxMs < sum.MinMs {
			t.Errorf("extrema inverted: %+v", sum)
		}
		if sum.P50Ms > sum.P90Ms || sum.P90Ms > sum.P95Ms || sum.P95Ms > sum.P99Ms {
			t.Errorf("percentiles not monotone: %+v", sum)
		}
		if sum.P99Ms > sum.MaxMs || sum.P50Ms < sum.MinMs {
			t.Errorf("percentiles outside extrema: %+v", sum)
		}
	}
	// The tasks sleep ≥ 50µs, so sojourn latency must reflect real time.
	if st.Sojourn.P50Ms <= 0.01 {
		t.Errorf("Sojourn.P50Ms = %v, want > 0.01", st.Sojourn.P50Ms)
	}
	// Queue wait never exceeds sojourn at every percentile (wait is a
	// prefix of the sojourn interval).
	if st.QueueWait.MaxMs > st.Sojourn.MaxMs {
		t.Errorf("QueueWait.MaxMs %v > Sojourn.MaxMs %v", st.QueueWait.MaxMs, st.Sojourn.MaxMs)
	}
}

func TestAutoTuneLoosensUnderWaiting(t *testing.T) {
	// Two equal processors, α=1: every contended task waits for proc 0
	// (its best) even though proc 1 idles at identical cost. The tuner
	// must observe the waiting and raise α.
	s, err := NewWithConfig(Config{
		Procs: 2, Alpha: 1, QueueLimit: -1,
		AutoTune: &AutoTuneConfig{Every: 16, Step: 1.5, MaxAlpha: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	var handles []*Handle
	for i := 0; i < 400; i++ {
		h, err := s.Submit(Task{
			Name: "t", EstMs: []float64{1, 1.01},
			Run: func(ctx context.Context, p ProcID) error {
				time.Sleep(100 * time.Microsecond)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		<-h.Done
	}
	if a := s.Stats().Alpha; a <= 1 || a > 8 {
		t.Errorf("alpha = %v after sustained waiting, want in (1, 8]", a)
	}
}

func TestAutoTuneTightensOnRegret(t *testing.T) {
	// α=8 admits an alternative 5× slower than the best estimate; mean
	// window regret 5 ≫ target 1.5, so the tuner must lower α.
	s, err := NewWithConfig(Config{
		Procs: 2, Alpha: 8, QueueLimit: -1,
		AutoTune: &AutoTuneConfig{Every: 16, Step: 1.5, MaxAlpha: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	var handles []*Handle
	for i := 0; i < 400; i++ {
		h, err := s.Submit(Task{
			Name: "t", EstMs: []float64{1, 5},
			Run: func(ctx context.Context, p ProcID) error {
				time.Sleep(100 * time.Microsecond)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		<-h.Done
	}
	if a := s.Stats().Alpha; a >= 8 {
		t.Errorf("alpha = %v after sustained regret, want < 8", a)
	}
}

func TestAutoTuneConfigValidation(t *testing.T) {
	cases := []AutoTuneConfig{
		{TargetRegret: 0.5},
		{Step: 0.9},
		{MinAlpha: 2, MaxAlpha: 1},
	}
	for i, c := range cases {
		c := c
		if _, err := NewWithConfig(Config{Procs: 1, Alpha: 4, AutoTune: &c}); err == nil {
			t.Errorf("case %d: invalid AutoTuneConfig accepted: %+v", i, c)
		}
	}
	if _, err := NewWithConfig(Config{Procs: 1, Alpha: 32, AutoTune: &AutoTuneConfig{}}); err == nil {
		t.Error("alpha outside default bounds accepted")
	}
}

func TestDrainTimeout(t *testing.T) {
	s := newStarted(t, 1, 1)
	block := make(chan struct{})
	defer close(block)
	h, err := s.Submit(Task{
		Name: "stuck", EstMs: []float64{1},
		Run: func(ctx context.Context, p ProcID) error {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain err = %v, want DeadlineExceeded", err)
	}
	// The stuck task was cancelled by the close fallthrough.
	if res := <-h.Done; res.Err != nil {
		t.Fatalf("stuck task err = %v", res.Err)
	}
}

package online

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fullScheduler returns a started scheduler whose single processor is
// blocked and whose admission queue is filled to its limit, plus the
// release channel for the blocker.
func fullScheduler(t *testing.T, limit int) (*Scheduler, chan struct{}) {
	t.Helper()
	s, err := NewWithConfig(Config{Procs: 1, Alpha: 1, QueueLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	blocker, started, release := blockingTask("blocker", []float64{1})
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < limit; i++ {
		if _, err := s.Submit(Task{Name: "fill", EstMs: []float64{1}}); err != nil {
			t.Fatalf("fill %d/%d: %v", i, limit, err)
		}
	}
	return s, release
}

func TestSubmitQueueFull(t *testing.T) {
	s, release := fullScheduler(t, 4)
	defer close(release)
	if _, err := s.Submit(Task{Name: "over", EstMs: []float64{1}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue err = %v, want ErrQueueFull", err)
	}
	st := s.Stats()
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if st.Queued != 4 {
		t.Errorf("Queued = %d, want 4", st.Queued)
	}
}

func TestSubmitCtxBlocksUntilSpace(t *testing.T) {
	s, release := fullScheduler(t, 2)
	submitted := make(chan error, 1)
	go func() {
		_, err := s.SubmitCtx(context.Background(), Task{Name: "waiter", EstMs: []float64{1}})
		submitted <- err
	}()
	select {
	case err := <-submitted:
		t.Fatalf("SubmitCtx returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(release) // blocker finishes; the queue drains and space frees
	if err := <-submitted; err != nil {
		t.Fatalf("SubmitCtx after space freed: %v", err)
	}
}

func TestSubmitCtxCancel(t *testing.T) {
	s, release := fullScheduler(t, 2)
	defer close(release)
	ctx, cancel := context.WithCancel(context.Background())
	submitted := make(chan error, 1)
	go func() {
		_, err := s.SubmitCtx(ctx, Task{Name: "cancelled", EstMs: []float64{1}})
		submitted <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-submitted; !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx err = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
}

func TestSubmitCtxUnblocksOnClose(t *testing.T) {
	s, release := fullScheduler(t, 2)
	defer close(release)
	submitted := make(chan error, 1)
	go func() {
		_, err := s.SubmitCtx(context.Background(), Task{Name: "w", EstMs: []float64{1}})
		submitted <- err
	}()
	time.Sleep(10 * time.Millisecond)
	go s.Close()
	if err := <-submitted; !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitCtx during Close err = %v, want ErrClosed", err)
	}
}

func TestUnboundedQueue(t *testing.T) {
	s, err := NewWithConfig(Config{Procs: 1, Alpha: 1, QueueLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	blocker, started, release := blockingTask("b", []float64{1})
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	var handles []*Handle
	for i := 0; i < 2*DefaultQueueLimit/512; i++ { // well past any small bound
		h, err := s.Submit(Task{EstMs: []float64{1}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	close(release)
	for _, h := range handles {
		if res := <-h.Done; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

// TestBackpressureManyBlockedSubmitters exercises the space-broadcast path
// under contention: many SubmitCtx callers blocked on a small queue all
// complete once the processor starts draining.
func TestBackpressureManyBlockedSubmitters(t *testing.T) {
	s, release := fullScheduler(t, 2)
	const waiters = 16
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := s.SubmitCtx(context.Background(), Task{Name: "w", EstMs: []float64{1}})
			if err != nil {
				errs <- err
				return
			}
			if res := <-h.Done; res.Err != nil {
				errs <- res.Err
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

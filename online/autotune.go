package online

import (
	"fmt"
	"math"
)

// AutoTuneConfig enables live adjustment of the flexibility factor α from
// observed alternative-assignment regret.
//
// The signal: every alternative assignment records the ratio of the chosen
// processor's estimated cost to the best processor's estimate (≥ 1 — how
// much slower the task is expected to run for not waiting). Each window of
// Every completions, the tuner compares the window's mean ratio against
// TargetRegret:
//
//   - mean ratio above target — the threshold admits alternatives that are
//     too much slower than waiting would have been; α is tightened
//     (divided by Step).
//   - mean ratio at or below target while tasks are waiting in the queue —
//     the threshold is leaving processors idle that would have been
//     acceptable; α is loosened (multiplied by Step).
//
// α stays within [MinAlpha, MaxAlpha]. The loop runs on the sweeper
// goroutine, so tuning adds no synchronisation to the submit or completion
// paths (the live α is a single atomic word).
type AutoTuneConfig struct {
	// TargetRegret is the acceptable mean chosen-cost/best-estimate ratio
	// over a window, e.g. 1.5 = "alternatives may average 50% slower than
	// the best estimate". Default 1.5; must be > 1.
	TargetRegret float64
	// Every is the number of completions between adjustments. Default 128.
	Every int
	// Step is the multiplicative adjustment per decision. Default 1.05;
	// must be > 1.
	Step float64
	// MinAlpha and MaxAlpha bound the tuned α. Defaults 1 and 16.
	MinAlpha, MaxAlpha float64
}

// withDefaults validates and fills in the zero fields; a nil receiver
// (auto-tuning disabled) passes through.
func (c *AutoTuneConfig) withDefaults(alpha float64) (*AutoTuneConfig, error) {
	if c == nil {
		return nil, nil
	}
	out := *c
	if out.TargetRegret == 0 {
		out.TargetRegret = 1.5
	}
	if out.Every == 0 {
		out.Every = 128
	}
	if out.Step == 0 {
		out.Step = 1.05
	}
	if out.MinAlpha == 0 {
		out.MinAlpha = 1
	}
	if out.MaxAlpha == 0 {
		out.MaxAlpha = 16
	}
	switch {
	case out.TargetRegret <= 1:
		return nil, fmt.Errorf("online: AutoTune.TargetRegret must be > 1, got %v", out.TargetRegret)
	case out.Every < 0:
		return nil, fmt.Errorf("online: AutoTune.Every must be >= 0, got %v", out.Every)
	case out.Step <= 1:
		return nil, fmt.Errorf("online: AutoTune.Step must be > 1, got %v", out.Step)
	case out.MinAlpha < 1 || out.MaxAlpha < out.MinAlpha:
		return nil, fmt.Errorf("online: AutoTune alpha bounds [%v, %v] invalid", out.MinAlpha, out.MaxAlpha)
	case alpha < out.MinAlpha || alpha > out.MaxAlpha:
		return nil, fmt.Errorf("online: initial alpha %v outside AutoTune bounds [%v, %v]", alpha, out.MinAlpha, out.MaxAlpha)
	}
	return &out, nil
}

// tuner is the sweeper-private state of the auto-tune loop: the cumulative
// counters at the previous adjustment, for window deltas.
type tuner struct {
	lastCompleted int
	lastAlt       int
	lastRegret    float64
}

// maybeTune runs one adjustment decision if a full window of completions
// has elapsed. Called only from the sweeper goroutine.
func (tn *tuner) maybeTune(s *Scheduler) {
	cfg := s.tune
	if cfg == nil {
		return
	}
	completed := int(s.completed.Load())
	if completed-tn.lastCompleted < cfg.Every {
		return
	}
	alt, regret := 0, 0.0
	for p := range s.procs {
		t := &s.procs[p].tele
		t.mu.Lock()
		alt += t.alt
		regret += t.regretSum
		t.mu.Unlock()
	}
	dAlt := alt - tn.lastAlt
	dRegret := regret - tn.lastRegret
	tn.lastCompleted, tn.lastAlt, tn.lastRegret = completed, alt, regret

	alpha := s.Alpha()
	switch {
	case dAlt > 0 && dRegret/float64(dAlt) > cfg.TargetRegret:
		alpha = math.Max(cfg.MinAlpha, alpha/cfg.Step)
	case s.queued.Load() > 0:
		alpha = math.Min(cfg.MaxAlpha, alpha*cfg.Step)
	default:
		return
	}
	s.alphaBits.Store(math.Float64bits(alpha))
}

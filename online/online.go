// Package online applies the APT scheduling rule to real work at runtime.
//
// Where repro/apt simulates schedules against a measured lookup table,
// this package dispatches actual Go functions onto a fixed set of worker
// "processors" (one goroutine each), deciding placements live with the
// thesis's Algorithm 1: run a task on its estimated-fastest processor if
// that processor is idle, otherwise on the cheapest idle alternative whose
// estimated execution-plus-transfer cost stays within α times the best
// estimate, otherwise keep it queued until the best processor frees up.
//
// The scheduler is built for sustained traffic from many submitters:
//
//   - The submit path is striped. When the system keeps up (nothing
//     waiting), placement claims an idle processor with a single
//     compare-and-swap and hands the task straight to that processor's run
//     queue — no global lock is taken, so submit throughput scales with
//     processor and submitter count.
//   - Waiting tasks go to a bounded admission queue (per-stripe locks on
//     the way in). Submit rejects with ErrQueueFull when the bound is hit;
//     SubmitCtx blocks until space frees or the context is cancelled.
//   - A single sweeper goroutine restores global FCFS order among waiters
//     and re-applies the placement rule whenever processors free up.
//     Completions coalesce into batched wakeups: however many tasks finish
//     while a sweep is running, at most one more sweep is triggered.
//   - SubmitGraph accepts a whole dependency graph (a DAG of tasks) and
//     releases each task the moment its predecessors finish, using the
//     same CSR adjacency the simulator's data layer uses.
//   - Every task is stamped at arrival, execution start and finish;
//     Stats reports sojourn (arrival → finish) and queueing-delay
//     percentiles from mergeable per-processor histograms, plus an
//     optionally auto-tuned α (see AutoTuneConfig).
//
// Typical use — a host process steering work between a CPU pool and
// accelerator command queues, with per-device time estimates from past
// profiling:
//
//	s, _ := online.New(3, 4) // three processors, α = 4
//	s.Start()
//	h, _ := s.Submit(online.Task{
//	    Name:  "matmul",
//	    EstMs: []float64{260, 0.1, 9500}, // CPU, GPU, FPGA estimates
//	    Run:   func(ctx context.Context, p online.ProcID) error { ... },
//	})
//	res := <-h.Done
//	s.Close()
//
// The scheduler is safe for concurrent Submit, SubmitCtx, SubmitGraph and
// Stats calls. Close fails queued work; Drain finishes it first.
package online

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// ProcID indexes a processor (worker) of the scheduler.
type ProcID int

// Task is one unit of work.
type Task struct {
	// Name labels the task in results and statistics.
	Name string
	// EstMs estimates the task's execution time on each processor; it must
	// have exactly one positive entry per processor. The relative values
	// drive placement exactly like the thesis's lookup table.
	EstMs []float64
	// XferMs optionally estimates the input-staging cost per processor
	// (zero-filled when nil). It participates in the alternative-processor
	// threshold test, like the transfer term of Algorithm 1.
	XferMs []float64
	// Run executes the task on the chosen processor. A nil Run is a no-op
	// (useful for tests and draining).
	Run func(ctx context.Context, p ProcID) error
	// TimeoutMs bounds one execution attempt in milliseconds. 0 inherits
	// Config.DefaultTimeoutMs; negative disables the bound for this task
	// even when a default is set. A timed-out attempt frees its processor
	// immediately and counts as a failure (ErrTimeout), subject to retry.
	TimeoutMs float64
	// Payload carries opaque caller data through Snapshot and Restore: Run
	// functions cannot be serialised, so a snapshot records the payload
	// instead and the restoring process rebuilds Run from it (see
	// RebuildFunc). The scheduler never interprets it.
	Payload json.RawMessage

	// restoredAttempts seeds the attempt counter when a snapshot is
	// restored, so a task's retry budget spans process restarts.
	restoredAttempts int
}

// Result reports one finished task.
type Result struct {
	Task Task
	Proc ProcID
	// Alt is true when the task ran on a non-optimal processor via the
	// threshold rule.
	Alt bool
	// SojournMs is the measured arrival→finish latency and QueueWaitMs
	// the arrival→execution-start delay, in milliseconds (for graph
	// tasks, arrival is the moment the last dependency finished). Both
	// are zero for tasks that never started.
	SojournMs   float64
	QueueWaitMs float64
	// Attempts is how many times the task was executed (1 without retries;
	// 0 for tasks that never started).
	Attempts int
	// Err is the error returned by Run, or the scheduler's cancellation
	// error. When the last of several attempts failed, Err wraps that
	// attempt's error (errors.Is still matches ErrTimeout etc.).
	Err error
}

// Handle tracks a submitted task.
type Handle struct {
	// Done receives exactly one Result when the task finishes.
	Done <-chan Result
}

// LatencySummary condenses a latency distribution observed by the live
// scheduler: counts, extrema and percentile estimates in milliseconds.
// Percentiles come from mergeable log-bucketed histograms (one per
// processor, merged on demand), so they carry the histograms' 5% relative
// error bound but cost O(log range) memory regardless of traffic volume.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Stats aggregates scheduler behaviour since Start. After Close (or Drain)
// returns, the snapshot is final: every later Stats call returns the same
// values, published exactly once by the drain path.
type Stats struct {
	// Submitted counts accepted tasks (including graph-released ones);
	// Rejected counts ErrQueueFull refusals and cancelled SubmitCtx waits.
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	// Queued is the number of tasks currently waiting for a processor.
	Queued         int   `json:"queued"`
	AltAssignments int   `json:"alt_assignments"`
	PerProc        []int `json:"per_proc"` // tasks completed per processor
	// PerProcBusyMs is the cumulative wall-clock execution time per
	// processor in milliseconds — with UptimeMs it yields per-processor
	// utilisation.
	PerProcBusyMs []float64 `json:"per_proc_busy_ms"`
	// UptimeMs is the wall-clock time since Start in milliseconds (frozen
	// in the final post-Close snapshot).
	UptimeMs float64 `json:"uptime_ms"`
	// Alpha is the current flexibility factor — the configured value, or
	// the live one when auto-tuning is enabled.
	Alpha float64 `json:"alpha"`
	// Failed counts tasks that settled with an error (after exhausting any
	// retry budget); Settled counts all delivered results, success or not.
	Failed  int `json:"failed"`
	Settled int `json:"settled"`
	// Retries counts re-executions beyond each task's first attempt;
	// Timeouts and Panics count attempts that ended by ErrTimeout or a
	// recovered panic (both also count as failed attempts for the breaker).
	Retries  int `json:"retries"`
	Timeouts int `json:"timeouts"`
	Panics   int `json:"panics"`
	// BreakerTrips counts circuit-breaker open transitions across all
	// processors; PerProcHealthy is each processor's live placement
	// eligibility (false while its breaker is open).
	BreakerTrips   int    `json:"breaker_trips"`
	PerProcHealthy []bool `json:"per_proc_healthy"`
	// Sojourn is the arrival→finish latency distribution; QueueWait the
	// arrival→execution-start distribution.
	Sojourn   LatencySummary `json:"sojourn"`
	QueueWait LatencySummary `json:"queue_wait"`
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("online: scheduler closed")

// ErrNotStarted is returned by Submit before Start has been called.
var ErrNotStarted = errors.New("online: Submit before Start")

// ErrQueueFull is returned by Submit when the bounded admission queue is at
// its limit. SubmitCtx blocks instead.
var ErrQueueFull = errors.New("online: admission queue full")

// DefaultQueueLimit bounds the admission queue when Config.QueueLimit is 0.
const DefaultQueueLimit = 4096

// histGrowth is the per-bucket growth of the telemetry histograms: 5%
// relative quantile error.
const histGrowth = 1.05

// Config parameterises a Scheduler beyond the New shorthand.
type Config struct {
	// Procs is the number of worker processors (required, > 0).
	Procs int
	// Alpha is the flexibility factor (>= 1; 1 reproduces MET's strict
	// waiting). With AutoTune set it is only the starting value.
	Alpha float64
	// QueueLimit bounds how many tasks may wait for a processor at once:
	// 0 means DefaultQueueLimit, negative means unbounded. Graph-internal
	// releases (successors of finished tasks) are exempt — their graph was
	// admitted as a unit.
	QueueLimit int
	// AutoTune, when non-nil, enables the live α adjustment loop.
	AutoTune *AutoTuneConfig
	// TraceDepth, when positive, keeps a ring buffer of the last
	// TraceDepth completions for placement-trace export (see Trace). Zero
	// disables tracing; completion recording then costs one branch.
	TraceDepth int
	// DefaultTimeoutMs bounds each execution attempt of tasks that leave
	// Task.TimeoutMs zero. 0 means no default bound.
	DefaultTimeoutMs float64
	// Retry enables automatic re-execution of failed attempts. The zero
	// value gives every task a single attempt.
	Retry RetryPolicy
	// Breaker, when non-nil, enables per-processor circuit breakers (see
	// BreakerConfig). Nil disables health tracking entirely.
	Breaker *BreakerConfig
}

// Scheduler dispatches tasks onto worker processors with the APT rule.
type Scheduler struct {
	np           int
	qlimit       int
	tune         *AutoTuneConfig
	defTimeoutMs float64
	retry        RetryPolicy
	brk          *BreakerConfig

	alphaBits atomic.Uint64 // float64 bits of the live α
	seq       atomic.Uint64 // global submission order stamp
	queued    atomic.Int64  // tasks waiting (stripes + pending)
	inflight  atomic.Int64  // submit calls in progress (close gate)
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	// settled counts tasks whose result has been fully delivered,
	// including any graph successor releases the delivery triggered; Drain
	// waits on settled == submitted, which completed alone cannot express
	// (a completed task may still be about to release successors).
	settled atomic.Int64
	waiters atomic.Int64 // blocked SubmitCtx callers

	// Fault-tolerance counters, recorded on the completion path only —
	// the clean submit hot path never touches them.
	failed       atomic.Int64
	retries      atomic.Int64
	timeouts     atomic.Int64
	panics       atomic.Int64
	breakerTrips atomic.Int64

	// rt parks tasks waiting out a retry backoff. Map ownership arbitrates
	// delivery exactly once: whoever deletes a task's entry (its fired
	// timer, or failRetries at shutdown) decides its fate.
	rt struct {
		mu sync.Mutex
		m  map[*liveTask]*time.Timer
	}

	// lifeMu serialises the Start/Close lifecycle transitions, so a Close
	// racing Start can never observe started==true with the context and
	// sweeper channel not yet assigned.
	lifeMu   sync.Mutex
	started  atomic.Bool
	draining atomic.Bool // external admission stopped (Drain or Close)
	closed   atomic.Bool // hard-closed: internal releases rejected too

	stripes []stripe
	smask   uint64
	procs   []proc

	// startNs is Start's wall-clock instant in Unix nanoseconds (0 before
	// Start); trace timestamps and Stats.UptimeMs are measured from it.
	startNs atomic.Int64

	// traceDepth and the trace ring record the last N completions when
	// Config.TraceDepth is positive. Workers append on the completion
	// path; Trace copies chronologically. See trace.go.
	traceDepth int
	trace      traceRing

	// graphs tracks in-flight SubmitGraph jobs so Snapshot can serialise
	// their unfinished frontiers; jobs unregister when they complete.
	graphs struct {
		mu   sync.Mutex
		next uint64
		m    map[uint64]*graphJob
	}

	wakeCh    chan struct{} // capacity 1: batched sweep wakeups
	sweepDone chan struct{}

	spaceMu sync.Mutex
	spaceCh chan struct{} // closed and replaced to broadcast freed space

	// pend is the sweeper's FCFS queue, ordered by seq. The mutex is only
	// contended by Stats/Drain/tests — the hot submit path never touches
	// it. scratch is merge workspace, cleared after every use.
	pend struct {
		mu      sync.Mutex
		q       []*liveTask
		scratch []*liveTask
	}

	// placedBuf is the sweeper's private staging area for tasks admitted
	// by a sweep: placements are collected under pend.mu, but the run-queue
	// sends happen only after the unlock (never block while holding a
	// lock). Only the single sweeper goroutine touches it; cleared after
	// every sweep so no *liveTask outlives its dispatch.
	placedBuf []placedTask

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // workers

	tuner tuner

	final atomic.Pointer[Stats] // published exactly once by the drain path
}

// stripe is one lane of the striped admission queue. Submitters pick a
// lane by sequence number, so sustained traffic spreads lock acquisitions
// across lanes instead of serialising on one mutex.
type stripe struct {
	mu sync.Mutex
	q  []*liveTask
	_  [32]byte // keep neighbouring stripes off one cache line
}

// proc is one worker processor: an idle/busy claim flag, a health flag
// cleared while the circuit breaker is open, a run queue the placement
// path hands claimed tasks to, breaker state (completion path only) and
// single-writer telemetry.
type proc struct {
	busy    atomic.Bool
	healthy atomic.Bool
	runq    chan *liveTask
	brk     breaker
	tele    telemetry
	_       [32]byte
}

// telemetry is per-processor so recording needs no cross-processor
// coordination; Stats merges the shards on demand (the histograms merge
// exactly — see stats.Histogram).
type telemetry struct {
	mu        sync.Mutex
	completed int
	alt       int
	regretSum float64 // Σ chosen-cost / best-estimate over alt assignments
	busyMs    float64 // cumulative execution wall-clock, for utilisation
	sojourn   *stats.Histogram
	qwait     *stats.Histogram
}

type liveTask struct {
	task    Task
	done    chan Result // capacity 1; nil for graph-internal tasks
	onDone  func(Result)
	seq     uint64
	arrival time.Time
	pmin    int
	bestEst float64
	alt     bool
	ratio   float64 // chosen cost / best estimate (1 on the best proc)
	// timeout is the resolved per-attempt execution bound (0: none).
	timeout time.Duration
	// attempt counts executions started; atomic because Snapshot reads it
	// while a worker may be incrementing.
	attempt atomic.Int32
	// avoid is the processor whose failure caused the pending retry (-1:
	// none). Placement prefers any other viable processor, falling back to
	// avoid only when nothing else can take the task. Written by the
	// failing worker, read by the sweeper; the retry-timer handoff orders
	// the accesses.
	avoid int
}

// New returns a scheduler for numProcs processors with flexibility factor
// alpha (alpha >= 1; 1 reproduces MET's strict waiting) and the default
// admission-queue bound.
func New(numProcs int, alpha float64) (*Scheduler, error) {
	return NewWithConfig(Config{Procs: numProcs, Alpha: alpha})
}

// NewWithConfig returns a scheduler for the given configuration.
func NewWithConfig(cfg Config) (*Scheduler, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("online: need at least one processor, got %d", cfg.Procs)
	}
	if cfg.Alpha < 1 || math.IsNaN(cfg.Alpha) || math.IsInf(cfg.Alpha, 0) {
		return nil, fmt.Errorf("online: flexibility factor must be >= 1, got %v", cfg.Alpha)
	}
	tune, err := cfg.AutoTune.withDefaults(cfg.Alpha)
	if err != nil {
		return nil, err
	}
	retry, err := cfg.Retry.withDefaults()
	if err != nil {
		return nil, err
	}
	brk, err := cfg.Breaker.withDefaults()
	if err != nil {
		return nil, err
	}
	if math.IsNaN(cfg.DefaultTimeoutMs) || math.IsInf(cfg.DefaultTimeoutMs, 0) {
		return nil, fmt.Errorf("online: DefaultTimeoutMs must be finite, got %v", cfg.DefaultTimeoutMs)
	}
	qlimit := cfg.QueueLimit
	if qlimit == 0 {
		qlimit = DefaultQueueLimit
	}
	ns := 4
	for ns < cfg.Procs && ns < 64 {
		ns <<= 1
	}
	if cfg.TraceDepth < 0 {
		return nil, fmt.Errorf("online: TraceDepth must be >= 0, got %d", cfg.TraceDepth)
	}
	s := &Scheduler{
		np:           cfg.Procs,
		qlimit:       qlimit,
		tune:         tune,
		defTimeoutMs: cfg.DefaultTimeoutMs,
		retry:        retry,
		brk:          brk,
		stripes:      make([]stripe, ns),
		smask:        uint64(ns - 1),
		procs:        make([]proc, cfg.Procs),
		wakeCh:       make(chan struct{}, 1),
		spaceCh:      make(chan struct{}),
		traceDepth:   cfg.TraceDepth,
	}
	if cfg.TraceDepth > 0 {
		s.trace.buf = make([]TraceEvent, 0, cfg.TraceDepth)
	}
	s.graphs.m = make(map[uint64]*graphJob)
	s.rt.m = make(map[*liveTask]*time.Timer)
	s.alphaBits.Store(math.Float64bits(cfg.Alpha))
	for i := range s.procs {
		s.procs[i].runq = make(chan *liveTask, 1)
		s.procs[i].healthy.Store(true)
		if brk != nil {
			s.procs[i].brk.win = make([]int8, brk.Window)
		}
		s.procs[i].tele.sojourn, _ = stats.NewHistogram(histGrowth)
		s.procs[i].tele.qwait, _ = stats.NewHistogram(histGrowth)
	}
	return s, nil
}

// Alpha returns the current flexibility factor (live, if auto-tuning).
func (s *Scheduler) Alpha() float64 {
	return math.Float64frombits(s.alphaBits.Load())
}

// NumProcs returns the number of worker processors.
func (s *Scheduler) NumProcs() int { return s.np }

// Start launches the workers and the sweeper. It must be called once
// before submitting. Starting an already-started or already-closed
// scheduler is a no-op.
func (s *Scheduler) Start() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.started.Load() || s.closed.Load() {
		return
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.sweepDone = make(chan struct{})
	s.startNs.Store(time.Now().UnixNano())
	s.wg.Add(s.np)
	for p := 0; p < s.np; p++ {
		go s.worker(p)
	}
	go s.sweeper()
	s.started.Store(true)
}

// Submit queues a task and returns a handle delivering its Result. Tasks
// are considered in submission order (first come, first serve), matching
// the thesis's queue; when nothing is waiting the task may be placed and
// dispatched directly on the submit path. Submit fails fast with
// ErrQueueFull when the admission queue is at its bound.
func (s *Scheduler) Submit(t Task) (*Handle, error) {
	lt, err := s.prepare(t, nil)
	if err != nil {
		return nil, err
	}
	if err := s.submitTask(lt, false); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.rejected.Add(1)
		}
		return nil, err
	}
	return &Handle{Done: lt.done}, nil
}

// SubmitCtx is Submit with backpressure: when the admission queue is full
// it blocks until space frees, the scheduler closes, or ctx is cancelled.
func (s *Scheduler) SubmitCtx(ctx context.Context, t Task) (*Handle, error) {
	lt, err := s.prepare(t, nil)
	if err != nil {
		return nil, err
	}
	// Register as a waiter for the whole call and grab the broadcast
	// channel before each attempt: any sweep that frees space after a
	// failed attempt already sees waiters > 0 and closes the channel we
	// hold, so the wakeup cannot be lost.
	s.waiters.Add(1)
	defer s.waiters.Add(-1)
	for {
		ch := s.spaceWait()
		err := s.submitTask(lt, false)
		if !errors.Is(err, ErrQueueFull) {
			if err != nil {
				return nil, err
			}
			return &Handle{Done: lt.done}, nil
		}
		select {
		case <-ctx.Done():
			s.rejected.Add(1)
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

// prepare validates a task and precomputes its placement inputs.
func (s *Scheduler) prepare(t Task, onDone func(Result)) (*liveTask, error) {
	if len(t.EstMs) != s.np {
		return nil, fmt.Errorf("online: task %q has %d estimates for %d processors", t.Name, len(t.EstMs), s.np)
	}
	pmin := 0
	for p, e := range t.EstMs {
		if !(e > 0) { // rejects non-positive and NaN
			return nil, fmt.Errorf("online: task %q has non-positive estimate %v on processor %d", t.Name, e, p)
		}
		if e < t.EstMs[pmin] {
			pmin = p
		}
	}
	if t.XferMs != nil && len(t.XferMs) != s.np {
		return nil, fmt.Errorf("online: task %q has %d transfer estimates for %d processors", t.Name, len(t.XferMs), s.np)
	}
	if math.IsNaN(t.TimeoutMs) || math.IsInf(t.TimeoutMs, 0) {
		return nil, fmt.Errorf("online: task %q has non-finite TimeoutMs %v", t.Name, t.TimeoutMs)
	}
	lt := &liveTask{task: t, onDone: onDone, pmin: pmin, bestEst: t.EstMs[pmin], avoid: -1}
	tms := t.TimeoutMs
	if tms == 0 {
		tms = s.defTimeoutMs
	}
	if tms > 0 {
		lt.timeout = time.Duration(tms * float64(time.Millisecond))
	}
	if t.restoredAttempts > 0 {
		lt.attempt.Store(int32(t.restoredAttempts))
	}
	if onDone == nil {
		lt.done = make(chan Result, 1)
	}
	return lt, nil
}

// submitTask admits one prepared task: direct placement when nothing
// waits, otherwise the admission queue. internal marks graph-released
// tasks, which are admitted during Drain and bypass the queue bound.
// The inflight gate is unwound explicitly on every return path (rather
// than deferred) to keep the per-submit overhead flat.
//
//apt:hotpath
func (s *Scheduler) submitTask(lt *liveTask, internal bool) error {
	s.inflight.Add(1)
	if s.closed.Load() || (!internal && s.draining.Load()) {
		s.inflight.Add(-1)
		return ErrClosed
	}
	if !s.started.Load() {
		s.inflight.Add(-1)
		return ErrNotStarted
	}
	lt.seq = s.seq.Add(1)
	lt.arrival = time.Now()
	// Fast path: with an empty wait queue there is no FCFS order to
	// preserve, so placement can claim a processor lock-free and bypass
	// the sweeper entirely.
	if s.queued.Load() == 0 {
		if p, ok := s.tryPlace(lt); ok {
			s.submitted.Add(1)
			s.dispatch(lt, p)
			s.inflight.Add(-1)
			return nil
		}
	}
	// Count the task before the sweeper can see it: once enqueued it may
	// be placed, run and settled at any moment, and Drain's quiescence
	// check (settled == submitted) must never observe the settle first.
	s.submitted.Add(1)
	if err := s.enqueue(lt, !internal); err != nil {
		s.submitted.Add(-1)
		s.inflight.Add(-1)
		return err
	}
	s.inflight.Add(-1)
	return nil
}

// enqueue pushes a task onto its admission stripe, enforcing the queue
// bound exactly (compare-and-swap, so concurrent submitters cannot
// transiently overshoot and reject each other spuriously).
//
//apt:hotpath
func (s *Scheduler) enqueue(lt *liveTask, bounded bool) error {
	if bounded && s.qlimit > 0 {
		for {
			n := s.queued.Load()
			if n >= int64(s.qlimit) {
				return ErrQueueFull
			}
			if s.queued.CompareAndSwap(n, n+1) {
				break
			}
		}
	} else {
		s.queued.Add(1)
	}
	st := &s.stripes[lt.seq&s.smask]
	st.mu.Lock()
	st.q = append(st.q, lt)
	st.mu.Unlock()
	s.wake()
	return nil
}

// tryPlace applies Algorithm 1 to one task against the live idle flags:
// best processor if idle, else cheapest idle alternative within threshold.
// Claims race lock-free: a failed compare-and-swap means another placement
// won that processor, so the scan repeats against the shrunken idle set.
//
// A retrying task first excludes the processor that just failed it
// (lt.avoid) — the thesis's alternative-processor idea applied to failure
// instead of queueing — and falls back to that processor only when no
// other viable placement exists, so a retry can never be stranded behind
// its own preference. Unhealthy processors (open breakers) are excluded
// unconditionally.
//
//apt:hotpath
func (s *Scheduler) tryPlace(lt *liveTask) (ProcID, bool) {
	t := &lt.task
	avoid := lt.avoid
	for pass := 0; pass < 2; pass++ {
		for attempt := 0; attempt <= s.np; attempt++ {
			if lt.pmin != avoid && s.claim(lt.pmin) {
				lt.alt, lt.ratio = false, 1
				return ProcID(lt.pmin), true
			}
			threshold := s.Alpha() * lt.bestEst
			best, bestCost := -1, 0.0
			for p := 0; p < s.np; p++ {
				if p == lt.pmin || p == avoid || s.procs[p].busy.Load() || !s.procs[p].healthy.Load() {
					continue
				}
				cost := t.EstMs[p]
				if t.XferMs != nil {
					cost += t.XferMs[p]
				}
				if cost <= threshold && (best < 0 || cost < bestCost) {
					best, bestCost = p, cost
				}
			}
			if best < 0 {
				break
			}
			if s.claim(best) {
				lt.alt, lt.ratio = true, bestCost/lt.bestEst
				return ProcID(best), true
			}
		}
		if avoid < 0 {
			return 0, false
		}
		// Nothing viable besides the avoided processor: lift the
		// preference and try again rather than stranding the retry.
		avoid = -1
		lt.avoid = -1
	}
	return 0, false
}

// claim marks a processor busy if it is idle and healthy. The health flag
// is re-checked after the claim: a breaker may trip between the first read
// and the compare-and-swap (the worker publishes healthy=false before
// releasing busy, but a stale read could still win the race), and
// releasing the claim here keeps "an open breaker never receives
// placements" exact.
//
//apt:hotpath
func (s *Scheduler) claim(p int) bool {
	pr := &s.procs[p]
	if !pr.healthy.Load() {
		return false
	}
	if !pr.busy.CompareAndSwap(false, true) {
		return false
	}
	if !pr.healthy.Load() {
		pr.busy.Store(false)
		return false
	}
	return true
}

// dispatch hands a claimed task to its processor's run queue. The claim
// protocol guarantees at most one outstanding task per processor, so the
// capacity-1 send never blocks.
//
//apt:hotpath
func (s *Scheduler) dispatch(lt *liveTask, p ProcID) {
	s.procs[p].runq <- lt
}

// wake triggers a sweep; concurrent wakes while one is pending coalesce.
//
//apt:hotpath
func (s *Scheduler) wake() {
	select {
	case s.wakeCh <- struct{}{}:
	default:
	}
}

func (s *Scheduler) spaceWait() <-chan struct{} {
	s.spaceMu.Lock()
	ch := s.spaceCh
	s.spaceMu.Unlock()
	return ch
}

func (s *Scheduler) spaceBroadcast() {
	s.spaceMu.Lock()
	close(s.spaceCh)
	s.spaceCh = make(chan struct{})
	s.spaceMu.Unlock()
}

// sweeper serialises waiting-queue decisions: it restores global FCFS
// order across stripes and re-applies the placement rule after batches of
// completions. On shutdown it fails everything still waiting.
func (s *Scheduler) sweeper() {
	defer close(s.sweepDone)
	for {
		select {
		case <-s.wakeCh:
			// closed is set before the context is cancelled, so a wakeup
			// racing Close cannot launch tasks the close path is about to
			// fail (Drain only sets draining; sweeping continues).
			if s.closed.Load() {
				s.failPending()
				return
			}
			s.sweep()
			s.tuner.maybeTune(s)
		case <-s.ctx.Done():
			s.failPending()
			return
		}
	}
}

// placedTask is one sweep admission staged for dispatch after unlock.
type placedTask struct {
	lt *liveTask
	p  ProcID
}

// sweep drains the stripes into the FCFS queue and walks it in submission
// order, dispatching every task the placement rule admits right now.
// Placement (which claims processors via CAS) runs under pend.mu; the
// run-queue sends are deferred until after the unlock so the sweeper never
// performs a channel send while holding the lock. The claims made under
// the lock keep each target processor reserved until its send lands, so
// the deferred sends preserve the capacity-1 never-blocks invariant and
// the FCFS dispatch order.
func (s *Scheduler) sweep() {
	dis := s.placedBuf[:0]
	s.pend.mu.Lock()
	q := s.gatherLocked()
	w := 0
	for i := 0; i < len(q); i++ {
		lt := q[i]
		if p, ok := s.tryPlace(lt); ok {
			dis = append(dis, placedTask{lt: lt, p: p})
			continue
		}
		q[w] = lt
		w++
	}
	// Nil the vacated tail so the backing array keeps no *liveTask (and
	// captured closures) reachable after dispatch.
	for i := w; i < len(q); i++ {
		q[i] = nil
	}
	s.pend.q = q[:w]
	s.pend.mu.Unlock()
	for i := range dis {
		s.dispatch(dis[i].lt, dis[i].p)
		dis[i] = placedTask{} // drop the reference once handed over
	}
	s.placedBuf = dis[:0]
	if placed := len(dis); placed > 0 {
		s.queued.Add(int64(-placed))
		if s.waiters.Load() > 0 {
			s.spaceBroadcast()
		}
	}
}

// gatherLocked moves every stripe's tasks into the pending queue and
// restores global submission order by sequence stamp. Only the newly
// gathered batch is sorted; a surviving backlog is already ordered from
// the previous sweep and is merged in O(backlog + batch), so a large
// standing queue does not pay a full re-sort per sweep.
func (s *Scheduler) gatherLocked() []*liveTask {
	q := s.pend.q
	n0 := len(q)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		if len(st.q) > 0 {
			q = append(q, st.q...)
			for j := range st.q {
				st.q[j] = nil
			}
			st.q = st.q[:0]
		}
		st.mu.Unlock()
	}
	batch := q[n0:]
	if len(batch) == 0 {
		return q
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	if n0 == 0 || q[n0-1].seq < batch[0].seq {
		// Whole batch is newer than the backlog — already in order.
		return q
	}
	// Merge the two sorted runs backwards, with the batch copied out so
	// the merge can write in place.
	scratch := append(s.pend.scratch[:0], batch...)
	i, j, w := n0-1, len(scratch)-1, len(q)-1
	for j >= 0 {
		if i >= 0 && q[i].seq > scratch[j].seq {
			q[w] = q[i]
			i--
		} else {
			q[w] = scratch[j]
			j--
		}
		w--
	}
	for k := range scratch {
		scratch[k] = nil
	}
	s.pend.scratch = scratch[:0]
	return q
}

// failPending delivers ErrClosed to every waiting task at shutdown — both
// the admission queue and the retry registry.
func (s *Scheduler) failPending() {
	s.pend.mu.Lock()
	q := s.gatherLocked()
	s.pend.q = nil
	s.pend.mu.Unlock()
	s.failRetries()
	if len(q) == 0 {
		return
	}
	s.queued.Add(int64(-len(q)))
	for _, lt := range q {
		s.deliver(lt, Result{Task: lt.task, Proc: -1, Attempts: int(lt.attempt.Load()), Err: ErrClosed})
	}
	s.spaceBroadcast()
}

func (s *Scheduler) deliver(lt *liveTask, res Result) {
	if lt.done != nil {
		lt.done <- res
	}
	if lt.onDone != nil {
		lt.onDone(res)
	}
	s.settled.Add(1)
}

// worker runs one processor: receive a claimed task, execute one attempt
// (bounded by the task's timeout, panics recovered), record telemetry and
// the breaker outcome, release the claim and trigger a sweep. A failed
// attempt with retry budget left parks the task in the retry registry
// instead of settling it; the task re-enters placement when its backoff
// expires. The breaker outcome is recorded before the busy release, so a
// trip withdraws the processor before anyone can claim it again.
func (s *Scheduler) worker(p int) {
	defer s.wg.Done()
	pr := &s.procs[p]
	for lt := range pr.runq {
		attempt := int(lt.attempt.Add(1))
		start := time.Now()
		err := s.execute(lt, p)
		finish := time.Now()
		timedOut := false
		if err != nil {
			if errors.Is(err, ErrTimeout) {
				timedOut = true
				s.timeouts.Add(1)
			} else if errors.Is(err, ErrPanicked) {
				s.panics.Add(1)
			}
		}
		retrying := err != nil && s.shouldRetry(attempt, err)
		sojourn := durMs(finish.Sub(lt.arrival))
		qwait := durMs(start.Sub(lt.arrival))
		actual := durMs(finish.Sub(start))
		t := &pr.tele
		t.mu.Lock()
		t.busyMs += actual
		if !retrying {
			t.completed++
			if lt.alt {
				t.alt++
				t.regretSum += lt.ratio
			}
			t.sojourn.Add(sojourn)
			t.qwait.Add(qwait)
		}
		t.mu.Unlock()
		if s.traceDepth > 0 {
			start0 := time.Unix(0, s.startNs.Load())
			s.recordTrace(TraceEvent{
				Seq:         lt.seq,
				Name:        lt.task.Name,
				Proc:        ProcID(p),
				Alt:         lt.alt,
				Attempt:     attempt,
				ArrivalMs:   durMs(lt.arrival.Sub(start0)),
				StartMs:     durMs(start.Sub(start0)),
				FinishMs:    durMs(finish.Sub(start0)),
				QueueWaitMs: qwait,
				EstMs:       lt.task.EstMs[p],
				BestEstMs:   lt.bestEst,
				ActualMs:    actual,
				Failed:      err != nil,
			})
		}
		s.recordOutcome(p, err != nil, timedOut)
		if retrying {
			s.retries.Add(1)
			lt.avoid = p
			pr.busy.Store(false)
			s.wake()
			s.retryLater(lt, attempt)
			continue
		}
		s.completed.Add(1)
		if err != nil {
			s.failed.Add(1)
			if attempt > 1 {
				err = fmt.Errorf("online: %d attempts exhausted: %w", attempt, err)
			}
		}
		pr.busy.Store(false)
		s.wake()
		s.deliver(lt, Result{
			Task: lt.task, Proc: ProcID(p), Alt: lt.alt,
			SojournMs: sojourn, QueueWaitMs: qwait, Attempts: attempt, Err: err,
		})
	}
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Close stops accepting work, cancels the run context passed to in-flight
// tasks, fails queued tasks with ErrClosed, waits for workers to exit and
// publishes the final Stats snapshot. It is idempotent.
func (s *Scheduler) Close() {
	s.shutdown()
}

// Drain gracefully quiesces the scheduler: it stops accepting external
// work immediately (graph successors keep releasing), waits until every
// admitted task has finished or ctx expires, then closes. On timeout the
// remaining tasks fail with ErrClosed and ctx's error is returned.
func (s *Scheduler) Drain(ctx context.Context) error {
	err := s.Quiesce(ctx)
	if err != nil && !s.started.Load() {
		return err // never started; nothing to shut down
	}
	s.shutdown()
	return err
}

// Quiesce is the first half of Drain: it stops accepting external work
// (graph successors keep releasing) and waits until every admitted task
// has settled or ctx expires, returning ctx's error on timeout. Unlike
// Drain it does not shut the scheduler down — workers keep running and
// still-queued tasks stay queued, so on timeout the caller can capture
// them with Snapshot before calling Close.
func (s *Scheduler) Quiesce(ctx context.Context) error {
	if !s.started.Load() {
		return fmt.Errorf("online: Quiesce before Start")
	}
	s.draining.Store(true)
	s.spaceBroadcast() // wake SubmitCtx waiters so they observe the close
	// Let racing Submit calls settle so the quiescence condition below
	// cannot miss a task admitted concurrently with the drain request.
	for s.inflight.Load() != 0 {
		runtime.Gosched()
	}
	for s.settled.Load() < s.submitted.Load() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
	return nil
}

// shutdown is the single exit path shared by Close and Drain.
func (s *Scheduler) shutdown() {
	s.lifeMu.Lock()
	if !s.started.Load() {
		// Never started: nothing is running; just refuse future work
		// (including a later Start, which checks closed).
		s.draining.Store(true)
		s.closed.Store(true)
		s.lifeMu.Unlock()
		return
	}
	first := s.closed.CompareAndSwap(false, true)
	s.lifeMu.Unlock()
	if first {
		s.draining.Store(true)
		s.spaceBroadcast()
		// Wait out in-progress submit calls: after this, nobody but the
		// sweeper can hand tasks to run queues.
		for s.inflight.Load() != 0 {
			runtime.Gosched()
		}
		s.cancel()
		<-s.sweepDone
		for p := range s.procs {
			close(s.procs[p].runq)
		}
		s.wg.Wait()
		// Workers are gone; any retry a final attempt registered has been
		// (or will be, when its timer fires) settled with ErrClosed via the
		// closed check in retryLater/requeue. Sweep the registry once more
		// so the final snapshot sees those settles, then drop the cooldown
		// timers.
		s.failRetries()
		s.stopBreakerTimers()
		snap := s.snapshot()
		s.final.Store(&snap)
	} else {
		// Concurrent or repeated Close: wait for the first one to finish.
		<-s.sweepDone
		s.wg.Wait()
		for s.final.Load() == nil {
			runtime.Gosched()
		}
	}
}

// Stats returns a snapshot of the scheduler's counters and latency
// distributions. After Close it returns the final snapshot, identical on
// every call.
func (s *Scheduler) Stats() Stats {
	if f := s.final.Load(); f != nil {
		return f.clone()
	}
	return s.snapshot()
}

func (st *Stats) clone() Stats {
	out := *st
	out.PerProc = append([]int(nil), st.PerProc...)
	out.PerProcBusyMs = append([]float64(nil), st.PerProcBusyMs...)
	out.PerProcHealthy = append([]bool(nil), st.PerProcHealthy...)
	return out
}

// snapshot merges the per-processor telemetry shards into one Stats.
func (s *Scheduler) snapshot() Stats {
	out := Stats{
		Submitted:      int(s.submitted.Load()),
		Completed:      int(s.completed.Load()),
		Rejected:       int(s.rejected.Load()),
		Queued:         int(s.queued.Load()),
		Failed:         int(s.failed.Load()),
		Settled:        int(s.settled.Load()),
		Retries:        int(s.retries.Load()),
		Timeouts:       int(s.timeouts.Load()),
		Panics:         int(s.panics.Load()),
		BreakerTrips:   int(s.breakerTrips.Load()),
		Alpha:          s.Alpha(),
		PerProc:        make([]int, s.np),
		PerProcBusyMs:  make([]float64, s.np),
		PerProcHealthy: make([]bool, s.np),
	}
	if ns := s.startNs.Load(); ns != 0 {
		out.UptimeMs = durMs(time.Since(time.Unix(0, ns)))
	}
	soj, _ := stats.NewHistogram(histGrowth)
	qw, _ := stats.NewHistogram(histGrowth)
	for p := range s.procs {
		t := &s.procs[p].tele
		t.mu.Lock()
		out.PerProc[p] = t.completed
		out.AltAssignments += t.alt
		out.PerProcBusyMs[p] = t.busyMs
		_ = soj.Merge(t.sojourn)
		_ = qw.Merge(t.qwait)
		t.mu.Unlock()
		out.PerProcHealthy[p] = s.procs[p].healthy.Load()
	}
	out.Sojourn = latencySummary(soj)
	out.QueueWait = latencySummary(qw)
	return out
}

// LatencyHistograms returns merged copies of the live sojourn and
// queue-wait histograms, for full-distribution export (e.g. Prometheus
// bucket series) beyond the percentile summaries in Stats. The copies are
// independent of the scheduler and safe to mutate.
func (s *Scheduler) LatencyHistograms() (sojourn, qwait *stats.Histogram) {
	soj, _ := stats.NewHistogram(histGrowth)
	qw, _ := stats.NewHistogram(histGrowth)
	for p := range s.procs {
		t := &s.procs[p].tele
		t.mu.Lock()
		_ = soj.Merge(t.sojourn)
		_ = qw.Merge(t.qwait)
		t.mu.Unlock()
	}
	return soj, qw
}

func latencySummary(h *stats.Histogram) LatencySummary {
	sum := h.Summary()
	return LatencySummary{
		Count:  sum.Count,
		MeanMs: sum.Mean,
		MinMs:  sum.Min,
		MaxMs:  sum.Max,
		P50Ms:  sum.P50,
		P90Ms:  sum.P90,
		P95Ms:  sum.P95,
		P99Ms:  sum.P99,
	}
}

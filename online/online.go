// Package online applies the APT scheduling rule to real work at runtime.
//
// Where repro/apt simulates schedules against a measured lookup table,
// this package dispatches actual Go functions onto a fixed set of worker
// "processors" (one goroutine each), deciding placements live with the
// thesis's Algorithm 1: run a task on its estimated-fastest processor if
// that processor is idle, otherwise on the cheapest idle alternative whose
// estimated execution-plus-transfer cost stays within α times the best
// estimate, otherwise keep it queued until the best processor frees up.
//
// Typical use — a host process steering work between a CPU pool and
// accelerator command queues, with per-device time estimates from past
// profiling:
//
//	s := online.New(3, 4) // three processors, α = 4
//	s.Start()
//	h := s.Submit(online.Task{
//	    Name:  "matmul",
//	    EstMs: []float64{260, 0.1, 9500}, // CPU, GPU, FPGA estimates
//	    Run:   func(ctx context.Context, p online.ProcID) error { ... },
//	})
//	res := <-h.Done
//	s.Close()
//
// The scheduler is safe for concurrent Submit calls.
package online

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ProcID indexes a processor (worker) of the scheduler.
type ProcID int

// Task is one unit of work.
type Task struct {
	// Name labels the task in results and statistics.
	Name string
	// EstMs estimates the task's execution time on each processor; it must
	// have exactly one positive entry per processor. The relative values
	// drive placement exactly like the thesis's lookup table.
	EstMs []float64
	// XferMs optionally estimates the input-staging cost per processor
	// (zero-filled when nil). It participates in the alternative-processor
	// threshold test, like the transfer term of Algorithm 1.
	XferMs []float64
	// Run executes the task on the chosen processor. A nil Run is a no-op
	// (useful for tests and draining).
	Run func(ctx context.Context, p ProcID) error
}

// Result reports one finished task.
type Result struct {
	Task Task
	Proc ProcID
	// Alt is true when the task ran on a non-optimal processor via the
	// threshold rule.
	Alt bool
	// Err is the error returned by Run, or the scheduler's cancellation
	// error.
	Err error
}

// Handle tracks a submitted task.
type Handle struct {
	// Done receives exactly one Result when the task finishes.
	Done <-chan Result
}

// Stats aggregates scheduler behaviour since Start.
type Stats struct {
	Submitted      int
	Completed      int
	AltAssignments int
	PerProc        []int // tasks completed per processor
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("online: scheduler closed")

// Scheduler dispatches tasks onto worker processors with the APT rule.
type Scheduler struct {
	alpha float64
	np    int

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*pendingTask
	busy    []bool
	stats   Stats
	closed  bool
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

type pendingTask struct {
	task Task
	done chan Result
}

// New returns a scheduler for numProcs processors with flexibility factor
// alpha (alpha >= 1; 1 reproduces MET's strict waiting).
func New(numProcs int, alpha float64) (*Scheduler, error) {
	if numProcs <= 0 {
		return nil, fmt.Errorf("online: need at least one processor, got %d", numProcs)
	}
	if alpha < 1 {
		return nil, fmt.Errorf("online: flexibility factor must be >= 1, got %v", alpha)
	}
	s := &Scheduler{
		alpha: alpha,
		np:    numProcs,
		busy:  make([]bool, numProcs),
	}
	s.cond = sync.NewCond(&s.mu)
	s.stats.PerProc = make([]int, numProcs)
	return s, nil
}

// Start launches the dispatcher. It must be called once before Submit.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.dispatch()
}

// Submit queues a task and returns a handle delivering its Result. Tasks
// are considered in submission order (first come, first serve), matching
// the thesis's queue.
func (s *Scheduler) Submit(t Task) (*Handle, error) {
	if len(t.EstMs) != s.np {
		return nil, fmt.Errorf("online: task %q has %d estimates for %d processors", t.Name, len(t.EstMs), s.np)
	}
	for p, e := range t.EstMs {
		if e <= 0 {
			return nil, fmt.Errorf("online: task %q has non-positive estimate %v on processor %d", t.Name, e, p)
		}
	}
	if t.XferMs != nil && len(t.XferMs) != s.np {
		return nil, fmt.Errorf("online: task %q has %d transfer estimates for %d processors", t.Name, len(t.XferMs), s.np)
	}
	done := make(chan Result, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if !s.started {
		return nil, fmt.Errorf("online: Submit before Start")
	}
	s.pending = append(s.pending, &pendingTask{task: t, done: done})
	s.stats.Submitted++
	s.cond.Signal()
	return &Handle{Done: done}, nil
}

// Close stops accepting work, cancels the run context passed to in-flight
// tasks, fails queued tasks with ErrClosed, and waits for workers to exit.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.cancel != nil {
		s.cancel()
	}
	for _, pt := range s.pending {
		pt.done <- Result{Task: pt.task, Proc: -1, Err: ErrClosed}
	}
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.PerProc = append([]int(nil), s.stats.PerProc...)
	return out
}

// dispatch is the scheduler loop: whenever the pending queue or processor
// availability changes, sweep the queue with the APT rule.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return
		}
		progress := s.sweepLocked()
		if !progress {
			s.cond.Wait()
		}
	}
}

// sweepLocked walks the pending queue in order, launching every task the
// APT rule allows right now. Returns whether anything launched.
func (s *Scheduler) sweepLocked() bool {
	launched := false
	for i := 0; i < len(s.pending); {
		pt := s.pending[i]
		proc, alt, ok := s.placeLocked(pt.task)
		if !ok {
			i++
			continue
		}
		// Remove in place and nil the vacated tail slot: a plain
		// append(s.pending[:i], s.pending[i+1:]...) keeps the last
		// *pendingTask pointer alive in the backing array, so under
		// sustained traffic completed tasks (and the closures their Run
		// fields capture) would never be collected.
		last := len(s.pending) - 1
		copy(s.pending[i:], s.pending[i+1:])
		s.pending[last] = nil
		s.pending = s.pending[:last]
		s.busy[proc] = true
		if alt {
			s.stats.AltAssignments++
		}
		s.wg.Add(1)
		go s.runTask(pt, proc, alt)
		launched = true
	}
	return launched
}

// placeLocked applies Algorithm 1 to one task: best processor if idle,
// else cheapest idle alternative within threshold.
func (s *Scheduler) placeLocked(t Task) (ProcID, bool, bool) {
	pmin := 0
	for p := 1; p < s.np; p++ {
		if t.EstMs[p] < t.EstMs[pmin] {
			pmin = p
		}
	}
	if !s.busy[pmin] {
		return ProcID(pmin), false, true
	}
	threshold := s.alpha * t.EstMs[pmin]
	best := -1
	bestCost := 0.0
	for p := 0; p < s.np; p++ {
		if s.busy[p] || p == pmin {
			continue
		}
		cost := t.EstMs[p]
		if t.XferMs != nil {
			cost += t.XferMs[p]
		}
		if cost <= threshold && (best < 0 || cost < bestCost) {
			best, bestCost = p, cost
		}
	}
	if best < 0 {
		return -1, false, false
	}
	return ProcID(best), true, true
}

// runTask executes one task on its processor and frees it afterwards.
func (s *Scheduler) runTask(pt *pendingTask, proc ProcID, alt bool) {
	defer s.wg.Done()
	var err error
	if pt.task.Run != nil {
		err = pt.task.Run(s.ctx, proc)
	}
	s.mu.Lock()
	s.busy[proc] = false
	s.stats.Completed++
	s.stats.PerProc[proc]++
	s.cond.Broadcast()
	s.mu.Unlock()
	pt.done <- Result{Task: pt.task, Proc: proc, Alt: alt, Err: err}
}

package online

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	fp, err := ParseFaultPlan("flaky:0:0.6, crash:1:0:1500,kind:mm:0.3,lat:2:5,hang:3:100:0", 42)
	if err != nil {
		t.Fatal(err)
	}
	rules := fp.Rules()
	if len(rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(rules))
	}
	want := []FaultKind{ProcFlaky, ProcCrash, KindFlaky, ProcLatency, ProcHang}
	for i, k := range want {
		if rules[i].Kind != k {
			t.Errorf("rule %d kind = %v, want %v", i, rules[i].Kind, k)
		}
	}
	if rules[4].EndMs != 0 {
		t.Errorf("open-ended window end = %v, want 0", rules[4].EndMs)
	}
	for _, bad := range []string{"crash:0", "flaky:0:2", "kind::0.5", "lat:0:-1", "bogus:1:2", "crash:0:5:2"} {
		if _, err := ParseFaultPlan(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if fp, err := ParseFaultPlan("", 1); err != nil || !fp.Empty() {
		t.Errorf("empty spec: plan %v err %v", fp, err)
	}
}

func TestFaultPlanCrashWindow(t *testing.T) {
	fp, err := ParseFaultPlan("crash:0:0:50", 1)
	if err != nil {
		t.Fatal(err)
	}
	fp.Begin()
	run := fp.Wrap("t", nil)
	if err := run(context.Background(), 0); !errors.Is(err, ErrInjected) {
		t.Errorf("inside window: %v, want ErrInjected", err)
	}
	if err := run(context.Background(), 1); err != nil {
		t.Errorf("other processor affected: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := run(context.Background(), 0); err != nil {
		t.Errorf("after window: %v", err)
	}
}

func TestFaultPlanDeterministicDraws(t *testing.T) {
	draws := func(seed int64) []bool {
		fp, err := ParseFaultPlan("flaky:0:0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		run := fp.Wrap("t", nil)
		out := make([]bool, 64)
		for i := range out {
			out[i] = run(context.Background(), 0) != nil
		}
		return out
	}
	a, b, c := draws(7), draws(7), draws(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("same seed produced different injection streams")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced identical injection streams")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("flaky:0.5 injected %d/%d failures — draw stream looks constant", fails, len(a))
	}
}

// TestChaosSoak drives a fault-ridden scheduler hard (run under -race in
// CI): independent tasks and random DAGs meet crashing, hanging, panicking
// and flaky Runs plus an injected fault plan, with retries, timeouts and
// breakers all enabled. Every accepted task must settle exactly once with
// success or a typed terminal error, no worker may be lost, and tripped
// breakers must recover.
func TestChaosSoak(t *testing.T) {
	const (
		procs   = 4
		indep   = 160
		graphs  = 8
		gsize   = 12
		seed    = uint64(0xC0FFEE)
		timeout = 25.0 // ms per attempt
	)
	fp, err := ParseFaultPlan("flaky:1:0.3,crash:2:0:150,lat:3:1", 99)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithConfig(Config{
		Procs:            procs,
		Alpha:            8,
		DefaultTimeoutMs: timeout,
		TraceDepth:       64,
		Retry:            RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, JitterSeed: 1},
		Breaker:          &BreakerConfig{FailureThreshold: 4, TimeoutRate: 0.8, Window: 10, Cooldown: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	fp.Begin()

	// mkRun builds a deterministic misbehaving Run from a per-task seed:
	// most succeed, some fail transiently (within the retry budget), some
	// fail always, some hang past the timeout once, some panic once.
	var hangs sync.WaitGroup
	mkRun := func(taskSeed uint64, name string) (func(context.Context, ProcID) error, string) {
		var calls atomic.Int32
		mode := splitmix64(taskSeed) % 10
		var base func(context.Context, ProcID) error
		var kind string
		switch mode {
		case 0: // transient error, succeeds on attempt 2
			kind = "transient"
			base = func(context.Context, ProcID) error {
				if calls.Add(1) == 1 {
					return fmt.Errorf("transient fault")
				}
				return nil
			}
		case 1: // permanent failure
			kind = "permanent"
			base = func(context.Context, ProcID) error { return errPermanent }
		case 2: // hangs past the timeout on attempt 1, then succeeds
			kind = "hang-once"
			base = func(ctx context.Context, _ ProcID) error {
				if calls.Add(1) == 1 {
					hangs.Add(1)
					defer hangs.Done()
					<-ctx.Done()
					return ctx.Err()
				}
				return nil
			}
		case 3: // panics on attempt 1, then succeeds
			kind = "panic-once"
			base = func(context.Context, ProcID) error {
				if calls.Add(1) == 1 {
					panic("chaos panic")
				}
				return nil
			}
		default: // clean
			kind = "ok"
			base = func(context.Context, ProcID) error { return nil }
		}
		return fp.Wrap(name, base), kind
	}
	est := func(taskSeed uint64) []float64 {
		e := make([]float64, procs)
		for p := range e {
			e[p] = 0.01 + float64(splitmix64(taskSeed^uint64(p+1))%100)/50
		}
		return e
	}

	type settle struct {
		res  Result
		kind string
	}
	var mu sync.Mutex
	settles := make(map[string][]settle)
	record := func(name, kind string, res Result) {
		mu.Lock()
		settles[name] = append(settles[name], settle{res, kind})
		mu.Unlock()
	}

	var wg sync.WaitGroup
	accepted := atomic.Int64{}
	for i := 0; i < indep; i++ {
		name := fmt.Sprintf("ind-%d", i)
		run, kind := mkRun(seed^uint64(i), name)
		h, err := s.SubmitCtx(context.Background(), Task{Name: name, EstMs: est(seed ^ uint64(i)), Run: run})
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		accepted.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			record(name, kind, <-h.Done)
			// A second result would block forever on the cap-1 channel;
			// prove there is none with a non-blocking read.
			select {
			case res2 := <-h.Done:
				t.Errorf("%s settled twice: %+v", name, res2)
			default:
			}
		}()
	}
	kinds := make(map[string]string)
	for g := 0; g < graphs; g++ {
		gts := make([]GraphTask, gsize)
		for i := range gts {
			name := fmt.Sprintf("g%d-n%d", g, i)
			ts := seed ^ uint64(g*1000+i+7)
			run, kind := mkRun(ts, name)
			kinds[name] = kind
			deps := []int(nil)
			// Random DAG: each node depends on up to 2 earlier nodes.
			for d := 0; d < 2 && i > 0; d++ {
				deps = append(deps, int(splitmix64(ts^uint64(d+31))%uint64(i)))
			}
			gts[i] = GraphTask{Task: Task{Name: name, EstMs: est(ts), Run: run}, Deps: deps}
		}
		gh, err := s.SubmitGraph(gts)
		if err != nil {
			t.Fatalf("graph %d: %v", g, err)
		}
		accepted.Add(gsize)
		wg.Add(1)
		go func() {
			defer wg.Done()
			gres := <-gh.Done
			for i, res := range gres.Results {
				record(res.Task.Name, kinds[res.Task.Name], res)
				_ = i
			}
		}()
	}
	wg.Wait()

	// Every accepted task settled exactly once, with a typed error or
	// success.
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for name, ss := range settles {
		total += len(ss)
		if len(ss) != 1 {
			t.Errorf("%s settled %d times", name, len(ss))
			continue
		}
		res, kind := ss[0].res, ss[0].kind
		err := res.Err
		switch {
		case err == nil:
		case errors.Is(err, errPermanent), errors.Is(err, ErrTimeout), errors.Is(err, ErrPanicked),
			errors.Is(err, ErrInjected), errors.Is(err, ErrDependency), errors.Is(err, ErrClosed):
		default:
			t.Errorf("%s (%s): untyped terminal error %v", name, kind, err)
		}
		// A hang-once task that settled with an error must have been
		// timed out, not silently swallowed.
		if kind == "hang-once" && err != nil && !errors.Is(err, ErrTimeout) &&
			!errors.Is(err, ErrDependency) && !errors.Is(err, ErrInjected) && !errors.Is(err, ErrClosed) {
			t.Errorf("hang-once %s settled with %v", name, err)
		}
	}
	if int64(total) != accepted.Load() {
		t.Errorf("settled %d results for %d accepted tasks", total, accepted.Load())
	}

	// Quiescence: the scheduler agrees everything settled.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	st := s.Stats()
	if st.Settled != st.Submitted {
		t.Errorf("settled %d != submitted %d", st.Settled, st.Submitted)
	}
	if st.Completed+st.Queued > st.Submitted {
		t.Errorf("impossible counters: %+v", st)
	}

	// Worker liveness: every processor must still execute work. Breakers
	// may be open from the chaos — wait out their cooldowns first (the
	// half-open probe is this canary).
	for p := 0; p < procs; p++ {
		est := make([]float64, procs)
		for q := range est {
			est[q] = 1000
		}
		est[p] = 0.01
		waitFor(t, 10*time.Second, func() bool { return s.ProcHealth()[p].Healthy })
		lt, err := s.prepare(Task{Name: fmt.Sprintf("canary-%d", p), EstMs: est}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.submitTask(lt, true); err != nil {
			t.Fatalf("canary %d: %v", p, err)
		}
		select {
		case res := <-lt.done:
			if res.Err != nil {
				t.Errorf("canary on proc %d failed: %v", p, res.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d lost: canary never ran", p)
		}
	}

	s.Close()
	// Abandoned hung Runs unblock once Close cancels the scheduler
	// context; wait so the race detector sees them exit.
	done := make(chan struct{})
	go func() { hangs.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Error("abandoned hung Runs never unblocked after Close")
	}
}

var errPermanent = errors.New("permanent chaos failure")

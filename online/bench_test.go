package online

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkOnlineSubmit measures end-to-end submit → place → run →
// complete throughput under concurrent submitters, across processor
// counts. Tasks are no-ops, so the scheduler path dominates; with the
// striped submit path, ns/op must fall as processors are added instead of
// plateauing on a global lock (CI's bench-regression gate watches this).
func BenchmarkOnlineSubmit(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			s, err := NewWithConfig(Config{Procs: procs, Alpha: 4, QueueLimit: -1})
			if err != nil {
				b.Fatal(err)
			}
			s.Start()
			defer s.Close()
			noop := func(context.Context, ProcID) error { return nil }
			var nextLane atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each submitter favours a different processor so the
				// fast path spreads claims instead of contending on one.
				lane := int(nextLane.Add(1)) % procs
				est := make([]float64, procs)
				for i := range est {
					est[i] = float64(1 + (i+procs-lane)%procs)
				}
				t := Task{Name: "t", EstMs: est, Run: noop}
				for pb.Next() {
					h, err := s.Submit(t)
					if err != nil {
						b.Fatal(err)
					}
					if res := <-h.Done; res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			})
		})
	}
}

// BenchmarkOnlineRetry measures the full retry round trip: every task
// fails its first attempt and succeeds on the second, so each iteration
// pays execute → record → backoff timer → requeue → re-place → execute.
// The backoff is a nominal 1ns so the retry machinery, not the wait,
// is what gets measured.
func BenchmarkOnlineRetry(b *testing.B) {
	s, err := NewWithConfig(Config{
		Procs:      4,
		Alpha:      4,
		QueueLimit: -1,
		Retry:      RetryPolicy{MaxAttempts: 2, BaseBackoff: 1, MaxBackoff: 1, JitterSeed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer s.Close()
	est := []float64{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var calls atomic.Int32
			h, err := s.Submit(Task{Name: "r", EstMs: est, Run: func(context.Context, ProcID) error {
				if calls.Add(1) == 1 {
					return errBenchTransient
				}
				return nil
			}})
			if err != nil {
				b.Fatal(err)
			}
			res := <-h.Done
			if res.Err != nil || res.Attempts != 2 {
				b.Fatalf("res = %+v, want success on attempt 2", res)
			}
		}
	})
}

var errBenchTransient = fmt.Errorf("transient bench failure")

// BenchmarkSubmitDispatch measures end-to-end submit -> place -> run ->
// complete throughput with no-op task bodies.
func BenchmarkSubmitDispatch(b *testing.B) {
	s, err := New(3, 4)
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer s.Close()
	est := []float64{3, 1, 5}
	noop := func(context.Context, ProcID) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Submit(Task{Name: "t", EstMs: est, Run: noop})
		if err != nil {
			b.Fatal(err)
		}
		if res := <-h.Done; res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkBurst measures a pipelined burst: submit everything, then wait.
func BenchmarkBurst(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			s, err := New(procs, 4)
			if err != nil {
				b.Fatal(err)
			}
			s.Start()
			defer s.Close()
			est := make([]float64, procs)
			for i := range est {
				est[i] = float64(i + 1)
			}
			noop := func(context.Context, ProcID) error { return nil }
			b.ReportAllocs()
			b.ResetTimer()
			handles := make([]*Handle, 0, b.N)
			for i := 0; i < b.N; i++ {
				h, err := s.Submit(Task{Name: "t", EstMs: est, Run: noop})
				if err != nil {
					b.Fatal(err)
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				if res := <-h.Done; res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

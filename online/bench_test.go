package online

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkSubmitDispatch measures end-to-end submit -> place -> run ->
// complete throughput with no-op task bodies.
func BenchmarkSubmitDispatch(b *testing.B) {
	s, err := New(3, 4)
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer s.Close()
	est := []float64{3, 1, 5}
	noop := func(context.Context, ProcID) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Submit(Task{Name: "t", EstMs: est, Run: noop})
		if err != nil {
			b.Fatal(err)
		}
		if res := <-h.Done; res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkBurst measures a pipelined burst: submit everything, then wait.
func BenchmarkBurst(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			s, err := New(procs, 4)
			if err != nil {
				b.Fatal(err)
			}
			s.Start()
			defer s.Close()
			est := make([]float64, procs)
			for i := range est {
				est[i] = float64(i + 1)
			}
			noop := func(context.Context, ProcID) error { return nil }
			b.ReportAllocs()
			b.ResetTimer()
			handles := make([]*Handle, 0, b.N)
			for i := 0; i < b.N; i++ {
				h, err := s.Submit(Task{Name: "t", EstMs: est, Run: noop})
				if err != nil {
					b.Fatal(err)
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				if res := <-h.Done; res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected marks a task failure manufactured by a FaultPlan rather than
// the task's own Run. Chaos tests and the -chaos smoke distinguish it from
// organic failures with errors.Is.
var ErrInjected = errors.New("online: injected fault")

// FaultKind distinguishes injected-fault rule types.
type FaultKind int

const (
	// ProcCrash fails every attempt on one processor with ErrInjected
	// during a window — a processor returning garbage fast.
	ProcCrash FaultKind = iota
	// ProcHang blocks attempts on one processor during a window until the
	// attempt's context is cancelled (timeout or shutdown) — a processor
	// that silently wedges. Attempts without a timeout hang until Close.
	ProcHang
	// ProcFlaky fails attempts on one processor with probability Prob,
	// regardless of window.
	ProcFlaky
	// KindFlaky fails attempts of tasks whose name starts with Name with
	// probability Prob, on any processor — a bad task class rather than a
	// bad processor.
	KindFlaky
	// ProcLatency adds a fixed delay to every attempt on one processor
	// (cancellable, so a timeout still fires on schedule).
	ProcLatency
)

// String names the kind, matching the ParseFaultPlan spec syntax.
func (k FaultKind) String() string {
	switch k {
	case ProcCrash:
		return "crash"
	case ProcHang:
		return "hang"
	case ProcFlaky:
		return "flaky"
	case KindFlaky:
		return "kind"
	case ProcLatency:
		return "lat"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultRule is one injection rule of a FaultPlan.
type FaultRule struct {
	Kind FaultKind
	// Proc is the affected processor (all rules except KindFlaky).
	Proc ProcID
	// Name is the task-name prefix a KindFlaky rule matches.
	Name string
	// StartMs and EndMs bound crash/hang windows in milliseconds since
	// Begin; EndMs <= 0 means open-ended.
	StartMs, EndMs float64
	// Prob is the per-attempt failure probability (ProcFlaky, KindFlaky).
	Prob float64
	// DelayMs is the added latency per attempt (ProcLatency).
	DelayMs float64
}

func (r FaultRule) validate(i int) error {
	switch r.Kind {
	case ProcCrash, ProcHang, ProcLatency, ProcFlaky:
		if r.Proc < 0 {
			return fmt.Errorf("online: fault rule %d has negative processor %d", i, r.Proc)
		}
	case KindFlaky:
		if r.Name == "" {
			return fmt.Errorf("online: fault rule %d (kind) needs a task-name prefix", i)
		}
	default:
		return fmt.Errorf("online: fault rule %d has unknown kind %d", i, int(r.Kind))
	}
	switch r.Kind {
	case ProcCrash, ProcHang:
		if r.StartMs < 0 || math.IsNaN(r.StartMs) || math.IsInf(r.StartMs, 0) {
			return fmt.Errorf("online: fault rule %d start %v must be non-negative and finite", i, r.StartMs)
		}
		if r.EndMs > 0 && r.EndMs <= r.StartMs {
			return fmt.Errorf("online: fault rule %d window [%v, %v) is empty", i, r.StartMs, r.EndMs)
		}
	case ProcFlaky, KindFlaky:
		if !(r.Prob > 0 && r.Prob <= 1) {
			return fmt.Errorf("online: fault rule %d probability %v must be in (0, 1]", i, r.Prob)
		}
	case ProcLatency:
		if !(r.DelayMs > 0) || math.IsInf(r.DelayMs, 0) {
			return fmt.Errorf("online: fault rule %d delay %v must be positive and finite", i, r.DelayMs)
		}
	}
	return nil
}

// FaultPlan injects failures into task execution for chaos testing, in the
// spirit of internal/perturb's degradation schedules but acting on the
// live scheduler: wrap each task's Run with Wrap and the plan decides —
// deterministically from its seed and a draw counter — whether the attempt
// crashes, hangs, gains latency, or proceeds. A FaultPlan is immutable
// after construction and safe for concurrent use.
type FaultPlan struct {
	seed    uint64
	rules   []FaultRule
	draws   atomic.Uint64
	startNs atomic.Int64 // window anchor; set once by Begin
}

// NewFaultPlan validates the rules and returns a plan seeded for
// deterministic probability draws.
func NewFaultPlan(seed int64, rules []FaultRule) (*FaultPlan, error) {
	p := &FaultPlan{seed: uint64(seed), rules: make([]FaultRule, len(rules))}
	copy(p.rules, rules)
	for i, r := range p.rules {
		if err := r.validate(i); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Rules returns a copy of the plan's rules.
func (fp *FaultPlan) Rules() []FaultRule {
	out := make([]FaultRule, len(fp.rules))
	copy(out, fp.rules)
	return out
}

// Empty reports whether the plan holds no rules.
func (fp *FaultPlan) Empty() bool { return fp == nil || len(fp.rules) == 0 }

// Begin anchors the plan's crash/hang windows at the current instant (the
// first call wins; later calls are no-ops). Wrap anchors lazily on the
// first attempt if Begin was never called.
func (fp *FaultPlan) Begin() {
	fp.startNs.CompareAndSwap(0, time.Now().UnixNano())
}

// elapsedMs returns milliseconds since the window anchor, anchoring now if
// needed.
func (fp *FaultPlan) elapsedMs() float64 {
	ns := fp.startNs.Load()
	if ns == 0 {
		fp.Begin()
		ns = fp.startNs.Load()
	}
	return durMs(time.Duration(time.Now().UnixNano() - ns))
}

// flip draws a deterministic pseudo-random number in [0, 1) from the seed
// and a global draw counter. The sequence of draws depends on attempt
// interleaving, but the stream itself is reproducible for a fixed seed.
func (fp *FaultPlan) flip() float64 {
	n := fp.draws.Add(1)
	return float64(splitmix64(fp.seed^(n*0x9e3779b97f4a7c15))>>11) / float64(uint64(1)<<53)
}

func inWindow(at, start, end float64) bool {
	return at >= start && (end <= 0 || at < end)
}

// Wrap decorates one task's Run with the plan's injections. The returned
// function applies, in order: injected latency, crash/hang windows, then
// the probabilistic flaky rules; if nothing fires it calls the original
// Run (a nil run succeeds after injections pass, like a nil Task.Run).
func (fp *FaultPlan) Wrap(name string, run func(context.Context, ProcID) error) func(context.Context, ProcID) error {
	if fp.Empty() {
		return run
	}
	return func(ctx context.Context, p ProcID) error {
		at := fp.elapsedMs()
		for i := range fp.rules {
			r := &fp.rules[i]
			switch r.Kind {
			case ProcLatency:
				if r.Proc == p {
					t := time.NewTimer(time.Duration(r.DelayMs * float64(time.Millisecond)))
					select {
					case <-t.C:
					case <-ctx.Done():
						t.Stop()
						return ctx.Err()
					}
				}
			case ProcCrash:
				if r.Proc == p && inWindow(at, r.StartMs, r.EndMs) {
					return fmt.Errorf("%w: crash on processor %d", ErrInjected, p)
				}
			case ProcHang:
				if r.Proc == p && inWindow(at, r.StartMs, r.EndMs) {
					<-ctx.Done()
					return ctx.Err()
				}
			case ProcFlaky:
				if r.Proc == p && fp.flip() < r.Prob {
					return fmt.Errorf("%w: flaky processor %d", ErrInjected, p)
				}
			case KindFlaky:
				if strings.HasPrefix(name, r.Name) && fp.flip() < r.Prob {
					return fmt.Errorf("%w: flaky task kind %q", ErrInjected, r.Name)
				}
			}
		}
		if run == nil {
			return nil
		}
		return run(ctx, p)
	}
}

// ParseFaultPlan parses a comma-separated fault spec, one rule per item:
//
//	crash:P:START:END  attempts on processor P fail during [START, END) ms
//	hang:P:START:END   attempts on processor P block until cancelled
//	flaky:P:PROB       attempts on processor P fail with probability PROB
//	kind:PREFIX:PROB   tasks named PREFIX* fail with probability PROB
//	lat:P:MS           attempts on processor P gain MS ms of latency
//
// END <= 0 leaves a crash/hang window open-ended. Example:
// "flaky:0:0.6,crash:1:0:1500,lat:2:5". Probability draws are seeded, so a
// fixed seed reproduces the same injection stream under the same attempt
// interleaving. An empty spec yields an empty plan.
func ParseFaultPlan(spec string, seed int64) (*FaultPlan, error) {
	var rules []FaultRule
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		bad := func() (*FaultPlan, error) {
			return nil, fmt.Errorf("online: malformed fault rule %q (want crash:P:START:END, hang:P:START:END, flaky:P:PROB, kind:PREFIX:PROB or lat:P:MS)", item)
		}
		var r FaultRule
		switch {
		case parts[0] == "kind" && len(parts) == 3:
			prob, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return bad()
			}
			r = FaultRule{Kind: KindFlaky, Name: parts[1], Prob: prob}
		default:
			nums := make([]float64, 0, 3)
			for _, p := range parts[1:] {
				v, err := strconv.ParseFloat(p, 64)
				if err != nil {
					return bad()
				}
				nums = append(nums, v)
			}
			switch parts[0] {
			case "crash", "hang":
				if len(nums) != 3 {
					return bad()
				}
				k := ProcCrash
				if parts[0] == "hang" {
					k = ProcHang
				}
				r = FaultRule{Kind: k, Proc: ProcID(nums[0]), StartMs: nums[1], EndMs: nums[2]}
			case "flaky":
				if len(nums) != 2 {
					return bad()
				}
				r = FaultRule{Kind: ProcFlaky, Proc: ProcID(nums[0]), Prob: nums[1]}
			case "lat":
				if len(nums) != 2 {
					return bad()
				}
				r = FaultRule{Kind: ProcLatency, Proc: ProcID(nums[0]), DelayMs: nums[1]}
			default:
				return bad()
			}
		}
		rules = append(rules, r)
	}
	return NewFaultPlan(seed, rules)
}

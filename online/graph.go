package online

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dfg"
)

// ErrDependency marks a task that never ran because a predecessor failed
// (or the scheduler closed before the predecessor finished). The Result of
// such a task wraps ErrDependency.
var ErrDependency = errors.New("online: dependency failed")

// GraphTask is one node of a dependency graph submitted with SubmitGraph.
type GraphTask struct {
	Task
	// Deps lists the indices (into the SubmitGraph slice) of the tasks
	// that must finish before this one may start. Duplicates are ignored;
	// cycles are rejected at submission.
	Deps []int
}

// GraphResult reports a finished graph submission.
type GraphResult struct {
	// Results holds one Result per task, indexed like the submitted slice.
	// Tasks skipped because a dependency failed carry an error wrapping
	// ErrDependency.
	Results []Result
	// Err is the first task or scheduling error, nil when every task ran
	// cleanly.
	Err error
}

// GraphHandle tracks a submitted task graph.
type GraphHandle struct {
	// Done receives exactly one GraphResult when every task has finished
	// or been skipped.
	Done <-chan GraphResult
}

// graphJob tracks one in-flight graph: the CSR adjacency drives successor
// release and indeg the readiness frontier — the same machinery as the
// simulator's heap-Kahn topological order, except releases happen on real
// completions instead of simulated ones.
type graphJob struct {
	s     *Scheduler
	g     *dfg.Graph
	id    uint64 // registry key; see Scheduler.graphs
	tasks []*liveTask
	done  chan GraphResult

	mu      sync.Mutex
	results []Result
	indeg   []int32
	failed  []bool // a predecessor (transitively) failed
	settled []bool // result recorded (finished, failed or skipped)
	remain  int
	err     error
}

// SubmitGraph admits a whole dependency graph: entry tasks are submitted
// immediately and every other task is released the moment its last
// predecessor finishes, so independent branches overlap across processors
// while the APT rule decides each placement. Releases bypass the admission
// queue bound — an admitted graph is never half-rejected.
//
// If a task fails, its transitive dependents are skipped with an error
// wrapping ErrDependency and the handle still completes. Tasks are
// validated (estimates, dependency indices, acyclicity) before anything is
// submitted; on error nothing runs.
func (s *Scheduler) SubmitGraph(tasks []GraphTask) (*GraphHandle, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("online: empty graph")
	}
	if s.closed.Load() || s.draining.Load() {
		return nil, ErrClosed
	}
	if !s.started.Load() {
		return nil, fmt.Errorf("online: SubmitGraph before Start")
	}
	// Build the dependency DAG with the shared data layer: the Builder's
	// sort+dedup pass produces CSR adjacency and verifies acyclicity via
	// the same heap-Kahn topological order the simulator relies on.
	b := dfg.NewBuilder()
	for i, t := range tasks {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("task-%d", i)
		}
		b.AddKernel(dfg.Kernel{Name: name, DataElems: 1})
	}
	for i, t := range tasks {
		for _, d := range t.Deps {
			if d < 0 || d >= len(tasks) {
				return nil, fmt.Errorf("online: task %d dependency %d out of range [0,%d)", i, d, len(tasks))
			}
			b.AddEdge(dfg.KernelID(d), dfg.KernelID(i))
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("online: invalid task graph: %w", err)
	}

	n := len(tasks)
	job := &graphJob{
		s:       s,
		g:       g,
		tasks:   make([]*liveTask, n),
		done:    make(chan GraphResult, 1),
		results: make([]Result, n),
		indeg:   make([]int32, n),
		failed:  make([]bool, n),
		settled: make([]bool, n),
		remain:  n,
	}
	for i := range tasks {
		i := i
		lt, err := s.prepare(tasks[i].Task, func(res Result) { job.taskDone(i, res) })
		if err != nil {
			return nil, err
		}
		job.tasks[i] = lt
		job.indeg[i] = int32(g.InDegree(dfg.KernelID(i)))
	}

	// Register before the first release: a snapshot taken mid-submission
	// must see the job, or its not-yet-finished tasks would be lost.
	s.graphRegister(job)

	// Release the entry frontier; sequence stamps are assigned in ID
	// order, so simultaneous entries keep a deterministic queue order.
	for _, id := range g.Entries() {
		job.release(int(id))
	}
	return &GraphHandle{Done: job.done}, nil
}

// graphRegister tracks an in-flight graph job for Snapshot.
func (s *Scheduler) graphRegister(j *graphJob) {
	s.graphs.mu.Lock()
	s.graphs.next++
	j.id = s.graphs.next
	s.graphs.m[j.id] = j
	s.graphs.mu.Unlock()
}

// graphUnregister drops a completed job from the registry.
func (s *Scheduler) graphUnregister(id uint64) {
	s.graphs.mu.Lock()
	delete(s.graphs.m, id)
	s.graphs.mu.Unlock()
}

// graphJobs returns the in-flight jobs in submission order.
func (s *Scheduler) graphJobs() []*graphJob {
	s.graphs.mu.Lock()
	jobs := make([]*graphJob, 0, len(s.graphs.m))
	for _, j := range s.graphs.m {
		jobs = append(jobs, j)
	}
	s.graphs.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	return jobs
}

// release admits one ready task. Scheduling errors (scheduler closed) are
// folded into the task's result so the graph always completes.
func (j *graphJob) release(i int) {
	if err := j.s.submitTask(j.tasks[i], true); err != nil {
		j.taskDone(i, Result{Task: j.tasks[i].task, Proc: -1, Err: err})
	}
}

// taskDone records one finished (or skipped) task and releases every
// successor whose last dependency this completion satisfied. It runs on
// the finishing worker's goroutine; releases and skip propagation happen
// outside the job lock, so a release that fails synchronously (scheduler
// closing) can re-enter taskDone without deadlock.
func (j *graphJob) taskDone(i int, res Result) {
	j.mu.Lock()
	j.results[i] = res
	j.settled[i] = true
	j.remain--
	if res.Err != nil {
		j.failed[i] = true
		if j.err == nil {
			j.err = fmt.Errorf("online: task %d (%q): %w", i, j.tasks[i].task.Name, res.Err)
		}
	}
	var ready, skipped []int
	for _, succ := range j.g.Succs(dfg.KernelID(i)) {
		if j.failed[i] {
			j.failed[succ] = true
		}
		j.indeg[succ]--
		if j.indeg[succ] == 0 {
			if j.failed[succ] {
				skipped = append(skipped, int(succ))
			} else {
				ready = append(ready, int(succ))
			}
		}
	}
	finished := j.remain == 0
	j.mu.Unlock()

	for _, succ := range ready {
		j.release(succ)
	}
	for _, succ := range skipped {
		j.taskDone(succ, Result{
			Task: j.tasks[succ].task,
			Proc: -1,
			Err:  fmt.Errorf("%w (dependency of task %d unmet)", ErrDependency, succ),
		})
	}
	if finished {
		j.s.graphUnregister(j.id)
		j.done <- GraphResult{Results: j.results, Err: j.err}
	}
}

// snapshotFrontier serialises the job's unfinished portion: every node not
// yet settled and not marked by a failed predecessor, with dependency
// edges remapped to the surviving subset. Edges to already-finished
// predecessors are dropped — their completion is the fact the snapshot
// preserves. Returns false when nothing remains to carry over.
func (j *graphJob) snapshotFrontier() (SnapshotGraph, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.remain == 0 {
		return SnapshotGraph{}, false
	}
	idx := make(map[int]int, j.remain)
	var keep []int
	for i := range j.tasks {
		if !j.settled[i] && !j.failed[i] {
			idx[i] = len(keep)
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return SnapshotGraph{}, false
	}
	sg := SnapshotGraph{Tasks: make([]SnapshotTask, len(keep))}
	for out, i := range keep {
		var deps []int
		for _, p := range j.g.Preds(dfg.KernelID(i)) {
			if np, ok := idx[int(p)]; ok {
				deps = append(deps, np)
			}
		}
		sg.Tasks[out] = snapTask(&j.tasks[i].task, deps, int(j.tasks[i].attempt.Load()))
	}
	return sg, true
}

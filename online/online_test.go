package online

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newStarted(t *testing.T, np int, alpha float64) *Scheduler {
	t.Helper()
	s, err := New(np, alpha)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := New(3, 0.5); err == nil {
		t.Error("alpha < 1 accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newStarted(t, 3, 4)
	if _, err := s.Submit(Task{EstMs: []float64{1, 2}}); err == nil {
		t.Error("wrong estimate count accepted")
	}
	if _, err := s.Submit(Task{EstMs: []float64{1, 0, 2}}); err == nil {
		t.Error("non-positive estimate accepted")
	}
	if _, err := s.Submit(Task{EstMs: []float64{1, 2, 3}, XferMs: []float64{1}}); err == nil {
		t.Error("wrong transfer count accepted")
	}
}

func TestSubmitBeforeStart(t *testing.T) {
	s, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Task{EstMs: []float64{1, 2}}); err == nil {
		t.Error("Submit before Start accepted")
	}
	s.Start()
	s.Close()
}

func TestIdleBestProcessorWins(t *testing.T) {
	s := newStarted(t, 3, 4)
	h, err := s.Submit(Task{Name: "t", EstMs: []float64{10, 1, 50}})
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Proc != 1 || res.Alt {
		t.Errorf("placed on %d (alt=%v), want best processor 1", res.Proc, res.Alt)
	}
}

// blockingTask returns a task that holds its processor until release is
// closed, plus a channel that reports when it started.
func blockingTask(name string, est []float64) (Task, chan struct{}, chan struct{}) {
	started := make(chan struct{})
	release := make(chan struct{})
	return Task{
		Name:  name,
		EstMs: est,
		Run: func(ctx context.Context, p ProcID) error {
			close(started)
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}, started, release
}

func TestAlternativeWithinThreshold(t *testing.T) {
	s := newStarted(t, 3, 4)
	// Occupy processor 1 (the best for everything here).
	blocker, started, release := blockingTask("blocker", []float64{10, 1, 50})
	defer close(release)
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	// Next task: best is busy processor 1 (est 2); alternative processor 0
	// costs 5 <= 4*2, processor 2 costs 50 > 8.
	h, err := s.Submit(Task{Name: "t", EstMs: []float64{5, 2, 50}})
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if res.Proc != 0 || !res.Alt {
		t.Errorf("placed on %d (alt=%v), want alternative processor 0", res.Proc, res.Alt)
	}
	if got := s.Stats().AltAssignments; got != 1 {
		t.Errorf("AltAssignments = %d, want 1", got)
	}
}

func TestStrictWaitingAtAlphaOne(t *testing.T) {
	s := newStarted(t, 2, 1)
	blocker, started, release := blockingTask("blocker", []float64{1, 10})
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	// Best processor 0 is busy; alternative costs 3 > 1*1, so the task
	// must wait for processor 0.
	h, err := s.Submit(Task{Name: "w", EstMs: []float64{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-h.Done:
		t.Fatalf("task ran early on %d", res.Proc)
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	res := <-h.Done
	if res.Proc != 0 || res.Alt {
		t.Errorf("placed on %d (alt=%v), want best processor 0 after waiting", res.Proc, res.Alt)
	}
}

func TestTransferEstimateBlocksAlternative(t *testing.T) {
	s := newStarted(t, 2, 2)
	blocker, started, release := blockingTask("blocker", []float64{1, 10})
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	// Alternative exec 1.5 <= 2*1, but transfer 10 pushes it over.
	h, err := s.Submit(Task{Name: "x", EstMs: []float64{1, 1.5}, XferMs: []float64{0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-h.Done:
		t.Fatalf("task ran early on %d", res.Proc)
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if res := <-h.Done; res.Proc != 0 {
		t.Errorf("placed on %d, want 0", res.Proc)
	}
}

func TestManyTasksAllComplete(t *testing.T) {
	s := newStarted(t, 3, 4)
	const n = 200
	var handles []*Handle
	for i := 0; i < n; i++ {
		h, err := s.Submit(Task{
			Name:  fmt.Sprintf("t%d", i),
			EstMs: []float64{float64(1 + i%7), float64(1 + (i*3)%5), float64(1 + (i*5)%11)},
			Run: func(ctx context.Context, p ProcID) error {
				time.Sleep(time.Duration(i%3) * time.Microsecond)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		if res := <-h.Done; res.Err != nil {
			t.Fatalf("task %d: %v", i, res.Err)
		}
	}
	st := s.Stats()
	if st.Completed != n || st.Submitted != n {
		t.Errorf("stats = %+v, want %d completed", st, n)
	}
	total := 0
	for _, c := range st.PerProc {
		total += c
	}
	if total != n {
		t.Errorf("per-proc sum = %d, want %d", total, n)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	s := newStarted(t, 4, 4)
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h, err := s.Submit(Task{
					Name:  fmt.Sprintf("g%d-t%d", g, i),
					EstMs: []float64{1, 2, 3, 4},
				})
				if err != nil {
					errs <- err
					return
				}
				if res := <-h.Done; res.Err != nil {
					errs <- res.Err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Completed != goroutines*per {
		t.Errorf("completed = %d, want %d", st.Completed, goroutines*per)
	}
}

func TestCloseCancelsAndRejects(t *testing.T) {
	s, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	blocker, started, _ := blockingTask("b", []float64{1, 10})
	h, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// A queued task that cannot start (best busy, alt out of threshold).
	queued, err := s.Submit(Task{Name: "q", EstMs: []float64{1, 100}})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if res := <-h.Done; !errors.Is(res.Err, context.Canceled) {
		t.Errorf("running task err = %v, want context.Canceled", res.Err)
	}
	if res := <-queued.Done; !errors.Is(res.Err, ErrClosed) {
		t.Errorf("queued task err = %v, want ErrClosed", res.Err)
	}
	if _, err := s.Submit(Task{EstMs: []float64{1, 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close err = %v, want ErrClosed", err)
	}
	// Idempotent.
	s.Close()
}

func TestRunErrorPropagates(t *testing.T) {
	s := newStarted(t, 2, 4)
	boom := errors.New("boom")
	h, err := s.Submit(Task{
		EstMs: []float64{1, 2},
		Run:   func(context.Context, ProcID) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-h.Done; !errors.Is(res.Err, boom) {
		t.Errorf("err = %v, want boom", res.Err)
	}
}

// TestSweepDoesNotRetainCompletedTasks pins the queue-retention fix:
// after tasks drain, the pending queue's backing array must hold no
// *pendingTask pointers in its spare capacity. Before the fix, removal via
// append(s.pending[:i], s.pending[i+1:]...) left the final pointer alive
// in the vacated tail slot, so under sustained traffic completed tasks
// (and their captured closures) stayed reachable indefinitely.
func TestSweepDoesNotRetainCompletedTasks(t *testing.T) {
	s := newStarted(t, 1, 1)
	// Occupy the only processor so subsequent submissions stack up in
	// the pending queue and grow its backing array.
	block := make(chan struct{})
	hold, err := s.Submit(Task{
		Name:  "hold",
		EstMs: []float64{1},
		Run:   func(ctx context.Context, p ProcID) error { <-block; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	var handles []*Handle
	for i := 0; i < 16; i++ {
		h, err := s.Submit(Task{Name: fmt.Sprintf("q%d", i), EstMs: []float64{1}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	close(block)
	<-hold.Done
	for _, h := range handles {
		<-h.Done
	}
	s.pend.mu.Lock()
	defer s.pend.mu.Unlock()
	if len(s.pend.q) != 0 {
		t.Fatalf("pending length = %d after drain, want 0", len(s.pend.q))
	}
	spare := s.pend.q[:cap(s.pend.q)]
	for i, pt := range spare {
		if pt != nil {
			t.Errorf("backing array slot %d still retains task %q after completion", i, pt.task.Name)
		}
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for j, pt := range st.q[:cap(st.q)] {
			if pt != nil {
				t.Errorf("stripe %d slot %d still retains task %q", i, j, pt.task.Name)
			}
		}
		st.mu.Unlock()
	}
}

// TestStartCloseRace pins the lifecycle serialisation: Close racing Start
// must neither panic on an unassigned context nor hang on the sweeper
// channel, whichever side wins.
func TestStartCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		s, err := New(2, 4)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); s.Start() }()
		go func() { defer wg.Done(); s.Close() }()
		wg.Wait()
		s.Close() // idempotent regardless of which side won
		if _, err := s.Submit(Task{EstMs: []float64{1, 1}}); err == nil {
			t.Fatal("Submit accepted after Close")
		}
	}
}

func TestFIFOOrderAmongWaiters(t *testing.T) {
	s := newStarted(t, 1, 4)
	// Single processor: tasks must complete in submission order.
	var mu sync.Mutex
	var order []string
	var handles []*Handle
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("t%d", i)
		h, err := s.Submit(Task{
			Name:  name,
			EstMs: []float64{1},
			Run: func(ctx context.Context, p ProcID) error {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		<-h.Done
	}
	for i, name := range order {
		if want := fmt.Sprintf("t%d", i); name != want {
			t.Fatalf("execution order = %v, want FIFO", order)
		}
	}
}

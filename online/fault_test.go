package online

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func newStartedCfg(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	return s
}

// Regression: a panicking Run must not kill the worker goroutine or leave
// its processor stranded in the busy state — the panic becomes an
// ErrPanicked failure and the processor keeps serving tasks.
func TestPanicRecovery(t *testing.T) {
	s := newStarted(t, 1, 4)
	h, err := s.Submit(Task{
		Name:  "boom",
		EstMs: []float64{1},
		Run:   func(context.Context, ProcID) error { panic("kaboom") },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if !errors.Is(res.Err, ErrPanicked) {
		t.Fatalf("want ErrPanicked, got %v", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "kaboom") {
		t.Errorf("panic value lost from error: %v", res.Err)
	}
	// The single processor must still be alive and claimable.
	h2, err := s.Submit(Task{Name: "after", EstMs: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res2 := <-h2.Done:
		if res2.Err != nil {
			t.Fatalf("task after panic failed: %v", res2.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("processor stranded after panic: follow-up task never ran")
	}
	st := s.Stats()
	if st.Panics != 1 {
		t.Errorf("Stats.Panics = %d, want 1", st.Panics)
	}
}

// A Run that ignores its context is abandoned at the timeout: the task
// fails with ErrTimeout and the processor is freed for the next task even
// though the hung call is still blocked.
func TestTimeoutFreesProcessor(t *testing.T) {
	s := newStarted(t, 1, 4)
	hung := make(chan struct{})
	t.Cleanup(func() { close(hung) })
	h, err := s.Submit(Task{
		Name:      "hang",
		EstMs:     []float64{1},
		TimeoutMs: 20,
		Run:       func(context.Context, ProcID) error { <-hung; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", res.Err)
	}
	h2, err := s.Submit(Task{Name: "after", EstMs: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res2 := <-h2.Done:
		if res2.Err != nil {
			t.Fatalf("task after timeout failed: %v", res2.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("processor not freed after timeout")
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Errorf("Stats.Timeouts = %d, want 1", st.Timeouts)
	}
}

// Config.DefaultTimeoutMs applies to tasks that leave TimeoutMs zero, and
// a negative per-task TimeoutMs opts out of the default.
func TestDefaultTimeout(t *testing.T) {
	s := newStartedCfg(t, Config{Procs: 2, Alpha: 4, DefaultTimeoutMs: 20})
	block := func(ctx context.Context, _ ProcID) error {
		<-ctx.Done()
		return ctx.Err()
	}
	h, err := s.Submit(Task{Name: "inherit", EstMs: []float64{1, 2}, Run: block})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-h.Done; !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("default timeout not applied: %v", res.Err)
	}
	done := make(chan struct{})
	h2, err := s.Submit(Task{
		Name: "optout", EstMs: []float64{1, 2}, TimeoutMs: -1,
		Run: func(context.Context, ProcID) error { <-done; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-h2.Done:
		t.Fatalf("opted-out task settled early: %v", res.Err)
	case <-time.After(100 * time.Millisecond):
	}
	close(done)
	if res := <-h2.Done; res.Err != nil {
		t.Fatalf("opted-out task failed: %v", res.Err)
	}
}

// A failed attempt retries, and the retry prefers a different processor
// than the one that just failed.
func TestRetryPrefersDifferentProc(t *testing.T) {
	s := newStartedCfg(t, Config{
		Procs: 2, Alpha: 100,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	var procs [2]atomic.Int32
	h, err := s.Submit(Task{
		Name: "flappy",
		// Processor 0 is the strong preference; alpha=100 admits 1 too.
		EstMs: []float64{1, 10},
		Run: func(_ context.Context, p ProcID) error {
			procs[p].Add(1)
			if p == 0 {
				return fmt.Errorf("injected failure on best proc")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if res.Err != nil {
		t.Fatalf("retry never succeeded: %v", res.Err)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", res.Attempts)
	}
	if res.Proc != 1 {
		t.Errorf("retry ran on proc %d, want the alternative proc 1", res.Proc)
	}
	if got := procs[0].Load(); got != 1 {
		t.Errorf("failed proc executed %d attempts, want 1", got)
	}
	if st := s.Stats(); st.Retries != 1 {
		t.Errorf("Stats.Retries = %d, want 1", st.Retries)
	}
}

// With a single processor the avoid preference must fall back rather than
// strand the retry.
func TestRetryFallsBackToOnlyProc(t *testing.T) {
	s := newStartedCfg(t, Config{
		Procs: 1, Alpha: 4,
		Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	var calls atomic.Int32
	h, err := s.Submit(Task{
		Name:  "once",
		EstMs: []float64{1},
		Run: func(context.Context, ProcID) error {
			if calls.Add(1) == 1 {
				return fmt.Errorf("first attempt fails")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-h.Done:
		if res.Err != nil || res.Attempts != 2 {
			t.Fatalf("res = %+v, want success on attempt 2", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry stranded on single-processor scheduler")
	}
}

// A task that fails every attempt settles once with an error that wraps
// the final attempt's error and reports the exhausted budget.
func TestRetryBudgetExhausted(t *testing.T) {
	s := newStartedCfg(t, Config{
		Procs: 2, Alpha: 4,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	sentinel := errors.New("always broken")
	var calls atomic.Int32
	h, err := s.Submit(Task{
		Name:  "doomed",
		EstMs: []float64{1, 2},
		Run: func(context.Context, ProcID) error {
			calls.Add(1)
			return sentinel
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-h.Done
	if !errors.Is(res.Err, sentinel) {
		t.Fatalf("final error does not wrap the attempt error: %v", res.Err)
	}
	if res.Attempts != 3 || calls.Load() != 3 {
		t.Errorf("attempts = %d (ran %d), want 3", res.Attempts, calls.Load())
	}
	if !strings.Contains(res.Err.Error(), "3 attempts") {
		t.Errorf("error does not report the exhausted budget: %v", res.Err)
	}
	st := s.Stats()
	if st.Retries != 2 || st.Failed != 1 || st.Completed != 1 {
		t.Errorf("stats retries=%d failed=%d completed=%d, want 2/1/1", st.Retries, st.Failed, st.Completed)
	}
}

// In a graph, successors are only doomed after the predecessor exhausts
// its retry budget — a flaky predecessor that eventually succeeds keeps
// the graph alive.
func TestGraphRetriesBeforeDooming(t *testing.T) {
	s := newStartedCfg(t, Config{
		Procs: 2, Alpha: 4,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	var calls atomic.Int32
	gh, err := s.SubmitGraph([]GraphTask{
		{Task: Task{Name: "flaky-root", EstMs: []float64{1, 2}, Run: func(context.Context, ProcID) error {
			if calls.Add(1) < 3 {
				return fmt.Errorf("transient")
			}
			return nil
		}}},
		{Task: Task{Name: "child", EstMs: []float64{1, 2}}, Deps: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gres := <-gh.Done
	if gres.Err != nil {
		t.Fatalf("graph failed despite retry budget: %v", gres.Err)
	}
	if gres.Results[0].Attempts != 3 {
		t.Errorf("root attempts = %d, want 3", gres.Results[0].Attempts)
	}
	if gres.Results[1].Err != nil {
		t.Errorf("child doomed despite root success: %v", gres.Results[1].Err)
	}
}

// Exhausting the root's budget dooms the successor with ErrDependency.
func TestGraphDoomsAfterBudget(t *testing.T) {
	s := newStartedCfg(t, Config{
		Procs: 2, Alpha: 4,
		Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	gh, err := s.SubmitGraph([]GraphTask{
		{Task: Task{Name: "root", EstMs: []float64{1, 2}, Run: func(context.Context, ProcID) error {
			return fmt.Errorf("permanent")
		}}},
		{Task: Task{Name: "child", EstMs: []float64{1, 2}}, Deps: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gres := <-gh.Done
	if gres.Err == nil {
		t.Fatal("graph succeeded despite permanent root failure")
	}
	if gres.Results[0].Attempts != 2 {
		t.Errorf("root attempts = %d, want 2", gres.Results[0].Attempts)
	}
	if !errors.Is(gres.Results[1].Err, ErrDependency) {
		t.Errorf("child error = %v, want ErrDependency", gres.Results[1].Err)
	}
}

// retryDelay is deterministic for a fixed seed, grows exponentially and
// stays within [base/2·2^k, base·2^k) and under MaxBackoff.
func TestRetryDelayDeterministic(t *testing.T) {
	mk := func(seed int64) *Scheduler {
		s, err := NewWithConfig(Config{Procs: 1, Alpha: 4, Retry: RetryPolicy{
			MaxAttempts: 5, BaseBackoff: 4 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, JitterSeed: seed,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(7), mk(7)
	c := mk(8)
	diverged := false
	for attempt := 1; attempt <= 4; attempt++ {
		for seq := uint64(1); seq <= 10; seq++ {
			da := a.retryDelay(attempt, seq)
			if db := b.retryDelay(attempt, seq); da != db {
				t.Fatalf("same seed diverged at attempt %d seq %d: %v vs %v", attempt, seq, da, db)
			}
			if dc := c.retryDelay(attempt, seq); da != dc {
				diverged = true
			}
			base := 4 * time.Millisecond << (attempt - 1)
			if base > 20*time.Millisecond {
				base = 20 * time.Millisecond
			}
			if da < base/2 || da >= base {
				t.Fatalf("delay %v outside [%v, %v) at attempt %d", da, base/2, base, attempt)
			}
		}
	}
	if !diverged {
		t.Error("different seeds produced identical delay streams")
	}
}

// Consecutive failures trip the breaker: the processor is withdrawn from
// placement, /ProcHealth reports it open, and after the cooldown a
// half-open probe closes it again.
func TestBreakerTripAndRecover(t *testing.T) {
	s := newStartedCfg(t, Config{
		Procs: 2, Alpha: 1, // alpha=1: no alternative placements, strict pinning
		Breaker: &BreakerConfig{FailureThreshold: 2, Cooldown: 50 * time.Millisecond},
	})
	var fail atomic.Bool
	fail.Store(true)
	// Pin to proc 0 (alpha=1 means a task never runs elsewhere).
	pinned := Task{Name: "pin0", EstMs: []float64{1, 1000}, Run: func(context.Context, ProcID) error {
		if fail.Load() {
			return fmt.Errorf("broken")
		}
		return nil
	}}
	for i := 0; i < 2; i++ {
		h, err := s.Submit(pinned)
		if err != nil {
			t.Fatal(err)
		}
		if res := <-h.Done; res.Err == nil {
			t.Fatal("expected failure")
		}
	}
	ph := s.ProcHealth()
	if ph[0].State != "open" || ph[0].Healthy {
		t.Fatalf("proc 0 after %d failures: %+v, want open/unhealthy", 2, ph[0])
	}
	if ph[0].Trips != 1 {
		t.Errorf("trips = %d, want 1", ph[0].Trips)
	}
	if ph[1].State != "closed" || !ph[1].Healthy {
		t.Errorf("proc 1 affected: %+v", ph[1])
	}
	if st := s.Stats(); st.BreakerTrips != 1 || st.PerProcHealthy[0] || !st.PerProcHealthy[1] {
		t.Errorf("stats trips=%d healthy=%v", st.BreakerTrips, st.PerProcHealthy)
	}
	// While open, a task pinned to proc 0 must wait (never placed there).
	fail.Store(false)
	h, err := s.Submit(pinned)
	if err != nil {
		t.Fatal(err)
	}
	// After the cooldown the half-open probe runs it and closes the breaker.
	select {
	case res := <-h.Done:
		if res.Err != nil {
			t.Fatalf("probe task failed: %v", res.Err)
		}
		if res.Proc != 0 {
			t.Fatalf("probe ran on proc %d, want 0", res.Proc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("breaker never recovered")
	}
	waitFor(t, time.Second, func() bool { return s.ProcHealth()[0].State == "closed" })
}

// A failed half-open probe re-opens the breaker for another cooldown.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	s := newStartedCfg(t, Config{
		Procs:   2,
		Alpha:   1,
		Breaker: &BreakerConfig{FailureThreshold: 1, Cooldown: 30 * time.Millisecond},
	})
	fail := func(context.Context, ProcID) error { return fmt.Errorf("still broken") }
	pinned := Task{Name: "pin0", EstMs: []float64{1, 1000}, Run: fail}
	h, _ := s.Submit(pinned)
	<-h.Done
	waitFor(t, time.Second, func() bool { return s.ProcHealth()[0].State == "half-open" })
	h2, _ := s.Submit(pinned) // the probe, which fails
	<-h2.Done
	ph := s.ProcHealth()
	if ph[0].State != "open" {
		t.Fatalf("state after failed probe = %q, want open", ph[0].State)
	}
	if ph[0].Trips != 2 {
		t.Errorf("trips = %d, want 2", ph[0].Trips)
	}
}

// The timeout-rate rule trips the breaker even when consecutive failures
// are interleaved with successes.
func TestBreakerTimeoutRate(t *testing.T) {
	s := newStartedCfg(t, Config{
		Procs: 1, Alpha: 4,
		Breaker: &BreakerConfig{FailureThreshold: 100, TimeoutRate: 0.5, Window: 4, Cooldown: time.Minute},
	})
	hang := Task{Name: "h", EstMs: []float64{1}, TimeoutMs: 5, Run: func(ctx context.Context, _ ProcID) error {
		<-ctx.Done()
		return ctx.Err()
	}}
	ok := Task{Name: "ok", EstMs: []float64{1}}
	// ok, timeout, ok, timeout: 2/4 of the full window timed out.
	for i, task := range []Task{ok, hang, ok, hang} {
		h, err := s.Submit(task)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		<-h.Done
	}
	ph := s.ProcHealth()
	if ph[0].State != "open" {
		t.Fatalf("state = %q want open (window timeouts %d/%d)", ph[0].State, ph[0].WindowTimeouts, ph[0].WindowSize)
	}
}

// Retries parked in the registry are failed with ErrClosed at Close — no
// task is ever lost in the backoff gap.
func TestCloseFailsParkedRetries(t *testing.T) {
	s, err := NewWithConfig(Config{
		Procs: 1, Alpha: 4,
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Hour, MaxBackoff: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	h, err := s.Submit(Task{Name: "r", EstMs: []float64{1}, Run: func(context.Context, ProcID) error {
		return fmt.Errorf("fail into a long backoff")
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first attempt to fail and park.
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Retries == 1 })
	s.Close()
	select {
	case res := <-h.Done:
		if !errors.Is(res.Err, ErrClosed) {
			t.Fatalf("parked retry error = %v, want ErrClosed", res.Err)
		}
		if res.Attempts != 1 {
			t.Errorf("attempts = %d, want 1", res.Attempts)
		}
	default:
		t.Fatal("parked retry not settled by Close")
	}
	if st := s.Stats(); st.Settled != st.Submitted {
		t.Errorf("settled %d != submitted %d after Close", st.Settled, st.Submitted)
	}
}

// Drain waits for parked retries to re-run and settle organically.
func TestDrainWaitsForRetries(t *testing.T) {
	s, err := NewWithConfig(Config{
		Procs: 1, Alpha: 4,
		Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	var calls atomic.Int32
	h, err := s.Submit(Task{Name: "r", EstMs: []float64{1}, Run: func(context.Context, ProcID) error {
		if calls.Add(1) == 1 {
			return fmt.Errorf("transient")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-h.Done
	if res.Err != nil || res.Attempts != 2 {
		t.Fatalf("res = %+v, want success on attempt 2", res)
	}
}

// Config validation rejects nonsensical fault-tolerance parameters.
func TestFaultConfigValidation(t *testing.T) {
	bad := []Config{
		{Procs: 1, Alpha: 4, Retry: RetryPolicy{MaxAttempts: -1}},
		{Procs: 1, Alpha: 4, Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Second, MaxBackoff: time.Millisecond}},
		{Procs: 1, Alpha: 4, Breaker: &BreakerConfig{FailureThreshold: -1}},
		{Procs: 1, Alpha: 4, Breaker: &BreakerConfig{TimeoutRate: 1.5}},
		{Procs: 1, Alpha: 4, Breaker: &BreakerConfig{Window: -3}},
	}
	for i, cfg := range bad {
		if _, err := NewWithConfig(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	s := newStarted(t, 1, 4)
	if _, err := s.Submit(Task{EstMs: []float64{1}, TimeoutMs: -2}); err != nil {
		t.Errorf("negative TimeoutMs (explicit opt-out) rejected: %v", err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

package online

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrTimeout marks a task attempt that exceeded its execution bound
// (Task.TimeoutMs or Config.DefaultTimeoutMs). The worker abandons the
// attempt, frees the processor and — budget permitting — retries; a task
// whose final attempt times out settles with an error wrapping ErrTimeout.
var ErrTimeout = errors.New("online: task timed out")

// ErrPanicked marks a task attempt whose Run panicked. The worker recovers
// the panic and converts it into a normal failure, so a panicking task can
// never kill a worker goroutine or strand its processor.
var ErrPanicked = errors.New("online: task panicked")

// RetryPolicy controls automatic re-execution of failed task attempts.
// The zero value disables retries (every task gets exactly one attempt).
type RetryPolicy struct {
	// MaxAttempts is the total execution budget per task, including the
	// first attempt. 0 means 1 (no retries); values above 1 enable retry.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it up to MaxBackoff. Defaults to 1ms when retries are
	// enabled.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Defaults to 1s.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter stream: each delay is
	// drawn from [backoff/2, backoff) by a pure function of (seed, task
	// sequence, attempt), so reruns with the same seed back off
	// identically.
	JitterSeed int64
}

// withDefaults validates the policy and fills in the zero fields.
func (rp RetryPolicy) withDefaults() (RetryPolicy, error) {
	if rp.MaxAttempts == 0 {
		rp.MaxAttempts = 1
	}
	if rp.MaxAttempts < 1 {
		return rp, fmt.Errorf("online: Retry.MaxAttempts must be >= 1, got %d", rp.MaxAttempts)
	}
	if rp.BaseBackoff < 0 || rp.MaxBackoff < 0 {
		return rp, fmt.Errorf("online: Retry backoffs must be >= 0, got base %v max %v", rp.BaseBackoff, rp.MaxBackoff)
	}
	if rp.BaseBackoff == 0 {
		rp.BaseBackoff = time.Millisecond
	}
	if rp.MaxBackoff == 0 {
		rp.MaxBackoff = time.Second
	}
	if rp.MaxBackoff < rp.BaseBackoff {
		return rp, fmt.Errorf("online: Retry.MaxBackoff %v below BaseBackoff %v", rp.MaxBackoff, rp.BaseBackoff)
	}
	return rp, nil
}

// BreakerConfig enables per-processor circuit breakers. A breaker trips
// when a processor accumulates FailureThreshold consecutive failures, or
// when timeouts fill TimeoutRate of its sliding outcome window; a tripped
// (open) breaker withdraws the processor from placement — the sweeper and
// the submit fast path stop considering it, and its queued-up work
// re-places onto the remaining processors at the next sweep. After
// Cooldown the breaker turns half-open: the processor accepts exactly one
// probe task (the busy flag already serialises executions), and that
// probe's outcome either closes the breaker or re-opens it for another
// cooldown.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failed attempts
	// (errors, timeouts or panics) that trips the breaker. Default 5.
	FailureThreshold int
	// TimeoutRate trips the breaker when at least this fraction of a full
	// outcome window timed out, catching processors that hang without ever
	// returning errors. Default 0.5; must be in (0, 1].
	TimeoutRate float64
	// Window is the number of recent attempt outcomes tracked per
	// processor for the timeout-rate test. Default 20.
	Window int
	// Cooldown is the open → half-open delay before the breaker admits a
	// probe task. Default 1s.
	Cooldown time.Duration
}

// withDefaults validates and fills in the zero fields; a nil receiver
// (breakers disabled) passes through.
func (c *BreakerConfig) withDefaults() (*BreakerConfig, error) {
	if c == nil {
		return nil, nil
	}
	out := *c
	if out.FailureThreshold == 0 {
		out.FailureThreshold = 5
	}
	if out.TimeoutRate == 0 {
		out.TimeoutRate = 0.5
	}
	if out.Window == 0 {
		out.Window = 20
	}
	if out.Cooldown == 0 {
		out.Cooldown = time.Second
	}
	switch {
	case out.FailureThreshold < 1:
		return nil, fmt.Errorf("online: Breaker.FailureThreshold must be >= 1, got %d", out.FailureThreshold)
	case out.TimeoutRate <= 0 || out.TimeoutRate > 1:
		return nil, fmt.Errorf("online: Breaker.TimeoutRate must be in (0, 1], got %v", out.TimeoutRate)
	case out.Window < 1:
		return nil, fmt.Errorf("online: Breaker.Window must be >= 1, got %d", out.Window)
	case out.Cooldown < 0:
		return nil, fmt.Errorf("online: Breaker.Cooldown must be >= 0, got %v", out.Cooldown)
	}
	return &out, nil
}

// Breaker states. The placement path never reads these — it consults only
// the processor's atomic healthy flag, which open (and only open) clears.
const (
	bkClosed = iota
	bkOpen
	bkHalfOpen
)

func breakerStateName(state int8) string {
	switch state {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one processor's circuit-breaker state. It is only touched on
// the completion path (worker goroutine), by the cooldown timer and by
// observability readers — never on the submit hot path.
type breaker struct {
	mu          sync.Mutex
	state       int8
	consec      int    // consecutive failed attempts
	win         []int8 // outcome ring: 0 ok, 1 failure, 2 timeout
	wi, wn      int
	winTimeouts int
	trips       int
	lastNs      int64 // Unix nanoseconds of the last state transition
	timer       *time.Timer
}

// ProcHealth reports one processor's live health, as tracked by its
// circuit breaker.
type ProcHealth struct {
	Proc ProcID `json:"proc"`
	// Healthy mirrors the flag the placement path consults: false exactly
	// while the breaker is open.
	Healthy bool `json:"healthy"`
	// State is "closed", "open" or "half-open"; "disabled" when the
	// scheduler runs without a BreakerConfig.
	State string `json:"state"`
	// ConsecutiveFails counts failed attempts since the last success.
	ConsecutiveFails int `json:"consecutive_fails"`
	// WindowTimeouts of the last WindowSize attempt outcomes timed out.
	WindowTimeouts int `json:"window_timeouts"`
	WindowSize     int `json:"window_size"`
	// Trips counts open transitions since Start (including half-open
	// probes that failed).
	Trips int `json:"trips"`
	// SinceChangeMs is the time since the last breaker state transition.
	SinceChangeMs float64 `json:"since_change_ms"`
}

// ProcHealth returns every processor's live breaker state, indexed by
// processor.
func (s *Scheduler) ProcHealth() []ProcHealth {
	out := make([]ProcHealth, s.np)
	for p := range s.procs {
		pr := &s.procs[p]
		out[p] = ProcHealth{Proc: ProcID(p), Healthy: pr.healthy.Load(), State: "disabled"}
		if s.brk == nil {
			continue
		}
		b := &pr.brk
		b.mu.Lock()
		out[p].State = breakerStateName(b.state)
		out[p].ConsecutiveFails = b.consec
		out[p].WindowTimeouts = b.winTimeouts
		out[p].WindowSize = b.wn
		out[p].Trips = b.trips
		if b.lastNs != 0 {
			out[p].SinceChangeMs = durMs(time.Since(time.Unix(0, b.lastNs)))
		}
		b.mu.Unlock()
	}
	return out
}

// recordOutcome feeds one attempt outcome into the processor's breaker.
// It runs on the worker goroutine with the busy flag still held, so a trip
// publishes healthy=false before the processor can be claimed again — an
// open breaker never receives a placement.
func (s *Scheduler) recordOutcome(p int, failed, timedOut bool) {
	cfg := s.brk
	if cfg == nil {
		return
	}
	pr := &s.procs[p]
	b := &pr.brk
	b.mu.Lock()
	var code int8
	if timedOut {
		code = 2
	} else if failed {
		code = 1
	}
	if b.wn == len(b.win) {
		if b.win[b.wi] == 2 {
			b.winTimeouts--
		}
	} else {
		b.wn++
	}
	b.win[b.wi] = code
	b.wi = (b.wi + 1) % len(b.win)
	if code == 2 {
		b.winTimeouts++
	}
	if !failed {
		b.consec = 0
		if b.state == bkHalfOpen {
			// Probe succeeded: the processor is back.
			b.state = bkClosed
			b.lastNs = time.Now().UnixNano()
		}
		b.mu.Unlock()
		return
	}
	b.consec++
	trip := false
	switch b.state {
	case bkHalfOpen:
		trip = true // failed probe: re-open for another cooldown
	case bkClosed:
		trip = b.consec >= cfg.FailureThreshold ||
			(b.wn == len(b.win) && float64(b.winTimeouts) >= cfg.TimeoutRate*float64(len(b.win)))
	}
	if trip {
		b.state = bkOpen
		b.trips++
		b.lastNs = time.Now().UnixNano()
		pr.healthy.Store(false)
		s.breakerTrips.Add(1)
		if b.timer != nil {
			b.timer.Stop()
		}
		b.timer = time.AfterFunc(cfg.Cooldown, func() { s.probeReady(p) })
	}
	b.mu.Unlock()
}

// probeReady moves an open breaker to half-open after its cooldown: the
// processor becomes claimable again, and the next task placed on it is the
// probe whose outcome closes or re-opens the breaker (the busy flag
// guarantees at most one task runs on it before that outcome is recorded).
func (s *Scheduler) probeReady(p int) {
	if s.closed.Load() {
		return
	}
	pr := &s.procs[p]
	b := &pr.brk
	b.mu.Lock()
	if b.state != bkOpen {
		b.mu.Unlock()
		return
	}
	b.state = bkHalfOpen
	b.lastNs = time.Now().UnixNano()
	pr.healthy.Store(true)
	b.mu.Unlock()
	// Queued work that was waiting out the open breaker can probe now.
	s.wake()
}

// stopBreakerTimers cancels pending cooldown timers at shutdown. A timer
// that already fired is harmless: probeReady checks closed first.
func (s *Scheduler) stopBreakerTimers() {
	if s.brk == nil {
		return
	}
	for p := range s.procs {
		b := &s.procs[p].brk
		b.mu.Lock()
		if b.timer != nil {
			b.timer.Stop()
			b.timer = nil
		}
		b.mu.Unlock()
	}
}

// restoreBreaker re-arms one processor's breaker from snapshot state: an
// open breaker starts a fresh cooldown (the outage may have outlived the
// restart), a half-open one waits for its probe.
func (s *Scheduler) restoreBreaker(p int, st SnapshotBreaker) {
	if s.brk == nil {
		return
	}
	pr := &s.procs[p]
	b := &pr.brk
	b.mu.Lock()
	b.consec = st.ConsecutiveFails
	b.trips = st.Trips
	b.lastNs = time.Now().UnixNano()
	switch st.State {
	case "open":
		b.state = bkOpen
		pr.healthy.Store(false)
		if b.timer != nil {
			b.timer.Stop()
		}
		b.timer = time.AfterFunc(s.brk.Cooldown, func() { s.probeReady(p) })
	case "half-open":
		b.state = bkHalfOpen
	default:
		b.state = bkClosed
	}
	b.mu.Unlock()
}

// execute runs one attempt of a task on processor p, enforcing the task's
// timeout and converting panics into failures. With no timeout the Run is
// called synchronously; with one, it runs on a helper goroutine so a Run
// that ignores its context can be abandoned — the worker moves on and the
// processor is freed while the orphaned call winds down in the background
// (its eventual return value is discarded).
func (s *Scheduler) execute(lt *liveTask, p int) error {
	run := lt.task.Run
	if run == nil {
		return nil
	}
	if lt.timeout <= 0 {
		return runSafe(s.ctx, run, ProcID(p))
	}
	tctx, cancel := context.WithTimeout(s.ctx, lt.timeout)
	done := make(chan error, 1)
	go func() { done <- runSafe(tctx, run, ProcID(p)) }()
	var err error
	select {
	case err = <-done:
	case <-tctx.Done():
		select {
		case err = <-done: // finished while racing the timer
		default:
			err = tctx.Err()
		}
	}
	cancel()
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		// Either the abandon path above or a cooperative Run returning its
		// context error: both are this attempt hitting its bound.
		err = fmt.Errorf("%w after %v on processor %d", ErrTimeout, lt.timeout, p)
	}
	return err
}

// runSafe invokes a task's Run, converting a panic into an ErrPanicked
// failure instead of letting it unwind the worker goroutine.
func runSafe(ctx context.Context, run func(context.Context, ProcID) error, p ProcID) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrPanicked, r)
		}
	}()
	return run(ctx, p)
}

// shouldRetry decides whether a failed attempt re-enters placement:
// budget remaining, and the failure is the task's own (a cancellation from
// scheduler shutdown is terminal — retrying it would never converge).
func (s *Scheduler) shouldRetry(attempt int, err error) bool {
	if attempt >= s.retry.MaxAttempts {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrClosed) {
		return false
	}
	return !s.closed.Load()
}

// retryDelay computes the seeded exponential backoff for the retry after
// the attempt-th attempt: base·2^(attempt−1) capped at MaxBackoff, with
// deterministic equal-jitter in [d/2, d) drawn from (JitterSeed, seq,
// attempt).
func (s *Scheduler) retryDelay(attempt int, seq uint64) time.Duration {
	d := s.retry.BaseBackoff
	for i := 1; i < attempt && d < s.retry.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.retry.MaxBackoff {
		d = s.retry.MaxBackoff
	}
	h := splitmix64(uint64(s.retry.JitterSeed)<<1 ^ seq<<8 ^ uint64(attempt))
	frac := float64(h>>11) / float64(uint64(1)<<53)
	half := d / 2
	return half + time.Duration(frac*float64(half))
}

// splitmix64 is the standard 64-bit finaliser used as a stateless seeded
// hash: deterministic, well-mixed, and free of shared state, so concurrent
// draws need no lock and reruns reproduce exactly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryLater schedules a failed attempt's re-entry after its backoff. The
// task is parked in the retry registry (not the admission queue); when the
// timer fires it re-enters placement through the normal sweep path.
func (s *Scheduler) retryLater(lt *liveTask, attempt int) {
	delay := s.retryDelay(attempt, lt.seq)
	s.rt.mu.Lock()
	if s.closed.Load() {
		s.rt.mu.Unlock()
		s.deliver(lt, Result{Task: lt.task, Proc: -1, Attempts: attempt, Err: ErrClosed})
		return
	}
	s.rt.m[lt] = time.AfterFunc(delay, func() { s.retryFire(lt) })
	s.rt.mu.Unlock()
}

// retryFire is the backoff timer's callback: whoever removes the registry
// entry (this callback or failRetries at shutdown) owns the task's fate,
// so it settles exactly once.
func (s *Scheduler) retryFire(lt *liveTask) {
	s.rt.mu.Lock()
	if _, ok := s.rt.m[lt]; !ok {
		s.rt.mu.Unlock()
		return // shutdown already failed it
	}
	delete(s.rt.m, lt)
	s.rt.mu.Unlock()
	s.requeue(lt)
}

// requeue re-admits a retrying task. It rides the same inflight gate as
// submitTask, so a concurrent Close cannot strand the task between the
// closed check and the enqueue: either the task reaches the stripes before
// the sweeper's final drain, or it is failed here.
func (s *Scheduler) requeue(lt *liveTask) {
	s.inflight.Add(1)
	if s.closed.Load() {
		s.inflight.Add(-1)
		s.deliver(lt, Result{Task: lt.task, Proc: -1, Attempts: int(lt.attempt.Load()), Err: ErrClosed})
		return
	}
	// Unbounded: the task was admitted (and counted) at first submission;
	// the retained original sequence stamp keeps its FCFS position.
	_ = s.enqueue(lt, false)
	s.inflight.Add(-1)
}

// failRetries settles every task parked in the retry registry at shutdown.
func (s *Scheduler) failRetries() {
	s.rt.mu.Lock()
	lts := make([]*liveTask, 0, len(s.rt.m))
	for lt, tm := range s.rt.m {
		tm.Stop()
		lts = append(lts, lt)
	}
	clear(s.rt.m)
	s.rt.mu.Unlock()
	sort.Slice(lts, func(i, j int) bool { return lts[i].seq < lts[j].seq })
	for _, lt := range lts {
		s.deliver(lt, Result{Task: lt.task, Proc: -1, Attempts: int(lt.attempt.Load()), Err: ErrClosed})
	}
}

// retrySnapshot returns the externally-submitted tasks currently waiting
// out a backoff, in submission order (graph-internal retries are captured
// by their job's frontier instead).
func (s *Scheduler) retrySnapshot() []*liveTask {
	s.rt.mu.Lock()
	lts := make([]*liveTask, 0, len(s.rt.m))
	for lt := range s.rt.m {
		if lt.done != nil {
			lts = append(lts, lt)
		}
	}
	s.rt.mu.Unlock()
	sort.Slice(lts, func(i, j int) bool { return lts[i].seq < lts[j].seq })
	return lts
}

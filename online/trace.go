package online

import "sync"

// TraceEvent records one completed placement: where the task ran, how the
// decision related to its estimates, and the measured timings. Timestamps
// are milliseconds since Start, so events from one scheduler run share a
// time base and can be laid out on processor lanes directly.
type TraceEvent struct {
	// Seq is the global submission-order stamp (1-based).
	Seq uint64 `json:"seq"`
	// Name labels the task; Proc is the processor it ran on.
	Name string `json:"name"`
	Proc ProcID `json:"proc"`
	// Alt marks placements on a non-optimal processor via the threshold
	// rule.
	Alt bool `json:"alt"`
	// Attempt is which execution attempt this event records (1-based;
	// above 1 only for retried tasks).
	Attempt int `json:"attempt,omitempty"`
	// ArrivalMs, StartMs and FinishMs are milliseconds since Start.
	ArrivalMs float64 `json:"arrival_ms"`
	StartMs   float64 `json:"start_ms"`
	FinishMs  float64 `json:"finish_ms"`
	// QueueWaitMs is the arrival→execution-start delay.
	QueueWaitMs float64 `json:"queue_wait_ms"`
	// EstMs is the estimate for the processor the task actually ran on,
	// BestEstMs the estimate on its best processor (equal unless Alt), and
	// ActualMs the measured execution time — the estimate-vs-actual pair
	// that placement-quality analysis needs.
	EstMs     float64 `json:"est_ms"`
	BestEstMs float64 `json:"best_est_ms"`
	ActualMs  float64 `json:"actual_ms"`
	// Failed is true when Run returned an error.
	Failed bool `json:"failed,omitempty"`
}

// traceRing is a fixed-capacity ring of the most recent completions.
// Workers append concurrently under mu; the buffer is allocated once at
// construction, so steady-state recording allocates nothing.
type traceRing struct {
	mu  sync.Mutex
	buf []TraceEvent
	idx int // next overwrite position once len(buf) == cap(buf)
}

// recordTrace appends one completion to the ring, overwriting the oldest
// event once the ring is full. Callers must have checked traceDepth > 0.
func (s *Scheduler) recordTrace(ev TraceEvent) {
	r := &s.trace
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.idx] = ev
		r.idx = (r.idx + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// Trace returns the retained completions oldest-first. It returns nil when
// tracing is disabled (Config.TraceDepth == 0) and an empty slice when
// nothing has completed yet. The copy is independent of the ring.
func (s *Scheduler) Trace() []TraceEvent {
	if s.traceDepth <= 0 {
		return nil
	}
	r := &s.trace
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.idx:]...)
	out = append(out, r.buf[:r.idx]...)
	return out
}

package online

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

// gateRun returns a Run that blocks until the gate channel closes.
func gateRun(gate <-chan struct{}) func(context.Context, ProcID) error {
	return func(ctx context.Context, p ProcID) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// TestQuiesceTimeoutKeepsSchedulerAlive: Quiesce must return the context
// error without shutting down, so a Snapshot can still be taken and the
// blocked work can still finish afterwards.
func TestQuiesceTimeoutKeepsSchedulerAlive(t *testing.T) {
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	gate := make(chan struct{})
	h, err := s.Submit(Task{Name: "blocked", EstMs: []float64{1}, Run: gateRun(gate)})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Quiesce(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce = %v, want deadline exceeded", err)
	}
	// Still alive: snapshotting works and the task can complete.
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot after Quiesce timeout: %v", err)
	}
	close(gate)
	res := <-h.Done
	if res.Err != nil {
		t.Fatalf("blocked task after gate: %v", res.Err)
	}
}

// TestSnapshotRestoreRoundTrip is the zero-loss proof: on a 1-processor
// scheduler, block the worker, pile up a dependency chain plus independent
// tasks, snapshot, hard-close (losing them locally), then restore into a
// fresh scheduler and watch every captured task run to completion with its
// dependency order intact.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	gate := make(chan struct{})
	gh, err := s.SubmitGraph([]GraphTask{
		{Task: Task{Name: "a", EstMs: []float64{1}, Run: gateRun(gate)}},
		{Task: Task{Name: "b", EstMs: []float64{1}, Payload: json.RawMessage(`{"k":"v"}`)}, Deps: []int{0}},
		{Task: Task{Name: "c", EstMs: []float64{1}}, Deps: []int{1}},
		{Task: Task{Name: "d", EstMs: []float64{1}}, Deps: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var queued []*Handle
	for _, name := range []string{"q1", "q2"} {
		h, err := s.Submit(Task{Name: name, EstMs: []float64{1}, XferMs: []float64{0.5}})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, h)
	}

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// a is executing (at-least-once: captured), b..d unreleased, q1 q2
	// queued.
	if got := sn.Count(); got != 6 {
		t.Fatalf("snapshot count = %d, want 6 (got %+v)", got, sn)
	}
	if len(sn.Tasks) != 2 || len(sn.Graphs) != 1 || len(sn.Graphs[0].Tasks) != 4 {
		t.Fatalf("snapshot shape: %d tasks, %d graphs", len(sn.Tasks), len(sn.Graphs))
	}
	if g := sn.Graphs[0]; string(g.Tasks[1].Payload) != `{"k":"v"}` {
		t.Errorf("payload not carried: %q", g.Tasks[1].Payload)
	}
	if sn.Tasks[0].XferMs == nil {
		t.Errorf("xfer_ms not carried for queued task")
	}

	// Serialise through JSON like the server does.
	var buf bytes.Buffer
	if err := sn.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sn2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sn2.Count() != sn.Count() || sn2.Procs != 1 {
		t.Fatalf("round-tripped snapshot differs: %+v", sn2)
	}

	// Hard close: the captured tasks fail locally with ErrClosed.
	close(gate)
	s.Close()
	<-gh.Done
	for _, h := range queued {
		<-h.Done
	}

	// Restore into a fresh scheduler, recording execution order.
	s2, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Close()
	var mu sync.Mutex
	var ran []string
	var wg sync.WaitGroup
	wg.Add(sn2.Count())
	rebuild := func(st SnapshotTask) (func(context.Context, ProcID) error, error) {
		name := st.Name
		return func(ctx context.Context, p ProcID) error {
			mu.Lock()
			ran = append(ran, name)
			mu.Unlock()
			wg.Done()
			return nil
		}, nil
	}
	n, err := Restore(context.Background(), s2, sn2, rebuild)
	if err != nil {
		t.Fatal(err)
	}
	if n != sn2.Count() {
		t.Fatalf("restored %d, want %d", n, sn2.Count())
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 6 {
		t.Fatalf("ran %d tasks, want 6: %v", len(ran), ran)
	}
	pos := map[string]int{}
	for i, name := range ran {
		pos[name] = i
	}
	for _, edge := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if pos[edge[0]] > pos[edge[1]] {
			t.Errorf("dependency order violated: %s ran after %s (%v)", edge[0], edge[1], ran)
		}
	}
}

// TestSnapshotExcludesDoomedTasks: nodes marked by a failed predecessor
// must not be captured — replaying them would rerun work the graph
// semantics already declared dead.
func TestSnapshotExcludesDoomedTasks(t *testing.T) {
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	gate := make(chan struct{})
	cStarted := make(chan struct{})
	boom := errors.New("boom")
	gh, err := s.SubmitGraph([]GraphTask{
		// Both entries contend for the single worker: a runs first (entry
		// release order), fails and dooms b; then c starts and blocks.
		// The same worker goroutine finishes a's failure propagation
		// before it picks up c, so once c has started, b is settled.
		{Task: Task{Name: "a", EstMs: []float64{1}, Run: func(ctx context.Context, p ProcID) error { return boom }}},
		{Task: Task{Name: "b", EstMs: []float64{1}}, Deps: []int{0}},
		{Task: Task{Name: "c", EstMs: []float64{1}, Run: func(ctx context.Context, p ProcID) error {
			close(cStarted)
			return gateRun(gate)(ctx, p)
		}}},
		{Task: Task{Name: "d", EstMs: []float64{1}}, Deps: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-cStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("c never started")
	}

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Graphs) != 1 {
		t.Fatalf("want 1 graph frontier, got %+v", sn)
	}
	var names []string
	for _, gt := range sn.Graphs[0].Tasks {
		names = append(names, gt.Name)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "c" || names[1] != "d" {
		t.Fatalf("frontier = %v, want [c d] (b doomed by a's failure)", names)
	}

	close(gate)
	res := <-gh.Done
	if !errors.Is(res.Err, boom) {
		t.Fatalf("graph err = %v, want boom", res.Err)
	}
}

func TestReadSnapshotRejectsVersionSkew(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte(`{"version":99,"procs":1,"alpha":4}`))); err == nil {
		t.Fatal("version 99 accepted")
	}
	sn := &Snapshot{Version: SnapshotVersion, Procs: 2, Alpha: 4}
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	if _, err := Restore(context.Background(), s, sn, nil); err == nil {
		t.Fatal("processor-count mismatch accepted")
	}
}

package online

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateRun returns a Run that blocks until the gate channel closes.
func gateRun(gate <-chan struct{}) func(context.Context, ProcID) error {
	return func(ctx context.Context, p ProcID) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// TestQuiesceTimeoutKeepsSchedulerAlive: Quiesce must return the context
// error without shutting down, so a Snapshot can still be taken and the
// blocked work can still finish afterwards.
func TestQuiesceTimeoutKeepsSchedulerAlive(t *testing.T) {
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	gate := make(chan struct{})
	h, err := s.Submit(Task{Name: "blocked", EstMs: []float64{1}, Run: gateRun(gate)})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Quiesce(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce = %v, want deadline exceeded", err)
	}
	// Still alive: snapshotting works and the task can complete.
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot after Quiesce timeout: %v", err)
	}
	close(gate)
	res := <-h.Done
	if res.Err != nil {
		t.Fatalf("blocked task after gate: %v", res.Err)
	}
}

// TestSnapshotRestoreRoundTrip is the zero-loss proof: on a 1-processor
// scheduler, block the worker, pile up a dependency chain plus independent
// tasks, snapshot, hard-close (losing them locally), then restore into a
// fresh scheduler and watch every captured task run to completion with its
// dependency order intact.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	gate := make(chan struct{})
	gh, err := s.SubmitGraph([]GraphTask{
		{Task: Task{Name: "a", EstMs: []float64{1}, Run: gateRun(gate)}},
		{Task: Task{Name: "b", EstMs: []float64{1}, Payload: json.RawMessage(`{"k":"v"}`)}, Deps: []int{0}},
		{Task: Task{Name: "c", EstMs: []float64{1}}, Deps: []int{1}},
		{Task: Task{Name: "d", EstMs: []float64{1}}, Deps: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var queued []*Handle
	for _, name := range []string{"q1", "q2"} {
		h, err := s.Submit(Task{Name: name, EstMs: []float64{1}, XferMs: []float64{0.5}})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, h)
	}

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// a is executing (at-least-once: captured), b..d unreleased, q1 q2
	// queued.
	if got := sn.Count(); got != 6 {
		t.Fatalf("snapshot count = %d, want 6 (got %+v)", got, sn)
	}
	if len(sn.Tasks) != 2 || len(sn.Graphs) != 1 || len(sn.Graphs[0].Tasks) != 4 {
		t.Fatalf("snapshot shape: %d tasks, %d graphs", len(sn.Tasks), len(sn.Graphs))
	}
	if g := sn.Graphs[0]; string(g.Tasks[1].Payload) != `{"k":"v"}` {
		t.Errorf("payload not carried: %q", g.Tasks[1].Payload)
	}
	if sn.Tasks[0].XferMs == nil {
		t.Errorf("xfer_ms not carried for queued task")
	}

	// Serialise through JSON like the server does.
	var buf bytes.Buffer
	if err := sn.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sn2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sn2.Count() != sn.Count() || sn2.Procs != 1 {
		t.Fatalf("round-tripped snapshot differs: %+v", sn2)
	}

	// Hard close: the captured tasks fail locally with ErrClosed.
	close(gate)
	s.Close()
	<-gh.Done
	for _, h := range queued {
		<-h.Done
	}

	// Restore into a fresh scheduler, recording execution order.
	s2, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Close()
	var mu sync.Mutex
	var ran []string
	var wg sync.WaitGroup
	wg.Add(sn2.Count())
	rebuild := func(st SnapshotTask) (func(context.Context, ProcID) error, error) {
		name := st.Name
		return func(ctx context.Context, p ProcID) error {
			mu.Lock()
			ran = append(ran, name)
			mu.Unlock()
			wg.Done()
			return nil
		}, nil
	}
	n, err := Restore(context.Background(), s2, sn2, rebuild)
	if err != nil {
		t.Fatal(err)
	}
	if n != sn2.Count() {
		t.Fatalf("restored %d, want %d", n, sn2.Count())
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 6 {
		t.Fatalf("ran %d tasks, want 6: %v", len(ran), ran)
	}
	pos := map[string]int{}
	for i, name := range ran {
		pos[name] = i
	}
	for _, edge := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if pos[edge[0]] > pos[edge[1]] {
			t.Errorf("dependency order violated: %s ran after %s (%v)", edge[0], edge[1], ran)
		}
	}
}

// TestSnapshotExcludesDoomedTasks: nodes marked by a failed predecessor
// must not be captured — replaying them would rerun work the graph
// semantics already declared dead.
func TestSnapshotExcludesDoomedTasks(t *testing.T) {
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	gate := make(chan struct{})
	cStarted := make(chan struct{})
	boom := errors.New("boom")
	gh, err := s.SubmitGraph([]GraphTask{
		// Both entries contend for the single worker: a runs first (entry
		// release order), fails and dooms b; then c starts and blocks.
		// The same worker goroutine finishes a's failure propagation
		// before it picks up c, so once c has started, b is settled.
		{Task: Task{Name: "a", EstMs: []float64{1}, Run: func(ctx context.Context, p ProcID) error { return boom }}},
		{Task: Task{Name: "b", EstMs: []float64{1}}, Deps: []int{0}},
		{Task: Task{Name: "c", EstMs: []float64{1}, Run: func(ctx context.Context, p ProcID) error {
			close(cStarted)
			return gateRun(gate)(ctx, p)
		}}},
		{Task: Task{Name: "d", EstMs: []float64{1}}, Deps: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-cStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("c never started")
	}

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Graphs) != 1 {
		t.Fatalf("want 1 graph frontier, got %+v", sn)
	}
	var names []string
	for _, gt := range sn.Graphs[0].Tasks {
		names = append(names, gt.Name)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "c" || names[1] != "d" {
		t.Fatalf("frontier = %v, want [c d] (b doomed by a's failure)", names)
	}

	close(gate)
	res := <-gh.Done
	if !errors.Is(res.Err, boom) {
		t.Fatalf("graph err = %v, want boom", res.Err)
	}
}

func TestReadSnapshotRejectsVersionSkew(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte(`{"version":99,"procs":1,"alpha":4}`))); err == nil {
		t.Fatal("version 99 accepted")
	}
	sn := &Snapshot{Version: SnapshotVersion, Procs: 2, Alpha: 4}
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	if _, err := Restore(context.Background(), s, sn, nil); err == nil {
		t.Fatal("processor-count mismatch accepted")
	}
}

// TestSnapshotVersionSkew: a hand-written version-1 snapshot (no attempts,
// no breakers) must still parse and restore into a current scheduler.
func TestSnapshotVersionSkew(t *testing.T) {
	v1 := `{
  "version": 1,
  "procs": 2,
  "alpha": 4,
  "tasks": [{"name": "legacy", "est_ms": [1, 2]}],
  "graphs": [{"tasks": [
    {"name": "root", "est_ms": [1, 2]},
    {"name": "leaf", "est_ms": [2, 1], "deps": [0]}
  ]}]
}`
	sn, err := ReadSnapshot(bytes.NewReader([]byte(v1)))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if sn.Count() != 3 {
		t.Fatalf("count = %d, want 3", sn.Count())
	}
	s := newStarted(t, 2, 4)
	n, err := Restore(context.Background(), s, sn, nil)
	if err != nil || n != 3 {
		t.Fatalf("restore = %d, %v", n, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Quiesce(ctx); err != nil {
		t.Fatalf("restored v1 work never finished: %v", err)
	}
	// Future versions must be refused, not misread.
	future := `{"version": 99, "procs": 2, "alpha": 4}`
	if _, err := ReadSnapshot(bytes.NewReader([]byte(future))); err == nil {
		t.Error("future snapshot version accepted")
	}
}

// TestSnapshotCarriesAttemptsAndBreakers: a parked retry is captured with
// its used attempts, breaker state round-trips, and the restored task
// resumes its budget instead of starting over.
func TestSnapshotCarriesAttemptsAndBreakers(t *testing.T) {
	retry := RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Hour, MaxBackoff: time.Hour}
	brk := &BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Millisecond}
	s, err := NewWithConfig(Config{Procs: 2, Alpha: 1, Retry: retry, Breaker: brk})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	// Pinned to proc 0; fails once, parking a retry behind the 1h backoff
	// and tripping proc 0's breaker.
	h, err := s.Submit(Task{Name: "r", EstMs: []float64{1, 1000}, Run: func(context.Context, ProcID) error {
		return errors.New("fail once")
	}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry never parked")
		}
		time.Sleep(time.Millisecond)
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sn.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err = ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Version != SnapshotVersion {
		t.Errorf("version = %d, want %d", sn.Version, SnapshotVersion)
	}
	if len(sn.Tasks) != 1 || sn.Tasks[0].Attempts != 1 {
		t.Fatalf("tasks = %+v, want one task with 1 attempt", sn.Tasks)
	}
	if len(sn.Breakers) != 2 || sn.Breakers[0].State != "open" || sn.Breakers[0].Trips != 1 {
		t.Fatalf("breakers = %+v, want proc 0 open with 1 trip", sn.Breakers)
	}
	s.Close()
	<-h.Done // parked retry fails with ErrClosed locally

	// Restore into a fresh scheduler: 1 of the 2-attempt budget is already
	// used, so the restored attempt is the last — it settles immediately
	// with the terminal error. Had the budget been reset, the failure
	// would park behind the 1h backoff and Quiesce would time out.
	// Breaker state carries over too: proc 0 starts open, then recovers
	// via its cooldown.
	s2, err := NewWithConfig(Config{Procs: 2, Alpha: 1, Retry: retry, Breaker: brk})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Close()
	var calls int32
	n, err := Restore(context.Background(), s2, sn, func(SnapshotTask) (func(context.Context, ProcID) error, error) {
		return func(context.Context, ProcID) error {
			atomic.AddInt32(&calls, 1)
			return errors.New("still failing")
		}, nil
	})
	if err != nil || n != 1 {
		t.Fatalf("restore = %d, %v", n, err)
	}
	if ph := s2.ProcHealth(); ph[0].Trips != 1 {
		t.Errorf("restored trips = %d, want 1", ph[0].Trips)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Quiesce(ctx); err != nil {
		t.Fatalf("restored task never settled (retry budget not carried over?): %v", err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("restored task ran %d attempts, want 1 (budget carried over)", got)
	}
}

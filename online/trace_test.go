package online

import (
	"testing"
)

// TestTraceRingWraparound: with TraceDepth 4 and 7 completions, Trace must
// return the last 4 in completion order with coherent fields.
func TestTraceRingWraparound(t *testing.T) {
	s, err := NewWithConfig(Config{Procs: 1, Alpha: 4, TraceDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	names := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6"}
	for _, name := range names {
		h, err := s.Submit(Task{Name: name, EstMs: []float64{1}})
		if err != nil {
			t.Fatal(err)
		}
		<-h.Done // serialise completions so ring order is deterministic
	}

	evs := s.Trace()
	if len(evs) != 4 {
		t.Fatalf("Trace len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := names[len(names)-4+i]
		if ev.Name != want {
			t.Errorf("event %d = %q, want %q (ring out of order: %+v)", i, ev.Name, want, evs)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("seq not increasing: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
		if ev.Proc != 0 || ev.EstMs != 1 || ev.BestEstMs != 1 {
			t.Errorf("event %d fields off: %+v", i, ev)
		}
		if ev.FinishMs < ev.StartMs || ev.StartMs < ev.ArrivalMs {
			t.Errorf("event %d timestamps inverted: %+v", i, ev)
		}
		if ev.Failed || ev.Alt {
			t.Errorf("event %d unexpected flags: %+v", i, ev)
		}
	}
}

// TestTraceDisabled: TraceDepth 0 keeps Trace nil and costs nothing.
func TestTraceDisabled(t *testing.T) {
	s, err := New(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	h, err := s.Submit(Task{Name: "x", EstMs: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	<-h.Done
	if evs := s.Trace(); evs != nil {
		t.Fatalf("Trace with depth 0 = %v, want nil", evs)
	}
}

func TestNegativeTraceDepthRejected(t *testing.T) {
	if _, err := NewWithConfig(Config{Procs: 1, Alpha: 4, TraceDepth: -1}); err == nil {
		t.Fatal("negative TraceDepth accepted")
	}
}

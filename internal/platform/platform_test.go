package platform

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperSystem(t *testing.T) {
	s := PaperSystem(4)
	if got := s.NumProcs(); got != 3 {
		t.Fatalf("NumProcs = %d, want 3", got)
	}
	wantKinds := []Kind{CPU, GPU, FPGA}
	for i, k := range wantKinds {
		if got := s.KindOf(ProcID(i)); got != k {
			t.Errorf("KindOf(%d) = %s, want %s", i, got, k)
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r := s.Rate(ProcID(i), ProcID(j))
			if i == j && r != 0 {
				t.Errorf("Rate(%d,%d) = %v, want 0 for self link", i, j, r)
			}
			if i != j && r != 4 {
				t.Errorf("Rate(%d,%d) = %v, want 4", i, j, r)
			}
		}
	}
}

func TestBuilderDefaultNames(t *testing.T) {
	b := NewBuilder()
	b.AddProcessor(CPU, "")
	b.AddProcessor(CPU, "")
	b.AddProcessor(GPU, "")
	s := b.SetUniformRate(1).MustBuild()
	wants := []string{"CPU0", "CPU1", "GPU0"}
	for i, want := range wants {
		if got := s.Proc(ProcID(i)).Name; got != want {
			t.Errorf("proc %d name = %q, want %q", i, got, want)
		}
	}
}

func TestBuilderCustomName(t *testing.T) {
	b := NewBuilder()
	id := b.AddProcessor(GPU, "Tesla K20")
	s := b.MustBuild()
	if got := s.Proc(id).Name; got != "Tesla K20" {
		t.Errorf("name = %q, want Tesla K20", got)
	}
}

func TestBuilderEmptySystem(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("Build on empty builder succeeded, want error")
	}
}

func TestBuilderEmptyKind(t *testing.T) {
	b := NewBuilder()
	b.AddProcessor("", "x")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with empty kind succeeded, want error")
	}
}

func TestBuilderNegativeRate(t *testing.T) {
	b := NewBuilder()
	a := b.AddProcessor(CPU, "")
	c := b.AddProcessor(GPU, "")
	b.SetRate(a, c, -1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with negative rate succeeded, want error")
	}
}

func TestBuilderSelfLink(t *testing.T) {
	b := NewBuilder()
	a := b.AddProcessor(CPU, "")
	b.SetRate(a, a, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with self link succeeded, want error")
	}
}

func TestBuilderUnknownProcessorInLink(t *testing.T) {
	b := NewBuilder()
	a := b.AddProcessor(CPU, "")
	b.SetRate(a, ProcID(7), 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with dangling link succeeded, want error")
	}
}

func TestRateOverridePrecedence(t *testing.T) {
	b := NewBuilder()
	cpu := b.AddProcessor(CPU, "")
	gpu := b.AddProcessor(GPU, "")
	fpga := b.AddProcessor(FPGA, "")
	b.SetUniformRate(4)
	b.SetSymmetricRate(cpu, gpu, 16)
	s := b.MustBuild()
	if got := s.Rate(cpu, gpu); got != 16 {
		t.Errorf("Rate(cpu,gpu) = %v, want override 16", got)
	}
	if got := s.Rate(gpu, cpu); got != 16 {
		t.Errorf("Rate(gpu,cpu) = %v, want override 16", got)
	}
	if got := s.Rate(cpu, fpga); got != 4 {
		t.Errorf("Rate(cpu,fpga) = %v, want uniform 4", got)
	}
}

func TestByKind(t *testing.T) {
	b := NewBuilder()
	b.AddProcessor(CPU, "")
	g0 := b.AddProcessor(GPU, "")
	b.AddProcessor(CPU, "")
	g1 := b.AddProcessor(GPU, "")
	s := b.SetUniformRate(1).MustBuild()
	got := s.ByKind(GPU)
	if len(got) != 2 || got[0] != g0 || got[1] != g1 {
		t.Errorf("ByKind(GPU) = %v, want [%d %d]", got, g0, g1)
	}
	if ids := s.ByKind("TPU"); ids != nil {
		t.Errorf("ByKind(TPU) = %v, want nil", ids)
	}
}

func TestKindsSorted(t *testing.T) {
	s := PaperSystem(4)
	kinds := s.Kinds()
	if len(kinds) != 3 {
		t.Fatalf("Kinds len = %d, want 3", len(kinds))
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Errorf("Kinds not sorted: %v", kinds)
		}
	}
}

func TestDegreeOfHeterogeneity(t *testing.T) {
	if got := PaperSystem(4).DegreeOfHeterogeneity(); got != 1 {
		t.Errorf("paper system heterogeneity = %v, want 1", got)
	}
	b := NewBuilder()
	b.AddProcessor(CPU, "")
	b.AddProcessor(CPU, "")
	b.AddProcessor(GPU, "")
	b.AddProcessor(GPU, "")
	s := b.SetUniformRate(1).MustBuild()
	if got := s.DegreeOfHeterogeneity(); got != 0.5 {
		t.Errorf("heterogeneity = %v, want 0.5", got)
	}
}

func TestStringContainsNames(t *testing.T) {
	s := PaperSystem(8)
	str := s.String()
	for _, want := range []string{"CPU0", "GPU0", "FPGA0"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestProcPanicsOutOfRange(t *testing.T) {
	s := PaperSystem(4)
	defer func() {
		if recover() == nil {
			t.Error("Proc(99) did not panic")
		}
	}()
	s.Proc(99)
}

func TestGBpsBytesPerMs(t *testing.T) {
	// 4 GB/s = 4e9 bytes/s = 4e6 bytes/ms.
	if got := GBps(4).BytesPerMs(); got != 4e6 {
		t.Errorf("BytesPerMs = %v, want 4e6", got)
	}
}

// Property: for any uniform rate, every off-diagonal link reports that rate
// and every diagonal entry reports zero.
func TestUniformRateProperty(t *testing.T) {
	f := func(rateCenti uint16, nProcs uint8) bool {
		n := int(nProcs%6) + 1
		r := GBps(float64(rateCenti) / 100)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddProcessor(CPU, "")
		}
		s := b.SetUniformRate(r).MustBuild()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got := s.Rate(ProcID(i), ProcID(j))
				if i == j && got != 0 {
					return false
				}
				if i != j && got != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package platform

import "fmt"

// PowerModel assigns active and idle power draws to processor kinds,
// enabling the energy metric the thesis motivates ("high performance and
// power efficiency") but does not evaluate. Values are watts; energy
// integrates power over the simulated schedule.
type PowerModel struct {
	// ActiveW is the draw while executing or transferring, per kind.
	ActiveW map[Kind]float64
	// IdleW is the draw while idle, per kind.
	IdleW map[Kind]float64
}

// DefaultPowerModel returns representative board-level draws for the
// paper's processor classes (desktop CPU, discrete compute GPU, mid-size
// FPGA board): CPU 95/30 W, GPU 225/25 W, FPGA 25/10 W. These are
// magnitude-realistic figures for the hardware families the thesis's
// lookup table was measured on, not measurements from the paper — the
// thesis reports no power numbers.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		ActiveW: map[Kind]float64{CPU: 95, GPU: 225, FPGA: 25},
		IdleW:   map[Kind]float64{CPU: 30, GPU: 25, FPGA: 10},
	}
}

// Validate checks that the model covers every kind in the system with
// non-negative draws and idle <= active.
func (pm PowerModel) Validate(s *System) error {
	for _, k := range s.Kinds() {
		a, okA := pm.ActiveW[k]
		i, okI := pm.IdleW[k]
		if !okA || !okI {
			return fmt.Errorf("platform: power model missing kind %s", k)
		}
		if a < 0 || i < 0 {
			return fmt.Errorf("platform: negative power for kind %s", k)
		}
		if i > a {
			return fmt.Errorf("platform: idle power %v exceeds active %v for kind %s", i, a, k)
		}
	}
	return nil
}

// EnergyJ integrates one processor's energy in joules given its busy
// (exec+transfer) and idle milliseconds.
func (pm PowerModel) EnergyJ(kind Kind, busyMs, idleMs float64) float64 {
	return (pm.ActiveW[kind]*busyMs + pm.IdleW[kind]*idleMs) / 1000
}

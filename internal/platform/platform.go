// Package platform models the hardware side of a heterogeneous system:
// processor kinds (CPU, GPU, FPGA, ...), concrete processor instances and
// the interconnect between them.
//
// The paper's evaluation system is one CPU, one GPU and one FPGA connected
// pairwise by PCI Express with a uniform transfer rate (4 GB/s for x8,
// 8 GB/s for x16). This package is deliberately more general: any number of
// processors of any kind, and an arbitrary per-pair link matrix, so that the
// scheduler and simulator can be exercised on systems beyond the paper's.
package platform

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies a processor category. The lookup table of measured
// execution times is keyed by category, not by an exact hardware model,
// following the paper's generalisation ("the execution time for any given
// kernel belongs to the category of the platform").
type Kind string

// The three processor categories used throughout the thesis.
const (
	CPU  Kind = "CPU"
	GPU  Kind = "GPU"
	FPGA Kind = "FPGA"
)

// StandardKinds lists the categories present in the paper's system, in the
// column order of its lookup table.
func StandardKinds() []Kind { return []Kind{CPU, GPU, FPGA} }

// ProcID indexes a processor inside a System. IDs are dense, starting at 0,
// in the order processors were added. Like dfg.KernelID it is 32 bits wide
// so per-kernel records that carry a processor stay compact.
type ProcID int32

// Invalid is returned by lookups that found no processor.
const Invalid ProcID = -1

// Processor is one concrete device in the system.
type Processor struct {
	ID   ProcID
	Kind Kind
	// Name is a human-readable label, e.g. "GPU0" or "Tesla K20".
	Name string
}

// GBps expresses a link bandwidth in gigabytes per second (1e9 bytes/s).
type GBps float64

// BytesPerMs converts a bandwidth to bytes transferable per millisecond,
// the simulator's native time unit.
func (r GBps) BytesPerMs() float64 { return float64(r) * 1e9 / 1e3 }

// System is an immutable description of a heterogeneous machine: its
// processors and the bandwidth of every directed link between them.
// Build one with NewBuilder.
type System struct {
	procs []Processor
	// rate[i][j] is the bandwidth from processor i to processor j in GB/s.
	// rate[i][i] is meaningless (no self transfer) and kept at 0.
	rate [][]GBps
}

// NumProcs returns the number of processors in the system.
func (s *System) NumProcs() int { return len(s.procs) }

// Procs returns all processors in ID order. The slice is shared; callers
// must not modify it.
func (s *System) Procs() []Processor { return s.procs }

// Proc returns the processor with the given ID.
// It panics if the ID is out of range, which always indicates a programming
// error: IDs only ever originate from this System.
func (s *System) Proc(id ProcID) Processor {
	if id < 0 || int(id) >= len(s.procs) {
		panic(fmt.Sprintf("platform: processor id %d out of range [0,%d)", id, len(s.procs)))
	}
	return s.procs[id]
}

// KindOf returns the category of the processor with the given ID.
func (s *System) KindOf(id ProcID) Kind { return s.Proc(id).Kind }

// Rate returns the bandwidth of the directed link from -> to in GB/s.
// A zero return for distinct processors means the link is unusable.
func (s *System) Rate(from, to ProcID) GBps {
	if from == to {
		return 0
	}
	return s.rate[from][to]
}

// ByKind returns the IDs of all processors of the given kind, in ID order.
func (s *System) ByKind(k Kind) []ProcID {
	var ids []ProcID
	for _, p := range s.procs {
		if p.Kind == k {
			ids = append(ids, p.ID)
		}
	}
	return ids
}

// Kinds returns the distinct processor kinds present, sorted alphabetically.
func (s *System) Kinds() []Kind {
	seen := map[Kind]bool{}
	for _, p := range s.procs {
		seen[p.Kind] = true
	}
	kinds := make([]Kind, 0, len(seen))
	for k := range seen { //lint:ordered — collected then sorted just below
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// String renders a short one-line summary, e.g. "System(CPU0, GPU0, FPGA0)".
func (s *System) String() string {
	names := make([]string, len(s.procs))
	for i, p := range s.procs {
		names[i] = p.Name
	}
	return "System(" + strings.Join(names, ", ") + ")"
}

// DegreeOfHeterogeneity is a simple descriptive statistic: the number of
// distinct processor kinds divided by the number of processors. The paper
// argues APT's flexibility factor should be tuned to the degree of
// heterogeneity; this gives callers a handle on it.
func (s *System) DegreeOfHeterogeneity() float64 {
	if len(s.procs) == 0 {
		return 0
	}
	return float64(len(s.Kinds())) / float64(len(s.procs))
}

// Builder assembles a System. The zero value is not usable; call NewBuilder.
type Builder struct {
	procs   []Processor
	pairs   map[[2]ProcID]GBps
	uniform GBps
	err     error
}

// NewBuilder returns an empty system builder.
func NewBuilder() *Builder {
	return &Builder{pairs: make(map[[2]ProcID]GBps)}
}

// AddProcessor appends a processor of the given kind and returns its ID.
// If name is empty a default of the form "<KIND><index-within-kind>" is used.
func (b *Builder) AddProcessor(k Kind, name string) ProcID {
	if k == "" {
		b.fail(fmt.Errorf("platform: empty processor kind"))
		return Invalid
	}
	id := ProcID(len(b.procs))
	if name == "" {
		n := 0
		for _, p := range b.procs {
			if p.Kind == k {
				n++
			}
		}
		name = fmt.Sprintf("%s%d", k, n)
	}
	b.procs = append(b.procs, Processor{ID: id, Kind: k, Name: name})
	return id
}

// SetUniformRate declares that every directed link between distinct
// processors runs at the given bandwidth, matching the paper's setup
// ("we maintain the data transfer rates between all processors to be the
// same"). Per-pair overrides via SetRate take precedence.
func (b *Builder) SetUniformRate(r GBps) *Builder {
	if r < 0 {
		b.fail(fmt.Errorf("platform: negative uniform rate %v", r))
		return b
	}
	b.uniform = r
	return b
}

// SetRate overrides the bandwidth of the directed link from -> to.
// Use SetSymmetricRate for both directions at once.
func (b *Builder) SetRate(from, to ProcID, r GBps) *Builder {
	if r < 0 {
		b.fail(fmt.Errorf("platform: negative rate %v for link %d->%d", r, from, to))
		return b
	}
	if from == to {
		b.fail(fmt.Errorf("platform: self link %d->%d", from, to))
		return b
	}
	b.pairs[[2]ProcID{from, to}] = r
	return b
}

// SetSymmetricRate overrides the bandwidth of both directed links between
// a and b.
func (b *Builder) SetSymmetricRate(a, c ProcID, r GBps) *Builder {
	b.SetRate(a, c, r)
	b.SetRate(c, a, r)
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the accumulated description and returns the System.
func (b *Builder) Build() (*System, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.procs) == 0 {
		return nil, fmt.Errorf("platform: system has no processors")
	}
	n := len(b.procs)
	// Validate links in sorted order: with several bad links, which one the
	// error names must not depend on map iteration order.
	links := make([][2]ProcID, 0, len(b.pairs))
	for pair := range b.pairs { //lint:ordered — collected then sorted just below
		links = append(links, pair)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, pair := range links {
		for _, id := range pair {
			if id < 0 || int(id) >= n {
				return nil, fmt.Errorf("platform: link references unknown processor %d", id)
			}
		}
	}
	rate := make([][]GBps, n)
	for i := range rate {
		rate[i] = make([]GBps, n)
		for j := range rate[i] {
			if i == j {
				continue
			}
			r, ok := b.pairs[[2]ProcID{ProcID(i), ProcID(j)}]
			if !ok {
				r = b.uniform
			}
			rate[i][j] = r
		}
	}
	procs := make([]Processor, n)
	copy(procs, b.procs)
	return &System{procs: procs, rate: rate}, nil
}

// MustBuild is Build, panicking on error. Intended for tests and examples
// with statically known-good inputs.
func (b *Builder) MustBuild() *System {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// PaperSystem builds the thesis's evaluation platform: one CPU, one GPU and
// one FPGA with the given uniform PCIe bandwidth on every link
// (4 GB/s for PCIe 2.0 x8, 8 GB/s for x16).
func PaperSystem(rate GBps) *System {
	b := NewBuilder()
	b.AddProcessor(CPU, "")
	b.AddProcessor(GPU, "")
	b.AddProcessor(FPGA, "")
	b.SetUniformRate(rate)
	return b.MustBuild()
}

package platform

import (
	"math"
	"testing"
)

func TestDefaultPowerModelValid(t *testing.T) {
	s := PaperSystem(4)
	if err := DefaultPowerModel().Validate(s); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestPowerModelValidation(t *testing.T) {
	s := PaperSystem(4)
	missing := PowerModel{ActiveW: map[Kind]float64{CPU: 1}, IdleW: map[Kind]float64{CPU: 1}}
	if err := missing.Validate(s); err == nil {
		t.Error("model missing kinds accepted")
	}
	negative := DefaultPowerModel()
	negative.ActiveW[CPU] = -1
	if err := negative.Validate(s); err == nil {
		t.Error("negative power accepted")
	}
	inverted := DefaultPowerModel()
	inverted.IdleW[GPU] = inverted.ActiveW[GPU] + 1
	if err := inverted.Validate(s); err == nil {
		t.Error("idle > active accepted")
	}
}

func TestEnergyJ(t *testing.T) {
	pm := PowerModel{
		ActiveW: map[Kind]float64{CPU: 100},
		IdleW:   map[Kind]float64{CPU: 10},
	}
	// 1 second busy at 100 W + 2 seconds idle at 10 W = 120 J.
	got := pm.EnergyJ(CPU, 1000, 2000)
	if math.Abs(got-120) > 1e-9 {
		t.Errorf("EnergyJ = %v, want 120", got)
	}
}

package platform

import (
	"math"
	"testing"
)

func TestDefaultPowerModelValid(t *testing.T) {
	s := PaperSystem(4)
	if err := DefaultPowerModel().Validate(s); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestPowerModelValidation(t *testing.T) {
	s := PaperSystem(4)
	missing := PowerModel{ActiveW: map[Kind]float64{CPU: 1}, IdleW: map[Kind]float64{CPU: 1}}
	if err := missing.Validate(s); err == nil {
		t.Error("model missing kinds accepted")
	}
	negative := DefaultPowerModel()
	negative.ActiveW[CPU] = -1
	if err := negative.Validate(s); err == nil {
		t.Error("negative power accepted")
	}
	inverted := DefaultPowerModel()
	inverted.IdleW[GPU] = inverted.ActiveW[GPU] + 1
	if err := inverted.Validate(s); err == nil {
		t.Error("idle > active accepted")
	}
}

func TestEnergyJ(t *testing.T) {
	pm := PowerModel{
		ActiveW: map[Kind]float64{CPU: 100},
		IdleW:   map[Kind]float64{CPU: 10},
	}
	// 1 second busy at 100 W + 2 seconds idle at 10 W = 120 J.
	got := pm.EnergyJ(CPU, 1000, 2000)
	if math.Abs(got-120) > 1e-9 {
		t.Errorf("EnergyJ = %v, want 120", got)
	}
}

func TestPowerModelZeroPowerProcessors(t *testing.T) {
	// A zero-draw kind (an accelerator whose power is accounted elsewhere,
	// or simply ignored) is legal: active 0, idle 0 passes validation and
	// integrates to exactly zero energy over any schedule.
	s := PaperSystem(4)
	pm := PowerModel{
		ActiveW: map[Kind]float64{CPU: 0, GPU: 0, FPGA: 0},
		IdleW:   map[Kind]float64{CPU: 0, GPU: 0, FPGA: 0},
	}
	if err := pm.Validate(s); err != nil {
		t.Fatalf("zero-power model rejected: %v", err)
	}
	if got := pm.EnergyJ(GPU, 123456, 789); got != 0 {
		t.Errorf("zero-power EnergyJ = %v, want 0", got)
	}
	// Zero idle under positive active is also legal (idle <= active).
	mixed := PowerModel{
		ActiveW: map[Kind]float64{CPU: 50, GPU: 50, FPGA: 50},
		IdleW:   map[Kind]float64{CPU: 0, GPU: 0, FPGA: 0},
	}
	if err := mixed.Validate(s); err != nil {
		t.Fatalf("zero-idle model rejected: %v", err)
	}
	if got := mixed.EnergyJ(CPU, 0, 10_000); got != 0 {
		t.Errorf("idle-only energy at 0 W idle = %v, want 0", got)
	}
}

func TestEnergyJEmptySchedule(t *testing.T) {
	// An empty schedule (no busy, no idle time) consumes nothing under any
	// model, and a kind the model does not cover contributes zero rather
	// than NaN — Validate is the layer that rejects missing kinds.
	pm := DefaultPowerModel()
	if got := pm.EnergyJ(CPU, 0, 0); got != 0 {
		t.Errorf("empty schedule EnergyJ = %v, want 0", got)
	}
	if got := pm.EnergyJ(Kind("TPU"), 0, 0); got != 0 || math.IsNaN(got) {
		t.Errorf("unknown kind on empty schedule = %v, want 0", got)
	}
	if got := (PowerModel{}).EnergyJ(CPU, 0, 0); got != 0 {
		t.Errorf("zero-value model on empty schedule = %v, want 0", got)
	}
}

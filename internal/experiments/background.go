package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/lut"
	"repro/internal/report"
)

// Background artifacts: tables from the thesis's Chapter 2 that are
// derivable from this repository's data structures. (Tables 2/4 are
// definitional policy-property matrices, Table 3 is a five-row excerpt of
// Table 14, and Table 6 cites the original hardware; none of those carry
// reproducible computation, so they are documented here instead.)

// Table1 regenerates paper Table 1: application-to-dwarf membership.
func (r *Runner) Table1() (*Artifact, error) {
	dwarfs := apps.Dwarfs()
	headers := []string{"Application"}
	for _, d := range dwarfs {
		headers = append(headers, string(d))
	}
	t := &report.Table{
		Title:   "Table 1. Applications and the dwarfs they belong to.",
		Headers: headers,
	}
	for _, a := range apps.Catalogue() {
		cells := []string{a.Name}
		for _, d := range dwarfs {
			mark := ""
			if a.HasDwarf(d) {
				mark = "x"
			}
			cells = append(cells, mark)
		}
		t.MustAddRow(cells...)
	}
	return &Artifact{ID: "table1", Caption: "Application-to-dwarf membership", Table: t}, nil
}

// Table5 regenerates paper Table 5: the kernels chosen for the workloads
// and their dwarf classes.
func (r *Runner) Table5() (*Artifact, error) {
	t := &report.Table{
		Title:   "Table 5. Kernels chosen in this work.",
		Headers: []string{"Kernel", "Dwarf", "Measured sizes"},
	}
	tab := lut.Paper()
	for _, k := range tab.Kernels() {
		t.MustAddRow(k, lut.Dwarf(k), fmt.Sprintf("%d", len(tab.Sizes(k))))
	}
	return &Artifact{ID: "table5", Caption: "Kernel set and dwarf classes", Table: t}, nil
}

// Package experiments regenerates every table and figure of the thesis's
// evaluation chapter (Ch. 4 and the appendices). Each paper artifact has a
// driver that returns a report.Table, report.Figure or text block; the
// cmd/experiments binary and the repository's benchmarks call the same
// drivers.
//
// A Runner owns the workload suites and memoises individual simulation
// runs, so artifacts that share underlying experiments (most of them do)
// pay for each simulation once. Cache fills run in parallel across all
// available CPUs; every simulation is deterministic, so parallelism never
// changes results.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PolicySpec names one policy configuration. Alpha only matters for the
// APT family.
type PolicySpec struct {
	Name  string // "APT", "APT-R", "MET", "SPN", "SS", "AG", "HEFT", "PEFT"
	Alpha float64
}

// Label renders the spec for table headers: plain name, or "APT(α=4)" when
// disambiguation across α values is needed.
func (ps PolicySpec) Label() string { return ps.Name }

// Config parameterises a Runner. Zero values select the paper settings.
type Config struct {
	// Seed drives the workload suites (default workload.DefaultSuiteSeed).
	Seed int64
	// METSeed fixes MET's random visiting order (default 1).
	METSeed int64
	// SchedOverheadMs is passed to the engine (default 0, as in the paper's
	// model where the per-decision cost is folded into λ via waiting).
	SchedOverheadMs float64
	// ElemBytes sets the cost model's bytes per element (default 4).
	ElemBytes float64
	// TransferMode sets multi-predecessor transfer combination.
	TransferMode sim.TransferMode
}

// Alphas are the flexibility factors the paper sweeps (Figures 7, 9, 11,
// 12 and Table 13).
var Alphas = []float64{1.5, 2, 4, 8, 16}

// Rates are the PCIe bandwidths the paper sweeps: x8 (4 GB/s) and
// x16 (8 GB/s).
var Rates = []platform.GBps{4, 8}

// AllPolicies lists every policy column of the paper's Tables 8–12, in the
// paper's column order. APT's α varies per table and is set by the caller.
var AllPolicies = []string{"APT", "MET", "SPN", "SS", "AG", "HEFT", "PEFT"}

// DynamicPolicies are the dynamic baselines eligible to be the
// "second-best dynamic policy" of Table 13.
var DynamicPolicies = []string{"MET", "SPN", "SS", "AG"}

// Outcome is what one simulation contributes to the paper's artifacts.
type Outcome struct {
	Policy        string
	MakespanMs    float64
	LambdaTotalMs float64
	LambdaAvgMs   float64
	LambdaStdMs   float64
	// Alt carries APT's allocation statistics (Tables 15/16); zero-valued
	// for other policies.
	Alt core.AltStats
}

type runKey struct {
	typ   workload.GraphType
	graph int
	rate  platform.GBps
	pol   string
	alpha float64
}

// Runner memoises simulation runs over the paper's workload suites.
type Runner struct {
	cfg Config

	mu     sync.Mutex
	suites map[workload.GraphType][]*dfg.Graph
	cache  map[runKey]*Outcome

	// robustCells memoises the robustness noise sweep (robustness.go):
	// ext-robustness and ext-robust-p99 render different views of the same
	// hundreds of simulations, so the sweep runs once per Runner.
	robustMu    sync.Mutex
	robustCells map[string]map[float64]robustCell
}

// NewRunner returns a Runner with the given configuration.
func NewRunner(cfg Config) *Runner {
	if cfg.Seed == 0 {
		cfg.Seed = workload.DefaultSuiteSeed
	}
	if cfg.METSeed == 0 {
		cfg.METSeed = 1
	}
	return &Runner{
		cfg:    cfg,
		suites: map[workload.GraphType][]*dfg.Graph{},
		cache:  map[runKey]*Outcome{},
	}
}

// Graphs returns (generating on first use) the ten-experiment suite for a
// graph type.
func (r *Runner) Graphs(typ workload.GraphType) []*dfg.Graph {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.suites[typ]; ok {
		return g
	}
	g := workload.MustSuite(typ, r.cfg.Seed)
	r.suites[typ] = g
	return g
}

// newPolicy constructs a fresh policy instance for a spec.
func (r *Runner) newPolicy(spec PolicySpec) (sim.Policy, error) {
	switch spec.Name {
	case "APT":
		return core.New(spec.Alpha), nil
	case "APT-R":
		return core.NewR(spec.Alpha), nil
	case "MET":
		return policy.NewMET(r.cfg.METSeed), nil
	case "SPN":
		return policy.NewSPN(), nil
	case "SS":
		return policy.NewSS(), nil
	case "AG":
		return policy.NewAG(), nil
	case "HEFT":
		return policy.NewHEFT(), nil
	case "PEFT":
		return policy.NewPEFT(), nil
	case "OLB":
		return policy.NewOLB(), nil
	case "AR":
		return policy.NewAR(r.cfg.METSeed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", spec.Name)
	}
}

// prepareCell builds the cost oracle and a fresh policy instance for one
// (graph, rate, policy) cell.
func (r *Runner) prepareCell(g *dfg.Graph, rate platform.GBps, spec PolicySpec) (*sim.Costs, sim.Policy, *platform.System, error) {
	sys := platform.PaperSystem(rate)
	costs, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{
		ElemBytes: r.cfg.ElemBytes,
		Mode:      r.cfg.TransferMode,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	pol, err := r.newPolicy(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	return costs, pol, sys, nil
}

// outcomeOf converts an engine result into the cached Outcome form.
func outcomeOf(spec PolicySpec, res *sim.Result, pol sim.Policy) *Outcome {
	o := &Outcome{
		Policy:        spec.Name,
		MakespanMs:    res.MakespanMs,
		LambdaTotalMs: res.Lambda.TotalMs,
		LambdaAvgMs:   res.Lambda.AvgMs,
		LambdaStdMs:   res.Lambda.StdMs,
	}
	if apt, ok := pol.(*core.APT); ok {
		o.Alt = apt.Stats()
	}
	return o
}

// Run simulates one (graph type, experiment index, transfer rate, policy)
// cell and memoises the outcome. graph is zero-based.
func (r *Runner) Run(typ workload.GraphType, graph int, rate platform.GBps, spec PolicySpec) (*Outcome, error) {
	key := runKey{typ, graph, rate, spec.Name, spec.Alpha}
	r.mu.Lock()
	if o, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return o, nil
	}
	r.mu.Unlock()

	graphs := r.Graphs(typ)
	if graph < 0 || graph >= len(graphs) {
		return nil, fmt.Errorf("experiments: graph index %d out of range [0,%d)", graph, len(graphs))
	}
	g := graphs[graph]
	costs, pol, sys, err := r.prepareCell(g, rate, spec)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(costs, pol, sim.Options{SchedOverheadMs: r.cfg.SchedOverheadMs})
	if err != nil {
		return nil, err
	}
	if err := res.Validate(g, sys); err != nil {
		return nil, fmt.Errorf("experiments: %s on %v graph %d produced an invalid schedule: %w",
			spec.Name, typ, graph+1, err)
	}
	o := outcomeOf(spec, res, pol)
	r.mu.Lock()
	r.cache[key] = o
	r.mu.Unlock()
	return o, nil
}

// Suite runs one policy over all ten experiments of a suite and returns
// the outcomes in experiment order. Uncached cells are fanned across the
// engine's worker pool (sim.RunPool), which bounds concurrency at
// GOMAXPROCS and reuses per-worker engine state; the whole per-cell
// pipeline (cost preparation included) runs inside the pool, and results
// are deterministic regardless of parallelism.
func (r *Runner) Suite(typ workload.GraphType, rate platform.GBps, spec PolicySpec) ([]*Outcome, error) {
	graphs := r.Graphs(typ)
	out := make([]*Outcome, len(graphs))
	var missing []int
	r.mu.Lock()
	for i := range graphs {
		if o, ok := r.cache[runKey{typ, i, rate, spec.Name, spec.Alpha}]; ok {
			out[i] = o
		} else {
			missing = append(missing, i)
		}
	}
	r.mu.Unlock()
	if len(missing) == 0 {
		return out, nil
	}

	errs := sim.RunPool(context.Background(), len(missing), 0, func(j int, w *sim.Worker) error {
		i := missing[j]
		costs, pol, sys, err := r.prepareCell(graphs[i], rate, spec)
		if err != nil {
			return err
		}
		res, err := w.Runner().Run(costs, pol, sim.Options{SchedOverheadMs: r.cfg.SchedOverheadMs})
		if err != nil {
			return err
		}
		if err := res.Validate(graphs[i], sys); err != nil {
			return fmt.Errorf("experiments: %s on %v graph %d produced an invalid schedule: %w",
				spec.Name, typ, i+1, err)
		}
		o := outcomeOf(spec, res, pol)
		r.mu.Lock()
		r.cache[runKey{typ, i, rate, spec.Name, spec.Alpha}] = o
		r.mu.Unlock()
		out[i] = o
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// avgMakespan averages makespans over a suite.
func avgMakespan(outs []*Outcome) float64 {
	var sum float64
	for _, o := range outs {
		sum += o.MakespanMs
	}
	return sum / float64(len(outs))
}

// avgLambda averages total λ delays over a suite.
func avgLambda(outs []*Outcome) float64 {
	var sum float64
	for _, o := range outs {
		sum += o.LambdaTotalMs
	}
	return sum / float64(len(outs))
}

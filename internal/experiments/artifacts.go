package experiments

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Artifact is one regenerated paper table or figure. Exactly one of Table,
// Figure or Text is set.
type Artifact struct {
	ID      string
	Caption string
	Table   *report.Table
	Figure  *report.Figure
	Text    string
}

// Render writes the artifact's content as text into the buffer.
func (a *Artifact) Render(buf *bytes.Buffer) error {
	switch {
	case a.Table != nil:
		return a.Table.Render(buf)
	case a.Figure != nil:
		return a.Figure.Render(buf)
	default:
		_, err := buf.WriteString(a.Text)
		return err
	}
}

// paperRate is the transfer rate (PCIe 2.0 x8) used by the paper's
// non-sweep tables.
const paperRate = platform.GBps(4)

// Table7 regenerates paper Table 7: measured execution times of the
// Figure-5 example kernels per processor.
func (r *Runner) Table7() (*Artifact, error) {
	t := &report.Table{
		Title:   "Table 7. Execution time of different kernels.",
		Headers: []string{"Kernel", "CPU (ms)", "GPU (ms)", "FPGA (ms)"},
	}
	rows := []struct {
		label  string
		kernel string
		elems  int64
	}{
		{"NW", lut.NW, 16777216},
		{"BFS", lut.BFS, 2034736},
		{"CD", lut.CD, 250000},
	}
	tab := lut.Paper()
	for _, row := range rows {
		cells := []string{row.label}
		for _, kind := range platform.StandardKinds() {
			ms, err := tab.Exec(row.kernel, row.elems, kind)
			if err != nil {
				return nil, err
			}
			cells = append(cells, report.Ms(ms))
		}
		t.MustAddRow(cells...)
	}
	return &Artifact{ID: "table7", Caption: "Execution time of different kernels", Table: t}, nil
}

// Figure5 regenerates the paper's worked MET-vs-APT schedule comparison as
// two event logs plus end times.
func (r *Runner) Figure5() (*Artifact, error) {
	b := newFigure5Graph()
	sys := platform.PaperSystem(paperRate)
	var buf bytes.Buffer
	for _, spec := range []PolicySpec{{Name: "MET"}, {Name: "APT", Alpha: 8}} {
		costs, err := sim.PrepareCosts(b, sys, lut.Paper(), sim.CostConfig{})
		if err != nil {
			return nil, err
		}
		pol, err := r.newPolicy(spec)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(costs, pol, sim.Options{})
		if err != nil {
			return nil, err
		}
		if err := report.Gantt(&buf, res, b, sys); err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, "End time: %.3f\n\n", res.MakespanMs)
	}
	return &Artifact{ID: "figure5", Caption: "MET and APT schedule example (α=8)", Text: buf.String()}, nil
}

// MakespanTable builds the Tables 8/9/10 shape: total computation time in
// milliseconds per experiment for every policy, with APT at the given α.
func (r *Runner) MakespanTable(typ workload.GraphType, alpha float64, title string) (*report.Table, error) {
	t := &report.Table{
		Title:   title,
		Headers: append([]string{"Graph"}, AllPolicies...),
	}
	cols := make(map[string][]*Outcome, len(AllPolicies))
	for _, name := range AllPolicies {
		outs, err := r.Suite(typ, paperRate, PolicySpec{Name: name, Alpha: alpha})
		if err != nil {
			return nil, err
		}
		cols[name] = outs
	}
	for i := range r.Graphs(typ) {
		cells := []string{fmt.Sprintf("%d", i+1)}
		for _, name := range AllPolicies {
			cells = append(cells, report.Ms(cols[name][i].MakespanMs))
		}
		t.MustAddRow(cells...)
	}
	return t, nil
}

// Table8 regenerates paper Table 8 (Type-1 makespans, α=1.5).
func (r *Runner) Table8() (*Artifact, error) {
	t, err := r.MakespanTable(workload.Type1,
		1.5, "Table 8. Total computation time in milliseconds for DFG Type-1 by all policies (α=1.5 for APT).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "table8", Caption: "DFG Type-1 makespans, α=1.5", Table: t}, nil
}

// Table9 regenerates paper Table 9 (Type-2 makespans, α=1.5).
func (r *Runner) Table9() (*Artifact, error) {
	t, err := r.MakespanTable(workload.Type2,
		1.5, "Table 9. Total computation time in milliseconds for DFG Type-2 by all policies (α=1.5 for APT).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "table9", Caption: "DFG Type-2 makespans, α=1.5", Table: t}, nil
}

// Table10 regenerates paper Table 10 (Type-2 makespans, α=4).
func (r *Runner) Table10() (*Artifact, error) {
	t, err := r.MakespanTable(workload.Type2,
		4, "Table 10. Total computation time in milliseconds for DFG Type-2 by all policies (α=4 for APT).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "table10", Caption: "DFG Type-2 makespans, α=4", Table: t}, nil
}

// topPolicies are the four best performers the paper charts in Figures 6
// and 8(b).
var topPolicies = []string{"APT", "MET", "HEFT", "PEFT"}

// TopPoliciesFigure builds the Figures 6/8(b) shape: average makespan of
// the top four policies with APT at α=1.5.
func (r *Runner) TopPoliciesFigure(typ workload.GraphType, title string) (*report.Figure, error) {
	f := &report.Figure{
		Title:  title,
		XLabel: "Scheduling policy",
		YLabel: "avg execution time (s)",
		X:      topPolicies,
	}
	y := make([]float64, len(topPolicies))
	for i, name := range topPolicies {
		outs, err := r.Suite(typ, paperRate, PolicySpec{Name: name, Alpha: 1.5})
		if err != nil {
			return nil, err
		}
		y[i] = avgMakespan(outs) / 1000 // seconds, as the paper charts
	}
	f.MustAddSeries("avg execution time", y)
	return f, nil
}

// Figure6 regenerates paper Figure 6 (Type-1 top-4 averages, α=1.5).
func (r *Runner) Figure6() (*Artifact, error) {
	f, err := r.TopPoliciesFigure(workload.Type1,
		"Figure 6. Avg. execution time in seconds for top 4 policies of DFG Type-1 (α=1.5).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "figure6", Caption: "Type-1 top-4 policy averages", Figure: f}, nil
}

// Figure8b regenerates the second Figure 8 (p. 58): Type-2 top-4 averages.
func (r *Runner) Figure8b() (*Artifact, error) {
	f, err := r.TopPoliciesFigure(workload.Type2,
		"Figure 8(b). Avg. execution time in seconds for top 4 policies of DFG Type-2 (α=1.5).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "figure8b", Caption: "Type-2 top-4 policy averages", Figure: f}, nil
}

// metric selects what an α-sweep figure charts.
type metric int

const (
	metricMakespan metric = iota
	metricLambda
)

// AlphaSweepFigure builds the Figures 7/9/11/12 shape: APT's suite average
// (makespan or total λ) per α, one series per transfer rate.
func (r *Runner) AlphaSweepFigure(typ workload.GraphType, m metric, title string) (*report.Figure, error) {
	f := &report.Figure{
		Title:  title,
		XLabel: "α values",
		YLabel: "avg time (s)",
		X:      make([]string, len(Alphas)),
	}
	for i, a := range Alphas {
		f.X[i] = fmt.Sprintf("%g", a)
	}
	for _, rate := range Rates {
		y := make([]float64, len(Alphas))
		for i, a := range Alphas {
			outs, err := r.Suite(typ, rate, PolicySpec{Name: "APT", Alpha: a})
			if err != nil {
				return nil, err
			}
			switch m {
			case metricMakespan:
				y[i] = avgMakespan(outs) / 1000
			case metricLambda:
				y[i] = avgLambda(outs) / 1000
			}
		}
		f.MustAddSeries(fmt.Sprintf("%g GBps", float64(rate)), y)
	}
	return f, nil
}

// Figure7 regenerates paper Figure 7 (Type-1 α×rate makespan sweep).
func (r *Runner) Figure7() (*Artifact, error) {
	f, err := r.AlphaSweepFigure(workload.Type1, metricMakespan,
		"Figure 7. Avg. performance of APT for DFG Type-1 on varying α and transfer rate.")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "figure7", Caption: "APT α sweep, Type-1 makespan", Figure: f}, nil
}

// Figure9 regenerates paper Figure 9 (Type-2 α×rate makespan sweep).
func (r *Runner) Figure9() (*Artifact, error) {
	f, err := r.AlphaSweepFigure(workload.Type2, metricMakespan,
		"Figure 9. Avg. performance of APT for DFG Type-2 on varying α and transfer rate.")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "figure9", Caption: "APT α sweep, Type-2 makespan", Figure: f}, nil
}

// Figure11 regenerates paper Figure 11 (Type-1 α×rate λ sweep).
func (r *Runner) Figure11() (*Artifact, error) {
	f, err := r.AlphaSweepFigure(workload.Type1, metricLambda,
		"Figure 11. Avg. λ delay times in seconds of APT for DFG Type-1 on varying α and transfer rate.")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "figure11", Caption: "APT α sweep, Type-1 λ delay", Figure: f}, nil
}

// Figure12 regenerates paper Figure 12 (Type-2 α×rate λ sweep).
func (r *Runner) Figure12() (*Artifact, error) {
	f, err := r.AlphaSweepFigure(workload.Type2, metricLambda,
		"Figure 12. Avg. λ delay times of APT for DFG Type-2 on varying α and transfer rate.")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "figure12", Caption: "APT α sweep, Type-2 λ delay", Figure: f}, nil
}

// PerExperimentFigure builds the Figures 8(a)/10 shape: per-experiment
// makespans of MET vs APT(α=4).
func (r *Runner) PerExperimentFigure(typ workload.GraphType, title string) (*report.Figure, error) {
	n := len(r.Graphs(typ))
	f := &report.Figure{
		Title:  title,
		XLabel: "Experiment number",
		YLabel: "execution time (s)",
		X:      make([]string, n),
	}
	for i := range f.X {
		f.X[i] = fmt.Sprintf("%d", i+1)
	}
	for _, spec := range []PolicySpec{{Name: "APT", Alpha: 4}, {Name: "MET"}} {
		outs, err := r.Suite(typ, paperRate, spec)
		if err != nil {
			return nil, err
		}
		y := make([]float64, n)
		for i, o := range outs {
			y[i] = o.MakespanMs / 1000
		}
		f.MustAddSeries(spec.Name, y)
	}
	return f, nil
}

// Figure8a regenerates the first Figure 8 (p. 56): per-experiment Type-1
// makespans, MET vs APT(α=4).
func (r *Runner) Figure8a() (*Artifact, error) {
	f, err := r.PerExperimentFigure(workload.Type1,
		"Figure 8(a). Execution time of experiments of DFG Type-1 for MET and APT (α=4).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "figure8a", Caption: "Type-1 per-experiment, MET vs APT(α=4)", Figure: f}, nil
}

// Figure10 regenerates paper Figure 10: per-experiment Type-2 makespans.
func (r *Runner) Figure10() (*Artifact, error) {
	f, err := r.PerExperimentFigure(workload.Type2,
		"Figure 10. Execution time of experiments of DFG Type-2 for MET and APT (α=4).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "figure10", Caption: "Type-2 per-experiment, MET vs APT(α=4)", Figure: f}, nil
}

// LambdaTable builds the Tables 11/12 shape: total λ delay per experiment
// for every policy, APT at α=4.
func (r *Runner) LambdaTable(typ workload.GraphType, title string) (*report.Table, error) {
	t := &report.Table{
		Title:   title,
		Headers: append([]string{"Graph"}, AllPolicies...),
	}
	cols := make(map[string][]*Outcome, len(AllPolicies))
	for _, name := range AllPolicies {
		outs, err := r.Suite(typ, paperRate, PolicySpec{Name: name, Alpha: 4})
		if err != nil {
			return nil, err
		}
		cols[name] = outs
	}
	for i := range r.Graphs(typ) {
		cells := []string{fmt.Sprintf("%d", i+1)}
		for _, name := range AllPolicies {
			cells = append(cells, report.Ms(cols[name][i].LambdaTotalMs))
		}
		t.MustAddRow(cells...)
	}
	return t, nil
}

// Table11 regenerates paper Table 11 (Type-1 λ delays, α=4).
func (r *Runner) Table11() (*Artifact, error) {
	t, err := r.LambdaTable(workload.Type1,
		"Table 11. Total λ delay in milliseconds for DFG Type-1 by all policies (α=4 for APT).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "table11", Caption: "Type-1 λ delays, α=4", Table: t}, nil
}

// Table12 regenerates paper Table 12 (Type-2 λ delays, α=4).
func (r *Runner) Table12() (*Artifact, error) {
	t, err := r.LambdaTable(workload.Type2,
		"Table 12. Total λ delay in milliseconds for DFG Type-2 by all policies (α=4 for APT).")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "table12", Caption: "Type-2 λ delays, α=4", Table: t}, nil
}

// Table13 regenerates paper Table 13: APT's percentage improvement in
// average makespan and average total λ over the second-best dynamic policy
// (Eq. 13–14), per α, per graph type, at 4 GB/s.
func (r *Runner) Table13() (*Artifact, error) {
	t := &report.Table{
		Title: "Table 13. Improvement metrics for APT with respect to different types of graphs.",
		Headers: []string{"α",
			"T1 Improvement exec", "T1 Improvement λ delay",
			"T2 Improvement exec", "T2 Improvement λ delay"},
		Notes: []string{"Positive: APT better than the best non-APT dynamic policy (Eq. 13–14)."},
	}
	for _, a := range Alphas {
		cells := []string{fmt.Sprintf("%g", a)}
		for _, typ := range []workload.GraphType{workload.Type1, workload.Type2} {
			aptOuts, err := r.Suite(typ, paperRate, PolicySpec{Name: "APT", Alpha: a})
			if err != nil {
				return nil, err
			}
			bestExec, bestLambda, err := r.secondBestDynamic(typ)
			if err != nil {
				return nil, err
			}
			cells = append(cells,
				report.Pct(stats.ImprovementPct(bestExec, avgMakespan(aptOuts))),
				report.Pct(stats.ImprovementPct(bestLambda, avgLambda(aptOuts))))
		}
		t.MustAddRow(cells...)
	}
	return &Artifact{ID: "table13", Caption: "APT improvement vs second-best dynamic policy", Table: t}, nil
}

// secondBestDynamic returns the suite-average makespan and λ of the
// second-best policy: the non-APT dynamic policy with the lowest average
// makespan ("for better understanding of comparison, the second best
// policy can only be a dynamic policy", paper §4.4 — in practice MET).
// Both improvement metrics are computed against this one policy.
func (r *Runner) secondBestDynamic(typ workload.GraphType) (execMs, lambdaMs float64, err error) {
	first := true
	for _, name := range DynamicPolicies {
		outs, err := r.Suite(typ, paperRate, PolicySpec{Name: name})
		if err != nil {
			return 0, 0, err
		}
		if e := avgMakespan(outs); first || e < execMs {
			execMs, lambdaMs, first = e, avgLambda(outs), false
		}
	}
	return execMs, lambdaMs, nil
}

// Table14 regenerates paper Table 14: the complete lookup table.
func (r *Runner) Table14() (*Artifact, error) {
	t := &report.Table{
		Title:   "Table 14. Complete lookup table.",
		Headers: []string{"Kernel", "Data Size", "CPU", "GPU", "FPGA"},
	}
	for _, e := range lut.Paper().Entries() {
		t.MustAddRow(
			e.Kernel,
			fmt.Sprintf("%d", e.DataElems),
			report.Ms(e.TimeMs[platform.CPU]),
			report.Ms(e.TimeMs[platform.GPU]),
			report.Ms(e.TimeMs[platform.FPGA]),
		)
	}
	return &Artifact{ID: "table14", Caption: "Complete lookup table", Table: t}, nil
}

// AllocationTable builds the Tables 15/16 shape: per α and per experiment,
// how many kernels APT sent to an alternative processor and which kernels
// they were.
func (r *Runner) AllocationTable(typ workload.GraphType, title string) (*report.Table, error) {
	t := &report.Table{
		Title:   title,
		Headers: []string{"α", "Experiment", "Total kernels", "Total different assignments", "Kernel specific"},
	}
	for _, a := range Alphas {
		outs, err := r.Suite(typ, paperRate, PolicySpec{Name: "APT", Alpha: a})
		if err != nil {
			return nil, err
		}
		for i, o := range outs {
			t.MustAddRow(
				fmt.Sprintf("%g", a),
				fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%d", r.Graphs(typ)[i].NumKernels()),
				fmt.Sprintf("%d", o.Alt.AltAssignments),
				formatByKernel(o.Alt.ByKernel),
			)
		}
	}
	return t, nil
}

func formatByKernel(m map[string]int) string {
	if len(m) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			buf.WriteString(", ")
		}
		fmt.Fprintf(&buf, "%d-%s", m[k], k)
	}
	return buf.String()
}

// Table15 regenerates paper Table 15 (Type-1 allocation analyses).
func (r *Runner) Table15() (*Artifact, error) {
	t, err := r.AllocationTable(workload.Type1, "Table 15. APT kernel allocation analyses for DFG Type-1 graphs.")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "table15", Caption: "APT allocation analyses, Type-1", Table: t}, nil
}

// Table16 regenerates paper Table 16 (Type-2 allocation analyses).
func (r *Runner) Table16() (*Artifact, error) {
	t, err := r.AllocationTable(workload.Type2, "Table 16. APT kernel allocation analyses for DFG Type-2 graphs.")
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "table16", Caption: "APT allocation analyses, Type-2", Table: t}, nil
}

package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRunMemoises(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Run(workload.Type1, 0, 4, PolicySpec{Name: "MET"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(workload.Type1, 0, 4, PolicySpec{Name: "MET"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs not memoised")
	}
}

func TestRunErrors(t *testing.T) {
	r := NewRunner(Config{})
	if _, err := r.Run(workload.Type1, 99, 4, PolicySpec{Name: "MET"}); err == nil {
		t.Error("out-of-range graph accepted")
	}
	if _, err := r.Run(workload.Type1, 0, 4, PolicySpec{Name: "BOGUS"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSuiteShape(t *testing.T) {
	r := NewRunner(Config{})
	outs, err := r.Suite(workload.Type2, 4, PolicySpec{Name: "APT", Alpha: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 10 {
		t.Fatalf("suite has %d outcomes, want 10", len(outs))
	}
	for i, o := range outs {
		if o.MakespanMs <= 0 {
			t.Errorf("experiment %d makespan %v", i+1, o.MakespanMs)
		}
		if o.Policy != "APT" {
			t.Errorf("experiment %d policy %q", i+1, o.Policy)
		}
	}
}

func TestTable7MatchesPaper(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Table7()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Exact values from paper Table 7 / Table 14.
	for _, want := range []string{"112", "146", "397", "332", "173", "106", "17.064", "2.749", "0.093"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 7 missing %q:\n%s", want, s)
		}
	}
}

func TestFigure5MatchesPaperEndTimes(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "End time: 318.093") {
		t.Errorf("MET end time missing:\n%s", a.Text)
	}
	if !strings.Contains(a.Text, "End time: 212.093") {
		t.Errorf("APT end time missing:\n%s", a.Text)
	}
}

func TestMakespanTablesShape(t *testing.T) {
	r := NewRunner(Config{})
	for _, id := range []string{"table8", "table9", "table10"} {
		a, err := r.Artifact(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(a.Table.Rows) != 10 {
			t.Errorf("%s has %d rows, want 10", id, len(a.Table.Rows))
		}
		if len(a.Table.Headers) != 8 { // Graph + 7 policies
			t.Errorf("%s has %d columns, want 8", id, len(a.Table.Headers))
		}
	}
}

// At α=1.5 APT's column should match MET's on most Type-2 graphs (paper
// Table 9 shows them identical everywhere).
func TestTable9APTMimicsMET(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Table9()
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, row := range a.Table.Rows {
		apt, err1 := strconv.ParseFloat(row[1], 64)
		met, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if apt == met || (met > 0 && abs(apt-met)/met < 0.02) {
			same++
		}
	}
	if same < 7 {
		t.Errorf("APT(1.5) matched MET on only %d/10 Type-2 graphs", same)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// At α=4 APT must win at least 7 of 10 Type-2 experiments against every
// other policy (paper: 9 of 10).
func TestTable10APTMostlyWins(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Table10()
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, row := range a.Table.Rows {
		apt, _ := strconv.ParseFloat(row[1], 64)
		best := true
		for col := 2; col < len(row); col++ {
			v, _ := strconv.ParseFloat(row[col], 64)
			if v < apt {
				best = false
			}
		}
		if best {
			wins++
		}
	}
	if wins < 7 {
		t.Errorf("APT(α=4) won only %d/10 Type-2 experiments", wins)
	}
}

func TestAlphaSweepValley(t *testing.T) {
	r := NewRunner(Config{})
	for _, id := range []string{"figure7", "figure9"} {
		a, err := r.Artifact(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, s := range a.Figure.Series {
			// Valley: the α=4 point (index 2) must not exceed the α=1.5
			// point (index 0), and α=16 (index 4) must not undercut α=4.
			if s.Y[2] > s.Y[0] {
				t.Errorf("%s %s: no dip at α=4: %v", id, s.Name, s.Y)
			}
			if s.Y[4] < s.Y[2]-1e-9 {
				t.Errorf("%s %s: α=16 (%v) beats thresholdbrk α=4 (%v)", id, s.Name, s.Y[4], s.Y[2])
			}
		}
	}
}

func TestTable13ImprovementAtAlpha4(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Table13()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Table.Rows) != len(Alphas) {
		t.Fatalf("rows = %d, want %d", len(a.Table.Rows), len(Alphas))
	}
	// α = 4 row: all four improvement cells positive (paper: 18.223,
	// 20.455, 15.771, 20.778).
	for _, row := range a.Table.Rows {
		if row[0] != "4" {
			continue
		}
		for col := 1; col < len(row); col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("unparseable cell %q", row[col])
			}
			if v <= 0 {
				t.Errorf("α=4 improvement column %d = %v, want positive", col, v)
			}
			if v < 5 || v > 60 {
				t.Errorf("α=4 improvement column %d = %v%%, outside plausible double-digit band", col, v)
			}
		}
	}
	// α = 1.5 row: improvements near zero (APT mimics MET).
	for _, row := range a.Table.Rows {
		if row[0] != "1.5" {
			continue
		}
		for col := 1; col < len(row); col++ {
			v, _ := strconv.ParseFloat(row[col], 64)
			if abs(v) > 10 {
				t.Errorf("α=1.5 improvement column %d = %v%%, want near zero", col, v)
			}
		}
	}
}

func TestTable14RowCount(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Table14()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Table.Rows) != 25 {
		t.Errorf("lookup table rows = %d, want 25", len(a.Table.Rows))
	}
}

func TestAllocationTablesGrowWithAlpha(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Table15()
	if err != nil {
		t.Fatal(err)
	}
	// Sum alternative assignments per α; they must be non-decreasing from
	// α=1.5 to α=4 and positive at α=4 (paper Tables 15/16).
	sums := map[string]int{}
	for _, row := range a.Table.Rows {
		n, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("unparseable total %q", row[3])
		}
		sums[row[0]] += n
	}
	if sums["4"] == 0 {
		t.Error("no alternative assignments at α=4")
	}
	if sums["1.5"] > sums["4"] {
		t.Errorf("alternative assignments shrank with α: 1.5→%d, 4→%d", sums["1.5"], sums["4"])
	}
}

func TestArtifactRegistryComplete(t *testing.T) {
	r := NewRunner(Config{})
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("registry has %d artifacts, want 21", len(ids))
	}
	// Regenerate a cheap subset end-to-end through the registry; the rest
	// are exercised by their dedicated tests and the benches.
	for _, id := range []string{"table7", "figure5", "table14"} {
		a, err := r.Artifact(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		if err := a.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered empty", id)
		}
	}
	if _, err := r.Artifact("nope"); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestSortedIDsSorted(t *testing.T) {
	ids := SortedIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("not sorted: %v", ids)
		}
	}
}

func TestLambdaTablesPositive(t *testing.T) {
	r := NewRunner(Config{})
	for _, id := range []string{"table11", "table12"} {
		a, err := r.Artifact(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, row := range a.Table.Rows {
			for col := 1; col < len(row); col++ {
				v, err := strconv.ParseFloat(row[col], 64)
				if err != nil {
					t.Fatalf("%s unparseable cell %q", id, row[col])
				}
				if v < 0 {
					t.Errorf("%s negative λ %v", id, v)
				}
			}
		}
	}
}

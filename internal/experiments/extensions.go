package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Extension artifacts go beyond the thesis: they exercise the same code
// paths on questions the thesis raises but does not evaluate. IDs are
// prefixed "ext-" and are excluded from IDs()/All(); cmd/experiments
// exposes them behind -ext.

// extArtifactOrder lists the extension artifacts.
var extArtifactOrder = []string{
	"ext-policies", "ext-stream", "ext-latency", "ext-noise", "ext-bounds",
	"ext-robustness", "ext-robust-p99", "ext-degrade",
}

// ExtIDs returns the extension artifact IDs.
func ExtIDs() []string {
	out := make([]string, len(extArtifactOrder))
	copy(out, extArtifactOrder)
	return out
}

// extArtifact dispatches extension artifacts; Artifact falls back to it.
func (r *Runner) extArtifact(id string) (*Artifact, error) {
	switch id {
	case "ext-policies":
		return r.ExtPolicies()
	case "ext-stream":
		return r.ExtStream()
	case "ext-latency":
		return r.ExtLatency()
	case "ext-noise":
		return r.ExtNoise()
	case "ext-bounds":
		return r.ExtBounds()
	case "ext-robustness":
		return r.ExtRobustness()
	case "ext-robust-p99":
		return r.ExtRobustP99()
	case "ext-degrade":
		return r.ExtDegrade()
	default:
		return nil, fmt.Errorf("experiments: unknown artifact %q (known: %v, extensions: %v)",
			id, IDs(), ExtIDs())
	}
}

// ExtPolicies extends Table 10 with the two related-work baselines the
// thesis discusses but does not tabulate: OLB (Braun et al.) and Adaptive
// Random (Wu et al.).
func (r *Runner) ExtPolicies() (*Artifact, error) {
	cols := append(append([]string{}, AllPolicies...), "OLB", "AR")
	t := &report.Table{
		Title:   "Extension. Type-2 makespans including OLB and Adaptive Random (α=4 for APT).",
		Headers: append([]string{"Graph"}, cols...),
	}
	outs := map[string][]*Outcome{}
	for _, name := range cols {
		o, err := r.Suite(workload.Type2, paperRate, PolicySpec{Name: name, Alpha: 4})
		if err != nil {
			return nil, err
		}
		outs[name] = o
	}
	for i := range r.Graphs(workload.Type2) {
		cells := []string{fmt.Sprintf("%d", i+1)}
		for _, name := range cols {
			cells = append(cells, report.Ms(outs[name][i].MakespanMs))
		}
		t.MustAddRow(cells...)
	}
	return &Artifact{ID: "ext-policies", Caption: "Type-2 makespans incl. OLB and AR", Table: t}, nil
}

// extStreamMeanGapMs paces the stream so that arrivals spread across a
// makespan-sized window: heavy contention at the start disappears and λ
// approaches the magnitudes the thesis reports.
const extStreamMeanGapMs = 500

// ExtStream re-runs the Table 12 comparison (Type-2 λ totals, α=4) with
// Poisson-paced arrivals instead of the thesis's submit-everything-at-zero
// model. With pacing, waiting no longer accumulates quadratically in queue
// length, so λ totals drop toward the same order as the makespan — the
// regime the thesis's λ tables live in.
func (r *Runner) ExtStream() (*Artifact, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Extension. Type-2 total λ (ms) with Poisson arrivals (mean gap %d ms, α=4 for APT).",
			extStreamMeanGapMs),
		Headers: []string{"Graph", "APT λ", "MET λ", "APT makespan", "MET makespan"},
		Notes:   []string{"Streaming arrivals are this repository's extension; the thesis submits whole streams at t=0."},
	}
	sys := platform.PaperSystem(paperRate)
	for i, g := range r.Graphs(workload.Type2) {
		arrivals, err := workload.PoissonArrivals(g, extStreamMeanGapMs, int64(1000+i))
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", i+1)}
		var lams, mks []float64
		for _, spec := range []PolicySpec{{Name: "APT", Alpha: 4}, {Name: "MET"}} {
			costs, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
			if err != nil {
				return nil, err
			}
			pol, err := r.newPolicy(spec)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(costs, pol, sim.Options{ArrivalTimes: arrivals})
			if err != nil {
				return nil, err
			}
			lams = append(lams, res.Lambda.TotalMs)
			mks = append(mks, res.MakespanMs)
		}
		row = append(row, report.Ms(lams[0]), report.Ms(lams[1]), report.Ms(mks[0]), report.Ms(mks[1]))
		t.MustAddRow(row...)
	}
	return &Artifact{ID: "ext-stream", Caption: "λ under streaming arrivals", Table: t}, nil
}

// extLatencyKernels and extLatencyGapMs size the open-system latency
// extension: a stream of independent catalog kernels arriving as a
// Poisson process with the given mean gap.
const (
	extLatencyKernels = 1000
	extLatencyGapMs   = 2000
)

// extLatencyPolicies are the per-row policies of ExtLatency.
var extLatencyPolicies = []PolicySpec{
	{Name: "APT", Alpha: 4}, {Name: "MET"}, {Name: "SPN"}, {Name: "OLB"}, {Name: "HEFT"},
}

// ExtLatency reports open-system sojourn latency percentiles (arrival →
// finish) per policy over a Poisson-paced stream of independent catalog
// kernels — the per-request view a production scheduler is judged on,
// which the thesis's closed makespan and λ tables cannot show.
func (r *Runner) ExtLatency() (*Artifact, error) {
	g, err := workload.Independent(extLatencyKernels, workload.DefaultSuiteSeed)
	if err != nil {
		return nil, err
	}
	arrivals, err := workload.PoissonArrivals(g, extLatencyGapMs, workload.DefaultSuiteSeed)
	if err != nil {
		return nil, err
	}
	sys := platform.PaperSystem(paperRate)
	var rows []report.LatencyRow
	for _, spec := range extLatencyPolicies {
		costs, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
		if err != nil {
			return nil, err
		}
		pol, err := r.newPolicy(spec)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(costs, pol, sim.Options{ArrivalTimes: arrivals})
		if err != nil {
			return nil, err
		}
		rows = append(rows, report.LatencyRow{Label: spec.Label(), S: res.Sojourn})
	}
	t := report.LatencyTable(fmt.Sprintf(
		"Extension. Sojourn latency (ms) over a %d-kernel Poisson stream (mean gap %d ms, α=4 for APT).",
		extLatencyKernels, extLatencyGapMs), rows)
	t.Notes = []string{"Sojourn is arrival → finish; open-system streaming is this repository's extension."}
	return &Artifact{ID: "ext-latency", Caption: "Open-system sojourn latency percentiles", Table: t}, nil
}

// extNoiseFracs are the estimation-error levels swept by ExtNoise.
var extNoiseFracs = []float64{0, 0.1, 0.3, 0.5}

// ExtNoise studies robustness to estimation error: every policy keeps
// deciding with the clean lookup table while the simulated hardware runs
// at times perturbed by ±frac uniform noise. Reported cells are
// suite-average makespans (Type-2) normalised by the noisy hardware's own
// zero-error baseline per policy — the degradation attributable purely to
// deciding on stale estimates.
func (r *Runner) ExtNoise() (*Artifact, error) {
	t := &report.Table{
		Title:   "Extension. Type-2 avg makespan (ms) when actual times deviate ±frac from the estimates used for scheduling (α=4 for APT).",
		Headers: []string{"noise", "APT", "MET", "HEFT", "PEFT"},
		Notes:   []string{"Policies decide on the clean Table 14; execution follows a perturbed copy."},
	}
	specs := []PolicySpec{{Name: "APT", Alpha: 4}, {Name: "MET"}, {Name: "HEFT"}, {Name: "PEFT"}}
	sys := platform.PaperSystem(paperRate)
	graphs := r.Graphs(workload.Type2)
	for _, frac := range extNoiseFracs {
		row := []string{fmt.Sprintf("%.0f%%", frac*100)}
		for _, spec := range specs {
			var total float64
			for gi, g := range graphs {
				est, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
				if err != nil {
					return nil, err
				}
				opts := sim.Options{}
				if frac > 0 {
					noisy, err := lut.Perturbed(lut.Paper(), frac, int64(40+gi))
					if err != nil {
						return nil, err
					}
					actual, err := sim.PrepareCosts(g, sys, noisy, sim.CostConfig{})
					if err != nil {
						return nil, err
					}
					opts.ActualCosts = actual
				}
				pol, err := r.newPolicy(spec)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(est, pol, opts)
				if err != nil {
					return nil, err
				}
				total += res.MakespanMs
			}
			row = append(row, report.Ms(total/float64(len(graphs))))
		}
		t.MustAddRow(row...)
	}
	return &Artifact{ID: "ext-noise", Caption: "Robustness to estimation error", Table: t}, nil
}

// ExtBounds measures optimality gaps on workloads small enough for the
// exact solver: ten random independent 14-kernel sets from the paper
// catalog, reporting each policy's makespan as a percentage above the true
// optimum (transfers play no role in independent sets, so the exact
// partition optimum applies to the simulated makespans exactly).
func (r *Runner) ExtBounds() (*Artifact, error) {
	t := &report.Table{
		Title:   "Extension. Makespan vs exact optimum on 14-kernel independent workloads (gap %, α=4 for APT).",
		Headers: []string{"Workload", "Optimal ms", "APT gap%", "MET gap%", "SPN gap%", "HEFT gap%"},
	}
	cat := workload.PaperCatalog()
	sys := platform.PaperSystem(paperRate)
	specs := []PolicySpec{{Name: "APT", Alpha: 4}, {Name: "MET"}, {Name: "SPN"}, {Name: "HEFT"}}
	for trial := 0; trial < 10; trial++ {
		series := cat.RandomSeries(randFor(int64(trial)), 14)
		b := dfgBuilderFromSeries(series)
		g, err := b.Build()
		if err != nil {
			return nil, err
		}
		costs, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
		if err != nil {
			return nil, err
		}
		opt, err := bounds.OptimalIndependent(costs)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", trial+1), report.Ms(opt)}
		for _, spec := range specs {
			pol, err := r.newPolicy(spec)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(costs, pol, sim.Options{})
			if err != nil {
				return nil, err
			}
			gap := 0.0
			if opt > 0 {
				gap = (res.MakespanMs - opt) / opt * 100
			}
			row = append(row, fmt.Sprintf("%.1f", gap))
		}
		t.MustAddRow(row...)
	}
	return &Artifact{ID: "ext-bounds", Caption: "Optimality gaps on small independent workloads", Table: t}, nil
}

func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(7_000_000 + seed)) }

func dfgBuilderFromSeries(series []workload.KernelSpec) *dfg.Builder {
	b := dfg.NewBuilder()
	for _, s := range series {
		b.AddKernel(dfg.Kernel{Name: s.Name, Dwarf: lut.Dwarf(s.Name), DataElems: s.DataElems})
	}
	return b
}

package experiments

import (
	"strings"
	"testing"
)

// Golden regression values: the default-seed suite is fully deterministic,
// so these exact cells must never drift. If an intentional model change
// moves them, update the constants and record the change in CHANGES.md
// — a silent shift here means a behavioural regression somewhere in the
// engine, the generators or a policy.

func TestGoldenTable10FirstRow(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Table10()
	if err != nil {
		t.Fatal(err)
	}
	got := a.Table.Rows[0]
	want := []string{"1", "37822.000", "40956.770", "586451.799", "588137.178", "718964.606", "44787.842", "40923.978"}
	if len(got) != len(want) {
		t.Fatalf("row width %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Table 10 row 1 col %d (%s) = %s, want %s — deterministic results drifted",
				i, a.Table.Headers[i], got[i], want[i])
		}
	}
}

func TestGoldenFigure5EndTimes(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"End time: 318.093", "End time: 212.093"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("Figure 5 lost golden line %q", want)
		}
	}
}

package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/lut"
)

// newFigure5Graph builds the workload of the thesis's Figure 5 example:
// one nw, three bfs, one cd (250000 elements), all independent.
func newFigure5Graph() *dfg.Graph {
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: lut.NW, DataElems: 16777216})
	b.AddKernel(dfg.Kernel{Name: lut.BFS, DataElems: 2034736})
	b.AddKernel(dfg.Kernel{Name: lut.BFS, DataElems: 2034736})
	b.AddKernel(dfg.Kernel{Name: lut.BFS, DataElems: 2034736})
	b.AddKernel(dfg.Kernel{Name: lut.CD, DataElems: 250000})
	return b.MustBuild()
}

// artifactDrivers maps artifact IDs to their drivers in the paper's order.
var artifactOrder = []string{
	"table1", "table5",
	"table7", "figure5",
	"table8", "figure6", "figure7", "figure8a",
	"table9", "figure8b", "table10", "figure9", "figure10",
	"table11", "figure11", "table12", "figure12",
	"table13", "table14", "table15", "table16",
}

// Artifact regenerates one paper artifact by ID (e.g. "table8",
// "figure11"). Use IDs for the catalogue.
func (r *Runner) Artifact(id string) (*Artifact, error) {
	switch id {
	case "table1":
		return r.Table1()
	case "table5":
		return r.Table5()
	case "table7":
		return r.Table7()
	case "figure5":
		return r.Figure5()
	case "table8":
		return r.Table8()
	case "figure6":
		return r.Figure6()
	case "figure7":
		return r.Figure7()
	case "figure8a":
		return r.Figure8a()
	case "table9":
		return r.Table9()
	case "figure8b":
		return r.Figure8b()
	case "table10":
		return r.Table10()
	case "figure9":
		return r.Figure9()
	case "figure10":
		return r.Figure10()
	case "table11":
		return r.Table11()
	case "figure11":
		return r.Figure11()
	case "table12":
		return r.Table12()
	case "figure12":
		return r.Figure12()
	case "table13":
		return r.Table13()
	case "table14":
		return r.Table14()
	case "table15":
		return r.Table15()
	case "table16":
		return r.Table16()
	default:
		return r.extArtifact(id)
	}
}

// IDs returns every artifact ID in the paper's order.
func IDs() []string {
	out := make([]string, len(artifactOrder))
	copy(out, artifactOrder)
	return out
}

// All regenerates every artifact in paper order.
func (r *Runner) All() ([]*Artifact, error) {
	out := make([]*Artifact, 0, len(artifactOrder))
	for _, id := range artifactOrder {
		a, err := r.Artifact(id)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// SortedIDs returns the IDs sorted lexically (for deterministic CLI help).
func SortedIDs() []string {
	ids := IDs()
	sort.Strings(ids)
	return ids
}

package experiments

import (
	"strings"
	"testing"
)

func TestExtRobustnessZeroNoiseRows(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.ExtRobustness()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(extRobustFracs) * len(extRobustPolicies)
	if len(a.Table.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(a.Table.Rows), wantRows)
	}
	// The first block is frac 0: noisy and oracle runs are the same run,
	// so regret must be exactly zero.
	for _, row := range a.Table.Rows[:len(extRobustPolicies)] {
		if !strings.Contains(row[0], "±0%") {
			t.Fatalf("first rows should be the 0%% block, got %q", row[0])
		}
		if row[1] != row[2] {
			t.Errorf("%s: makespan %s != oracle %s at zero noise", row[0], row[1], row[2])
		}
		if row[3] != "+0.00" {
			t.Errorf("%s: regret %s at zero noise, want +0.00", row[0], row[3])
		}
	}
}

func TestExtDegradeSlowsEveryPolicy(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.ExtDegrade()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Table.Rows) != 1+len(extDegradeScenarios) {
		t.Fatalf("rows = %d, want %d", len(a.Table.Rows), 1+len(extDegradeScenarios))
	}
	// The whole-run GPU slowdown must not speed anything up.
	for col, cell := range a.Table.Rows[1][1:] {
		if strings.Contains(cell, "(-") {
			t.Errorf("policy %s sped up under a GPU slowdown: %s", a.Table.Headers[col+1], cell)
		}
	}
}

func TestExtRobustP99SeriesShape(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.ExtRobustP99()
	if err != nil {
		t.Fatal(err)
	}
	if a.Figure == nil {
		t.Fatal("ext-robust-p99 did not produce a figure")
	}
}

package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/lut"
	"repro/internal/perturb"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Robustness extension artifacts: how each policy behaves when its
// estimates are wrong (ext-robustness, ext-robust-p99) or the platform
// degrades mid-run (ext-degrade). Policies always decide on the clean
// Table 14; only the engine's actual-time path is perturbed.

// extRobustFracs are the uniform estimate-error levels swept.
var extRobustFracs = []float64{0, 0.1, 0.3, 0.5}

// extRobustPolicies are the compared policies.
var extRobustPolicies = []PolicySpec{
	{Name: "APT", Alpha: 4}, {Name: "MET"}, {Name: "HEFT"}, {Name: "PEFT"},
}

// extRobustSeedBase offsets the per-graph noise seeds so every experiment
// of the suite sees its own noise realisation.
const extRobustSeedBase = 7_040

// robustCell is one (policy, frac) aggregate over the Type-2 suite.
type robustCell struct {
	makespanMs float64 // suite mean, clean estimates vs perturbed reality
	oracleMs   float64 // suite mean, perfect information
	regretPct  float64
	p99Ms      float64 // exact p99 sojourn over every kernel of the suite
}

// robustSweep runs the noise sweep: for every (frac, policy, graph) two
// simulations — noisy estimates and the perfect-information oracle on the
// same perturbed table — fanned through the engine's worker pool. Arrivals
// are Poisson (mean gap extStreamMeanGapMs) so the p99 sojourn is an
// open-system tail, not a makespan echo. The sweep is memoised on the
// Runner; both robustness artifacts share one execution.
//
// The memo lock brackets only the cache reads and writes — never the
// sweep itself: the worker pool's WaitGroup.Wait would otherwise park
// with robustMu held. If two goroutines race past the empty-cache check
// they both run the sweep (deterministic, so the results are identical)
// and the first store wins.
func (r *Runner) robustSweep() (map[string]map[float64]robustCell, error) {
	r.robustMu.Lock()
	cells := r.robustCells
	r.robustMu.Unlock()
	if cells != nil {
		return cells, nil
	}
	out, err := r.computeRobustCells()
	if err != nil {
		return nil, err
	}
	r.robustMu.Lock()
	if r.robustCells == nil {
		r.robustCells = out
	}
	out = r.robustCells
	r.robustMu.Unlock()
	return out, nil
}

// computeRobustCells runs the full noise sweep through the worker pool.
func (r *Runner) computeRobustCells() (map[string]map[float64]robustCell, error) {
	graphs := r.Graphs(workload.Type2)
	sys := platform.PaperSystem(paperRate)

	type job struct {
		spec   PolicySpec
		frac   float64
		graph  int
		oracle bool
	}
	var jobs []job
	for _, frac := range extRobustFracs {
		for _, spec := range extRobustPolicies {
			for gi := range graphs {
				jobs = append(jobs, job{spec, frac, gi, false}, job{spec, frac, gi, true})
			}
		}
	}

	arrivals := make([][]float64, len(graphs))
	for gi, g := range graphs {
		a, err := workload.PoissonArrivals(g, extStreamMeanGapMs, int64(1000+gi))
		if err != nil {
			return nil, err
		}
		arrivals[gi] = a
	}

	results := make([]*sim.Result, len(jobs))
	errs := sim.RunPool(context.Background(), len(jobs), 0, func(i int, w *sim.Worker) error {
		runner := w.Runner()
		j := jobs[i]
		g := graphs[j.graph]
		noise := perturb.Noise{Frac: j.frac, Seed: extRobustSeedBase + int64(j.graph)}
		actualTab, err := noise.Apply(lut.Paper())
		if err != nil {
			return err
		}
		estTab := lut.Paper()
		if j.oracle {
			estTab = actualTab
		}
		est, err := sim.PrepareCosts(g, sys, estTab, sim.CostConfig{})
		if err != nil {
			return err
		}
		opt := sim.Options{ArrivalTimes: arrivals[j.graph]}
		if !j.oracle && actualTab != estTab {
			actual, err := sim.PrepareCosts(g, sys, actualTab, sim.CostConfig{})
			if err != nil {
				return err
			}
			opt.ActualCosts = actual
		}
		pol, err := r.newPolicy(j.spec)
		if err != nil {
			return err
		}
		res, err := runner.Run(est, pol, opt)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := map[string]map[float64]robustCell{}
	idx := 0
	for _, frac := range extRobustFracs {
		for _, spec := range extRobustPolicies {
			var cell robustCell
			var sojourns []float64
			for range graphs {
				noisy, oracle := results[idx], results[idx+1]
				idx += 2
				cell.makespanMs += noisy.MakespanMs
				cell.oracleMs += oracle.MakespanMs
				for i := range noisy.Placements {
					sojourns = append(sojourns, noisy.Placements[i].Sojourn())
				}
			}
			n := float64(len(graphs))
			cell.makespanMs /= n
			cell.oracleMs /= n
			if cell.oracleMs > 0 {
				cell.regretPct = (cell.makespanMs - cell.oracleMs) / cell.oracleMs * 100
			}
			sort.Float64s(sojourns)
			cell.p99Ms = stats.Quantile(sojourns, 0.99)
			if out[spec.Name] == nil {
				out[spec.Name] = map[float64]robustCell{}
			}
			out[spec.Name][frac] = cell
		}
	}
	return out, nil
}

// ExtRobustness reports per-policy regret against the perfect-information
// oracle as uniform estimate error grows: the single number that answers
// "which policy survives bad estimates". Suite: Type-2 graphs with Poisson
// arrivals (mean gap 500 ms).
func (r *Runner) ExtRobustness() (*Artifact, error) {
	cells, err := r.robustSweep()
	if err != nil {
		return nil, err
	}
	var rows []report.RegretRow
	for _, frac := range extRobustFracs {
		for _, spec := range extRobustPolicies {
			c := cells[spec.Name][frac]
			rows = append(rows, report.RegretRow{
				Label:        fmt.Sprintf("%s @ ±%.0f%%", spec.Label(), frac*100),
				MakespanMs:   c.makespanMs,
				OracleMs:     c.oracleMs,
				RegretPct:    c.regretPct,
				P99SojournMs: c.p99Ms,
			})
		}
	}
	t := report.RegretTable(
		"Extension. Regret vs the noise-free oracle under uniform estimate error (Type-2 suite, Poisson gap 500 ms, α=4 for APT).",
		rows)
	return &Artifact{ID: "ext-robustness", Caption: "Robustness: regret under estimate error", Table: t}, nil
}

// ExtRobustP99 plots the p99 sojourn tail against the estimate-error
// level, per policy — the open-system cost of scheduling on wrong
// estimates.
func (r *Runner) ExtRobustP99() (*Artifact, error) {
	cells, err := r.robustSweep()
	if err != nil {
		return nil, err
	}
	var x []string
	ys := map[string][]float64{}
	var order []string
	for _, spec := range extRobustPolicies {
		order = append(order, spec.Label())
	}
	for _, frac := range extRobustFracs {
		x = append(x, fmt.Sprintf("%.0f%%", frac*100))
		for _, spec := range extRobustPolicies {
			ys[spec.Label()] = append(ys[spec.Label()], cells[spec.Name][frac].p99Ms)
		}
	}
	fig, err := report.LatencyFigure(
		"Extension. p99 sojourn vs uniform estimate-error level (Type-2 suite, Poisson gap 500 ms).",
		"estimate error ±", "p99 sojourn ms", x, order, ys)
	if err != nil {
		return nil, err
	}
	return &Artifact{ID: "ext-robust-p99", Caption: "p99 sojourn vs estimate error", Figure: fig}, nil
}

// extDegradeScenarios are the platform-degradation episodes of ExtDegrade.
// Windows are sized against the Type-2 suite's ~40 s makespans.
var extDegradeScenarios = []struct {
	label  string
	events []perturb.Event
}{
	{"GPU 2× slower, whole run", []perturb.Event{
		{Kind: perturb.ProcSlowdown, Proc: 1, Factor: 2, StartMs: 0, EndMs: 1e9}}},
	{"GPU offline 10–30 s", []perturb.Event{
		{Kind: perturb.ProcOffline, Proc: 1, StartMs: 10_000, EndMs: 30_000}}},
	{"all links 4× slower, whole run", []perturb.Event{
		{Kind: perturb.LinkSlowdown, From: 0, To: 1, Factor: 4, StartMs: 0, EndMs: 1e9},
		{Kind: perturb.LinkSlowdown, From: 0, To: 2, Factor: 4, StartMs: 0, EndMs: 1e9},
		{Kind: perturb.LinkSlowdown, From: 1, To: 2, Factor: 4, StartMs: 0, EndMs: 1e9}}},
}

// ExtDegrade reports suite-average makespans when the platform degrades
// mid-run while every policy keeps trusting its static estimates: a
// processor slowing down, the paper system's GPU dropping out for a 20 s
// window, and the interconnect losing bandwidth. Cells show the absolute
// makespan and the relative slowdown vs the steady platform.
func (r *Runner) ExtDegrade() (*Artifact, error) {
	graphs := r.Graphs(workload.Type2)
	sys := platform.PaperSystem(paperRate)
	specs := extRobustPolicies
	t := &report.Table{
		Title:   "Extension. Type-2 avg makespan under platform degradation (α=4 for APT). Policies keep trusting their static estimates.",
		Headers: append([]string{"Scenario"}, policyLabels(specs)...),
		Notes: []string{
			"Cells: avg makespan ms (+slowdown vs steady platform).",
			"Proc 1 is the paper system's GPU.",
		},
	}

	rows := append([]struct {
		label  string
		events []perturb.Event
	}{{label: "steady platform"}}, extDegradeScenarios...)
	scheds := make([]*perturb.Schedule, len(rows))
	for i, sc := range rows {
		if len(sc.events) == 0 {
			continue
		}
		var err error
		scheds[i], err = perturb.NewSchedule(sc.events)
		if err != nil {
			return nil, err
		}
	}

	// Costs depend only on the graph: prepare once per graph, then fan the
	// scenario × policy × graph grid through the engine's worker pool.
	costs := make([]*sim.Costs, len(graphs))
	for gi, g := range graphs {
		c, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
		if err != nil {
			return nil, err
		}
		costs[gi] = c
	}
	type job struct {
		row, spec, graph int
	}
	var jobs []job
	for ri := range rows {
		for si := range specs {
			for gi := range graphs {
				jobs = append(jobs, job{ri, si, gi})
			}
		}
	}
	makespans := make([]float64, len(jobs))
	errs := sim.RunPool(context.Background(), len(jobs), 0, func(i int, w *sim.Worker) error {
		runner := w.Runner()
		j := jobs[i]
		pol, err := r.newPolicy(specs[j.spec])
		if err != nil {
			return err
		}
		opt := sim.Options{}
		if scheds[j.row] != nil {
			opt.Degrade = scheds[j.row]
		}
		res, err := runner.Run(costs[j.graph], pol, opt)
		if err != nil {
			return fmt.Errorf("%s scenario %q graph %d: %w", specs[j.spec].Name, rows[j.row].label, j.graph+1, err)
		}
		makespans[i] = res.MakespanMs
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	baseline := map[string]float64{}
	idx := 0
	for ri, sc := range rows {
		cells := []string{sc.label}
		for _, spec := range specs {
			var total float64
			for range graphs {
				total += makespans[idx]
				idx++
			}
			avg := total / float64(len(graphs))
			if ri == 0 {
				baseline[spec.Name] = avg
				cells = append(cells, report.Ms(avg))
			} else {
				slow := 0.0
				if b := baseline[spec.Name]; b > 0 {
					slow = (avg - b) / b * 100
				}
				cells = append(cells, fmt.Sprintf("%s (%+.1f%%)", report.Ms(avg), slow))
			}
		}
		t.MustAddRow(cells...)
	}
	return &Artifact{ID: "ext-degrade", Caption: "Makespan under platform degradation", Table: t}, nil
}

// policyLabels renders spec labels for table headers.
func policyLabels(specs []PolicySpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Label()
	}
	return out
}

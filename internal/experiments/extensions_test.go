package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestExtIDsDispatch(t *testing.T) {
	r := NewRunner(Config{})
	ids := ExtIDs()
	if len(ids) != 8 {
		t.Fatalf("extension artifacts = %d, want 8", len(ids))
	}
	for _, id := range ids {
		if !strings.HasPrefix(id, "ext-") {
			t.Errorf("extension id %q missing prefix", id)
		}
		a, err := r.Artifact(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.Table == nil && a.Figure == nil && a.Text == "" {
			t.Errorf("%s produced empty artifact", id)
		}
	}
}

func TestExtLatencyRows(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.ExtLatency()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Table.Rows) != len(extLatencyPolicies) {
		t.Fatalf("rows = %d, want %d", len(a.Table.Rows), len(extLatencyPolicies))
	}
	for _, row := range a.Table.Rows {
		n, _ := strconv.Atoi(row[1])
		if n != extLatencyKernels {
			t.Errorf("%s: n = %d, want %d", row[0], n, extLatencyKernels)
		}
		p50, _ := strconv.ParseFloat(row[3], 64)
		p99, _ := strconv.ParseFloat(row[6], 64)
		if p50 <= 0 || p99 < p50 {
			t.Errorf("%s: p50 %v, p99 %v not a sane latency pair", row[0], p50, p99)
		}
	}
}

func TestExtPoliciesOrdering(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.ExtPolicies()
	if err != nil {
		t.Fatal(err)
	}
	// OLB must lose to APT on every graph; AR must lose on most.
	aptWinsVsOLB, aptWinsVsAR := 0, 0
	for _, row := range a.Table.Rows {
		apt, _ := strconv.ParseFloat(row[1], 64)
		olb, _ := strconv.ParseFloat(row[8], 64)
		ar, _ := strconv.ParseFloat(row[9], 64)
		if apt < olb {
			aptWinsVsOLB++
		}
		if apt < ar {
			aptWinsVsAR++
		}
	}
	if aptWinsVsOLB < 9 {
		t.Errorf("APT beat OLB on only %d/10 graphs", aptWinsVsOLB)
	}
	if aptWinsVsAR < 8 {
		t.Errorf("APT beat AR on only %d/10 graphs", aptWinsVsAR)
	}
}

func TestExtStreamShrinksLambda(t *testing.T) {
	r := NewRunner(Config{})
	paced, err := r.ExtStream()
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the unpaced Table 12 values: pacing must reduce
	// APT's λ on every graph (arrival spreading removes the quadratic
	// queueing accumulation).
	unpaced, err := r.Table12()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range paced.Table.Rows {
		pacedLam, _ := strconv.ParseFloat(row[1], 64)
		unpacedLam, _ := strconv.ParseFloat(unpaced.Table.Rows[i][1], 64)
		if pacedLam >= unpacedLam {
			t.Errorf("graph %d: paced λ %v >= unpaced %v", i+1, pacedLam, unpacedLam)
		}
	}
	// APT must still beat MET on λ for most paced graphs.
	wins := 0
	for _, row := range paced.Table.Rows {
		apt, _ := strconv.ParseFloat(row[1], 64)
		met, _ := strconv.ParseFloat(row[2], 64)
		if apt < met {
			wins++
		}
	}
	if wins < 7 {
		t.Errorf("paced APT λ beat MET on only %d/10 graphs", wins)
	}
}

func TestExtNoiseMonotoneDegradation(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.ExtNoise()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Table.Rows) != len(extNoiseFracs) {
		t.Fatalf("rows = %d", len(a.Table.Rows))
	}
	// APT stays the best column at every noise level.
	for _, row := range a.Table.Rows {
		apt, _ := strconv.ParseFloat(row[1], 64)
		for col := 2; col < len(row); col++ {
			v, _ := strconv.ParseFloat(row[col], 64)
			if v < apt {
				t.Errorf("noise %s: %s (%v) beat APT (%v)", row[0], a.Table.Headers[col], v, apt)
			}
		}
	}
	// The zero row must match the clean Table-10 average regime: first
	// cell equals APT's unperturbed average.
	zeroAPT, _ := strconv.ParseFloat(a.Table.Rows[0][1], 64)
	outs, err := r.Suite(workload.Type2, paperRate, PolicySpec{Name: "APT", Alpha: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Cells are printed with three decimals, so allow formatting slack.
	if diff := zeroAPT - avgMakespan(outs); diff > 0.01 || diff < -0.01 {
		t.Errorf("zero-noise APT %v != clean average %v", zeroAPT, avgMakespan(outs))
	}
}

func TestExtBoundsGapsNonNegative(t *testing.T) {
	r := NewRunner(Config{})
	a, err := r.ExtBounds()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Table.Rows) != 10 {
		t.Fatalf("rows = %d", len(a.Table.Rows))
	}
	for _, row := range a.Table.Rows {
		opt, _ := strconv.ParseFloat(row[1], 64)
		if opt <= 0 {
			t.Errorf("optimal %v not positive", opt)
		}
		for col := 2; col < len(row); col++ {
			gap, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("unparseable gap %q", row[col])
			}
			if gap < -1e-6 {
				t.Errorf("negative optimality gap %v in %v", gap, row)
			}
		}
	}
}

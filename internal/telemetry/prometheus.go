// Package telemetry renders the scheduler's existing counters and
// histograms into standard observability formats: Prometheus text-format
// exposition (for /v1/metrics scrapes) and Chrome trace-event JSON (for
// chrome://tracing / Perfetto placement inspection).
//
// The package is read-only over snapshots the caller already holds
// (online.Stats, stats.Histogram copies, online.TraceEvent slices), so
// rendering never touches the scheduler's hot paths.
package telemetry

import (
	"bytes"
	"io"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Exposition accumulates Prometheus text-format families
// (https://prometheus.io/docs/instrumenting/exposition_formats/, version
// 0.0.4). Families render in the order they are added.
type Exposition struct {
	buf bytes.Buffer
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (e *Exposition) header(name, help, typ string) {
	e.buf.WriteString("# HELP ")
	e.buf.WriteString(name)
	e.buf.WriteByte(' ')
	e.buf.WriteString(helpEscaper.Replace(help))
	e.buf.WriteString("\n# TYPE ")
	e.buf.WriteString(name)
	e.buf.WriteByte(' ')
	e.buf.WriteString(typ)
	e.buf.WriteByte('\n')
}

func (e *Exposition) sample(name, labelKey, labelVal string, v float64) {
	e.buf.WriteString(name)
	if labelKey != "" {
		e.buf.WriteByte('{')
		e.buf.WriteString(labelKey)
		e.buf.WriteString(`="`)
		e.buf.WriteString(labelEscaper.Replace(labelVal))
		e.buf.WriteString(`"}`)
	}
	e.buf.WriteByte(' ')
	e.buf.WriteString(fmtFloat(v))
	e.buf.WriteByte('\n')
}

// Counter adds a single-sample counter family.
func (e *Exposition) Counter(name, help string, v float64) {
	e.header(name, help, "counter")
	e.sample(name, "", "", v)
}

// Gauge adds a single-sample gauge family.
func (e *Exposition) Gauge(name, help string, v float64) {
	e.header(name, help, "gauge")
	e.sample(name, "", "", v)
}

// CounterPer adds a counter family with one sample per element of vals,
// labelled label="0", label="1", ….
func (e *Exposition) CounterPer(name, help, label string, vals []float64) {
	e.header(name, help, "counter")
	for i, v := range vals {
		e.sample(name, label, strconv.Itoa(i), v)
	}
}

// GaugePer is CounterPer for gauges.
func (e *Exposition) GaugePer(name, help, label string, vals []float64) {
	e.header(name, help, "gauge")
	for i, v := range vals {
		e.sample(name, label, strconv.Itoa(i), v)
	}
}

// Histogram converts a log-bucketed stats.Histogram into a cumulative
// Prometheus histogram family: one <name>_bucket sample per non-empty
// cell (le = the cell's upper bound), the mandatory le="+Inf" bucket,
// and <name>_sum / <name>_count. Cells are already sorted ascending, so
// the cumulative series is monotone by construction. A nil histogram is
// skipped entirely.
func (e *Exposition) Histogram(name, help string, h *stats.Histogram) {
	if h == nil {
		return
	}
	e.header(name, help, "histogram")
	cum := 0
	for _, b := range h.Buckets() {
		cum += b.Count
		e.sample(name+"_bucket", "le", fmtFloat(b.Hi), float64(cum))
	}
	e.sample(name+"_bucket", "le", "+Inf", float64(h.Count()))
	e.sample(name+"_sum", "", "", h.Sum())
	e.sample(name+"_count", "", "", float64(h.Count()))
}

// WriteTo writes the accumulated exposition. It implements io.WriterTo.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.buf.Bytes())
	return int64(n), err
}

// Len returns the rendered size in bytes.
func (e *Exposition) Len() int { return e.buf.Len() }

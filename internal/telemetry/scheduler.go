package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/online"
)

// SchedulerMetrics renders one online.Stats snapshot (plus optional
// latency histograms from Scheduler.LatencyHistograms) as a Prometheus
// exposition. All inputs are caller-owned copies, so this never contends
// with the scheduler.
func SchedulerMetrics(st online.Stats, sojourn, qwait *stats.Histogram) *Exposition {
	e := &Exposition{}
	e.Gauge("apt_alpha", "Current flexibility factor of the APT placement rule.", st.Alpha)
	e.Gauge("apt_queue_depth", "Tasks currently waiting for a processor.", float64(st.Queued))
	e.Gauge("apt_uptime_ms", "Wall-clock milliseconds since the scheduler started.", st.UptimeMs)
	e.Counter("apt_submitted_total", "Accepted tasks, including graph-released ones.", float64(st.Submitted))
	e.Counter("apt_completed_total", "Finished tasks across all processors.", float64(st.Completed))
	e.Counter("apt_rejected_total", "Queue-full refusals and cancelled blocking submits.", float64(st.Rejected))
	e.Counter("apt_alt_assignments_total", "Placements on a non-optimal processor via the threshold rule.", float64(st.AltAssignments))
	e.Counter("apt_failed_total", "Tasks settled with an error after exhausting any retry budget.", float64(st.Failed))
	e.Counter("apt_retries_total", "Task re-executions beyond each task's first attempt.", float64(st.Retries))
	e.Counter("apt_timeouts_total", "Execution attempts that exceeded their time bound.", float64(st.Timeouts))
	e.Counter("apt_panics_total", "Execution attempts that panicked (recovered by the worker).", float64(st.Panics))
	e.Counter("apt_breaker_trips_total", "Circuit-breaker open transitions across all processors.", float64(st.BreakerTrips))
	if len(st.PerProcHealthy) > 0 {
		healthy := make([]float64, len(st.PerProcHealthy))
		for i, h := range st.PerProcHealthy {
			if h {
				healthy[i] = 1
			}
		}
		e.GaugePer("apt_proc_healthy", "Placement eligibility per processor (0 while its breaker is open).", "proc", healthy)
	}
	perProc := make([]float64, len(st.PerProc))
	for i, c := range st.PerProc {
		perProc[i] = float64(c)
	}
	e.CounterPer("apt_proc_completed_total", "Finished tasks per processor.", "proc", perProc)
	e.CounterPer("apt_proc_busy_ms_total", "Cumulative execution wall-clock per processor, milliseconds.", "proc", st.PerProcBusyMs)
	if st.UptimeMs > 0 {
		util := make([]float64, len(st.PerProcBusyMs))
		for i, busy := range st.PerProcBusyMs {
			u := busy / st.UptimeMs
			if u < 0 {
				u = 0
			} else if u > 1 {
				u = 1
			}
			util[i] = u
		}
		e.GaugePer("apt_proc_utilization", "Fraction of uptime each processor spent executing.", "proc", util)
	}
	e.Histogram("apt_sojourn_ms", "Arrival-to-finish latency, milliseconds.", sojourn)
	e.Histogram("apt_queue_wait_ms", "Arrival-to-execution-start delay, milliseconds.", qwait)
	return e
}

// chrome trace-event rows for the live scheduler; mirrors the simulator's
// internal/report writer but sources online.TraceEvent.
type liveTraceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders live scheduler completions as a Chrome
// trace-event JSON array (load into chrome://tracing or Perfetto): one
// lane per processor, one slice per completion, with the queue-wait and
// estimate-vs-actual pair attached as slice args. Events should be
// oldest-first, as Scheduler.Trace returns them.
func WriteChromeTrace(w io.Writer, procs int, events []online.TraceEvent) error {
	rows := make([]liveTraceEvent, 0, procs+len(events))
	for p := 0; p < procs; p++ {
		rows = append(rows, liveTraceEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   p,
			Args:  map[string]string{"name": fmt.Sprintf("proc %d", p)},
		})
	}
	for _, ev := range events {
		cat := "exec"
		if ev.Alt {
			cat = "exec,alt"
		}
		rows = append(rows, liveTraceEvent{
			Name:  ev.Name,
			Cat:   cat,
			Phase: "X",
			TS:    ev.StartMs * 1000, // trace timestamps are microseconds
			Dur:   (ev.FinishMs - ev.StartMs) * 1000,
			PID:   1,
			TID:   int(ev.Proc),
			Args: map[string]string{
				"seq":           fmt.Sprintf("%d", ev.Seq),
				"queue_wait_ms": fmtFloat(ev.QueueWaitMs),
				"est_ms":        fmtFloat(ev.EstMs),
				"best_est_ms":   fmtFloat(ev.BestEstMs),
				"actual_ms":     fmtFloat(ev.ActualMs),
				"alt":           fmt.Sprintf("%t", ev.Alt),
				"attempt":       fmt.Sprintf("%d", ev.Attempt),
				"failed":        fmt.Sprintf("%t", ev.Failed),
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rows)
}

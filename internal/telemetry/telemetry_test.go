package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/online"
)

func testStats() online.Stats {
	return online.Stats{
		Submitted:      120,
		Completed:      115,
		Rejected:       3,
		Queued:         5,
		AltAssignments: 17,
		PerProc:        []int{50, 40, 25},
		PerProcBusyMs:  []float64{900, 750, 400},
		UptimeMs:       1000,
		Alpha:          4,
	}
}

func testHistogram(t testing.TB, n int) *stats.Histogram {
	t.Helper()
	h, err := stats.NewHistogram(1.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		h.Add(0.1 + 50*rng.Float64())
	}
	return h
}

// parseExposition splits text-format lines into sample name → value,
// verifying basic shape (HELP/TYPE precede samples, values parse).
func parseExposition(t *testing.T, r io.Reader) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	seenType := map[string]bool{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			seenType[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value %q: %v", key, valStr, err)
		}
		family := key
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		family = strings.TrimSuffix(family, "_bucket")
		family = strings.TrimSuffix(family, "_sum")
		family = strings.TrimSuffix(family, "_count")
		if !seenType[family] {
			t.Errorf("sample %q has no preceding # TYPE for %q", key, family)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestSchedulerMetricsExposition(t *testing.T) {
	soj := testHistogram(t, 500)
	qw := testHistogram(t, 500)
	e := SchedulerMetrics(testStats(), soj, qw)
	var sb strings.Builder
	if _, err := e.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, strings.NewReader(sb.String()))

	want := map[string]float64{
		"apt_alpha":                          4,
		"apt_queue_depth":                    5,
		"apt_submitted_total":                120,
		"apt_completed_total":                115,
		"apt_rejected_total":                 3,
		"apt_alt_assignments_total":          17,
		`apt_proc_completed_total{proc="1"}`: 40,
		`apt_proc_busy_ms_total{proc="2"}`:   400,
		`apt_proc_utilization{proc="0"}`:     0.9,
		"apt_sojourn_ms_count":               500,
		"apt_queue_wait_ms_count":            500,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("missing sample %s", k)
		} else if got != v {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
	if samples["apt_sojourn_ms_sum"] <= 0 {
		t.Errorf("apt_sojourn_ms_sum = %v, want > 0", samples["apt_sojourn_ms_sum"])
	}
}

// TestHistogramBucketsCumulative asserts the rendered bucket series is
// monotone non-decreasing in le order and that +Inf equals _count.
func TestHistogramBucketsCumulative(t *testing.T) {
	h := testHistogram(t, 2000)
	e := &Exposition{}
	e.Histogram("lat_ms", "help", h)
	var sb strings.Builder
	if _, err := e.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}

	type bucket struct {
		le  float64
		inf bool
		cum float64
	}
	var buckets []bucket
	var count float64
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, `lat_ms_bucket{le="`):
			rest := strings.TrimPrefix(line, `lat_ms_bucket{le="`)
			end := strings.Index(rest, `"}`)
			leStr, valStr := rest[:end], strings.TrimSpace(rest[end+2:])
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bucket value: %v", err)
			}
			b := bucket{cum: v}
			if leStr == "+Inf" {
				b.inf = true
			} else {
				if b.le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Fatalf("bucket le: %v", err)
				}
			}
			buckets = append(buckets, b)
		case strings.HasPrefix(line, "lat_ms_count "):
			var err error
			if count, err = strconv.ParseFloat(strings.Fields(line)[1], 64); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(buckets) < 3 {
		t.Fatalf("only %d buckets rendered", len(buckets))
	}
	last := buckets[len(buckets)-1]
	if !last.inf {
		t.Fatal("last bucket is not le=\"+Inf\"")
	}
	if last.cum != count {
		t.Fatalf("+Inf bucket %v != _count %v", last.cum, count)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].cum < buckets[i-1].cum {
			t.Fatalf("bucket %d not cumulative: %v after %v", i, buckets[i].cum, buckets[i-1].cum)
		}
		if !buckets[i].inf && !(buckets[i].le > buckets[i-1].le) {
			t.Fatalf("bucket %d le %v not increasing after %v", i, buckets[i].le, buckets[i-1].le)
		}
	}
}

func TestHistogramNilSkipped(t *testing.T) {
	e := &Exposition{}
	e.Histogram("lat_ms", "help", nil)
	if e.Len() != 0 {
		t.Fatalf("nil histogram rendered %d bytes", e.Len())
	}
}

func TestEscaping(t *testing.T) {
	e := &Exposition{}
	e.header("m", "line\none \\ two", "gauge")
	e.sample("m", "l", `va"l\ue`, 1)
	var sb strings.Builder
	if _, err := e.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `line\none \\ two`) {
		t.Errorf("help not escaped: %q", out)
	}
	if !strings.Contains(out, `l="va\"l\\ue"`) {
		t.Errorf("label value not escaped: %q", out)
	}
}

func TestWriteChromeTraceLive(t *testing.T) {
	events := []online.TraceEvent{
		{Seq: 1, Name: "a", Proc: 0, StartMs: 1, FinishMs: 3, QueueWaitMs: 0.5, EstMs: 2, BestEstMs: 2, ActualMs: 2},
		{Seq: 2, Name: "b", Proc: 1, Alt: true, StartMs: 2, FinishMs: 6, QueueWaitMs: 0, EstMs: 5, BestEstMs: 3, ActualMs: 4},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, 2, events); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rows); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(rows) != 4 { // 2 metadata + 2 slices
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	meta, slices := 0, 0
	for _, r := range rows {
		switch r["ph"] {
		case "M":
			meta++
		case "X":
			slices++
			args, ok := r["args"].(map[string]any)
			if !ok {
				t.Fatalf("slice row missing args: %v", r)
			}
			for _, k := range []string{"queue_wait_ms", "est_ms", "best_est_ms", "actual_ms", "seq"} {
				if _, ok := args[k]; !ok {
					t.Errorf("slice args missing %q", k)
				}
			}
		}
	}
	if meta != 2 || slices != 2 {
		t.Fatalf("meta=%d slices=%d, want 2/2", meta, slices)
	}
	// Slice for task b: ts and dur are microseconds.
	for _, r := range rows {
		if r["name"] == "b" {
			if ts := r["ts"].(float64); ts != 2000 {
				t.Errorf("b ts = %v, want 2000", ts)
			}
			if dur := r["dur"].(float64); dur != 4000 {
				t.Errorf("b dur = %v, want 4000", dur)
			}
		}
	}
}

// BenchmarkMetricsRender measures one full /v1/metrics render — the cost a
// scrape imposes — with realistically populated histograms.
func BenchmarkMetricsRender(b *testing.B) {
	st := testStats()
	soj := testHistogram(b, 100_000)
	qw := testHistogram(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := SchedulerMetrics(st, soj, qw)
		if _, err := e.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

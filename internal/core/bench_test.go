package core

import (
	"testing"

	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func benchCosts(b *testing.B, typ workload.GraphType) *sim.Costs {
	b.Helper()
	g := workload.MustSuite(typ, workload.DefaultSuiteSeed)[9] // 157 kernels
	c, err := sim.PrepareCosts(g, platform.PaperSystem(4), lut.Paper(), sim.CostConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkRunAPT measures a full APT simulation of the largest suite
// graph — the end-to-end cost of the paper's contribution.
func BenchmarkRunAPT(b *testing.B) {
	c := benchCosts(b, workload.Type2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, New(4), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAPTR measures the future-work variant on the same workload.
func BenchmarkRunAPTR(b *testing.B) {
	c := benchCosts(b, workload.Type2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, NewR(4), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAPTSelectWide stresses the per-invocation Select cost on a wide
// dependency-free level (every kernel ready at once).
func BenchmarkAPTSelectWide(b *testing.B) {
	c := benchCosts(b, workload.Type1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, New(4), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

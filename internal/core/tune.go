package core

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultTuneAlphas is the candidate grid TuneAlpha uses when none is
// given: the paper's sweep plus intermediate points.
var DefaultTuneAlphas = []float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// TunePoint is one evaluated candidate.
type TunePoint struct {
	Alpha      float64
	MakespanMs float64 // mean across the calibration workloads
}

// TuneAlpha locates the flexibility factor with the lowest mean makespan
// over a set of calibration workloads — the thesis's conclusion in
// executable form ("the threshold must be carefully tuned in order to
// attain performance improvements... the degree of flexibility will affect
// the efficiency depending highly on the degree of heterogeneity of the
// system").
//
// Each calibration workload is given as a prepared cost oracle; candidates
// default to DefaultTuneAlphas. The returned points are in candidate order
// and the best α is the grid minimiser (ties to the smaller α, preferring
// stricter thresholds). Simulation cost is |candidates| × |workloads|
// engine runs — milliseconds for paper-scale inputs.
func TuneAlpha(calibration []*sim.Costs, candidates []float64, opt sim.Options) (float64, []TunePoint, error) {
	if len(calibration) == 0 {
		return 0, nil, fmt.Errorf("core: TuneAlpha needs at least one calibration workload")
	}
	if len(candidates) == 0 {
		candidates = DefaultTuneAlphas
	}
	points := make([]TunePoint, 0, len(candidates))
	bestIdx := -1
	for _, a := range candidates {
		if a < 1 {
			return 0, nil, fmt.Errorf("core: candidate α %v < 1", a)
		}
		var total float64
		for _, c := range calibration {
			res, err := sim.Run(c, New(a), opt)
			if err != nil {
				return 0, nil, fmt.Errorf("core: tuning at α=%v: %w", a, err)
			}
			total += res.MakespanMs
		}
		points = append(points, TunePoint{Alpha: a, MakespanMs: total / float64(len(calibration))})
		if bestIdx < 0 || points[len(points)-1].MakespanMs < points[bestIdx].MakespanMs {
			bestIdx = len(points) - 1
		}
	}
	return points[bestIdx].Alpha, points, nil
}

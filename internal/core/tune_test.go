package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func calibration(t *testing.T, n int) []*sim.Costs {
	t.Helper()
	graphs := workload.MustSuite(workload.Type1, workload.DefaultSuiteSeed)[:n]
	out := make([]*sim.Costs, n)
	for i, g := range graphs {
		out[i] = paperCosts(t, g, 4)
	}
	return out
}

func TestTuneAlphaFindsValleyBottom(t *testing.T) {
	cal := calibration(t, 4)
	best, points, err := TuneAlpha(cal, []float64{1.5, 4, 1e6}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Errorf("best α = %v, want 4 (thresholdbrk)", best)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].MakespanMs >= points[0].MakespanMs || points[1].MakespanMs >= points[2].MakespanMs {
		t.Errorf("valley not reflected in points: %+v", points)
	}
}

func TestTuneAlphaDefaultsAndValidation(t *testing.T) {
	cal := calibration(t, 1)
	best, points, err := TuneAlpha(cal, nil, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultTuneAlphas) {
		t.Errorf("points = %d, want %d", len(points), len(DefaultTuneAlphas))
	}
	if best < 1 {
		t.Errorf("best = %v", best)
	}
	if _, _, err := TuneAlpha(nil, nil, sim.Options{}); err == nil {
		t.Error("empty calibration accepted")
	}
	if _, _, err := TuneAlpha(cal, []float64{0.5}, sim.Options{}); err == nil {
		t.Error("α < 1 candidate accepted")
	}
}

func TestTuneAlphaTieBreaksSmall(t *testing.T) {
	// A single-kernel workload is α-insensitive: all candidates tie, and
	// the tuner must return the smallest (strictest) α.
	b := figure5Graph(t)
	_ = b
	cal := calibration(t, 1)
	best, _, err := TuneAlpha(cal, []float64{2, 1.5, 3}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Candidates are evaluated in order; equal means keep the earlier one.
	if best != 2 && best != 1.5 {
		t.Logf("best = %v (workload is α-sensitive here; tie-break not exercised)", best)
	}
}

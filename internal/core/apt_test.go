package core

import (
	"math"
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func paperCosts(t *testing.T, g *dfg.Graph, rate platform.GBps) *sim.Costs {
	t.Helper()
	c, err := sim.PrepareCosts(g, platform.PaperSystem(rate), lut.Paper(), sim.CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func run(t *testing.T, c *sim.Costs, pol sim.Policy) *sim.Result {
	t.Helper()
	res, err := sim.Run(c, pol, sim.Options{})
	if err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	if err := res.Validate(c.Graph(), c.System()); err != nil {
		t.Fatalf("%s invalid: %v", pol.Name(), err)
	}
	return res
}

// figure5Graph reproduces the workload of the thesis's Figure 5 example:
// one nw, three bfs, one cd (250000 elements), all independent (transfers
// play no role because there are no dependencies).
func figure5Graph(t *testing.T) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: lut.NW, DataElems: 16777216}) // 0-nw
	b.AddKernel(dfg.Kernel{Name: lut.BFS, DataElems: 2034736}) // 1-bfs
	b.AddKernel(dfg.Kernel{Name: lut.BFS, DataElems: 2034736}) // 2-bfs
	b.AddKernel(dfg.Kernel{Name: lut.BFS, DataElems: 2034736}) // 3-bfs
	b.AddKernel(dfg.Kernel{Name: lut.CD, DataElems: 250000})   // 4-cd
	return b.MustBuild()
}

// TestFigure5Golden replays the thesis's worked example exactly: MET ends
// at 318.093 ms (all bfs and cd serialize on the FPGA), APT with α=8 ends
// at 212.093 ms (one bfs overflows to the GPU because 173 <= 8·106).
func TestFigure5Golden(t *testing.T) {
	g := figure5Graph(t)

	met := run(t, paperCosts(t, g, 4), policy.NewMET(1))
	if math.Abs(met.MakespanMs-318.093) > 1e-6 {
		t.Errorf("MET makespan = %v, want 318.093 (paper Figure 5)", met.MakespanMs)
	}

	apt := New(8)
	res := run(t, paperCosts(t, g, 4), apt)
	if math.Abs(res.MakespanMs-212.093) > 1e-6 {
		t.Errorf("APT(α=8) makespan = %v, want 212.093 (paper Figure 5)", res.MakespanMs)
	}
	// Exactly one bfs took the alternative (GPU) path.
	st := apt.Stats()
	if st.AltAssignments != 1 || st.ByKernel[lut.BFS] != 1 {
		t.Errorf("alt stats = %+v, want exactly one bfs alternative", st)
	}
	// The schedule: kernel 2 (second bfs) runs on the GPU.
	pl := res.PlacementOf(2)
	if got := res.PlacementOf(2); platform.PaperSystem(4).KindOf(got.Proc) != platform.GPU {
		t.Errorf("bfs#2 ran on proc %d, want the GPU", pl.Proc)
	}
}

func TestAlphaValidation(t *testing.T) {
	g := figure5Graph(t)
	c := paperCosts(t, g, 4)
	if _, err := sim.Run(c, New(0.5), sim.Options{}); err == nil {
		t.Error("α < 1 accepted")
	}
	// α = 0 selects the default.
	a := New(0)
	if _, err := sim.Run(c, a, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if a.Alpha != DefaultAlpha {
		t.Errorf("Alpha defaulted to %v, want %v", a.Alpha, DefaultAlpha)
	}
}

// With α = 1 the threshold admits only processors that tie pmin exactly,
// so APT degenerates to MET's rule: every kernel runs on a processor whose
// execution time equals the minimum.
func TestAlphaOneDegeneratesToMET(t *testing.T) {
	for _, typ := range []workload.GraphType{workload.Type1, workload.Type2} {
		g := workload.MustSuite(typ, workload.DefaultSuiteSeed)[0]
		c := paperCosts(t, g, 4)
		res := run(t, c, New(1))
		for i := range res.Placements {
			k := dfg.KernelID(i)
			_, best := c.BestProc(k)
			got := c.Exec(k, res.Placements[i].Proc)
			// An alternative within threshold α=1 must cost exactly best
			// (transfer included), so exec alone cannot exceed best.
			if got > best+1e-9 {
				t.Errorf("%v kernel %d ran at %v ms, best is %v (α=1 must not settle for worse)",
					typ, i, got, best)
			}
		}
	}
}

// APT must never assign a kernel to a processor whose exec+transfer
// exceeds α times its best execution time.
func TestThresholdRespected(t *testing.T) {
	for _, alpha := range []float64{1.5, 2, 4, 8, 16} {
		for _, typ := range []workload.GraphType{workload.Type1, workload.Type2} {
			g := workload.MustSuite(typ, workload.DefaultSuiteSeed)[2]
			c := paperCosts(t, g, 4)
			res := run(t, c, New(alpha))
			for i := range res.Placements {
				k := dfg.KernelID(i)
				pmin, best := c.BestProc(k)
				pl := res.Placements[i]
				if pl.Proc == pmin {
					continue
				}
				// exec alone is a lower bound on the cost APT accepted.
				if c.Exec(k, pl.Proc) > alpha*best+1e-9 {
					t.Errorf("α=%v %v kernel %d on proc %d costs %v > threshold %v",
						alpha, typ, i, pl.Proc, c.Exec(k, pl.Proc), alpha*best)
				}
			}
		}
	}
}

// Small α must reproduce MET's makespan on the paper workloads (the
// paper's Tables 8 and 9 show identical APT/MET columns at α=1.5 for
// almost every graph).
func TestSmallAlphaMimicsMET(t *testing.T) {
	same := 0
	graphs := workload.MustSuite(workload.Type1, workload.DefaultSuiteSeed)
	for _, g := range graphs {
		apt := run(t, paperCosts(t, g, 4), New(1.5))
		met := run(t, paperCosts(t, g, 4), policy.NewMET(1))
		if math.Abs(apt.MakespanMs-met.MakespanMs)/met.MakespanMs < 0.02 {
			same++
		}
	}
	if same < 7 {
		t.Errorf("APT(1.5) matched MET within 2%% on only %d/10 graphs", same)
	}
}

// The headline claim: at the paper's thresholdbrk (α=4) APT beats MET on
// average across the suite, on both workload families.
func TestAPTBeatsMETAtAlpha4(t *testing.T) {
	for _, typ := range []workload.GraphType{workload.Type1, workload.Type2} {
		var aptTotal, metTotal float64
		for _, g := range workload.MustSuite(typ, workload.DefaultSuiteSeed) {
			aptTotal += run(t, paperCosts(t, g, 4), New(4)).MakespanMs
			metTotal += run(t, paperCosts(t, g, 4), policy.NewMET(1)).MakespanMs
		}
		if aptTotal >= metTotal {
			t.Errorf("%v: APT(α=4) total %v not better than MET %v", typ, aptTotal, metTotal)
		}
		t.Logf("%v: APT(α=4) avg %.0f ms vs MET %.0f ms (%.1f%% better)",
			typ, aptTotal/10, metTotal/10, (metTotal-aptTotal)/metTotal*100)
	}
}

func TestStatsIsolatedPerRun(t *testing.T) {
	g := figure5Graph(t)
	a := New(8)
	run(t, paperCosts(t, g, 4), a)
	first := a.Stats()
	run(t, paperCosts(t, g, 4), a) // Prepare resets stats
	second := a.Stats()
	if first.AltAssignments != second.AltAssignments {
		t.Errorf("stats leaked across runs: %d vs %d", first.AltAssignments, second.AltAssignments)
	}
	// Mutating the returned map must not corrupt internal state.
	s := a.Stats()
	s.ByKernel["bogus"] = 99
	if a.Stats().ByKernel["bogus"] != 0 {
		t.Error("Stats returned aliased map")
	}
}

func TestAPTRName(t *testing.T) {
	if New(4).Name() != "APT" || NewR(4).Name() != "APT-R" {
		t.Error("names wrong")
	}
}

// APT-R should never do worse than plain APT by more than noise on the
// Figure-5 style workload where waiting is sometimes better: specifically,
// with a huge α plain APT makes harmful alternative assignments that APT-R
// avoids by comparing against pmin's remaining time.
func TestAPTRAvoidsHarmfulAlternatives(t *testing.T) {
	// Workload: two cd kernels (FPGA 0.093ms; CPU 17.064; GPU 2.749).
	// Plain APT with α large: second cd goes to GPU (2.749ms) though
	// waiting 0.093 for the FPGA then executing 0.093 would finish at
	// 0.186ms. APT-R waits.
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: lut.CD, DataElems: 250000})
	b.AddKernel(dfg.Kernel{Name: lut.CD, DataElems: 250000})
	g := b.MustBuild()

	plain := run(t, paperCosts(t, g, 4), New(100))
	rvar := run(t, paperCosts(t, g, 4), NewR(100))
	if rvar.MakespanMs > plain.MakespanMs+1e-9 {
		t.Errorf("APT-R (%v) worse than APT (%v)", rvar.MakespanMs, plain.MakespanMs)
	}
	if math.Abs(rvar.MakespanMs-0.186) > 1e-6 {
		t.Errorf("APT-R makespan = %v, want 0.186 (wait for FPGA)", rvar.MakespanMs)
	}
	if math.Abs(plain.MakespanMs-2.749) > 1e-6 {
		t.Errorf("plain APT makespan = %v, want 2.749 (harmful GPU alternative)", plain.MakespanMs)
	}
}

// The valley: makespan averaged over the Type-1 suite should dip at an
// intermediate α compared with both a tiny and a huge α.
func TestValleyShape(t *testing.T) {
	avg := func(alpha float64) float64 {
		var total float64
		graphs := workload.MustSuite(workload.Type1, workload.DefaultSuiteSeed)
		for _, g := range graphs {
			total += run(t, paperCosts(t, g, 4), New(alpha)).MakespanMs
		}
		return total / float64(len(graphs))
	}
	small, mid, huge := avg(1.001), avg(4), avg(1e6)
	if mid >= small {
		t.Errorf("no benefit at α=4: avg %v vs α≈1 %v", mid, small)
	}
	if mid >= huge {
		t.Errorf("unbounded flexibility (α=1e6, avg %v) should not beat tuned α=4 (avg %v)", huge, mid)
	}
	t.Logf("valley: α≈1 %.0f, α=4 %.0f, α=1e6 %.0f", small, mid, huge)
}

// Package core implements the thesis's contribution: the Alternative
// Processor within Threshold (APT) scheduling heuristic (paper Ch. 3,
// Algorithm 1).
//
// APT is a dynamic policy that behaves like MET — prefer the processor
// with the minimum execution time (pmin) for each kernel — but relaxes
// MET's insistence on waiting for pmin. When pmin is busy, APT may assign
// the kernel to an *alternative* processor palt, defined as
//
//	"a processor for which the addition of execution and the data
//	 transfer times is less than or equal to the policy's established
//	 threshold, and is available to execute kernel vi"
//
// with threshold = α·x (Eq. 8), where x is the kernel's execution time on
// pmin and α ≥ 1 is the flexibility factor. Small α makes APT mimic MET;
// large α trades per-kernel optimality for lower waiting, which pays off
// until the alternative processors become too slow (the paper's "valley"
// with its minimum at thresholdbrk, α = 4 on the paper's system).
//
// The package also provides APT-R, the extension sketched in the thesis's
// conclusion ("in the future, we will consider the remaining execution
// time in the optimal processor before deciding whether to assign to an
// alternative processor").
package core

import (
	"fmt"
	"math"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// DefaultAlpha is the flexibility factor the paper found optimal
// (thresholdbrk) for its CPU–GPU–FPGA system: α = 4.
const DefaultAlpha = 4

// APT implements sim.Policy.
type APT struct {
	// Alpha is the flexibility factor α ≥ 1 of Eq. 8. Zero selects
	// DefaultAlpha.
	Alpha float64
	// ConsiderRemaining enables the APT-R variant: before settling for an
	// alternative processor, compare the kernel's estimated finish time on
	// the alternative with its estimated finish if it instead waited for
	// pmin to drain, and wait when waiting wins. The thesis proposes this
	// as future work; benches ablate it.
	ConsiderRemaining bool

	c     *sim.Costs
	stats AltStats

	// Scratch buffers reused across Select calls; refilled from the engine
	// via append-style accessors so steady-state scheduling is
	// allocation-free.
	ready []dfg.KernelID
	procs []platform.ProcID
	avail []bool
	out   []sim.Assignment
}

// AltStats records how often APT exercised its flexibility — the data
// behind the thesis's allocation analyses (Tables 15 and 16).
type AltStats struct {
	// Assignments counts all kernels assigned.
	Assignments int
	// AltAssignments counts kernels sent to an alternative (non-pmin)
	// processor.
	AltAssignments int
	// ByKernel counts alternative assignments per kernel name.
	ByKernel map[string]int
}

// New returns an APT policy with the given flexibility factor (0 means
// DefaultAlpha).
func New(alpha float64) *APT { return &APT{Alpha: alpha} }

// NewR returns the APT-R future-work variant with the given α.
func NewR(alpha float64) *APT { return &APT{Alpha: alpha, ConsiderRemaining: true} }

// Name implements sim.Policy.
func (a *APT) Name() string {
	if a.ConsiderRemaining {
		return "APT-R"
	}
	return "APT"
}

// Prepare implements sim.Policy.
func (a *APT) Prepare(c *sim.Costs) error {
	if a.Alpha == 0 {
		a.Alpha = DefaultAlpha
	}
	if a.Alpha < 1 {
		return fmt.Errorf("core: APT flexibility factor α must be >= 1, got %v", a.Alpha)
	}
	a.c = c
	// Reuse the per-kernel map across Prepare calls so re-running a pooled
	// policy instance does not allocate; Stats() hands out copies.
	byKernel := a.stats.ByKernel
	if byKernel == nil {
		byKernel = map[string]int{}
	} else {
		clear(byKernel)
	}
	a.stats = AltStats{ByKernel: byKernel}
	return nil
}

// Stats returns the allocation statistics accumulated since Prepare.
func (a *APT) Stats() AltStats {
	out := a.stats
	out.ByKernel = make(map[string]int, len(a.stats.ByKernel))
	for k, v := range a.stats.ByKernel { //lint:ordered — per-key map copy; writes are independent
		out.ByKernel[k] = v
	}
	return out
}

// Select implements sim.Policy, following Algorithm 1: every ready kernel,
// in first-come-first-serve order, is assigned to pmin when pmin is
// available; otherwise to the cheapest available alternative processor
// within the threshold; otherwise it waits.
func (a *APT) Select(st *sim.State) []sim.Assignment {
	np := st.System().NumProcs()
	if cap(a.avail) < np {
		a.avail = make([]bool, np)
	}
	avail := a.avail[:np]
	clear(avail)
	a.procs = st.AppendAvailableProcs(a.procs[:0])
	nAvail := 0
	for _, p := range a.procs {
		avail[p] = true
		nAvail++
	}
	a.ready = st.AppendReady(a.ready[:0])
	out := a.out[:0]
	for _, k := range a.ready {
		if nAvail == 0 {
			break
		}
		pmin, x := a.c.BestProc(k)
		if avail[pmin] {
			avail[pmin] = false
			nAvail--
			a.stats.Assignments++
			out = append(out, sim.Assignment{Kernel: k, Proc: pmin})
			continue
		}
		palt, altCost, ok := a.findAlternative(st, k, pmin, x, avail)
		if !ok {
			continue // wait for pmin
		}
		if a.ConsiderRemaining && a.waitingWins(st, k, pmin, x, altCost) {
			continue // APT-R: pmin will be free soon enough; wait
		}
		avail[palt] = false
		nAvail--
		a.stats.Assignments++
		a.stats.AltAssignments++
		a.stats.ByKernel[st.Graph().Kernel(k).Name]++
		out = append(out, sim.Assignment{Kernel: k, Proc: palt})
	}
	a.out = out
	return out
}

// findAlternative implements find2ndBestProc of Algorithm 1: among the
// processors still available in this batch, pick the one minimising
// execution time plus incoming data transfer time, provided that total is
// within threshold = α·x. Returns ok=false when no available processor
// qualifies.
func (a *APT) findAlternative(
	st *sim.State,
	k dfg.KernelID,
	pmin platform.ProcID,
	x float64,
	avail []bool,
) (platform.ProcID, float64, bool) {
	threshold := a.Alpha * x
	best := platform.ProcID(-1)
	bestCost := math.Inf(1)
	for pi, free := range avail {
		p := platform.ProcID(pi)
		if !free || p == pmin {
			continue
		}
		cost := a.c.Exec(k, p) + a.transferTo(st, k, p)
		// Strict < plus ascending iteration makes ties break to lower IDs.
		if cost <= threshold && cost < bestCost {
			best, bestCost = p, cost
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	return best, bestCost, true
}

// transferTo prices moving the kernel's predecessor outputs to processor p
// from wherever those predecessors ran.
func (a *APT) transferTo(st *sim.State, k dfg.KernelID, p platform.ProcID) float64 {
	return a.c.TransferIn(k, p, func(pred dfg.KernelID) platform.ProcID {
		if pp, ok := st.ProcOf(pred); ok {
			return pp
		}
		return p // ready kernels have placed predecessors; defensive default
	})
}

// waitingWins estimates, for APT-R, whether waiting for pmin finishes the
// kernel earlier than taking the alternative now.
func (a *APT) waitingWins(st *sim.State, k dfg.KernelID, pmin platform.ProcID, x, altCost float64) bool {
	wait := st.BusyUntil(pmin) - st.Now()
	if wait < 0 {
		wait = 0
	}
	finishIfWait := wait + a.transferTo(st, k, pmin) + x
	return finishIfWait <= altCost
}

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dfg"
)

// PoissonArrivals paces a workload as a streaming submission: kernels
// arrive in ID (stream) order separated by exponentially distributed gaps
// with the given mean, modelling the thesis's framing of the input as "a
// stream of applications" whose tasks the scheduler sees "as and when they
// arrive". Because generators emit dependency edges forward in ID order, a
// kernel never arrives before its predecessors.
//
// The thesis itself submits whole streams at t = 0; pacing is this
// repository's extension (EXPERIMENTS.md discusses its effect on λ).
func PoissonArrivals(g *dfg.Graph, meanGapMs float64, seed int64) ([]float64, error) {
	if meanGapMs < 0 {
		return nil, fmt.Errorf("workload: negative mean arrival gap %v", meanGapMs)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, g.NumKernels())
	t := 0.0
	for i := range out {
		if meanGapMs > 0 {
			t += r.ExpFloat64() * meanGapMs
		}
		out[i] = t
	}
	return out, nil
}

// PeriodicArrivals paces a workload with a fixed gap between consecutive
// kernels in stream order. A zero gap reproduces the thesis's
// all-at-time-zero submission.
func PeriodicArrivals(g *dfg.Graph, gapMs float64) ([]float64, error) {
	if gapMs < 0 {
		return nil, fmt.Errorf("workload: negative arrival gap %v", gapMs)
	}
	out := make([]float64, g.NumKernels())
	for i := range out {
		out[i] = float64(i) * gapMs
	}
	return out, nil
}

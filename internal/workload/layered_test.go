package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
)

func TestBuildLayeredShape(t *testing.T) {
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(1)), 40)
	g, err := BuildLayered(series, LayeredConfig{Layers: 4, EdgeProb: 0.3}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumKernels() != 40 {
		t.Fatalf("kernels = %d", g.NumKernels())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	levels := g.Levels()
	if len(levels) != 4 {
		t.Errorf("levels = %d, want 4 (every non-entry kernel has a previous-layer pred)", len(levels))
	}
	// Non-entry kernels all have at least one predecessor.
	for id := 0; id < g.NumKernels(); id++ {
		k := dfg.KernelID(id)
		if g.Kernel(k).App > 0 && g.InDegree(k) == 0 {
			t.Errorf("kernel %d in layer %d has no predecessor", id, g.Kernel(k).App)
		}
	}
}

func TestBuildLayeredValidation(t *testing.T) {
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(1)), 10)
	r := rand.New(rand.NewSource(1))
	if _, err := BuildLayered(nil, DefaultLayeredConfig(), r); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := BuildLayered(series, LayeredConfig{Layers: 0, EdgeProb: 0.5}, r); err == nil {
		t.Error("zero layers accepted")
	}
	if _, err := BuildLayered(series, LayeredConfig{Layers: 2, EdgeProb: 1.5}, r); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestBuildLayeredMoreLayersThanKernels(t *testing.T) {
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(3)), 3)
	g, err := BuildLayered(series, LayeredConfig{Layers: 10, EdgeProb: 1}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to 3 layers: a 3-kernel chain.
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (chain)", g.NumEdges())
	}
}

// Property: layered graphs are always valid DAGs whose level count equals
// the configured layer count (after clamping).
func TestBuildLayeredProperty(t *testing.T) {
	c := PaperCatalog()
	f := func(seed int64, nRaw, layersRaw, probRaw uint8) bool {
		n := int(nRaw%60) + 1
		layers := int(layersRaw%6) + 1
		prob := float64(probRaw%101) / 100
		series := c.RandomSeries(rand.New(rand.NewSource(seed)), n)
		g, err := BuildLayered(series, LayeredConfig{Layers: layers, EdgeProb: prob},
			rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		if g.Validate() != nil || g.NumKernels() != n {
			return false
		}
		want := layers
		if want > n {
			want = n
		}
		return len(g.Levels()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

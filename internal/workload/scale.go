package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dfg"
)

// ScaleLayeredConfig tunes BuildScaleLayered, the bounded-fan-in layered
// random DAG family used for large-scale (10k–100k kernel) workloads.
// Unlike LayeredConfig's per-pair edge probability — O(width²) edges on
// wide layers — every non-entry kernel draws at most FanIn distinct
// predecessors from the previous layer, so edge count grows linearly in
// kernel count and 100k-kernel graphs build in milliseconds.
type ScaleLayeredConfig struct {
	// Layers is the number of dependency levels (>= 1).
	Layers int
	// FanIn is the maximum number of predecessors drawn per non-entry
	// kernel (>= 1); the effective fan-in is capped by the previous layer's
	// width.
	FanIn int
}

// DefaultScaleLayeredConfig returns 32 layers with fan-in 3.
func DefaultScaleLayeredConfig() ScaleLayeredConfig { return ScaleLayeredConfig{Layers: 32, FanIn: 3} }

// BuildScaleLayered arranges a series into a bounded-fan-in layered DAG:
// kernels spread contiguously across cfg.Layers layers, and each non-entry
// kernel depends on min(cfg.FanIn, prev-layer width) distinct kernels of
// the previous layer, drawn uniformly at random. Deterministic per rng.
func BuildScaleLayered(series []KernelSpec, cfg ScaleLayeredConfig, r *rand.Rand) (*dfg.Graph, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("workload: scale-layered series is empty")
	}
	if cfg.Layers <= 0 {
		return nil, fmt.Errorf("workload: layers must be positive, got %d", cfg.Layers)
	}
	if cfg.FanIn <= 0 {
		return nil, fmt.Errorf("workload: fan-in must be positive, got %d", cfg.FanIn)
	}
	if cfg.Layers > len(series) {
		cfg.Layers = len(series)
	}
	b := dfg.NewBuilder()
	layers := make([][]dfg.KernelID, cfg.Layers)
	for i, s := range series {
		l := i * cfg.Layers / len(series) // contiguous stream order per layer
		layers[l] = append(layers[l], addSpec(b, s, l))
	}
	// pick holds the previous layer's indices; a partial Fisher–Yates draw
	// selects FanIn distinct predecessors without rebuilding the slice.
	var pick []int
	for l := 1; l < cfg.Layers; l++ {
		prev := layers[l-1]
		fanIn := cfg.FanIn
		if fanIn > len(prev) {
			fanIn = len(prev)
		}
		if cap(pick) < len(prev) {
			pick = make([]int, len(prev))
		}
		pick = pick[:len(prev)]
		for i := range pick {
			pick[i] = i
		}
		for _, kid := range layers[l] {
			for j := 0; j < fanIn; j++ {
				swap := j + r.Intn(len(prev)-j)
				pick[j], pick[swap] = pick[swap], pick[j]
				b.AddEdge(prev[pick[j]], kid)
			}
		}
	}
	return b.Build()
}

// ForkJoinConfig tunes BuildForkJoin, the fork-join mesh family: a chain
// of stages, each forking one kernel into Width parallel kernels that join
// into the next stage's fork kernel.
type ForkJoinConfig struct {
	// Width is the number of parallel kernels per stage (>= 1).
	Width int
}

// DefaultForkJoinConfig returns width-64 stages.
func DefaultForkJoinConfig() ForkJoinConfig { return ForkJoinConfig{Width: 64} }

// BuildForkJoin arranges a series into a fork-join mesh: kernels are
// consumed in stream order as repeating blocks of one fork kernel followed
// by up to cfg.Width parallel kernels; the parallel kernels of each stage
// all feed the next stage's fork kernel, which chains stages together.
// The trailing partial block joins into nothing, leaving its parallel
// kernels as exits. Deterministic (no randomness beyond the series).
func BuildForkJoin(series []KernelSpec, cfg ForkJoinConfig) (*dfg.Graph, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("workload: fork-join series is empty")
	}
	if cfg.Width <= 0 {
		return nil, fmt.Errorf("workload: fork-join width must be positive, got %d", cfg.Width)
	}
	b := dfg.NewBuilder()
	block := cfg.Width + 1
	var prevParallel []dfg.KernelID
	stage := 0
	for off := 0; off < len(series); off += block {
		end := off + block
		if end > len(series) {
			end = len(series)
		}
		fork := addSpec(b, series[off], stage)
		for _, p := range prevParallel {
			b.AddEdge(p, fork)
		}
		parallel := make([]dfg.KernelID, 0, end-off-1)
		for i := off + 1; i < end; i++ {
			kid := addSpec(b, series[i], stage)
			b.AddEdge(fork, kid)
			parallel = append(parallel, kid)
		}
		// A width-0 trailing stage keeps the chain on the fork kernel itself.
		if len(parallel) == 0 {
			parallel = append(parallel, fork)
		}
		prevParallel = parallel
		stage++
	}
	return b.Build()
}

// ScaleSeries draws n random catalog specs for the large-scale builders,
// deterministic per seed.
func ScaleSeries(n int, seed int64) ([]KernelSpec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: series size must be positive, got %d", n)
	}
	cat := PaperCatalog()
	return cat.RandomSeries(rand.New(rand.NewSource(seed)), n), nil
}

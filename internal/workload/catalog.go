// Package workload generates every input the simulator is evaluated on.
//
// The thesis's families: series of kernels drawn from a catalog of seven
// real kernels (Table 5), arranged into DFG Type-1 (a wide parallel level
// plus one terminal kernel) or DFG Type-2 (independent kernels, chains
// and three diamond-shaped "kernel graph blocks").
//
// The repository's extensions beyond the thesis:
//
//   - Arrival shapes for open-system streaming: Poisson, periodic,
//     bursty (Markov-modulated on/off), diurnal (sinusoidal rate) and
//     trace replay, all pacing when each kernel becomes visible to the
//     scheduler (sim.Options.ArrivalTimes).
//   - Kernel streams: long multi-workload horizons sharded into windows
//     for apt.RunStream.
//   - Scale generators: BuildScaleLayered (bounded fan-in layered random
//     DAGs, edges linear in kernels) and BuildForkJoin meshes up to 100k
//     kernels, priced from the measured catalog so the cost model never
//     extrapolates.
//
// All generation is deterministic given a seed, so every experiment in
// this repository is exactly reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dfg"
	"repro/internal/lut"
)

// KernelSpec is one element of an input series: a kernel name plus its data
// size. Series are what the thesis's generator software accepts ("a series
// of kernels and each kernel has its own data size").
type KernelSpec struct {
	Name      string
	DataElems int64
}

// Catalog lists the kernels a generator may draw and the data sizes that
// are admissible for each (the measured sizes of the lookup table, so the
// simulator's cost model never needs to extrapolate).
type Catalog struct {
	names []string
	sizes map[string][]int64
}

// NewCatalog builds a catalog from explicit kernel -> sizes data.
func NewCatalog(sizes map[string][]int64) (*Catalog, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("workload: empty catalog")
	}
	// Collect and sort the names first, then validate in that order: with
	// several invalid entries the reported error must not depend on map
	// iteration order.
	names := make([]string, 0, len(sizes))
	for name := range sizes { //lint:ordered — collected then sorted just below
		names = append(names, name)
	}
	sortStrings(names)
	c := &Catalog{names: names, sizes: map[string][]int64{}}
	for _, name := range names {
		ss := sizes[name]
		if len(ss) == 0 {
			return nil, fmt.Errorf("workload: kernel %q has no sizes", name)
		}
		for _, s := range ss {
			if s <= 0 {
				return nil, fmt.Errorf("workload: kernel %q has non-positive size %d", name, s)
			}
		}
		c.sizes[name] = append([]int64(nil), ss...)
	}
	return c, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// PaperCatalog returns the catalog implied by the thesis: every kernel of
// its lookup table with exactly the measured data sizes.
func PaperCatalog() *Catalog {
	t := lut.Paper()
	sizes := map[string][]int64{}
	for _, k := range t.Kernels() {
		sizes[k] = t.Sizes(k)
	}
	c, err := NewCatalog(sizes)
	if err != nil {
		panic(err) // lut.Paper is statically valid
	}
	return c
}

// Names returns the kernel names in deterministic (sorted) order.
func (c *Catalog) Names() []string { return c.names }

// Sizes returns the admissible sizes for a kernel, or nil if unknown.
func (c *Catalog) Sizes(name string) []int64 { return c.sizes[name] }

// RandomSpec draws one kernel uniformly at random and one of its admissible
// sizes uniformly at random.
func (c *Catalog) RandomSpec(r *rand.Rand) KernelSpec {
	name := c.names[r.Intn(len(c.names))]
	ss := c.sizes[name]
	return KernelSpec{Name: name, DataElems: ss[r.Intn(len(ss))]}
}

// RandomSeries draws n independent random specs.
func (c *Catalog) RandomSeries(r *rand.Rand, n int) []KernelSpec {
	out := make([]KernelSpec, n)
	for i := range out {
		out[i] = c.RandomSpec(r)
	}
	return out
}

// Validate checks that every spec names a catalog kernel with an admissible
// size.
func (c *Catalog) Validate(series []KernelSpec) error {
	for i, s := range series {
		sizes, ok := c.sizes[s.Name]
		if !ok {
			return fmt.Errorf("workload: spec %d names unknown kernel %q", i, s.Name)
		}
		found := false
		for _, sz := range sizes {
			if sz == s.DataElems {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("workload: spec %d size %d not admissible for kernel %q", i, s.DataElems, s.Name)
		}
	}
	return nil
}

// addSpec appends a series element to a graph builder, filling in the dwarf.
func addSpec(b *dfg.Builder, s KernelSpec, app int) dfg.KernelID {
	return b.AddKernel(dfg.Kernel{
		Name:      s.Name,
		Dwarf:     lut.Dwarf(s.Name),
		DataElems: s.DataElems,
		App:       app,
	})
}

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dfg"
)

// LayeredConfig tunes BuildLayered, the random layered-DAG family common
// in scheduling literature (and a superset of the thesis's two shapes:
// Type-1 is one wide layer plus a sink; Type-2's diamonds are three-layer
// blocks). It exists for robustness studies beyond the paper's workloads.
type LayeredConfig struct {
	// Layers is the number of dependency levels (>= 1).
	Layers int
	// EdgeProb is the probability of an edge between a kernel and each
	// kernel of the next layer, in [0,1]. Every non-entry kernel receives
	// at least one predecessor regardless, keeping layers meaningful.
	EdgeProb float64
}

// DefaultLayeredConfig returns four layers with 0.3 edge density.
func DefaultLayeredConfig() LayeredConfig { return LayeredConfig{Layers: 4, EdgeProb: 0.3} }

// BuildLayered arranges a series into a random layered DAG: kernels are
// spread round-robin across cfg.Layers layers, and edges run only between
// consecutive layers, drawn independently with cfg.EdgeProb (plus one
// guaranteed predecessor per non-entry kernel). Deterministic per rng.
func BuildLayered(series []KernelSpec, cfg LayeredConfig, r *rand.Rand) (*dfg.Graph, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("workload: layered series is empty")
	}
	if cfg.Layers <= 0 {
		return nil, fmt.Errorf("workload: layers must be positive, got %d", cfg.Layers)
	}
	if cfg.EdgeProb < 0 || cfg.EdgeProb > 1 {
		return nil, fmt.Errorf("workload: edge probability %v outside [0,1]", cfg.EdgeProb)
	}
	if cfg.Layers > len(series) {
		cfg.Layers = len(series)
	}
	b := dfg.NewBuilder()
	layers := make([][]dfg.KernelID, cfg.Layers)
	for i, s := range series {
		l := i * cfg.Layers / len(series) // contiguous stream order per layer
		// The App tag records the layer index, standing in for the
		// application grouping this synthetic family does not have.
		layers[l] = append(layers[l], addSpec(b, s, l))
	}
	for l := 1; l < cfg.Layers; l++ {
		prev := layers[l-1]
		for _, kid := range layers[l] {
			connected := false
			for _, p := range prev {
				if r.Float64() < cfg.EdgeProb {
					b.AddEdge(p, kid)
					connected = true
				}
			}
			if !connected {
				b.AddEdge(prev[r.Intn(len(prev))], kid)
			}
		}
	}
	return b.Build()
}

package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/lut"
)

func TestPaperCatalog(t *testing.T) {
	c := PaperCatalog()
	names := c.Names()
	if len(names) != 7 {
		t.Fatalf("catalog has %d kernels, want 7: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
	if got := len(c.Sizes(lut.MatMul)); got != 7 {
		t.Errorf("matmul sizes = %d, want 7", got)
	}
	if got := len(c.Sizes(lut.NW)); got != 1 {
		t.Errorf("nw sizes = %d, want 1", got)
	}
	if c.Sizes("nope") != nil {
		t.Error("unknown kernel returned sizes")
	}
}

func TestNewCatalogErrors(t *testing.T) {
	if _, err := NewCatalog(nil); err == nil {
		t.Error("empty catalog: want error")
	}
	if _, err := NewCatalog(map[string][]int64{"k": {}}); err == nil {
		t.Error("kernel without sizes: want error")
	}
	if _, err := NewCatalog(map[string][]int64{"k": {0}}); err == nil {
		t.Error("non-positive size: want error")
	}
}

func TestRandomSeriesDeterministic(t *testing.T) {
	c := PaperCatalog()
	a := c.RandomSeries(rand.New(rand.NewSource(7)), 50)
	b := c.RandomSeries(rand.New(rand.NewSource(7)), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := c.Validate(a); err != nil {
		t.Errorf("generated series invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	c := PaperCatalog()
	if err := c.Validate([]KernelSpec{{Name: "nope", DataElems: 1}}); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := c.Validate([]KernelSpec{{Name: lut.NW, DataElems: 12345}}); err == nil {
		t.Error("inadmissible size accepted")
	}
}

func TestBuildType1Shape(t *testing.T) {
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(1)), 9)
	g, err := BuildType1(series)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumKernels() != 9 {
		t.Fatalf("kernels = %d, want 9", g.NumKernels())
	}
	// n-1 parallel kernels, each feeding the last one.
	levels := g.Levels()
	if len(levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(levels))
	}
	if len(levels[0]) != 8 || len(levels[1]) != 1 {
		t.Errorf("level sizes = %d/%d, want 8/1", len(levels[0]), len(levels[1]))
	}
	last := dfg.KernelID(8)
	if g.InDegree(last) != 8 {
		t.Errorf("terminal in-degree = %d, want 8", g.InDegree(last))
	}
	if g.NumEdges() != 8 {
		t.Errorf("edges = %d, want 8", g.NumEdges())
	}
}

func TestBuildType1Degenerate(t *testing.T) {
	if _, err := BuildType1(nil); err == nil {
		t.Error("empty series accepted")
	}
	g, err := BuildType1([]KernelSpec{{Name: lut.NW, DataElems: 16777216}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumKernels() != 1 || g.NumEdges() != 0 {
		t.Error("single-kernel Type-1 wrong shape")
	}
}

func TestBuildType2Shape(t *testing.T) {
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(2)), 46)
	g, err := BuildType2(series, Type2Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumKernels() != 46 {
		t.Fatalf("kernels = %d, want 46", g.NumKernels())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Type-2 must actually contain dependencies.
	if g.NumEdges() == 0 {
		t.Error("Type-2 graph has no edges")
	}
	// There must be kernels with in-degree >= 2 (diamond bottoms).
	foundJoin := false
	for id := 0; id < g.NumKernels(); id++ {
		if g.InDegree(dfg.KernelID(id)) >= 2 {
			foundJoin = true
			break
		}
	}
	if !foundJoin {
		t.Error("Type-2 graph has no join (diamond bottom)")
	}
}

func TestBuildType2TooSmall(t *testing.T) {
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(3)), 5)
	if _, err := BuildType2(series, Type2Config{}); err == nil {
		t.Error("undersized series accepted")
	}
}

func TestBuildType2MinimumExact(t *testing.T) {
	cfg := DefaultType2Config()
	min := MinType2Kernels(cfg)
	if min != 9 {
		t.Fatalf("MinType2Kernels = %d, want 9", min)
	}
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(4)), min)
	g, err := BuildType2(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumKernels() != min {
		t.Errorf("kernels = %d, want %d", g.NumKernels(), min)
	}
}

func TestBuildType2NoBlockLink(t *testing.T) {
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(5)), 30)
	cfg := DefaultType2Config()
	linked, err := BuildType2(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LinkBlocks = false
	unlinked, err := BuildType2(series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if linked.NumEdges() != unlinked.NumEdges()+2 {
		t.Errorf("linking 3 blocks should add exactly 2 edges: %d vs %d",
			linked.NumEdges(), unlinked.NumEdges())
	}
}

func TestBuildDispatch(t *testing.T) {
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(6)), 20)
	if _, err := Build(Type1, series); err != nil {
		t.Errorf("Build(Type1): %v", err)
	}
	if _, err := Build(Type2, series); err != nil {
		t.Errorf("Build(Type2): %v", err)
	}
	if _, err := Build(GraphType(99), series); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestGraphTypeString(t *testing.T) {
	if Type1.String() != "DFG Type-1" || Type2.String() != "DFG Type-2" {
		t.Errorf("String() = %q/%q", Type1, Type2)
	}
}

func TestSuiteMatchesPaperCounts(t *testing.T) {
	for _, typ := range []GraphType{Type1, Type2} {
		graphs := MustSuite(typ, DefaultSuiteSeed)
		if len(graphs) != 10 {
			t.Fatalf("%v suite has %d graphs, want 10", typ, len(graphs))
		}
		for i, g := range graphs {
			if g.NumKernels() != ExperimentKernelCounts[i] {
				t.Errorf("%v graph %d has %d kernels, want %d",
					typ, i+1, g.NumKernels(), ExperimentKernelCounts[i])
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%v graph %d invalid: %v", typ, i+1, err)
			}
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := MustSuite(Type2, 42)
	b := MustSuite(Type2, 42)
	for i := range a {
		if a[i].NumKernels() != b[i].NumKernels() || a[i].NumEdges() != b[i].NumEdges() {
			t.Fatalf("suite not deterministic at graph %d", i)
		}
		for id := 0; id < a[i].NumKernels(); id++ {
			ka, kb := a[i].Kernel(dfg.KernelID(id)), b[i].Kernel(dfg.KernelID(id))
			if ka != kb {
				t.Fatalf("graph %d kernel %d differs: %+v vs %+v", i, id, ka, kb)
			}
		}
	}
}

// Property: both generators produce valid DAGs with exactly the requested
// kernel count for any admissible series length and seed.
func TestGeneratorsValidProperty(t *testing.T) {
	c := PaperCatalog()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%150) + 9 // >= MinType2Kernels
		series := c.RandomSeries(rand.New(rand.NewSource(seed)), n)
		g1, err := BuildType1(series)
		if err != nil || g1.NumKernels() != n || g1.Validate() != nil {
			return false
		}
		g2, err := BuildType2(series, Type2Config{})
		if err != nil || g2.NumKernels() != n || g2.Validate() != nil {
			return false
		}
		// Type-1: exactly two levels whenever n > 1.
		if n > 1 && len(g1.Levels()) != 2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dfg"
)

// GraphType selects one of the two workload families of the thesis.
type GraphType int

const (
	// Type1 is the paper's "DFG Type-1": n-1 kernels in one fully parallel
	// level with no dependencies, followed by a single terminal kernel that
	// depends on all of them (paper Figure 3).
	Type1 GraphType = iota + 1
	// Type2 is the paper's "DFG Type-2": a mix of individual kernels,
	// dependent chains and diamond-shaped "kernel graph blocks" (one top
	// kernel, several independent middle kernels, one bottom kernel), with
	// consecutive blocks linked bottom-to-top (paper Figure 4).
	Type2
)

// String returns "DFG Type-1" / "DFG Type-2".
func (t GraphType) String() string {
	switch t {
	case Type1:
		return "DFG Type-1"
	case Type2:
		return "DFG Type-2"
	default:
		return fmt.Sprintf("GraphType(%d)", int(t))
	}
}

// BuildType1 arranges a series into a DFG Type-1 graph: series[0..n-2] form
// the parallel level, series[n-1] is the terminal kernel depending on all
// of them. A series of length 1 yields a single kernel; empty series are an
// error.
func BuildType1(series []KernelSpec) (*dfg.Graph, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("workload: Type-1 series is empty")
	}
	b := dfg.NewBuilder()
	n := len(series)
	ids := make([]dfg.KernelID, n)
	for i, s := range series {
		ids[i] = addSpec(b, s, 0)
	}
	if n > 1 {
		last := ids[n-1]
		for _, id := range ids[:n-1] {
			b.AddEdge(id, last)
		}
	}
	return b.Build()
}

// Type2Config tunes the Type-2 generator. The zero value is replaced by
// defaults matching the paper's description: three kernel graph blocks,
// chains of three kernels, and roughly a quarter of the stream spent on the
// individual/chain section.
type Type2Config struct {
	// Blocks is the number of diamond-shaped kernel graph blocks (paper: 3).
	Blocks int
	// ChainLen is the length of each dependent chain in the free section.
	ChainLen int
	// FreeFrac is the fraction of kernels placed in the free section of
	// individual kernels and chains (the rest fill the blocks).
	FreeFrac float64
	// LinkBlocks connects each block's bottom kernel to the next block's
	// top kernel, as drawn in paper Figure 4.
	LinkBlocks bool
}

// DefaultType2Config returns the configuration used for all paper-facing
// experiments.
func DefaultType2Config() Type2Config {
	return Type2Config{Blocks: 3, ChainLen: 3, FreeFrac: 0.25, LinkBlocks: true}
}

func (c *Type2Config) setDefaults() {
	if c.Blocks == 0 && c.ChainLen == 0 && c.FreeFrac == 0 {
		*c = DefaultType2Config()
		return
	}
	if c.Blocks <= 0 {
		c.Blocks = 3
	}
	if c.ChainLen <= 0 {
		c.ChainLen = 3
	}
	if c.FreeFrac < 0 {
		c.FreeFrac = 0
	}
	if c.FreeFrac > 1 {
		c.FreeFrac = 1
	}
}

// MinType2Kernels is the smallest series BuildType2 accepts with the default
// configuration: every block needs a top, at least one middle and a bottom.
func MinType2Kernels(cfg Type2Config) int {
	cfg.setDefaults()
	return cfg.Blocks * 3
}

// BuildType2 arranges a series into a DFG Type-2 graph.
//
// The thesis describes Type-2 informally (Figure 4): the stream contains
// individual kernels, chains of data-dependent kernels, and three diamond
// "kernel graph blocks"; blocks follow one another in the stream. We fix the
// following deterministic layout, consuming the series in order:
//
//  1. A "free" section of roughly FreeFrac·n kernels alternating between an
//     individual kernel and a dependent chain of ChainLen kernels.
//  2. The remaining kernels split as evenly as possible across Blocks
//     diamond blocks: first spec is the top, last is the bottom, the rest
//     are the independent middles (top -> each middle -> bottom).
//  3. If LinkBlocks, block i's bottom feeds block i+1's top.
func BuildType2(series []KernelSpec, cfg Type2Config) (*dfg.Graph, error) {
	cfg.setDefaults()
	need := cfg.Blocks * 3
	if len(series) < need {
		return nil, fmt.Errorf("workload: Type-2 needs at least %d kernels for %d blocks, got %d",
			need, cfg.Blocks, len(series))
	}
	n := len(series)
	freeN := int(cfg.FreeFrac * float64(n))
	if n-freeN < need {
		freeN = n - need
	}

	b := dfg.NewBuilder()
	app := 0
	i := 0

	// Free section: alternate individual kernel / chain.
	individual := true
	for i < freeN {
		if individual {
			addSpec(b, series[i], app)
			i++
			app++
		} else {
			chain := cfg.ChainLen
			if rem := freeN - i; chain > rem {
				chain = rem
			}
			var prev dfg.KernelID = -1
			for c := 0; c < chain; c++ {
				id := addSpec(b, series[i], app)
				if prev >= 0 {
					b.AddEdge(prev, id)
				}
				prev = id
				i++
			}
			app++
		}
		individual = !individual
	}

	// Diamond blocks over the remaining kernels.
	blockN := n - i
	var prevBottom dfg.KernelID = -1
	for blk := 0; blk < cfg.Blocks; blk++ {
		size := blockN / cfg.Blocks
		if blk < blockN%cfg.Blocks {
			size++
		}
		specs := series[i : i+size]
		i += size
		// Kernels enter the stream in topological order: top, middles,
		// bottom — an application submits a sink after its inputs.
		top := addSpec(b, specs[0], app)
		mids := make([]dfg.KernelID, 0, size-2)
		for _, s := range specs[1 : size-1] {
			mid := addSpec(b, s, app)
			b.AddEdge(top, mid)
			mids = append(mids, mid)
		}
		bottom := addSpec(b, specs[size-1], app)
		for _, mid := range mids {
			b.AddEdge(mid, bottom)
		}
		if size == 2 {
			b.AddEdge(top, bottom)
		}
		if cfg.LinkBlocks && prevBottom >= 0 {
			b.AddEdge(prevBottom, top)
		}
		prevBottom = bottom
		app++
	}
	return b.Build()
}

// Build dispatches on the graph type with default configuration.
func Build(t GraphType, series []KernelSpec) (*dfg.Graph, error) {
	switch t {
	case Type1:
		return BuildType1(series)
	case Type2:
		return BuildType2(series, DefaultType2Config())
	default:
		return nil, fmt.Errorf("workload: unknown graph type %d", int(t))
	}
}

// ExperimentKernelCounts are the kernel counts of the thesis's ten
// experiments per graph type (Appendix B, Tables 15/16).
var ExperimentKernelCounts = []int{46, 58, 50, 73, 69, 81, 125, 93, 132, 157}

// DefaultSuiteSeed seeds the paper-facing experiment suites. The authors'
// random graphs were never published; any fixed seed defines an equivalent
// deterministic suite.
const DefaultSuiteSeed int64 = 20170301 // thesis approval date, March 2017

// Suite generates the ten-experiment workload suite for a graph type:
// one graph per entry of ExperimentKernelCounts, each from an independent
// deterministic random series over the paper catalog.
func Suite(t GraphType, seed int64) ([]*dfg.Graph, error) {
	cat := PaperCatalog()
	graphs := make([]*dfg.Graph, len(ExperimentKernelCounts))
	for i, n := range ExperimentKernelCounts {
		r := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		series := cat.RandomSeries(r, n)
		g, err := Build(t, series)
		if err != nil {
			return nil, fmt.Errorf("workload: suite graph %d: %w", i+1, err)
		}
		graphs[i] = g
	}
	return graphs, nil
}

// MustSuite is Suite, panicking on error (the paper catalog always
// satisfies the generators' requirements).
func MustSuite(t GraphType, seed int64) []*dfg.Graph {
	gs, err := Suite(t, seed)
	if err != nil {
		panic(err)
	}
	return gs
}

package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dfg"
)

func streamGraph(t *testing.T, n int) *dfg.Graph {
	t.Helper()
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(1)), n)
	g, err := BuildType2(series, Type2Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPoissonArrivalsShape(t *testing.T) {
	g := streamGraph(t, 40)
	at, err := PoissonArrivals(g, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(at) != g.NumKernels() {
		t.Fatalf("len = %d, want %d", len(at), g.NumKernels())
	}
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, at[i], at[i-1])
		}
	}
	// Mean gap should be within 3x of the requested mean for 40 samples.
	mean := at[len(at)-1] / float64(len(at)-1)
	if mean < 100/3.0 || mean > 300 {
		t.Errorf("empirical mean gap %v far from 100", mean)
	}
	// Dependencies never arrive before their predecessors.
	for u := 0; u < g.NumKernels(); u++ {
		for _, v := range g.Succs(dfg.KernelID(u)) {
			if at[v] < at[u] {
				t.Fatalf("successor %d arrives before predecessor %d", v, u)
			}
		}
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	g := streamGraph(t, 20)
	a, _ := PoissonArrivals(g, 50, 3)
	b, _ := PoissonArrivals(g, 50, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestPoissonArrivalsZeroGap(t *testing.T) {
	g := streamGraph(t, 10)
	at, err := PoissonArrivals(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range at {
		if v != 0 {
			t.Fatalf("zero gap should give all-zero arrivals, got %v", at)
		}
	}
	if _, err := PoissonArrivals(g, -1, 1); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestBurstyArrivals(t *testing.T) {
	g := streamGraph(t, 200)
	cfg := BurstyConfig{BurstGapMs: 2, BurstMs: 50, IdleMs: 500}
	at, err := BurstyArrivals(g, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(at) != g.NumKernels() {
		t.Fatalf("len = %d, want %d", len(at), g.NumKernels())
	}
	var maxGap float64
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		if gap := at[i] - at[i-1]; gap > maxGap {
			maxGap = gap
		}
	}
	// Burstiness must show: some inter-arrival gap spans an idle period,
	// far beyond the in-burst mean of 2ms.
	if maxGap < 50 {
		t.Errorf("max gap %v, want an idle-period gap >> burst gap 2", maxGap)
	}
	// Determinism.
	again, _ := BurstyArrivals(g, cfg, 11)
	for i := range at {
		if at[i] != again[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
	// IdleMs = 0 degenerates to Poisson pacing: still monotone, no error.
	if _, err := BurstyArrivals(g, BurstyConfig{BurstGapMs: 2, BurstMs: 50}, 1); err != nil {
		t.Errorf("IdleMs=0 rejected: %v", err)
	}
	// Validation.
	for _, bad := range []BurstyConfig{
		{BurstGapMs: -1, BurstMs: 50},
		{BurstGapMs: 2, BurstMs: 0},
		{BurstGapMs: 2, BurstMs: 50, IdleMs: -1},
	} {
		if _, err := BurstyArrivals(g, bad, 1); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestDiurnalArrivals(t *testing.T) {
	g := streamGraph(t, 400)
	cfg := DiurnalConfig{MeanGapMs: 10, PeriodMs: 2000, Amplitude: 0.9}
	at, err := DiurnalArrivals(g, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	// The empirical mean gap should sit near MeanGapMs (thinning preserves
	// the average rate); allow a generous band for 400 samples.
	mean := at[len(at)-1] / float64(len(at)-1)
	if mean < 10/3.0 || mean > 30 {
		t.Errorf("empirical mean gap %v far from 10", mean)
	}
	again, _ := DiurnalArrivals(g, cfg, 5)
	for i := range at {
		if at[i] != again[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
	for _, bad := range []DiurnalConfig{
		{MeanGapMs: 0, PeriodMs: 100},
		{MeanGapMs: 10, PeriodMs: 0},
		{MeanGapMs: 10, PeriodMs: 100, Amplitude: 1},
		{MeanGapMs: 10, PeriodMs: 100, Amplitude: -0.1},
	} {
		if _, err := DiurnalArrivals(g, bad, 1); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestTraceArrivals(t *testing.T) {
	g := streamGraph(t, 10)
	n := g.NumKernels()
	var sb strings.Builder
	sb.WriteString("# recorded arrivals\n\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%g\n", float64(i)*2.5)
	}
	at, err := TraceArrivals(g, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(at) != n || at[1] != 2.5 {
		t.Fatalf("trace = %v", at)
	}
	// Wrong count, negative, non-monotone and garbage each rejected.
	if _, err := TraceArrivals(g, strings.NewReader("1\n2\n")); err == nil {
		t.Error("short trace accepted")
	}
	if _, err := ReadTrace(strings.NewReader("1\n-2\n")); err == nil {
		t.Error("negative timestamp accepted")
	}
	if _, err := ReadTrace(strings.NewReader("5\n4\n")); err == nil {
		t.Error("non-monotone trace accepted")
	}
	if _, err := ReadTrace(strings.NewReader("5\nbogus\n")); err == nil {
		t.Error("non-numeric line accepted")
	}
}

func TestIndependentStream(t *testing.T) {
	g, err := Independent(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumKernels() != 50 {
		t.Errorf("kernels = %d, want 50", g.NumKernels())
	}
	if g.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0 (independent kernels)", g.NumEdges())
	}
	again, _ := Independent(50, 3)
	for i := 0; i < 50; i++ {
		a, b := g.Kernel(dfg.KernelID(i)), again.Kernel(dfg.KernelID(i))
		if a.Name != b.Name || a.DataElems != b.DataElems {
			t.Fatalf("not deterministic at kernel %d", i)
		}
	}
	if _, err := Independent(0, 1); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestPeriodicArrivals(t *testing.T) {
	g := streamGraph(t, 10)
	at, err := PeriodicArrivals(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range at {
		if v != float64(i)*5 {
			t.Fatalf("arrival %d = %v, want %v", i, v, float64(i)*5)
		}
	}
	if _, err := PeriodicArrivals(g, -5); err == nil {
		t.Error("negative gap accepted")
	}
}

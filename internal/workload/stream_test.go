package workload

import (
	"math/rand"
	"testing"

	"repro/internal/dfg"
)

func streamGraph(t *testing.T, n int) *dfg.Graph {
	t.Helper()
	c := PaperCatalog()
	series := c.RandomSeries(rand.New(rand.NewSource(1)), n)
	g, err := BuildType2(series, Type2Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPoissonArrivalsShape(t *testing.T) {
	g := streamGraph(t, 40)
	at, err := PoissonArrivals(g, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(at) != g.NumKernels() {
		t.Fatalf("len = %d, want %d", len(at), g.NumKernels())
	}
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, at[i], at[i-1])
		}
	}
	// Mean gap should be within 3x of the requested mean for 40 samples.
	mean := at[len(at)-1] / float64(len(at)-1)
	if mean < 100/3.0 || mean > 300 {
		t.Errorf("empirical mean gap %v far from 100", mean)
	}
	// Dependencies never arrive before their predecessors.
	for u := 0; u < g.NumKernels(); u++ {
		for _, v := range g.Succs(dfg.KernelID(u)) {
			if at[v] < at[u] {
				t.Fatalf("successor %d arrives before predecessor %d", v, u)
			}
		}
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	g := streamGraph(t, 20)
	a, _ := PoissonArrivals(g, 50, 3)
	b, _ := PoissonArrivals(g, 50, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestPoissonArrivalsZeroGap(t *testing.T) {
	g := streamGraph(t, 10)
	at, err := PoissonArrivals(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range at {
		if v != 0 {
			t.Fatalf("zero gap should give all-zero arrivals, got %v", at)
		}
	}
	if _, err := PoissonArrivals(g, -1, 1); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestPeriodicArrivals(t *testing.T) {
	g := streamGraph(t, 10)
	at, err := PeriodicArrivals(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range at {
		if v != float64(i)*5 {
			t.Fatalf("arrival %d = %v, want %v", i, v, float64(i)*5)
		}
	}
	if _, err := PeriodicArrivals(g, -5); err == nil {
		t.Error("negative gap accepted")
	}
}

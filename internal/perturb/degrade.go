package perturb

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/platform"
)

// EventKind distinguishes platform-degradation event types.
type EventKind int

const (
	// ProcSlowdown stretches execution on one processor by Factor during
	// the window.
	ProcSlowdown EventKind = iota
	// ProcOffline stops one processor entirely during the window: work in
	// flight stalls (and resumes at window end), and the processor cannot
	// receive transfers.
	ProcOffline
	// LinkSlowdown divides the bandwidth of the (symmetric) link between
	// From and To by Factor during the window.
	LinkSlowdown
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case ProcSlowdown:
		return "slow"
	case ProcOffline:
		return "off"
	case LinkSlowdown:
		return "link"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one degradation episode over the half-open window
// [StartMs, EndMs).
type Event struct {
	Kind EventKind
	// Proc is the affected processor (ProcSlowdown, ProcOffline).
	Proc platform.ProcID
	// From and To are the link endpoints (LinkSlowdown); the event applies
	// to both directions.
	From, To platform.ProcID
	// StartMs and EndMs bound the window; EndMs must be finite (an
	// everlasting offline window would stall the simulation forever).
	StartMs, EndMs float64
	// Factor is the slowdown (>= 1): times within the window stretch by
	// this much. Ignored for ProcOffline.
	Factor float64
}

func (e Event) validate(i int) error {
	if e.StartMs < 0 || math.IsNaN(e.StartMs) || math.IsInf(e.StartMs, 0) {
		return fmt.Errorf("perturb: event %d start %v must be non-negative and finite", i, e.StartMs)
	}
	if !(e.EndMs > e.StartMs) || math.IsInf(e.EndMs, 0) {
		return fmt.Errorf("perturb: event %d window [%v, %v) must be non-empty and finite", i, e.StartMs, e.EndMs)
	}
	switch e.Kind {
	case ProcSlowdown, LinkSlowdown:
		if !(e.Factor >= 1) || math.IsInf(e.Factor, 0) {
			return fmt.Errorf("perturb: event %d factor %v must be finite and >= 1", i, e.Factor)
		}
		if e.Kind == LinkSlowdown && e.From == e.To {
			return fmt.Errorf("perturb: event %d degrades link %d<->%d, endpoints must differ", i, e.From, e.To)
		}
	case ProcOffline:
		// Factor ignored.
	default:
		return fmt.Errorf("perturb: event %d has unknown kind %d", i, int(e.Kind))
	}
	if e.Kind == LinkSlowdown {
		if e.From < 0 || e.To < 0 {
			return fmt.Errorf("perturb: event %d has negative link endpoint", i)
		}
	} else if e.Proc < 0 {
		return fmt.Errorf("perturb: event %d has negative processor %d", i, e.Proc)
	}
	return nil
}

// Schedule is a validated set of degradation events. It implements the sim
// engine's Degradation hook: piecewise-constant speed factors per processor
// and per link. Overlapping events compose multiplicatively; an offline
// window forces speed 0 regardless of slowdowns. A Schedule is immutable
// and safe for concurrent use.
type Schedule struct {
	events []Event
}

// NewSchedule validates the events and returns a Schedule. An empty event
// list is valid (no degradation).
func NewSchedule(events []Event) (*Schedule, error) {
	s := &Schedule{events: make([]Event, len(events))}
	copy(s.events, events)
	for i, e := range s.events {
		if err := e.validate(i); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Events returns a copy of the schedule's events.
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Empty reports whether the schedule holds no events.
func (s *Schedule) Empty() bool { return len(s.events) == 0 }

// fold composes one event into a running (speed, until) pair at time at:
// active events multiply the speed in and bound the validity horizon at
// their end; future events bound it at their start.
func fold(e Event, at, speed, until float64) (float64, float64) {
	switch {
	case at >= e.StartMs && at < e.EndMs:
		if e.Kind == ProcOffline {
			speed = 0
		} else {
			speed /= e.Factor
		}
		if e.EndMs < until {
			until = e.EndMs
		}
	case at < e.StartMs:
		if e.StartMs < until {
			until = e.StartMs
		}
	}
	return speed, until
}

// ExecSpeed returns processor p's instantaneous speed at time at (1
// nominal, 0 offline) and the time until which that speed holds (+Inf when
// nothing further changes). Implements sim.Degradation.
func (s *Schedule) ExecSpeed(p platform.ProcID, at float64) (speed, until float64) {
	speed, until = 1, math.Inf(1)
	for _, e := range s.events {
		if e.Kind == LinkSlowdown || e.Proc != p {
			continue
		}
		speed, until = fold(e, at, speed, until)
	}
	return speed, until
}

// LinkSpeed returns the relative bandwidth of the link between from and to
// at time at, and the time until which it holds. Link events are symmetric:
// an event on (a, b) degrades both directions. Implements sim.Degradation.
func (s *Schedule) LinkSpeed(from, to platform.ProcID, at float64) (speed, until float64) {
	speed, until = 1, math.Inf(1)
	for _, e := range s.events {
		if e.Kind != LinkSlowdown {
			continue
		}
		if (e.From != from || e.To != to) && (e.From != to || e.To != from) {
			continue
		}
		speed, until = fold(e, at, speed, until)
	}
	return speed, until
}

// ParseEvents parses a comma-separated degradation spec, one event per
// item:
//
//	slow:P:F:START:END   processor P runs F× slower during [START, END) ms
//	off:P:START:END      processor P is offline during [START, END) ms
//	link:A:B:F:START:END link A<->B has F× less bandwidth during [START, END)
//
// Example: "slow:1:2:1000:5000,off:2:8000:9000". The result is validated;
// an empty spec yields no events.
func ParseEvents(spec string) ([]Event, error) {
	var events []Event
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		bad := func() ([]Event, error) {
			return nil, fmt.Errorf("perturb: malformed degradation event %q (want slow:P:F:START:END, off:P:START:END or link:A:B:F:START:END)", item)
		}
		nums := make([]float64, 0, 5)
		for _, p := range parts[1:] {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return bad()
			}
			nums = append(nums, v)
		}
		var e Event
		switch parts[0] {
		case "slow":
			if len(nums) != 4 {
				return bad()
			}
			e = Event{Kind: ProcSlowdown, Proc: platform.ProcID(nums[0]), Factor: nums[1], StartMs: nums[2], EndMs: nums[3]}
		case "off":
			if len(nums) != 3 {
				return bad()
			}
			e = Event{Kind: ProcOffline, Proc: platform.ProcID(nums[0]), StartMs: nums[1], EndMs: nums[2]}
		case "link":
			if len(nums) != 5 {
				return bad()
			}
			e = Event{Kind: LinkSlowdown, From: platform.ProcID(nums[0]), To: platform.ProcID(nums[1]), Factor: nums[2], StartMs: nums[3], EndMs: nums[4]}
		default:
			return bad()
		}
		events = append(events, e)
	}
	if _, err := NewSchedule(events); err != nil {
		return nil, err
	}
	return events, nil
}

package perturb

import (
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestScheduleExecSpeedWindows(t *testing.T) {
	s, err := NewSchedule([]Event{
		{Kind: ProcSlowdown, Proc: 1, Factor: 2, StartMs: 100, EndMs: 200},
		{Kind: ProcOffline, Proc: 2, StartMs: 50, EndMs: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		proc         platform.ProcID
		at           float64
		speed, until float64
	}{
		{0, 0, 1, math.Inf(1)},   // unaffected processor
		{1, 0, 1, 100},           // before the window: nominal until it opens
		{1, 100, 0.5, 200},       // inside: half speed until it closes
		{1, 150, 0.5, 200},       //
		{1, 200, 1, math.Inf(1)}, // window end is exclusive
		{2, 55, 0, 60},           // offline
		{2, 60, 1, math.Inf(1)},  //
	}
	for _, c := range cases {
		speed, until := s.ExecSpeed(c.proc, c.at)
		if speed != c.speed || until != c.until {
			t.Errorf("ExecSpeed(%d, %v) = (%v, %v), want (%v, %v)", c.proc, c.at, speed, until, c.speed, c.until)
		}
	}
}

func TestScheduleOverlappingEventsCompose(t *testing.T) {
	s, err := NewSchedule([]Event{
		{Kind: ProcSlowdown, Proc: 0, Factor: 2, StartMs: 0, EndMs: 100},
		{Kind: ProcSlowdown, Proc: 0, Factor: 3, StartMs: 50, EndMs: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	speed, until := s.ExecSpeed(0, 60)
	if math.Abs(speed-1.0/6) > 1e-12 || until != 100 {
		t.Errorf("overlap: speed %v until %v, want 1/6 until 100", speed, until)
	}
	// Offline dominates any slowdown.
	s2, err := NewSchedule([]Event{
		{Kind: ProcSlowdown, Proc: 0, Factor: 2, StartMs: 0, EndMs: 100},
		{Kind: ProcOffline, Proc: 0, StartMs: 20, EndMs: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if speed, _ := s2.ExecSpeed(0, 25); speed != 0 {
		t.Errorf("offline within slowdown: speed %v, want 0", speed)
	}
}

func TestScheduleLinkSpeedSymmetric(t *testing.T) {
	s, err := NewSchedule([]Event{
		{Kind: LinkSlowdown, From: 0, To: 1, Factor: 4, StartMs: 10, EndMs: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range [][2]platform.ProcID{{0, 1}, {1, 0}} {
		speed, until := s.LinkSpeed(dir[0], dir[1], 15)
		if speed != 0.25 || until != 20 {
			t.Errorf("LinkSpeed(%d,%d,15) = (%v,%v), want (0.25, 20)", dir[0], dir[1], speed, until)
		}
	}
	if speed, until := s.LinkSpeed(0, 2, 15); speed != 1 || !math.IsInf(until, 1) {
		t.Errorf("unrelated link degraded: (%v, %v)", speed, until)
	}
	// Proc events never affect links and vice versa.
	if speed, _ := s.ExecSpeed(0, 15); speed != 1 {
		t.Errorf("link event leaked into ExecSpeed: %v", speed)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := [][]Event{
		{{Kind: ProcSlowdown, Proc: 0, Factor: 0.5, StartMs: 0, EndMs: 1}},         // factor < 1
		{{Kind: ProcSlowdown, Proc: 0, Factor: 2, StartMs: 5, EndMs: 5}},           // empty window
		{{Kind: ProcSlowdown, Proc: 0, Factor: 2, StartMs: -1, EndMs: 5}},          // negative start
		{{Kind: ProcOffline, Proc: 0, StartMs: 0, EndMs: math.Inf(1)}},             // everlasting offline
		{{Kind: LinkSlowdown, From: 1, To: 1, Factor: 2, StartMs: 0, EndMs: 1}},    // self link
		{{Kind: ProcSlowdown, Proc: -1, Factor: 2, StartMs: 0, EndMs: 1}},          // negative proc
		{{Kind: EventKind(42), Proc: 0, Factor: 2, StartMs: 0, EndMs: 1}},          // unknown kind
		{{Kind: ProcSlowdown, Proc: 0, Factor: math.Inf(1), StartMs: 0, EndMs: 1}}, // infinite factor
	}
	for i, evs := range bad {
		if _, err := NewSchedule(evs); err == nil {
			t.Errorf("case %d: NewSchedule accepted invalid events %+v", i, evs)
		}
	}
	s, err := NewSchedule(nil)
	if err != nil || !s.Empty() {
		t.Errorf("empty schedule: %v, Empty=%v", err, s.Empty())
	}
}

func TestParseEvents(t *testing.T) {
	evs, err := ParseEvents("slow:1:2:1000:5000, off:2:8000:9000 ,link:0:1:4:0:2000")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: ProcSlowdown, Proc: 1, Factor: 2, StartMs: 1000, EndMs: 5000},
		{Kind: ProcOffline, Proc: 2, StartMs: 8000, EndMs: 9000},
		{Kind: LinkSlowdown, From: 0, To: 1, Factor: 4, StartMs: 0, EndMs: 2000},
	}
	if len(evs) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
	if evs, err := ParseEvents(""); err != nil || len(evs) != 0 {
		t.Errorf("empty spec: %v, %v", evs, err)
	}
	for _, spec := range []string{
		"slow:1:2:1000",     // missing field
		"off:2:8000:9000:1", // extra field
		"melt:1:2:0:1",      // unknown kind
		"slow:x:2:0:1",      // non-numeric
		"slow:1:0.5:0:1",    // invalid factor, caught by validation
	} {
		if _, err := ParseEvents(spec); err == nil {
			t.Errorf("ParseEvents(%q) accepted malformed spec", spec)
		}
	}
	if !strings.Contains(ProcSlowdown.String()+ProcOffline.String()+LinkSlowdown.String(), "slow") {
		t.Error("EventKind String broken")
	}
}

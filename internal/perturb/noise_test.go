package perturb

import (
	"math"
	"testing"

	"repro/internal/lut"
	"repro/internal/platform"
)

func testTable(t *testing.T) *lut.Table {
	t.Helper()
	tab, err := lut.New([]lut.Entry{
		{Kernel: "a", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 10, platform.GPU: 2, platform.FPGA: 50}},
		{Kernel: "b", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 4, platform.GPU: 8, platform.FPGA: 1}},
		{Kernel: "b", DataElems: 4000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 16, platform.GPU: 20, platform.FPGA: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNoiseZeroIsIdentity(t *testing.T) {
	tab := testTable(t)
	for _, n := range []Noise{{}, {Model: NoiseLogNormal, Seed: 9}, {Model: NoiseDrift}} {
		got, err := n.Apply(tab)
		if err != nil {
			t.Fatal(err)
		}
		if got != tab {
			t.Errorf("zero noise %+v did not return the input table", n)
		}
	}
}

func TestNoiseDeterministic(t *testing.T) {
	tab := testTable(t)
	for _, model := range []NoiseModel{NoiseUniform, NoiseLogNormal, NoiseDrift} {
		n := Noise{Model: model, Frac: 0.3, Seed: 42}
		a, err := n.Apply(tab)
		if err != nil {
			t.Fatal(err)
		}
		b, err := n.Apply(tab)
		if err != nil {
			t.Fatal(err)
		}
		ea, eb := a.Entries(), b.Entries()
		for i := range ea {
			for k, v := range ea[i].TimeMs {
				if eb[i].TimeMs[k] != v {
					t.Errorf("%s: rerun drifted at %s/%d/%s: %v vs %v",
						model, ea[i].Kernel, ea[i].DataElems, k, v, eb[i].TimeMs[k])
				}
			}
		}
		// A different seed must perturb differently somewhere.
		c, err := Noise{Model: model, Frac: 0.3, Seed: 43}.Apply(tab)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		ec := c.Entries()
		for i := range ea {
			for k, v := range ea[i].TimeMs {
				if ec[i].TimeMs[k] != v {
					same = false
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 42 and 43 produced identical tables", model)
		}
	}
}

func TestNoiseUniformBounds(t *testing.T) {
	tab := testTable(t)
	frac := 0.25
	got, err := Noise{Model: NoiseUniform, Frac: frac, Seed: 7}.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	orig := tab.Entries()
	for i, e := range got.Entries() {
		for k, v := range e.TimeMs {
			ratio := v / orig[i].TimeMs[k]
			if ratio < 1-frac-1e-12 || ratio > 1+frac+1e-12 {
				t.Errorf("uniform factor %v for %s/%s outside [%v, %v]", ratio, e.Kernel, k, 1-frac, 1+frac)
			}
		}
	}
}

func TestNoiseBiasExact(t *testing.T) {
	tab := testTable(t)
	n := Noise{Bias: map[platform.Kind]float64{platform.GPU: 1.3}}
	got, err := n.Apply(tab)
	if err != nil {
		t.Fatal(err)
	}
	orig := tab.Entries()
	for i, e := range got.Entries() {
		for k, v := range e.TimeMs {
			want := orig[i].TimeMs[k]
			if k == platform.GPU {
				want *= 1.3
			}
			if math.Abs(v-want) > 1e-12*want {
				t.Errorf("%s/%d/%s = %v, want %v", e.Kernel, e.DataElems, k, v, want)
			}
		}
	}
}

func TestNoisePositiveTimes(t *testing.T) {
	tab := testTable(t)
	for _, n := range []Noise{
		{Model: NoiseUniform, Frac: 0.99, Seed: 1},
		{Model: NoiseLogNormal, Frac: 2, Seed: 1},
		{Model: NoiseDrift, Frac: 0.5, Seed: 1},
	} {
		got, err := n.Apply(tab)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range got.Entries() {
			for k, v := range e.TimeMs {
				if !(v > 0) {
					t.Errorf("%v: non-positive actual time %v for %s/%s", n, v, e.Kernel, k)
				}
			}
		}
	}
}

func TestNoiseValidation(t *testing.T) {
	cases := []Noise{
		{Model: NoiseUniform, Frac: 1},
		{Model: NoiseUniform, Frac: -0.1},
		{Model: NoiseLogNormal, Frac: -1},
		{Model: NoiseLogNormal, Frac: math.Inf(1)},
		{Model: NoiseDrift, Frac: math.NaN()},
		{Bias: map[platform.Kind]float64{platform.CPU: 0}},
		{Bias: map[platform.Kind]float64{platform.CPU: -2}},
		{Bias: map[platform.Kind]float64{platform.CPU: math.Inf(1)}},
		{Model: NoiseModel(99)},
	}
	for _, n := range cases {
		if _, err := n.Apply(testTable(t)); err == nil {
			t.Errorf("Apply accepted invalid noise %+v", n)
		}
	}
}

func TestParseNoiseModel(t *testing.T) {
	for name, want := range map[string]NoiseModel{
		"uniform": NoiseUniform, "lognormal": NoiseLogNormal, "drift": NoiseDrift,
	} {
		got, err := ParseNoiseModel(name)
		if err != nil || got != want {
			t.Errorf("ParseNoiseModel(%q) = %v, %v; want %v", name, got, err, want)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseNoiseModel("gaussian"); err == nil {
		t.Error("ParseNoiseModel accepted unknown model")
	}
}

func TestNoiseBiasUnknownKindRejected(t *testing.T) {
	// A typo'd kind would otherwise silently never apply.
	n := Noise{Bias: map[platform.Kind]float64{platform.Kind("GPUX"): 1.3}}
	if _, err := n.Apply(testTable(t)); err == nil {
		t.Error("bias for a kind absent from the table accepted")
	}
}

// Package perturb models the gap between the scheduler's beliefs and the
// platform's reality: deterministic, seedable estimate-error noise on the
// lookup table and dynamic platform-degradation events (processors slowing
// down or going offline, links losing bandwidth) injected into the
// simulator's actual-time path.
//
// Every policy in this repository decides with estimated execution and
// transfer times; the thesis evaluates the best-case regime where those
// estimates are exact and the platform never changes. This package supplies
// the other regimes: a Noise builds the "actual" table the hardware follows
// while policies keep seeing the clean one (sim.Options.ActualCosts), and a
// Schedule stretches actual execution and transfer durations over time
// windows (sim.Options.Degrade). All randomness is seeded and all
// iteration orders fixed, so identical inputs always produce identical
// perturbations.
package perturb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/lut"
	"repro/internal/platform"
)

// NoiseModel selects the shape of the multiplicative estimate error.
type NoiseModel int

const (
	// NoiseUniform multiplies every table entry by an independent uniform
	// factor in [1-Frac, 1+Frac]. The zero value: Frac 0 is the identity.
	NoiseUniform NoiseModel = iota
	// NoiseLogNormal multiplies every entry by exp(Frac·N(0,1)) — median-1
	// heavy-tailed error, the classic model for measurement noise on
	// execution times.
	NoiseLogNormal
	// NoiseDrift is stale-estimate drift: a per-kind multiplicative random
	// walk across table entries (in sorted kernel/size order), each step
	// exp(Frac·N(0,1)). Errors are correlated — entries measured "later"
	// have drifted further from the estimates, mimicking a table that aged
	// between measurement and use.
	NoiseDrift
)

// String names the model.
func (m NoiseModel) String() string {
	switch m {
	case NoiseUniform:
		return "uniform"
	case NoiseLogNormal:
		return "lognormal"
	case NoiseDrift:
		return "drift"
	default:
		return fmt.Sprintf("NoiseModel(%d)", int(m))
	}
}

// ParseNoiseModel resolves a model by name: "uniform", "lognormal" or
// "drift".
func ParseNoiseModel(s string) (NoiseModel, error) {
	switch s {
	case "uniform":
		return NoiseUniform, nil
	case "lognormal":
		return NoiseLogNormal, nil
	case "drift":
		return NoiseDrift, nil
	default:
		return 0, fmt.Errorf("perturb: unknown noise model %q (known: uniform, lognormal, drift)", s)
	}
}

// Noise describes one estimate-error model: what the platform actually does
// relative to the table the scheduler trusts. Apply builds the actual table
// from the estimate table; the same Noise always builds the same table.
type Noise struct {
	// Model is the error shape; the zero value is NoiseUniform, so the zero
	// Noise is the identity (Frac 0, no bias).
	Model NoiseModel
	// Frac is the error magnitude: the uniform half-width (must be in
	// [0, 1)), the log-normal sigma, or the drift step sigma (both must be
	// non-negative and finite). 0 disables the random component.
	Frac float64
	// Bias multiplies every actual time of a processor kind by a fixed
	// factor, independent of Frac: Bias[GPU] = 1.3 means GPU kernels
	// actually run 30% slower than estimated — "the GPU estimates are 30%
	// optimistic". Factors must be positive and finite; absent kinds are
	// unbiased.
	Bias map[platform.Kind]float64
	// Seed drives the random draws. Identical (Model, Frac, Bias, Seed)
	// always perturb identically.
	Seed int64
}

// IsZero reports whether the noise is the identity: no random component and
// no bias. Apply returns its input unchanged for a zero Noise.
func (n Noise) IsZero() bool { return n.Frac == 0 && len(n.Bias) == 0 }

// Validate checks magnitudes: uniform Frac in [0,1) (actual times must stay
// positive), log-normal/drift Frac non-negative and finite, bias factors
// positive and finite.
func (n Noise) Validate() error {
	switch n.Model {
	case NoiseUniform:
		if n.Frac < 0 || n.Frac >= 1 || math.IsNaN(n.Frac) {
			return fmt.Errorf("perturb: uniform noise fraction must be in [0,1), got %v", n.Frac)
		}
	case NoiseLogNormal, NoiseDrift:
		if n.Frac < 0 || math.IsNaN(n.Frac) || math.IsInf(n.Frac, 0) {
			return fmt.Errorf("perturb: %s noise sigma must be non-negative and finite, got %v", n.Model, n.Frac)
		}
	default:
		return fmt.Errorf("perturb: unknown noise model %d", int(n.Model))
	}
	// Validate biases in sorted kind order: with several invalid entries
	// the reported one must not depend on map iteration order.
	for _, k := range n.sortedBiasKinds() {
		if b := n.Bias[k]; !(b > 0) || math.IsInf(b, 1) {
			return fmt.Errorf("perturb: bias for kind %s must be positive and finite, got %v", k, b)
		}
	}
	return nil
}

// sortedBiasKinds returns the Bias keys in sorted order, for
// deterministic iteration and error reporting.
func (n Noise) sortedBiasKinds() []platform.Kind {
	kinds := make([]platform.Kind, 0, len(n.Bias))
	for k := range n.Bias { //lint:ordered — collected then sorted just below
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// Apply returns the actual-time table: a copy of t with every (entry, kind)
// execution time multiplied by the model's factor and the kind's bias.
// Entries are visited in sorted (kernel, size) order and kinds in sorted
// order, so the draw sequence — and therefore the output — is fully
// determined by the Noise. A zero Noise returns t itself.
func (n Noise) Apply(t *lut.Table) (*lut.Table, error) {
	if t == nil {
		return nil, fmt.Errorf("perturb: Apply requires a table")
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	kinds := t.Kinds()
	// A bias for a kind the table does not cover would silently never
	// apply — a typo'd -bias flag reporting unbiased results as biased —
	// so reject it here, where the table is known. Checked in sorted kind
	// order so the reported kind is deterministic.
	for _, k := range n.sortedBiasKinds() {
		known := false
		for _, tk := range kinds {
			if k == tk {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("perturb: bias names kind %s, which the table does not cover (kinds: %v)", k, kinds)
		}
	}
	if n.IsZero() {
		return t, nil
	}
	r := rand.New(rand.NewSource(n.Seed))
	entries := t.Entries()
	walk := make(map[platform.Kind]float64, len(kinds))
	for i := range entries {
		for _, k := range kinds {
			f := 1.0
			switch n.Model {
			case NoiseUniform:
				f = 1 + n.Frac*(2*r.Float64()-1)
			case NoiseLogNormal:
				f = math.Exp(n.Frac * r.NormFloat64())
			case NoiseDrift:
				w, ok := walk[k]
				if !ok {
					w = 1
				}
				w *= math.Exp(n.Frac * r.NormFloat64())
				walk[k] = w
				f = w
			}
			if b, ok := n.Bias[k]; ok {
				f *= b
			}
			entries[i].TimeMs[k] *= f
		}
	}
	return lut.New(entries)
}

package stats

import (
	"fmt"
	"math"
)

// histRef is the smallest magnitude a Histogram resolves (1 µs in the
// repository's millisecond unit); everything at or below it shares one
// bucket.
const histRef = 1e-3

// Histogram accumulates a non-negative sample distribution in
// logarithmically spaced buckets: bucket i covers [ref·gⁱ, ref·gⁱ⁺¹) for
// growth factor g, so any quantile estimate is within a factor g of the
// exact value while memory stays O(log(max/min)) regardless of stream
// length. Histograms with equal growth merge exactly, which is what lets
// the shards of a long-horizon streaming run aggregate their latency
// distributions without retaining per-kernel samples.
//
// The zero Histogram is not usable; construct with NewHistogram. Methods
// are not safe for concurrent use.
type Histogram struct {
	growth  float64
	invLogG float64  // 1 / ln(growth)
	counts  []uint64 // counts[i]: samples in [histRef·growthⁱ, histRef·growthⁱ⁺¹)
	under   uint64   // samples <= histRef
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram returns an empty histogram whose buckets grow by the given
// factor per step; e.g. 1.1 bounds the relative quantile error at 10%.
// growth must be greater than 1.
func NewHistogram(growth float64) (*Histogram, error) {
	if !(growth > 1) || math.IsInf(growth, 1) {
		return nil, fmt.Errorf("stats: histogram growth must be a finite value > 1, got %v", growth)
	}
	return &Histogram{growth: growth, invLogG: 1 / math.Log(growth)}, nil
}

// Growth returns the bucket growth factor.
func (h *Histogram) Growth() float64 { return h.growth }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return int(h.count) }

// Sum returns the total of the recorded samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean of the recorded samples, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest recorded sample, 0 when empty (never -Inf).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, 0 when empty (never +Inf).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Add records one sample. Negative samples are clamped to 0 (latencies and
// delays are non-negative; tiny negative float noise lands in the lowest
// bucket).
func (h *Histogram) Add(x float64) {
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	if h.count == 0 || x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	h.count++
	h.sum += x
	if x <= histRef {
		h.under++
		return
	}
	i := int(math.Log(x/histRef) * h.invLogG)
	if i < 0 {
		i = 0
	}
	for i >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[i]++
}

// Merge folds other into h. Both histograms must share the same growth
// factor; merging is exact (the result is identical to having Added every
// sample into one histogram).
func (h *Histogram) Merge(other *Histogram) error {
	// Growth factors are copied configuration, never computed, so the
	// mergeability check is an exact identity comparison — made explicit
	// by comparing the bit patterns rather than float equality.
	if math.Float64bits(other.growth) != math.Float64bits(h.growth) {
		return fmt.Errorf("stats: cannot merge histograms with growth %v and %v", h.growth, other.growth)
	}
	if other.count == 0 {
		return nil
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	h.under += other.under
	for len(h.counts) < len(other.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	return nil
}

// Quantile estimates the q-quantile of the recorded samples (0 for an
// empty histogram). The estimate is the geometric midpoint of the bucket
// holding the target rank, clamped into [Min, Max], so it is within the
// growth factor of the exact sample quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count-1))
	if rank < h.under {
		return h.min
	}
	seen := h.under
	for i, c := range h.counts {
		seen += c
		if rank < seen {
			mid := histRef * math.Pow(h.growth, float64(i)+0.5)
			return clamp(mid, h.min, h.max)
		}
	}
	return h.max
}

// Summary renders the histogram as a Summary. Std is not recoverable from
// the buckets and is reported as 0; percentiles carry the histogram's
// relative-error bound.
func (h *Histogram) Summary() Summary {
	if h.count == 0 {
		return Summary{}
	}
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Bucket is one non-empty histogram cell: Count samples in [Lo, Hi).
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Buckets returns the non-empty cells in ascending order; the
// under-resolution cell appears first as [0, histRef] (closed at both
// ends). Useful for rendering the distribution.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	if h.under > 0 {
		out = append(out, Bucket{Lo: 0, Hi: histRef, Count: int(h.under)})
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := histRef * math.Pow(h.growth, float64(i))
		out = append(out, Bucket{Lo: lo, Hi: lo * h.growth, Count: int(c)})
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

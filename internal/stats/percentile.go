package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample, interpolating linearly between closest ranks. It returns 0 for
// an empty sample, clamping q into [0, 1]. Callers with unsorted data
// should use Percentile, or sort once and query repeatedly.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Percentile returns the p-th percentile (p50 → p = 50) of an unsorted
// sample, sorting a copy. For many queries over one sample, sort once and
// use Quantile.
func Percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantile(sorted, p/100)
}

// Summary captures one metric's distribution: moments, extrema and the
// tail percentiles open-system latency evaluation reports. The zero value
// describes an empty sample set; unlike raw Min/Max — which return ±Inf
// on empty input — every Summary field is finite, so Summaries embedded
// in results always JSON-encode.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summarize computes a Summary over the sample, sorting a copy of the
// input. An empty input yields the zero Summary.
func Summarize(xs []float64) Summary {
	sorted := append([]float64(nil), xs...)
	return SummarizeInPlace(sorted)
}

// SummarizeInPlace is Summarize without the defensive copy: it sorts xs in
// place, so hot paths can reuse one scratch buffer across calls.
func SummarizeInPlace(xs []float64) Summary {
	sort.Float64s(xs)
	return SummarizeSorted(xs)
}

// SummarizeSorted computes a Summary over an already-ascending sample
// without sorting. Callers that sort through their own machinery (e.g.
// lane-parallel shard sorts) use this to skip the redundant pass; the
// result is identical to SummarizeInPlace on the same multiset.
func SummarizeSorted(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		Count: len(xs),
		Mean:  Mean(xs),
		Std:   StdDev(xs),
		Min:   xs[0],
		Max:   xs[len(xs)-1],
		P50:   Quantile(xs, 0.50),
		P90:   Quantile(xs, 0.90),
		P95:   Quantile(xs, 0.95),
		P99:   Quantile(xs, 0.99),
	}
}

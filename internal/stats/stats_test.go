package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); !almostEq(got, 4) {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if got := Sum(xs); !almostEq(got, 9) {
		t.Errorf("Sum = %v", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +-Inf")
	}
}

func TestArgMin(t *testing.T) {
	if got := ArgMin(nil); got != -1 {
		t.Errorf("ArgMin(nil) = %d", got)
	}
	if got := ArgMin([]float64{3, 1, 1, 5}); got != 1 {
		t.Errorf("ArgMin = %d, want 1 (first of ties)", got)
	}
}

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(100, 84); !almostEq(got, 16) {
		t.Errorf("ImprovementPct = %v, want 16", got)
	}
	if got := ImprovementPct(100, 110); !almostEq(got, -10) {
		t.Errorf("ImprovementPct = %v, want -10", got)
	}
	if got := ImprovementPct(0, 5); got != 0 {
		t.Errorf("ImprovementPct(0,_) = %v, want 0", got)
	}
}

// Property: stddev is translation invariant and non-negative.
func TestStdDevProperties(t *testing.T) {
	f := func(raw []float64, shiftRaw int16) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		sd := StdDev(xs)
		if sd < 0 {
			return false
		}
		shift := float64(shiftRaw)
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = x + shift
		}
		return math.Abs(StdDev(ys)-sd) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
		{-0.5, 10}, {1.5, 50}, // clamped
		{0.125, 15}, // interpolated
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Quantile(single, .99) = %v, want 7", got)
	}
}

func TestPercentileMatchesQuantileOnUnsorted(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if got, want := Percentile(xs, 50), Quantile(sorted, 0.5); got != want {
		t.Errorf("Percentile(50) = %v, want %v", got, want)
	}
	// Percentile must not mutate its input.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarizeEmptyIsFiniteAndEncodable(t *testing.T) {
	s := Summarize(nil)
	if s != (Summary{}) {
		t.Errorf("Summarize(empty) = %+v, want zero Summary", s)
	}
	// The whole point of Summary over raw Min/Max: empty aggregates must
	// survive encoding/json, which rejects ±Inf.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty Summary does not encode: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Errorf("Mean = %v, want 2.5", s.Mean)
	}
	if math.Abs(s.P50-2.5) > 1e-12 {
		t.Errorf("P50 = %v, want 2.5", s.P50)
	}
	if s.P99 > s.Max || s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("percentiles not monotone: %+v", s)
	}
}

func TestSummarizeInPlaceSorts(t *testing.T) {
	xs := []float64{9, 1, 5}
	s := SummarizeInPlace(xs)
	if !sort.Float64sAreSorted(xs) {
		t.Error("SummarizeInPlace left input unsorted")
	}
	if s.Min != 1 || s.Max != 9 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	const growth = 1.05
	h, err := NewHistogram(growth)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	var xs []float64
	for i := 0; i < 5000; i++ {
		x := r.ExpFloat64() * 37 // latency-shaped sample
		xs = append(xs, x)
		h.Add(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := Quantile(xs, q)
		got := h.Quantile(q)
		if got < exact/growth-1e-9 || got > exact*growth+1e-9 {
			t.Errorf("Quantile(%v) = %v, outside growth bound of exact %v", q, got, exact)
		}
	}
	if h.Count() != 5000 {
		t.Errorf("Count = %d", h.Count())
	}
	if math.Abs(h.Min()-xs[0]) > 1e-12 || math.Abs(h.Max()-xs[len(xs)-1]) > 1e-12 {
		t.Errorf("Min/Max = %v/%v, want %v/%v", h.Min(), h.Max(), xs[0], xs[len(xs)-1])
	}
}

func TestHistogramMergeIsExact(t *testing.T) {
	a, _ := NewHistogram(1.1)
	b, _ := NewHistogram(1.1)
	all, _ := NewHistogram(1.1)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 800; i++ {
		x := r.Float64() * 100
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged counters differ: %+v vs %+v", a.Summary(), all.Summary())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("Quantile(%v): merged %v != combined %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	mismatched, _ := NewHistogram(2)
	if err := a.Merge(mismatched); err == nil {
		t.Error("merge of mismatched growth accepted")
	}
}

func TestHistogramMergeDisjointBucketRanges(t *testing.T) {
	// lo holds sub-millisecond samples, hi holds samples five orders of
	// magnitude larger: their bucket ranges are fully disjoint, so merging
	// must extend the receiver's bucket array and keep both populations.
	lo, _ := NewHistogram(1.3)
	hi, _ := NewHistogram(1.3)
	all, _ := NewHistogram(1.3)
	for i := 1; i <= 100; i++ {
		x := 0.002 * float64(i) // 0.002 .. 0.2 ms
		lo.Add(x)
		all.Add(x)
	}
	for i := 1; i <= 100; i++ {
		x := 1e4 * float64(i) // 1e4 .. 1e6 ms
		hi.Add(x)
		all.Add(x)
	}
	if err := lo.Merge(hi); err != nil {
		t.Fatal(err)
	}
	if lo.Count() != all.Count() || lo.Sum() != all.Sum() {
		t.Errorf("merged count/sum %d/%v, want %d/%v", lo.Count(), lo.Sum(), all.Count(), all.Sum())
	}
	if lo.Min() != 0.002 || lo.Max() != 1e6 {
		t.Errorf("merged min/max %v/%v, want 0.002/1e6", lo.Min(), lo.Max())
	}
	for _, q := range []float64{0, 0.25, 0.49, 0.51, 0.75, 0.99, 1} {
		if lo.Quantile(q) != all.Quantile(q) {
			t.Errorf("Quantile(%v): merged %v != direct-add %v", q, lo.Quantile(q), all.Quantile(q))
		}
	}
	// The median straddles the gap: the p49 estimate stays in the low
	// population, p51 in the high one.
	if p := lo.Quantile(0.49); p > 1 {
		t.Errorf("p49 = %v, expected a low-population value", p)
	}
	if p := lo.Quantile(0.51); p < 1e3 {
		t.Errorf("p51 = %v, expected a high-population value", p)
	}
	// Merging the small-range histogram into the large-range one must give
	// identical quantiles (merge is symmetric in content).
	hi2, _ := NewHistogram(1.3)
	for i := 1; i <= 100; i++ {
		hi2.Add(1e4 * float64(i))
	}
	lo2, _ := NewHistogram(1.3)
	for i := 1; i <= 100; i++ {
		lo2.Add(0.002 * float64(i))
	}
	if err := hi2.Merge(lo2); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if hi2.Quantile(q) != lo.Quantile(q) {
			t.Errorf("Quantile(%v): hi<-lo %v != lo<-hi %v", q, hi2.Quantile(q), lo.Quantile(q))
		}
	}
}

func TestHistogramEmptyAndEdgeCases(t *testing.T) {
	if _, err := NewHistogram(1); err == nil {
		t.Error("growth 1 accepted")
	}
	if _, err := NewHistogram(0.5); err == nil {
		t.Error("growth < 1 accepted")
	}
	h, _ := NewHistogram(1.2)
	if h.Quantile(0.99) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report finite zeros")
	}
	if s := h.Summary(); s != (Summary{}) {
		t.Errorf("empty histogram Summary = %+v", s)
	}
	h.Add(0) // zero and sub-resolution samples land in the under bucket
	h.Add(-3)
	h.Add(1e-9)
	if h.Count() != 3 || h.Quantile(0.5) != 0 {
		t.Errorf("under-bucket handling: count %d, p50 %v", h.Count(), h.Quantile(0.5))
	}
	empty, _ := NewHistogram(1.2)
	if err := empty.Merge(h); err != nil {
		t.Fatal(err)
	}
	if empty.Count() != 3 || empty.Min() != 0 {
		t.Errorf("merge into empty: %+v", empty.Summary())
	}
}

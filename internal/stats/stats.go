// Package stats provides the small statistical toolkit the thesis uses:
// means, population standard deviations (paper Eq. 12), extrema and the
// percentage-improvement metrics of §4.4 (Eq. 13–14).
package stats

import "math"

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (divide by N), matching
// the thesis's λ standard-deviation definition (Eq. 12). Returns 0 for
// empty input.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Sum returns the total of the slice.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the minimum element, ties to the smaller
// index, or -1 for an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ImprovementPct implements the thesis's improvement metric (Eq. 13–14):
// the percentage by which `ours` improves on `baseline`:
//
//	(baseline - ours) / baseline * 100
//
// Positive means ours is better (smaller). Returns 0 when baseline is 0.
func ImprovementPct(baseline, ours float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - ours) / baseline * 100
}

// Package stats is the repository's statistical toolkit, shared by the
// simulator's latency accounting and the online scheduler's live
// telemetry.
//
// Three layers, from exact to streaming:
//
//   - Scalar helpers over samples: Mean, StdDev (population, the thesis's
//     λ standard deviation, Eq. 12), Sum, Min/Max/ArgMin, and the
//     percentage-improvement metric of §4.4 (Eq. 13–14).
//   - Exact order statistics: Quantile/Percentile interpolate between
//     closest ranks, Summarize condenses a sample into a Summary
//     (count/mean/std/extrema plus p50/p90/p95/p99). These retain and
//     sort the full sample — right for per-run results.
//   - Streaming distributions: Histogram accumulates samples in
//     logarithmically spaced buckets, bounding relative quantile error by
//     its growth factor at O(log(max/min)) memory. Histograms with equal
//     growth Merge exactly, which is what lets the shards of a streaming
//     run — and the per-processor telemetry of the live scheduler —
//     aggregate latency distributions without retaining per-task samples.
//
// Every Summary-producing path defines the empty case as the zero value
// (no ±Inf leaks into JSON output).
package stats

import "math"

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (divide by N), matching
// the thesis's λ standard-deviation definition (Eq. 12). Returns 0 for
// empty input.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Sum returns the total of the slice.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the minimum element, ties to the smaller
// index, or -1 for an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ImprovementPct implements the thesis's improvement metric (Eq. 13–14):
// the percentage by which `ours` improves on `baseline`:
//
//	(baseline - ours) / baseline * 100
//
// Positive means ours is better (smaller). Returns 0 when baseline is 0.
func ImprovementPct(baseline, ours float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - ours) / baseline * 100
}

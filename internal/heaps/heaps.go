// Package heaps provides allocation-free binary min-heap primitives over
// plain slices, shared by the simulator's event queue and the heap-Kahn
// frontiers in dfg and policy. Callers own the slice and the ordering:
// append then Up to push, swap-root-with-last then Down to pop. With a
// strict total order (no equal elements), the pop sequence is unique
// regardless of internal arrangement, so refactoring between callers can
// never change simulation output.
package heaps

// Up restores the heap property after the element at index i changed
// (typically: just appended). less must be a strict ordering; the minimum
// ends up at index 0.
func Up[T any](h []T, i int, less func(a, b T) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// Down restores the heap property from index i towards the leaves
// (typically i = 0 after the caller moved the last element to the root and
// truncated the slice).
func Down[T any](h []T, i int, less func(a, b T) bool) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && less(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

package heaps

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapSortsDistinctElements(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(200)
		perm := r.Perm(n) // distinct elements: pop order must be unique
		var h []int
		for _, v := range perm {
			h = append(h, v)
			Up(h, len(h)-1, less)
		}
		var got []int
		for len(h) > 0 {
			got = append(got, h[0])
			last := len(h) - 1
			h[0] = h[last]
			h = h[:last]
			Down(h, 0, less)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("trial %d: pop order not sorted: %v", trial, got)
		}
		if len(got) != n {
			t.Fatalf("trial %d: popped %d of %d", trial, len(got), n)
		}
	}
}

func TestHeapZeroAlloc(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	h := make([]int, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		h = h[:0]
		for v := 63; v >= 0; v-- {
			h = append(h, v)
			Up(h, len(h)-1, less)
		}
		for len(h) > 0 {
			last := len(h) - 1
			h[0] = h[last]
			h = h[:last]
			Down(h, 0, less)
		}
	})
	if allocs != 0 {
		t.Errorf("heap ops allocated %.1f per run", allocs)
	}
}

package sim

import (
	"math"
	"testing"

	"repro/internal/dfg"
	"repro/internal/platform"
)

func TestPrepareCostsValidation(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	if _, err := PrepareCosts(nil, env.sys, env.tab, CostConfig{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := PrepareCosts(g, env.sys, env.tab, CostConfig{ElemBytes: -1}); err == nil {
		t.Error("negative ElemBytes accepted")
	}
	// Kernel missing from the table.
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: "mystery", DataElems: 10})
	bad := b.MustBuild()
	if _, err := PrepareCosts(bad, env.sys, env.tab, CostConfig{}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestCostsExecAndBest(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	ka := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	kb := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	g := b.MustBuild()
	c := mustCosts(t, g, env)

	cpu := env.sys.ByKind(platform.CPU)[0]
	gpu := env.sys.ByKind(platform.GPU)[0]
	fpga := env.sys.ByKind(platform.FPGA)[0]

	if got := c.Exec(ka, cpu); got != 10 {
		t.Errorf("Exec(a,cpu) = %v, want 10", got)
	}
	if p, ms := c.BestProc(ka); p != gpu || ms != 2 {
		t.Errorf("BestProc(a) = %d/%v, want gpu/2", p, ms)
	}
	if p, ms := c.BestProc(kb); p != fpga || ms != 1 {
		t.Errorf("BestProc(b) = %d/%v, want fpga/1", p, ms)
	}
	if got := c.MeanExec(ka); math.Abs(got-(10+2+50)/3.0) > 1e-9 {
		t.Errorf("MeanExec(a) = %v", got)
	}
	ranked := c.RankedProcs(ka)
	if ranked[0] != gpu || ranked[1] != cpu || ranked[2] != fpga {
		t.Errorf("RankedProcs(a) = %v, want [gpu cpu fpga]", ranked)
	}
}

func TestTransferMs(t *testing.T) {
	env := tiny(t, 4) // 4 GB/s
	c := mustCosts(t, singleKernelGraph(t), env)
	if got := c.TransferMs(1000, 0, 0); got != 0 {
		t.Errorf("same-proc transfer = %v, want 0", got)
	}
	// 1e6 elems * 4 B = 4e6 B at 4e6 B/ms = 1 ms.
	if got := c.TransferMs(1_000_000, 0, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("transfer = %v, want 1", got)
	}
}

func TestTransferUnusableLink(t *testing.T) {
	b := platform.NewBuilder()
	p0 := b.AddProcessor(platform.CPU, "")
	p1 := b.AddProcessor(platform.GPU, "")
	sys := b.MustBuild() // no rates set: links are 0 GB/s
	tab := tiny(t, 4).tab
	gb := dfg.NewBuilder()
	gb.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	g := gb.MustBuild()
	c, err := PrepareCosts(g, sys, tab, CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TransferMs(1, p0, p1); got != unusableLinkMs {
		t.Errorf("unusable link priced %v, want %v", got, unusableLinkMs)
	}
}

func TestTransferInModes(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	// Two predecessors, each shipping 1e6 elements (1 ms each on 4 GB/s).
	p1 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1_000_000})
	p2 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1_000_000})
	k := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(p1, k).AddEdge(p2, k)
	g := b.MustBuild()

	cpu := platform.ProcID(0)
	gpu := platform.ProcID(1)
	fpga := platform.ProcID(2)
	placement := func(dfg.KernelID) platform.ProcID { return gpu } // both preds on GPU

	cMax, err := PrepareCosts(g, env.sys, env.tab, CostConfig{Mode: TransferMax})
	if err != nil {
		t.Fatal(err)
	}
	if got := cMax.TransferIn(k, cpu, placement); math.Abs(got-1) > 1e-9 {
		t.Errorf("max mode = %v, want 1", got)
	}
	cSum, err := PrepareCosts(g, env.sys, env.tab, CostConfig{Mode: TransferSum})
	if err != nil {
		t.Fatal(err)
	}
	if got := cSum.TransferIn(k, cpu, placement); math.Abs(got-2) > 1e-9 {
		t.Errorf("sum mode = %v, want 2", got)
	}
	// Predecessors co-located with the kernel cost nothing.
	onSame := func(dfg.KernelID) platform.ProcID { return cpu }
	if got := cMax.TransferIn(k, cpu, onSame); got != 0 {
		t.Errorf("co-located transfer = %v, want 0", got)
	}
	_ = fpga
}

func TestMeanTransfer(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	u := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1_000_000})
	v := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(u, v)
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	// 6 ordered distinct pairs, each 1 ms, averaged over 9 ordered pairs
	// (diagonal contributes 0): 6/9 ms.
	want := 6.0 / 9.0
	if got := c.MeanTransfer(u); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanTransfer = %v, want %v", got, want)
	}
}

func TestTransferModeString(t *testing.T) {
	if TransferMax.String() != "max" || TransferSum.String() != "sum" {
		t.Error("TransferMode.String wrong")
	}
}

func TestElemBytesScalesTransfers(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	c8, err := PrepareCosts(g, env.sys, env.tab, CostConfig{ElemBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	c4, err := PrepareCosts(g, env.sys, env.tab, CostConfig{ElemBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	r8 := c8.TransferMs(1000, 0, 1)
	r4 := c4.TransferMs(1000, 0, 1)
	if math.Abs(r8-2*r4) > 1e-12 {
		t.Errorf("8-byte transfer %v should be 2x 4-byte %v", r8, r4)
	}
}

package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dfg"
)

func TestSojournAndQueueWaitMetrics(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000}) // GPU 2ms
	k1 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	// k1 arrives at t=10, after k0 (arrival 0) has finished at 2: both run
	// on the GPU with zero queueing.
	res, err := Run(c, &greedy{}, Options{ArrivalTimes: []float64{0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := res.PlacementOf(k0), res.PlacementOf(k1)
	if p0.Arrival != 0 || p1.Arrival != 10 {
		t.Errorf("arrivals = %v, %v; want 0, 10", p0.Arrival, p1.Arrival)
	}
	if got := p1.Sojourn(); math.Abs(got-2) > 1e-9 {
		t.Errorf("k1 sojourn = %v, want 2 (exec only)", got)
	}
	if got := p1.QueueWait(); math.Abs(got-0) > 1e-9 {
		t.Errorf("k1 queue wait = %v, want 0", got)
	}
	// Result-level summaries aggregate both kernels' sojourns {2, 2}.
	if res.Sojourn.Count != 2 {
		t.Fatalf("sojourn count = %d, want 2", res.Sojourn.Count)
	}
	if math.Abs(res.Sojourn.P50-2) > 1e-9 || math.Abs(res.Sojourn.P99-2) > 1e-9 {
		t.Errorf("sojourn summary = %+v, want all-2", res.Sojourn)
	}
	if res.QueueWait.Count != 2 || res.QueueWait.Max > 1e-9 {
		t.Errorf("queue wait summary = %+v, want zeros", res.QueueWait)
	}
}

func TestSojournSeesQueueingUnderContention(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	// Three copies of "a" arriving together: the greedy policy spreads them
	// over GPU (2ms), CPU (10ms), FPGA (50ms), so the slowest placement's
	// sojourn dominates the p99.
	for i := 0; i < 3; i++ {
		b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	}
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	res, err := Run(c, &greedy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sojourn.Count != 3 {
		t.Fatalf("count = %d", res.Sojourn.Count)
	}
	if res.Sojourn.Max < res.Sojourn.P50 || res.Sojourn.P99 > res.Sojourn.Max {
		t.Errorf("summary not internally consistent: %+v", res.Sojourn)
	}
	if res.Sojourn.Max <= 2 {
		t.Errorf("max sojourn = %v, want > 2 (contention must show)", res.Sojourn.Max)
	}
}

func TestLatencySummariesRoundTripJSON(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	res, err := Run(c, &greedy{}, Options{ArrivalTimes: []float64{0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Sojourn != res.Sojourn || back.QueueWait != res.QueueWait {
		t.Errorf("summaries changed in round trip:\n got %+v / %+v\nwant %+v / %+v",
			back.Sojourn, back.QueueWait, res.Sojourn, res.QueueWait)
	}
	for i := range res.Placements {
		if back.Placements[i].Arrival != res.Placements[i].Arrival {
			t.Errorf("placement %d arrival changed: %v vs %v",
				i, back.Placements[i].Arrival, res.Placements[i].Arrival)
		}
	}
}

// TestWriteJSONEmptyResult pins the ±Inf regression: aggregates built over
// an empty run must serialize. encoding/json rejects ±Inf, which raw
// stats.Min/Max produce on empty input.
func TestWriteJSONEmptyResult(t *testing.T) {
	res := &Result{Policy: "empty"}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("empty result does not serialize: %v", err)
	}
	if s := buf.String(); strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
		t.Fatalf("empty result JSON contains non-finite values:\n%s", s)
	}
	back, err := ReadResultJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Sojourn != (res.Sojourn) || len(back.Placements) != 0 {
		t.Errorf("empty round trip changed result: %+v", back)
	}
}

package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
)

// testTable builds a tiny hand-checkable lookup table:
//
//	kernel "a": CPU 10, GPU 2, FPGA 50
//	kernel "b": CPU 4,  GPU 8, FPGA 1
type tinyEnv struct {
	sys *platform.System
	tab *lut.Table
}

func tiny(t *testing.T, rate platform.GBps) tinyEnv {
	t.Helper()
	tab, err := lut.New([]lut.Entry{
		{Kernel: "a", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 10, platform.GPU: 2, platform.FPGA: 50}},
		{Kernel: "b", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 4, platform.GPU: 8, platform.FPGA: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tinyEnv{sys: platform.PaperSystem(rate), tab: tab}
}

// greedy assigns each ready kernel (FCFS) to the available processor with
// the minimum execution time; if none is available, it waits.
type greedy struct{ c *Costs }

func (g *greedy) Name() string           { return "greedy" }
func (g *greedy) Prepare(c *Costs) error { g.c = c; return nil }
func (g *greedy) Select(st *State) []Assignment {
	var out []Assignment
	avail := map[platform.ProcID]bool{}
	for _, p := range st.AvailableProcs() {
		avail[p] = true
	}
	for _, k := range st.Ready() {
		bestP := platform.ProcID(-1)
		best := math.Inf(1)
		for p := range avail {
			if avail[p] && g.c.Exec(k, p) < best {
				best, bestP = g.c.Exec(k, p), p
			}
		}
		if bestP >= 0 {
			avail[bestP] = false
			out = append(out, Assignment{Kernel: k, Proc: bestP})
		}
	}
	return out
}

// never is a policy that refuses to assign anything.
type never struct{}

func (never) Name() string               { return "never" }
func (never) Prepare(*Costs) error       { return nil }
func (never) Select(*State) []Assignment { return nil }

// fixed replays a fixed assignment list, all at t=0.
type fixed struct {
	as   []Assignment
	done bool
}

func (f *fixed) Name() string         { return "fixed" }
func (f *fixed) Prepare(*Costs) error { return nil }
func (f *fixed) Select(*State) []Assignment {
	if f.done {
		return nil
	}
	f.done = true
	return f.as
}

func mustCosts(t *testing.T, g *dfg.Graph, env tinyEnv) *Costs {
	t.Helper()
	c, err := PrepareCosts(g, env.sys, env.tab, CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func singleKernelGraph(t *testing.T) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	return b.MustBuild()
}

func TestRunSingleKernel(t *testing.T) {
	env := tiny(t, 4)
	c := mustCosts(t, singleKernelGraph(t), env)
	res, err := Run(c, &greedy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Best proc for "a" is GPU (2 ms), no transfers.
	if res.MakespanMs != 2 {
		t.Errorf("makespan = %v, want 2", res.MakespanMs)
	}
	pl := res.PlacementOf(0)
	if env.sys.KindOf(pl.Proc) != platform.GPU {
		t.Errorf("kernel ran on %v, want GPU", env.sys.KindOf(pl.Proc))
	}
	if pl.Lambda() != 0 {
		t.Errorf("λ = %v, want 0", pl.Lambda())
	}
	if err := res.Validate(c.Graph(), env.sys); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRunChainWithTransfer(t *testing.T) {
	env := tiny(t, 4) // 4 GB/s -> 4e6 bytes per ms
	b := dfg.NewBuilder()
	// a (best GPU) feeds b (best FPGA). b must wait for a and pay a transfer.
	a := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	bb := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(a, bb)
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	res, err := Run(c, &greedy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a on GPU finishes at 2. Transfer 1000 elems * 4 B = 4000 B at 4e6 B/ms
	// = 0.001 ms. b on FPGA: exec 1.
	want := 2 + 0.001 + 1.0
	if math.Abs(res.MakespanMs-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.MakespanMs, want)
	}
	plB := res.PlacementOf(bb)
	if math.Abs(plB.Lambda()-0.001) > 1e-9 {
		t.Errorf("λ(b) = %v, want 0.001 (transfer only)", plB.Lambda())
	}
	if err := res.Validate(g, env.sys); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Transfer time must be booked on b's processor.
	if got := res.ProcStats[plB.Proc].XferMs; math.Abs(got-0.001) > 1e-9 {
		t.Errorf("XferMs = %v, want 0.001", got)
	}
}

func TestRunSameProcNoTransfer(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	a := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	a2 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	b.AddEdge(a, a2)
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	// Force both onto the GPU.
	gpu := env.sys.ByKind(platform.GPU)[0]
	res, err := Run(c, &fixed{as: []Assignment{{a, gpu}, {a2, gpu}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanMs != 4 {
		t.Errorf("makespan = %v, want 4 (2+2, no transfer)", res.MakespanMs)
	}
	if res.ProcStats[gpu].XferMs != 0 {
		t.Errorf("XferMs = %v, want 0", res.ProcStats[gpu].XferMs)
	}
}

func TestRunQueuedAssignments(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	k1 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	gpu := env.sys.ByKind(platform.GPU)[0]
	// Both queued on the GPU at t=0: FIFO execution, makespan 4.
	res, err := Run(c, &fixed{as: []Assignment{{k0, gpu}, {k1, gpu}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanMs != 4 {
		t.Errorf("makespan = %v, want 4", res.MakespanMs)
	}
	p0, p1 := res.PlacementOf(k0), res.PlacementOf(k1)
	if p0.Finish != 2 || p1.ExecStart != 2 || p1.Finish != 4 {
		t.Errorf("FIFO order broken: %+v / %+v", p0, p1)
	}
	// Second kernel waited 2 ms while ready -> λ = 2.
	if p1.Lambda() != 2 {
		t.Errorf("λ(k1) = %v, want 2", p1.Lambda())
	}
	if res.Lambda.Count != 1 || res.Lambda.TotalMs != 2 {
		t.Errorf("Lambda stats = %+v, want count 1 total 2", res.Lambda)
	}
}

func TestStaticAssignBeforeReady(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	a := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	dep := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(a, dep)
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	gpu := env.sys.ByKind(platform.GPU)[0]
	fpga := env.sys.ByKind(platform.FPGA)[0]
	// Assign both at t=0 like a static policy; dep is not ready yet and its
	// processor must wait for a to finish.
	res, err := Run(c, &fixed{as: []Assignment{{a, gpu}, {dep, fpga}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl := res.PlacementOf(dep)
	if pl.Assign != 0 {
		t.Errorf("Assign = %v, want 0", pl.Assign)
	}
	if pl.TransferStart < 2 {
		t.Errorf("dep started transfers at %v before its pred finished at 2", pl.TransferStart)
	}
	if err := res.Validate(g, env.sys); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := tiny(t, 4)
	c := mustCosts(t, singleKernelGraph(t), env)
	_, err := Run(c, never{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestDoubleAssignPanics(t *testing.T) {
	env := tiny(t, 4)
	c := mustCosts(t, singleKernelGraph(t), env)
	defer func() {
		if recover() == nil {
			t.Error("double assignment did not panic")
		}
	}()
	gpu := env.sys.ByKind(platform.GPU)[0]
	cpu := env.sys.ByKind(platform.CPU)[0]
	Run(c, &fixed{as: []Assignment{{0, gpu}, {0, cpu}}}, Options{}) //nolint:errcheck
}

func TestSchedOverhead(t *testing.T) {
	env := tiny(t, 4)
	c := mustCosts(t, singleKernelGraph(t), env)
	res, err := Run(c, &greedy{}, Options{SchedOverheadMs: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MakespanMs-2.5) > 1e-9 {
		t.Errorf("makespan = %v, want 2.5 (overhead + exec)", res.MakespanMs)
	}
	if l := res.PlacementOf(0).Lambda(); math.Abs(l-0.5) > 1e-9 {
		t.Errorf("λ = %v, want 0.5", l)
	}
	if _, err := Run(c, &greedy{}, Options{SchedOverheadMs: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestProcStatAccounting(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	for i := 0; i < 6; i++ {
		name := "a"
		if i%2 == 1 {
			name = "b"
		}
		b.AddKernel(dfg.Kernel{Name: name, DataElems: 1000})
	}
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	res, err := Run(c, &greedy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(g, env.sys); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range res.ProcStats {
		if math.Abs(st.ExecMs+st.XferMs+st.IdleMs-res.MakespanMs) > 1e-9 {
			t.Errorf("proc %d: exec+xfer+idle = %v, want makespan %v",
				st.Proc, st.ExecMs+st.XferMs+st.IdleMs, res.MakespanMs)
		}
		total += st.Kernels
	}
	if total != 6 {
		t.Errorf("kernels across procs = %d, want 6", total)
	}
	if res.Assignments != 6 {
		t.Errorf("Assignments = %d, want 6", res.Assignments)
	}
	if res.SelectCalls < 1 {
		t.Error("SelectCalls not counted")
	}
}

func TestStateAccessors(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	k1 := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(k0, k1)
	g := b.MustBuild()
	c := mustCosts(t, g, env)

	probed := false
	probe := probePolicy{c: c, f: func(st *State) {
		if probed {
			return
		}
		probed = true
		ready := st.Ready()
		if len(ready) != 1 || ready[0] != k0 {
			t.Errorf("Ready = %v, want [%d]", ready, k0)
		}
		if !st.Unassigned(k0) || st.Finished(k0) {
			t.Error("k0 state flags wrong at t=0")
		}
		if got := len(st.AvailableProcs()); got != 3 {
			t.Errorf("AvailableProcs = %d, want 3", got)
		}
		if st.Now() != 0 {
			t.Errorf("Now = %v", st.Now())
		}
		if _, ok := st.ProcOf(k0); ok {
			t.Error("ProcOf before assignment should be false")
		}
		if st.RecentExecAvg(0, 3) != 0 {
			t.Error("RecentExecAvg with no history should be 0")
		}
		if st.BusyUntil(0) != 0 {
			t.Errorf("BusyUntil(idle) = %v, want Now", st.BusyUntil(0))
		}
	}}
	if _, err := Run(c, &probe, Options{}); err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Error("probe never ran")
	}
}

// probePolicy runs a callback then behaves like greedy.
type probePolicy struct {
	c *Costs
	f func(*State)
	g greedy
}

func (p *probePolicy) Name() string { return "probe" }
func (p *probePolicy) Prepare(c *Costs) error {
	p.c = c
	return p.g.Prepare(c)
}
func (p *probePolicy) Select(st *State) []Assignment {
	p.f(st)
	return p.g.Select(st)
}

func TestRecentExecAvgAndBusyUntil(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000}) // GPU 2
	k1 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	gpu := env.sys.ByKind(platform.GPU)[0]

	var sawAvg, sawBusy bool
	pol := &scriptedPolicy{
		onSelect: func(st *State, call int) []Assignment {
			switch call {
			case 0:
				// Queue both on the GPU.
				return []Assignment{{k0, gpu}, {k1, gpu}}
			default:
				if st.RecentExecAvg(gpu, 5) == 2 {
					sawAvg = true
				}
				if st.BusyUntil(gpu) >= st.Now() {
					sawBusy = true
				}
				return nil
			}
		},
	}
	if _, err := Run(c, pol, Options{}); err != nil {
		t.Fatal(err)
	}
	if !sawAvg {
		t.Error("RecentExecAvg never reported completed history")
	}
	if !sawBusy {
		t.Error("BusyUntil never probed")
	}
}

type scriptedPolicy struct {
	onSelect func(*State, int) []Assignment
	calls    int
}

func (s *scriptedPolicy) Name() string         { return "scripted" }
func (s *scriptedPolicy) Prepare(*Costs) error { return nil }
func (s *scriptedPolicy) Select(st *State) []Assignment {
	out := s.onSelect(st, s.calls)
	s.calls++
	return out
}

// Property: under the greedy policy, every random DAG yields a valid
// schedule whose makespan is at least the critical-path lower bound
// (fastest exec per kernel, transfers ignored) and at least the
// total-work/np bound on the fastest machine.
func TestGreedyScheduleValidProperty(t *testing.T) {
	env := tiny(t, 8)
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%25) + 1
		pEdge := float64(pRaw%70) / 100
		b := dfg.NewBuilder()
		for i := 0; i < n; i++ {
			name := "a"
			if r.Intn(2) == 1 {
				name = "b"
			}
			b.AddKernel(dfg.Kernel{Name: name, DataElems: 1000})
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < pEdge {
					b.AddEdge(dfg.KernelID(u), dfg.KernelID(v))
				}
			}
		}
		g := b.MustBuild()
		c, err := PrepareCosts(g, env.sys, env.tab, CostConfig{})
		if err != nil {
			return false
		}
		res, err := Run(c, &greedy{}, Options{})
		if err != nil {
			return false
		}
		if res.Validate(g, env.sys) != nil {
			return false
		}
		fastest := func(k dfg.Kernel) float64 {
			_, ms := c.BestProc(k.ID)
			return ms
		}
		cp, _ := g.CriticalPath(fastest)
		if res.MakespanMs < cp-1e-9 {
			return false
		}
		work := g.TotalWeight(fastest)
		if res.MakespanMs < work/float64(env.sys.NumProcs())-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package sim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// These tests attack the engine with misbehaving and pathological policies
// to pin down its failure semantics.

// partialPolicy assigns only every other ready kernel per call.
type partialPolicy struct{ flip bool }

func (p *partialPolicy) Name() string         { return "partial" }
func (p *partialPolicy) Prepare(*Costs) error { return nil }
func (p *partialPolicy) Select(st *State) []Assignment {
	var out []Assignment
	procs := st.AvailableProcs()
	pi := 0
	for i, k := range st.Ready() {
		if (i+boolToInt(p.flip))%2 == 0 && pi < len(procs) {
			out = append(out, Assignment{Kernel: k, Proc: procs[pi]})
			pi++
		}
	}
	p.flip = !p.flip
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestPartialAssignmentStillCompletes(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	for i := 0; i < 9; i++ {
		b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	}
	g := b.MustBuild()
	res, err := Run(mustCosts(t, g, env), &partialPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments != 9 {
		t.Errorf("assignments = %d, want 9", res.Assignments)
	}
	if err := res.Validate(g, env.sys); err != nil {
		t.Error(err)
	}
}

// hoarder piles every kernel onto processor 0 regardless of readiness
// (static-style bulk commitment).
type hoarder struct{ done bool }

func (h *hoarder) Name() string         { return "hoarder" }
func (h *hoarder) Prepare(*Costs) error { h.done = false; return nil }
func (h *hoarder) Select(st *State) []Assignment {
	if h.done {
		return nil
	}
	h.done = true
	var out []Assignment
	for i := 0; i < st.Graph().NumKernels(); i++ {
		out = append(out, Assignment{Kernel: dfg.KernelID(i), Proc: 0})
	}
	return out
}

func TestHoarderSerializesEverything(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000}) // CPU 10
	k1 := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000}) // CPU 4
	b.AddEdge(k0, k1)
	g := b.MustBuild()
	res, err := Run(mustCosts(t, g, env), &hoarder{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanMs != 14 {
		t.Errorf("makespan = %v, want 14 (10+4 on one CPU)", res.MakespanMs)
	}
	if res.ProcStats[0].Kernels != 2 {
		t.Errorf("proc 0 ran %d kernels, want 2", res.ProcStats[0].Kernels)
	}
}

// reverseHoarder queues a dependent chain in reverse order onto one
// processor: the queue head then permanently waits on a kernel stuck
// behind it — the engine must report the deadlock instead of hanging.
type reverseHoarder struct{ done bool }

func (h *reverseHoarder) Name() string         { return "reverse-hoarder" }
func (h *reverseHoarder) Prepare(*Costs) error { h.done = false; return nil }
func (h *reverseHoarder) Select(st *State) []Assignment {
	if h.done {
		return nil
	}
	h.done = true
	n := st.Graph().NumKernels()
	var out []Assignment
	for i := n - 1; i >= 0; i-- {
		out = append(out, Assignment{Kernel: dfg.KernelID(i), Proc: 0})
	}
	return out
}

func TestReverseQueueDeadlockDetected(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	k1 := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(k0, k1)
	g := b.MustBuild()
	_, err := Run(mustCosts(t, g, env), &reverseHoarder{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock report", err)
	}
}

// lazyPolicy assigns nothing until the clock passes a trigger, then acts
// greedily — exercising repeated no-op Select calls with pending events.
type lazyPolicy struct {
	trigger float64
	inner   greedy
}

func (l *lazyPolicy) Name() string           { return "lazy" }
func (l *lazyPolicy) Prepare(c *Costs) error { return l.inner.Prepare(c) }
func (l *lazyPolicy) Select(st *State) []Assignment {
	if st.Now() < l.trigger {
		return nil
	}
	return l.inner.Select(st)
}

func TestLazyPolicyDeadlocksOnlyWithoutEvents(t *testing.T) {
	env := tiny(t, 4)
	// Without arrivals and with nothing running, a lazy policy deadlocks
	// immediately (no event can advance the clock past its trigger).
	c := mustCosts(t, singleKernelGraph(t), env)
	if _, err := Run(c, &lazyPolicy{trigger: 5}, Options{}); err == nil {
		t.Fatal("expected deadlock without events")
	}
	// With a paced arrival beyond the trigger, the clock reaches the
	// trigger and the run completes.
	res, err := Run(c, &lazyPolicy{trigger: 5}, Options{ArrivalTimes: []float64{6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanMs < 6 {
		t.Errorf("makespan = %v, want >= arrival 6", res.MakespanMs)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	g := workload.MustSuite(workload.Type2, 11)[0]
	sys := platform.PaperSystem(4)
	c, err := PrepareCosts(g, sys, lut.Paper(), CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, &greedy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MakespanMs != res.MakespanMs || back.Policy != res.Policy {
		t.Errorf("round trip changed headline: %v/%q vs %v/%q",
			back.MakespanMs, back.Policy, res.MakespanMs, res.Policy)
	}
	if len(back.Placements) != len(res.Placements) {
		t.Fatalf("placements %d vs %d", len(back.Placements), len(res.Placements))
	}
	for i := range res.Placements {
		if back.Placements[i] != res.Placements[i] {
			t.Fatalf("placement %d differs: %+v vs %+v", i, back.Placements[i], res.Placements[i])
		}
	}
	// The deserialized schedule must still validate against its graph.
	if err := back.Validate(g, sys); err != nil {
		t.Errorf("deserialized result invalid: %v", err)
	}
}

func TestReadResultJSONErrors(t *testing.T) {
	if _, err := ReadResultJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadResultJSON(strings.NewReader(`{"placements":[{"kernel":5}]}`)); err == nil {
		t.Error("misnumbered placement accepted")
	}
}

// Property: the engine is deterministic — identical inputs give identical
// results — and arrival pacing never reduces λ-relevant readiness below
// the unpaced run's makespan invariants.
func TestEngineDeterminismProperty(t *testing.T) {
	env := tiny(t, 8)
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%15) + 1
		b := dfg.NewBuilder()
		for i := 0; i < n; i++ {
			name := "a"
			if r.Intn(2) == 1 {
				name = "b"
			}
			b.AddKernel(dfg.Kernel{Name: name, DataElems: 1000})
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.25 {
					b.AddEdge(dfg.KernelID(u), dfg.KernelID(v))
				}
			}
		}
		g := b.MustBuild()
		c, err := PrepareCosts(g, env.sys, env.tab, CostConfig{})
		if err != nil {
			return false
		}
		r1, err1 := Run(c, &greedy{}, Options{})
		r2, err2 := Run(c, &greedy{}, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if r1.MakespanMs != r2.MakespanMs {
			return false
		}
		for i := range r1.Placements {
			if r1.Placements[i] != r2.Placements[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

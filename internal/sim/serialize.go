package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/stats"
)

// jsonResult is the stable on-disk representation of a finished run. The
// latency summaries are plain finite numbers even for empty runs (the
// Summary zero value), so WriteJSON never meets the ±Inf values
// encoding/json rejects.
type jsonResult struct {
	Policy      string          `json:"policy"`
	MakespanMs  float64         `json:"makespan_ms"`
	SelectCalls int             `json:"select_calls"`
	Assignments int             `json:"assignments"`
	Lambda      LambdaStats     `json:"lambda"`
	Sojourn     stats.Summary   `json:"sojourn"`
	QueueWait   stats.Summary   `json:"queue_wait"`
	Placements  []jsonPlacement `json:"placements"`
	ProcStats   []ProcStat      `json:"proc_stats"`
}

type jsonPlacement struct {
	Kernel        int     `json:"kernel"`
	Proc          int     `json:"proc"`
	Arrival       float64 `json:"arrival_ms"`
	Ready         float64 `json:"ready_ms"`
	Assign        float64 `json:"assign_ms"`
	TransferStart float64 `json:"transfer_start_ms"`
	ExecStart     float64 `json:"exec_start_ms"`
	Finish        float64 `json:"finish_ms"`
	BestExec      float64 `json:"best_exec_ms"`
}

// WriteJSON persists the result. Together with ReadResultJSON it lets a
// schedule be archived, diffed across code versions, or re-validated
// offline against its graph and system.
func (r *Result) WriteJSON(w io.Writer) error {
	jr := jsonResult{
		Policy:      r.Policy,
		MakespanMs:  r.MakespanMs,
		SelectCalls: r.SelectCalls,
		Assignments: r.Assignments,
		Lambda:      r.Lambda,
		Sojourn:     r.Sojourn,
		QueueWait:   r.QueueWait,
		ProcStats:   r.ProcStats,
	}
	for _, pl := range r.Placements {
		jr.Placements = append(jr.Placements, jsonPlacement{
			Kernel:        int(pl.Kernel),
			Proc:          int(pl.Proc),
			Arrival:       pl.Arrival,
			Ready:         pl.Ready,
			Assign:        pl.Assign,
			TransferStart: pl.TransferStart,
			ExecStart:     pl.ExecStart,
			Finish:        pl.Finish,
			BestExec:      pl.BestExecMs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// ReadResultJSON decodes a result written by WriteJSON. The caller should
// re-Validate it against the graph and system it was produced from.
func ReadResultJSON(rd io.Reader) (*Result, error) {
	var jr jsonResult
	if err := json.NewDecoder(rd).Decode(&jr); err != nil {
		return nil, fmt.Errorf("sim: result decode: %w", err)
	}
	out := &Result{
		Policy:      jr.Policy,
		MakespanMs:  jr.MakespanMs,
		SelectCalls: jr.SelectCalls,
		Assignments: jr.Assignments,
		Lambda:      jr.Lambda,
		Sojourn:     jr.Sojourn,
		QueueWait:   jr.QueueWait,
		ProcStats:   jr.ProcStats,
	}
	for i, jp := range jr.Placements {
		if jp.Kernel != i {
			return nil, fmt.Errorf("sim: placement %d records kernel %d", i, jp.Kernel)
		}
		out.Placements = append(out.Placements, Placement{
			Kernel:        dfg.KernelID(jp.Kernel),
			Proc:          platform.ProcID(jp.Proc),
			Arrival:       jp.Arrival,
			Ready:         jp.Ready,
			Assign:        jp.Assign,
			TransferStart: jp.TransferStart,
			ExecStart:     jp.ExecStart,
			Finish:        jp.Finish,
			BestExecMs:    jp.BestExec,
		})
	}
	return out, nil
}

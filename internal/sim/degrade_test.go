package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/perturb"
	"repro/internal/platform"
)

func mustSchedule(t *testing.T, events ...perturb.Event) *perturb.Schedule {
	t.Helper()
	s, err := perturb.NewSchedule(events)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// gpuProc finds the paper system's GPU processor ID.
func gpuProc(t *testing.T, sys *platform.System) platform.ProcID {
	t.Helper()
	for p := 0; p < sys.NumProcs(); p++ {
		if sys.KindOf(platform.ProcID(p)) == platform.GPU {
			return platform.ProcID(p)
		}
	}
	t.Fatal("no GPU in system")
	return -1
}

func TestDegradeSlowdownStretchesExec(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	c := mustCosts(t, g, env)
	gpu := gpuProc(t, env.sys)
	// The greedy policy picks the GPU (2 ms estimate); a 2x slowdown
	// covering the whole run makes it take 4 ms.
	deg := mustSchedule(t, perturb.Event{Kind: perturb.ProcSlowdown, Proc: gpu, Factor: 2, StartMs: 0, EndMs: 1000})
	res, err := Run(c, &greedy{}, Options{Degrade: deg})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlacementOf(0).Proc != gpu {
		t.Fatalf("kernel placed on %d, want GPU %d", res.PlacementOf(0).Proc, gpu)
	}
	if math.Abs(res.MakespanMs-4) > 1e-9 {
		t.Errorf("makespan = %v, want 4 (2 ms at half speed)", res.MakespanMs)
	}
	if err := res.Validate(g, env.sys); err != nil {
		t.Errorf("degraded schedule invalid: %v", err)
	}
}

func TestDegradePartialWindowIntegration(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	c := mustCosts(t, g, env)
	gpu := gpuProc(t, env.sys)
	// Nominal exec 2 ms starting at 0. Half speed during [1, 3): one unit
	// of work done by t=1, the remaining 1 unit takes 2 wall ms. Finish 3.
	deg := mustSchedule(t, perturb.Event{Kind: perturb.ProcSlowdown, Proc: gpu, Factor: 2, StartMs: 1, EndMs: 3})
	res, err := Run(c, &greedy{}, Options{Degrade: deg})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MakespanMs-3) > 1e-9 {
		t.Errorf("makespan = %v, want 3 (integral over the slowdown window)", res.MakespanMs)
	}
}

func TestDegradeOfflineStallsWork(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	c := mustCosts(t, g, env)
	gpu := gpuProc(t, env.sys)
	// GPU offline during [0, 5): the 2 ms kernel runs [5, 7).
	deg := mustSchedule(t, perturb.Event{Kind: perturb.ProcOffline, Proc: gpu, StartMs: 0, EndMs: 5})
	res, err := Run(c, &greedy{}, Options{Degrade: deg})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MakespanMs-7) > 1e-9 {
		t.Errorf("makespan = %v, want 7 (offline until 5 + 2 ms exec)", res.MakespanMs)
	}
}

func TestDegradeLinkSlowdownStretchesTransfer(t *testing.T) {
	env := tiny(t, 4) // 4 GB/s: 1000 elems * 4 B = 4000 B -> 1e-3 ms nominal
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000, OutElems: 1000})
	b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000, OutElems: 1000})
	b.AddEdge(0, 1)
	g := b.MustBuild()
	c := mustCosts(t, g, env)

	base, err := Run(c, &greedy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl := base.PlacementOf(1)
	baseXfer := pl.ExecStart - pl.TransferStart
	if baseXfer <= 0 {
		t.Fatalf("expected a cross-processor transfer, got %v (procs %d -> %d)",
			baseXfer, base.PlacementOf(0).Proc, pl.Proc)
	}

	deg := mustSchedule(t, perturb.Event{
		Kind: perturb.LinkSlowdown, From: base.PlacementOf(0).Proc, To: pl.Proc,
		Factor: 10, StartMs: 0, EndMs: 1e6})
	res, err := Run(c, &greedy{}, Options{Degrade: deg})
	if err != nil {
		t.Fatal(err)
	}
	dpl := res.PlacementOf(1)
	gotXfer := dpl.ExecStart - dpl.TransferStart
	if math.Abs(gotXfer-10*baseXfer) > 1e-9 {
		t.Errorf("degraded transfer = %v, want %v (10x the nominal %v)", gotXfer, 10*baseXfer, baseXfer)
	}
}

func TestDegradeOfflineDestinationBlocksTransfer(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000, OutElems: 1000})
	b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000, OutElems: 1000})
	b.AddEdge(0, 1)
	g := b.MustBuild()
	c := mustCosts(t, g, env)

	base, err := Run(c, &greedy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := base.PlacementOf(1).Proc
	start := base.PlacementOf(1).TransferStart
	// Take the destination offline for 50 ms spanning the transfer start:
	// the incoming transfer (and exec) cannot begin until it returns.
	deg := mustSchedule(t, perturb.Event{Kind: perturb.ProcOffline, Proc: dst, StartMs: start, EndMs: start + 50})
	res, err := Run(c, &greedy{}, Options{Degrade: deg})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PlacementOf(1).ExecStart; got < start+50 {
		t.Errorf("exec started at %v during the destination's offline window (ends %v)", got, start+50)
	}
	if err := res.Validate(g, env.sys); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

// foreverStalled is a pathological Degradation: speed 0 with no end.
type foreverStalled struct{}

func (foreverStalled) ExecSpeed(platform.ProcID, float64) (float64, float64) {
	return 0, math.Inf(1)
}
func (foreverStalled) LinkSpeed(platform.ProcID, platform.ProcID, float64) (float64, float64) {
	return 1, math.Inf(1)
}

func TestDegradeForeverOfflineErrors(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	c := mustCosts(t, g, env)
	_, err := Run(c, &greedy{}, Options{Degrade: foreverStalled{}})
	if err == nil || !strings.Contains(err.Error(), "stalls forever") {
		t.Errorf("expected a stalls-forever error, got %v", err)
	}
}

// speedup violates the Degradation contract: speed above 1.
type speedup struct{}

func (speedup) ExecSpeed(platform.ProcID, float64) (float64, float64) {
	return 2, math.Inf(1)
}
func (speedup) LinkSpeed(platform.ProcID, platform.ProcID, float64) (float64, float64) {
	return 1, math.Inf(1)
}

func TestDegradeSpeedAboveOneErrors(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	c := mustCosts(t, g, env)
	_, err := Run(c, &greedy{}, Options{Degrade: speedup{}})
	if err == nil || !strings.Contains(err.Error(), "must be in [0, 1]") {
		t.Errorf("expected an invalid-speed error for speed 2, got %v", err)
	}
}

// spy wraps greedy and records every estimate it reads through the State.
type spy struct {
	greedy
	seenExec []float64
}

func (s *spy) Select(st *State) []Assignment {
	for _, k := range st.Ready() {
		for p := 0; p < st.System().NumProcs(); p++ {
			s.seenExec = append(s.seenExec, st.Costs().Exec(k, platform.ProcID(p)))
		}
	}
	return s.greedy.Select(st)
}

// TestPolicySeesEstimatesEngineChargesActuals is the tentpole's regression
// guarantee: under both estimate noise (ActualCosts) and platform
// degradation (Degrade), every cost a policy observes is the clean
// estimate, while the engine's placements follow the perturbed, stretched
// reality.
func TestPolicySeesEstimatesEngineChargesActuals(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	est := mustCosts(t, g, env)
	actualTab := scaledTable(t, 3) // reality: 3x the estimates
	actual, err := PrepareCosts(g, env.sys, actualTab, CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gpu := gpuProc(t, env.sys)
	deg := mustSchedule(t, perturb.Event{Kind: perturb.ProcSlowdown, Proc: gpu, Factor: 2, StartMs: 0, EndMs: 1e6})

	pol := &spy{}
	res, err := Run(est, pol, Options{ActualCosts: actual, Degrade: deg})
	if err != nil {
		t.Fatal(err)
	}

	// The policy saw exactly the clean estimates for kernel 0 on every
	// processor — no leak of the 3x actual table or the 2x degradation.
	want := make([]float64, env.sys.NumProcs())
	for p := range want {
		want[p] = est.Exec(0, platform.ProcID(p))
	}
	if len(pol.seenExec) < len(want) {
		t.Fatalf("policy recorded %d estimates, want at least %d", len(pol.seenExec), len(want))
	}
	for p, w := range want {
		if pol.seenExec[p] != w {
			t.Errorf("policy saw exec[0][%d] = %v, want clean estimate %v", p, pol.seenExec[p], w)
		}
	}

	// The engine charged the perturbed actual (3 x 2 = 6 ms on the GPU)
	// stretched by the degradation (x2): 12 ms.
	pl := res.PlacementOf(0)
	if pl.Proc != gpu {
		t.Fatalf("kernel placed on %d, want GPU %d (estimates say GPU)", pl.Proc, gpu)
	}
	if math.Abs(res.MakespanMs-12) > 1e-9 {
		t.Errorf("makespan = %v, want 12 (actual 6 ms at half speed)", res.MakespanMs)
	}
}

func TestDegradeDeterministicRerun(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	for i := 0; i < 6; i++ {
		name := "a"
		if i%2 == 1 {
			name = "b"
		}
		b.AddKernel(dfg.Kernel{Name: name, DataElems: 1000, OutElems: 1000})
	}
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 5)
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	deg := mustSchedule(t,
		perturb.Event{Kind: perturb.ProcSlowdown, Proc: 0, Factor: 3, StartMs: 2, EndMs: 9},
		perturb.Event{Kind: perturb.ProcOffline, Proc: 1, StartMs: 1, EndMs: 4},
		perturb.Event{Kind: perturb.LinkSlowdown, From: 0, To: 2, Factor: 5, StartMs: 0, EndMs: 20},
	)
	var first *Result
	for run := 0; run < 3; run++ {
		res, err := Run(c, &greedy{}, Options{Degrade: deg})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(g, env.sys); err != nil {
			t.Fatalf("run %d invalid: %v", run, err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.MakespanMs != first.MakespanMs {
			t.Fatalf("run %d makespan %v != first %v", run, res.MakespanMs, first.MakespanMs)
		}
		for i := range res.Placements {
			if res.Placements[i] != first.Placements[i] {
				t.Fatalf("run %d placement %d drifted: %+v vs %+v", run, i, res.Placements[i], first.Placements[i])
			}
		}
	}
}

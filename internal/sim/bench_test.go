package sim

import (
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/workload"
)

func benchGraphCosts(b *testing.B) *Costs {
	b.Helper()
	g := workload.MustSuite(workload.Type2, workload.DefaultSuiteSeed)[9] // 157 kernels
	c, err := PrepareCosts(g, platform.PaperSystem(4), lut.Paper(), CostConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkPrepareCosts(b *testing.B) {
	g := workload.MustSuite(workload.Type2, workload.DefaultSuiteSeed)[9]
	sys := platform.PaperSystem(4)
	tab := lut.Paper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PrepareCosts(g, sys, tab, CostConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRun measures the raw event loop on the largest suite
// graph under a trivial greedy policy.
func BenchmarkEngineRun(b *testing.B) {
	c := benchGraphCosts(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, &greedyBench{}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

type greedyBench struct{ c *Costs }

func (g *greedyBench) Name() string           { return "greedy" }
func (g *greedyBench) Prepare(c *Costs) error { g.c = c; return nil }
func (g *greedyBench) Select(st *State) []Assignment {
	var out []Assignment
	procs := st.AvailableProcs()
	for _, k := range st.Ready() {
		if len(procs) == 0 {
			break
		}
		out = append(out, Assignment{Kernel: k, Proc: procs[0]})
		procs = procs[1:]
	}
	return out
}

func BenchmarkTransferIn(b *testing.B) {
	c := benchGraphCosts(b)
	g := c.Graph()
	// Find a kernel with predecessors.
	kid := g.Exits()[0]
	place := func(k dfg.KernelID) platform.ProcID { return platform.ProcID(int(k) % 3) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TransferIn(kid, 0, place)
	}
}

package sim

import (
	"runtime"
	"sort"
	"sync"
)

// Lane scheduling for the partitioned engine.
//
// A "lane" is one worker goroutine of a single run. Lanes never touch the
// event trajectory — the discrete-event loop is inherently sequential
// because policies observe global state (ready set, processor availability)
// at every decision point, so any reordering would change the schedule
// itself. What lanes do parallelise are the trajectory-independent phases
// around the loop: cost-table preparation (per-kernel rows are
// independent), schedule validation (per-kernel lifecycle checks and
// per-processor occupancy scans), latency-array assembly and the public
// result conversion. Those phases are 30–50% of a large run's wall time
// and are embarrassingly parallel over kernels or processors.
//
// # Determinism invariant
//
// Every lane-parallel phase must produce byte-identical output for every
// lane count, including 1 (the serial engine). Three rules enforce that:
//
//  1. Lanes only write to disjoint index ranges of preallocated slices —
//     concatenation in chunk order then equals the serial fill, because
//     chunks tile [0, n) ascending and within-chunk order is index order.
//  2. Floating-point reductions (λ totals, per-processor time sums) stay on
//     one goroutine in kernel-ID order: float addition does not
//     reassociate, so chunked partial sums would drift by an ulp and break
//     byte-identity with the serial engine. Integer reductions and float
//     max/min are exact and may be merged per lane.
//  3. Anything ordered by value (sorted latency arrays) may be sorted in
//     shards and merged: the sorted result is a pure function of the
//     multiset, not of the algorithm.
//
// The reducer side is sequence-stamped: laneChunks fixes each chunk's
// [lo, hi) span up front, every lane tags its partial output with the chunk
// index it covers, and merges always run in ascending chunk order on the
// caller's goroutine.
type laneChunk struct {
	lane   int // sequence stamp: chunk index in [0, lanes)
	lo, hi int // half-open index span
}

// normLanes clamps a requested lane count to [1, n]. The convention is
// uniform across the package and the public facade: 0 or 1 run serial
// (the default), > 1 uses that many lanes, < 0 takes one lane per CPU.
func normLanes(lanes, n int) int {
	if lanes < 0 {
		lanes = runtime.NumCPU()
	}
	if lanes > n {
		lanes = n
	}
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// laneChunks splits [0, n) into `lanes` contiguous chunks differing in
// length by at most one, each stamped with its sequence index.
func laneChunks(n, lanes int) []laneChunk {
	lanes = normLanes(lanes, n)
	chunks := make([]laneChunk, lanes)
	q, r := n/lanes, n%lanes
	lo := 0
	for i := range chunks {
		hi := lo + q
		if i < r {
			hi++
		}
		chunks[i] = laneChunk{lane: i, lo: lo, hi: hi}
		lo = hi
	}
	return chunks
}

// parallelChunks runs fn over the stamped chunks of [0, n), one goroutine
// per chunk, and blocks until all lanes finish. With one lane (or tiny n)
// it calls fn inline — the serial engine is exactly the lanes=1 case, not a
// separate code path. fn must confine its writes to the chunk's span (or to
// per-lane state indexed by the sequence stamp).
func parallelChunks(n, lanes int, fn func(c laneChunk)) {
	if n <= 0 {
		return
	}
	if normLanes(lanes, n) == 1 {
		// Serial fast path: no chunk slice, no goroutines, no allocation.
		fn(laneChunk{lane: 0, lo: 0, hi: n})
		return
	}
	chunks := laneChunks(n, lanes)
	var wg sync.WaitGroup
	wg.Add(len(chunks) - 1)
	for _, c := range chunks[1:] {
		go func(c laneChunk) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	fn(chunks[0])
	wg.Wait()
}

// parallelSortFloat64s sorts xs ascending with `lanes` shard sorts followed
// by a k-way merge into scratch, returning the sorted slice (scratch grown
// as needed; with one lane xs is sorted in place and returned directly).
// The sorted array is a pure function of the multiset — shard boundaries
// and merge tie-breaks cannot change which float64 bits land where — so the
// result is byte-identical to a serial sort for every lane count.
func parallelSortFloat64s(xs, scratch []float64, lanes int) (sorted, spare []float64) {
	if normLanes(lanes, len(xs)) == 1 {
		sort.Float64s(xs)
		return xs, scratch
	}
	chunks := laneChunks(len(xs), lanes)
	parallelChunks(len(xs), lanes, func(c laneChunk) {
		sort.Float64s(xs[c.lo:c.hi])
	})
	scratch = grow(scratch, len(xs))
	// K-way merge by repeated head selection: the shard count is the lane
	// count (single digits), so a heap would cost more than it saves.
	heads := make([]int, len(chunks))
	for i, c := range chunks {
		heads[i] = c.lo
	}
	for out := 0; out < len(xs); out++ {
		best := -1
		for i, c := range chunks {
			if heads[i] >= c.hi {
				continue
			}
			if best < 0 || xs[heads[i]] < xs[heads[best]] {
				best = i
			}
		}
		scratch[out] = xs[heads[best]]
		heads[best]++
	}
	return scratch, xs
}

// ParallelOver shards [0, n) across `lanes` contiguous chunks and runs fn
// on each, blocking until all finish (0 or 1 lanes run fn inline over the
// whole range). It exposes the engine's lane scheduler to result-assembly
// code outside this package; fn must confine its writes to [lo, hi), which
// keeps the concatenated output byte-identical to a serial fill.
func ParallelOver(n, lanes int, fn func(lo, hi int)) {
	parallelChunks(n, lanes, func(c laneChunk) { fn(c.lo, c.hi) })
}

// laneError is one lane's first failure, stamped with the global index it
// occurred at so the merged error is the lowest-index one — the same error
// the serial scan would have reported, for any lane count.
type laneError struct {
	at  int
	err error
}

// firstLaneError merges per-lane failures deterministically: the error with
// the smallest stamp wins; entries with nil err are ignored.
func firstLaneError(errs []laneError) error {
	best := -1
	for i := range errs {
		if errs[i].err == nil {
			continue
		}
		if best < 0 || errs[i].at < errs[best].at {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return errs[best].err
}

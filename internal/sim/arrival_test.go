package sim

import (
	"math"
	"testing"

	"repro/internal/dfg"
	"repro/internal/platform"
)

func TestArrivalPacingDelaysReadiness(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000}) // GPU 2ms
	k1 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	// k1 arrives at t=10; both run on their best processor (GPU) without
	// contention because k0 finishes at 2.
	res, err := Run(c, &greedy{}, Options{ArrivalTimes: []float64{0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.PlacementOf(k1)
	if p1.Ready != 10 {
		t.Errorf("Ready = %v, want 10 (arrival)", p1.Ready)
	}
	if p1.ExecStart < 10 {
		t.Errorf("ExecStart = %v, want >= arrival", p1.ExecStart)
	}
	if p1.Lambda() != 0 {
		t.Errorf("λ = %v, want 0 (no wait after arrival)", p1.Lambda())
	}
	if math.Abs(res.MakespanMs-12) > 1e-9 {
		t.Errorf("makespan = %v, want 12", res.MakespanMs)
	}
	if err := res.Validate(g, env.sys); err != nil {
		t.Error(err)
	}
	_ = k0
}

func TestArrivalAfterPredecessorFinish(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000}) // finishes at 2
	k1 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	b.AddEdge(k0, k1)
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	// k1's dependency completes at 2 but the kernel only arrives at 50.
	res, err := Run(c, &greedy{}, Options{ArrivalTimes: []float64{0, 50}})
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.PlacementOf(k1)
	if p1.Ready != 50 {
		t.Errorf("Ready = %v, want 50 (arrival after preds)", p1.Ready)
	}
	if err := res.Validate(g, env.sys); err != nil {
		t.Error(err)
	}
}

func TestArrivalBeforePredecessorFinish(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000}) // finishes at 2
	k1 := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(k0, k1)
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	// k1 arrives at 1, before k0 finishes at 2: readiness waits for the
	// dependency.
	res, err := Run(c, &greedy{}, Options{ArrivalTimes: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PlacementOf(k1).Ready; got != 2 {
		t.Errorf("Ready = %v, want 2 (dependency dominates)", got)
	}
}

func TestArrivalValidation(t *testing.T) {
	env := tiny(t, 4)
	c := mustCosts(t, singleKernelGraph(t), env)
	if _, err := Run(c, &greedy{}, Options{ArrivalTimes: []float64{1, 2}}); err == nil {
		t.Error("wrong-length arrivals accepted")
	}
	if _, err := Run(c, &greedy{}, Options{ArrivalTimes: []float64{-1}}); err == nil {
		t.Error("negative arrival accepted")
	}
}

func TestArrivalInvisibleToPolicy(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	sawEarly := false
	pol := &scriptedPolicy{onSelect: func(st *State, call int) []Assignment {
		for _, k := range st.Ready() {
			if k == 1 && st.Now() < 5 {
				sawEarly = true
			}
		}
		// Greedy on whatever is visible.
		var out []Assignment
		procs := st.AvailableProcs()
		for i, k := range st.Ready() {
			if i >= len(procs) {
				break
			}
			out = append(out, Assignment{Kernel: k, Proc: procs[i]})
		}
		return out
	}}
	if _, err := Run(c, pol, Options{ArrivalTimes: []float64{0, 5}}); err != nil {
		t.Fatal(err)
	}
	if sawEarly {
		t.Error("kernel visible in Ready() before its arrival time")
	}
}

func TestQueuedHeadWaitsForArrival(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	g := b.MustBuild()
	c := mustCosts(t, g, env)
	gpu := env.sys.ByKind(platform.GPU)[0]
	// A static-style policy assigns the kernel at t=0 although it arrives
	// at t=7: the processor must idle until the arrival.
	res, err := Run(c, &fixed{as: []Assignment{{k0, gpu}}}, Options{ArrivalTimes: []float64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PlacementOf(k0).ExecStart; got < 7 {
		t.Errorf("ExecStart = %v, want >= 7 (arrival)", got)
	}
}

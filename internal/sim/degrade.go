package sim

import (
	"fmt"
	"math"

	"repro/internal/dfg"
	"repro/internal/platform"
)

// Degradation injects dynamic platform degradation into the engine's
// actual-time path: execution and transfer durations stretch under
// time-varying speed factors while policies keep pricing with their static
// estimates (they never observe the degradation directly — only its
// consequences, through completion times and RecentExecAvg history).
//
// Both methods describe piecewise-constant speeds: the returned speed holds
// from at until the returned horizon (+Inf when nothing further changes),
// so the engine can integrate durations exactly by walking the
// breakpoints. Speeds are relative and must stay in [0, 1]: 1 is nominal,
// 0.5 half speed, 0 stopped (a speed above 1 could finish work faster than
// the nominal best and break the λ >= 0 invariant Validate enforces).
// Implementations must be deterministic, pure and safe for
// concurrent use (batch workers share one Degradation across runs);
// offline (speed-0) stretches must end — a speed of 0 holding forever
// deadlocks the affected work and surfaces as a Run error.
//
// perturb.Schedule is the canonical implementation.
type Degradation interface {
	// ExecSpeed returns processor p's execution speed at time at and the
	// time until which that speed holds.
	ExecSpeed(p platform.ProcID, at float64) (speed, until float64)
	// LinkSpeed returns the relative bandwidth of the link from -> to at
	// time at and the time until which it holds.
	LinkSpeed(from, to platform.ProcID, at float64) (speed, until float64)
}

// elapseMaxSteps bounds the breakpoint walk of one duration integration; a
// schedule needing more segments than this for a single kernel is treated
// as pathological rather than looping forever.
const elapseMaxSteps = 1 << 20

// elapseExec returns the completion time of nominal ms of execution work
// started at time at on processor p under the degradation's time-varying
// speed.
func elapseExec(d Degradation, p platform.ProcID, nominal, at float64) (float64, error) {
	t, remaining := at, nominal
	for step := 0; remaining > 0; step++ {
		if step >= elapseMaxSteps {
			return 0, fmt.Errorf("sim: degradation schedule for proc %d produced over %d speed segments", p, elapseMaxSteps)
		}
		speed, until := d.ExecSpeed(p, t)
		var err error
		t, remaining, err = advance(t, remaining, speed, until)
		if err != nil {
			return 0, fmt.Errorf("sim: proc %d: %w", p, err)
		}
		if remaining <= 0 {
			return t, nil
		}
	}
	return t, nil
}

// elapseTransfer returns the completion time of nominal ms of transfer work
// from -> to started at time at. The effective speed is the link's
// bandwidth factor gated by the destination being online: an offline
// processor cannot receive data.
func elapseTransfer(d Degradation, from, to platform.ProcID, nominal, at float64) (float64, error) {
	t, remaining := at, nominal
	for step := 0; remaining > 0; step++ {
		if step >= elapseMaxSteps {
			return 0, fmt.Errorf("sim: degradation schedule for link %d->%d produced over %d speed segments", from, to, elapseMaxSteps)
		}
		speed, until := d.LinkSpeed(from, to, t)
		procSpeed, procUntil := d.ExecSpeed(to, t)
		if procUntil < until {
			until = procUntil
		}
		if procSpeed <= 0 {
			speed = 0
		}
		var err error
		t, remaining, err = advance(t, remaining, speed, until)
		if err != nil {
			return 0, fmt.Errorf("sim: link %d->%d: %w", from, to, err)
		}
		if remaining <= 0 {
			return t, nil
		}
	}
	return t, nil
}

// advance consumes one constant-speed segment: given remaining nominal work
// at time t under speed valid until the horizon, it returns the new time
// and the work left (<= 0 when the work completed within the segment).
func advance(t, remaining, speed, until float64) (float64, float64, error) {
	// The contract bounds speeds to [0, 1]: above 1, work could finish
	// faster than the nominal best and silently corrupt λ (Lambda() goes
	// negative and the result() filter would drop it without a trace).
	if speed < 0 || speed > 1 || math.IsNaN(speed) {
		return 0, 0, fmt.Errorf("degradation returned invalid speed %v at t=%v (must be in [0, 1])", speed, t)
	}
	if speed > 0 {
		need := remaining / speed
		if math.IsInf(until, 1) || t+need <= until {
			return t + need, 0, nil
		}
		remaining -= (until - t) * speed
	} else if math.IsInf(until, 1) {
		return 0, 0, fmt.Errorf("work stalls forever (speed 0 from t=%v with no end)", t)
	}
	if until <= t {
		return 0, 0, fmt.Errorf("degradation speed horizon did not advance past t=%v", t)
	}
	return until, remaining, nil
}

// transferFinish integrates kernel k's incoming transfers onto processor p
// starting at time at under the engine's degradation, combining
// predecessors per the configured TransferMode: concurrent transfers
// (TransferMax) each start at at and the slowest finish wins; serialized
// transfers (TransferSum) run back to back in predecessor order.
func (e *engine) transferFinish(k dfg.KernelID, p platform.ProcID, at float64) (float64, error) {
	d := e.opt.Degrade
	g := e.actual.Graph()
	finish, serial := at, at
	mode := e.actual.Config().Mode
	for _, pred := range g.Preds(k) {
		from := e.procOf[pred]
		if from == p {
			continue // same-processor transfers are free, degraded or not
		}
		nominal := e.actual.TransferMs(g.Kernel(pred).OutElems, from, p)
		start := at
		if mode == TransferSum {
			start = serial
		}
		f, err := elapseTransfer(d, from, p, nominal, start)
		if err != nil {
			return 0, err
		}
		serial = f
		if f > finish {
			finish = f
		}
	}
	if mode == TransferSum {
		return serial, nil
	}
	return finish, nil
}

package sim

import (
	"math"
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
)

// scaledTable returns the tiny test table with all times multiplied.
func scaledTable(t *testing.T, factor float64) *lut.Table {
	t.Helper()
	tab, err := lut.New([]lut.Entry{
		{Kernel: "a", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 10 * factor, platform.GPU: 2 * factor, platform.FPGA: 50 * factor}},
		{Kernel: "b", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 4 * factor, platform.GPU: 8 * factor, platform.FPGA: 1 * factor}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestActualCostsDriveExecution(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	est := mustCosts(t, g, env)
	actualTab := scaledTable(t, 3) // reality is 3x slower than the estimate
	actual, err := PrepareCosts(g, env.sys, actualTab, CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(est, &greedy{}, Options{ActualCosts: actual})
	if err != nil {
		t.Fatal(err)
	}
	// The policy picks the GPU from the estimate (2 ms); execution takes
	// the actual 6 ms.
	if math.Abs(res.MakespanMs-6) > 1e-9 {
		t.Errorf("makespan = %v, want 6 (actual time)", res.MakespanMs)
	}
	// λ baseline is the actual best (6), so λ = 0 here.
	if l := res.PlacementOf(0).Lambda(); math.Abs(l) > 1e-9 {
		t.Errorf("λ = %v, want 0", l)
	}
}

func TestActualCostsValidation(t *testing.T) {
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	est := mustCosts(t, g, env)

	// Different graph.
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	other := b.MustBuild()
	wrongGraph, err := PrepareCosts(other, env.sys, env.tab, CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(est, &greedy{}, Options{ActualCosts: wrongGraph}); err == nil {
		t.Error("ActualCosts over a different graph accepted")
	}
}

func TestActualCostsMisleadEstimates(t *testing.T) {
	// Estimates say GPU is best for "a"; reality inverts CPU and GPU. The
	// policy still places on the GPU (it trusts its table), and the run
	// reports the true actual (slow) execution, with λ charging the mistake.
	env := tiny(t, 4)
	g := singleKernelGraph(t)
	est := mustCosts(t, g, env)
	inverted, err := lut.New([]lut.Entry{
		{Kernel: "a", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 2, platform.GPU: 10, platform.FPGA: 50}},
		{Kernel: "b", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 4, platform.GPU: 8, platform.FPGA: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	actual, err := PrepareCosts(g, env.sys, inverted, CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(est, &greedy{}, Options{ActualCosts: actual})
	if err != nil {
		t.Fatal(err)
	}
	pl := res.PlacementOf(0)
	if env.sys.KindOf(pl.Proc) != platform.GPU {
		t.Fatalf("policy placed on %v, expected to trust estimate (GPU)", env.sys.KindOf(pl.Proc))
	}
	if math.Abs(res.MakespanMs-10) > 1e-9 {
		t.Errorf("makespan = %v, want actual GPU time 10", res.MakespanMs)
	}
	// λ = (10 - 0) - actual best (CPU 2) = 8: the cost of the wrong guess.
	if l := pl.Lambda(); math.Abs(l-8) > 1e-9 {
		t.Errorf("λ = %v, want 8", l)
	}
}

package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchRun is one unit of work for RunBatch: a prepared cost oracle, a
// policy instance and engine options. Policies are stateful (Prepare
// mutates them), so every BatchRun must carry its own instance — sharing
// one Policy value across runs of a batch is a data race.
type BatchRun struct {
	Costs  *Costs
	Policy Policy
	Opt    Options
}

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Workers bounds the worker pool; <= 0 selects runtime.GOMAXPROCS(0).
	// The pool never exceeds the number of runs.
	Workers int
}

// RunError is one failed run of a batch, tagged with its index.
type RunError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *RunError) Error() string { return fmt.Sprintf("batch run %d: %v", e.Index, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// BatchError reports the failures of a batch. RunBatch wraps every failed
// run's error in a *RunError carrying its index; errors.As recovers these,
// errors.Is each underlying cause.
type BatchError struct {
	// Errs holds one *RunError per failed run, in run order.
	Errs []error
}

// Error implements error.
func (b *BatchError) Error() string {
	if len(b.Errs) == 1 {
		return b.Errs[0].Error()
	}
	return fmt.Sprintf("%v (and %d more batch errors)", b.Errs[0], len(b.Errs)-1)
}

// Unwrap exposes the individual failures to errors.Is/As.
func (b *BatchError) Unwrap() []error { return b.Errs }

// Worker is the per-goroutine state RunPool hands to its callback: a
// reusable Runner plus a bounded memo space for prepared artifacts — cost
// oracles, policy instances — that the caller wants to share across the
// runs one worker executes. Workers are confined to their goroutine, so
// the memo needs no locking; cached values must themselves be safe to
// reuse sequentially (a *Costs is immutable, a Policy re-Prepares per run).
type Worker struct {
	runner *Runner
	memo   map[any]any
	order  []any // insertion order, for FIFO eviction
}

// workerMemoCap bounds each worker's memo so sweeps over many distinct
// graphs cannot pin an unbounded number of large prepared cost tables.
// Eviction is FIFO, which preserves determinism (results never depend on
// cache hits — only speed does).
const workerMemoCap = 64

// Runner returns the worker's reusable simulation engine.
func (w *Worker) Runner() *Runner { return w.runner }

// Memo returns the value cached under key, calling build and caching its
// result on a miss. Keys must be comparable; errors are never cached.
// Consecutive runs that share prepared state (the same cost oracle, the
// same policy instance) retrieve it here instead of rebuilding per run —
// the prepared-policy fast path of batch, stream and robustness sweeps.
func (w *Worker) Memo(key any, build func() (any, error)) (any, error) {
	if v, ok := w.memo[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	if w.memo == nil {
		w.memo = make(map[any]any, workerMemoCap)
	}
	if len(w.order) >= workerMemoCap {
		delete(w.memo, w.order[0])
		w.order = w.order[1:]
	}
	w.memo[key] = v
	w.order = append(w.order, key)
	return v, nil
}

// RunPool dispatches indices 0..n-1 across a bounded pool of workers, each
// owning a reusable Runner (plus a prepared-artifact memo, see Worker), and
// collects fn's error per index. It is the shared fan-out primitive under
// RunBatch, apt.RunBatch and the experiment runner: callers put their whole
// per-item pipeline (cost preparation, simulation, post-processing) inside
// fn so every stage parallelises.
//
// Once the context is cancelled, undispatched indices receive ctx.Err()
// without fn being called; in-flight calls complete. The returned slice
// has one entry per index (nil on success).
func RunPool(ctx context.Context, n, workers int, fn func(i int, w *Worker) error) []error {
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := &Worker{runner: NewRunner()}
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i, wk)
			}
		}()
	}
	wg.Wait()
	return errs
}

// RunBatch executes every run across a bounded worker pool and returns the
// results in input order: results[i] corresponds to runs[i]. Each worker
// owns a Runner, so engine buffers are reused across the runs it executes;
// simulations are deterministic, so results are byte-identical to calling
// Run sequentially regardless of worker count or scheduling.
//
// Cancelling the context stops new runs from starting (in-flight runs
// complete). Failed or cancelled runs leave a nil entry in the results and
// contribute to the returned *BatchError; results for successful runs are
// always returned, even when others fail.
func RunBatch(ctx context.Context, runs []BatchRun, opt BatchOptions) ([]*Result, error) {
	results := make([]*Result, len(runs))
	errs := RunPool(ctx, len(runs), opt.Workers, func(i int, w *Worker) error {
		res, err := w.Runner().Run(runs[i].Costs, runs[i].Policy, runs[i].Opt)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})

	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &RunError{Index: i, Err: err})
		}
	}
	if len(failed) > 0 {
		return results, &BatchError{Errs: failed}
	}
	return results, nil
}

package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/workload"
)

// suiteCosts prepares cost oracles over the first n suite graphs.
func suiteCosts(t testing.TB, n int) []*Costs {
	t.Helper()
	graphs := workload.MustSuite(workload.Type2, workload.DefaultSuiteSeed)
	if n > len(graphs) {
		n = len(graphs)
	}
	out := make([]*Costs, n)
	for i := 0; i < n; i++ {
		c, err := PrepareCosts(graphs[i], platform.PaperSystem(4), lut.Paper(), CostConfig{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

// leanGreedy is an allocation-free greedy policy used to exercise the
// append-style accessors and the warm engine path.
type leanGreedy struct {
	ready []dfg.KernelID
	procs []platform.ProcID
	out   []Assignment
}

func (g *leanGreedy) Name() string           { return "lean-greedy" }
func (g *leanGreedy) Prepare(c *Costs) error { return nil }
func (g *leanGreedy) Select(st *State) []Assignment {
	g.procs = st.AppendAvailableProcs(g.procs[:0])
	g.ready = st.AppendReady(g.ready[:0])
	procs := g.procs
	out := g.out[:0]
	for _, k := range g.ready {
		if len(procs) == 0 {
			break
		}
		out = append(out, Assignment{Kernel: k, Proc: procs[0]})
		procs = procs[1:]
	}
	g.out = out
	return out
}

func TestRunBatchMatchesSequential(t *testing.T) {
	costs := suiteCosts(t, 4)
	build := func() []BatchRun {
		var runs []BatchRun
		for _, c := range costs {
			runs = append(runs, BatchRun{Costs: c, Policy: &leanGreedy{}})
			runs = append(runs, BatchRun{Costs: c, Policy: &outOfOrderStatic{}, Opt: Options{SchedOverheadMs: 0.25}})
		}
		return runs
	}

	seqRuns := build()
	want := make([]*Result, len(seqRuns))
	for i, r := range seqRuns {
		res, err := Run(r.Costs, r.Policy, r.Opt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, workers := range []int{1, 2, 7} {
		got, err := RunBatch(context.Background(), build(), BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d: run %d differs from sequential Run:\ngot  %+v\nwant %+v",
					workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunBatchErrorKeepsOtherResults(t *testing.T) {
	costs := suiteCosts(t, 2)
	runs := []BatchRun{
		{Costs: costs[0], Policy: &leanGreedy{}},
		{Costs: nil, Policy: &leanGreedy{}}, // invalid
		{Costs: costs[1], Policy: &leanGreedy{}},
	}
	results, err := RunBatch(context.Background(), runs, BatchOptions{})
	if err == nil {
		t.Fatal("want error for invalid run")
	}
	var be *BatchError
	if !errors.As(err, &be) || len(be.Errs) != 1 {
		t.Fatalf("want BatchError with 1 failure, got %v", err)
	}
	var re *RunError
	if !errors.As(be.Errs[0], &re) || re.Index != 1 {
		t.Fatalf("want RunError with index 1, got %v", be.Errs[0])
	}
	if results[0] == nil || results[2] == nil {
		t.Error("successful runs should still report results")
	}
	if results[1] != nil {
		t.Error("failed run should leave a nil result")
	}
}

func TestRunBatchCancelled(t *testing.T) {
	costs := suiteCosts(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs := []BatchRun{
		{Costs: costs[0], Policy: &leanGreedy{}},
		{Costs: costs[0], Policy: &leanGreedy{}},
	}
	results, err := RunBatch(ctx, runs, BatchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("run %d: want nil result after pre-cancelled context", i)
		}
	}
}

func TestRunnerReuseMatchesFreshRuns(t *testing.T) {
	costs := suiteCosts(t, 3)
	r := NewRunner()
	for round := 0; round < 2; round++ {
		// Vary graph size across calls so buffer reuse has to re-dimension.
		for i := len(costs) - 1; i >= 0; i-- {
			warm, err := r.Run(costs[i], &leanGreedy{}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Run(costs[i], &leanGreedy{}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warm, fresh) {
				t.Fatalf("round %d graph %d: warm Runner result differs from fresh Run", round, i)
			}
			if err := warm.Validate(costs[i].Graph(), costs[i].System()); err != nil {
				t.Errorf("round %d graph %d: %v", round, i, err)
			}
		}
	}
}

// outOfOrderStatic assigns every kernel of the graph at time zero, grouped
// by processor (kernel k goes to proc k mod np, all of proc 0's kernels
// first, then proc 1's, ...). Within each processor the queue stays in
// ascending kernel-ID order — a valid topological order for the generated
// suites — but the commit sequence drains the time-zero ready FIFO far out
// of FCFS order. It is the regression scenario for commit()'s indexed
// ready-list removal: removing from the middle and tail of the ready FIFO
// must not disturb the order of or drop the remaining entries.
type outOfOrderStatic struct {
	done bool
	np   int
}

func (p *outOfOrderStatic) Name() string { return "out-of-order-static" }
func (p *outOfOrderStatic) Prepare(c *Costs) error {
	p.np = c.System().NumProcs()
	return nil
}
func (p *outOfOrderStatic) Select(st *State) []Assignment {
	if p.done {
		return nil
	}
	p.done = true
	n := st.Graph().NumKernels()
	out := make([]Assignment, 0, n)
	for proc := 0; proc < p.np; proc++ {
		for k := proc; k < n; k += p.np {
			out = append(out, Assignment{
				Kernel: dfg.KernelID(k),
				Proc:   platform.ProcID(proc),
			})
		}
	}
	return out
}

func TestCommitOutOfReadyOrder(t *testing.T) {
	for _, typ := range []workload.GraphType{workload.Type1, workload.Type2} {
		g := workload.MustSuite(typ, workload.DefaultSuiteSeed)[0]
		c, err := PrepareCosts(g, platform.PaperSystem(4), lut.Paper(), CostConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, &outOfOrderStatic{}, Options{})
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if res.Assignments != g.NumKernels() {
			t.Errorf("%v: %d assignments for %d kernels", typ, res.Assignments, g.NumKernels())
		}
		if err := res.Validate(g, c.System()); err != nil {
			t.Errorf("%v: %v", typ, err)
		}
	}
}

// TestReadyListRemoval unit-tests the tombstoned FIFO directly: removals
// from the middle and tail keep the remaining order, compaction keeps the
// index map consistent, and re-pushing works after compaction.
func TestReadyListRemoval(t *testing.T) {
	const n = 8
	e := &engine{readyIdx: make([]int32, n)}
	for i := range e.readyIdx {
		e.readyIdx[i] = -1
	}
	for i := 0; i < n; i++ {
		e.pushReady(dfg.KernelID(i))
	}
	st := &State{e: e}
	// Remove out of order: tail, middle, head.
	for _, k := range []dfg.KernelID{7, 3, 0, 5} {
		e.removeReady(k)
	}
	want := []dfg.KernelID{1, 2, 4, 6}
	if got := st.Ready(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after removals: ready = %v, want %v", got, want)
	}
	if e.readyLen() != len(want) {
		t.Fatalf("readyLen = %d, want %d", e.readyLen(), len(want))
	}
	// Every surviving kernel's index entry must point at itself.
	for _, k := range want {
		i := e.readyIdx[k]
		if i < 0 || e.ready[i] != k {
			t.Fatalf("readyIdx[%d] = %d inconsistent with ready %v", k, i, e.ready)
		}
	}
	// Remove the rest, then rebuild; double-removal must be a no-op.
	e.removeReady(3)
	for _, k := range want {
		e.removeReady(k)
	}
	if e.readyLen() != 0 {
		t.Fatalf("readyLen = %d after removing all", e.readyLen())
	}
	e.pushReady(5)
	e.pushReady(2)
	if got := st.Ready(); !reflect.DeepEqual(got, []dfg.KernelID{5, 2}) {
		t.Fatalf("after re-push: ready = %v", got)
	}
}

// TestEngineWarmRunAllocs pins the allocation budget of a warm engine run:
// once a Runner's buffers reach their high-water mark, a run may allocate
// only what escapes into the Result (placements, proc stats, the Result
// itself, the State handle and λ aggregation).
func TestEngineWarmRunAllocs(t *testing.T) {
	c := suiteCosts(t, 1)[0]
	r := NewRunner()
	pol := &leanGreedy{}
	if _, err := r.Run(c, pol, Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.Run(c, pol, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	// 157-kernel graph: placements + ProcStats + Result + State + stats
	// scratch. The budget is deliberately loose against GC accounting
	// noise but far below the seed's ~1000 allocations per run.
	if allocs > 16 {
		t.Errorf("warm engine run allocated %v times, want <= 16", allocs)
	}
}

// accessorProbe measures, from inside a live simulation, the allocation
// cost of the append-style State accessors with reused buffers.
type accessorProbe struct {
	leanGreedy
	readyAllocs, procAllocs, queueAllocs float64
	measured                             bool
}

func (p *accessorProbe) Name() string { return "accessor-probe" }
func (p *accessorProbe) Select(st *State) []Assignment {
	if !p.measured && st.ReadyLen() > 0 {
		p.measured = true
		p.readyAllocs = testing.AllocsPerRun(50, func() {
			p.ready = st.AppendReady(p.ready[:0])
		})
		p.procAllocs = testing.AllocsPerRun(50, func() {
			p.procs = st.AppendAvailableProcs(p.procs[:0])
		})
		var q []dfg.KernelID
		q = make([]dfg.KernelID, 0, 64)
		p.queueAllocs = testing.AllocsPerRun(50, func() {
			q = st.AppendQueuedKernels(q[:0], 0)
		})
	}
	return p.leanGreedy.Select(st)
}

func TestAppendAccessorsAllocFree(t *testing.T) {
	c := suiteCosts(t, 1)[0]
	probe := &accessorProbe{}
	// Warm the probe's buffers with one run, then measure on a second.
	if _, err := Run(c, probe, Options{}); err != nil {
		t.Fatal(err)
	}
	if !probe.measured {
		t.Fatal("probe never measured")
	}
	if probe.readyAllocs != 0 {
		t.Errorf("AppendReady allocated %v times per call, want 0", probe.readyAllocs)
	}
	if probe.procAllocs != 0 {
		t.Errorf("AppendAvailableProcs allocated %v times per call, want 0", probe.procAllocs)
	}
	if probe.queueAllocs != 0 {
		t.Errorf("AppendQueuedKernels allocated %v times per call, want 0", probe.queueAllocs)
	}
}

// BenchmarkRunnerWarm measures the warm engine path: same workload as
// BenchmarkEngineRun but with a reused Runner and an allocation-free
// policy.
func BenchmarkRunnerWarm(b *testing.B) {
	c := benchGraphCosts(b)
	r := NewRunner()
	pol := &leanGreedy{}
	if _, err := r.Run(c, pol, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(c, pol, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBatch measures the batch runner fanning the full Type2 suite
// across all CPUs, the shape cmd/sweep produces.
func BenchmarkRunBatch(b *testing.B) {
	costs := suiteCosts(b, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs := make([]BatchRun, len(costs))
		for j, c := range costs {
			runs[j] = BatchRun{Costs: c, Policy: &leanGreedy{}}
		}
		if _, err := RunBatch(context.Background(), runs, BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBatchSequentialBaseline is the same workload as
// BenchmarkRunBatch executed with sequential Run calls, for the speedup
// comparison.
func BenchmarkRunBatchSequentialBaseline(b *testing.B) {
	costs := suiteCosts(b, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range costs {
			if _, err := Run(c, &leanGreedy{}, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/dfg"
	"repro/internal/heaps"
	"repro/internal/platform"
	"repro/internal/stats"
)

// Assignment binds one kernel to one processor. Returning an assignment
// commits the kernel: it joins the processor's FIFO queue and can no longer
// be reassigned.
type Assignment struct {
	Kernel dfg.KernelID
	Proc   platform.ProcID
}

// Policy is implemented by every scheduling heuristic.
//
// Prepare is called once before simulation with the shared cost oracle;
// static policies (HEFT, PEFT) compute their full schedule here. Select is
// called at time zero and after every kernel completion; it returns the
// assignments to commit at the current instant (possibly none, if the
// policy prefers to wait). Dynamic policies must restrict themselves to
// st.Ready() kernels; static policies may assign any unassigned kernel
// (the engine starts it only once its dependencies complete).
//
// The engine consumes the slice returned by Select before the next Select
// call, so policies may reuse one backing array across calls to avoid
// per-event allocation.
//
// # When Prepare reuse is safe
//
// Prepare must be a pure function of its *Costs argument: a Costs is
// immutable once built, so everything Prepare derives from it — ranks, OCT
// tables, planned schedules, scratch sizing — is reusable verbatim
// whenever the same instance is Run again against the identical *Costs
// pointer. The built-in static policies exploit this by memoising Prepare
// on that pointer and only re-arming their per-run release state, which is
// what makes repeated-graph sweeps (α grids, arrival scans, robustness
// fracs) cheap. Reuse is NOT safe for state derived from anything else:
// per-run randomness must be reseeded in every Prepare (MET, AR), per-run
// statistics reset (APT), and nothing may depend on Options or on the
// actual-cost oracle — policies never see those. A policy that violates
// purity must not memoise; the engine always calls Prepare once per Run
// and relies on it to leave the instance in a fresh-run state.
type Policy interface {
	Name() string
	Prepare(c *Costs) error
	Select(st *State) []Assignment
}

// Options tunes engine behaviour beyond the cost model.
type Options struct {
	// SchedOverheadMs is added once per assignment between the moment a
	// processor picks the kernel up and the start of its incoming transfer.
	// It models the paper's first two λ components (scheduler processing
	// and scheduler→processor communication). Default 0.
	SchedOverheadMs float64
	// ArrivalTimes optionally paces the stream: kernel k does not become
	// ready (and is invisible to dynamic policies) before ArrivalTimes[k],
	// even if it has no dependencies. The thesis submits whole streams at
	// t = 0; arrival pacing is this repository's extension for studying λ
	// under realistic streaming. Must be empty or have
	// exactly one non-negative entry per kernel. Successors should not be
	// scheduled to arrive before predecessors; the engine tolerates it
	// (readiness waits for both) but λ then includes the arrival skew.
	ArrivalTimes []float64
	// ActualCosts optionally splits estimation from reality: the policy
	// keeps deciding with the Costs passed to Run (its "lookup table"),
	// while execution and transfers take the times given here. Both must be
	// prepared over the same graph and system. Nil means estimates are
	// exact, the thesis's model. λ baselines (best-exec) come from the
	// actual costs. This is the repository's extension for studying
	// robustness to estimation error.
	ActualCosts *Costs
	// Degrade optionally injects dynamic platform degradation — processors
	// slowing or going offline, links losing bandwidth — into the
	// actual-time path: execution and transfer durations integrate over the
	// time-varying speeds it reports. Policies never see it; their
	// estimates (Costs, BusyUntil) stay nominal, the same split as
	// ActualCosts. Nil means the platform never degrades.
	Degrade Degradation
	// Lanes sets the parallel lane count for the trajectory-independent
	// phases the engine runs after the event loop (latency-array fill and
	// sorting; see lanes.go — the event trajectory itself is inherently
	// sequential). 0 or 1 runs serial, > 1 uses that many lanes, < 0 one
	// lane per CPU. Results are byte-identical for every value.
	Lanes int
}

// Placement records the full lifecycle of one kernel in a finished
// simulation. All times are milliseconds since simulation start.
type Placement struct {
	Kernel dfg.KernelID
	Proc   platform.ProcID
	// Arrival is when the kernel entered the stream: its Options
	// .ArrivalTimes entry, or 0 under the thesis's submit-everything-at-
	// zero model. Open-system latency metrics are measured from here.
	Arrival float64
	// Ready is when every dependency had finished (0 for entry kernels).
	Ready float64
	// Assign is when the policy committed the kernel to Proc.
	Assign float64
	// TransferStart is when Proc began receiving the kernel's inputs.
	TransferStart float64
	// ExecStart is when execution proper began.
	ExecStart float64
	// Finish is when execution completed.
	Finish float64
	// BestExecMs is the kernel's execution time on its best processor
	// (pmin) — the baseline against which λ is measured.
	BestExecMs float64
}

// Lambda returns the kernel's λ scheduling delay: everything beyond the
// ideal of executing instantly on the best processor the moment the kernel
// became ready,
//
//	λ = (Finish − Ready) − BestExec.
//
// It covers all three components the paper lists — scheduler processing
// and scheduler→processor communication (the per-assignment overhead),
// waiting on busy processors and on dependent data movement — plus the
// execution-time sacrifice of running on a non-optimal processor, which is
// how policies that never wait but pick terrible processors (SPN, SS, AG)
// accumulate the enormous λ totals of the paper's Tables 11–12.
func (p Placement) Lambda() float64 { return p.Finish - p.Ready - p.BestExecMs }

// Sojourn returns the kernel's open-system latency: the time from entering
// the stream to finishing execution (arrival → finish). Under the closed
// model (no arrival pacing) this is simply the completion time.
func (p Placement) Sojourn() float64 { return p.Finish - p.Arrival }

// QueueWait returns the time from entering the stream to the start of
// execution proper (arrival → exec-start): dependency wait, queueing on
// busy processors, scheduling overhead and input staging combined.
func (p Placement) QueueWait() float64 { return p.ExecStart - p.Arrival }

// ProcStat aggregates one processor's time accounting over a run.
type ProcStat struct {
	Proc    platform.ProcID
	ExecMs  float64 // time spent executing kernels
	XferMs  float64 // time spent receiving input data
	IdleMs  float64 // Makespan - ExecMs - XferMs
	Kernels int     // kernels executed
}

// LambdaStats aggregates λ delays per the thesis (§3.2 metrics 6–8).
type LambdaStats struct {
	TotalMs float64
	// Count is N: the number of kernels that experienced a non-zero delay.
	Count int
	AvgMs float64 // TotalMs / Count (0 if Count == 0), Eq. 11
	StdMs float64 // population stddev over the non-zero delays, Eq. 12
}

// Result is everything a finished simulation reports.
type Result struct {
	Policy     string
	MakespanMs float64
	Placements []Placement // indexed by kernel ID
	ProcStats  []ProcStat  // indexed by processor ID
	Lambda     LambdaStats
	// Sojourn is the distribution of per-kernel arrival→finish latency;
	// QueueWait of arrival→exec-start delay. Both are exact (computed over
	// every kernel) and zero-valued — never ±Inf — for empty runs, so
	// results always serialize.
	Sojourn   stats.Summary
	QueueWait stats.Summary
	// SelectCalls counts policy invocations; Assignments counts committed
	// kernels (== number of kernels).
	SelectCalls int
	Assignments int
}

// PlacementOf returns the placement of a kernel.
func (r *Result) PlacementOf(k dfg.KernelID) Placement { return r.Placements[k] }

// eventKind distinguishes the engine's event types. 32 bits keep the event
// struct at 24 bytes — the heap holds one event per in-flight kernel, and
// paced million-kernel streams buffer one arrival event per kernel.
type eventKind int32

const (
	evFinish  eventKind = iota // a kernel completed execution
	evArrival                  // a kernel arrived in the stream
)

// event is one scheduled occurrence.
type event struct {
	at     float64
	kind   eventKind
	kernel dfg.KernelID
	proc   platform.ProcID // evFinish only
}

// before orders events: by time, completions before arrivals at ties, then
// by kernel ID for full determinism. The time comparison is a three-way
// split rather than a != test so ties fall through to the tie-breakers
// without a floating-point equality.
func (a event) before(b event) bool {
	if a.at < b.at {
		return true
	}
	if b.at < a.at {
		return false
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.kernel < b.kernel
}

// pushEvent adds an event to the engine's min-heap. The heap is slice-based
// (internal/heaps rather than container/heap) so pushes and pops never box
// events into interfaces — this keeps the event loop allocation-free once
// the backing array has grown to its high-water mark.
//
//apt:hotpath
func (e *engine) pushEvent(ev event) {
	e.events = append(e.events, ev)
	heaps.Up(e.events, len(e.events)-1, event.before)
}

// popEvent removes and returns the earliest event. Callers must check
// len(e.events) > 0 first.
//
//apt:hotpath
func (e *engine) popEvent() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.events = h[:n]
	heaps.Down(e.events, 0, event.before)
	return top
}

// procQueue is one processor's FIFO of committed-but-not-started kernels.
// Dequeuing advances head instead of reslicing so the backing array is
// reusable across runs.
type procQueue struct {
	items []dfg.KernelID
	head  int
}

func (q *procQueue) len() int            { return len(q.items) - q.head }
func (q *procQueue) peek() dfg.KernelID  { return q.items[q.head] }
func (q *procQueue) push(k dfg.KernelID) { q.items = append(q.items, k) }

func (q *procQueue) pop() {
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
}

func (q *procQueue) reset() {
	q.items = q.items[:0]
	q.head = 0
}

// State is the read-only view a policy receives in Select.
type State struct{ e *engine }

// Now returns the current simulation time in ms.
func (s *State) Now() float64 { return s.e.now }

// Costs returns the shared cost oracle.
func (s *State) Costs() *Costs { return s.e.costs }

// Graph returns the workload graph.
func (s *State) Graph() *dfg.Graph { return s.e.costs.g }

// System returns the platform.
func (s *State) System() *platform.System { return s.e.costs.sys }

// Ready returns the kernels whose dependencies have completed and that have
// not been assigned yet, in first-come-first-serve order: ascending by the
// time they became ready, ties by kernel ID (which is stream order).
// The returned slice is fresh and owned by the caller. Allocation-sensitive
// policies should prefer AppendReady with a reused buffer.
func (s *State) Ready() []dfg.KernelID {
	return s.AppendReady(make([]dfg.KernelID, 0, s.e.readyLen()))
}

// AppendReady appends the ready kernels (same order as Ready) to buf and
// returns the extended slice. Passing buf[:0] of a buffer retained across
// Select calls makes the query allocation-free.
func (s *State) AppendReady(buf []dfg.KernelID) []dfg.KernelID {
	for _, k := range s.e.ready {
		if k >= 0 {
			buf = append(buf, k)
		}
	}
	return buf
}

// ReadyLen returns the number of ready, unassigned kernels.
func (s *State) ReadyLen() int { return s.e.readyLen() }

// Unassigned reports whether the kernel has not been committed yet.
func (s *State) Unassigned(k dfg.KernelID) bool { return !s.e.assigned[k] }

// Finished reports whether the kernel has completed execution.
func (s *State) Finished(k dfg.KernelID) bool { return s.e.finished[k] }

// Available reports whether processor p is idle: executing no kernel and no
// transfer, with an empty queue (the paper's set A).
func (s *State) Available(p platform.ProcID) bool {
	return s.e.running[p] < 0 && s.e.queues[p].len() == 0
}

// AvailableProcs returns all available processors in ID order. The returned
// slice is fresh; allocation-sensitive policies should prefer
// AppendAvailableProcs with a reused buffer.
func (s *State) AvailableProcs() []platform.ProcID {
	return s.AppendAvailableProcs(nil)
}

// AppendAvailableProcs appends the available processors in ID order to buf
// and returns the extended slice.
func (s *State) AppendAvailableProcs(buf []platform.ProcID) []platform.ProcID {
	for p := range s.e.running {
		if s.Available(platform.ProcID(p)) {
			buf = append(buf, platform.ProcID(p))
		}
	}
	return buf
}

// BusyUntil returns the time the processor's current work (running kernel
// plus queued kernels, by current estimates) will drain. For an idle
// processor it returns Now. Queued-but-blocked kernels make this a lower
// bound.
func (s *State) BusyUntil(p platform.ProcID) float64 {
	t := s.e.now
	if s.e.busyUntil[p] > t {
		t = s.e.busyUntil[p]
	}
	q := &s.e.queues[p]
	for _, k := range q.items[q.head:] {
		t += s.e.costs.Exec(k, p)
	}
	return t
}

// QueueLen returns the number of committed-but-not-started kernels on p.
func (s *State) QueueLen(p platform.ProcID) int { return s.e.queues[p].len() }

// QueuedKernels returns the committed-but-not-started kernels on p in queue
// order. Fresh slice; allocation-sensitive callers should prefer
// AppendQueuedKernels.
func (s *State) QueuedKernels(p platform.ProcID) []dfg.KernelID {
	return s.AppendQueuedKernels(nil, p)
}

// AppendQueuedKernels appends p's committed-but-not-started kernels in
// queue order to buf and returns the extended slice.
func (s *State) AppendQueuedKernels(buf []dfg.KernelID, p platform.ProcID) []dfg.KernelID {
	q := &s.e.queues[p]
	return append(buf, q.items[q.head:]...)
}

// ProcOf returns the processor a kernel was committed to and whether it has
// been committed at all. Needed to price transfers from finished
// predecessors.
func (s *State) ProcOf(k dfg.KernelID) (platform.ProcID, bool) {
	p := s.e.procOf[k]
	return p, p >= 0
}

// RecentExecAvg returns the mean execution time of the last k kernels that
// completed on processor p (the τᵍₖ of the AG policy, Eq. 2). If fewer than
// k kernels have completed it averages what exists; with no history it
// returns 0.
func (s *State) RecentExecAvg(p platform.ProcID, k int) float64 {
	h := s.e.history[p]
	if len(h) == 0 || k <= 0 {
		return 0
	}
	if k > len(h) {
		k = len(h)
	}
	var sum float64
	for _, v := range h[len(h)-k:] {
		sum += v
	}
	return sum / float64(k)
}

// engine is the mutable simulation state. A Runner reuses one engine (and
// its buffers) across runs; only state that escapes into the Result
// (placements, proc stats) is allocated fresh per run.
type engine struct {
	costs  *Costs // what the policy sees (estimates)
	actual *Costs // what execution takes (reality)
	pol    Policy
	opt    Options

	now float64
	// ready is the FIFO of ready, unassigned kernels: ascending by
	// (readyTime, id). Removed entries become -1 tombstones so commit()
	// stays O(1) without disturbing FCFS order; the list is compacted once
	// tombstones outnumber live entries.
	ready      []dfg.KernelID
	readyHoles int
	// readyIdx maps kernel ID -> its index in ready, or -1 when absent.
	// int32 like every per-kernel array: KernelIDs are 32-bit, so indices
	// into kernel-length slices fit by construction.
	readyIdx  []int32
	readyAt   []float64
	predsLeft []int32
	arrived   []bool
	assigned  []bool
	finished  []bool
	procOf    []platform.ProcID
	queues    []procQueue
	running   []dfg.KernelID // -1 when idle
	busyUntil []float64
	history   [][]float64

	placements  []Placement // escapes into Result: fresh per run
	events      []event     // min-heap ordered by event.before
	lambdas     []float64
	sojourns    []float64 // scratch for latency summaries, reused per run
	qwaits      []float64
	sortScratch []float64 // merge buffer for lane-parallel latency sorts
	nFinished   int
	selectCalls int
	assignments int

	// arena slab-allocates the escaping placement blocks; see slab.go.
	arena placementArena

	// placeFn resolves a predecessor's processor for transfer pricing. It is
	// built once per engine (not per start call) so the hot path does not
	// allocate a closure per kernel launch.
	placeFn func(dfg.KernelID) platform.ProcID

	// latFn fills the latency arrays for one lane chunk. Like placeFn it is
	// built once per engine and captures only e, so warm runs do not pay a
	// closure allocation per result() call; it reads e.sojourns/e.qwaits,
	// which result() sizes before fanning out.
	latFn func(c laneChunk)
}

func (e *engine) readyLen() int { return len(e.ready) - e.readyHoles }

// pushReady appends a kernel to the ready FIFO.
//
//apt:hotpath
func (e *engine) pushReady(k dfg.KernelID) {
	e.readyIdx[k] = int32(len(e.ready))
	e.ready = append(e.ready, k)
}

// removeReady drops a kernel from the ready FIFO in O(1) amortised time by
// tombstoning its slot; order of the remaining entries is unchanged.
//
//apt:hotpath
func (e *engine) removeReady(k dfg.KernelID) {
	i := e.readyIdx[k]
	if i < 0 {
		return
	}
	e.ready[i] = -1
	e.readyIdx[k] = -1
	e.readyHoles++
	if e.readyHoles > len(e.ready)-e.readyHoles {
		e.compactReady()
	}
}

// compactReady squeezes tombstones out of the ready list in place.
func (e *engine) compactReady() {
	live := e.ready[:0]
	for _, k := range e.ready {
		if k >= 0 {
			e.readyIdx[k] = int32(len(live))
			live = append(live, k)
		}
	}
	e.ready = live
	e.readyHoles = 0
}

// grow returns s resized to n elements, reusing its backing array when
// possible. Contents are unspecified; callers must reinitialise.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Runner executes simulations while reusing the engine's internal buffers
// across runs — the event heap, ready list, per-processor queues and all
// per-kernel bookkeeping arrays survive between calls, so a warm Runner
// allocates only what escapes into each Result. A Runner is NOT safe for
// concurrent use; RunBatch gives every worker its own.
type Runner struct {
	e engine
}

// NewRunner returns an empty Runner; buffers grow to the high-water mark of
// the runs it executes.
func NewRunner() *Runner { return &Runner{} }

// Run simulates graph execution under the policy and returns the metrics.
// The cost oracle must have been prepared for the same graph the policy
// will schedule. Equivalent to the package-level Run but reuses state.
func (r *Runner) Run(c *Costs, pol Policy, opt Options) (*Result, error) {
	if c == nil || pol == nil {
		return nil, fmt.Errorf("sim: Run requires costs and a policy")
	}
	if opt.SchedOverheadMs < 0 {
		return nil, fmt.Errorf("sim: negative SchedOverheadMs")
	}
	if len(opt.ArrivalTimes) != 0 && len(opt.ArrivalTimes) != c.g.NumKernels() {
		return nil, fmt.Errorf("sim: %d arrival times for %d kernels", len(opt.ArrivalTimes), c.g.NumKernels())
	}
	for i, at := range opt.ArrivalTimes {
		if at < 0 {
			return nil, fmt.Errorf("sim: kernel %d has negative arrival time %v", i, at)
		}
	}
	actual := opt.ActualCosts
	if actual == nil {
		actual = c
	}
	if actual.Graph() != c.Graph() {
		return nil, fmt.Errorf("sim: ActualCosts prepared for a different graph")
	}
	if actual.System().NumProcs() != c.System().NumProcs() {
		return nil, fmt.Errorf("sim: ActualCosts prepared for a different system")
	}
	if err := pol.Prepare(c); err != nil {
		return nil, fmt.Errorf("sim: policy %s prepare: %w", pol.Name(), err)
	}
	e := &r.e
	e.reset(c, actual, pol, opt)
	g := c.g
	n := g.NumKernels()
	for id := 0; id < n; id++ {
		e.predsLeft[id] = int32(g.InDegree(dfg.KernelID(id)))
		arrival := 0.0
		if len(opt.ArrivalTimes) > 0 {
			arrival = opt.ArrivalTimes[id]
		}
		if arrival > 0 {
			e.placements[id].Arrival = arrival
			e.placements[id].Ready = arrival // provisional; finalised on readiness
			e.pushEvent(event{at: arrival, kind: evArrival, kernel: dfg.KernelID(id)})
			continue
		}
		e.arrived[id] = true
		if e.predsLeft[id] == 0 {
			e.pushReady(dfg.KernelID(id))
		}
	}
	st := &State{e: e}

	for e.nFinished < n {
		e.invokePolicy(st)
		if err := e.startQueued(); err != nil {
			return nil, err
		}
		if len(e.events) == 0 {
			return nil, fmt.Errorf("sim: policy %s deadlocked at t=%v with %d/%d kernels finished (%d ready)",
				pol.Name(), e.now, e.nFinished, n, e.readyLen())
		}
		ev := e.popEvent()
		if ev.at < e.now {
			return nil, fmt.Errorf("sim: time went backwards: %v -> %v", e.now, ev.at)
		}
		e.now = ev.at
		switch ev.kind {
		case evFinish:
			e.complete(ev)
		case evArrival:
			e.arrive(ev.kernel)
		}
	}
	return e.result(), nil
}

// reset re-dimensions the engine for a run, reusing buffers from previous
// runs where capacities allow.
func (e *engine) reset(c, actual *Costs, pol Policy, opt Options) {
	n := c.g.NumKernels()
	np := c.sys.NumProcs()
	e.costs = c
	e.actual = actual
	e.pol = pol
	e.opt = opt
	e.now = 0
	e.nFinished = 0
	e.selectCalls = 0
	e.assignments = 0

	e.ready = e.ready[:0]
	e.readyHoles = 0
	e.events = e.events[:0]
	e.lambdas = e.lambdas[:0]
	e.sojourns = e.sojourns[:0]
	e.qwaits = e.qwaits[:0]

	e.readyIdx = grow(e.readyIdx, n)
	e.readyAt = grow(e.readyAt, n)
	e.predsLeft = grow(e.predsLeft, n)
	e.arrived = grow(e.arrived, n)
	e.assigned = grow(e.assigned, n)
	e.finished = grow(e.finished, n)
	e.procOf = grow(e.procOf, n)
	for i := 0; i < n; i++ {
		e.readyIdx[i] = -1
		e.readyAt[i] = 0
		e.predsLeft[i] = 0
		e.arrived[i] = false
		e.assigned[i] = false
		e.finished[i] = false
		e.procOf[i] = -1
	}

	e.queues = grow(e.queues, np)
	e.running = grow(e.running, np)
	e.busyUntil = grow(e.busyUntil, np)
	e.history = grow(e.history, np)
	for p := 0; p < np; p++ {
		e.queues[p].reset()
		e.running[p] = -1
		e.busyUntil[p] = 0
		if e.history[p] != nil {
			e.history[p] = e.history[p][:0]
		}
	}

	if e.placeFn == nil {
		e.placeFn = func(pred dfg.KernelID) platform.ProcID { return e.procOf[pred] }
	}

	// Placements escape into the Result, so each run gets a block no other
	// run will ever touch — slab-carved rather than allocated, so repeated
	// small runs share one arena allocation (see slab.go).
	e.placements = e.arena.alloc(n)
}

// runnerPool recycles Runners across package-level Run calls. Results never
// alias pooled state — placements are slab-carved blocks handed out exactly
// once (see slab.go) and everything else escaping is freshly built — so
// pooling only changes how often the engine's internal buffers are rebuilt,
// never what a run returns.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

// Run simulates graph execution under the policy and returns the metrics.
// The cost oracle must have been prepared for the same graph the policy
// will schedule. Run draws a warm Runner from an internal pool, so repeated
// calls cost little more than Runner reuse; callers wanting explicit
// control (or single-goroutine cheapness) can still hold their own Runner,
// and RunBatch gives every worker one.
func Run(c *Costs, pol Policy, opt Options) (*Result, error) {
	r := runnerPool.Get().(*Runner)
	res, err := r.Run(c, pol, opt)
	r.release()
	runnerPool.Put(r)
	return res, err
}

// release drops the engine's references to caller-owned inputs (costs,
// policy, options) so a pooled Runner never pins a graph or cost table
// alive. Internal buffers are deliberately kept: they are the point of
// pooling.
func (r *Runner) release() {
	e := &r.e
	e.costs, e.actual, e.pol = nil, nil, nil
	e.opt = Options{}
}

// arrive marks a paced kernel as present in the stream.
//
//apt:hotpath
func (e *engine) arrive(k dfg.KernelID) {
	e.arrived[k] = true
	if e.predsLeft[k] == 0 {
		e.readyAt[k] = e.now
		e.placements[k].Ready = e.now
		if !e.assigned[k] {
			e.pushReady(k)
		}
	}
}

//apt:hotpath
func (e *engine) invokePolicy(st *State) {
	e.selectCalls++
	for _, a := range e.pol.Select(st) {
		e.commit(a)
	}
}

// commit validates and enqueues an assignment. Validation failures panic
// via the cold badAssignment helper so the hot path carries no fmt calls.
//
//apt:hotpath
func (e *engine) commit(a Assignment) {
	n := e.costs.g.NumKernels()
	if a.Kernel < 0 || int(a.Kernel) >= n ||
		a.Proc < 0 || int(a.Proc) >= e.costs.sys.NumProcs() ||
		e.assigned[a.Kernel] {
		e.badAssignment(a)
	}
	e.assigned[a.Kernel] = true
	e.procOf[a.Kernel] = a.Proc
	e.assignments++
	e.placements[a.Kernel].Kernel = a.Kernel
	e.placements[a.Kernel].Proc = a.Proc
	e.placements[a.Kernel].Assign = e.now
	_, best := e.actual.BestProc(a.Kernel)
	e.placements[a.Kernel].BestExecMs = best
	e.queues[a.Proc].push(a.Kernel)
	// Drop from the ready list if present (static policies may assign
	// kernels that are not ready yet, in any order).
	e.removeReady(a.Kernel)
}

// badAssignment re-derives why commit rejected the assignment and panics
// with the diagnostic. Kept out of commit so the //apt:hotpath discipline
// (no fmt, no allocation) holds on the accepting path.
//
//apt:coldpath
func (e *engine) badAssignment(a Assignment) {
	if a.Kernel < 0 || int(a.Kernel) >= e.costs.g.NumKernels() {
		panic(fmt.Sprintf("sim: policy %s assigned unknown kernel %d", e.pol.Name(), a.Kernel))
	}
	if a.Proc < 0 || int(a.Proc) >= e.costs.sys.NumProcs() {
		panic(fmt.Sprintf("sim: policy %s assigned kernel %d to unknown processor %d", e.pol.Name(), a.Kernel, a.Proc))
	}
	panic(fmt.Sprintf("sim: policy %s double-assigned kernel %d", e.pol.Name(), a.Kernel))
}

// startQueued starts the head of every idle processor's queue whose
// dependencies have completed.
//
//apt:hotpath
func (e *engine) startQueued() error {
	for p := range e.queues {
		if e.running[p] >= 0 || e.queues[p].len() == 0 {
			continue
		}
		k := e.queues[p].peek()
		if e.predsLeft[k] > 0 || !e.arrived[k] {
			continue // head blocked on dependencies or not yet arrived
		}
		e.queues[p].pop()
		if err := e.start(k, platform.ProcID(p)); err != nil {
			return err
		}
	}
	return nil
}

//apt:hotpath
func (e *engine) start(k dfg.KernelID, p platform.ProcID) error {
	pl := &e.placements[k]
	pl.TransferStart = e.now + e.opt.SchedOverheadMs
	if e.opt.Degrade == nil {
		// Nominal actual-time path: durations come straight from the
		// actual cost oracle (== the estimates unless ActualCosts split
		// them).
		pl.ExecStart = pl.TransferStart + e.actual.TransferIn(k, p, e.placeFn)
		pl.Finish = pl.ExecStart + e.actual.Exec(k, p)
	} else if err := e.startDegraded(k, p, pl); err != nil {
		return err
	}
	e.running[p] = k
	e.busyUntil[p] = pl.Finish
	e.pushEvent(event{at: pl.Finish, kernel: k, proc: p})
	return nil
}

// startDegraded computes the degraded-path timings: the nominal durations
// integrated over the time-varying speeds of the degradation schedule.
// Split from start so the nominal hot path stays free of error formatting;
// degraded mode integrates piecewise speed schedules and is allowed to
// allocate, so the hotpath closure stops here.
//
//apt:coldpath
func (e *engine) startDegraded(k dfg.KernelID, p platform.ProcID, pl *Placement) error {
	execStart, err := e.transferFinish(k, p, pl.TransferStart)
	if err != nil {
		return fmt.Errorf("sim: kernel %d transfer onto proc %d: %w", k, p, err)
	}
	pl.ExecStart = execStart
	finish, err := elapseExec(e.opt.Degrade, p, e.actual.Exec(k, p), execStart)
	if err != nil {
		return fmt.Errorf("sim: kernel %d on proc %d: %w", k, p, err)
	}
	pl.Finish = finish
	return nil
}

//apt:hotpath
func (e *engine) complete(ev event) {
	k, p := ev.kernel, ev.proc
	e.finished[k] = true
	e.nFinished++
	e.running[p] = -1
	// The AG policy's execution history holds observed durations: under
	// degradation that is the stretched wall time, not the nominal cost
	// (the nominal path keeps the exact oracle value to avoid float
	// round-trip noise).
	obs := e.actual.Exec(k, p)
	if e.opt.Degrade != nil {
		obs = e.placements[k].Finish - e.placements[k].ExecStart
	}
	e.history[p] = append(e.history[p], obs)
	for _, s := range e.costs.g.Succs(k) {
		e.predsLeft[s]--
		if e.predsLeft[s] == 0 && e.arrived[s] {
			e.readyAt[s] = e.now
			e.placements[s].Ready = e.now
			if !e.assigned[s] {
				e.pushReady(s)
			}
		}
	}
}

func (e *engine) result() *Result {
	np := e.costs.sys.NumProcs()
	res := &Result{
		Policy:      e.pol.Name(),
		Placements:  e.placements,
		ProcStats:   make([]ProcStat, np),
		SelectCalls: e.selectCalls,
		Assignments: e.assignments,
	}
	for p := 0; p < np; p++ {
		res.ProcStats[p].Proc = platform.ProcID(p)
	}
	lanes := e.opt.Lanes
	n := len(e.placements)
	// Latency arrays fill in parallel — disjoint indexed writes, one value
	// per kernel — while every float accumulation below (per-processor time
	// sums, λ totals) stays on this goroutine in kernel-ID order: float
	// addition does not reassociate, and lane counts must never change
	// output bytes (see lanes.go).
	e.sojourns = grow(e.sojourns, n)
	e.qwaits = grow(e.qwaits, n)
	if e.latFn == nil {
		e.latFn = func(c laneChunk) {
			for i := c.lo; i < c.hi; i++ {
				pl := &e.placements[i]
				e.sojourns[i] = pl.Sojourn()
				e.qwaits[i] = pl.QueueWait()
			}
		}
	}
	parallelChunks(n, lanes, e.latFn)
	sojourns, qwaits := e.sojourns, e.qwaits
	var makespan float64
	lambdas := e.lambdas[:0]
	for i := range e.placements {
		pl := &e.placements[i]
		if pl.Finish > makespan {
			makespan = pl.Finish
		}
		st := &res.ProcStats[pl.Proc]
		st.ExecMs += pl.Finish - pl.ExecStart
		st.XferMs += pl.ExecStart - pl.TransferStart
		st.Kernels++
		if l := pl.Lambda(); l > 0 {
			lambdas = append(lambdas, l)
		}
	}
	e.lambdas = lambdas
	// The sorts behind the latency summaries are the expensive half of
	// result assembly at scale; they shard across lanes and merge
	// deterministically (sorted output is a pure function of the multiset).
	// Only the scalar summaries escape into the Result, so warm runs stay
	// allocation-lean.
	// The sorted/spare returns rotate backing arrays between the latency
	// scratches and the merge scratch, so each buffer keeps exactly one
	// owner and nothing aliases across runs.
	sorted, spare := parallelSortFloat64s(sojourns, e.sortScratch, lanes)
	res.Sojourn = stats.SummarizeSorted(sorted)
	e.sojourns, e.sortScratch = sorted, spare
	sorted, spare = parallelSortFloat64s(qwaits, e.sortScratch, lanes)
	res.QueueWait = stats.SummarizeSorted(sorted)
	e.qwaits, e.sortScratch = sorted, spare
	res.MakespanMs = makespan
	for p := range res.ProcStats {
		st := &res.ProcStats[p]
		st.IdleMs = makespan - st.ExecMs - st.XferMs
		if st.IdleMs < 0 && st.IdleMs > -1e-9 {
			st.IdleMs = 0 // clamp float noise
		}
	}
	res.Lambda = LambdaStats{
		TotalMs: stats.Sum(lambdas),
		Count:   len(lambdas),
		StdMs:   stats.StdDev(lambdas),
	}
	if res.Lambda.Count > 0 {
		res.Lambda.AvgMs = res.Lambda.TotalMs / float64(res.Lambda.Count)
	}
	return res
}

// Validate re-checks the structural invariants of a finished simulation:
// every kernel placed exactly once on a real processor; per-processor
// occupancy intervals (transfer start to finish) never overlap; no kernel
// starts its transfer before being assigned nor executes before all its
// dependencies finish; λ is non-negative; and the reported makespan equals
// the latest finish. It exists for tests and for downstream users embedding
// custom policies.
func (r *Result) Validate(g *dfg.Graph, sys *platform.System) error {
	return r.ValidateLanes(g, sys, 1)
}

// ValidateLanes is Validate fanned out over the given number of parallel
// lanes (0 or 1 serial, < 0 one per CPU). The per-kernel lifecycle checks shard
// across kernel-index chunks and the per-processor occupancy scans across
// processors; both report the same first error the serial walk would, for
// any lane count (see lanes.go). The occupancy index is a counting sort
// into one int32 slice — 4 bytes per kernel — instead of the former
// map-of-placement-slices, which copied every 64-byte Placement once and
// was the validation pass's dominant allocation at 100k+ kernels.
func (r *Result) ValidateLanes(g *dfg.Graph, sys *platform.System, lanes int) error {
	n := g.NumKernels()
	if len(r.Placements) != n {
		return fmt.Errorf("sim: %d placements for %d kernels", len(r.Placements), n)
	}
	if n == 0 {
		return nil
	}
	np := sys.NumProcs()
	// Tolerances scale with the magnitudes involved: at 100k-kernel scale
	// simulated times reach 1e7–1e8 ms, where one double-precision ulp
	// already exceeds a fixed 1e-9 (e.g. λ on the best processor computes
	// (ready+exec)−ready−exec, which rounds to ±ulp(finish), not ±1e-9).
	eps := func(at float64) float64 { return 1e-9 * (1 + math.Abs(at)) }

	chunks := laneChunks(n, lanes)
	nl := len(chunks)
	errs := make([]laneError, nl)
	laneMax := make([]float64, nl)
	// perLane[lane*np+p] counts lane-local kernels on processor p; the
	// prefix pass below turns the columns into per-lane write cursors so
	// every lane can fill its slice of the occupancy index without locks —
	// each lane holds a private reservation of every processor's bucket.
	perLane := make([]int32, nl*np)
	parallelChunks(n, lanes, func(c laneChunk) {
		counts := perLane[c.lane*np : (c.lane+1)*np]
		var maxFinish float64
		for i := c.lo; i < c.hi; i++ {
			pl := &r.Placements[i]
			if int(pl.Kernel) != i {
				errs[c.lane] = laneError{at: i, err: fmt.Errorf("sim: placement %d records kernel %d", i, pl.Kernel)}
				return
			}
			if pl.Proc < 0 || int(pl.Proc) >= np {
				errs[c.lane] = laneError{at: i, err: fmt.Errorf("sim: kernel %d placed on unknown processor %d", i, pl.Proc)}
				return
			}
			// Note: pl.Assign may precede pl.Ready — static policies commit
			// kernels before their dependencies finish; that is legal.
			if pl.TransferStart < pl.Assign-eps(pl.Assign) {
				errs[c.lane] = laneError{at: i, err: fmt.Errorf("sim: kernel %d transfer (%v) before assignment (%v)", i, pl.TransferStart, pl.Assign)}
				return
			}
			if pl.ExecStart < pl.TransferStart-eps(pl.TransferStart) || pl.Finish < pl.ExecStart-eps(pl.ExecStart) {
				errs[c.lane] = laneError{at: i, err: fmt.Errorf("sim: kernel %d has non-monotonic lifecycle %+v", i, *pl)}
				return
			}
			if pl.Lambda() < -eps(pl.Finish) {
				errs[c.lane] = laneError{at: i, err: fmt.Errorf("sim: kernel %d has negative λ %v", i, pl.Lambda())}
				return
			}
			for _, pred := range g.Preds(pl.Kernel) {
				if r.Placements[pred].Finish > pl.TransferStart+eps(pl.TransferStart) {
					errs[c.lane] = laneError{at: i, err: fmt.Errorf("sim: kernel %d starts transfers at %v before predecessor %d finishes at %v",
						i, pl.TransferStart, pred, r.Placements[pred].Finish)}
					return
				}
			}
			counts[pl.Proc]++
			if pl.Finish > maxFinish {
				maxFinish = pl.Finish
			}
		}
		laneMax[c.lane] = maxFinish
	})
	if err := firstLaneError(errs); err != nil {
		return err
	}
	var maxFinish float64
	for _, m := range laneMax { // float max is exact: no rounding, any merge order
		if m > maxFinish {
			maxFinish = m
		}
	}
	if math.Abs(maxFinish-r.MakespanMs) > math.Max(1e-6, eps(maxFinish)) {
		return fmt.Errorf("sim: makespan %v != latest finish %v", r.MakespanMs, maxFinish)
	}

	// Turn the per-lane counts into write cursors: cursor(lane, p) =
	// bucket start of p + kernels earlier lanes put on p. Filling through
	// these cursors is a stable counting sort — bucket entries come out in
	// ascending kernel index for any lane count.
	starts := make([]int32, np+1)
	for p := 0; p < np; p++ {
		var total int32
		for l := 0; l < nl; l++ {
			c := perLane[l*np+p]
			perLane[l*np+p] = starts[p] + total
			total += c
		}
		starts[p+1] = starts[p] + total
	}
	byProc := make([]int32, n) // occupancy index: kernel indices bucketed by processor
	parallelChunks(n, lanes, func(c laneChunk) {
		cursors := perLane[c.lane*np : (c.lane+1)*np]
		for i := c.lo; i < c.hi; i++ {
			p := r.Placements[i].Proc
			byProc[cursors[p]] = int32(i)
			cursors[p]++
		}
	})

	// Per-processor occupancy: order each bucket by transfer start and scan
	// for overlap. Buckets are independent, so they shard across lanes; the
	// first error is deterministic because buckets are walked by (processor,
	// position) stamp. Ties on TransferStart order by kernel index so the
	// sort — and any reported overlap pair — is a total order.
	// Sized by this scan's own chunk count: lanes normalise against the
	// processor count here, not the kernel count, and np may exceed n.
	procErrs := make([]laneError, len(laneChunks(np, lanes)))
	parallelChunks(np, lanes, func(c laneChunk) {
		for p := c.lo; p < c.hi; p++ {
			if procErrs[c.lane].err != nil {
				return
			}
			bucket := byProc[starts[p]:starts[p+1]]
			sort.Slice(bucket, func(i, j int) bool {
				a, b := &r.Placements[bucket[i]], &r.Placements[bucket[j]]
				if a.TransferStart < b.TransferStart {
					return true
				}
				if b.TransferStart < a.TransferStart {
					return false
				}
				return bucket[i] < bucket[j]
			})
			for i := 1; i < len(bucket); i++ {
				prev, cur := &r.Placements[bucket[i-1]], &r.Placements[bucket[i]]
				if cur.TransferStart < prev.Finish-eps(prev.Finish) {
					procErrs[c.lane] = laneError{at: p, err: fmt.Errorf("sim: processor %d overlap: kernel %d (start %v) before kernel %d finished (%v)",
						p, cur.Kernel, cur.TransferStart, prev.Kernel, prev.Finish)}
					return
				}
			}
		}
	})
	return firstLaneError(procErrs)
}

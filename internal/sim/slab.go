package sim

// placementArena slab-allocates the per-run Placement records that escape
// into Results. One Run carves one block; blocks are disjoint sub-slices of
// a shared slab, so a Result's placements stay valid for its lifetime while
// the arena moves on to the next run. Nothing is ever recycled in place:
// when a slab fills up the arena simply starts a new one, and the old slab
// is freed wholesale by the GC once the last Result holding a block of it
// is dropped. That turns per-run placement allocation — the dominant
// escaping allocation of small-graph sweeps — into one amortised allocation
// per arenaMaxSlab records, with zero per-kernel bookkeeping and no risk of
// aliasing a live Result.
//
// Slab sizing is adaptive: the first slab is exactly the requested block, so
// a one-shot Runner pays the same single allocation it would without an
// arena, and each refill doubles the previous capacity up to arenaMaxSlab.
// Warm Runners therefore converge on one ~1 MiB allocation per arenaMaxSlab
// records, while cold or million-kernel runs never over-reserve.
type placementArena struct {
	slab []Placement
}

// arenaMaxSlab caps slab growth in records (16384 ≈ 1 MiB): big enough to
// amortise sweep-style workloads, small enough that a retained Result pins
// at most one slab of overhead.
const arenaMaxSlab = 1 << 14

// alloc returns a zeroed n-record block. The block is full-sliced so caller
// appends can never spill into a neighbouring run's records.
func (a *placementArena) alloc(n int) []Placement {
	if n == 0 {
		return nil
	}
	if n >= arenaMaxSlab/2 {
		// Blocks this large fit at most once per slab, so sharing would only
		// strand the slab's tail (a 10k-record run would waste 39% of every
		// 16k slab). A private, exactly-sized block is the same single
		// allocation with zero waste, and leaves the shared slab untouched
		// for subsequent small runs.
		return make([]Placement, n)
	}
	if cap(a.slab)-len(a.slab) < n {
		size := 2 * cap(a.slab)
		if size > arenaMaxSlab {
			size = arenaMaxSlab
		}
		if size < n {
			size = n
		}
		// Fresh slabs are zeroed by make and every record is handed out
		// exactly once, so blocks need no clearing here.
		a.slab = make([]Placement, 0, size)
	}
	lo := len(a.slab)
	a.slab = a.slab[:lo+n]
	return a.slab[lo : lo+n : lo+n]
}

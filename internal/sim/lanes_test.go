package sim

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
)

// fuzzDAG decodes an arbitrary byte string into a DAG over the tiny test
// table's kernel names: the first byte picks the vertex count (2..41), the
// second alternates names, every following byte pair an edge directed low
// ID -> high ID — always acyclic, often disconnected, which is exactly the
// shape the component partitioner and the lane reducer must agree on.
func fuzzDAG(data []byte) *dfg.Graph {
	if len(data) < 2 {
		return nil
	}
	n := int(data[0])%40 + 2
	b := dfg.NewBuilder()
	for i := 0; i < n; i++ {
		name := "a"
		if (int(data[1])+i)%3 == 0 {
			name = "b"
		}
		b.AddKernel(dfg.Kernel{Name: name, DataElems: 1000})
	}
	for i := 2; i+1 < len(data); i += 2 {
		u := dfg.KernelID(int(data[i]) % n)
		v := dfg.KernelID(int(data[i+1]) % n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// FuzzLanesOracle is the partition-vs-serial oracle: for arbitrary DAGs the
// lane-parallel engine must produce byte-identical serialized results to
// the serial engine for every lane count, the lane-parallel validator must
// accept every schedule the serial one accepts, and lane-prepared cost
// tables must match the serial tables bit for bit.
func FuzzLanesOracle(f *testing.F) {
	f.Add([]byte{5, 0})
	f.Add([]byte{11, 1, 0, 1, 1, 2, 0, 2, 5, 9})
	f.Add([]byte{39, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 200, 100})
	env := tinyF(f, 4)
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzDAG(data)
		if g == nil {
			return
		}
		serialCosts, err := PrepareCosts(g, env.sys, env.tab, CostConfig{})
		if err != nil {
			return
		}
		serial, err := Run(serialCosts, &greedy{}, Options{Lanes: 1})
		if err != nil {
			return
		}
		var want bytes.Buffer
		if err := serial.WriteJSON(&want); err != nil {
			t.Fatal(err)
		}
		for _, lanes := range []int{2, 4, -1} {
			laneCosts, err := PrepareCostsLanes(g, env.sys, env.tab, CostConfig{}, lanes)
			if err != nil {
				t.Fatalf("lanes=%d: PrepareCostsLanes: %v", lanes, err)
			}
			for k := 0; k < g.NumKernels(); k++ {
				id := dfg.KernelID(k)
				rowS := serialCosts.ExecRow(id)
				rowL := laneCosts.ExecRow(id)
				for p := range rowS {
					if rowS[p] != rowL[p] {
						t.Fatalf("lanes=%d: exec[%d][%d] = %v, serial %v", lanes, k, p, rowL[p], rowS[p])
					}
				}
			}
			res, err := Run(laneCosts, &greedy{}, Options{Lanes: lanes})
			if err != nil {
				t.Fatalf("lanes=%d: run failed where serial succeeded: %v", lanes, err)
			}
			if err := res.ValidateLanes(g, env.sys, lanes); err != nil {
				t.Fatalf("lanes=%d: schedule rejected: %v", lanes, err)
			}
			var got bytes.Buffer
			if err := res.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("lanes=%d: result JSON differs from serial engine", lanes)
			}
		}
	})
}

// tinyF is tiny for fuzz targets (testing.F and testing.T share no common
// interface, so the setup is duplicated rather than abstracted).
func tinyF(f *testing.F, rate platform.GBps) tinyEnv {
	f.Helper()
	tab, err := lut.New([]lut.Entry{
		{Kernel: "a", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 10, platform.GPU: 2, platform.FPGA: 50}},
		{Kernel: "b", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 4, platform.GPU: 8, platform.FPGA: 1}},
	})
	if err != nil {
		f.Fatal(err)
	}
	return tinyEnv{sys: platform.PaperSystem(rate), tab: tab}
}

func TestLaneChunksTile(t *testing.T) {
	for _, tc := range []struct{ n, lanes int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {5, 4}, {100, 7}, {10, 1}, {10, -1}, {10, 0},
	} {
		chunks := laneChunks(tc.n, tc.lanes)
		lo := 0
		for i, c := range chunks {
			if c.lane != i {
				t.Fatalf("n=%d lanes=%d: chunk %d stamped %d", tc.n, tc.lanes, i, c.lane)
			}
			if c.lo != lo {
				t.Fatalf("n=%d lanes=%d: chunk %d starts at %d, want %d", tc.n, tc.lanes, i, c.lo, lo)
			}
			if c.hi < c.lo {
				t.Fatalf("n=%d lanes=%d: chunk %d inverted", tc.n, tc.lanes, i)
			}
			if d := (c.hi - c.lo) - tc.n/len(chunks); d < 0 || d > 1 {
				t.Fatalf("n=%d lanes=%d: chunk %d length %d not within one of %d",
					tc.n, tc.lanes, i, c.hi-c.lo, tc.n/len(chunks))
			}
			lo = c.hi
		}
		if lo != tc.n {
			t.Fatalf("n=%d lanes=%d: chunks cover [0,%d), want [0,%d)", tc.n, tc.lanes, lo, tc.n)
		}
	}
}

func TestNormLanesConvention(t *testing.T) {
	if got := normLanes(0, 100); got != 1 {
		t.Errorf("normLanes(0) = %d, want 1 (serial default)", got)
	}
	if got := normLanes(1, 100); got != 1 {
		t.Errorf("normLanes(1) = %d, want 1", got)
	}
	if got := normLanes(6, 100); got != 6 {
		t.Errorf("normLanes(6) = %d, want 6", got)
	}
	if got := normLanes(-1, 100); got < 1 {
		t.Errorf("normLanes(-1) = %d, want >= 1 (one per CPU)", got)
	}
	if got := normLanes(8, 3); got != 3 {
		t.Errorf("normLanes(8, n=3) = %d, want clamp to 3", got)
	}
}

func TestParallelSortFloat64sMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 7, 100, 1001} {
		for _, lanes := range []int{1, 2, 3, 4, 8} {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.NormFloat64() * 1e6
			}
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			sorted, spare := parallelSortFloat64s(xs, nil, lanes)
			if len(sorted) != n {
				t.Fatalf("n=%d lanes=%d: sorted length %d", n, lanes, len(sorted))
			}
			for i := range want {
				if sorted[i] != want[i] {
					t.Fatalf("n=%d lanes=%d: sorted[%d] = %v, want %v", n, lanes, i, sorted[i], want[i])
				}
			}
			// The returned pair must be usable as (result, next scratch):
			// rotating them across calls keeps both buffers alive without
			// aliasing each other.
			if n > 0 && lanes > 1 && len(spare) > 0 && &sorted[0] == &spare[0] {
				t.Fatalf("n=%d lanes=%d: sorted and spare alias", n, lanes)
			}
		}
	}
}

func TestFirstLaneError(t *testing.T) {
	errA := &SizeErrorStub{"a"}
	errB := &SizeErrorStub{"b"}
	if err := firstLaneError([]laneError{{at: 3}, {at: 7}}); err != nil {
		t.Errorf("all-nil lanes returned %v", err)
	}
	got := firstLaneError([]laneError{
		{at: 9, err: errB},
		{at: 2, err: errA},
		{at: 5, err: errB},
	})
	if got != errA {
		t.Errorf("firstLaneError = %v, want lowest-stamp error %v", got, errA)
	}
}

// SizeErrorStub is a distinguishable error value for reducer tests.
type SizeErrorStub struct{ s string }

func (e *SizeErrorStub) Error() string { return e.s }

func TestParallelOverDisjointWrites(t *testing.T) {
	const n = 1000
	for _, lanes := range []int{1, 2, 4, 7, -1} {
		out := make([]int32, n)
		ParallelOver(n, lanes, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i]++
			}
		})
		for i, v := range out {
			if v != 1 {
				t.Fatalf("lanes=%d: index %d written %d times", lanes, i, v)
			}
		}
	}
}

// TestPlacementArenaBlocks exercises the slab allocator directly: blocks
// are zeroed, disjoint, and appending to one cannot clobber its neighbour.
func TestPlacementArenaBlocks(t *testing.T) {
	var a placementArena
	b1 := a.alloc(10)
	b2 := a.alloc(20)
	if len(b1) != 10 || len(b2) != 20 {
		t.Fatalf("block lengths %d, %d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i] != (Placement{}) {
			t.Fatalf("b1[%d] not zeroed: %+v", i, b1[i])
		}
	}
	b1[9].Kernel = 99
	if b2[0].Kernel != 0 {
		t.Fatal("blocks overlap: write to b1 visible in b2")
	}
	// Append past a block's end must copy out, not run into the slab.
	grown := append(b1, Placement{Kernel: 7})
	if b2[0].Kernel != 0 {
		t.Fatalf("append to b1 clobbered b2: %+v", b2[0])
	}
	if grown[10].Kernel != 7 {
		t.Fatal("append lost the new element")
	}
	// A request larger than the remaining slab still yields a usable block.
	big := a.alloc(arenaMaxSlab + 1)
	if len(big) != arenaMaxSlab+1 {
		t.Fatalf("big block length %d", len(big))
	}
}

// TestPlacementArenaAdaptiveSizing pins the growth contract: a cold arena's
// first slab is exactly the requested block (one-shot runs pay no slab tax),
// refills double the previous capacity, and growth caps at arenaMaxSlab.
func TestPlacementArenaAdaptiveSizing(t *testing.T) {
	var a placementArena
	a.alloc(100)
	if c := cap(a.slab); c != 100 {
		t.Fatalf("cold slab cap = %d, want exactly 100", c)
	}
	a.alloc(150) // exceeds the 100-slab: refill doubles to 200
	if c := cap(a.slab); c != 200 {
		t.Fatalf("second slab cap = %d, want 200", c)
	}
	var b placementArena
	for i := 0; i < 40; i++ {
		b.alloc(arenaMaxSlab / 4)
	}
	if c := cap(b.slab); c > arenaMaxSlab {
		t.Fatalf("slab cap %d exceeds arenaMaxSlab %d", c, arenaMaxSlab)
	}
	// Private-block path: a half-slab-or-larger request must not disturb the
	// shared slab (it would strand the tail on every refill).
	before := cap(b.slab)
	blk := b.alloc(arenaMaxSlab / 2)
	if len(blk) != arenaMaxSlab/2 {
		t.Fatalf("private block length %d", len(blk))
	}
	if cap(b.slab) != before {
		t.Fatal("large block consumed the shared slab")
	}
}

// TestRunnerWarmRunAllocsSlab pins the slab-backed placement path: a warm
// runner re-running the same workload must not allocate per kernel — the
// arena hands out sub-slices of one slab, so steady-state allocations stay
// O(1) regardless of graph size.
func TestRunnerWarmRunAllocsSlab(t *testing.T) {
	env := tiny(t, 4)
	b := dfg.NewBuilder()
	const n = 512
	for i := 0; i < n; i++ {
		name := "a"
		if i%2 == 1 {
			name = "b"
		}
		b.AddKernel(dfg.Kernel{Name: name, DataElems: 1000})
	}
	for i := 1; i < n; i++ {
		b.AddEdge(dfg.KernelID(i/2), dfg.KernelID(i))
	}
	c := mustCosts(t, b.MustBuild(), env)
	r := NewRunner()
	pol := &leanGreedy{}
	if _, err := r.Run(c, pol, Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.Run(c, pol, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	// The warm path allocates a handful of fixed-size headers (result
	// struct, stats slices); the bound is intentionally far below one
	// allocation per kernel (n = 512).
	if allocs > 32 {
		t.Errorf("warm run allocates %.0f objects for %d kernels; placement slab regressed", allocs, n)
	}
}

// Package sim is the discrete-event simulator of the heterogeneous system:
// it executes a dataflow graph on a platform under a scheduling policy and
// reports the metrics the thesis evaluates (makespan, per-processor
// compute/transfer/idle time, and λ scheduling-delay statistics).
//
// The simulator follows the paper's model (§2.5, §3.2):
//
//   - each kernel's execution time on each processor comes from a lookup
//     table of measured times;
//   - moving a predecessor's output between distinct processors costs
//     size·bytes/rate over the link;
//   - a processor is occupied by a kernel for its incoming transfer plus its
//     execution (processors "currently executing kernels or data transfers"
//     are unavailable);
//   - the scheduling policy is invoked at time zero and after every kernel
//     completion, and may assign any number of kernels per invocation.
package sim

import (
	"fmt"
	"sync"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
)

// TransferMode selects how incoming transfers from multiple predecessors
// combine.
type TransferMode int

const (
	// TransferMax models fully concurrent links (the standard list-scheduling
	// assumption): the kernel waits for the slowest incoming transfer.
	TransferMax TransferMode = iota
	// TransferSum models a single shared ingress: transfers serialize.
	TransferSum
)

// String names the mode.
func (m TransferMode) String() string {
	switch m {
	case TransferMax:
		return "max"
	case TransferSum:
		return "sum"
	default:
		return fmt.Sprintf("TransferMode(%d)", int(m))
	}
}

// CostConfig parameterises the cost model.
type CostConfig struct {
	// ElemBytes is the size of one data element in bytes. The thesis never
	// states it; 4 (single-precision) is the documented default.
	ElemBytes float64
	// Mode selects multi-predecessor transfer combination; default TransferMax.
	Mode TransferMode
}

// DefaultCostConfig returns the documented defaults (4 bytes/element,
// concurrent-link transfers).
func DefaultCostConfig() CostConfig { return CostConfig{ElemBytes: 4, Mode: TransferMax} }

// Costs binds a graph, a platform and a lookup table into a fast, fully
// validated cost oracle. Every policy and the engine itself consult the
// same Costs, so all of them price work identically (the paper's policies
// all share one lookup table).
//
// # Estimates versus actuals
//
// A run carries up to two Costs with distinct roles. The Costs passed to
// Run is the estimate oracle: it is handed to Policy.Prepare and exposed
// through State.Costs/BusyUntil, so it is all a policy ever sees — its
// model of the platform. Options.ActualCosts, when set, is the actual
// oracle: the engine times execution and transfers from it (and takes λ's
// best-exec baseline from it), so it is what the platform really does.
// When ActualCosts is nil the two coincide and estimates are exact — the
// thesis's model. The perturb package builds actual tables from estimate
// tables (noise, bias, drift), and Options.Degrade stretches the actual
// durations further over time; neither ever leaks into the estimate side,
// which is what makes robustness runs honest: policies decide on beliefs,
// reality charges the truth.
type Costs struct {
	g   *dfg.Graph
	sys *platform.System
	cfg CostConfig
	np  int
	// exec is the kernel×processor execution-time matrix flattened row-major
	// with stride np (exec[k*np+p]), one contiguous allocation regardless of
	// graph size.
	exec []float64
	best []platform.ProcID
	mean []float64 // mean exec across procs, for HEFT ranks

	// ranked is the per-kernel ascending-execution-time processor order,
	// flattened with stride np and built lazily on the first RankedProcs
	// call (many runs never need it; 100k-kernel graphs should not pay an
	// O(n·P log P) sort up front). sync.Once keeps the build race-free —
	// one Costs is shared across worker goroutines.
	rankOnce sync.Once
	ranked   []platform.ProcID
}

// PrepareCosts precomputes the kernel×processor execution-time matrix and
// validates that the table covers every kernel in the graph on every
// processor kind in the system.
func PrepareCosts(g *dfg.Graph, sys *platform.System, tab *lut.Table, cfg CostConfig) (*Costs, error) {
	if g == nil || sys == nil || tab == nil {
		return nil, fmt.Errorf("sim: PrepareCosts requires graph, system and table")
	}
	if cfg.ElemBytes == 0 {
		cfg.ElemBytes = DefaultCostConfig().ElemBytes
	}
	if cfg.ElemBytes < 0 {
		return nil, fmt.Errorf("sim: negative ElemBytes %v", cfg.ElemBytes)
	}
	n := g.NumKernels()
	np := sys.NumProcs()
	c := &Costs{
		g:    g,
		sys:  sys,
		cfg:  cfg,
		np:   np,
		exec: make([]float64, n*np),
		best: make([]platform.ProcID, n),
		mean: make([]float64, n),
	}
	for id := 0; id < n; id++ {
		k := g.Kernel(dfg.KernelID(id))
		row := c.exec[id*np : (id+1)*np]
		sum := 0.0
		best := platform.ProcID(0)
		for p := 0; p < np; p++ {
			ms, err := tab.Exec(k.Name, k.DataElems, sys.KindOf(platform.ProcID(p)))
			if err != nil {
				return nil, fmt.Errorf("sim: kernel %d (%s, %d elems) on proc %d: %w",
					id, k.Name, k.DataElems, p, err)
			}
			row[p] = ms
			sum += ms
			if ms < row[best] {
				best = platform.ProcID(p)
			}
		}
		c.best[id] = best
		c.mean[id] = sum / float64(np)
	}
	return c, nil
}

// Graph returns the bound graph.
func (c *Costs) Graph() *dfg.Graph { return c.g }

// System returns the bound platform.
func (c *Costs) System() *platform.System { return c.sys }

// Config returns the cost configuration in effect.
func (c *Costs) Config() CostConfig { return c.cfg }

// Exec returns the execution time in ms of kernel k on processor p.
func (c *Costs) Exec(k dfg.KernelID, p platform.ProcID) float64 {
	return c.exec[int(k)*c.np+int(p)]
}

// ExecRow returns kernel k's execution times across all processors,
// indexed by ProcID. The slice aliases the flat cost table; do not modify.
func (c *Costs) ExecRow(k dfg.KernelID) []float64 {
	return c.exec[int(k)*c.np : int(k+1)*c.np]
}

// MeanExec returns the mean execution time of kernel k across all
// processors (the w̄ᵢ of HEFT's upward rank).
func (c *Costs) MeanExec(k dfg.KernelID) float64 { return c.mean[k] }

// BestProc returns the processor with the minimum execution time for k
// (the paper's pmin) and that minimum time. Ties break to the lower ID.
func (c *Costs) BestProc(k dfg.KernelID) (platform.ProcID, float64) {
	p := c.best[k]
	return p, c.exec[int(k)*c.np+int(p)]
}

// rankedRow returns kernel k's ascending-execution-time processor order
// from the lazily built flat table (ties by ID). The first call pays one
// O(n·P log P) pass; later calls are a slice expression.
func (c *Costs) rankedRow(k dfg.KernelID) []platform.ProcID {
	c.rankOnce.Do(func() {
		n := c.g.NumKernels()
		np := c.np
		ranked := make([]platform.ProcID, n*np)
		for id := 0; id < n; id++ {
			out := ranked[id*np : (id+1)*np]
			for i := range out {
				out[i] = platform.ProcID(i)
			}
			row := c.exec[id*np : (id+1)*np]
			// Insertion sort: np is small (3 in the paper's system, a few
			// hundred at most for the scale machines).
			for i := 1; i < np; i++ {
				for j := i; j > 0; j-- {
					a, b := out[j-1], out[j]
					// Three-way cost comparison (no float equality):
					// exact ties order by processor ID.
					if row[a] < row[b] {
						break
					}
					if row[b] < row[a] || b < a {
						out[j-1], out[j] = b, a
					} else {
						break
					}
				}
			}
		}
		c.ranked = ranked
	})
	return c.ranked[int(k)*c.np : int(k+1)*c.np]
}

// RankedProcs returns all processors ordered by ascending execution time
// for k (ties by ID). The slice is fresh and owned by the caller;
// allocation-sensitive callers should prefer AppendRankedProcs.
func (c *Costs) RankedProcs(k dfg.KernelID) []platform.ProcID {
	return c.AppendRankedProcs(make([]platform.ProcID, 0, c.np), k)
}

// AppendRankedProcs appends kernel k's ascending-execution-time processor
// order (same order as RankedProcs) to buf and returns the extended slice;
// with a reused buffer the query is allocation-free after the table's
// one-time lazy build.
func (c *Costs) AppendRankedProcs(buf []platform.ProcID, k dfg.KernelID) []platform.ProcID {
	return append(buf, c.rankedRow(k)...)
}

// TransferMs returns the time to move elems elements across the directed
// link from -> to. Same-processor transfers are free; a zero-rate link
// between distinct processors is unusable and returns +Inf-like large cost
// — it is reported as an error at engine level, but policies pricing such a
// link see the huge cost and avoid it.
func (c *Costs) TransferMs(elems int64, from, to platform.ProcID) float64 {
	if from == to {
		return 0
	}
	rate := c.sys.Rate(from, to)
	if rate <= 0 {
		return unusableLinkMs
	}
	bytes := float64(elems) * c.cfg.ElemBytes
	return bytes / rate.BytesPerMs()
}

// unusableLinkMs prices a missing link. One year in milliseconds: large
// enough that any schedule using it loses, finite so arithmetic stays sane.
const unusableLinkMs = 365 * 24 * 3600 * 1000.0

// TransferIn returns the incoming-transfer time kernel k would pay if
// executed on processor p, given placement: a function reporting the
// processor of each finished predecessor. Predecessors on p contribute
// zero. Combination follows the configured TransferMode.
func (c *Costs) TransferIn(k dfg.KernelID, p platform.ProcID, placement func(dfg.KernelID) platform.ProcID) float64 {
	var total, max float64
	for _, pred := range c.g.Preds(k) {
		from := placement(pred)
		ms := c.TransferMs(c.g.Kernel(pred).OutElems, from, p)
		total += ms
		if ms > max {
			max = ms
		}
	}
	if c.cfg.Mode == TransferSum {
		return total
	}
	return max
}

// MeanTransfer returns the average transfer cost of edge u->v across all
// ordered processor pairs (used by HEFT/PEFT mean communication costs c̄ᵢⱼ;
// pairs on the same processor contribute zero, matching the standard
// formulation of averaging over all processor pairs).
func (c *Costs) MeanTransfer(u dfg.KernelID) float64 {
	np := c.sys.NumProcs()
	if np <= 1 {
		return 0
	}
	elems := c.g.Kernel(u).OutElems
	var sum float64
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			if i == j {
				continue
			}
			sum += c.TransferMs(elems, platform.ProcID(i), platform.ProcID(j))
		}
	}
	return sum / float64(np*np)
}

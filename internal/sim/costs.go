// Package sim is the discrete-event simulator of the heterogeneous system:
// it executes a dataflow graph on a platform under a scheduling policy and
// reports the metrics the thesis evaluates (makespan, per-processor
// compute/transfer/idle time, and λ scheduling-delay statistics).
//
// The simulator follows the paper's model (§2.5, §3.2):
//
//   - each kernel's execution time on each processor comes from a lookup
//     table of measured times;
//   - moving a predecessor's output between distinct processors costs
//     size·bytes/rate over the link;
//   - a processor is occupied by a kernel for its incoming transfer plus its
//     execution (processors "currently executing kernels or data transfers"
//     are unavailable);
//   - the scheduling policy is invoked at time zero and after every kernel
//     completion, and may assign any number of kernels per invocation.
package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
)

// TransferMode selects how incoming transfers from multiple predecessors
// combine.
type TransferMode int

const (
	// TransferMax models fully concurrent links (the standard list-scheduling
	// assumption): the kernel waits for the slowest incoming transfer.
	TransferMax TransferMode = iota
	// TransferSum models a single shared ingress: transfers serialize.
	TransferSum
)

// String names the mode.
func (m TransferMode) String() string {
	switch m {
	case TransferMax:
		return "max"
	case TransferSum:
		return "sum"
	default:
		return fmt.Sprintf("TransferMode(%d)", int(m))
	}
}

// CostConfig parameterises the cost model.
type CostConfig struct {
	// ElemBytes is the size of one data element in bytes. The thesis never
	// states it; 4 (single-precision) is the documented default.
	ElemBytes float64
	// Mode selects multi-predecessor transfer combination; default TransferMax.
	Mode TransferMode
	// Float32Exec stores the execution-time matrix as float32 instead of
	// float64, halving the dominant per-kernel table cost (np×4 instead of
	// np×8 bytes per kernel). Every lookup still returns float64 — the
	// quantisation happens exactly once, at table build — so a run is fully
	// deterministic, but its low-order bits differ from the float64 table's:
	// results are NOT byte-identical between the two storages. Opt in only
	// where that is acceptable (relative quantisation error ≤ 2⁻²⁴ ≈ 6e-8,
	// far below measurement noise in any measured lookup table; see
	// ARCHITECTURE.md "Memory layout & partitioned execution").
	Float32Exec bool
}

// DefaultCostConfig returns the documented defaults (4 bytes/element,
// concurrent-link transfers).
func DefaultCostConfig() CostConfig { return CostConfig{ElemBytes: 4, Mode: TransferMax} }

// Costs binds a graph, a platform and a lookup table into a fast, fully
// validated cost oracle. Every policy and the engine itself consult the
// same Costs, so all of them price work identically (the paper's policies
// all share one lookup table).
//
// # Estimates versus actuals
//
// A run carries up to two Costs with distinct roles. The Costs passed to
// Run is the estimate oracle: it is handed to Policy.Prepare and exposed
// through State.Costs/BusyUntil, so it is all a policy ever sees — its
// model of the platform. Options.ActualCosts, when set, is the actual
// oracle: the engine times execution and transfers from it (and takes λ's
// best-exec baseline from it), so it is what the platform really does.
// When ActualCosts is nil the two coincide and estimates are exact — the
// thesis's model. The perturb package builds actual tables from estimate
// tables (noise, bias, drift), and Options.Degrade stretches the actual
// durations further over time; neither ever leaks into the estimate side,
// which is what makes robustness runs honest: policies decide on beliefs,
// reality charges the truth.
type Costs struct {
	g   *dfg.Graph
	sys *platform.System
	cfg CostConfig
	np  int
	// exec is the kernel×processor execution-time matrix flattened row-major
	// with stride np (exec[k*np+p]), one contiguous allocation regardless of
	// graph size. Exactly one of exec/exec32 is populated: with
	// CostConfig.Float32Exec the matrix lives in exec32 at half the bytes,
	// quantised once at build time, and every accessor widens on read.
	exec   []float64
	exec32 []float32
	best   []platform.ProcID
	mean   []float64 // mean exec across procs, for HEFT ranks

	// ranked is the per-kernel ascending-execution-time processor order,
	// flattened with stride np and built lazily on the first RankedProcs
	// call (many runs never need it; 100k-kernel graphs should not pay an
	// O(n·P log P) sort up front). Rows are quantised to uint16 processor
	// indices — 2 bytes per entry instead of a 4-byte ProcID — which is why
	// PrepareCosts caps systems at 65535 processors. sync.Once keeps the
	// build race-free — one Costs is shared across worker goroutines.
	rankOnce sync.Once
	ranked   []uint16
}

// PrepareCosts precomputes the kernel×processor execution-time matrix and
// validates that the table covers every kernel in the graph on every
// processor kind in the system.
func PrepareCosts(g *dfg.Graph, sys *platform.System, tab *lut.Table, cfg CostConfig) (*Costs, error) {
	return PrepareCostsLanes(g, sys, tab, cfg, 1)
}

// PrepareCostsLanes is PrepareCosts with the per-kernel row fills sharded
// across parallel lanes (0 or 1 serial, < 0 one per CPU). Rows are independent
// — each lane writes a disjoint slice of the matrix and derives best/mean
// per row — and the lookup table is immutable, so the resulting oracle is
// byte-identical for every lane count.
func PrepareCostsLanes(g *dfg.Graph, sys *platform.System, tab *lut.Table, cfg CostConfig, lanes int) (*Costs, error) {
	if g == nil || sys == nil || tab == nil {
		return nil, fmt.Errorf("sim: PrepareCosts requires graph, system and table")
	}
	if cfg.ElemBytes == 0 {
		cfg.ElemBytes = DefaultCostConfig().ElemBytes
	}
	if cfg.ElemBytes < 0 {
		return nil, fmt.Errorf("sim: negative ElemBytes %v", cfg.ElemBytes)
	}
	n := g.NumKernels()
	np := sys.NumProcs()
	if np > math.MaxUint16 {
		return nil, fmt.Errorf("sim: %d processors exceed the ranked-order table's uint16 index space (max %d)", np, math.MaxUint16)
	}
	c := &Costs{
		g:    g,
		sys:  sys,
		cfg:  cfg,
		np:   np,
		best: make([]platform.ProcID, n),
		mean: make([]float64, n),
	}
	if cfg.Float32Exec {
		c.exec32 = make([]float32, n*np)
	} else {
		c.exec = make([]float64, n*np)
	}
	errs := make([]laneError, normLanes(lanes, n))
	parallelChunks(n, lanes, func(ch laneChunk) {
		for id := ch.lo; id < ch.hi; id++ {
			k := g.Kernel(dfg.KernelID(id))
			sum := 0.0
			best := platform.ProcID(0)
			bestMs := math.Inf(1)
			for p := 0; p < np; p++ {
				ms, err := tab.Exec(k.Name, k.DataElems, sys.KindOf(platform.ProcID(p)))
				if err != nil {
					errs[ch.lane] = laneError{at: id, err: fmt.Errorf("sim: kernel %d (%s, %d elems) on proc %d: %w",
						id, k.Name, k.DataElems, p, err)}
					return
				}
				if c.exec32 != nil {
					// Quantise exactly once at build: every later read
					// widens the same stored value, so estimates stay
					// self-consistent across policies and the engine.
					c.exec32[id*np+p] = float32(ms)
					ms = float64(c.exec32[id*np+p])
				} else {
					c.exec[id*np+p] = ms
				}
				sum += ms
				if ms < bestMs {
					bestMs = ms
					best = platform.ProcID(p)
				}
			}
			c.best[id] = best
			c.mean[id] = sum / float64(np)
		}
	})
	if err := firstLaneError(errs); err != nil {
		return nil, err
	}
	return c, nil
}

// Graph returns the bound graph.
func (c *Costs) Graph() *dfg.Graph { return c.g }

// System returns the bound platform.
func (c *Costs) System() *platform.System { return c.sys }

// Config returns the cost configuration in effect.
func (c *Costs) Config() CostConfig { return c.cfg }

// Exec returns the execution time in ms of kernel k on processor p.
//
//apt:hotpath
func (c *Costs) Exec(k dfg.KernelID, p platform.ProcID) float64 {
	if c.exec32 != nil {
		return float64(c.exec32[int(k)*c.np+int(p)])
	}
	return c.exec[int(k)*c.np+int(p)]
}

// ExecRow returns kernel k's execution times across all processors,
// indexed by ProcID. With float64 storage (the default) the slice aliases
// the flat cost table — do not modify. With Float32Exec storage the row is
// widened into a fresh slice per call; allocation-sensitive callers on
// compact tables should prefer AppendExecRow with a reused buffer.
func (c *Costs) ExecRow(k dfg.KernelID) []float64 {
	if c.exec32 != nil {
		return c.AppendExecRow(make([]float64, 0, c.np), k)
	}
	return c.exec[int(k)*c.np : int(k+1)*c.np]
}

// AppendExecRow appends kernel k's execution times across all processors
// (indexed by ProcID, same values as ExecRow) to buf and returns the
// extended slice. With a reused buffer the query is allocation-free on both
// storages.
func (c *Costs) AppendExecRow(buf []float64, k dfg.KernelID) []float64 {
	if c.exec32 != nil {
		for _, v := range c.exec32[int(k)*c.np : int(k+1)*c.np] {
			buf = append(buf, float64(v))
		}
		return buf
	}
	return append(buf, c.exec[int(k)*c.np:int(k+1)*c.np]...)
}

// MeanExec returns the mean execution time of kernel k across all
// processors (the w̄ᵢ of HEFT's upward rank).
func (c *Costs) MeanExec(k dfg.KernelID) float64 { return c.mean[k] }

// BestProc returns the processor with the minimum execution time for k
// (the paper's pmin) and that minimum time. Ties break to the lower ID.
//
//apt:hotpath
func (c *Costs) BestProc(k dfg.KernelID) (platform.ProcID, float64) {
	p := c.best[k]
	return p, c.Exec(k, p)
}

// rankedRow returns kernel k's ascending-execution-time processor order
// from the lazily built flat table (ties by ID), as quantised uint16
// processor indices. The first call pays one O(n·P log P) pass; later calls
// are a slice expression.
func (c *Costs) rankedRow(k dfg.KernelID) []uint16 {
	c.rankOnce.Do(func() {
		n := c.g.NumKernels()
		np := c.np
		ranked := make([]uint16, n*np)
		for id := 0; id < n; id++ {
			out := ranked[id*np : (id+1)*np]
			for i := range out {
				out[i] = uint16(i)
			}
			exec := func(p uint16) float64 { return c.Exec(dfg.KernelID(id), platform.ProcID(p)) }
			// Insertion sort: np is small (3 in the paper's system, a few
			// hundred at most for the scale machines).
			for i := 1; i < np; i++ {
				for j := i; j > 0; j-- {
					a, b := out[j-1], out[j]
					// Three-way cost comparison (no float equality):
					// exact ties order by processor ID.
					if exec(a) < exec(b) {
						break
					}
					if exec(b) < exec(a) || b < a {
						out[j-1], out[j] = b, a
					} else {
						break
					}
				}
			}
		}
		c.ranked = ranked
	})
	return c.ranked[int(k)*c.np : int(k+1)*c.np]
}

// RankedProcs returns all processors ordered by ascending execution time
// for k (ties by ID). The slice is fresh and owned by the caller;
// allocation-sensitive callers should prefer AppendRankedProcs.
func (c *Costs) RankedProcs(k dfg.KernelID) []platform.ProcID {
	return c.AppendRankedProcs(make([]platform.ProcID, 0, c.np), k)
}

// AppendRankedProcs appends kernel k's ascending-execution-time processor
// order (same order as RankedProcs) to buf and returns the extended slice;
// with a reused buffer the query is allocation-free after the table's
// one-time lazy build.
func (c *Costs) AppendRankedProcs(buf []platform.ProcID, k dfg.KernelID) []platform.ProcID {
	for _, p := range c.rankedRow(k) {
		buf = append(buf, platform.ProcID(p))
	}
	return buf
}

// TransferMs returns the time to move elems elements across the directed
// link from -> to. Same-processor transfers are free; a zero-rate link
// between distinct processors is unusable and returns +Inf-like large cost
// — it is reported as an error at engine level, but policies pricing such a
// link see the huge cost and avoid it.
func (c *Costs) TransferMs(elems int64, from, to platform.ProcID) float64 {
	if from == to {
		return 0
	}
	rate := c.sys.Rate(from, to)
	if rate <= 0 {
		return unusableLinkMs
	}
	bytes := float64(elems) * c.cfg.ElemBytes
	return bytes / rate.BytesPerMs()
}

// unusableLinkMs prices a missing link. One year in milliseconds: large
// enough that any schedule using it loses, finite so arithmetic stays sane.
const unusableLinkMs = 365 * 24 * 3600 * 1000.0

// TransferIn returns the incoming-transfer time kernel k would pay if
// executed on processor p, given placement: a function reporting the
// processor of each finished predecessor. Predecessors on p contribute
// zero. Combination follows the configured TransferMode.
func (c *Costs) TransferIn(k dfg.KernelID, p platform.ProcID, placement func(dfg.KernelID) platform.ProcID) float64 {
	var total, max float64
	for _, pred := range c.g.Preds(k) {
		from := placement(pred)
		ms := c.TransferMs(c.g.Kernel(pred).OutElems, from, p)
		total += ms
		if ms > max {
			max = ms
		}
	}
	if c.cfg.Mode == TransferSum {
		return total
	}
	return max
}

// MeanTransfer returns the average transfer cost of edge u->v across all
// ordered processor pairs (used by HEFT/PEFT mean communication costs c̄ᵢⱼ;
// pairs on the same processor contribute zero, matching the standard
// formulation of averaging over all processor pairs).
func (c *Costs) MeanTransfer(u dfg.KernelID) float64 {
	np := c.sys.NumProcs()
	if np <= 1 {
		return 0
	}
	elems := c.g.Kernel(u).OutElems
	var sum float64
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			if i == j {
				continue
			}
			sum += c.TransferMs(elems, platform.ProcID(i), platform.ProcID(j))
		}
	}
	return sum / float64(np*np)
}

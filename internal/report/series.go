package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is figure data: one named line of (x label, y value) points.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a titled family of series over shared x labels — the shape of
// every figure in the paper's evaluation (bars over α values, lines over
// experiment numbers, ...).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
}

// AddSeries appends a series; its length must match the x axis.
func (f *Figure) AddSeries(name string, y []float64) error {
	if len(y) != len(f.X) {
		return fmt.Errorf("report: series %q has %d points, x axis has %d", name, len(y), len(f.X))
	}
	f.Series = append(f.Series, Series{Name: name, Y: append([]float64(nil), y...)})
	return nil
}

// MustAddSeries is AddSeries, panicking on mismatch.
func (f *Figure) MustAddSeries(name string, y []float64) {
	if err := f.AddSeries(name, y); err != nil {
		panic(err)
	}
}

// WriteCSV emits x,series1,series2,... rows suitable for external plotting.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range f.X {
		rec := []string{x}
		for _, s := range f.Series {
			rec = append(rec, fmt.Sprintf("%g", s.Y[i]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render draws a crude horizontal bar chart per series — enough to eyeball
// the paper's "valley" trends in a terminal.
func (f *Figure) Render(w io.Writer) error {
	var sb strings.Builder
	if f.Title != "" {
		sb.WriteString(f.Title + "\n")
	}
	max := 0.0
	for _, s := range f.Series {
		for _, y := range s.Y {
			if !math.IsInf(y, 0) && !math.IsNaN(y) && y > max {
				max = y
			}
		}
	}
	const barWidth = 48
	xw := len(f.XLabel)
	for _, x := range f.X {
		if len(x) > xw {
			xw = len(x)
		}
	}
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%s:\n", s.Name)
		for i, x := range f.X {
			n := 0
			if max > 0 {
				n = int(s.Y[i] / max * barWidth)
			}
			// Negative values (e.g. regret below the oracle) get no bar —
			// the printed number carries the sign.
			if n < 0 {
				n = 0
			} else if n > barWidth {
				n = barWidth
			}
			fmt.Fprintf(&sb, "  %s  %s %.3f\n", pad(x, xw), strings.Repeat("#", n), s.Y[i])
		}
	}
	if f.YLabel != "" {
		fmt.Fprintf(&sb, "(y: %s)\n", f.YLabel)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

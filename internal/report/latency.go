package report

import (
	"fmt"

	"repro/internal/stats"
)

// LatencyRow is one labelled latency distribution for LatencyTable.
type LatencyRow struct {
	Label string
	S     stats.Summary
}

// latencyHeaders is the column set open-system evaluations report.
var latencyHeaders = []string{"series", "n", "mean ms", "p50 ms", "p90 ms", "p95 ms", "p99 ms", "max ms"}

// LatencyTable renders per-row latency percentile summaries — the
// open-system companion to the paper's makespan/λ tables.
func LatencyTable(title string, rows []LatencyRow) *Table {
	t := &Table{Title: title, Headers: latencyHeaders}
	for _, r := range rows {
		t.MustAddRow(r.Label, fmt.Sprintf("%d", r.S.Count),
			Ms(r.S.Mean), Ms(r.S.P50), Ms(r.S.P90), Ms(r.S.P95), Ms(r.S.P99), Ms(r.S.Max))
	}
	return t
}

// LatencyFigure builds a figure of one latency percentile across an x
// axis (typically arrival rate λ), one series per policy — the λ-vs-p99
// plot of open-system evaluations. ys maps series name to one value per x
// label; seriesOrder fixes the series order.
func LatencyFigure(title, xLabel, yLabel string, x []string, seriesOrder []string, ys map[string][]float64) (*Figure, error) {
	f := &Figure{Title: title, XLabel: xLabel, YLabel: yLabel, X: x}
	for _, name := range seriesOrder {
		y, ok := ys[name]
		if !ok {
			return nil, fmt.Errorf("report: latency figure misses series %q", name)
		}
		if err := f.AddSeries(name, y); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// HistogramFigure renders a latency histogram as a single-series bar
// figure, one bar per non-empty bucket.
func HistogramFigure(title, xLabel string, h *stats.Histogram) *Figure {
	f := &Figure{Title: title, XLabel: xLabel, YLabel: "kernels"}
	var ys []float64
	for _, b := range h.Buckets() {
		f.X = append(f.X, fmt.Sprintf("<%s", Ms(b.Hi)))
		ys = append(ys, float64(b.Count))
	}
	f.MustAddSeries("count", ys)
	return f
}

package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestHTMLReportTable(t *testing.T) {
	tab := &Table{Title: "T<1>", Headers: []string{"a", "b"}, Notes: []string{"n&1"}}
	tab.MustAddRow("1", "<x>")
	h := NewHTMLReport("Report & Title")
	h.AddTable(tab)
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Report &amp; Title",
		"T&lt;1&gt;",
		"<td>&lt;x&gt;</td>",
		"n&amp;1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if strings.Contains(s, "<x>") {
		t.Error("unescaped cell content leaked into HTML")
	}
}

func TestHTMLReportFigureSVG(t *testing.T) {
	f := &Figure{Title: "Fig", XLabel: "α", YLabel: "ms", X: []string{"1.5", "4", "16"}}
	f.MustAddSeries("4 GBps", []float64{10, 5, 8})
	f.MustAddSeries("8 GBps", []float64{9, 4, 7})
	h := NewHTMLReport("r")
	h.AddFigure(f)
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "<svg") || !strings.Contains(s, "</svg>") {
		t.Fatal("no SVG emitted")
	}
	// 2 series x 3 points = 6 bars plus 2 legend swatches.
	if got := strings.Count(s, "<rect"); got != 8 {
		t.Errorf("rect count = %d, want 8", got)
	}
	for _, want := range []string{"4 GBps", "8 GBps", "1.5", "16"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestHTMLReportText(t *testing.T) {
	h := NewHTMLReport("r")
	h.AddText("Cap", "line1\n<line2>")
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "<pre>line1\n&lt;line2&gt;</pre>") {
		t.Errorf("pre block wrong:\n%s", s)
	}
}

func TestHTMLReportFigureAllZero(t *testing.T) {
	f := &Figure{X: []string{"a"}}
	f.MustAddSeries("s", []float64{0})
	h := NewHTMLReport("r")
	h.AddFigure(f) // must not divide by zero
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

package report

import "fmt"

// RegretRow is one policy's robustness outcome at one noise level:
// suite-mean makespan under noisy estimates, the perfect-information
// oracle baseline, the relative regret between them, and the p99 sojourn
// tail.
type RegretRow struct {
	Label        string
	MakespanMs   float64
	OracleMs     float64
	RegretPct    float64
	P99SojournMs float64
}

// RegretTable renders a robustness comparison: one row per policy, regret
// against the noise-free-decision oracle plus the latency tail. Used by the
// ext-robustness artifact and cmd/sweep -robust.
func RegretTable(title string, rows []RegretRow) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"Policy", "Makespan ms", "Oracle ms", "Regret %", "p99 sojourn ms"},
		Notes: []string{
			"Makespan: policy decides on clean estimates, hardware follows perturbed times.",
			"Oracle: same policy given the perturbed times as its estimates (perfect information).",
			"Regret: (makespan − oracle) / oracle; the price of deciding on wrong estimates.",
		},
	}
	for _, r := range rows {
		t.MustAddRow(r.Label, Ms(r.MakespanMs), Ms(r.OracleMs),
			fmt.Sprintf("%+.2f", r.RegretPct), Ms(r.P99SojournMs))
	}
	return t
}

package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/sim"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "Demo",
		Headers: []string{"A", "Blong"},
		Notes:   []string{"note line"},
	}
	tab.MustAddRow("1", "2")
	tab.MustAddRow("333", "4")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"Demo", "A", "Blong", "333", "note line", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("Render missing %q:\n%s", want, s)
		}
	}
}

func TestTableAddRowWidthCheck(t *testing.T) {
	tab := Table{Headers: []string{"A", "B"}}
	if err := tab.AddRow("only one"); err == nil {
		t.Error("narrow row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic")
		}
	}()
	tab.MustAddRow("too", "many", "cells")
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tab := Table{Title: "T", Headers: []string{"x", "y"}}
	tab.MustAddRow("1", "2")
	var md, csvb bytes.Buffer
	if err := tab.RenderMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| x | y |") {
		t.Errorf("markdown header missing:\n%s", md.String())
	}
	if err := tab.WriteCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	if got := csvb.String(); got != "x,y\n1,2\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestMsFormat(t *testing.T) {
	if Ms(42) != "42" {
		t.Errorf("Ms(42) = %q", Ms(42))
	}
	if Ms(0.093) != "0.093" {
		t.Errorf("Ms(0.093) = %q", Ms(0.093))
	}
}

func TestFigureSeriesAndCSV(t *testing.T) {
	f := Figure{Title: "F", XLabel: "α", YLabel: "ms", X: []string{"1.5", "4"}}
	if err := f.AddSeries("s", []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	f.MustAddSeries("4 GBps", []float64{10, 5})
	var csvb bytes.Buffer
	if err := f.WriteCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	want := "α,4 GBps\n1.5,10\n4,5\n"
	if csvb.String() != want {
		t.Errorf("csv = %q, want %q", csvb.String(), want)
	}
	var txt bytes.Buffer
	if err := f.Render(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "4 GBps") || !strings.Contains(txt.String(), "#") {
		t.Errorf("render missing bars:\n%s", txt.String())
	}
}

func TestFigureRenderNegativeValues(t *testing.T) {
	// Regret figures carry negative values (below the oracle); they must
	// render without panicking, with an empty bar and a signed number.
	f := Figure{Title: "regret", X: []string{"0", "0.3"}}
	f.MustAddSeries("HEFT", []float64{4, -12.6})
	var txt bytes.Buffer
	if err := f.Render(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "-12.600") {
		t.Errorf("render lost the negative point:\n%s", txt.String())
	}
}

func TestRegretTable(t *testing.T) {
	tab := RegretTable("robustness", []RegretRow{
		{Label: "APT", MakespanMs: 110, OracleMs: 100, RegretPct: 10, P99SojournMs: 400},
	})
	var b bytes.Buffer
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Regret %", "APT", "+10.00", "400"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("regret table missing %q:\n%s", want, b.String())
		}
	}
}

func TestGanttAndUtilisation(t *testing.T) {
	// One-kernel run via a trivial inline policy.
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: lut.NW, DataElems: 16777216})
	g := b.MustBuild()
	sys := platform.PaperSystem(4)
	c, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, assignAll{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Gantt(&buf, res, g, sys); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "start 0-nw") || !strings.Contains(s, "finish 0-nw") {
		t.Errorf("gantt missing events:\n%s", s)
	}
	buf.Reset()
	if err := Utilisation(&buf, res, sys); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CPU0") {
		t.Errorf("utilisation missing processor:\n%s", buf.String())
	}
}

// assignAll sends every ready kernel to processor 0.
type assignAll struct{}

func (assignAll) Name() string             { return "assignAll" }
func (assignAll) Prepare(*sim.Costs) error { return nil }
func (assignAll) Select(st *sim.State) []sim.Assignment {
	var out []sim.Assignment
	for _, k := range st.Ready() {
		out = append(out, sim.Assignment{Kernel: k, Proc: 0})
	}
	return out
}

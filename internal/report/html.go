package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

// HTMLReport assembles artifacts into one self-contained HTML document —
// tables as styled <table>s, figures as inline SVG grouped bar charts — so
// a full paper regeneration can be reviewed in a browser without any
// external tooling.
type HTMLReport struct {
	Title    string
	sections []string
}

// NewHTMLReport returns an empty report with the given page title.
func NewHTMLReport(title string) *HTMLReport { return &HTMLReport{Title: title} }

// AddTable appends a table section.
func (h *HTMLReport) AddTable(t *Table) {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "<h2>%s</h2>\n", html.EscapeString(t.Title))
	}
	sb.WriteString("<table>\n<thead><tr>")
	for _, hd := range t.Headers {
		fmt.Fprintf(&sb, "<th>%s</th>", html.EscapeString(hd))
	}
	sb.WriteString("</tr></thead>\n<tbody>\n")
	for _, row := range t.Rows {
		sb.WriteString("<tr>")
		for _, c := range row {
			fmt.Fprintf(&sb, "<td>%s</td>", html.EscapeString(c))
		}
		sb.WriteString("</tr>\n")
	}
	sb.WriteString("</tbody></table>\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "<p class=\"note\">%s</p>\n", html.EscapeString(n))
	}
	h.sections = append(h.sections, sb.String())
}

// chart geometry constants.
const (
	chartW      = 720
	chartH      = 260
	chartMargin = 46
)

// chartPalette colours series in order.
var chartPalette = []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"}

// AddFigure appends a grouped-bar SVG section for the figure.
func (h *HTMLReport) AddFigure(f *Figure) {
	var sb strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&sb, "<h2>%s</h2>\n", html.EscapeString(f.Title))
	}
	max := 0.0
	for _, s := range f.Series {
		for _, y := range s.Y {
			if !math.IsNaN(y) && !math.IsInf(y, 0) && y > max {
				max = y
			}
		}
	}
	if max == 0 {
		max = 1
	}
	plotW := float64(chartW - 2*chartMargin)
	plotH := float64(chartH - 2*chartMargin)
	groups := len(f.X)
	series := len(f.Series)
	groupW := plotW / float64(groups)
	barW := groupW * 0.8 / float64(series)

	fmt.Fprintf(&sb, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		chartW, chartH, chartW, chartH)
	sb.WriteString("\n")
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		chartMargin, chartH-chartMargin, chartW-chartMargin, chartH-chartMargin)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		chartMargin, chartMargin, chartMargin, chartH-chartMargin)
	// Max label.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10" text-anchor="end">%.3g</text>`,
		chartMargin-4, chartMargin+4, max)
	sb.WriteString("\n")
	for si, s := range f.Series {
		colour := chartPalette[si%len(chartPalette)]
		for xi, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			hgt := y / max * plotH
			x := float64(chartMargin) + float64(xi)*groupW + groupW*0.1 + float64(si)*barW
			yTop := float64(chartH-chartMargin) - hgt
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s @ %s: %.4g</title></rect>`,
				x, yTop, barW, hgt, colour,
				html.EscapeString(s.Name), html.EscapeString(f.X[xi]), y)
			sb.WriteString("\n")
		}
	}
	// X labels.
	for xi, xl := range f.X {
		cx := float64(chartMargin) + (float64(xi)+0.5)*groupW
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`,
			cx, chartH-chartMargin+14, html.EscapeString(xl))
		sb.WriteString("\n")
	}
	// Legend.
	for si, s := range f.Series {
		colour := chartPalette[si%len(chartPalette)]
		lx := chartMargin + si*130
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, lx, 8, colour)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11">%s</text>`, lx+14, 17, html.EscapeString(s.Name))
		sb.WriteString("\n")
	}
	sb.WriteString("</svg>\n")
	if f.YLabel != "" {
		fmt.Fprintf(&sb, "<p class=\"note\">y: %s; x: %s</p>\n",
			html.EscapeString(f.YLabel), html.EscapeString(f.XLabel))
	}
	h.sections = append(h.sections, sb.String())
}

// AddText appends a preformatted text section.
func (h *HTMLReport) AddText(caption, text string) {
	var sb strings.Builder
	if caption != "" {
		fmt.Fprintf(&sb, "<h2>%s</h2>\n", html.EscapeString(caption))
	}
	fmt.Fprintf(&sb, "<pre>%s</pre>\n", html.EscapeString(text))
	h.sections = append(h.sections, sb.String())
}

// Render writes the complete document.
func (h *HTMLReport) Render(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", html.EscapeString(h.Title))
	sb.WriteString(`<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; padding: 0 1rem; color: #222; }
h1 { border-bottom: 2px solid #4477aa; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { border: 1px solid #bbb; padding: .25rem .55rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead { background: #eef3f8; }
pre { background: #f6f6f6; padding: .8rem; overflow-x: auto; }
.note { color: #555; font-style: italic; }
</style></head><body>
`)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", html.EscapeString(h.Title))
	for _, s := range h.sections {
		sb.WriteString(s)
	}
	sb.WriteString("</body></html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

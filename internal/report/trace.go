package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// traceEvent is one Chrome trace-event ("Trace Event Format", the JSON
// array flavour). Durations and timestamps are microseconds.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders a finished simulation in Chrome's trace-event
// format: open chrome://tracing (or https://ui.perfetto.dev) and load the
// file to inspect the schedule visually. Each processor is one row (tid);
// transfers and executions appear as separate slices.
func WriteChromeTrace(w io.Writer, res *sim.Result, g *dfg.Graph, sys *platform.System) error {
	const msToUs = 1000.0
	var events []traceEvent
	// Row-name metadata per processor.
	for _, p := range sys.Procs() {
		events = append(events, traceEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   int(p.ID),
			Args:  map[string]string{"name": p.Name},
		})
	}
	for i := range res.Placements {
		pl := res.Placements[i]
		k := g.Kernel(pl.Kernel)
		if xfer := pl.ExecStart - pl.TransferStart; xfer > 0 {
			events = append(events, traceEvent{
				Name:  fmt.Sprintf("xfer %d-%s", pl.Kernel, k.Name),
				Cat:   "transfer",
				Phase: "X",
				TS:    pl.TransferStart * msToUs,
				Dur:   xfer * msToUs,
				PID:   1,
				TID:   int(pl.Proc),
			})
		}
		events = append(events, traceEvent{
			Name:  fmt.Sprintf("%d-%s", pl.Kernel, k.Name),
			Cat:   "exec",
			Phase: "X",
			TS:    pl.ExecStart * msToUs,
			Dur:   (pl.Finish - pl.ExecStart) * msToUs,
			PID:   1,
			TID:   int(pl.Proc),
			Args: map[string]string{
				"kernel":    k.Name,
				"dataElems": fmt.Sprintf("%d", k.DataElems),
				"lambdaMs":  fmt.Sprintf("%.3f", pl.Lambda()),
				// Placement-quality fields: the estimate the APT decision
				// compared against, what actually ran, and the queueing
				// delay the decision traded off.
				"queue_wait_ms": fmt.Sprintf("%.3f", pl.QueueWait()),
				"best_est_ms":   fmt.Sprintf("%.3f", pl.BestExecMs),
				"actual_ms":     fmt.Sprintf("%.3f", pl.Finish-pl.ExecStart),
			},
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

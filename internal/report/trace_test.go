package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/sim"
)

func TestChromeTraceWellFormed(t *testing.T) {
	b := dfg.NewBuilder()
	a := b.AddKernel(dfg.Kernel{Name: lut.NW, DataElems: 16777216})
	c := b.AddKernel(dfg.Kernel{Name: lut.BFS, DataElems: 2034736})
	b.AddEdge(a, c)
	g := b.MustBuild()
	sys := platform.PaperSystem(4)
	costs, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(costs, assignAll{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, res, g, sys); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var meta, exec, xfer int
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			switch e["cat"] {
			case "exec":
				exec++
			case "transfer":
				xfer++
			}
		}
	}
	if meta != 3 {
		t.Errorf("thread_name events = %d, want 3", meta)
	}
	if exec != 2 {
		t.Errorf("exec slices = %d, want 2", exec)
	}
	// Both kernels run on processor 0 (assignAll), so the dependent kernel
	// pays no transfer.
	if xfer != 0 {
		t.Errorf("transfer slices = %d, want 0", xfer)
	}
}

func TestChromeTraceIncludesTransfers(t *testing.T) {
	b := dfg.NewBuilder()
	a := b.AddKernel(dfg.Kernel{Name: lut.MatMul, DataElems: 64000000})
	c := b.AddKernel(dfg.Kernel{Name: lut.CD, DataElems: 64000000})
	b.AddEdge(a, c)
	g := b.MustBuild()
	sys := platform.PaperSystem(4)
	costs, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Put the kernels on different processors to force a transfer.
	res, err := sim.Run(costs, splitPolicy{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, res, g, sys); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range events {
		if e["cat"] == "transfer" {
			found = true
			if e["dur"].(float64) <= 0 {
				t.Error("transfer slice has non-positive duration")
			}
		}
	}
	if !found {
		t.Error("no transfer slice in trace")
	}
}

// splitPolicy places kernel i on processor i%np.
type splitPolicy struct{}

func (splitPolicy) Name() string             { return "split" }
func (splitPolicy) Prepare(*sim.Costs) error { return nil }
func (splitPolicy) Select(st *sim.State) []sim.Assignment {
	var out []sim.Assignment
	np := st.System().NumProcs()
	for _, k := range st.Ready() {
		out = append(out, sim.Assignment{Kernel: k, Proc: platform.ProcID(int(k) % np)})
	}
	return out
}

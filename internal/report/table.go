// Package report renders the experiment harness's outputs in
// terminal-and-file-friendly forms: aligned text tables (the paper's
// Tables and the extension's latency/regret tables), CSV and ASCII-chart
// series data (the paper's Figures, λ-vs-p99 curves, regret-vs-noise
// sweeps), text Gantt charts and per-processor utilisation summaries of
// individual schedules, self-contained HTML reports with inline-SVG bar
// charts, and Chrome-trace JSON for chrome://tracing.
//
// Everything writes to an io.Writer and is deterministic for a given
// input, so the sweep and experiment CLIs can diff their own output
// byte-for-byte across reruns (CI does exactly that).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are free-text lines printed under the table.
	Notes []string
}

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Headers) {
		return fmt.Errorf("report: row has %d cells, header has %d", len(cells), len(t.Headers))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow, panicking on width mismatch (a programming error).
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Render writes the table as aligned monospace text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString(n + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderMarkdown writes the table as GitHub-flavoured markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		sb.WriteString("\n> " + n + "\n")
	}
	sb.WriteString("\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV writes headers then rows.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Ms formats a millisecond quantity the way the paper's tables do:
// integral values without decimals, otherwise three decimals. The
// integrality test compares a remainder against the constant zero, which
// is exact, rather than round-tripping through int64.
func Ms(v float64) string {
	if math.Mod(v, 1) == 0 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// Pct formats a percentage with three decimals, as in the paper's Table 13.
func Pct(v float64) string { return fmt.Sprintf("%.3f", v) }

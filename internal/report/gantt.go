package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Gantt renders a finished simulation as a per-processor event log in the
// style of the thesis's Figure 5: one line per state change, listing what
// each processor is doing and the timestamp the system entered that state.
func Gantt(w io.Writer, res *sim.Result, g *dfg.Graph, sys *platform.System) error {
	type evt struct {
		at    float64
		text  string
		order int
	}
	var events []evt
	for i := range res.Placements {
		pl := res.Placements[i]
		k := g.Kernel(pl.Kernel)
		name := sys.Proc(pl.Proc).Name
		events = append(events, evt{pl.ExecStart, fmt.Sprintf("%s: start %d-%s", name, pl.Kernel, k.Name), 0})
		events = append(events, evt{pl.Finish, fmt.Sprintf("%s: finish %d-%s", name, pl.Kernel, k.Name), 1})
	}
	sort.Slice(events, func(i, j int) bool {
		// Three-way time comparison (no float equality): exact ties fall
		// through to the start-before-finish ordering.
		if events[i].at < events[j].at {
			return true
		}
		if events[j].at < events[i].at {
			return false
		}
		return events[i].order < events[j].order
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s schedule (makespan %.3f ms):\n", res.Policy, res.MakespanMs)
	for _, e := range events {
		fmt.Fprintf(&sb, "  t=%10.3f  %s\n", e.at, e.text)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Utilisation renders the per-processor time accounting of a run.
func Utilisation(w io.Writer, res *sim.Result, sys *platform.System) error {
	t := Table{
		Title:   fmt.Sprintf("%s per-processor utilisation (makespan %.3f ms)", res.Policy, res.MakespanMs),
		Headers: []string{"Processor", "Kernels", "Exec (ms)", "Transfer (ms)", "Idle (ms)", "Busy %"},
	}
	for _, st := range res.ProcStats {
		busyPct := 0.0
		if res.MakespanMs > 0 {
			busyPct = (st.ExecMs + st.XferMs) / res.MakespanMs * 100
		}
		t.MustAddRow(
			sys.Proc(st.Proc).Name,
			fmt.Sprintf("%d", st.Kernels),
			Ms(st.ExecMs),
			Ms(st.XferMs),
			Ms(st.IdleMs),
			fmt.Sprintf("%.1f", busyPct),
		)
	}
	return t.Render(w)
}

package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestLatencyTable(t *testing.T) {
	rows := []LatencyRow{
		{Label: "APT", S: stats.Summarize([]float64{1, 2, 3, 4})},
		{Label: "MET", S: stats.Summary{}}, // empty distribution renders too
	}
	tab := LatencyTable("latency", rows)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"p99 ms", "APT", "MET", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table misses %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Inf") {
		t.Errorf("empty row rendered non-finite values:\n%s", out)
	}
}

func TestLatencyFigure(t *testing.T) {
	x := []string{"0.5", "1", "2"}
	ys := map[string][]float64{"APT": {3, 2, 1}, "MET": {6, 5, 4}}
	f, err := LatencyFigure("λ vs p99", "gap ms", "p99 ms", x, []string{"APT", "MET"}, ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 || f.Series[0].Name != "APT" {
		t.Fatalf("series = %+v", f.Series)
	}
	if _, err := LatencyFigure("t", "x", "y", x, []string{"GONE"}, ys); err == nil {
		t.Error("missing series accepted")
	}
	if _, err := LatencyFigure("t", "x", "y", x, []string{"APT"}, map[string][]float64{"APT": {1}}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestHistogramFigure(t *testing.T) {
	h, err := stats.NewHistogram(1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 2, 2.5, 40, 41, 42} {
		h.Add(v)
	}
	f := HistogramFigure("sojourn", "latency", h)
	if len(f.X) == 0 || len(f.Series) != 1 {
		t.Fatalf("figure = %+v", f)
	}
	var total float64
	for _, y := range f.Series[0].Y {
		total += y
	}
	if total != 6 {
		t.Errorf("bucket counts sum to %v, want 6", total)
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

// Package bounds provides makespan lower bounds and, for small
// dependency-free workloads, the exact optimum — yardsticks the thesis
// never reports but that put every policy's numbers in perspective
// (scheduling even independent tasks on unrelated machines is NP-hard, so
// the exact solver is exponential and capped).
package bounds

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Lower aggregates the valid makespan lower bounds for a costed workload.
type Lower struct {
	// CriticalPathMs is the longest dependency chain with every kernel on
	// its fastest processor and free transfers.
	CriticalPathMs float64
	// WorkMs is total best-case work divided by the processor count: even
	// perfectly balanced, some processor carries at least this much.
	WorkMs float64
	// MaxKernelMs is the largest single best-case execution time; no
	// schedule finishes before its longest kernel.
	MaxKernelMs float64
}

// Best returns the tightest (largest) of the bounds.
func (l Lower) Best() float64 {
	best := l.CriticalPathMs
	if l.WorkMs > best {
		best = l.WorkMs
	}
	if l.MaxKernelMs > best {
		best = l.MaxKernelMs
	}
	return best
}

// LowerBounds computes all bounds for the costed workload.
func LowerBounds(c *sim.Costs) Lower {
	g := c.Graph()
	fastest := func(k dfg.Kernel) float64 {
		_, ms := c.BestProc(k.ID)
		return ms
	}
	cp, _ := g.CriticalPath(fastest)
	var total, max float64
	for _, k := range g.Kernels() {
		ms := fastest(k)
		total += ms
		if ms > max {
			max = ms
		}
	}
	return Lower{
		CriticalPathMs: cp,
		WorkMs:         total / float64(c.System().NumProcs()),
		MaxKernelMs:    max,
	}
}

// MaxExactKernels caps the exact solver's input size; beyond it the search
// space (np^n assignments) is impractical.
const MaxExactKernels = 16

// OptimalIndependent returns the minimum achievable makespan for a
// workload of independent kernels (no dependency edges, hence no
// transfers): the best partition of kernels across processors, where each
// processor executes its share back to back. It runs a branch-and-bound
// over assignments — exact but exponential, so the graph must have at most
// MaxExactKernels kernels and no edges.
func OptimalIndependent(c *sim.Costs) (float64, error) {
	g := c.Graph()
	if g.NumEdges() != 0 {
		return 0, fmt.Errorf("bounds: OptimalIndependent requires a dependency-free workload, got %d edges", g.NumEdges())
	}
	n := g.NumKernels()
	if n == 0 {
		return 0, nil
	}
	if n > MaxExactKernels {
		return 0, fmt.Errorf("bounds: exact search capped at %d kernels, got %d", MaxExactKernels, n)
	}
	np := c.System().NumProcs()

	// Order kernels by decreasing best execution time: big rocks first
	// gives branch-and-bound much earlier pruning.
	order := make([]dfg.KernelID, n)
	for i := range order {
		order[i] = dfg.KernelID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		_, a := c.BestProc(order[i])
		_, b := c.BestProc(order[j])
		return a > b
	})

	// Remaining best-case work from position i onward, for the work-bound
	// prune.
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		_, ms := c.BestProc(order[i])
		suffix[i] = suffix[i+1] + ms
	}

	load := make([]float64, np)
	// Incumbent: greedy LPT-style assignment gives a finite start.
	best := greedyMakespan(c, order)

	var dfs func(i int)
	dfs = func(i int) {
		if i == n {
			m := maxOf(load)
			if m < best {
				best = m
			}
			return
		}
		cur := maxOf(load)
		if cur >= best {
			return // current partial max already meets the incumbent
		}
		// Work-bound prune: even if every remaining kernel ran at its best
		// time spread perfectly, the busiest processor cannot drop below
		// (current total + remaining best work) / np.
		totalNow := 0.0
		for _, l := range load {
			totalNow += l
		}
		if (totalNow+suffix[i])/float64(np) >= best {
			return
		}
		k := order[i]
		// Skip truly interchangeable processors: same kind (identical exec
		// times for every kernel) and same current load lead to identical
		// residual states.
		type symKey struct {
			kind platform.Kind
			load float64
		}
		tried := map[symKey]bool{}
		for p := 0; p < np; p++ {
			pid := platform.ProcID(p)
			key := symKey{c.System().KindOf(pid), load[p]}
			if tried[key] {
				continue
			}
			tried[key] = true
			ms := c.Exec(k, pid)
			if load[p]+ms >= best {
				continue
			}
			load[p] += ms
			dfs(i + 1)
			load[p] -= ms
		}
	}
	dfs(0)
	return best, nil
}

// greedyMakespan is the LPT-flavoured incumbent: each kernel (big first)
// goes to the processor minimising resulting completion.
func greedyMakespan(c *sim.Costs, order []dfg.KernelID) float64 {
	np := c.System().NumProcs()
	load := make([]float64, np)
	for _, k := range order {
		best, bestV := 0, load[0]+c.Exec(k, platform.ProcID(0))
		for p := 1; p < np; p++ {
			if v := load[p] + c.Exec(k, platform.ProcID(p)); v < bestV {
				best, bestV = p, v
			}
		}
		load[best] = bestV
	}
	return maxOf(load)
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func tinyTable(t *testing.T) *lut.Table {
	t.Helper()
	tab, err := lut.New([]lut.Entry{
		{Kernel: "a", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 10, platform.GPU: 2, platform.FPGA: 50}},
		{Kernel: "b", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 4, platform.GPU: 8, platform.FPGA: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func independentGraph(t *testing.T, names ...string) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder()
	for _, n := range names {
		b.AddKernel(dfg.Kernel{Name: n, DataElems: 1000})
	}
	return b.MustBuild()
}

func costs(t *testing.T, g *dfg.Graph, tab *lut.Table) *sim.Costs {
	t.Helper()
	c, err := sim.PrepareCosts(g, platform.PaperSystem(4), tab, sim.CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLowerBoundsSimple(t *testing.T) {
	g := independentGraph(t, "a", "a", "b")
	c := costs(t, g, tinyTable(t))
	lb := LowerBounds(c)
	// Best execs: 2, 2, 1. Work bound: 5/3. Max kernel: 2. CP: 2.
	if math.Abs(lb.WorkMs-5.0/3) > 1e-9 {
		t.Errorf("WorkMs = %v, want 5/3", lb.WorkMs)
	}
	if lb.MaxKernelMs != 2 || lb.CriticalPathMs != 2 {
		t.Errorf("bounds = %+v", lb)
	}
	if lb.Best() != 2 {
		t.Errorf("Best = %v, want 2", lb.Best())
	}
}

func TestLowerBoundsChain(t *testing.T) {
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	k1 := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(k0, k1)
	g := b.MustBuild()
	c := costs(t, g, tinyTable(t))
	lb := LowerBounds(c)
	// Chain of best execs 2 then 1: CP = 3 dominates.
	if lb.CriticalPathMs != 3 || lb.Best() != 3 {
		t.Errorf("bounds = %+v, want CP 3", lb)
	}
}

func TestOptimalIndependentExactSmall(t *testing.T) {
	// Two "a" kernels: optimum is one on GPU (2) and one on CPU (10)? No —
	// serialising both on the GPU gives 4, better. Optimal partition: both
	// on GPU => 4.
	g := independentGraph(t, "a", "a")
	c := costs(t, g, tinyTable(t))
	opt, err := OptimalIndependent(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 4 {
		t.Errorf("optimal = %v, want 4", opt)
	}
	// Mixed: a (GPU 2), b (FPGA 1): run in parallel => 2.
	g2 := independentGraph(t, "a", "b")
	c2 := costs(t, g2, tinyTable(t))
	opt2, err := OptimalIndependent(c2)
	if err != nil {
		t.Fatal(err)
	}
	if opt2 != 2 {
		t.Errorf("optimal = %v, want 2", opt2)
	}
}

func TestOptimalIndependentRejects(t *testing.T) {
	b := dfg.NewBuilder()
	k0 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	k1 := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	b.AddEdge(k0, k1)
	g := b.MustBuild()
	if _, err := OptimalIndependent(costs(t, g, tinyTable(t))); err == nil {
		t.Error("graph with edges accepted")
	}
	names := make([]string, MaxExactKernels+1)
	for i := range names {
		names[i] = "a"
	}
	big := independentGraph(t, names...)
	if _, err := OptimalIndependent(costs(t, big, tinyTable(t))); err == nil {
		t.Error("oversized graph accepted")
	}
}

func TestOptimalEmptyGraph(t *testing.T) {
	g := dfg.NewBuilder().MustBuild()
	c, err := sim.PrepareCosts(g, platform.PaperSystem(4), tinyTable(t), sim.CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalIndependent(c)
	if err != nil || opt != 0 {
		t.Errorf("empty optimum = %v/%v, want 0/nil", opt, err)
	}
}

// Property: on random independent workloads from the paper catalog,
// optimal >= every lower bound, and every policy's makespan >= optimal.
func TestOptimalSandwichProperty(t *testing.T) {
	cat := workload.PaperCatalog()
	sys := platform.PaperSystem(4)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%uint8(MaxExactKernels-2)) + 2
		r := rand.New(rand.NewSource(seed))
		b := dfg.NewBuilder()
		for i := 0; i < n; i++ {
			spec := cat.RandomSpec(r)
			b.AddKernel(dfg.Kernel{Name: spec.Name, DataElems: spec.DataElems})
		}
		g := b.MustBuild()
		c, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
		if err != nil {
			return false
		}
		opt, err := OptimalIndependent(c)
		if err != nil {
			return false
		}
		lb := LowerBounds(c)
		if opt < lb.Best()-1e-6 {
			return false
		}
		for _, pol := range []sim.Policy{core.New(4), policy.NewMET(1), policy.NewSPN(), policy.NewHEFT()} {
			res, err := sim.Run(c, pol, sim.Options{})
			if err != nil {
				return false
			}
			if res.MakespanMs < opt-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Exhaustive cross-check of the branch-and-bound against brute force for
// very small inputs.
func TestOptimalMatchesBruteForce(t *testing.T) {
	tab := tinyTable(t)
	sys := platform.PaperSystem(4)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(6) + 1
		b := dfg.NewBuilder()
		for i := 0; i < n; i++ {
			name := "a"
			if r.Intn(2) == 1 {
				name = "b"
			}
			b.AddKernel(dfg.Kernel{Name: name, DataElems: 1000})
		}
		g := b.MustBuild()
		c, err := sim.PrepareCosts(g, sys, tab, sim.CostConfig{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalIndependent(c)
		if err != nil {
			t.Fatal(err)
		}
		bf := bruteForce(c, n, sys.NumProcs())
		if math.Abs(opt-bf) > 1e-9 {
			t.Fatalf("trial %d: branch-and-bound %v != brute force %v", trial, opt, bf)
		}
	}
}

func bruteForce(c *sim.Costs, n, np int) float64 {
	best := math.Inf(1)
	assign := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			load := make([]float64, np)
			for k, p := range assign {
				load[p] += c.Exec(dfg.KernelID(k), platform.ProcID(p))
			}
			m := 0.0
			for _, l := range load {
				if l > m {
					m = l
				}
			}
			if m < best {
				best = m
			}
			return
		}
		for p := 0; p < np; p++ {
			assign[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

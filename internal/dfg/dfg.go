// Package dfg represents the dataflow graphs (DFGs) that the scheduler
// consumes: directed acyclic graphs whose vertices are kernels and whose
// edges are data/computational dependencies (paper §2.5.1, G = (V, E)).
//
// Graphs are built with a Builder and immutable afterwards, which lets the
// simulator and the policies share one graph across goroutine-parallel
// experiment sweeps without copying. Adjacency is stored in compressed
// sparse row (CSR) form — one flat edge array plus per-vertex offsets for
// successors and one for predecessors — so graphs with hundreds of
// thousands of kernels stay cache-contiguous and cost two allocations per
// direction instead of one per vertex.
package dfg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/heaps"
)

// SizeError reports a graph too large for the 32-bit kernel-ID space. The
// CSR offsets and every per-kernel record in the simulator are int32-indexed,
// so builders reject anything beyond math.MaxInt32 kernels or edges instead
// of silently wrapping.
type SizeError struct {
	Kernels int
	Edges   int
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("dfg: graph with %d kernels / %d edges exceeds the int32 ID space (max %d)",
		e.Kernels, e.Edges, math.MaxInt32)
}

// checkSize returns a *SizeError iff a graph with the given kernel and edge
// counts would overflow int32 IDs or CSR offsets. Split out so the overflow
// guard is testable without materialising a 2^31-kernel graph.
func checkSize(kernels, edges int) error {
	if kernels > math.MaxInt32 || edges > math.MaxInt32 {
		return &SizeError{Kernels: kernels, Edges: edges}
	}
	return nil
}

// KernelID identifies a kernel within one Graph. IDs are dense from 0 in
// insertion order, which for the paper's workloads is also the stream
// ("first-come, first-serve") arrival order that dynamic policies see.
//
// The ID is 32 bits wide on purpose: per-kernel bookkeeping in the
// simulator (event records, ready queues, placement rows) stores KernelIDs
// by value, and halving the ID width is what keeps million-kernel runs
// inside a few hundred bytes per kernel. Builder.Build rejects graphs that
// would overflow the ID space with a *SizeError.
type KernelID int32

// Kernel is one schedulable unit of computation (paper Figure 2: an
// application decomposes into kernels; each kernel follows a dwarf's
// computation/communication pattern).
type Kernel struct {
	ID KernelID
	// Name is the canonical kernel name used to key the lookup table
	// (e.g. "matmul", "bfs").
	Name string
	// Dwarf is the Berkeley-dwarf class, informational only.
	Dwarf string
	// DataElems is the input problem size in elements; together with Name it
	// keys the execution-time lookup.
	DataElems int64
	// OutElems is the number of elements the kernel produces and must ship
	// to each successor on a different processor. The thesis does not model
	// output sizes separately from input sizes, so builders default this to
	// DataElems; it is exposed for extensions.
	OutElems int64
	// App optionally tags which application in the stream this kernel
	// belongs to, for reporting.
	App int
}

// Graph is an immutable DAG of kernels.
//
// Adjacency lives in two CSR halves: the successors of kernel id are
// succEdges[succOff[id]:succOff[id+1]] and its predecessors the analogous
// predEdges range. Both per-vertex ranges are sorted ascending by kernel
// ID, which makes HasEdge a binary search and every traversal order
// deterministic. Offsets are int32, which caps a single graph at 2^31-1
// edges — far beyond the 100k-kernel workloads the generators produce.
type Graph struct {
	kernels   []Kernel
	succOff   []int32
	predOff   []int32
	succEdges []KernelID
	predEdges []KernelID
	// topo caches the deterministic topological order (ascending IDs among
	// simultaneously-ready vertices); it is computed once at Build and
	// shared read-only by TopoOrder, Levels and CriticalPath.
	topo  []KernelID
	edges int
	// comp[id] is the weakly-connected component of kernel id. Components
	// are numbered 0..ncomp-1 in order of their smallest kernel ID, so the
	// numbering is deterministic and component 0 always contains kernel 0.
	// Computed once at Build (union-find over the deduplicated edge list);
	// the partitioned engine shards independent work along these boundaries.
	comp  []int32
	ncomp int
}

// NumComponents returns the number of weakly-connected components. An empty
// graph has zero; every kernel belongs to exactly one component.
func (g *Graph) NumComponents() int { return g.ncomp }

// ComponentOf returns the weakly-connected component index of id.
// Components are numbered by smallest member ID, ascending.
func (g *Graph) ComponentOf(id KernelID) int32 {
	if id < 0 || int(id) >= len(g.kernels) {
		badKernelID(id, len(g.kernels))
	}
	return g.comp[id]
}

// AppendComponent appends the kernels of component c to buf in ascending ID
// order and returns the extended slice. Out-of-range components append
// nothing.
func (g *Graph) AppendComponent(c int32, buf []KernelID) []KernelID {
	if c < 0 || int(c) >= g.ncomp {
		return buf
	}
	for id := range g.kernels {
		if g.comp[id] == c {
			buf = append(buf, KernelID(id))
		}
	}
	return buf
}

// components labels every vertex with its weakly-connected component using
// union-find (path halving + union by smaller root ID, so the final root of
// each set is its smallest member and the renumbering pass is a formality).
func components(n int, edges []edgePair) ([]int32, int) {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(int32(e.from)), find(int32(e.to))
		if a == b {
			continue
		}
		if a < b {
			parent[b] = a
		} else {
			parent[a] = b
		}
	}
	comp := make([]int32, n)
	ncomp := int32(0)
	for id := 0; id < n; id++ {
		if r := find(int32(id)); r == int32(id) {
			comp[id] = ncomp
			ncomp++
		} else {
			comp[id] = comp[r] // r < id, already numbered
		}
	}
	return comp, int(ncomp)
}

// NumKernels returns the number of vertices.
func (g *Graph) NumKernels() int { return len(g.kernels) }

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int { return g.edges }

// Kernel returns the kernel with the given ID. It panics on out-of-range
// IDs, which only arise from programming errors.
func (g *Graph) Kernel(id KernelID) Kernel {
	if id < 0 || int(id) >= len(g.kernels) {
		badKernelID(id, len(g.kernels))
	}
	return g.kernels[id]
}

// badKernelID panics with the out-of-range diagnostic. Split from Kernel —
// which sits on the simulation's per-event hot path — so the accepting
// lookup carries no fmt call or interface boxing.
//
//apt:coldpath
func badKernelID(id KernelID, n int) {
	panic(fmt.Sprintf("dfg: kernel id %d out of range [0,%d)", id, n))
}

// Kernels returns all kernels in ID order; the slice is shared and must not
// be modified.
func (g *Graph) Kernels() []Kernel { return g.kernels }

// Succs returns the successors of id in ascending ID order; the slice
// aliases the graph's CSR storage, do not modify.
func (g *Graph) Succs(id KernelID) []KernelID {
	return g.succEdges[g.succOff[id]:g.succOff[id+1]]
}

// Preds returns the predecessors of id in ascending ID order; the slice
// aliases the graph's CSR storage, do not modify.
func (g *Graph) Preds(id KernelID) []KernelID {
	return g.predEdges[g.predOff[id]:g.predOff[id+1]]
}

// InDegree returns the number of dependencies of id.
func (g *Graph) InDegree(id KernelID) int { return int(g.predOff[id+1] - g.predOff[id]) }

// OutDegree returns the number of dependents of id.
func (g *Graph) OutDegree(id KernelID) int { return int(g.succOff[id+1] - g.succOff[id]) }

// Entries returns all kernels with no predecessors, in ID order. The slice
// is fresh and exactly sized; allocation-sensitive callers should prefer
// AppendEntries with a reused buffer.
func (g *Graph) Entries() []KernelID {
	count := 0
	for id := range g.kernels {
		if g.InDegree(KernelID(id)) == 0 {
			count++
		}
	}
	return g.AppendEntries(make([]KernelID, 0, count))
}

// AppendEntries appends the entry kernels (no predecessors, ID order) to
// buf and returns the extended slice. Passing a reused buf[:0] makes the
// query allocation-free.
func (g *Graph) AppendEntries(buf []KernelID) []KernelID {
	for id := range g.kernels {
		if g.InDegree(KernelID(id)) == 0 {
			buf = append(buf, KernelID(id))
		}
	}
	return buf
}

// Exits returns all kernels with no successors, in ID order. The slice is
// fresh and exactly sized; allocation-sensitive callers should prefer
// AppendExits with a reused buffer.
func (g *Graph) Exits() []KernelID {
	count := 0
	for id := range g.kernels {
		if g.OutDegree(KernelID(id)) == 0 {
			count++
		}
	}
	return g.AppendExits(make([]KernelID, 0, count))
}

// AppendExits appends the exit kernels (no successors, ID order) to buf and
// returns the extended slice.
func (g *Graph) AppendExits(buf []KernelID) []KernelID {
	for id := range g.kernels {
		if g.OutDegree(KernelID(id)) == 0 {
			buf = append(buf, KernelID(id))
		}
	}
	return buf
}

// HasEdge reports whether the dependency u -> v exists. The CSR successor
// ranges are sorted, so this is a binary search: O(log out-degree).
func (g *Graph) HasEdge(u, v KernelID) bool {
	s := g.Succs(u)
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// TopoOrder returns a deterministic topological order: among ready
// vertices, smaller IDs first (Kahn's algorithm with a min-heap frontier,
// O(E log V)). The graph is acyclic by construction, so this never fails.
// The order is computed once at Build; TopoOrder returns a fresh copy.
func (g *Graph) TopoOrder() []KernelID {
	return append(make([]KernelID, 0, len(g.topo)), g.topo...)
}

// AppendTopoOrder appends the deterministic topological order to buf and
// returns the extended slice; with a reused buffer the query is
// allocation-free.
func (g *Graph) AppendTopoOrder(buf []KernelID) []KernelID {
	return append(buf, g.topo...)
}

// kahnTopo computes the deterministic topological order of the CSR graph:
// Kahn's algorithm with a binary min-heap frontier, so among ready
// vertices the smallest ID is always emitted first in O(E log V) total.
// It returns fewer than n vertices iff the edge set contains a cycle.
func kahnTopo(n int, succOff []int32, succEdges []KernelID, predOff []int32) []KernelID {
	lessID := func(a, b KernelID) bool { return a < b }
	indeg := make([]int32, n)
	for id := 0; id < n; id++ {
		indeg[id] = predOff[id+1] - predOff[id]
	}
	// frontier is a binary min-heap of ready kernel IDs.
	frontier := make([]KernelID, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			frontier = append(frontier, KernelID(id))
			heaps.Up(frontier, len(frontier)-1, lessID)
		}
	}
	order := make([]KernelID, 0, n)
	for len(frontier) > 0 {
		u := frontier[0]
		last := len(frontier) - 1
		frontier[0] = frontier[last]
		frontier = frontier[:last]
		heaps.Down(frontier, 0, lessID)
		order = append(order, u)
		for _, v := range succEdges[succOff[u]:succOff[u+1]] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
				heaps.Up(frontier, len(frontier)-1, lessID)
			}
		}
	}
	return order
}

// Levels decomposes the graph into dependency levels: level 0 holds the
// entry kernels, level k the kernels all of whose predecessors are in
// levels < k with at least one in level k-1. Useful for describing the
// paper's Type-1 graphs ("level-1" of n-1 parallel kernels).
func (g *Graph) Levels() [][]KernelID {
	level := make([]int, len(g.kernels))
	maxLevel := 0
	for _, id := range g.topo {
		l := 0
		for _, p := range g.Preds(id) {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	counts := make([]int, maxLevel+1)
	for id := range g.kernels {
		counts[level[id]]++
	}
	out := make([][]KernelID, maxLevel+1)
	for l := range out {
		out[l] = make([]KernelID, 0, counts[l])
	}
	for id := range g.kernels {
		out[level[id]] = append(out[level[id]], KernelID(id))
	}
	return out
}

// CriticalPath returns the longest path through the graph where each vertex
// costs weight(kernel) and edges are free, along with the path itself
// (entry to exit). It is a lower bound on makespan when weight is the
// fastest execution time of each kernel and transfers are ignored.
func (g *Graph) CriticalPath(weight func(Kernel) float64) (float64, []KernelID) {
	n := len(g.kernels)
	if n == 0 {
		return 0, nil
	}
	dist := make([]float64, n)
	next := make([]KernelID, n)
	for i := range next {
		next[i] = -1
	}
	// Walk in reverse topological order computing the longest tail.
	for i := n - 1; i >= 0; i-- {
		id := g.topo[i]
		w := weight(g.kernels[id])
		best := 0.0
		for _, s := range g.Succs(id) {
			if dist[s] > best {
				best = dist[s]
				next[id] = s
			}
		}
		dist[id] = w + best
	}
	bestStart := KernelID(0)
	for id := 1; id < n; id++ {
		if dist[id] > dist[bestStart] {
			bestStart = KernelID(id)
		}
	}
	var path []KernelID
	for id := bestStart; id != -1; id = next[id] {
		path = append(path, id)
	}
	return dist[bestStart], path
}

// TotalWeight sums weight over all kernels. With weight = fastest execution
// time, TotalWeight / numProcs is another makespan lower bound.
func (g *Graph) TotalWeight(weight func(Kernel) float64) float64 {
	var sum float64
	for _, k := range g.kernels {
		sum += weight(k)
	}
	return sum
}

// Validate re-checks structural invariants (acyclic, consistent CSR
// adjacency). Builders guarantee these already; Validate exists for graphs
// decoded from external sources and for property tests.
func (g *Graph) Validate() error {
	n := len(g.kernels)
	for id, k := range g.kernels {
		if int(k.ID) != id {
			return fmt.Errorf("dfg: kernel at index %d has ID %d", id, k.ID)
		}
		if k.Name == "" {
			return fmt.Errorf("dfg: kernel %d has empty name", id)
		}
		if k.DataElems <= 0 {
			return fmt.Errorf("dfg: kernel %d has non-positive data size %d", id, k.DataElems)
		}
		if k.OutElems <= 0 {
			return fmt.Errorf("dfg: kernel %d has non-positive output size %d", id, k.OutElems)
		}
	}
	if len(g.succOff) != n+1 || len(g.predOff) != n+1 {
		return fmt.Errorf("dfg: CSR offsets sized %d/%d for %d kernels", len(g.succOff), len(g.predOff), n)
	}
	for u := 0; u < n; u++ {
		succs := g.Succs(KernelID(u))
		for i, v := range succs {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("dfg: edge %d->%d out of range", u, v)
			}
			if i > 0 && succs[i-1] >= v {
				return fmt.Errorf("dfg: successors of %d not sorted/unique at %d", u, v)
			}
			found := false
			for _, p := range g.Preds(v) {
				if int(p) == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dfg: edge %d->%d missing reverse adjacency", u, v)
			}
		}
	}
	if len(kahnTopo(n, g.succOff, g.succEdges, g.predOff)) != n {
		return fmt.Errorf("dfg: graph contains a cycle")
	}
	return nil
}

// Builder accumulates kernels and edges and produces an immutable Graph.
// Edges are buffered as a flat list and deduplicated in one pass at Build,
// so building dense graphs costs no per-edge map entries.
type Builder struct {
	kernels []Kernel
	edges   []edgePair
	// predCount tracks dependencies recorded per kernel. Duplicate AddEdge
	// calls are only squeezed out at Build, so the count may transiently
	// include duplicates; callers only rely on its zero-ness.
	predCount []int32
	err       error
}

type edgePair struct{ from, to KernelID }

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{} }

// AddKernel appends a kernel and returns its ID. If k.OutElems is zero it
// defaults to k.DataElems. The ID and Dwarf fields of the argument are
// overwritten (Dwarf only if empty, from the name via lut-style mapping is
// the caller's job; the builder leaves it as provided).
func (b *Builder) AddKernel(k Kernel) KernelID {
	if err := checkSize(len(b.kernels)+1, len(b.edges)); err != nil {
		b.fail(err)
		return KernelID(math.MaxInt32)
	}
	id := KernelID(len(b.kernels))
	k.ID = id
	if k.OutElems == 0 {
		k.OutElems = k.DataElems
	}
	if k.Name == "" {
		b.fail(fmt.Errorf("dfg: kernel %d has empty name", id))
	}
	if k.DataElems <= 0 {
		b.fail(fmt.Errorf("dfg: kernel %d (%s) has non-positive data size %d", id, k.Name, k.DataElems))
	}
	b.kernels = append(b.kernels, k)
	b.predCount = append(b.predCount, 0)
	return id
}

// AddEdge records the dependency from -> to (to consumes from's output).
// Duplicate edges are ignored (deduplicated at Build); self edges and
// forward references to not-yet-added kernels are errors, as are edges
// that would create a cycle (detected at Build).
func (b *Builder) AddEdge(from, to KernelID) *Builder {
	n := KernelID(len(b.kernels))
	if from < 0 || from >= n || to < 0 || to >= n {
		b.fail(fmt.Errorf("dfg: edge %d->%d references unknown kernel (have %d)", from, to, n))
		return b
	}
	if from == to {
		b.fail(fmt.Errorf("dfg: self edge on kernel %d", from))
		return b
	}
	b.edges = append(b.edges, edgePair{from, to})
	b.predCount[to]++
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// NumKernels returns the number of kernels added so far.
func (b *Builder) NumKernels() int { return len(b.kernels) }

// InDegree returns the number of dependencies recorded so far for id, or
// 0 for out-of-range IDs. Useful for composing subgraphs incrementally.
// Duplicate AddEdge calls inflate the count until Build deduplicates; the
// zero/non-zero distinction is always exact.
func (b *Builder) InDegree(id KernelID) int {
	if id < 0 || int(id) >= len(b.predCount) {
		return 0
	}
	return int(b.predCount[id])
}

// Build finalises the graph: edges are sorted and deduplicated, both CSR
// halves are laid out, and acyclicity is verified.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.kernels)
	if err := checkSize(n, len(b.edges)); err != nil {
		return nil, err
	}

	// Sort the edge buffer by (from, to) and squeeze out duplicates in
	// place. Sorting up front means both CSR halves come out with sorted
	// per-vertex ranges for free.
	edges := b.edges
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	dedup := edges[:0]
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}

	g := &Graph{
		kernels: b.kernels,
		succOff: make([]int32, n+1),
		predOff: make([]int32, n+1),
		edges:   len(dedup),
	}
	if len(dedup) > 0 {
		flat := make([]KernelID, 2*len(dedup))
		g.succEdges = flat[:len(dedup):len(dedup)]
		g.predEdges = flat[len(dedup):]
	}

	// Successor CSR: edges are (from, to)-sorted, so buckets fill in order.
	for _, e := range dedup {
		g.succOff[e.from+1]++
		g.predOff[e.to+1]++
	}
	for id := 0; id < n; id++ {
		g.succOff[id+1] += g.succOff[id]
		g.predOff[id+1] += g.predOff[id]
	}
	fill := make([]int32, n)
	for _, e := range dedup {
		g.succEdges[g.succOff[e.from]+fill[e.from]] = e.to
		fill[e.from]++
	}
	// Predecessor CSR: iterating in ascending (from, to) order appends each
	// bucket's predecessors in ascending ID order.
	clear(fill)
	for _, e := range dedup {
		g.predEdges[g.predOff[e.to]+fill[e.to]] = e.from
		fill[e.to]++
	}

	g.topo = kahnTopo(n, g.succOff, g.succEdges, g.predOff)
	if len(g.topo) != n {
		return nil, fmt.Errorf("dfg: graph contains a cycle")
	}
	g.comp, g.ncomp = components(n, dedup)
	return g, nil
}

// MustBuild is Build, panicking on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Package dfg represents the dataflow graphs (DFGs) that the scheduler
// consumes: directed acyclic graphs whose vertices are kernels and whose
// edges are data/computational dependencies (paper §2.5.1, G = (V, E)).
//
// Graphs are built with a Builder and immutable afterwards, which lets the
// simulator and the policies share one graph across goroutine-parallel
// experiment sweeps without copying.
package dfg

import (
	"fmt"
	"sort"
)

// KernelID identifies a kernel within one Graph. IDs are dense from 0 in
// insertion order, which for the paper's workloads is also the stream
// ("first-come, first-serve") arrival order that dynamic policies see.
type KernelID int

// Kernel is one schedulable unit of computation (paper Figure 2: an
// application decomposes into kernels; each kernel follows a dwarf's
// computation/communication pattern).
type Kernel struct {
	ID KernelID
	// Name is the canonical kernel name used to key the lookup table
	// (e.g. "matmul", "bfs").
	Name string
	// Dwarf is the Berkeley-dwarf class, informational only.
	Dwarf string
	// DataElems is the input problem size in elements; together with Name it
	// keys the execution-time lookup.
	DataElems int64
	// OutElems is the number of elements the kernel produces and must ship
	// to each successor on a different processor. The thesis does not model
	// output sizes separately from input sizes, so builders default this to
	// DataElems; it is exposed for extensions.
	OutElems int64
	// App optionally tags which application in the stream this kernel
	// belongs to, for reporting.
	App int
}

// Graph is an immutable DAG of kernels.
type Graph struct {
	kernels []Kernel
	succs   [][]KernelID
	preds   [][]KernelID
	edges   int
}

// NumKernels returns the number of vertices.
func (g *Graph) NumKernels() int { return len(g.kernels) }

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int { return g.edges }

// Kernel returns the kernel with the given ID. It panics on out-of-range
// IDs, which only arise from programming errors.
func (g *Graph) Kernel(id KernelID) Kernel {
	if id < 0 || int(id) >= len(g.kernels) {
		panic(fmt.Sprintf("dfg: kernel id %d out of range [0,%d)", id, len(g.kernels)))
	}
	return g.kernels[id]
}

// Kernels returns all kernels in ID order; the slice is shared and must not
// be modified.
func (g *Graph) Kernels() []Kernel { return g.kernels }

// Succs returns the successors of id; shared slice, do not modify.
func (g *Graph) Succs(id KernelID) []KernelID { return g.succs[id] }

// Preds returns the predecessors of id; shared slice, do not modify.
func (g *Graph) Preds(id KernelID) []KernelID { return g.preds[id] }

// InDegree returns the number of dependencies of id.
func (g *Graph) InDegree(id KernelID) int { return len(g.preds[id]) }

// OutDegree returns the number of dependents of id.
func (g *Graph) OutDegree(id KernelID) int { return len(g.succs[id]) }

// Entries returns all kernels with no predecessors, in ID order.
func (g *Graph) Entries() []KernelID {
	var out []KernelID
	for id := range g.kernels {
		if len(g.preds[id]) == 0 {
			out = append(out, KernelID(id))
		}
	}
	return out
}

// Exits returns all kernels with no successors, in ID order.
func (g *Graph) Exits() []KernelID {
	var out []KernelID
	for id := range g.kernels {
		if len(g.succs[id]) == 0 {
			out = append(out, KernelID(id))
		}
	}
	return out
}

// HasEdge reports whether the dependency u -> v exists.
func (g *Graph) HasEdge(u, v KernelID) bool {
	for _, s := range g.succs[u] {
		if s == v {
			return true
		}
	}
	return false
}

// TopoOrder returns a deterministic topological order: among ready
// vertices, smaller IDs first (Kahn's algorithm with an ordered frontier).
// The graph is acyclic by construction, so this never fails.
func (g *Graph) TopoOrder() []KernelID {
	n := len(g.kernels)
	indeg := make([]int, n)
	for id := range g.kernels {
		indeg[id] = len(g.preds[id])
	}
	// frontier kept sorted ascending; n is small (hundreds) so an O(n^2)
	// ordered insert is fine and keeps the order deterministic.
	var frontier []KernelID
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			frontier = append(frontier, KernelID(id))
		}
	}
	order := make([]KernelID, 0, n)
	for len(frontier) > 0 {
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, u)
		for _, v := range g.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				i := sort.Search(len(frontier), func(i int) bool { return frontier[i] >= v })
				frontier = append(frontier, 0)
				copy(frontier[i+1:], frontier[i:])
				frontier[i] = v
			}
		}
	}
	return order
}

// Levels decomposes the graph into dependency levels: level 0 holds the
// entry kernels, level k the kernels all of whose predecessors are in
// levels < k with at least one in level k-1. Useful for describing the
// paper's Type-1 graphs ("level-1" of n-1 parallel kernels).
func (g *Graph) Levels() [][]KernelID {
	level := make([]int, len(g.kernels))
	maxLevel := 0
	for _, id := range g.TopoOrder() {
		l := 0
		for _, p := range g.preds[id] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]KernelID, maxLevel+1)
	for id := range g.kernels {
		out[level[id]] = append(out[level[id]], KernelID(id))
	}
	return out
}

// CriticalPath returns the longest path through the graph where each vertex
// costs weight(kernel) and edges are free, along with the path itself
// (entry to exit). It is a lower bound on makespan when weight is the
// fastest execution time of each kernel and transfers are ignored.
func (g *Graph) CriticalPath(weight func(Kernel) float64) (float64, []KernelID) {
	n := len(g.kernels)
	if n == 0 {
		return 0, nil
	}
	dist := make([]float64, n)
	next := make([]KernelID, n)
	for i := range next {
		next[i] = -1
	}
	order := g.TopoOrder()
	// Walk in reverse topological order computing the longest tail.
	for i := n - 1; i >= 0; i-- {
		id := order[i]
		w := weight(g.kernels[id])
		best := 0.0
		for _, s := range g.succs[id] {
			if dist[s] > best {
				best = dist[s]
				next[id] = s
			}
		}
		dist[id] = w + best
	}
	bestStart := KernelID(0)
	for id := 1; id < n; id++ {
		if dist[id] > dist[bestStart] {
			bestStart = KernelID(id)
		}
	}
	var path []KernelID
	for id := bestStart; id != -1; id = next[id] {
		path = append(path, id)
	}
	return dist[bestStart], path
}

// TotalWeight sums weight over all kernels. With weight = fastest execution
// time, TotalWeight / numProcs is another makespan lower bound.
func (g *Graph) TotalWeight(weight func(Kernel) float64) float64 {
	var sum float64
	for _, k := range g.kernels {
		sum += weight(k)
	}
	return sum
}

// Validate re-checks structural invariants (acyclic, consistent adjacency).
// Builders guarantee these already; Validate exists for graphs decoded from
// external sources and for property tests.
func (g *Graph) Validate() error {
	n := len(g.kernels)
	for id, k := range g.kernels {
		if int(k.ID) != id {
			return fmt.Errorf("dfg: kernel at index %d has ID %d", id, k.ID)
		}
		if k.Name == "" {
			return fmt.Errorf("dfg: kernel %d has empty name", id)
		}
		if k.DataElems <= 0 {
			return fmt.Errorf("dfg: kernel %d has non-positive data size %d", id, k.DataElems)
		}
		if k.OutElems <= 0 {
			return fmt.Errorf("dfg: kernel %d has non-positive output size %d", id, k.OutElems)
		}
	}
	for u := range g.succs {
		for _, v := range g.succs[u] {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("dfg: edge %d->%d out of range", u, v)
			}
			found := false
			for _, p := range g.preds[v] {
				if int(p) == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dfg: edge %d->%d missing reverse adjacency", u, v)
			}
		}
	}
	if len(g.TopoOrder()) != n {
		return fmt.Errorf("dfg: graph contains a cycle")
	}
	return nil
}

// Builder accumulates kernels and edges and produces an immutable Graph.
type Builder struct {
	kernels []Kernel
	succs   [][]KernelID
	preds   [][]KernelID
	edges   int
	edgeSet map[[2]KernelID]bool
	err     error
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{edgeSet: map[[2]KernelID]bool{}}
}

// AddKernel appends a kernel and returns its ID. If k.OutElems is zero it
// defaults to k.DataElems. The ID and Dwarf fields of the argument are
// overwritten (Dwarf only if empty, from the name via lut-style mapping is
// the caller's job; the builder leaves it as provided).
func (b *Builder) AddKernel(k Kernel) KernelID {
	id := KernelID(len(b.kernels))
	k.ID = id
	if k.OutElems == 0 {
		k.OutElems = k.DataElems
	}
	if k.Name == "" {
		b.fail(fmt.Errorf("dfg: kernel %d has empty name", id))
	}
	if k.DataElems <= 0 {
		b.fail(fmt.Errorf("dfg: kernel %d (%s) has non-positive data size %d", id, k.Name, k.DataElems))
	}
	b.kernels = append(b.kernels, k)
	b.succs = append(b.succs, nil)
	b.preds = append(b.preds, nil)
	return id
}

// AddEdge records the dependency from -> to (to consumes from's output).
// Duplicate edges are ignored; self edges and forward references to
// not-yet-added kernels are errors, as are edges that would create a cycle
// (detected at Build).
func (b *Builder) AddEdge(from, to KernelID) *Builder {
	n := KernelID(len(b.kernels))
	if from < 0 || from >= n || to < 0 || to >= n {
		b.fail(fmt.Errorf("dfg: edge %d->%d references unknown kernel (have %d)", from, to, n))
		return b
	}
	if from == to {
		b.fail(fmt.Errorf("dfg: self edge on kernel %d", from))
		return b
	}
	key := [2]KernelID{from, to}
	if b.edgeSet[key] {
		return b
	}
	b.edgeSet[key] = true
	b.succs[from] = append(b.succs[from], to)
	b.preds[to] = append(b.preds[to], from)
	b.edges++
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// NumKernels returns the number of kernels added so far.
func (b *Builder) NumKernels() int { return len(b.kernels) }

// InDegree returns the number of dependencies recorded so far for id, or
// 0 for out-of-range IDs. Useful for composing subgraphs incrementally.
func (b *Builder) InDegree(id KernelID) int {
	if id < 0 || int(id) >= len(b.preds) {
		return 0
	}
	return len(b.preds[id])
}

// Build finalises the graph, verifying acyclicity.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{kernels: b.kernels, succs: b.succs, preds: b.preds, edges: b.edges}
	if len(g.TopoOrder()) != len(g.kernels) {
		return nil, fmt.Errorf("dfg: graph contains a cycle")
	}
	return g, nil
}

// MustBuild is Build, panicking on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

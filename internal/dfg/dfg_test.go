package dfg

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the 4-kernel graph 0 -> {1,2} -> 3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddKernel(Kernel{Name: "k", DataElems: 10})
	}
	b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := diamond(t)
	if g.NumKernels() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d kernels %d edges, want 4/4", g.NumKernels(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Error("HasEdge adjacency wrong")
	}
	if got := g.Entries(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Entries = %v, want [0]", got)
	}
	if got := g.Exits(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Exits = %v, want [3]", got)
	}
	if g.InDegree(3) != 2 || g.OutDegree(0) != 2 {
		t.Error("degree bookkeeping wrong")
	}
}

func TestOutElemsDefaults(t *testing.T) {
	b := NewBuilder()
	id := b.AddKernel(Kernel{Name: "k", DataElems: 42})
	id2 := b.AddKernel(Kernel{Name: "k", DataElems: 42, OutElems: 7})
	g := b.MustBuild()
	if g.Kernel(id).OutElems != 42 {
		t.Errorf("OutElems default = %d, want 42", g.Kernel(id).OutElems)
	}
	if g.Kernel(id2).OutElems != 7 {
		t.Errorf("explicit OutElems = %d, want 7", g.Kernel(id2).OutElems)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("empty name", func(t *testing.T) {
		b := NewBuilder()
		b.AddKernel(Kernel{DataElems: 1})
		if _, err := b.Build(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad size", func(t *testing.T) {
		b := NewBuilder()
		b.AddKernel(Kernel{Name: "k", DataElems: 0})
		if _, err := b.Build(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("self edge", func(t *testing.T) {
		b := NewBuilder()
		id := b.AddKernel(Kernel{Name: "k", DataElems: 1})
		b.AddEdge(id, id)
		if _, err := b.Build(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("dangling edge", func(t *testing.T) {
		b := NewBuilder()
		id := b.AddKernel(Kernel{Name: "k", DataElems: 1})
		b.AddEdge(id, 99)
		if _, err := b.Build(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		b := NewBuilder()
		a := b.AddKernel(Kernel{Name: "k", DataElems: 1})
		c := b.AddKernel(Kernel{Name: "k", DataElems: 1})
		b.AddEdge(a, c).AddEdge(c, a)
		if _, err := b.Build(); err == nil {
			t.Error("want error for cycle")
		}
	})
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	b := NewBuilder()
	a := b.AddKernel(Kernel{Name: "k", DataElems: 1})
	c := b.AddKernel(Kernel{Name: "k", DataElems: 1})
	b.AddEdge(a, c).AddEdge(a, c)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 (duplicate collapsed)", g.NumEdges())
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order := g.TopoOrder()
	if len(order) != 4 {
		t.Fatalf("topo order len %d, want 4", len(order))
	}
	pos := map[KernelID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for u := 0; u < g.NumKernels(); u++ {
		for _, v := range g.Succs(KernelID(u)) {
			if pos[KernelID(u)] >= pos[v] {
				t.Errorf("edge %d->%d violates topo order %v", u, v, order)
			}
		}
	}
	// Deterministic: smaller IDs first among ready -> exactly 0,1,2,3.
	for i, id := range order {
		if int(id) != i {
			t.Errorf("order = %v, want [0 1 2 3]", order)
			break
		}
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	levels := g.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %v, want 3 levels", levels)
	}
	if len(levels[0]) != 1 || levels[0][0] != 0 {
		t.Errorf("level 0 = %v", levels[0])
	}
	if len(levels[1]) != 2 {
		t.Errorf("level 1 = %v", levels[1])
	}
	if len(levels[2]) != 1 || levels[2][0] != 3 {
		t.Errorf("level 2 = %v", levels[2])
	}
}

func TestCriticalPath(t *testing.T) {
	b := NewBuilder()
	// 0(10) -> 1(1) -> 3(10); 0 -> 2(100) -> 3. Critical: 0,2,3 = 120.
	weights := []float64{10, 1, 100, 10}
	for range weights {
		b.AddKernel(Kernel{Name: "k", DataElems: 1})
	}
	b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3)
	g := b.MustBuild()
	w := func(k Kernel) float64 { return weights[k.ID] }
	length, path := g.CriticalPath(w)
	if length != 120 {
		t.Errorf("critical path length = %v, want 120", length)
	}
	want := []KernelID{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path = %v, want %v", path, want)
			break
		}
	}
	if tw := g.TotalWeight(w); tw != 121 {
		t.Errorf("TotalWeight = %v, want 121", tw)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	g := NewBuilder().MustBuild()
	if l, p := g.CriticalPath(func(Kernel) float64 { return 1 }); l != 0 || p != nil {
		t.Errorf("empty graph critical path = %v,%v", l, p)
	}
}

func TestValidate(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Errorf("valid graph failed Validate: %v", err)
	}
}

func TestKernelPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Kernel(99) did not panic")
		}
	}()
	diamond(t).Kernel(99)
}

func TestDOTContainsNodesAndEdges(t *testing.T) {
	var buf bytes.Buffer
	if err := diamond(t).WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"k0", "k3", "k0 -> k1", "k2 -> k3"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumKernels() != g.NumKernels() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumKernels(), back.NumEdges(), g.NumKernels(), g.NumEdges())
	}
	for id := 0; id < g.NumKernels(); id++ {
		a, b := g.Kernel(KernelID(id)), back.Kernel(KernelID(id))
		if a != b {
			t.Errorf("kernel %d: %+v != %+v", id, a, b)
		}
		for _, s := range g.Succs(KernelID(id)) {
			if !back.HasEdge(KernelID(id), s) {
				t.Errorf("edge %d->%d lost in round trip", id, s)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("want decode error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"kernels":[{"name":"k","data_elems":1}],"edges":[[0,5]]}`)); err == nil {
		t.Error("want dangling edge error")
	}
}

// randomDAG builds a random DAG where edges only go from lower to higher
// IDs, guaranteeing acyclicity.
func randomDAG(r *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddKernel(Kernel{Name: "k", DataElems: int64(r.Intn(1000) + 1)})
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(KernelID(u), KernelID(v))
			}
		}
	}
	return b.MustBuild()
}

// Property: topological order is a permutation respecting all edges, and
// Levels is consistent with it, for random DAGs.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		p := float64(pRaw%100) / 100
		g := randomDAG(r, n, p)
		order := g.TopoOrder()
		if len(order) != n {
			return false
		}
		pos := make(map[KernelID]int, n)
		for i, id := range order {
			if _, dup := pos[id]; dup {
				return false
			}
			pos[id] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succs(KernelID(u)) {
				if pos[KernelID(u)] >= pos[v] {
					return false
				}
			}
		}
		// Each kernel's level is exactly 1 + max pred level.
		levels := g.Levels()
		levelOf := map[KernelID]int{}
		for l, ids := range levels {
			for _, id := range ids {
				levelOf[id] = l
			}
		}
		for u := 0; u < n; u++ {
			want := 0
			for _, pr := range g.Preds(KernelID(u)) {
				if levelOf[pr]+1 > want {
					want = levelOf[pr] + 1
				}
			}
			if levelOf[KernelID(u)] != want {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip is lossless for random DAGs.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		g := randomDAG(r, n, 0.3)
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if back.NumKernels() != g.NumKernels() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succs(KernelID(u)) {
				if !back.HasEdge(KernelID(u), v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSizeGuard pins the int32 overflow guard: counts beyond the ID space
// are rejected with a typed *SizeError (white-box through checkSize, so the
// guard is provable without materialising a 2^31-kernel graph).
func TestSizeGuard(t *testing.T) {
	if err := checkSize(10, 20); err != nil {
		t.Fatalf("small graph rejected: %v", err)
	}
	if err := checkSize(math.MaxInt32, math.MaxInt32); err != nil {
		t.Fatalf("exactly-max graph rejected: %v", err)
	}
	for _, tc := range []struct{ kernels, edges int }{
		{math.MaxInt32 + 1, 0},
		{0, math.MaxInt32 + 1},
		{math.MaxInt32 + 1, math.MaxInt32 + 1},
	} {
		err := checkSize(tc.kernels, tc.edges)
		if err == nil {
			t.Fatalf("checkSize(%d, %d) accepted", tc.kernels, tc.edges)
		}
		var se *SizeError
		if !errors.As(err, &se) {
			t.Fatalf("checkSize(%d, %d) returned %T, want *SizeError", tc.kernels, tc.edges, err)
		}
		if se.Kernels != tc.kernels || se.Edges != tc.edges {
			t.Fatalf("SizeError carries %d/%d, want %d/%d", se.Kernels, se.Edges, tc.kernels, tc.edges)
		}
		if !strings.Contains(err.Error(), "int32") {
			t.Fatalf("error %q does not name the int32 ID space", err)
		}
	}
}

package dfg

import "testing"

// csrDiamond builds the 0 -> {1,2} -> 3 graph used across these tests.
func csrDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddKernel(Kernel{Name: "k", DataElems: 1})
	}
	b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3)
	return b.MustBuild()
}

func TestAppendEntriesExits(t *testing.T) {
	g := csrDiamond(t)
	if got := g.Entries(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Entries = %v", got)
	}
	if got := g.Exits(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Exits = %v", got)
	}
	buf := make([]KernelID, 0, 4)
	if got := g.AppendEntries(buf); len(got) != 1 || got[0] != 0 {
		t.Fatalf("AppendEntries = %v", got)
	}
	if got := g.AppendExits(buf); len(got) != 1 || got[0] != 3 {
		t.Fatalf("AppendExits = %v", got)
	}
	// Append variants must reuse the supplied buffer, not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		buf = g.AppendEntries(buf[:0])
		buf = g.AppendExits(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendEntries/AppendExits allocated %.1f per call", allocs)
	}
}

func TestAppendTopoOrderZeroAlloc(t *testing.T) {
	g := csrDiamond(t)
	buf := make([]KernelID, 0, g.NumKernels())
	allocs := testing.AllocsPerRun(100, func() { buf = g.AppendTopoOrder(buf[:0]) })
	if allocs != 0 {
		t.Errorf("AppendTopoOrder allocated %.1f per call", allocs)
	}
	if len(buf) != 4 || buf[0] != 0 || buf[3] != 3 {
		t.Fatalf("AppendTopoOrder = %v", buf)
	}
}

func TestCSRAdjacencySorted(t *testing.T) {
	// Insert edges out of ID order; CSR must expose them sorted.
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddKernel(Kernel{Name: "k", DataElems: 1})
	}
	b.AddEdge(0, 4).AddEdge(0, 2).AddEdge(0, 3).AddEdge(1, 4).AddEdge(3, 4)
	g := b.MustBuild()
	succs := g.Succs(0)
	if len(succs) != 3 || succs[0] != 2 || succs[1] != 3 || succs[2] != 4 {
		t.Fatalf("Succs(0) = %v, want sorted [2 3 4]", succs)
	}
	preds := g.Preds(4)
	if len(preds) != 3 || preds[0] != 0 || preds[1] != 1 || preds[2] != 3 {
		t.Fatalf("Preds(4) = %v, want sorted [0 1 3]", preds)
	}
	for _, want := range []struct {
		u, v KernelID
		has  bool
	}{{0, 2, true}, {0, 3, true}, {0, 4, true}, {0, 1, false}, {2, 0, false}, {3, 4, true}, {4, 3, false}} {
		if got := g.HasEdge(want.u, want.v); got != want.has {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", want.u, want.v, got, want.has)
		}
	}
}

func TestBuildDedupsDuplicateEdges(t *testing.T) {
	b := NewBuilder()
	b.AddKernel(Kernel{Name: "a", DataElems: 1})
	b.AddKernel(Kernel{Name: "b", DataElems: 1})
	for i := 0; i < 5; i++ {
		b.AddEdge(0, 1)
	}
	// Builder.InDegree may transiently count duplicates, but zero-ness is
	// exact either way.
	if b.InDegree(1) == 0 {
		t.Fatal("InDegree(1) = 0 before Build")
	}
	if b.InDegree(0) != 0 {
		t.Fatalf("InDegree(0) = %d, want 0", b.InDegree(0))
	}
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after duplicate AddEdge, want 1", g.NumEdges())
	}
	if got := g.Succs(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Succs(0) = %v", got)
	}
	if g.InDegree(1) != 1 {
		t.Fatalf("graph InDegree(1) = %d, want 1", g.InDegree(1))
	}
}

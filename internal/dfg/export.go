package dfg

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format, one node per kernel
// labelled "name#id (elems)".
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	sb.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, k := range g.kernels {
		fmt.Fprintf(&sb, "  k%d [label=\"%s#%d\\n%d elems\"];\n", k.ID, k.Name, k.ID, k.DataElems)
	}
	for u := range g.kernels {
		// CSR successor ranges are already sorted ascending.
		for _, v := range g.Succs(KernelID(u)) {
			fmt.Fprintf(&sb, "  k%d -> k%d;\n", u, v)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// jsonGraph is the stable on-disk representation.
type jsonGraph struct {
	Kernels []jsonKernel `json:"kernels"`
	Edges   [][2]int     `json:"edges"`
}

type jsonKernel struct {
	Name      string `json:"name"`
	Dwarf     string `json:"dwarf,omitempty"`
	DataElems int64  `json:"data_elems"`
	OutElems  int64  `json:"out_elems,omitempty"`
	App       int    `json:"app,omitempty"`
}

// WriteJSON encodes the graph as JSON. Kernels appear in ID order so a
// subsequent ReadJSON reproduces identical IDs.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Kernels: make([]jsonKernel, len(g.kernels))}
	for i, k := range g.kernels {
		jk := jsonKernel{Name: k.Name, Dwarf: k.Dwarf, DataElems: k.DataElems, App: k.App}
		if k.OutElems != k.DataElems {
			jk.OutElems = k.OutElems
		}
		jg.Kernels[i] = jk
	}
	// CSR iteration in vertex order with sorted successor ranges yields
	// edges already in (from, to) order.
	jg.Edges = make([][2]int, 0, g.NumEdges())
	for u := range g.kernels {
		for _, v := range g.Succs(KernelID(u)) {
			jg.Edges = append(jg.Edges, [2]int{u, int(v)})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadJSON decodes a graph written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("dfg: json decode: %w", err)
	}
	b := NewBuilder()
	for _, jk := range jg.Kernels {
		b.AddKernel(Kernel{
			Name:      jk.Name,
			Dwarf:     jk.Dwarf,
			DataElems: jk.DataElems,
			OutElems:  jk.OutElems,
			App:       jk.App,
		})
	}
	for _, e := range jg.Edges {
		b.AddEdge(KernelID(e[0]), KernelID(e[1]))
	}
	return b.Build()
}

package dfg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON asserts ReadJSON never panics and everything it accepts is
// a valid graph that survives a round trip.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	b := NewBuilder()
	k0 := b.AddKernel(Kernel{Name: "a", DataElems: 5})
	k1 := b.AddKernel(Kernel{Name: "b", DataElems: 7})
	b.AddEdge(k0, k1)
	if err := b.MustBuild().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"kernels":[],"edges":[]}`)
	f.Add(`{"kernels":[{"name":"k","data_elems":1}],"edges":[[0,0]]}`)
	f.Add(`{"kernels":[{"name":"k","data_elems":1}],"edges":[[0,9]]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := g.WriteJSON(&out); err != nil {
			t.Fatalf("accepted graph failed to serialise: %v", err)
		}
		back, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumKernels() != g.NumKernels() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}

// --- Seed reference implementations -----------------------------------------
//
// The CSR refactor replaced per-vertex adjacency slices and the O(n²)
// ordered-insert Kahn frontier with flat edge arrays and a heap frontier.
// These reference functions reimplement the seed algorithms verbatim over
// the public API; the fuzzers below assert the CSR graph agrees with them
// on arbitrary DAGs.

// refTopoOrder is the seed TopoOrder: Kahn with a sorted-slice frontier,
// ordered inserts keeping smaller IDs first.
func refTopoOrder(g *Graph) []KernelID {
	n := g.NumKernels()
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		indeg[id] = g.InDegree(KernelID(id))
	}
	var frontier []KernelID
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			frontier = append(frontier, KernelID(id))
		}
	}
	order := make([]KernelID, 0, n)
	for len(frontier) > 0 {
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, u)
		for _, v := range g.Succs(u) {
			indeg[v]--
			if indeg[v] == 0 {
				i := 0
				for i < len(frontier) && frontier[i] < v {
					i++
				}
				frontier = append(frontier, 0)
				copy(frontier[i+1:], frontier[i:])
				frontier[i] = v
			}
		}
	}
	return order
}

// refLevels is the seed Levels over a given topological order.
func refLevels(g *Graph) [][]KernelID {
	level := make([]int, g.NumKernels())
	maxLevel := 0
	for _, id := range refTopoOrder(g) {
		l := 0
		for _, p := range g.Preds(id) {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]KernelID, maxLevel+1)
	for id := range level {
		out[level[id]] = append(out[level[id]], KernelID(id))
	}
	return out
}

// refCriticalPath is the seed CriticalPath: longest vertex-weighted path
// walking the reference topological order in reverse.
func refCriticalPath(g *Graph, weight func(Kernel) float64) (float64, []KernelID) {
	n := g.NumKernels()
	if n == 0 {
		return 0, nil
	}
	dist := make([]float64, n)
	next := make([]KernelID, n)
	for i := range next {
		next[i] = -1
	}
	order := refTopoOrder(g)
	for i := n - 1; i >= 0; i-- {
		id := order[i]
		w := weight(g.Kernel(id))
		best := 0.0
		for _, s := range g.Succs(id) {
			if dist[s] > best {
				best = dist[s]
				next[id] = s
			}
		}
		dist[id] = w + best
	}
	bestStart := KernelID(0)
	for id := 1; id < n; id++ {
		if dist[id] > dist[bestStart] {
			bestStart = KernelID(id)
		}
	}
	var path []KernelID
	for id := bestStart; id != -1; id = next[id] {
		path = append(path, id)
	}
	return dist[bestStart], path
}

// refComponents is the reference weakly-connected-component labelling:
// breadth-first search over the undirected adjacency, seeded from each
// unvisited vertex in ascending ID order — which is exactly the "components
// numbered by first appearance" contract of Graph.ComponentOf.
func refComponents(g *Graph) []int32 {
	n := g.NumKernels()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		queue := []KernelID{KernelID(start)}
		comp[start] = next
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Succs(u) {
				if comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
			for _, v := range g.Preds(u) {
				if comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return comp
}

// fuzzGraph decodes an arbitrary byte string into a DAG: the first byte
// picks the vertex count (2..65), every following byte pair (a, b) an edge
// between distinct vertices directed low ID -> high ID — always acyclic,
// frequently duplicated, exercising the Build-time dedup pass.
func fuzzGraph(data []byte) *Graph {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%64 + 2
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddKernel(Kernel{Name: "k", DataElems: int64(i + 1)})
	}
	for i := 1; i+1 < len(data); i += 2 {
		u := KernelID(int(data[i]) % n)
		v := KernelID(int(data[i+1]) % n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// FuzzGraphAlgos asserts the CSR-backed TopoOrder, Levels, CriticalPath and
// HasEdge agree with the seed implementations on arbitrary DAGs.
func FuzzGraphAlgos(f *testing.F) {
	f.Add([]byte{5})
	f.Add([]byte{8, 0, 1, 1, 2, 0, 2, 0, 2, 3, 7})
	f.Add([]byte{64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 200, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		if g == nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}

		want := refTopoOrder(g)
		got := g.TopoOrder()
		if len(got) != len(want) {
			t.Fatalf("topo length %d != %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("topo[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		if buf := g.AppendTopoOrder(nil); len(buf) != len(want) {
			t.Fatalf("AppendTopoOrder length %d != %d", len(buf), len(want))
		}

		wantLevels := refLevels(g)
		gotLevels := g.Levels()
		if len(gotLevels) != len(wantLevels) {
			t.Fatalf("levels %d != %d", len(gotLevels), len(wantLevels))
		}
		for l := range wantLevels {
			if len(gotLevels[l]) != len(wantLevels[l]) {
				t.Fatalf("level %d size %d != %d", l, len(gotLevels[l]), len(wantLevels[l]))
			}
			for i := range wantLevels[l] {
				if gotLevels[l][i] != wantLevels[l][i] {
					t.Fatalf("level %d entry %d: %d != %d", l, i, gotLevels[l][i], wantLevels[l][i])
				}
			}
		}

		weight := func(k Kernel) float64 { return float64(k.DataElems) }
		wantDist, wantPath := refCriticalPath(g, weight)
		gotDist, gotPath := g.CriticalPath(weight)
		if gotDist != wantDist {
			t.Fatalf("critical path %v != %v", gotDist, wantDist)
		}
		if len(gotPath) != len(wantPath) {
			t.Fatalf("critical path length %d != %d", len(gotPath), len(wantPath))
		}
		for i := range wantPath {
			if gotPath[i] != wantPath[i] {
				t.Fatalf("critical path[%d] = %d != %d", i, gotPath[i], wantPath[i])
			}
		}

		// HasEdge against a linear scan of the adjacency, plus edge-count
		// consistency between both CSR halves.
		edges := 0
		for u := 0; u < g.NumKernels(); u++ {
			edges += len(g.Succs(KernelID(u)))
			for v := 0; v < g.NumKernels(); v++ {
				linear := false
				for _, s := range g.Succs(KernelID(u)) {
					if s == KernelID(v) {
						linear = true
						break
					}
				}
				if got := g.HasEdge(KernelID(u), KernelID(v)); got != linear {
					t.Fatalf("HasEdge(%d,%d) = %v, linear scan %v", u, v, got, linear)
				}
			}
		}
		if edges != g.NumEdges() {
			t.Fatalf("NumEdges %d != summed out-degrees %d", g.NumEdges(), edges)
		}

		// Weakly-connected components against a BFS reference: identical
		// labels (the numbering contract is deterministic, not just the
		// partition), and AppendComponent tiles [0, n) — every kernel in
		// exactly one component, ascending ID order within each.
		wantComp := refComponents(g)
		nc := g.NumComponents()
		for id := 0; id < g.NumKernels(); id++ {
			c := g.ComponentOf(KernelID(id))
			if c != wantComp[id] {
				t.Fatalf("ComponentOf(%d) = %d, BFS reference %d", id, c, wantComp[id])
			}
			if c < 0 || int(c) >= nc {
				t.Fatalf("ComponentOf(%d) = %d outside [0, %d)", id, c, nc)
			}
		}
		seen := make([]bool, g.NumKernels())
		for c := 0; c < nc; c++ {
			members := g.AppendComponent(int32(c), nil)
			if len(members) == 0 {
				t.Fatalf("component %d is empty", c)
			}
			for i, id := range members {
				if g.ComponentOf(id) != int32(c) {
					t.Fatalf("AppendComponent(%d) contains kernel %d of component %d", c, id, g.ComponentOf(id))
				}
				if seen[id] {
					t.Fatalf("kernel %d appears in two components", id)
				}
				seen[id] = true
				if i > 0 && members[i-1] >= id {
					t.Fatalf("component %d members not ascending: %d before %d", c, members[i-1], id)
				}
			}
		}
		for id, ok := range seen {
			if !ok {
				t.Fatalf("kernel %d missing from every component", id)
			}
		}
	})
}

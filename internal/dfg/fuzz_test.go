package dfg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON asserts ReadJSON never panics and everything it accepts is
// a valid graph that survives a round trip.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	b := NewBuilder()
	k0 := b.AddKernel(Kernel{Name: "a", DataElems: 5})
	k1 := b.AddKernel(Kernel{Name: "b", DataElems: 7})
	b.AddEdge(k0, k1)
	if err := b.MustBuild().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"kernels":[],"edges":[]}`)
	f.Add(`{"kernels":[{"name":"k","data_elems":1}],"edges":[[0,0]]}`)
	f.Add(`{"kernels":[{"name":"k","data_elems":1}],"edges":[[0,9]]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := g.WriteJSON(&out); err != nil {
			t.Fatalf("accepted graph failed to serialise: %v", err)
		}
		back, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumKernels() != g.NumKernels() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}

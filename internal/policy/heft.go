package policy

import (
	"math"
	"sort"

	"repro/internal/dfg"
	"repro/internal/sim"
)

// HEFT implements the heterogeneous earliest finish time policy of
// Topcuoglu et al. as the thesis describes and evaluates it (paper §2.5.3,
// Eq. 3–5): a static list scheduler that
//
//  1. ranks every task by its upward rank — the length of the critical
//     path from the task to the exit, using mean execution cost w̄ᵢ and
//     mean communication cost c̄ᵢⱼ (Eq. 3–4);
//  2. visits tasks in decreasing upward rank; and
//  3. assigns each "to the processor from A with the least sum of time
//     remaining of any previous kernel and execution time of the current
//     kernel on that processor" (the thesis's wording) — i.e. the
//     processor minimising booked-time-so-far plus execution time.
//
// The thesis's processor-selection rule is a simplification of Topcuoglu's
// original insertion-based earliest-finish-time search: it ignores
// data-ready times and idle gaps. Set Textbook to use the original
// EFT+insertion selection instead; the repository's ablation benches
// compare both (the textbook variant is markedly stronger on the paper's
// workloads — strong enough to beat APT — which is why reproducing the
// paper's Tables 8–10 requires the thesis flavor).
//
// The full schedule is computed in Prepare and released to the engine at
// time zero.
type HEFT struct {
	// Textbook selects Topcuoglu's original insertion-based EFT processor
	// selection instead of the thesis's simplified rule.
	Textbook bool
	// NoInsertion disables the insertion slot search within the textbook
	// variant (append-only timelines). Ignored unless Textbook is set.
	NoInsertion bool

	plan    staticPlan
	memo    prepMemo
	scratch schedScratch
	order   []dfg.KernelID
	prio    []dfg.KernelID

	// RankU, exposed after Prepare for inspection and tests, maps each
	// kernel to its upward rank.
	RankU []float64
	// PlannedMakespanMs is the makespan the plan estimated (actuals differ;
	// see staticPlan).
	PlannedMakespanMs float64
}

// NewHEFT returns a HEFT policy.
func NewHEFT() *HEFT { return &HEFT{} }

// Name implements sim.Policy.
func (h *HEFT) Name() string { return "HEFT" }

// Prepare implements sim.Policy: compute upward ranks and the insertion-
// based EFT schedule. Prepare is a pure function of the cost oracle, so
// preparing the same instance for the same *Costs again only re-arms the
// cached plan (see prepMemo) — the path batch sweeps over one graph take.
func (h *HEFT) Prepare(c *sim.Costs) error {
	if h.memo.hit(c) {
		h.plan.rearm()
		return nil
	}
	h.memo.forget()
	g := c.Graph()
	n := g.NumKernels()
	h.RankU = grow(h.RankU, n)

	// Upward rank, computed in reverse topological order (Eq. 3):
	// rank_u(n_i) = w̄_i + max over successors (c̄_ij + rank_u(n_j)),
	// with rank_u(exit) = w̄_exit (Eq. 4).
	order := g.AppendTopoOrder(h.order[:0])
	h.order = order
	for i := n - 1; i >= 0; i-- {
		k := order[i]
		best := 0.0
		cMean := c.MeanTransfer(k)
		for _, s := range g.Succs(k) {
			if v := cMean + h.RankU[s]; v > best {
				best = v
			}
		}
		h.RankU[k] = c.MeanExec(k) + best
	}

	// Priority order: decreasing rank_u; ties by kernel ID for determinism.
	// Decreasing rank_u is a linear extension of the precedence order
	// because rank_u strictly decreases along every edge (w̄ > 0).
	prio := grow(h.prio, n)
	h.prio = prio
	for i := range prio {
		prio[i] = dfg.KernelID(i)
	}
	sort.SliceStable(prio, func(i, j int) bool {
		// Three-way rank comparison (no float equality): exact rank ties
		// fall through to the kernel-ID tie-break.
		if h.RankU[prio[i]] > h.RankU[prio[j]] {
			return true
		}
		if h.RankU[prio[i]] < h.RankU[prio[j]] {
			return false
		}
		return prio[i] < prio[j]
	})

	var tasks []plannedTask
	var err error
	if h.Textbook {
		tasks, err = listSchedule(c, &h.scratch, prio, h.NoInsertion, func(k dfg.KernelID, est, eft []float64) int {
			best := 0
			for p := 1; p < len(eft); p++ {
				if eft[p] < eft[best] {
					best = p
				}
			}
			return best
		})
		if err != nil {
			return err
		}
	} else {
		tasks = bookingSchedule(c, &h.scratch, prio, func(k dfg.KernelID, booked []float64) int {
			// Thesis rule: least (time remaining of previous kernels on p)
			// plus (execution time of k on p).
			best := 0
			bestV := math.Inf(1)
			row := c.ExecRow(k)
			for p := range booked {
				if v := booked[p] + row[p]; v < bestV {
					bestV, best = v, p
				}
			}
			return best
		})
	}
	h.PlannedMakespanMs = plannedMakespan(tasks)
	h.plan.set(tasks)
	h.memo.remember(c)
	return nil
}

// Select implements sim.Policy: release the precomputed schedule once.
func (h *HEFT) Select(*sim.State) []sim.Assignment { return h.plan.release() }

package policy

import (
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/workload"
)

func TestOLBIgnoresExecutionTimes(t *testing.T) {
	e := newEnv(t)
	b := dfg.NewBuilder()
	// Three "a" kernels: OLB hands them to CPU, GPU, FPGA in ID order even
	// though the FPGA is 25x slower than the GPU for "a".
	for i := 0; i < 3; i++ {
		b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	}
	g := b.MustBuild()
	res := e.run(t, g, NewOLB())
	used := map[platform.Kind]int{}
	for i := range res.Placements {
		used[e.sys.KindOf(res.Placements[i].Proc)]++
	}
	if used[platform.CPU] != 1 || used[platform.GPU] != 1 || used[platform.FPGA] != 1 {
		t.Errorf("OLB placements = %v, want one per processor", used)
	}
	// Makespan is dominated by the FPGA's 50 ms.
	if res.MakespanMs != 50 {
		t.Errorf("makespan = %v, want 50", res.MakespanMs)
	}
}

func TestOLBNeverIdlesWithWork(t *testing.T) {
	e := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	g := workload.MustSuite(workload.Type1, 3)[0]
	res := e.run(t, g, NewOLB())
	// Every Select with ready kernels and free processors assigns, so no
	// kernel's Assign time can lag the moment both were available. Weak
	// proxy: all kernels got assigned and the schedule validates (checked
	// by run); additionally OLB must be worse than MET here.
	met := e.run(t, g, NewMET(1))
	if res.MakespanMs <= met.MakespanMs {
		t.Errorf("OLB (%v) unexpectedly beat MET (%v) on a heterogeneous workload",
			res.MakespanMs, met.MakespanMs)
	}
}

func TestARDeterministicPerSeed(t *testing.T) {
	e := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	g := workload.MustSuite(workload.Type2, 9)[1]
	a := e.run(t, g, NewAR(5))
	b := e.run(t, g, NewAR(5))
	if a.MakespanMs != b.MakespanMs {
		t.Fatalf("same seed, different makespans: %v vs %v", a.MakespanMs, b.MakespanMs)
	}
	c := e.run(t, g, NewAR(6))
	if a.MakespanMs == c.MakespanMs {
		t.Log("different seeds produced identical makespans (possible but unlikely)")
	}
}

func TestARAssignsImmediately(t *testing.T) {
	e := newEnv(t)
	res := e.run(t, twoA(t), NewAR(1))
	for i := range res.Placements {
		if res.Placements[i].Assign != 0 {
			t.Errorf("kernel %d assigned at %v, want 0", i, res.Placements[i].Assign)
		}
	}
}

func TestARFavoursFastProcessors(t *testing.T) {
	e := newEnv(t)
	// Many independent "a" kernels: the GPU (2 ms) should receive far more
	// than the FPGA (50 ms) under inverse-time weighting (weights
	// 0.1/0.5/0.02 -> GPU ~81%, CPU ~16%, FPGA ~3%).
	b := dfg.NewBuilder()
	const n = 400
	for i := 0; i < n; i++ {
		b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	}
	g := b.MustBuild()
	res := e.run(t, g, NewAR(7))
	counts := map[platform.Kind]int{}
	for i := range res.Placements {
		counts[e.sys.KindOf(res.Placements[i].Proc)]++
	}
	if counts[platform.GPU] <= counts[platform.CPU] || counts[platform.CPU] <= counts[platform.FPGA] {
		t.Errorf("AR counts = %v, want GPU > CPU > FPGA", counts)
	}
}

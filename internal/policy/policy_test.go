package policy

import (
	"math"
	"testing"

	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testEnv mirrors the hand-checkable table used by the sim tests:
//
//	kernel "a": CPU 10, GPU 2, FPGA 50   (best GPU)
//	kernel "b": CPU 4,  GPU 8, FPGA 1    (best FPGA)
type testEnv struct {
	sys *platform.System
	tab *lut.Table
}

func newEnv(t *testing.T) testEnv {
	t.Helper()
	tab, err := lut.New([]lut.Entry{
		{Kernel: "a", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 10, platform.GPU: 2, platform.FPGA: 50}},
		{Kernel: "b", DataElems: 1000, TimeMs: map[platform.Kind]float64{
			platform.CPU: 4, platform.GPU: 8, platform.FPGA: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return testEnv{sys: platform.PaperSystem(4), tab: tab}
}

func (e testEnv) costs(t *testing.T, g *dfg.Graph) *sim.Costs {
	t.Helper()
	c, err := sim.PrepareCosts(g, e.sys, e.tab, sim.CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (e testEnv) run(t *testing.T, g *dfg.Graph, pol sim.Policy) *sim.Result {
	t.Helper()
	res, err := sim.Run(e.costs(t, g), pol, sim.Options{})
	if err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	if err := res.Validate(g, e.sys); err != nil {
		t.Fatalf("%s schedule invalid: %v", pol.Name(), err)
	}
	return res
}

// twoA builds two independent "a" kernels (both best on GPU).
func twoA(t *testing.T) *dfg.Graph {
	t.Helper()
	b := dfg.NewBuilder()
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	return b.MustBuild()
}

func kindOf(t *testing.T, e testEnv, res *sim.Result, k dfg.KernelID) platform.Kind {
	t.Helper()
	return e.sys.KindOf(res.PlacementOf(k).Proc)
}

func TestMETAlwaysUsesBestProcessor(t *testing.T) {
	e := newEnv(t)
	res := e.run(t, twoA(t), NewMET(1))
	// MET waits for the GPU: both kernels serialize there, makespan 4.
	if res.MakespanMs != 4 {
		t.Errorf("makespan = %v, want 4 (both on GPU)", res.MakespanMs)
	}
	for k := dfg.KernelID(0); k < 2; k++ {
		if got := kindOf(t, e, res, k); got != platform.GPU {
			t.Errorf("kernel %d ran on %s, want GPU", k, got)
		}
	}
	// Exactly one kernel waited 2 ms.
	if res.Lambda.TotalMs != 2 || res.Lambda.Count != 1 {
		t.Errorf("lambda = %+v, want total 2 count 1", res.Lambda)
	}
}

func TestMETDeterministicPerSeed(t *testing.T) {
	e := newEnv(t)
	g := workload.MustSuite(workload.Type1, 3)[0]
	_ = g // suite graphs use the paper catalog; build costs with paper table instead
	paperEnv := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	r1 := paperEnv.run(t, g, NewMET(42))
	r2 := paperEnv.run(t, g, NewMET(42))
	if r1.MakespanMs != r2.MakespanMs {
		t.Errorf("same seed, different makespans: %v vs %v", r1.MakespanMs, r2.MakespanMs)
	}
	for i := range r1.Placements {
		if r1.Placements[i].Proc != r2.Placements[i].Proc {
			t.Fatalf("same seed, kernel %d placed differently", i)
		}
	}
	_ = e
}

func TestSPNKeepsSystemBusy(t *testing.T) {
	e := newEnv(t)
	res := e.run(t, twoA(t), NewSPN())
	// SPN assigns the first "a" to GPU (2ms) and immediately gives the
	// second to the best available remaining processor, CPU (10ms).
	kinds := map[platform.Kind]int{}
	for k := dfg.KernelID(0); k < 2; k++ {
		kinds[kindOf(t, e, res, k)]++
	}
	if kinds[platform.GPU] != 1 || kinds[platform.CPU] != 1 {
		t.Errorf("placements = %v, want one GPU one CPU", kinds)
	}
	if res.MakespanMs != 10 {
		t.Errorf("makespan = %v, want 10", res.MakespanMs)
	}
	// No kernel waits under SPN, but the kernel sent to the CPU pays an
	// execution-time penalty of 10-2=8 ms, which λ records.
	if res.Lambda.Count != 1 || res.Lambda.TotalMs != 8 {
		t.Errorf("lambda = %+v, want count 1 total 8 (slow-processor penalty)", res.Lambda)
	}
}

func TestSSPrioritisesHighStdDev(t *testing.T) {
	e := newEnv(t)
	b := dfg.NewBuilder()
	ka := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000}) // stddev across procs ~21
	kb := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000}) // stddev ~2.9
	g := b.MustBuild()
	res := e.run(t, g, NewSS())
	// "a" picked first -> GPU; then "b" -> FPGA (still available).
	if got := kindOf(t, e, res, ka); got != platform.GPU {
		t.Errorf("a on %s, want GPU", got)
	}
	if got := kindOf(t, e, res, kb); got != platform.FPGA {
		t.Errorf("b on %s, want FPGA", got)
	}
}

func TestSSSettlesForSlowProcessor(t *testing.T) {
	e := newEnv(t)
	res := e.run(t, twoA(t), NewSS())
	// Two "a" kernels: first takes GPU, second must settle for CPU.
	if res.MakespanMs != 10 {
		t.Errorf("makespan = %v, want 10", res.MakespanMs)
	}
}

func TestAGAssignsImmediately(t *testing.T) {
	e := newEnv(t)
	b := dfg.NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	}
	g := b.MustBuild()
	res := e.run(t, g, NewAG())
	// AG never leaves a ready kernel unassigned: every kernel's Assign time
	// is its Ready time (all 0 here).
	for i := range res.Placements {
		if res.Placements[i].Assign != 0 {
			t.Errorf("kernel %d assigned at %v, want 0 (immediate)", i, res.Placements[i].Assign)
		}
	}
}

func TestAGSpreadsByWaitEstimate(t *testing.T) {
	e := newEnv(t)
	b := dfg.NewBuilder()
	for i := 0; i < 3; i++ {
		b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	}
	g := b.MustBuild()
	res := e.run(t, g, NewAG())
	// With no history, wait estimates bootstrap from the kernels' own exec
	// times: first kernel sees zero queues everywhere and picks CPU (lowest
	// ID among zero-wait procs); subsequent ones avoid the growing queue.
	used := map[platform.ProcID]int{}
	for i := range res.Placements {
		used[res.Placements[i].Proc]++
	}
	if len(used) < 2 {
		t.Errorf("AG put every kernel on one processor: %v", used)
	}
}

func TestHEFTRanksDecreaseAlongEdges(t *testing.T) {
	e := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	g := workload.MustSuite(workload.Type2, 5)[0]
	c := e.costs(t, g)
	h := NewHEFT()
	if err := h.Prepare(c); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumKernels(); u++ {
		for _, v := range g.Succs(dfg.KernelID(u)) {
			if h.RankU[u] <= h.RankU[v] {
				t.Errorf("rank_u(%d)=%v <= rank_u(succ %d)=%v", u, h.RankU[u], v, h.RankU[v])
			}
		}
	}
	if h.PlannedMakespanMs <= 0 {
		t.Error("planned makespan not positive")
	}
}

func TestHEFTSimpleChain(t *testing.T) {
	e := newEnv(t)
	b := dfg.NewBuilder()
	a := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	bb := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(a, bb)
	g := b.MustBuild()
	res := e.run(t, g, NewHEFT())
	// EFT places a on GPU (finish 2); b: FPGA exec 1 + tiny transfer beats
	// staying anywhere else.
	if got := kindOf(t, e, res, a); got != platform.GPU {
		t.Errorf("a on %s, want GPU", got)
	}
	if got := kindOf(t, e, res, bb); got != platform.FPGA {
		t.Errorf("b on %s, want FPGA", got)
	}
}

func TestHEFTInsertionFillsGaps(t *testing.T) {
	// Construct a timeline directly to exercise the insertion rule.
	var tl timeline
	tl.insert(10, 5) // busy [10,15)
	if got := tl.earliestSlot(0, 5); got != 0 {
		t.Errorf("slot before existing interval = %v, want 0", got)
	}
	tl.insert(0, 5) // busy [0,5) [10,15)
	if got := tl.earliestSlot(0, 5); got != 5 {
		t.Errorf("gap slot = %v, want 5", got)
	}
	if got := tl.earliestSlot(0, 6); got != 15 {
		t.Errorf("oversized gap request = %v, want 15", got)
	}
	if got := tl.earliestSlot(12, 2); got != 15 {
		t.Errorf("ready inside busy = %v, want 15", got)
	}
}

func TestPEFTOCTExitRowZero(t *testing.T) {
	e := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	g := workload.MustSuite(workload.Type1, 7)[0]
	c := e.costs(t, g)
	pf := NewPEFT()
	if err := pf.Prepare(c); err != nil {
		t.Fatal(err)
	}
	for _, exit := range g.Exits() {
		for p := range pf.OCT[exit] {
			if pf.OCT[exit][p] != 0 {
				t.Errorf("OCT[exit %d][%d] = %v, want 0", exit, p, pf.OCT[exit][p])
			}
		}
	}
	// rank_oct of non-exit kernels must be positive.
	for _, entry := range g.Entries() {
		if len(g.Succs(entry)) > 0 && pf.RankOCT[entry] <= 0 {
			t.Errorf("rank_oct(entry %d) = %v, want > 0", entry, pf.RankOCT[entry])
		}
	}
}

func TestAllPoliciesProduceValidSchedules(t *testing.T) {
	e := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	for _, typ := range []workload.GraphType{workload.Type1, workload.Type2} {
		graphs := workload.MustSuite(typ, workload.DefaultSuiteSeed)[:3]
		for gi, g := range graphs {
			pols := []sim.Policy{NewMET(1), NewSPN(), NewSS(), NewAG(), NewHEFT(), NewPEFT()}
			for _, pol := range pols {
				res, err := sim.Run(e.costs(t, g), pol, sim.Options{})
				if err != nil {
					t.Fatalf("%v graph %d %s: %v", typ, gi, pol.Name(), err)
				}
				if err := res.Validate(g, e.sys); err != nil {
					t.Errorf("%v graph %d %s invalid: %v", typ, gi, pol.Name(), err)
				}
				if res.Assignments != g.NumKernels() {
					t.Errorf("%v graph %d %s assigned %d of %d kernels",
						typ, gi, pol.Name(), res.Assignments, g.NumKernels())
				}
			}
		}
	}
}

// The paper's qualitative ordering on heterogeneous workloads: MET, HEFT
// and PEFT should decisively beat AG (which optimises waiting, not
// computation) on the paper system.
func TestPolicyQualityOrdering(t *testing.T) {
	e := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	g := workload.MustSuite(workload.Type1, workload.DefaultSuiteSeed)[1]
	mk := func(pol sim.Policy) float64 {
		res, err := sim.Run(e.costs(t, g), pol, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanMs
	}
	met := mk(NewMET(1))
	heft := mk(NewHEFT())
	peft := mk(NewPEFT())
	ag := mk(NewAG())
	for name, v := range map[string]float64{"MET": met, "HEFT": heft, "PEFT": peft} {
		if v >= ag {
			t.Errorf("%s makespan %v not better than AG %v", name, v, ag)
		}
	}
	if math.IsNaN(met + heft + peft + ag) {
		t.Error("NaN makespan")
	}
}

package policy

import (
	"math/rand"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// OLB implements opportunistic load balancing, one of the eleven heuristics
// of Braun et al. that the thesis discusses alongside MET (§2.1): each
// ready kernel is assigned to the next available processor, in kernel
// arrival order, **without considering execution times at all**. The
// thesis dismisses OLB for exactly that reason ("OLB does not consider the
// execution time of each task on the given hardware platform before making
// assignments"); it is provided as the natural lower baseline for the
// comparison tables.
type OLB struct {
	ready []dfg.KernelID
	procs []platform.ProcID
	out   []sim.Assignment
}

// NewOLB returns an OLB policy.
func NewOLB() *OLB { return &OLB{} }

// Name implements sim.Policy.
func (*OLB) Name() string { return "OLB" }

// Prepare implements sim.Policy.
func (*OLB) Prepare(*sim.Costs) error { return nil }

// Select implements sim.Policy: pair ready kernels with available
// processors first-come-first-serve.
func (o *OLB) Select(st *sim.State) []sim.Assignment {
	o.procs = st.AppendAvailableProcs(o.procs[:0])
	o.ready = st.AppendReady(o.ready[:0])
	procs := o.procs
	out := o.out[:0]
	for _, k := range o.ready {
		if len(procs) == 0 {
			break
		}
		out = append(out, sim.Assignment{Kernel: k, Proc: procs[0]})
		procs = procs[1:]
	}
	o.out = out
	return out
}

// AR implements the Adaptive Random companion policy of AG (Wu et al.,
// cited in §2.5.2: "the Adaptive Random policy uses random weights and
// probabilities to assign kernels"). Each ready kernel is assigned
// immediately to a processor drawn with probability inversely proportional
// to the kernel's execution time there, so fast processors are likelier —
// but not certain — to be chosen. The weights adapt per kernel.
type AR struct {
	// Seed fixes the random draws.
	Seed int64

	c   *sim.Costs
	rng *rand.Rand

	ready   []dfg.KernelID
	weights []float64
	out     []sim.Assignment
}

// NewAR returns an AR policy with the given seed.
func NewAR(seed int64) *AR { return &AR{Seed: seed} }

// Name implements sim.Policy.
func (a *AR) Name() string { return "AR" }

// Prepare implements sim.Policy.
func (a *AR) Prepare(c *sim.Costs) error {
	a.c = c
	a.rng = rand.New(rand.NewSource(a.Seed))
	return nil
}

// Select implements sim.Policy.
func (a *AR) Select(st *sim.State) []sim.Assignment {
	np := st.System().NumProcs()
	if cap(a.weights) < np {
		a.weights = make([]float64, np)
	}
	a.ready = st.AppendReady(a.ready[:0])
	out := a.out[:0]
	for _, k := range a.ready {
		weights := a.weights[:np]
		var total float64
		for p := 0; p < np; p++ {
			w := 1 / a.c.Exec(k, platform.ProcID(p))
			weights[p] = w
			total += w
		}
		x := a.rng.Float64() * total
		chosen := np - 1
		for p := 0; p < np; p++ {
			if x < weights[p] {
				chosen = p
				break
			}
			x -= weights[p]
		}
		out = append(out, sim.Assignment{Kernel: k, Proc: platform.ProcID(chosen)})
	}
	a.out = out
	return out
}

package policy

import (
	"fmt"

	"repro/internal/sim"
)

// Replay re-executes a previously recorded schedule's placement decisions:
// each kernel goes to the processor it ran on before, in the recorded
// per-processor order, while the engine recomputes all timing. This
// enables what-if analysis — replay an APT schedule at a different link
// rate, element size, or against perturbed actual costs — isolating the
// effect of the environment from the effect of the decisions.
type Replay struct {
	// Source is the recorded run to replay.
	Source *sim.Result

	plan staticPlan
}

// NewReplay returns a policy replaying the placements of a finished run.
func NewReplay(source *sim.Result) *Replay { return &Replay{Source: source} }

// Name implements sim.Policy.
func (rp *Replay) Name() string {
	if rp.Source != nil && rp.Source.Policy != "" {
		return "Replay(" + rp.Source.Policy + ")"
	}
	return "Replay"
}

// Prepare implements sim.Policy.
func (rp *Replay) Prepare(c *sim.Costs) error {
	if rp.Source == nil {
		return fmt.Errorf("policy: Replay requires a source result")
	}
	n := c.Graph().NumKernels()
	if len(rp.Source.Placements) != n {
		return fmt.Errorf("policy: replay source has %d placements for %d kernels",
			len(rp.Source.Placements), n)
	}
	np := c.System().NumProcs()
	tasks := make([]plannedTask, 0, n)
	for _, pl := range rp.Source.Placements {
		if int(pl.Proc) < 0 || int(pl.Proc) >= np {
			return fmt.Errorf("policy: replay source places kernel %d on unknown processor %d",
				pl.Kernel, pl.Proc)
		}
		tasks = append(tasks, plannedTask{
			kernel: pl.Kernel,
			proc:   pl.Proc,
			// Recorded start times define the per-processor replay order.
			start:  pl.TransferStart,
			finish: pl.Finish,
		})
	}
	rp.plan.set(tasks)
	return nil
}

// Select implements sim.Policy.
func (rp *Replay) Select(*sim.State) []sim.Assignment { return rp.plan.release() }

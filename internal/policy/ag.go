package policy

import (
	"math"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// AG implements the adaptive greedy policy of Wu et al. (paper §2.5.3,
// Eq. 1–2), generalised from their CPU+GPU system to arbitrary
// heterogeneous platforms as the thesis does. Every ready kernel is
// assigned immediately to the device g with the lowest estimated total
// waiting time
//
//	τ_g = τ_g^q + τ_g^d
//
// where the queueing delay τ_g^q = N_g · τ_g^k is the number of kernel
// calls queued on g times the average execution time of the last Window
// kernel calls completed on g (Eq. 2), and τ_g^d is the time to transfer
// the kernel's input data from its predecessors' processors to g.
//
// AG optimises waiting, not computation: it happily sends a kernel to a
// processor that is orders of magnitude slower if that processor's queue
// is short, which on highly heterogeneous systems produces very long
// makespans (the paper's Tables 8–10 show AG last by a wide margin).
type AG struct {
	// Window is the k of Eq. 2: how many recent completions to average for
	// the queueing-delay estimate. Defaults to 10 when zero.
	Window int

	c *sim.Costs

	ready   []dfg.KernelID
	extraMs []float64
	out     []sim.Assignment
}

// DefaultAGWindow is the recent-history window used when AG.Window is 0.
const DefaultAGWindow = 10

// NewAG returns an AG policy with the default window.
func NewAG() *AG { return &AG{} }

// Name implements sim.Policy.
func (a *AG) Name() string { return "AG" }

// Prepare implements sim.Policy.
func (a *AG) Prepare(c *sim.Costs) error {
	a.c = c
	if a.Window <= 0 {
		a.Window = DefaultAGWindow
	}
	return nil
}

// Select implements sim.Policy: every ready kernel is committed right away
// to the processor minimising estimated wait; queue growth from this very
// batch feeds back into later estimates via extraQueued.
func (a *AG) Select(st *sim.State) []sim.Assignment {
	np := st.System().NumProcs()
	if cap(a.extraMs) < np {
		a.extraMs = make([]float64, np)
	}
	extraMs := a.extraMs[:np]
	clear(extraMs)
	a.ready = st.AppendReady(a.ready[:0])
	out := a.out[:0]
	for _, k := range a.ready {
		bestP := platform.ProcID(-1)
		bestTau := math.Inf(1)
		for p := 0; p < np; p++ {
			pid := platform.ProcID(p)
			tau := a.waitEstimate(st, k, pid) + extraMs[p]
			if tau < bestTau {
				bestTau, bestP = tau, pid
			}
		}
		out = append(out, sim.Assignment{Kernel: k, Proc: bestP})
		extraMs[bestP] += a.execOrRecent(st, k, bestP)
	}
	a.out = out
	return out
}

// waitEstimate computes τ_g for kernel k on processor p per Eq. 1–2.
func (a *AG) waitEstimate(st *sim.State, k dfg.KernelID, p platform.ProcID) float64 {
	// N_g: kernel calls pending on p — its queue plus the running slot.
	ng := st.QueueLen(p)
	if !st.Available(p) {
		ng++
	}
	tauK := st.RecentExecAvg(p, a.Window)
	if tauK == 0 {
		// Bootstrapping deviation (documented): before any completion on p
		// there is no history to average, so use the candidate kernel's own
		// estimated execution time on p instead of zero, which would make
		// all processors look instantly free.
		tauK = a.c.Exec(k, p)
	}
	tauQ := float64(ng) * tauK
	tauD := a.c.TransferIn(k, p, func(pred dfg.KernelID) platform.ProcID {
		if pp, ok := st.ProcOf(pred); ok {
			return pp
		}
		return p // unplaced predecessor: no transfer charged
	})
	return tauQ + tauD
}

func (a *AG) execOrRecent(st *sim.State, k dfg.KernelID, p platform.ProcID) float64 {
	if avg := st.RecentExecAvg(p, a.Window); avg > 0 {
		return avg
	}
	return a.c.Exec(k, p)
}

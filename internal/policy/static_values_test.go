package policy

import (
	"math"
	"testing"

	"repro/internal/dfg"
)

// Hand-computed rank verification on the two-kernel chain a -> b with the
// tiny table (a: CPU 10 / GPU 2 / FPGA 50; b: CPU 4 / GPU 8 / FPGA 1),
// 4 GB/s links, 4 bytes/element, 1000-element output:
//
//	transfer(a->b across procs) = 1000·4 B / 4e6 B/ms = 0.001 ms
//	c̄(a) = 6 ordered distinct pairs · 0.001 / 9 = 0.0006667 ms
//	w̄(a) = 62/3, w̄(b) = 13/3
//	rank_u(b) = 13/3
//	rank_u(a) = 62/3 + c̄ + 13/3 = 25 + 0.0006667
func TestHEFTRankUHandComputed(t *testing.T) {
	e := newEnv(t)
	b := dfg.NewBuilder()
	ka := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	kb := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(ka, kb)
	g := b.MustBuild()
	c := e.costs(t, g)
	h := NewHEFT()
	if err := h.Prepare(c); err != nil {
		t.Fatal(err)
	}
	cbar := 6.0 * 0.001 / 9.0
	wantB := 13.0 / 3
	wantA := 62.0/3 + cbar + wantB
	if math.Abs(h.RankU[kb]-wantB) > 1e-9 {
		t.Errorf("rank_u(b) = %v, want %v", h.RankU[kb], wantB)
	}
	if math.Abs(h.RankU[ka]-wantA) > 1e-9 {
		t.Errorf("rank_u(a) = %v, want %v", h.RankU[ka], wantA)
	}
}

// Hand-computed OCT on the same chain (Eq. 6):
//
//	OCT(b, p) = 0 for every p (exit task)
//	OCT(a, pk) = min over pw of (w(b,pw) + c̄ if pw != pk)
//	  OCT(a, CPU)  = min(4, 8+c̄, 1+c̄) = 1 + c̄
//	  OCT(a, GPU)  = min(4+c̄, 8, 1+c̄) = 1 + c̄
//	  OCT(a, FPGA) = min(4+c̄, 8+c̄, 1) = 1
//	rank_oct(a) = (2·(1+c̄) + 1)/3
func TestPEFTOCTHandComputed(t *testing.T) {
	e := newEnv(t)
	b := dfg.NewBuilder()
	ka := b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	kb := b.AddKernel(dfg.Kernel{Name: "b", DataElems: 1000})
	b.AddEdge(ka, kb)
	g := b.MustBuild()
	c := e.costs(t, g)
	pf := NewPEFT()
	if err := pf.Prepare(c); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if pf.OCT[kb][p] != 0 {
			t.Errorf("OCT(b,%d) = %v, want 0", p, pf.OCT[kb][p])
		}
	}
	cbar := 6.0 * 0.001 / 9.0
	want := []float64{1 + cbar, 1 + cbar, 1} // CPU, GPU, FPGA
	for p, w := range want {
		if math.Abs(pf.OCT[ka][p]-w) > 1e-9 {
			t.Errorf("OCT(a,%d) = %v, want %v", p, pf.OCT[ka][p], w)
		}
	}
	wantRank := (2*(1+cbar) + 1) / 3
	if math.Abs(pf.RankOCT[ka]-wantRank) > 1e-9 {
		t.Errorf("rank_oct(a) = %v, want %v", pf.RankOCT[ka], wantRank)
	}
}

// The thesis-flavoured HEFT booking rule, traced by hand on three
// independent "a" kernels (CPU 10, GPU 2, FPGA 50):
//
//	k0: booked (0,0,0)   -> min(10, 2, 50)       -> GPU  (booked 2)
//	k1: booked (0,2,0)   -> min(10, 4, 50)       -> GPU  (booked 4)
//	k2: booked (0,4,0)   -> min(10, 6, 50)       -> GPU  (booked 6)
//
// so everything piles on the GPU for a 6 ms plan.
func TestHEFTThesisRuleHandTraced(t *testing.T) {
	e := newEnv(t)
	b := dfg.NewBuilder()
	for i := 0; i < 3; i++ {
		b.AddKernel(dfg.Kernel{Name: "a", DataElems: 1000})
	}
	g := b.MustBuild()
	res := e.run(t, g, NewHEFT())
	if res.MakespanMs != 6 {
		t.Errorf("makespan = %v, want 6", res.MakespanMs)
	}
	for i := range res.Placements {
		if e.sys.KindOf(res.Placements[i].Proc) != "GPU" {
			t.Errorf("kernel %d not on GPU", i)
		}
	}
	// The textbook variant makes the same choice here (EFT also favours
	// stacking a 2ms GPU queue over a 10ms CPU run until the queue passes
	// 8ms), so both flavors agree on this workload.
	tb := e.run(t, g, &HEFT{Textbook: true})
	if tb.MakespanMs != 6 {
		t.Errorf("textbook makespan = %v, want 6", tb.MakespanMs)
	}
}

package policy

import (
	"repro/internal/dfg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SS implements the priority-rule-based serial scheduling policy of Liu &
// Yang (paper §2.5.3): for every ready kernel it computes the standard
// deviation of its compute times across the currently available
// processors, picks the kernel with the highest standard deviation (the
// one for which the choice of processor matters most right now), and
// assigns it to the available processor with the lowest execution time.
// Assignments continue while both kernels and processors remain; like SPN,
// SS will settle for a slow processor rather than wait for the best one.
type SS struct {
	c *sim.Costs
}

// NewSS returns an SS policy.
func NewSS() *SS { return &SS{} }

// Name implements sim.Policy.
func (s *SS) Name() string { return "SS" }

// Prepare implements sim.Policy.
func (s *SS) Prepare(c *sim.Costs) error {
	s.c = c
	return nil
}

// Select implements sim.Policy.
func (s *SS) Select(st *sim.State) []sim.Assignment {
	ready := st.Ready()
	avail := newAvailSet(st)
	taken := map[dfg.KernelID]bool{}
	var out []sim.Assignment
	for !avail.empty() {
		procs := avail.procs()
		if len(procs) == 0 {
			break
		}
		bestK := dfg.KernelID(-1)
		bestSD := -1.0
		for _, k := range ready {
			if taken[k] {
				continue
			}
			times := make([]float64, len(procs))
			for i, p := range procs {
				times[i] = s.c.Exec(k, p)
			}
			if sd := stats.StdDev(times); sd > bestSD {
				bestSD, bestK = sd, k
			}
		}
		if bestK < 0 {
			break
		}
		p, _ := avail.bestAvailable(s.c, bestK)
		taken[bestK] = true
		avail.take(p)
		out = append(out, sim.Assignment{Kernel: bestK, Proc: p})
	}
	return out
}

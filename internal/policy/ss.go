package policy

import (
	"repro/internal/dfg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SS implements the priority-rule-based serial scheduling policy of Liu &
// Yang (paper §2.5.3): for every ready kernel it computes the standard
// deviation of its compute times across the currently available
// processors, picks the kernel with the highest standard deviation (the
// one for which the choice of processor matters most right now), and
// assigns it to the available processor with the lowest execution time.
// Assignments continue while both kernels and processors remain; like SPN,
// SS will settle for a slow processor rather than wait for the best one.
type SS struct {
	c *sim.Costs

	ready []dfg.KernelID
	avail availSet
	taken []bool // indexed by kernel ID; cleared per Select for ready kernels
	times []float64
	out   []sim.Assignment
}

// NewSS returns an SS policy.
func NewSS() *SS { return &SS{} }

// Name implements sim.Policy.
func (s *SS) Name() string { return "SS" }

// Prepare implements sim.Policy.
func (s *SS) Prepare(c *sim.Costs) error {
	s.c = c
	s.taken = grow(s.taken, c.Graph().NumKernels())
	clear(s.taken)
	return nil
}

// Select implements sim.Policy.
func (s *SS) Select(st *sim.State) []sim.Assignment {
	s.ready = st.AppendReady(s.ready[:0])
	s.avail.reset(st)
	for _, k := range s.ready {
		s.taken[k] = false
	}
	out := s.out[:0]
	for !s.avail.empty() {
		procs := s.avail.procs()
		if len(procs) == 0 {
			break
		}
		bestK := dfg.KernelID(-1)
		bestSD := -1.0
		if cap(s.times) < len(procs) {
			s.times = make([]float64, len(procs))
		}
		times := s.times[:len(procs)]
		for _, k := range s.ready {
			if s.taken[k] {
				continue
			}
			for i, p := range procs {
				times[i] = s.c.Exec(k, p)
			}
			if sd := stats.StdDev(times); sd > bestSD {
				bestSD, bestK = sd, k
			}
		}
		if bestK < 0 {
			break
		}
		p, _ := s.avail.bestAvailable(s.c, bestK)
		s.taken[bestK] = true
		s.avail.take(p)
		out = append(out, sim.Assignment{Kernel: bestK, Proc: p})
	}
	s.out = out
	return out
}

package policy

import (
	"math"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// SPN implements shortest process next (Khokhar et al., paper §2.5.3): it
// repeatedly picks the ready kernel with the minimum execution time on any
// currently available processor and assigns it there, for as long as both a
// kernel and a processor remain — the system is never left idle while work
// exists. SPN ignores how much slower the chosen processor is than the
// kernel's true best one, disregarding the heterogeneity of the system.
type SPN struct {
	c *sim.Costs

	ready []dfg.KernelID
	avail availSet
	taken []bool // indexed by kernel ID; cleared per Select for ready kernels
	out   []sim.Assignment
}

// NewSPN returns an SPN policy.
func NewSPN() *SPN { return &SPN{} }

// Name implements sim.Policy.
func (s *SPN) Name() string { return "SPN" }

// Prepare implements sim.Policy.
func (s *SPN) Prepare(c *sim.Costs) error {
	s.c = c
	s.taken = grow(s.taken, c.Graph().NumKernels())
	clear(s.taken)
	return nil
}

// Select implements sim.Policy.
func (s *SPN) Select(st *sim.State) []sim.Assignment {
	s.ready = st.AppendReady(s.ready[:0])
	s.avail.reset(st)
	for _, k := range s.ready {
		s.taken[k] = false
	}
	out := s.out[:0]
	for !s.avail.empty() {
		bestK := dfg.KernelID(-1)
		bestP := platform.ProcID(-1)
		bestMs := math.Inf(1)
		for _, k := range s.ready {
			if s.taken[k] {
				continue
			}
			p, ms := s.avail.bestAvailable(s.c, k)
			if p >= 0 && ms < bestMs {
				bestK, bestP, bestMs = k, p, ms
			}
		}
		if bestK < 0 {
			break // no schedulable kernel left
		}
		s.taken[bestK] = true
		s.avail.take(bestP)
		out = append(out, sim.Assignment{Kernel: bestK, Proc: bestP})
	}
	s.out = out
	return out
}

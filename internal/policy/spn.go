package policy

import (
	"math"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// SPN implements shortest process next (Khokhar et al., paper §2.5.3): it
// repeatedly picks the ready kernel with the minimum execution time on any
// currently available processor and assigns it there, for as long as both a
// kernel and a processor remain — the system is never left idle while work
// exists. SPN ignores how much slower the chosen processor is than the
// kernel's true best one, disregarding the heterogeneity of the system.
type SPN struct {
	c *sim.Costs
}

// NewSPN returns an SPN policy.
func NewSPN() *SPN { return &SPN{} }

// Name implements sim.Policy.
func (s *SPN) Name() string { return "SPN" }

// Prepare implements sim.Policy.
func (s *SPN) Prepare(c *sim.Costs) error {
	s.c = c
	return nil
}

// Select implements sim.Policy.
func (s *SPN) Select(st *sim.State) []sim.Assignment {
	ready := st.Ready()
	avail := newAvailSet(st)
	taken := map[dfg.KernelID]bool{}
	var out []sim.Assignment
	for !avail.empty() {
		bestK := dfg.KernelID(-1)
		bestP := platform.ProcID(-1)
		bestMs := math.Inf(1)
		for _, k := range ready {
			if taken[k] {
				continue
			}
			p, ms := avail.bestAvailable(s.c, k)
			if p >= 0 && ms < bestMs {
				bestK, bestP, bestMs = k, p, ms
			}
		}
		if bestK < 0 {
			break // no schedulable kernel left
		}
		taken[bestK] = true
		avail.take(bestP)
		out = append(out, sim.Assignment{Kernel: bestK, Proc: bestP})
	}
	return out
}

// Package policy implements the six state-of-the-art scheduling policies
// the thesis analyses and compares APT against (paper §2.5.3, Table 2):
//
//   - MET  — minimum execution time / best-only (Braun et al.), dynamic
//   - SPN  — shortest process next (Khokhar et al.), dynamic
//   - SS   — serial scheduling by compute-time standard deviation
//     (Liu & Yang), dynamic
//   - AG   — adaptive greedy (Wu et al.), dynamic, queue+transfer aware
//   - HEFT — heterogeneous earliest finish time (Topcuoglu et al.), static
//   - PEFT — predict earliest finish time (Arabnejad & Barbosa), static
//
// All policies implement sim.Policy. Dynamic policies inspect only the
// ready set and the live system state; static policies compute a complete
// schedule in Prepare from the full DFG and release it at time zero.
//
// Dynamic policies keep scratch buffers (ready list, availability set,
// assignment batch) on the policy struct and refill them per Select via the
// engine's append-style accessors, so steady-state scheduling does not
// allocate. A policy instance therefore serves one simulation at a time.
package policy

import (
	"math"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// availSet tracks processor availability while a policy builds one batch of
// assignments within a single Select call: a processor consumed by an
// assignment in this batch is no longer available to later kernels. The
// set's buffers are reused across Select calls via reset.
type availSet struct {
	avail []bool            // indexed by ProcID
	ids   []platform.ProcID // scratch for procs()
	n     int
}

// reset refills the set with the currently available processors.
func (s *availSet) reset(st *sim.State) {
	np := st.System().NumProcs()
	if cap(s.avail) < np {
		s.avail = make([]bool, np)
	}
	s.avail = s.avail[:np]
	clear(s.avail)
	s.ids = st.AppendAvailableProcs(s.ids[:0])
	for _, p := range s.ids {
		s.avail[p] = true
	}
	s.n = len(s.ids)
}

func (s *availSet) has(p platform.ProcID) bool { return s.avail[p] }
func (s *availSet) empty() bool                { return s.n == 0 }

func (s *availSet) take(p platform.ProcID) {
	if s.avail[p] {
		s.avail[p] = false
		s.n--
	}
}

// procs returns the currently available processors in ID order. The slice
// is valid until the next procs or reset call.
func (s *availSet) procs() []platform.ProcID {
	s.ids = s.ids[:0]
	for p, ok := range s.avail {
		if ok {
			s.ids = append(s.ids, platform.ProcID(p))
		}
	}
	return s.ids
}

// bestAvailable returns the available processor with the minimum execution
// time for kernel k, or -1 if none is available. Ties break to lower ID.
func (s *availSet) bestAvailable(c *sim.Costs, k dfg.KernelID) (platform.ProcID, float64) {
	best := platform.ProcID(-1)
	bestMs := math.Inf(1)
	for p, ok := range s.avail {
		if !ok {
			continue
		}
		if ms := c.Exec(k, platform.ProcID(p)); ms < bestMs {
			best, bestMs = platform.ProcID(p), ms
		}
	}
	return best, bestMs
}

// Package policy implements the six state-of-the-art scheduling policies
// the thesis analyses and compares APT against (paper §2.5.3, Table 2):
//
//   - MET  — minimum execution time / best-only (Braun et al.), dynamic
//   - SPN  — shortest process next (Khokhar et al.), dynamic
//   - SS   — serial scheduling by compute-time standard deviation
//     (Liu & Yang), dynamic
//   - AG   — adaptive greedy (Wu et al.), dynamic, queue+transfer aware
//   - HEFT — heterogeneous earliest finish time (Topcuoglu et al.), static
//   - PEFT — predict earliest finish time (Arabnejad & Barbosa), static
//
// All policies implement sim.Policy. Dynamic policies inspect only the
// ready set and the live system state; static policies compute a complete
// schedule in Prepare from the full DFG and release it at time zero.
package policy

import (
	"math"
	"sort"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// availSet tracks processor availability while a policy builds one batch of
// assignments within a single Select call: a processor consumed by an
// assignment in this batch is no longer available to later kernels.
type availSet struct {
	avail map[platform.ProcID]bool
	n     int
}

func newAvailSet(st *sim.State) *availSet {
	s := &availSet{avail: map[platform.ProcID]bool{}}
	for _, p := range st.AvailableProcs() {
		s.avail[p] = true
		s.n++
	}
	return s
}

func (s *availSet) has(p platform.ProcID) bool { return s.avail[p] }
func (s *availSet) empty() bool                { return s.n == 0 }

func (s *availSet) take(p platform.ProcID) {
	if s.avail[p] {
		s.avail[p] = false
		s.n--
	}
}

// procs returns the currently available processors in ID order.
func (s *availSet) procs() []platform.ProcID {
	out := make([]platform.ProcID, 0, s.n)
	for p, ok := range s.avail {
		if ok {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bestAvailable returns the available processor with the minimum execution
// time for kernel k, or -1 if none is available. Ties break to lower ID.
func (s *availSet) bestAvailable(c *sim.Costs, k dfg.KernelID) (platform.ProcID, float64) {
	best := platform.ProcID(-1)
	bestMs := math.Inf(1)
	for _, p := range s.procs() {
		if ms := c.Exec(k, p); ms < bestMs {
			best, bestMs = p, ms
		}
	}
	return best, bestMs
}

package policy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestReplayReproducesIdenticalEnvironment(t *testing.T) {
	e := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	g := workload.MustSuite(workload.Type2, workload.DefaultSuiteSeed)[0]
	orig := e.run(t, g, core.New(4))
	replayed := e.run(t, g, NewReplay(orig))
	if math.Abs(replayed.MakespanMs-orig.MakespanMs) > 1e-6 {
		t.Errorf("replay makespan %v != original %v", replayed.MakespanMs, orig.MakespanMs)
	}
	for i := range orig.Placements {
		if replayed.Placements[i].Proc != orig.Placements[i].Proc {
			t.Fatalf("kernel %d replayed on %d, ran on %d",
				i, replayed.Placements[i].Proc, orig.Placements[i].Proc)
		}
	}
}

func TestReplayWhatIfFasterLinks(t *testing.T) {
	// Record at 4 GB/s, replay the same decisions at 8 GB/s: placements
	// identical, makespan must not get worse (transfers only shrink).
	slow := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	fast := testEnv{sys: platform.PaperSystem(8), tab: lut.Paper()}
	g := workload.MustSuite(workload.Type2, workload.DefaultSuiteSeed)[1]
	orig := slow.run(t, g, core.New(4))
	whatIf := fast.run(t, g, NewReplay(orig))
	if whatIf.MakespanMs > orig.MakespanMs+1e-6 {
		t.Errorf("faster links made the replay slower: %v vs %v", whatIf.MakespanMs, orig.MakespanMs)
	}
	for i := range orig.Placements {
		if whatIf.Placements[i].Proc != orig.Placements[i].Proc {
			t.Fatalf("what-if changed placement of kernel %d", i)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	e := testEnv{sys: platform.PaperSystem(4), tab: lut.Paper()}
	g := workload.MustSuite(workload.Type1, workload.DefaultSuiteSeed)[0]
	c := e.costs(t, g)
	if err := NewReplay(nil).Prepare(c); err == nil {
		t.Error("nil source accepted")
	}
	other := workload.MustSuite(workload.Type1, workload.DefaultSuiteSeed)[1]
	res := e.run(t, other, NewMET(1))
	if err := NewReplay(res).Prepare(c); err == nil {
		t.Error("mismatched kernel count accepted")
	}
}

func TestReplayName(t *testing.T) {
	if got := NewReplay(nil).Name(); got != "Replay" {
		t.Errorf("Name = %q", got)
	}
	if got := NewReplay(&sim.Result{Policy: "APT"}).Name(); got != "Replay(APT)" {
		t.Errorf("Name = %q", got)
	}
}

package policy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// prepMemo remembers the cost oracle a policy instance last fully prepared
// for. Static policies key their Prepare memoisation on it: a Costs is
// immutable and Prepare is a pure function of it, so re-running the same
// policy instance against the same *Costs can reuse the previous plan (OCT
// tables, ranks, planned schedule) and only re-arm the per-run release
// state. Batch sweeps over one graph hit this path thousands of times.
type prepMemo struct{ c *sim.Costs }

// hit reports whether c matches the memoised oracle. Policies call
// remember only after a successful full Prepare, so a failed Prepare can
// never poison the memo (a later retry re-runs in full).
func (m *prepMemo) hit(c *sim.Costs) bool { return m.c == c }

// remember records the oracle the instance is now fully prepared for.
// Call forget at the start of a full re-Prepare so errors leave the memo
// empty.
func (m *prepMemo) remember(c *sim.Costs) { m.c = c }

// forget clears the memo.
func (m *prepMemo) forget() { m.c = nil }

// timeline is one processor's planned occupancy during static list
// scheduling, supporting the insertion-based slot search HEFT and PEFT use:
// a task may be planned into an idle gap between two already-planned tasks
// if the gap is long enough. With noInsertion set, tasks only ever append
// after the last planned task (the "non-insertion" variant common in
// reimplementations; exposed for ablation).
type timeline struct {
	// intervals are kept sorted by start; they never overlap.
	starts, ends []float64
	noInsertion  bool
}

// earliestSlot returns the earliest start >= ready that fits dur.
func (tl *timeline) earliestSlot(ready, dur float64) float64 {
	prevEnd := 0.0
	if tl.noInsertion {
		if n := len(tl.ends); n > 0 {
			prevEnd = tl.ends[n-1]
		}
		return math.Max(ready, prevEnd)
	}
	for i := range tl.starts {
		gapStart := math.Max(ready, prevEnd)
		if tl.starts[i]-gapStart >= dur {
			return gapStart
		}
		prevEnd = tl.ends[i]
	}
	return math.Max(ready, prevEnd)
}

// insert books [start, start+dur). Caller must have obtained start from
// earliestSlot with the same dur.
func (tl *timeline) insert(start, dur float64) {
	i := sort.SearchFloat64s(tl.starts, start)
	tl.starts = append(tl.starts, 0)
	tl.ends = append(tl.ends, 0)
	copy(tl.starts[i+1:], tl.starts[i:])
	copy(tl.ends[i+1:], tl.ends[i:])
	tl.starts[i] = start
	tl.ends[i] = start + dur
}

// plannedTask is one entry of a static schedule.
type plannedTask struct {
	kernel dfg.KernelID
	proc   platform.ProcID
	start  float64 // planned (estimated) start; actual times may differ
	finish float64
}

// schedScratch pools the working buffers of listSchedule and
// bookingSchedule on the owning policy struct, so a full re-Prepare (new
// cost oracle) reuses the previous prepare's allocations instead of
// re-growing them — Prepare stays allocation-lean across a sweep that
// cycles a policy instance over several graphs.
type schedScratch struct {
	est, eft []float64
	booked   []float64
	placed   []plannedTask // indexed by kernel ID (listSchedule)
	isPlaced []bool
	tls      []timeline
	tasks    []plannedTask
}

// grow returns s resized to n elements, reusing its backing array when
// possible. Contents are unspecified; callers must reinitialise.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// listSchedule runs insertion-based list scheduling: tasks are visited in
// the given priority order (which must be a linear extension of the
// dependency order, i.e. every task after its predecessors) and each is
// planned onto the processor chosen by pick, which receives the task and
// the earliest-finish-time candidate on every processor and returns the
// index of the processor to use.
//
// eft[p] already includes data-ready time: max over predecessors of
// (planned finish + transfer between the planned processors), with
// transfers between co-located tasks free. This matches HEFT's EFT phase
// with actual (not averaged) execution and link costs.
//
// The returned slice aliases sc's pooled buffer and is valid until the next
// schedule call with the same scratch.
func listSchedule(
	c *sim.Costs,
	sc *schedScratch,
	order []dfg.KernelID,
	noInsertion bool,
	pick func(k dfg.KernelID, est, eft []float64) int,
) ([]plannedTask, error) {
	g := c.Graph()
	n := g.NumKernels()
	np := c.System().NumProcs()
	sc.tls = grow(sc.tls, np)
	for i := range sc.tls {
		sc.tls[i].starts = sc.tls[i].starts[:0]
		sc.tls[i].ends = sc.tls[i].ends[:0]
		sc.tls[i].noInsertion = noInsertion
	}
	sc.placed = grow(sc.placed, n)
	sc.isPlaced = grow(sc.isPlaced, n)
	for i := range sc.isPlaced {
		sc.isPlaced[i] = false
	}
	sc.est = grow(sc.est, np)
	sc.eft = grow(sc.eft, np)
	est, eft := sc.est, sc.eft

	out := sc.tasks[:0]
	for _, k := range order {
		for p := 0; p < np; p++ {
			pid := platform.ProcID(p)
			ready := 0.0
			for _, pred := range g.Preds(k) {
				if !sc.isPlaced[pred] {
					return nil, fmt.Errorf("policy: order visits kernel %d before predecessor %d", k, pred)
				}
				pt := &sc.placed[pred]
				arrive := pt.finish + c.TransferMs(g.Kernel(pred).OutElems, pt.proc, pid)
				if arrive > ready {
					ready = arrive
				}
			}
			dur := c.Exec(k, pid)
			est[p] = sc.tls[p].earliestSlot(ready, dur)
			eft[p] = est[p] + dur
		}
		p := pick(k, est, eft)
		if p < 0 || p >= np {
			return nil, fmt.Errorf("policy: pick returned invalid processor %d for kernel %d", p, k)
		}
		dur := c.Exec(k, platform.ProcID(p))
		sc.tls[p].insert(est[p], dur)
		pt := plannedTask{kernel: k, proc: platform.ProcID(p), start: est[p], finish: est[p] + dur}
		sc.placed[k] = pt
		sc.isPlaced[k] = true
		out = append(out, pt)
	}
	sc.tasks = out
	return out, nil
}

// bookingSchedule runs the thesis's simplified static planning: tasks are
// visited in the given priority order (a linear extension of the
// dependency order) and each is booked onto the processor chosen by pick,
// which sees only how much work is already booked per processor. Planned
// starts ignore data-ready times — at execution the engine makes each
// processor wait for real dependencies, so the plan's per-processor
// *order* is what matters.
//
// The returned slice aliases sc's pooled buffer and is valid until the next
// schedule call with the same scratch.
func bookingSchedule(
	c *sim.Costs,
	sc *schedScratch,
	order []dfg.KernelID,
	pick func(k dfg.KernelID, booked []float64) int,
) []plannedTask {
	np := c.System().NumProcs()
	sc.booked = grow(sc.booked, np)
	booked := sc.booked
	for i := range booked {
		booked[i] = 0
	}
	out := sc.tasks[:0]
	if cap(out) < len(order) {
		out = make([]plannedTask, 0, len(order))
	}
	for _, k := range order {
		p := pick(k, booked)
		dur := c.Exec(k, platform.ProcID(p))
		out = append(out, plannedTask{
			kernel: k,
			proc:   platform.ProcID(p),
			start:  booked[p],
			finish: booked[p] + dur,
		})
		booked[p] += dur
	}
	sc.tasks = out
	return out
}

// staticPlan replays a precomputed schedule through the dynamic engine: at
// the first Select call it commits every kernel to its planned processor,
// ordered by planned start time, so each processor's FIFO queue reproduces
// the planned per-processor execution order. (Actual times can deviate
// from planned ones — the plan's transfer estimates assume transfers do
// not occupy the processor, while the simulated system charges them to it
// — but the planned order is what defines HEFT/PEFT.)
type staticPlan struct {
	tasks    []plannedTask
	out      []sim.Assignment
	released bool
}

func (sp *staticPlan) set(tasks []plannedTask) {
	sp.tasks = append(sp.tasks[:0], tasks...)
	sort.SliceStable(sp.tasks, func(i, j int) bool { return sp.tasks[i].start < sp.tasks[j].start })
	sp.released = false
}

// rearm resets the one-shot release for another run of the same plan.
func (sp *staticPlan) rearm() { sp.released = false }

func (sp *staticPlan) release() []sim.Assignment {
	if sp.released {
		return nil
	}
	sp.released = true
	out := sp.out[:0]
	if cap(out) < len(sp.tasks) {
		out = make([]sim.Assignment, 0, len(sp.tasks))
	}
	for _, t := range sp.tasks {
		out = append(out, sim.Assignment{Kernel: t.kernel, Proc: t.proc})
	}
	sp.out = out
	return out
}

// PlannedMakespan returns the estimated makespan of a planned schedule.
func plannedMakespan(tasks []plannedTask) float64 {
	var m float64
	for _, t := range tasks {
		if t.finish > m {
			m = t.finish
		}
	}
	return m
}

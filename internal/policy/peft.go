package policy

import (
	"math"

	"repro/internal/dfg"
	"repro/internal/heaps"
	"repro/internal/sim"
)

// PEFT implements the predict earliest finish time policy of Arabnejad &
// Barbosa (paper §2.5.3, Eq. 6–7): a static list scheduler driven by an
// optimistic cost table (OCT). OCT(tᵢ, pₖ) is the longest optimistic path
// from tᵢ's children to the exit assuming tᵢ runs on pₖ, computed backwards
// over the DAG (Eq. 6). Tasks are visited by decreasing rank_oct — the mean
// of their OCT row (Eq. 7) — restricted to tasks whose predecessors are
// already scheduled, and each is placed on the processor minimising the
// optimistic EFT:
//
//	OEFT(tᵢ, pₖ) = EFT(tᵢ, pₖ) + OCT(tᵢ, pₖ)
//
// which looks one optimistic step ahead instead of committing to the
// locally earliest finish as HEFT does.
//
// As with HEFT, the thesis evaluates a simplified selection rule — "the
// assignments are made to the processor from A with the least sum of value
// from the cost table and execution time of the kernel on that processor",
// i.e. argmin over p of OCT(t, p) + w(t, p), with no queue-state or
// data-ready term — and that flavor is the default here. Set Textbook for
// Arabnejad & Barbosa's full OEFT = EFT + OCT selection with insertion.
type PEFT struct {
	// Textbook selects the original OEFT (insertion-based EFT + OCT)
	// processor selection instead of the thesis's simplified rule.
	Textbook bool
	// NoInsertion disables the insertion slot search within the textbook
	// variant. Ignored unless Textbook is set.
	NoInsertion bool

	plan    staticPlan
	memo    prepMemo
	scratch schedScratch
	octFlat []float64
	order   []dfg.KernelID
	indeg   []int32
	visit   []dfg.KernelID
	heapKs  []dfg.KernelID

	// OCT, exposed after Prepare, is the optimistic cost table
	// [kernel][processor]. Rows alias one flat backing array.
	OCT [][]float64
	// RankOCT is the per-kernel mean OCT row.
	RankOCT []float64
	// PlannedMakespanMs is the plan's estimated makespan.
	PlannedMakespanMs float64
}

// NewPEFT returns a PEFT policy.
func NewPEFT() *PEFT { return &PEFT{} }

// Name implements sim.Policy.
func (pf *PEFT) Name() string { return "PEFT" }

// Prepare implements sim.Policy. Prepare is a pure function of the cost
// oracle, so preparing the same instance for the same *Costs again only
// re-arms the cached plan (OCT table, ranks and schedule are reused).
func (pf *PEFT) Prepare(c *sim.Costs) error {
	if pf.memo.hit(c) {
		pf.plan.rearm()
		return nil
	}
	pf.memo.forget()
	g := c.Graph()
	n := g.NumKernels()
	np := c.System().NumProcs()

	// OCT per Eq. 6, computed in reverse topological order. For exit tasks
	// every entry is zero. Rows slice one flat backing array so the table
	// is cache-contiguous and costs two allocations, not n+1.
	pf.octFlat = grow(pf.octFlat, n*np)
	for i := range pf.octFlat {
		pf.octFlat[i] = 0
	}
	if cap(pf.OCT) >= n {
		pf.OCT = pf.OCT[:n]
	} else {
		pf.OCT = make([][]float64, n)
	}
	for i := range pf.OCT {
		pf.OCT[i] = pf.octFlat[i*np : (i+1)*np : (i+1)*np]
	}
	order := g.AppendTopoOrder(pf.order[:0])
	pf.order = order
	for i := n - 1; i >= 0; i-- {
		ti := order[i]
		cMean := c.MeanTransfer(ti)
		octRow := pf.OCT[ti]
		for pk := 0; pk < np; pk++ {
			best := 0.0
			for _, tj := range g.Succs(ti) {
				inner := math.Inf(1)
				succOCT := pf.OCT[tj]
				succExec := c.ExecRow(tj)
				for pw := 0; pw < np; pw++ {
					v := succOCT[pw] + succExec[pw]
					if pw != pk {
						v += cMean
					}
					if v < inner {
						inner = v
					}
				}
				if inner > best {
					best = inner
				}
			}
			octRow[pk] = best
		}
	}

	// rank_oct per Eq. 7.
	pf.RankOCT = grow(pf.RankOCT, n)
	for i := 0; i < n; i++ {
		var sum float64
		for pk := 0; pk < np; pk++ {
			sum += pf.OCT[i][pk]
		}
		pf.RankOCT[i] = sum / float64(np)
	}

	// Visit order: repeatedly take the highest-rank_oct task among those
	// whose predecessors are all scheduled (PEFT's ready list). rank_oct is
	// not monotone along edges, so unlike HEFT a global sort could violate
	// precedence; the ready-list loop cannot.
	visit := pf.visitOrder(g)

	var tasks []plannedTask
	var err error
	if pf.Textbook {
		tasks, err = listSchedule(c, &pf.scratch, visit, pf.NoInsertion, func(k dfg.KernelID, est, eft []float64) int {
			best := 0
			bestV := math.Inf(1)
			for p := 0; p < np; p++ {
				if v := eft[p] + pf.OCT[k][p]; v < bestV {
					bestV, best = v, p
				}
			}
			return best
		})
		if err != nil {
			return err
		}
	} else {
		tasks = bookingSchedule(c, &pf.scratch, visit, func(k dfg.KernelID, booked []float64) int {
			// Thesis rule: least (cost-table value + execution time).
			best := 0
			bestV := math.Inf(1)
			octRow := pf.OCT[k]
			execRow := c.ExecRow(k)
			for p := 0; p < np; p++ {
				if v := octRow[p] + execRow[p]; v < bestV {
					bestV, best = v, p
				}
			}
			return best
		})
	}
	pf.PlannedMakespanMs = plannedMakespan(tasks)
	pf.plan.set(tasks)
	pf.memo.remember(c)
	return nil
}

// visitOrder returns kernels by decreasing rank_oct constrained to
// precedence order: Kahn's algorithm with a binary max-heap frontier keyed
// by rank_oct (ties to lower ID), O(E log V) with pooled buffers.
func (pf *PEFT) visitOrder(g *dfg.Graph) []dfg.KernelID {
	n := g.NumKernels()
	rank := pf.RankOCT
	pf.indeg = grow(pf.indeg, n)
	indeg := pf.indeg
	heap := pf.heapKs[:0]
	// higher orders a before b in the frontier: larger rank first, ties to
	// the lower kernel ID.
	higher := func(a, b dfg.KernelID) bool {
		// Three-way rank comparison (no float equality): exact rank ties
		// fall through to the kernel-ID tie-break.
		if rank[a] > rank[b] {
			return true
		}
		if rank[a] < rank[b] {
			return false
		}
		return a < b
	}
	for i := 0; i < n; i++ {
		indeg[i] = int32(g.InDegree(dfg.KernelID(i)))
		if indeg[i] == 0 {
			heap = append(heap, dfg.KernelID(i))
			heaps.Up(heap, len(heap)-1, higher)
		}
	}
	out := pf.visit[:0]
	if cap(out) < n {
		out = make([]dfg.KernelID, 0, n)
	}
	for len(heap) > 0 {
		k := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		heaps.Down(heap, 0, higher)
		out = append(out, k)
		for _, s := range g.Succs(k) {
			indeg[s]--
			if indeg[s] == 0 {
				heap = append(heap, s)
				heaps.Up(heap, len(heap)-1, higher)
			}
		}
	}
	pf.heapKs = heap
	pf.visit = out
	return out
}

// Select implements sim.Policy.
func (pf *PEFT) Select(*sim.State) []sim.Assignment { return pf.plan.release() }

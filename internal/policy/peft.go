package policy

import (
	"container/heap"
	"math"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// PEFT implements the predict earliest finish time policy of Arabnejad &
// Barbosa (paper §2.5.3, Eq. 6–7): a static list scheduler driven by an
// optimistic cost table (OCT). OCT(tᵢ, pₖ) is the longest optimistic path
// from tᵢ's children to the exit assuming tᵢ runs on pₖ, computed backwards
// over the DAG (Eq. 6). Tasks are visited by decreasing rank_oct — the mean
// of their OCT row (Eq. 7) — restricted to tasks whose predecessors are
// already scheduled, and each is placed on the processor minimising the
// optimistic EFT:
//
//	OEFT(tᵢ, pₖ) = EFT(tᵢ, pₖ) + OCT(tᵢ, pₖ)
//
// which looks one optimistic step ahead instead of committing to the
// locally earliest finish as HEFT does.
//
// As with HEFT, the thesis evaluates a simplified selection rule — "the
// assignments are made to the processor from A with the least sum of value
// from the cost table and execution time of the kernel on that processor",
// i.e. argmin over p of OCT(t, p) + w(t, p), with no queue-state or
// data-ready term — and that flavor is the default here. Set Textbook for
// Arabnejad & Barbosa's full OEFT = EFT + OCT selection with insertion.
type PEFT struct {
	// Textbook selects the original OEFT (insertion-based EFT + OCT)
	// processor selection instead of the thesis's simplified rule.
	Textbook bool
	// NoInsertion disables the insertion slot search within the textbook
	// variant. Ignored unless Textbook is set.
	NoInsertion bool

	plan staticPlan

	// OCT, exposed after Prepare, is the optimistic cost table
	// [kernel][processor].
	OCT [][]float64
	// RankOCT is the per-kernel mean OCT row.
	RankOCT []float64
	// PlannedMakespanMs is the plan's estimated makespan.
	PlannedMakespanMs float64
}

// NewPEFT returns a PEFT policy.
func NewPEFT() *PEFT { return &PEFT{} }

// Name implements sim.Policy.
func (pf *PEFT) Name() string { return "PEFT" }

// Prepare implements sim.Policy.
func (pf *PEFT) Prepare(c *sim.Costs) error {
	g := c.Graph()
	n := g.NumKernels()
	np := c.System().NumProcs()

	// OCT per Eq. 6, computed in reverse topological order. For exit tasks
	// every entry is zero.
	pf.OCT = make([][]float64, n)
	for i := range pf.OCT {
		pf.OCT[i] = make([]float64, np)
	}
	order := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		ti := order[i]
		cMean := c.MeanTransfer(ti)
		for pk := 0; pk < np; pk++ {
			best := 0.0
			for _, tj := range g.Succs(ti) {
				inner := math.Inf(1)
				for pw := 0; pw < np; pw++ {
					v := pf.OCT[tj][pw] + c.Exec(tj, platform.ProcID(pw))
					if pw != pk {
						v += cMean
					}
					if v < inner {
						inner = v
					}
				}
				if inner > best {
					best = inner
				}
			}
			pf.OCT[ti][pk] = best
		}
	}

	// rank_oct per Eq. 7.
	pf.RankOCT = make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for pk := 0; pk < np; pk++ {
			sum += pf.OCT[i][pk]
		}
		pf.RankOCT[i] = sum / float64(np)
	}

	// Visit order: repeatedly take the highest-rank_oct task among those
	// whose predecessors are all scheduled (PEFT's ready list). rank_oct is
	// not monotone along edges, so unlike HEFT a global sort could violate
	// precedence; the ready-list loop cannot.
	visit := pf.visitOrder(g)

	var tasks []plannedTask
	var err error
	if pf.Textbook {
		tasks, err = listSchedule(c, visit, pf.NoInsertion, func(k dfg.KernelID, est, eft []float64) int {
			best := 0
			bestV := math.Inf(1)
			for p := 0; p < np; p++ {
				if v := eft[p] + pf.OCT[k][p]; v < bestV {
					bestV, best = v, p
				}
			}
			return best
		})
		if err != nil {
			return err
		}
	} else {
		tasks = bookingSchedule(c, visit, func(k dfg.KernelID, booked []float64) int {
			// Thesis rule: least (cost-table value + execution time).
			best := 0
			bestV := math.Inf(1)
			for p := 0; p < np; p++ {
				if v := pf.OCT[k][p] + c.Exec(k, platform.ProcID(p)); v < bestV {
					bestV, best = v, p
				}
			}
			return best
		})
	}
	pf.PlannedMakespanMs = plannedMakespan(tasks)
	pf.plan.set(tasks)
	return nil
}

// visitOrder returns kernels by decreasing rank_oct constrained to
// precedence order.
func (pf *PEFT) visitOrder(g *dfg.Graph) []dfg.KernelID {
	n := g.NumKernels()
	indeg := make([]int, n)
	h := &rankHeap{rank: pf.RankOCT}
	for i := 0; i < n; i++ {
		indeg[i] = g.InDegree(dfg.KernelID(i))
		if indeg[i] == 0 {
			heap.Push(h, dfg.KernelID(i))
		}
	}
	out := make([]dfg.KernelID, 0, n)
	for h.Len() > 0 {
		k := heap.Pop(h).(dfg.KernelID)
		out = append(out, k)
		for _, s := range g.Succs(k) {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(h, s)
			}
		}
	}
	return out
}

// Select implements sim.Policy.
func (pf *PEFT) Select(*sim.State) []sim.Assignment { return pf.plan.release() }

// rankHeap pops the kernel with the highest rank, ties to lower ID.
type rankHeap struct {
	rank []float64
	ks   []dfg.KernelID
}

func (h *rankHeap) Len() int { return len(h.ks) }
func (h *rankHeap) Less(i, j int) bool {
	a, b := h.ks[i], h.ks[j]
	if h.rank[a] != h.rank[b] {
		return h.rank[a] > h.rank[b]
	}
	return a < b
}
func (h *rankHeap) Swap(i, j int)      { h.ks[i], h.ks[j] = h.ks[j], h.ks[i] }
func (h *rankHeap) Push(x interface{}) { h.ks = append(h.ks, x.(dfg.KernelID)) }
func (h *rankHeap) Pop() interface{} {
	n := len(h.ks)
	k := h.ks[n-1]
	h.ks = h.ks[:n-1]
	return k
}

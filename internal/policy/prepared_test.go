package policy_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// preparedCosts builds two distinct cost oracles over two generated graphs.
func preparedCosts(t *testing.T) (*sim.Costs, *sim.Costs) {
	t.Helper()
	sys := platform.PaperSystem(platform.GBps(4))
	var out []*sim.Costs
	for seed := int64(1); seed <= 2; seed++ {
		series, err := workload.ScaleSeries(300, seed)
		if err != nil {
			t.Fatal(err)
		}
		g, err := workload.BuildScaleLayered(series, workload.DefaultScaleLayeredConfig(),
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		c, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out[0], out[1]
}

// TestPreparedReuseMatchesFresh proves the prepared-policy fast path is
// invisible in results: re-running one policy instance over the same cost
// oracle (memoised Prepare), then over a different oracle (full
// re-Prepare), matches fresh instances run by a fresh engine every time.
func TestPreparedReuseMatchesFresh(t *testing.T) {
	c1, c2 := preparedCosts(t)
	makers := map[string]func() sim.Policy{
		"HEFT":          func() sim.Policy { return policy.NewHEFT() },
		"HEFT-textbook": func() sim.Policy { return &policy.HEFT{Textbook: true} },
		"PEFT":          func() sim.Policy { return policy.NewPEFT() },
		"PEFT-textbook": func() sim.Policy { return &policy.PEFT{Textbook: true} },
		"SPN":           func() sim.Policy { return policy.NewSPN() },
		"SS":            func() sim.Policy { return policy.NewSS() },
		"MET":           func() sim.Policy { return policy.NewMET(3) },
	}
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			reused := mk()
			r := sim.NewRunner()
			// Interleave oracles: same, same (memo hit), other (full
			// re-prepare), same again (re-prepare back).
			for i, c := range []*sim.Costs{c1, c1, c2, c1} {
				got, err := r.Run(c, reused, sim.Options{})
				if err != nil {
					t.Fatal(err)
				}
				want, err := sim.Run(c, mk(), sim.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if got.MakespanMs != want.MakespanMs {
					t.Fatalf("run %d: makespan %v != fresh %v", i, got.MakespanMs, want.MakespanMs)
				}
				if !reflect.DeepEqual(got.Placements, want.Placements) {
					t.Fatalf("run %d: placements differ from fresh instance", i)
				}
			}
		})
	}
}

// TestPreparedReuseSkipsRecompute pins the memoisation mechanics: a HEFT
// instance re-prepared for the same *Costs keeps its plan without
// recomputing ranks (same backing array), and a different *Costs forces a
// full recompute.
func TestPreparedReuseSkipsRecompute(t *testing.T) {
	c1, c2 := preparedCosts(t)
	h := policy.NewHEFT()
	if err := h.Prepare(c1); err != nil {
		t.Fatal(err)
	}
	rank1 := h.RankU
	first := h.PlannedMakespanMs
	// Poison the exported rank slice; a memo hit must not rewrite it.
	h.RankU[0] = -12345
	if err := h.Prepare(c1); err != nil {
		t.Fatal(err)
	}
	if &h.RankU[0] != &rank1[0] || h.RankU[0] != -12345 {
		t.Fatal("Prepare with the same *Costs recomputed instead of memoising")
	}
	if err := h.Prepare(c2); err != nil {
		t.Fatal(err)
	}
	if h.RankU[0] == -12345 {
		t.Fatal("Prepare with a different *Costs did not recompute")
	}
	if err := h.Prepare(c1); err != nil {
		t.Fatal(err)
	}
	if h.PlannedMakespanMs != first {
		t.Fatalf("re-prepared makespan %v != first %v", h.PlannedMakespanMs, first)
	}
}

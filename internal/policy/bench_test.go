package policy

import (
	"testing"

	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func benchCosts(b *testing.B) *sim.Costs {
	b.Helper()
	g := workload.MustSuite(workload.Type2, workload.DefaultSuiteSeed)[9] // 157 kernels
	c, err := sim.PrepareCosts(g, platform.PaperSystem(4), lut.Paper(), sim.CostConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkHEFTPrepare isolates HEFT's static ranking + planning phase —
// the pre-computation cost the thesis argues APT avoids.
func BenchmarkHEFTPrepare(b *testing.B) {
	c := benchCosts(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := NewHEFT().Prepare(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPEFTPrepare isolates PEFT's OCT computation + planning phase.
func BenchmarkPEFTPrepare(b *testing.B) {
	c := benchCosts(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := NewPEFT().Prepare(c); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPolicyRun(b *testing.B, newPol func() sim.Policy) {
	b.Helper()
	c := benchCosts(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, newPol(), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunMET(b *testing.B)  { benchPolicyRun(b, func() sim.Policy { return NewMET(1) }) }
func BenchmarkRunSPN(b *testing.B)  { benchPolicyRun(b, func() sim.Policy { return NewSPN() }) }
func BenchmarkRunSS(b *testing.B)   { benchPolicyRun(b, func() sim.Policy { return NewSS() }) }
func BenchmarkRunAG(b *testing.B)   { benchPolicyRun(b, func() sim.Policy { return NewAG() }) }
func BenchmarkRunHEFT(b *testing.B) { benchPolicyRun(b, func() sim.Policy { return NewHEFT() }) }
func BenchmarkRunPEFT(b *testing.B) { benchPolicyRun(b, func() sim.Policy { return NewPEFT() }) }

package policy

import (
	"math/rand"

	"repro/internal/dfg"
	"repro/internal/platform"
	"repro/internal/sim"
)

// MET implements the minimum execution time (best-only) policy of Braun et
// al. (paper §2.5.3): each kernel, visited in random order from the ready
// set, is assigned to the processor with the lowest execution time for it —
// and only to that processor. If the best processor is busy the kernel
// waits, leaving other processors idle. This exploits the system's full
// heterogeneity at the cost of potentially long waits when one processor is
// best for many kernels — exactly the weakness APT relaxes.
type MET struct {
	// Seed fixes the random visiting order; the same seed reproduces the
	// same schedule.
	Seed int64

	c   *sim.Costs
	rng *rand.Rand

	ready []dfg.KernelID
	avail availSet
	out   []sim.Assignment
}

// NewMET returns a MET policy with the given visiting-order seed.
func NewMET(seed int64) *MET { return &MET{Seed: seed} }

// Name implements sim.Policy.
func (m *MET) Name() string { return "MET" }

// Prepare implements sim.Policy.
func (m *MET) Prepare(c *sim.Costs) error {
	m.c = c
	m.rng = rand.New(rand.NewSource(m.Seed))
	return nil
}

// Select implements sim.Policy: visit ready kernels in random order and
// assign each to a best processor when — and only when — one is available.
// "Best" means any processor whose execution time equals the minimum, so
// systems with duplicated devices (two identical GPUs, say) use all of
// them; on the paper's one-of-each system this reduces to the single pmin.
func (m *MET) Select(st *sim.State) []sim.Assignment {
	ready := st.AppendReady(m.ready[:0])
	m.ready = ready
	m.rng.Shuffle(len(ready), func(i, j int) { ready[i], ready[j] = ready[j], ready[i] })
	m.avail.reset(st)
	np := st.System().NumProcs()
	out := m.out[:0]
	for _, k := range ready {
		if m.avail.empty() {
			break
		}
		_, best := m.c.BestProc(k)
		for p := 0; p < np; p++ {
			pid := platform.ProcID(p)
			// best is the minimum of this same Exec row, so <= holds
			// exactly for the processors achieving it (no float
			// equality needed; nothing can be strictly below the min).
			if m.c.Exec(k, pid) <= best && m.avail.has(pid) {
				m.avail.take(pid)
				out = append(out, sim.Assignment{Kernel: k, Proc: pid})
				break
			}
		}
	}
	m.out = out
	return out
}

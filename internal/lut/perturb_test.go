package lut

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func TestPerturbedWithinBounds(t *testing.T) {
	base := Paper()
	noisy, err := Perturbed(base, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for _, e := range base.Entries() {
		for _, k := range base.Kinds() {
			orig := e.TimeMs[k]
			got, err := noisy.Exec(e.Kernel, e.DataElems, k)
			if err != nil {
				t.Fatal(err)
			}
			if got < orig*0.7-1e-9 || got > orig*1.3+1e-9 {
				t.Errorf("%s/%d/%s perturbed to %v, outside ±30%% of %v",
					e.Kernel, e.DataElems, k, got, orig)
			}
			if got != orig {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("perturbation changed nothing")
	}
}

func TestPerturbedDeterministic(t *testing.T) {
	a, _ := Perturbed(Paper(), 0.2, 3)
	b, _ := Perturbed(Paper(), 0.2, 3)
	va, _ := a.Exec(MatMul, 250000, platform.GPU)
	vb, _ := b.Exec(MatMul, 250000, platform.GPU)
	if va != vb {
		t.Errorf("same seed produced %v vs %v", va, vb)
	}
}

func TestPerturbedZeroIsIdentity(t *testing.T) {
	same, err := Perturbed(Paper(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Paper().Entries() {
		for _, k := range Paper().Kinds() {
			got, _ := same.Exec(e.Kernel, e.DataElems, k)
			if math.Abs(got-e.TimeMs[k]) > 1e-12 {
				t.Fatalf("zero perturbation changed %s/%d/%s", e.Kernel, e.DataElems, k)
			}
		}
	}
}

func TestPerturbedValidation(t *testing.T) {
	if _, err := Perturbed(Paper(), -0.1, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := Perturbed(Paper(), 1, 1); err == nil {
		t.Error("fraction 1 accepted (could zero out times)")
	}
}

func TestPerturbedDoesNotMutateOriginal(t *testing.T) {
	before, _ := Paper().Exec(MatMul, 250000, platform.CPU)
	if _, err := Perturbed(Paper(), 0.5, 9); err != nil {
		t.Fatal(err)
	}
	after, _ := Paper().Exec(MatMul, 250000, platform.CPU)
	if before != after {
		t.Fatal("Perturbed mutated the shared paper table")
	}
}

package lut

import "repro/internal/platform"

// Canonical kernel names used throughout the repository. They match the
// abbreviations in the thesis (Table 5, Appendix B).
const (
	MatMul = "matmul" // Matrix-Matrix Multiplication (Dense Linear Algebra)
	MatInv = "mi"     // Matrix Inverse (Dense Linear Algebra)
	CD     = "cd"     // Cholesky Decomposition (Dense/Sparse Linear Algebra)
	NW     = "nw"     // Needleman-Wunsch (Dynamic Programming)
	BFS    = "bfs"    // Breadth First Search (Graph Traversal)
	SRAD   = "srad"   // Speckle Reducing Anisotropic Diffusion (Structured Grids)
	GEM    = "gem"    // Gaussian Electrostatic Model (N-Body)
)

// Dwarf returns the Berkeley-dwarf classification of a canonical kernel
// (paper Table 5), or "" for unknown kernels.
func Dwarf(kernel string) string {
	switch kernel {
	case MatMul, MatInv:
		return "Dense Linear Algebra"
	case CD:
		return "Dense and Sparse Linear Algebra"
	case NW:
		return "Dynamic Programming"
	case BFS:
		return "Graph Traversal"
	case SRAD:
		return "Structured Grids"
	case GEM:
		return "N-Body Methods"
	default:
		return ""
	}
}

func row(kernel string, elems int64, cpu, gpu, fpga float64) Entry {
	return Entry{
		Kernel:    kernel,
		DataElems: elems,
		TimeMs: map[platform.Kind]float64{
			platform.CPU:  cpu,
			platform.GPU:  gpu,
			platform.FPGA: fpga,
		},
	}
}

// paperEntries is the thesis's complete lookup table (Table 14, Appendix A),
// transcribed verbatim. Times are milliseconds; sizes are elements.
var paperEntries = []Entry{
	// Matrix Multiplication
	row(MatMul, 250000, 29.631, 0.062, 149.011),
	row(MatMul, 698896, 131.183, 0.061, 696.512),
	row(MatMul, 1000000, 220.806, 0.061, 1192.092),
	row(MatMul, 4000000, 259.291, 0.062, 9536.743),
	row(MatMul, 16000000, 1967.286, 0.061, 76293.945),
	row(MatMul, 36000000, 6676.706, 0.106, 257492.065),
	row(MatMul, 64000000, 15487.652, 0.147, 610351.562),
	// Matrix Inverse
	row(MatInv, 250000, 42.952, 9.652, 24.247),
	row(MatInv, 698896, 148.387, 22.352, 110.597),
	row(MatInv, 1000000, 235.810, 29.078, 188.188),
	row(MatInv, 4000000, 432.330, 129.156, 1482.717),
	row(MatInv, 16000000, 40636.878, 596.582, 11770.520),
	row(MatInv, 36000000, 133917.655, 1702.537, 39623.932),
	row(MatInv, 64000000, 312902.299, 3600.423, 93802.080),
	// Cholesky Decomposition
	row(CD, 250000, 17.064, 2.749, 0.093),
	row(CD, 698896, 86.585, 4.940, 0.258),
	row(CD, 1000000, 6.284, 6.453, 0.361),
	row(CD, 4000000, 86.585, 21.219, 1.382),
	row(CD, 16000000, 60.806, 90.581, 5.407),
	row(CD, 36000000, 132.677, 220.819, 12.194),
	row(CD, 64000000, 307.539, 458.603, 21.543),
	// Dwarfs from Krommydas et al., one measured size each (paper Table 7/14).
	row(NW, 16777216, 112, 146, 397),
	row(BFS, 2034736, 332, 173, 106),
	row(SRAD, 134217728, 5092, 1600, 92287),
	row(GEM, 2070376, 21592, 4001, 585760),
}

var paperTable = MustNew(paperEntries)

// Paper returns the thesis's complete measured lookup table (Table 14).
// The returned table is shared and immutable.
func Paper() *Table { return paperTable }

// Package lut provides the measured-execution-time lookup table that drives
// the simulator's cost model.
//
// The thesis (Table 14, Appendix A) collects real measured execution times
// for seven kernels at various data sizes on a CPU, a GPU and an FPGA, taken
// from Skalicky et al. (linear-algebra kernels) and Krommydas et al.
// (OpenCL dwarfs). The scheduler consults this table to estimate the
// execution time of a kernel on each processor category.
//
// The table is keyed by (kernel name, data size in elements, processor
// kind). Exact sizes hit the measured value; sizes between two measured
// points are piecewise-linearly interpolated; sizes outside the measured
// range clamp to the nearest endpoint. The paper only ever schedules the
// measured sizes, but the generators and examples in this repository are
// free to use intermediate ones.
package lut

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/platform"
)

// Entry is one measured row: execution times in milliseconds for a kernel
// at a specific data size on each processor kind.
type Entry struct {
	Kernel string
	// DataElems is the input size in elements (e.g. matrix rows*cols).
	DataElems int64
	// TimeMs maps processor kind to measured execution time in milliseconds.
	TimeMs map[platform.Kind]float64
}

// Table is an immutable collection of measured entries with interpolating
// lookup. Build one with New or load the paper's table with Paper.
type Table struct {
	// byKernel[kernel] is sorted by DataElems ascending.
	byKernel map[string][]Entry
	kinds    []platform.Kind
}

// New builds a table from entries. Every entry must name a kernel, have a
// positive size, and supply a non-negative time for every kind that appears
// anywhere in the input (the table must be rectangular: all kernels cover
// the same set of kinds). Duplicate (kernel, size) pairs are rejected.
func New(entries []Entry) (*Table, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("lut: no entries")
	}
	kindSet := map[platform.Kind]bool{}
	for _, e := range entries {
		for k := range e.TimeMs { //lint:ordered — per-key set insert; writes are independent
			kindSet[k] = true
		}
	}
	kinds := make([]platform.Kind, 0, len(kindSet))
	for k := range kindSet { //lint:ordered — collected then sorted just below
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	byKernel := map[string][]Entry{}
	for _, e := range entries {
		if e.Kernel == "" {
			return nil, fmt.Errorf("lut: entry with empty kernel name")
		}
		if e.DataElems <= 0 {
			return nil, fmt.Errorf("lut: kernel %q has non-positive data size %d", e.Kernel, e.DataElems)
		}
		for _, k := range kinds {
			t, ok := e.TimeMs[k]
			if !ok {
				return nil, fmt.Errorf("lut: kernel %q size %d missing time for kind %s", e.Kernel, e.DataElems, k)
			}
			if t < 0 {
				return nil, fmt.Errorf("lut: kernel %q size %d has negative time %v on %s", e.Kernel, e.DataElems, t, k)
			}
		}
		// Copy the map so the table does not alias caller memory.
		cp := Entry{Kernel: e.Kernel, DataElems: e.DataElems, TimeMs: make(map[platform.Kind]float64, len(e.TimeMs))}
		for k, v := range e.TimeMs { //lint:ordered — per-key map copy; writes are independent
			cp.TimeMs[k] = v
		}
		byKernel[e.Kernel] = append(byKernel[e.Kernel], cp)
	}
	// Validate kernels in sorted order: when several kernels have duplicate
	// sizes, which one the error names must not depend on map iteration
	// order (the message could otherwise differ across identical runs).
	kernelNames := make([]string, 0, len(byKernel))
	for kernel := range byKernel { //lint:ordered — collected then sorted just below
		kernelNames = append(kernelNames, kernel)
	}
	sort.Strings(kernelNames)
	for _, kernel := range kernelNames {
		rows := byKernel[kernel]
		sort.Slice(rows, func(i, j int) bool { return rows[i].DataElems < rows[j].DataElems })
		for i := 1; i < len(rows); i++ {
			if rows[i].DataElems == rows[i-1].DataElems {
				return nil, fmt.Errorf("lut: duplicate entry for kernel %q size %d", kernel, rows[i].DataElems)
			}
		}
		byKernel[kernel] = rows
	}
	return &Table{byKernel: byKernel, kinds: kinds}, nil
}

// MustNew is New, panicking on error.
func MustNew(entries []Entry) *Table {
	t, err := New(entries)
	if err != nil {
		panic(err)
	}
	return t
}

// Kinds returns the processor kinds the table covers, sorted.
func (t *Table) Kinds() []platform.Kind { return t.kinds }

// Kernels returns the kernel names present, sorted.
func (t *Table) Kernels() []string {
	names := make([]string, 0, len(t.byKernel))
	for k := range t.byKernel { //lint:ordered — collected then sorted just below
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Sizes returns the measured data sizes for a kernel, ascending, or nil if
// the kernel is unknown.
func (t *Table) Sizes(kernel string) []int64 {
	rows := t.byKernel[kernel]
	if rows == nil {
		return nil
	}
	sizes := make([]int64, len(rows))
	for i, r := range rows {
		sizes[i] = r.DataElems
	}
	return sizes
}

// HasKernel reports whether the table has any entry for the kernel.
func (t *Table) HasKernel(kernel string) bool { return len(t.byKernel[kernel]) > 0 }

// Exec returns the estimated execution time in milliseconds of the kernel
// at the given data size on the given processor kind.
//
// Exact measured sizes return the measured value. Sizes strictly between
// two measured points interpolate linearly. Sizes below the smallest or
// above the largest measured size clamp to the boundary measurement, a
// deliberately conservative choice that keeps estimates inside the measured
// envelope.
func (t *Table) Exec(kernel string, elems int64, kind platform.Kind) (float64, error) {
	rows := t.byKernel[kernel]
	if rows == nil {
		return 0, fmt.Errorf("lut: unknown kernel %q", kernel)
	}
	if elems <= 0 {
		return 0, fmt.Errorf("lut: non-positive data size %d for kernel %q", elems, kernel)
	}
	if _, ok := rows[0].TimeMs[kind]; !ok {
		return 0, fmt.Errorf("lut: kernel %q has no time for kind %s", kernel, kind)
	}
	// Binary search for the first row with DataElems >= elems.
	i := sort.Search(len(rows), func(i int) bool { return rows[i].DataElems >= elems })
	switch {
	case i == len(rows):
		return rows[len(rows)-1].TimeMs[kind], nil // clamp above
	case rows[i].DataElems == elems:
		return rows[i].TimeMs[kind], nil // exact
	case i == 0:
		return rows[0].TimeMs[kind], nil // clamp below
	default:
		lo, hi := rows[i-1], rows[i]
		frac := float64(elems-lo.DataElems) / float64(hi.DataElems-lo.DataElems)
		a, b := lo.TimeMs[kind], hi.TimeMs[kind]
		return a + frac*(b-a), nil
	}
}

// BestKind returns the processor kind with the minimum execution time for
// the kernel at the given size, together with that time. Ties break toward
// the alphabetically smaller kind for determinism.
func (t *Table) BestKind(kernel string, elems int64) (platform.Kind, float64, error) {
	var bestKind platform.Kind
	best := 0.0
	found := false
	for _, k := range t.kinds {
		ms, err := t.Exec(kernel, elems, k)
		if err != nil {
			return "", 0, err
		}
		if !found || ms < best {
			found, best, bestKind = true, ms, k
		}
	}
	if !found {
		return "", 0, fmt.Errorf("lut: table has no kinds")
	}
	return bestKind, best, nil
}

// Heterogeneity returns max/min execution time across kinds for the kernel
// at the given size — a measure of how much the choice of processor matters
// for this kernel. Returns +Inf ratio when the minimum is zero is avoided by
// reporting the raw min and max instead.
func (t *Table) Heterogeneity(kernel string, elems int64) (min, max float64, err error) {
	first := true
	for _, k := range t.kinds {
		ms, e := t.Exec(kernel, elems, k)
		if e != nil {
			return 0, 0, e
		}
		if first {
			min, max, first = ms, ms, false
			continue
		}
		if ms < min {
			min = ms
		}
		if ms > max {
			max = ms
		}
	}
	if first {
		return 0, 0, fmt.Errorf("lut: table has no kinds")
	}
	return min, max, nil
}

// Entries returns every row of the table, sorted by kernel then size.
// The returned entries are copies.
func (t *Table) Entries() []Entry {
	var out []Entry
	for _, kernel := range t.Kernels() {
		for _, row := range t.byKernel[kernel] {
			cp := Entry{Kernel: row.Kernel, DataElems: row.DataElems, TimeMs: map[platform.Kind]float64{}}
			for k, v := range row.TimeMs { //lint:ordered — per-key map copy; writes are independent
				cp.TimeMs[k] = v
			}
			out = append(out, cp)
		}
	}
	return out
}

// WriteCSV writes the table with a header row:
//
//	kernel,data_elems,<kind1>,<kind2>,...
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"kernel", "data_elems"}
	for _, k := range t.kinds {
		header = append(header, string(k))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range t.Entries() {
		rec := []string{e.Kernel, strconv.FormatInt(e.DataElems, 10)}
		for _, k := range t.kinds {
			rec = append(rec, strconv.FormatFloat(e.TimeMs[k], 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("lut: csv read: %w", err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("lut: csv has no data rows")
	}
	header := recs[0]
	if len(header) < 3 || header[0] != "kernel" || header[1] != "data_elems" {
		return nil, fmt.Errorf("lut: csv header %v malformed", header)
	}
	kinds := make([]platform.Kind, 0, len(header)-2)
	for _, h := range header[2:] {
		kinds = append(kinds, platform.Kind(h))
	}
	var entries []Entry
	for ln, rec := range recs[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("lut: csv row %d has %d fields, want %d", ln+2, len(rec), len(header))
		}
		size, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lut: csv row %d size: %w", ln+2, err)
		}
		e := Entry{Kernel: rec[0], DataElems: size, TimeMs: map[platform.Kind]float64{}}
		for i, k := range kinds {
			v, err := strconv.ParseFloat(rec[2+i], 64)
			if err != nil {
				return nil, fmt.Errorf("lut: csv row %d kind %s: %w", ln+2, k, err)
			}
			e.TimeMs[k] = v
		}
		entries = append(entries, e)
	}
	return New(entries)
}

package lut

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestPaperTableShape(t *testing.T) {
	tab := Paper()
	wantKernels := []string{BFS, CD, GEM, MatMul, MatInv, NW, SRAD} // sorted: bfs cd gem matmul mi nw srad
	got := tab.Kernels()
	if len(got) != len(wantKernels) {
		t.Fatalf("Kernels = %v, want %v", got, wantKernels)
	}
	for i := range got {
		if got[i] != wantKernels[i] {
			t.Errorf("Kernels[%d] = %q, want %q", i, got[i], wantKernels[i])
		}
	}
	for _, k := range []string{MatMul, MatInv, CD} {
		if n := len(tab.Sizes(k)); n != 7 {
			t.Errorf("Sizes(%s) has %d entries, want 7", k, n)
		}
	}
	for _, k := range []string{NW, BFS, SRAD, GEM} {
		if n := len(tab.Sizes(k)); n != 1 {
			t.Errorf("Sizes(%s) has %d entries, want 1", k, n)
		}
	}
}

// Spot-check values against the thesis Table 14 and Table 7.
func TestPaperTableValues(t *testing.T) {
	tab := Paper()
	cases := []struct {
		kernel string
		elems  int64
		kind   platform.Kind
		want   float64
	}{
		{MatMul, 16000000, platform.CPU, 1967.286},
		{MatMul, 16000000, platform.GPU, 0.061},
		{MatMul, 16000000, platform.FPGA, 76293.945},
		{CD, 16000000, platform.FPGA, 5.407},
		// Table 7 prints CD/CPU as 17064e-4 (=1.7064) but Table 14 and the
		// GPU/FPGA columns agree on 17.064; we treat Table 14 as authoritative.
		{CD, 250000, platform.CPU, 17.064},
		{MatInv, 698896, platform.CPU, 148.387},
		{MatInv, 698896, platform.GPU, 22.352},
		{MatInv, 698896, platform.FPGA, 110.597},
		{NW, 16777216, platform.CPU, 112},
		{NW, 16777216, platform.GPU, 146},
		{NW, 16777216, platform.FPGA, 397},
		{BFS, 2034736, platform.FPGA, 106},
		{SRAD, 134217728, platform.GPU, 1600},
		{GEM, 2070376, platform.GPU, 4001},
	}
	for _, c := range cases {
		got, err := tab.Exec(c.kernel, c.elems, c.kind)
		if err != nil {
			t.Fatalf("Exec(%s,%d,%s): %v", c.kernel, c.elems, c.kind, err)
		}
		if got != c.want {
			t.Errorf("Exec(%s,%d,%s) = %v, want %v", c.kernel, c.elems, c.kind, got, c.want)
		}
	}
}

func TestExecErrors(t *testing.T) {
	tab := Paper()
	if _, err := tab.Exec("nonexistent", 100, platform.CPU); err == nil {
		t.Error("unknown kernel: want error")
	}
	if _, err := tab.Exec(MatMul, 0, platform.CPU); err == nil {
		t.Error("zero size: want error")
	}
	if _, err := tab.Exec(MatMul, -5, platform.CPU); err == nil {
		t.Error("negative size: want error")
	}
	if _, err := tab.Exec(MatMul, 250000, "TPU"); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestExecInterpolation(t *testing.T) {
	tab := Paper()
	// Halfway (in elements) between 250000 and 698896 for MatMul on CPU:
	// 29.631 .. 131.183.
	mid := int64((250000 + 698896) / 2)
	got, err := tab.Exec(MatMul, mid, platform.CPU)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(mid-250000) / float64(698896-250000)
	want := 29.631 + frac*(131.183-29.631)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("interpolated = %v, want %v", got, want)
	}
}

func TestExecClamping(t *testing.T) {
	tab := Paper()
	lo, err := tab.Exec(MatMul, 10, platform.CPU)
	if err != nil || lo != 29.631 {
		t.Errorf("below-range Exec = %v,%v; want 29.631", lo, err)
	}
	hi, err := tab.Exec(MatMul, 1<<40, platform.CPU)
	if err != nil || hi != 15487.652 {
		t.Errorf("above-range Exec = %v,%v; want 15487.652", hi, err)
	}
}

func TestBestKind(t *testing.T) {
	tab := Paper()
	cases := []struct {
		kernel string
		elems  int64
		want   platform.Kind
	}{
		{MatMul, 16000000, platform.GPU},
		{CD, 16000000, platform.FPGA},
		{NW, 16777216, platform.CPU},
		{BFS, 2034736, platform.FPGA},
		{SRAD, 134217728, platform.GPU},
		{GEM, 2070376, platform.GPU},
		{MatInv, 698896, platform.GPU},
	}
	for _, c := range cases {
		kind, ms, err := tab.BestKind(c.kernel, c.elems)
		if err != nil {
			t.Fatal(err)
		}
		if kind != c.want {
			t.Errorf("BestKind(%s,%d) = %s (%v ms), want %s", c.kernel, c.elems, kind, ms, c.want)
		}
	}
}

func TestHeterogeneity(t *testing.T) {
	tab := Paper()
	min, max, err := tab.Heterogeneity(NW, 16777216)
	if err != nil {
		t.Fatal(err)
	}
	if min != 112 || max != 397 {
		t.Errorf("Heterogeneity(nw) = %v..%v, want 112..397", min, max)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	good := row(MatMul, 100, 1, 2, 3)
	cases := []struct {
		name    string
		entries []Entry
	}{
		{"empty", nil},
		{"empty kernel", []Entry{{Kernel: "", DataElems: 1, TimeMs: good.TimeMs}}},
		{"zero size", []Entry{{Kernel: "k", DataElems: 0, TimeMs: good.TimeMs}}},
		{"negative time", []Entry{row("k", 1, -1, 2, 3)}},
		{"duplicate", []Entry{row("k", 1, 1, 2, 3), row("k", 1, 4, 5, 6)}},
		{"ragged kinds", []Entry{
			row("k", 1, 1, 2, 3),
			{Kernel: "j", DataElems: 1, TimeMs: map[platform.Kind]float64{platform.CPU: 1}},
		}},
	}
	for _, c := range cases {
		if _, err := New(c.entries); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

func TestEntriesAreCopies(t *testing.T) {
	tab := Paper()
	es := tab.Entries()
	if len(es) != 25 {
		t.Fatalf("Entries len = %d, want 25", len(es))
	}
	es[0].TimeMs[platform.CPU] = -999
	v, err := tab.Exec(es[0].Kernel, es[0].DataElems, platform.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if v == -999 {
		t.Error("mutating Entries() result corrupted the table")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := Paper()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tab.Entries(), back.Entries()
	if len(a) != len(b) {
		t.Fatalf("round trip lost rows: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kernel != b[i].Kernel || a[i].DataElems != b[i].DataElems {
			t.Errorf("row %d key mismatch: %+v vs %+v", i, a[i], b[i])
		}
		for k, v := range a[i].TimeMs {
			if b[i].TimeMs[k] != v {
				t.Errorf("row %d kind %s: %v != %v", i, k, b[i].TimeMs[k], v)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"kernel,data_elems,CPU\n", // header only
		"bogus,header\nrow,1\n",
		"kernel,data_elems,CPU\nk,notanumber,1\n",
		"kernel,data_elems,CPU\nk,1,notanumber\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: ReadCSV succeeded, want error", i)
		}
	}
}

func TestDwarf(t *testing.T) {
	if Dwarf(NW) != "Dynamic Programming" {
		t.Errorf("Dwarf(nw) = %q", Dwarf(NW))
	}
	if Dwarf(BFS) != "Graph Traversal" {
		t.Errorf("Dwarf(bfs) = %q", Dwarf(BFS))
	}
	if Dwarf("unknown") != "" {
		t.Errorf("Dwarf(unknown) = %q, want empty", Dwarf("unknown"))
	}
}

// Property: interpolation stays within [min(endpoint), max(endpoint)] of the
// bracketing measured values, for all kernels, kinds and in-range sizes.
func TestInterpolationBoundedProperty(t *testing.T) {
	tab := Paper()
	f := func(kernelIdx uint8, kindIdx uint8, fracPct uint16) bool {
		kernels := tab.Kernels()
		kernel := kernels[int(kernelIdx)%len(kernels)]
		kinds := tab.Kinds()
		kind := kinds[int(kindIdx)%len(kinds)]
		sizes := tab.Sizes(kernel)
		if len(sizes) < 2 {
			return true
		}
		// Pick a point inside the first bracket via fracPct.
		lo, hi := sizes[0], sizes[1]
		span := hi - lo
		x := lo + int64(float64(span)*float64(fracPct%101)/100)
		got, err := tab.Exec(kernel, x, kind)
		if err != nil {
			return false
		}
		a, _ := tab.Exec(kernel, lo, kind)
		b, _ := tab.Exec(kernel, hi, kind)
		min, max := math.Min(a, b), math.Max(a, b)
		return got >= min-1e-9 && got <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package lut

import (
	"bytes"
	"testing"
)

// FuzzReadCSV asserts ReadCSV never panics and that everything it accepts
// survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := Paper().WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("kernel,data_elems,CPU\nk,1,2\n")
	f.Add("")
	f.Add("kernel,data_elems\n")
	f.Add("kernel,data_elems,CPU,GPU\nk,0,1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadCSV(bytes.NewBufferString(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var out bytes.Buffer
		if err := tab.WriteCSV(&out); err != nil {
			t.Fatalf("accepted table failed to serialise: %v", err)
		}
		back, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip of accepted table failed: %v", err)
		}
		if len(back.Entries()) != len(tab.Entries()) {
			t.Fatalf("round trip changed row count: %d vs %d",
				len(back.Entries()), len(tab.Entries()))
		}
	})
}

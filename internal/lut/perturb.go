package lut

import (
	"fmt"
	"math/rand"
)

// Perturbed returns a copy of the table with every execution time
// multiplied by an independent uniform factor in [1-frac, 1+frac]
// (deterministic per seed). It models estimation error: schedulers decide
// with one table while the simulated hardware follows a perturbed one —
// the thesis's lookup table itself generalises measurements from other
// groups' hardware, so its estimates carry exactly this kind of error.
func Perturbed(t *Table, frac float64, seed int64) (*Table, error) {
	if frac < 0 || frac >= 1 {
		return nil, fmt.Errorf("lut: perturbation fraction must be in [0,1), got %v", frac)
	}
	r := rand.New(rand.NewSource(seed))
	entries := t.Entries()
	for i := range entries {
		for _, k := range t.Kinds() {
			factor := 1 + frac*(2*r.Float64()-1)
			entries[i].TimeMs[k] *= factor
		}
	}
	return New(entries)
}

// Package apps models the application layer of the thesis (Ch. 2, Figure
// 2 and Table 1): an application decomposes into kernels, each kernel
// follows the computation/communication pattern of one Berkeley dwarf, and
// an application may span several dwarfs.
//
// The catalogue reproduces the paper's Table 1 — eleven applications
// against eight dwarf columns — and gives each application a concrete
// kernel-level DFG built from the measured kernel set, so streams of whole
// applications (rather than loose kernels) can be generated and scheduled.
// For the four applications whose kernels are not in the thesis's lookup
// table (LavaMD, HotSpot, Backpropagation, FFT), the DFG is synthesised
// from measured kernels of the same dwarfs, preserving the dwarf mix of
// Table 1; the substitution is noted here.
package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/dfg"
	"repro/internal/lut"
)

// Dwarf names the Berkeley-dwarf columns of the paper's Table 1.
type Dwarf string

// The eight dwarf columns of Table 1 (of Asanović et al.'s thirteen).
const (
	DenseLinearAlgebra  Dwarf = "Dense Linear Algebra"
	SparseLinearAlgebra Dwarf = "Sparse Linear Algebra"
	SpectralMethods     Dwarf = "Spectral Methods"
	NBodyMethods        Dwarf = "N-Body Methods"
	StructuredGrids     Dwarf = "Structured Grids"
	UnstructuredGrids   Dwarf = "Unstructured Grids"
	GraphTraversal      Dwarf = "Graph Traversal"
	DynamicProgramming  Dwarf = "Dynamic Programming"
)

// Dwarfs lists the Table 1 columns in the paper's order.
func Dwarfs() []Dwarf {
	return []Dwarf{
		DenseLinearAlgebra, SparseLinearAlgebra, SpectralMethods, NBodyMethods,
		StructuredGrids, UnstructuredGrids, GraphTraversal, DynamicProgramming,
	}
}

// stage is one level of an application's kernel pipeline: kernels within a
// stage are independent; every kernel of stage i feeds every kernel of
// stage i+1.
type stage []workUnit

type workUnit struct {
	kernel string
	elems  int64
}

// Application is one row of Table 1 with a concrete kernel decomposition.
type Application struct {
	Name string
	// DwarfSet are the dwarf classes the application exhibits (Table 1).
	DwarfSet []Dwarf
	// pipeline is the kernel decomposition (Figure 2): stages of
	// independent kernels with stage-to-stage dependencies.
	pipeline []stage
	// Synthesised marks applications whose own kernels are absent from the
	// thesis's lookup table and were rebuilt from same-dwarf kernels.
	Synthesised bool
}

// NumKernels returns the number of kernels in the application's DFG.
func (a *Application) NumKernels() int {
	n := 0
	for _, s := range a.pipeline {
		n += len(s)
	}
	return n
}

// HasDwarf reports membership of a dwarf class.
func (a *Application) HasDwarf(d Dwarf) bool {
	for _, x := range a.DwarfSet {
		if x == d {
			return true
		}
	}
	return false
}

// AppendTo adds the application's kernel DFG to a graph builder, tagging
// every kernel with the given application index, and returns the IDs of
// the final stage (the application's outputs).
func (a *Application) AppendTo(b *dfg.Builder, app int) []dfg.KernelID {
	var prev []dfg.KernelID
	for _, st := range a.pipeline {
		cur := make([]dfg.KernelID, 0, len(st))
		for _, u := range st {
			id := b.AddKernel(dfg.Kernel{
				Name:      u.kernel,
				Dwarf:     lut.Dwarf(u.kernel),
				DataElems: u.elems,
				App:       app,
			})
			for _, p := range prev {
				b.AddEdge(p, id)
			}
			cur = append(cur, id)
		}
		prev = cur
	}
	return prev
}

// Graph builds the application's standalone DFG.
func (a *Application) Graph() (*dfg.Graph, error) {
	b := dfg.NewBuilder()
	a.AppendTo(b, 0)
	return b.Build()
}

func u(kernel string, elems int64) workUnit { return workUnit{kernel: kernel, elems: elems} }

// catalogue reproduces the paper's Table 1 rows. Pipelines use the
// measured kernels; sizes pick mid-range entries of the lookup table.
var catalogue = []Application{
	{
		Name:     "Needleman Wunsch",
		DwarfSet: []Dwarf{DynamicProgramming},
		pipeline: []stage{{u(lut.NW, 16777216)}},
	},
	{
		Name:     "Matrix Inverse",
		DwarfSet: []Dwarf{DenseLinearAlgebra},
		pipeline: []stage{{u(lut.MatInv, 4000000)}},
	},
	{
		Name:     "GEM",
		DwarfSet: []Dwarf{NBodyMethods},
		pipeline: []stage{{u(lut.GEM, 2070376)}},
	},
	{
		Name:     "Cholesky decomp.",
		DwarfSet: []Dwarf{DenseLinearAlgebra, SparseLinearAlgebra},
		pipeline: []stage{{u(lut.CD, 16000000)}},
	},
	{
		Name:     "BFS",
		DwarfSet: []Dwarf{GraphTraversal},
		pipeline: []stage{{u(lut.BFS, 2034736)}},
	},
	{
		Name:     "Mat.Mat. Multi.",
		DwarfSet: []Dwarf{DenseLinearAlgebra},
		pipeline: []stage{{u(lut.MatMul, 4000000)}},
	},
	{
		Name:     "SRAD",
		DwarfSet: []Dwarf{StructuredGrids, UnstructuredGrids},
		pipeline: []stage{{u(lut.SRAD, 134217728)}},
	},
	{
		// LavaMD (particle interactions in boxed subdomains): N-body force
		// kernel between neighbour boxes followed by a dense reduction.
		Name:        "LavaMD",
		DwarfSet:    []Dwarf{NBodyMethods, DenseLinearAlgebra},
		Synthesised: true,
		pipeline: []stage{
			{u(lut.GEM, 2070376), u(lut.GEM, 2070376)},
			{u(lut.MatMul, 1000000)},
		},
	},
	{
		// HotSpot (thermal simulation): iterative structured-grid stencil,
		// modelled as two dependent grid sweeps.
		Name:        "HotSpot",
		DwarfSet:    []Dwarf{StructuredGrids},
		Synthesised: true,
		pipeline: []stage{
			{u(lut.SRAD, 134217728)},
			{u(lut.SRAD, 134217728)},
		},
	},
	{
		// Backpropagation: dense layer products forward, dense products
		// backward, weight update.
		Name:        "Backpropagation",
		DwarfSet:    []Dwarf{DenseLinearAlgebra, UnstructuredGrids},
		Synthesised: true,
		pipeline: []stage{
			{u(lut.MatMul, 4000000), u(lut.MatMul, 4000000)},
			{u(lut.MatMul, 4000000)},
			{u(lut.MatInv, 1000000)},
		},
	},
	{
		// FFT: spectral method; no FFT kernel was measured, so the
		// butterfly stages are represented by dense products over the
		// transform matrix (the thesis's own Table 1 classifies FFT under
		// Spectral Methods and Dense Linear Algebra).
		Name:        "FFT",
		DwarfSet:    []Dwarf{DenseLinearAlgebra, SpectralMethods},
		Synthesised: true,
		pipeline: []stage{
			{u(lut.MatMul, 1000000), u(lut.MatMul, 1000000)},
			{u(lut.MatMul, 1000000)},
		},
	},
}

// Catalogue returns the Table 1 applications in the paper's row order.
// The returned slice is a copy; the applications themselves are immutable.
func Catalogue() []Application {
	out := make([]Application, len(catalogue))
	copy(out, catalogue)
	return out
}

// ByName looks an application up case-sensitively.
func ByName(name string) (*Application, error) {
	for i := range catalogue {
		if catalogue[i].Name == name {
			return &catalogue[i], nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Names returns all application names in row order.
func Names() []string {
	out := make([]string, len(catalogue))
	for i := range catalogue {
		out[i] = catalogue[i].Name
	}
	return out
}

// Stream builds a workload of n whole applications drawn uniformly at
// random (deterministic per seed), concatenated in stream order: each
// application's internal dependencies are preserved and applications are
// mutually independent, the Type-1-like regime of the thesis's streams.
func Stream(n int, seed int64) (*dfg.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("apps: stream size must be positive, got %d", n)
	}
	r := rand.New(rand.NewSource(seed))
	b := dfg.NewBuilder()
	for i := 0; i < n; i++ {
		app := catalogue[r.Intn(len(catalogue))]
		app.AppendTo(b, i)
	}
	return b.Build()
}

// ChainedStream is Stream with data dependencies between consecutive
// applications (each application's outputs feed the next one's entry
// kernels), the Type-2-like regime.
func ChainedStream(n int, seed int64) (*dfg.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("apps: stream size must be positive, got %d", n)
	}
	r := rand.New(rand.NewSource(seed))
	b := dfg.NewBuilder()
	var prevOut []dfg.KernelID
	for i := 0; i < n; i++ {
		app := catalogue[r.Intn(len(catalogue))]
		before := b.NumKernels()
		outs := app.AppendTo(b, i)
		if len(prevOut) > 0 {
			// The new application's entry kernels are those added in this
			// round that still have no predecessors.
			for id := before; id < b.NumKernels(); id++ {
				kid := dfg.KernelID(id)
				if b.InDegree(kid) == 0 {
					for _, p := range prevOut {
						b.AddEdge(p, kid)
					}
				}
			}
		}
		prevOut = outs
	}
	return b.Build()
}

package apps

import (
	"testing"

	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/sim"
)

// paperTable1 is the membership matrix of the thesis's Table 1 (rows in
// paper order, columns per Dwarfs()).
var paperTable1 = map[string][]Dwarf{
	"Needleman Wunsch": {DynamicProgramming},
	"Matrix Inverse":   {DenseLinearAlgebra},
	"GEM":              {NBodyMethods},
	"Cholesky decomp.": {DenseLinearAlgebra, SparseLinearAlgebra},
	"BFS":              {GraphTraversal},
	"Mat.Mat. Multi.":  {DenseLinearAlgebra},
	"SRAD":             {StructuredGrids, UnstructuredGrids},
	"LavaMD":           {NBodyMethods, DenseLinearAlgebra},
	"HotSpot":          {StructuredGrids},
	"Backpropagation":  {DenseLinearAlgebra, UnstructuredGrids},
	"FFT":              {DenseLinearAlgebra, SpectralMethods},
}

func TestCatalogueMatchesTable1(t *testing.T) {
	apps := Catalogue()
	if len(apps) != 11 {
		t.Fatalf("catalogue has %d applications, want 11 (paper Table 1)", len(apps))
	}
	for _, a := range apps {
		want, ok := paperTable1[a.Name]
		if !ok {
			t.Errorf("unexpected application %q", a.Name)
			continue
		}
		if len(a.DwarfSet) != len(want) {
			t.Errorf("%s dwarfs = %v, want %v", a.Name, a.DwarfSet, want)
			continue
		}
		for _, d := range want {
			if !a.HasDwarf(d) {
				t.Errorf("%s missing dwarf %s", a.Name, d)
			}
		}
	}
}

func TestDwarfsColumns(t *testing.T) {
	if got := len(Dwarfs()); got != 8 {
		t.Fatalf("dwarf columns = %d, want 8 (paper Table 1)", got)
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("names = %d", len(names))
	}
	for _, n := range names {
		a, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
			continue
		}
		if a.NumKernels() < 1 {
			t.Errorf("%s has no kernels", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown application accepted")
	}
}

func TestApplicationGraphsValidAndSchedulable(t *testing.T) {
	sys := platform.PaperSystem(4)
	for _, a := range Catalogue() {
		g, err := a.Graph()
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s graph invalid: %v", a.Name, err)
		}
		// Every kernel must be costable against the paper lookup table.
		if _, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{}); err != nil {
			t.Errorf("%s not costable: %v", a.Name, err)
		}
	}
}

func TestSynthesisedFlagMatchesLUTCoverage(t *testing.T) {
	// Applications whose single kernel is measured directly must not be
	// marked synthesised; the four stand-ins must be.
	synth := map[string]bool{
		"LavaMD": true, "HotSpot": true, "Backpropagation": true, "FFT": true,
	}
	for _, a := range Catalogue() {
		if a.Synthesised != synth[a.Name] {
			t.Errorf("%s Synthesised = %v, want %v", a.Name, a.Synthesised, synth[a.Name])
		}
	}
}

func TestStream(t *testing.T) {
	g, err := Stream(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Independent applications: at least as many entry kernels as
	// applications with single-stage pipelines; more robustly, apps tags
	// must cover 0..11.
	seen := map[int]bool{}
	for _, k := range g.Kernels() {
		seen[k.App] = true
	}
	if len(seen) != 12 {
		t.Errorf("stream covers %d app tags, want 12", len(seen))
	}
	if _, err := Stream(0, 1); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestChainedStream(t *testing.T) {
	g, err := ChainedStream(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Chaining leaves exactly one weakly-connected start: the first
	// application's entries are the only kernels with in-degree zero.
	firstAppOnly := true
	for _, id := range g.Entries() {
		if g.Kernel(id).App != 0 {
			firstAppOnly = false
		}
	}
	if !firstAppOnly {
		t.Error("chained stream has entry kernels outside the first application")
	}
	if _, err := ChainedStream(-1, 1); err == nil {
		t.Error("negative stream accepted")
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, _ := Stream(10, 9)
	b, _ := Stream(10, 9)
	if a.NumKernels() != b.NumKernels() || a.NumEdges() != b.NumEdges() {
		t.Fatal("stream not deterministic")
	}
}

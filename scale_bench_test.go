// Benchmarks for the large-graph scale path: end-to-end runs at 1k/10k/
// 100k kernels (CSR graphs, flat cost tables) and the prepared-policy
// reuse path — a repeated-graph sweep re-running one policy instance over
// the same cost oracle versus naively re-Preparing per run.
//
//	go test -run '^$' -bench 'BenchmarkScale|BenchmarkSweep' -benchmem
package repro_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/apt"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchScale measures one full run — cost preparation, HEFT prepare,
// simulation, validation, result assembly — of a layered random DAG with n
// kernels on an 8-processor machine. B/op across the three sizes
// demonstrates the memory model's sub-linear growth per kernel (flat CSR
// and cost tables, no per-vertex allocations).
func benchScale(b *testing.B, n int) {
	b.Helper()
	benchScaleOpt(b, n, nil)
}

func benchScaleOpt(b *testing.B, n int, opt *apt.Options) {
	b.Helper()
	w, err := apt.GenerateLayeredWorkload(n, 0, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	m, err := apt.ScaleMachine(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := apt.Run(w, m, apt.HEFT(), opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Kernels) != n {
			b.Fatalf("kernels = %d", len(res.Kernels))
		}
	}
}

func BenchmarkScale1k(b *testing.B)   { benchScale(b, 1_000) }
func BenchmarkScale10k(b *testing.B)  { benchScale(b, 10_000) }
func BenchmarkScale100k(b *testing.B) { benchScale(b, 100_000) }

// BenchmarkScale1M is the million-kernel design point of the memory diet:
// B/op divided by 10⁶ kernels is the bytes-per-kernel figure the benchgate
// caps (ci/benchgate -max-bpk). One op takes tens of seconds; CI's smoke
// pass runs it once, the regression gate a few times.
func BenchmarkScale1M(b *testing.B) { benchScale(b, 1_000_000) }

// BenchmarkScalePartitioned10k runs the 10k graph through the lane-parallel
// phases (one lane per CPU): identical output to BenchmarkScale10k, so the
// pair measures exactly the lane overhead/win on the current machine.
func BenchmarkScalePartitioned10k(b *testing.B) {
	benchScaleOpt(b, 10_000, &apt.Options{Lanes: -1})
}

// sweepFixture prepares one 10k-kernel cost oracle on a 16-processor
// machine for the repeated-graph sweep benches.
func sweepFixture(b *testing.B) *sim.Costs {
	b.Helper()
	series, err := workload.ScaleSeries(10_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	g, err := workload.BuildScaleLayered(series, workload.DefaultScaleLayeredConfig(),
		rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	pb := platform.NewBuilder()
	kinds := []platform.Kind{platform.CPU, platform.GPU, platform.FPGA}
	for i := 0; i < 16; i++ {
		pb.AddProcessor(kinds[i%len(kinds)], "")
	}
	pb.SetUniformRate(platform.GBps(4))
	sys, err := pb.Build()
	if err != nil {
		b.Fatal(err)
	}
	costs, err := sim.PrepareCosts(g, sys, lut.Paper(), sim.CostConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return costs
}

// sweepConfigs is the number of configs per sweep iteration; the configs
// share the cost oracle and differ in scheduler overhead, the shape of an
// α-grid or arrival-gap scan over one graph.
const sweepConfigs = 100

// BenchmarkSweepRePrepare10k is the naive path: every config constructs a
// fresh PEFT instance, so each of the 100 runs pays the full Prepare (OCT
// table, ranks, visit order, plan) before simulating.
func BenchmarkSweepRePrepare10k(b *testing.B) {
	costs := sweepFixture(b)
	r := sim.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < sweepConfigs; j++ {
			pol := policy.NewPEFT()
			if _, err := r.Run(costs, pol, sim.Options{SchedOverheadMs: float64(j)}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepPrepared10k is the prepared path: one PEFT instance is
// reused across the 100 configs, so Prepare memoises on the shared *Costs
// and only the simulation itself runs per config. The ns/op ratio against
// BenchmarkSweepRePrepare10k is the prepared-policy speedup; allocs/op
// stays flat in sweep length because the per-run state is pooled.
func BenchmarkSweepPrepared10k(b *testing.B) {
	costs := sweepFixture(b)
	r := sim.NewRunner()
	pol := policy.NewPEFT()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < sweepConfigs; j++ {
			if _, err := r.Run(costs, pol, sim.Options{SchedOverheadMs: float64(j)}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchSweepShared10k exercises the same reuse end to end through
// the public facade: a 100-config RunBatch over one workload and machine,
// where workers memoise the cost oracle and policy instances.
func BenchmarkBatchSweepShared10k(b *testing.B) {
	w, err := apt.GenerateLayeredWorkload(10_000, 0, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	m, err := apt.ScaleMachine(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := make([]apt.RunConfig, sweepConfigs)
	for j := range cfgs {
		cfgs[j] = apt.RunConfig{
			Workload: w, Machine: m, Policy: apt.HEFT(),
			Options: &apt.Options{SchedOverheadMs: float64(j)},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apt.RunBatch(context.Background(), cfgs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

//go:build !race

package apt

// raceEnabled reports whether the race detector is compiled in; the
// million-kernel test skips under -race, where its two full runs would
// dominate the whole suite's wall time.
const raceEnabled = false

package apt

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/workload"
)

// This file is the large-scale workload surface: generators for graphs far
// beyond the paper's ~150-kernel streams (layered random DAGs and fork-join
// meshes up to 100k kernels) and machines far beyond its three processors.
// The generators bound per-kernel fan-in/width, so graph size, edge count
// and build time all grow linearly in kernel count; see README "Scaling".

// GenerateLayeredWorkload builds a bounded-fan-in layered random DAG of n
// kernels drawn from the paper's catalog: kernels spread contiguously over
// `layers` dependency levels and each non-entry kernel depends on at most
// fanIn distinct kernels of the previous layer. Pass 0 for layers or fanIn
// to select the defaults (32 layers, fan-in 3). The same seed always
// yields the same workload; edge count is at most n·fanIn.
func GenerateLayeredWorkload(n, layers, fanIn int, seed int64) (*Workload, error) {
	cfg := workload.DefaultScaleLayeredConfig()
	if layers > 0 {
		cfg.Layers = layers
	}
	if fanIn > 0 {
		cfg.FanIn = fanIn
	}
	series, err := workload.ScaleSeries(n, seed)
	if err != nil {
		return nil, err
	}
	g, err := workload.BuildScaleLayered(series, cfg, newRand(seed))
	if err != nil {
		return nil, err
	}
	return &Workload{g: g}, nil
}

// GenerateForkJoinWorkload builds a fork-join mesh of n kernels drawn from
// the paper's catalog: repeating stages of one fork kernel feeding `width`
// parallel kernels, whose outputs join into the next stage's fork. Pass 0
// for width to select the default (64). The same seed always yields the
// same workload.
func GenerateForkJoinWorkload(n, width int, seed int64) (*Workload, error) {
	cfg := workload.DefaultForkJoinConfig()
	if width > 0 {
		cfg.Width = width
	}
	series, err := workload.ScaleSeries(n, seed)
	if err != nil {
		return nil, err
	}
	g, err := workload.BuildForkJoin(series, cfg)
	if err != nil {
		return nil, err
	}
	return &Workload{g: g}, nil
}

// ScaleMachine returns a large fully connected machine: procs processors
// cycling through the paper's CPU, GPU and FPGA kinds (so the measured
// lookup table covers every processor), all linked at rateGBps gigabytes
// per second. ScaleMachine(3, r) is PaperMachine(r); platforms up to a few
// hundred processors are the intended range.
func ScaleMachine(procs int, rateGBps float64) (*Machine, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("apt: machine needs at least one processor, got %d", procs)
	}
	kinds := []platform.Kind{platform.CPU, platform.GPU, platform.FPGA}
	b := platform.NewBuilder()
	for i := 0; i < procs; i++ {
		b.AddProcessor(kinds[i%len(kinds)], "")
	}
	b.SetUniformRate(platform.GBps(rateGBps))
	sys, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Machine{sys: sys}, nil
}

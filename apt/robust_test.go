package apt

import (
	"context"
	"testing"
)

func robustSuite(t *testing.T) []*Workload {
	t.Helper()
	var ws []*Workload
	for i, n := range []int{20, 30} {
		w, err := GenerateWorkload(Type1, n, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

func TestPerturbNoiseChangesReality(t *testing.T) {
	w, err := GenerateWorkload(Type1, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := PaperMachine(4)
	// HEFT is static: its whole schedule is computed from the estimates in
	// Prepare, so noise on the actual times must never move a placement —
	// only the realised timing. (Dynamic policies may legitimately place
	// differently, because completion times shift the state they react to.)
	clean, err := Run(w, m, HEFT(), nil)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(w, m, HEFT(), &Options{Perturb: &Perturbation{
		Noise: Noise{Model: NoiseLogNormal, Frac: 0.4, Seed: 11},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.MakespanMs == clean.MakespanMs {
		t.Error("40% log-normal noise left the makespan bit-identical to the clean run")
	}
	for i := range clean.Kernels {
		if clean.Kernels[i].Proc != noisy.Kernels[i].Proc {
			t.Fatalf("kernel %d placed on %d under noise vs %d clean — noise leaked into HEFT's decisions",
				i, noisy.Kernels[i].Proc, clean.Kernels[i].Proc)
		}
	}
	// Deterministic: same options, same result.
	again, err := Run(w, m, HEFT(), &Options{Perturb: &Perturbation{
		Noise: Noise{Model: NoiseLogNormal, Frac: 0.4, Seed: 11},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if again.MakespanMs != noisy.MakespanMs {
		t.Errorf("rerun makespan %v != %v", again.MakespanMs, noisy.MakespanMs)
	}
}

func TestPerturbDegradationStretchesRun(t *testing.T) {
	w, err := GenerateWorkload(Type1, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := PaperMachine(4)
	clean, err := Run(w, m, APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every processor 3x slower for the whole horizon: the makespan must
	// grow (by up to 3x).
	var events []DegradeEvent
	for p := 0; p < m.NumProcs(); p++ {
		events = append(events, DegradeEvent{
			Kind: ProcSlowdown, Proc: p, Factor: 3, StartMs: 0, EndMs: 100 * clean.MakespanMs,
		})
	}
	deg, err := Run(w, m, APT(4), &Options{Perturb: &Perturbation{Events: events}})
	if err != nil {
		t.Fatal(err)
	}
	if deg.MakespanMs <= clean.MakespanMs {
		t.Errorf("degraded makespan %v <= clean %v", deg.MakespanMs, clean.MakespanMs)
	}
}

func TestRunRobustnessZeroNoiseHasZeroRegret(t *testing.T) {
	pts, err := RunRobustness(context.Background(), RobustnessConfig{
		Workloads: robustSuite(t),
		Machine:   PaperMachine(4),
		Policies:  []Policy{APT(4), MET(1)},
		Fracs:     []float64{0, 0.3},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4 (2 fracs x 2 policies)", len(pts))
	}
	for _, p := range pts[:2] {
		if p.Frac != 0 {
			t.Fatalf("first points should be frac 0, got %v", p.Frac)
		}
		if p.MakespanMs != p.OracleMs || p.RegretPct != 0 {
			t.Errorf("%s at frac 0: makespan %v, oracle %v, regret %v — want identical runs",
				p.Policy, p.MakespanMs, p.OracleMs, p.RegretPct)
		}
	}
	for _, p := range pts {
		if p.MakespanMs <= 0 || p.OracleMs <= 0 || p.P99SojournMs <= 0 {
			t.Errorf("point %+v has non-positive metrics", p)
		}
	}
}

func TestRunRobustnessDeterministic(t *testing.T) {
	cfg := RobustnessConfig{
		Workloads: robustSuite(t),
		Machine:   PaperMachine(4),
		Policies:  []Policy{APT(4), HEFT()},
		Fracs:     []float64{0.2},
		Model:     NoiseDrift,
		Bias:      map[ProcKind]float64{GPU: 1.3},
		Events:    []DegradeEvent{{Kind: ProcOffline, Proc: 1, StartMs: 100, EndMs: 400}},
		Seed:      99,
		Arrivals: func(w *Workload, i int) ([]float64, error) {
			return PoissonArrivals(w, 50, int64(i))
		},
	}
	a, err := RunRobustness(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunRobustness(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d drifted across reruns/worker counts: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRunRobustnessValidation(t *testing.T) {
	ws := robustSuite(t)
	m := PaperMachine(4)
	cases := []RobustnessConfig{
		{Machine: m, Policies: []Policy{APT(4)}, Fracs: []float64{0}},    // no workloads
		{Workloads: ws, Policies: []Policy{APT(4)}, Fracs: []float64{0}}, // no machine
		{Workloads: ws, Machine: m, Fracs: []float64{0}},                 // no policies
		{Workloads: ws, Machine: m, Policies: []Policy{APT(4)}},          // no fracs
		{Workloads: ws, Machine: m, Policies: []Policy{APT(4)}, Fracs: []float64{0.5}, Options: &Options{Arrivals: []float64{1}}},
	}
	for i, cfg := range cases {
		if _, err := RunRobustness(context.Background(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Invalid noise magnitude surfaces as a batch error.
	if _, err := RunRobustness(context.Background(), RobustnessConfig{
		Workloads: ws, Machine: m, Policies: []Policy{APT(4)}, Fracs: []float64{1.5},
	}); err == nil {
		t.Error("uniform frac 1.5 accepted")
	}
}

func TestParseDegradeEventsFacade(t *testing.T) {
	evs, err := ParseDegradeEvents("slow:0:2:10:20,link:0:1:4:0:5")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != ProcSlowdown || evs[1].Kind != LinkSlowdown {
		t.Fatalf("parsed %+v", evs)
	}
	if _, err := ParseDegradeEvents("nope:1"); err == nil {
		t.Error("malformed spec accepted")
	}
	if m, err := ParseNoiseModel("drift"); err != nil || m != NoiseDrift || m.String() != "drift" {
		t.Errorf("ParseNoiseModel drift = %v, %v", m, err)
	}
}

package apt_test

import (
	"fmt"
	"log"

	"repro/apt"
)

// The thesis's Figure 5 workload: one nw, three bfs, one cd. Under MET the
// FPGA serializes all bfs and cd; APT with α=8 overflows one bfs to the
// GPU and finishes 106 ms earlier.
func ExampleRun() {
	wb := apt.NewWorkload()
	wb.AddKernel("nw", 16777216)
	wb.AddKernel("bfs", 2034736)
	wb.AddKernel("bfs", 2034736)
	wb.AddKernel("bfs", 2034736)
	wb.AddKernel("cd", 250000)
	wl, err := wb.Build()
	if err != nil {
		log.Fatal(err)
	}
	machine := apt.PaperMachine(4)

	met, _ := apt.Run(wl, machine, apt.MET(1), nil)
	res, _ := apt.Run(wl, machine, apt.APT(8), nil)
	fmt.Printf("MET %.3f ms\n", met.MakespanMs)
	fmt.Printf("APT %.3f ms (%d alternative assignment)\n", res.MakespanMs, res.Alt.AltAssignments)
	// Output:
	// MET 318.093 ms
	// APT 212.093 ms (1 alternative assignment)
}

// Generated workloads are deterministic per seed.
func ExampleGenerateWorkload() {
	wl, err := apt.GenerateWorkload(apt.Type2, 46, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d kernels, %d dependencies\n", wl.NumKernels(), wl.NumDeps())
	// Output:
	// 46 kernels, 65 dependencies
}

// ParsePolicy resolves command-line policy names.
func ExampleParsePolicy() {
	p, err := apt.ParsePolicy("apt-r", 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Name())
	// Output:
	// APT-R
}

package apt

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func mustKernelStream(t *testing.T, n int, seed int64) *Workload {
	t.Helper()
	w, err := GenerateKernelStream(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestArrivalValidationRun pins the public-API contract: wrong-length,
// negative and non-monotone arrival schedules each produce a typed
// *ArrivalError from Run instead of a panic or silent acceptance.
func TestArrivalValidationRun(t *testing.T) {
	w := mustKernelStream(t, 3, 1)
	m := PaperMachine(4)
	cases := []struct {
		name     string
		arrivals []float64
		reason   string
		kernel   int
	}{
		{"wrong length", []float64{1, 2}, ArrivalLength, -1},
		{"negative", []float64{0, -5, 6}, ArrivalNegative, 1},
		{"NaN", []float64{0, math.NaN(), 6}, ArrivalNegative, 1},
		{"non-monotone", []float64{0, 9, 6}, ArrivalNonMonotone, 2},
	}
	for _, c := range cases {
		_, err := Run(w, m, APT(4), &Options{Arrivals: c.arrivals})
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var ae *ArrivalError
		if !errors.As(err, &ae) {
			t.Errorf("%s: error %v is not an *ArrivalError", c.name, err)
			continue
		}
		if ae.Reason != c.reason || ae.Kernel != c.kernel {
			t.Errorf("%s: got reason %q kernel %d, want %q kernel %d",
				c.name, ae.Reason, ae.Kernel, c.reason, c.kernel)
		}
	}
	// A valid schedule still runs.
	if _, err := Run(w, m, APT(4), &Options{Arrivals: []float64{0, 1, 2}}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

// TestArrivalValidationRunBatch checks that batch failures are
// config-indexed: the *ConfigError names the bad config and unwraps to the
// *ArrivalError.
func TestArrivalValidationRunBatch(t *testing.T) {
	w := mustKernelStream(t, 3, 1)
	m := PaperMachine(4)
	good := &Options{Arrivals: []float64{0, 1, 2}}
	bad := &Options{Arrivals: []float64{0, 4, 3}}
	results, err := RunBatch(context.Background(), []RunConfig{
		{Workload: w, Machine: m, Policy: APT(4), Options: good},
		{Workload: w, Machine: m, Policy: APT(4), Options: bad},
	}, nil)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if results[0] == nil || results[1] != nil {
		t.Errorf("results = [%v, %v]; want [ok, nil]", results[0], results[1])
	}
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("error %v does not carry config index 1", err)
	}
	var ae *ArrivalError
	if !errors.As(err, &ae) || ae.Reason != ArrivalNonMonotone {
		t.Fatalf("error %v does not unwrap to a non-monotone *ArrivalError", err)
	}
}

func TestRunStreamPoisson(t *testing.T) {
	shards, err := MakeStream(600, 200, 42, func(w *Workload, seed int64) ([]float64, error) {
		return PoissonArrivals(w, 5, seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(shards))
	}
	res, err := RunStream(context.Background(), shards, PaperMachine(4), APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels != 600 {
		t.Errorf("kernels = %d, want 600", res.Kernels)
	}
	if len(res.SojournsMs) != 600 || res.Sojourn.Count != 600 {
		t.Errorf("sojourn accounting: raw %d, summary count %d", len(res.SojournsMs), res.Sojourn.Count)
	}
	if res.Sojourn.P99Ms < res.Sojourn.P50Ms || res.Sojourn.MaxMs < res.Sojourn.P99Ms {
		t.Errorf("sojourn percentiles inconsistent: %+v", res.Sojourn)
	}
	if res.Sojourn.P50Ms <= 0 {
		t.Errorf("p50 sojourn = %v, want > 0", res.Sojourn.P50Ms)
	}
	if res.QueueWait.MeanMs > res.Sojourn.MeanMs {
		t.Errorf("queue wait mean %v exceeds sojourn mean %v", res.QueueWait.MeanMs, res.Sojourn.MeanMs)
	}
	if res.OfferedPerSec <= 0 || res.CompletedPerSec <= 0 {
		t.Errorf("rates = %v offered, %v completed; want positive", res.OfferedPerSec, res.CompletedPerSec)
	}
	for i, ss := range res.Shards {
		if ss.Kernels != 200 {
			t.Errorf("shard %d kernels = %d", i, ss.Kernels)
		}
		if ss.MakespanMs <= 0 || ss.ArrivalSpanMs <= 0 {
			t.Errorf("shard %d spans: makespan %v, arrival %v", i, ss.MakespanMs, ss.ArrivalSpanMs)
		}
	}
}

// TestRunStreamDeterministic pins the acceptance criterion: identical
// results across reruns of the same seed, regardless of worker count.
func TestRunStreamDeterministic(t *testing.T) {
	build := func() []StreamShard {
		shards, err := MakeStream(400, 100, 7, func(w *Workload, seed int64) ([]float64, error) {
			return BurstyArrivals(w, BurstyConfig{BurstGapMs: 1, BurstMs: 20, IdleMs: 100}, seed)
		})
		if err != nil {
			t.Fatal(err)
		}
		return shards
	}
	a, err := RunStream(context.Background(), build(), PaperMachine(4), APT(4), &StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStream(context.Background(), build(), PaperMachine(4), APT(4), &StreamOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sojourn != b.Sojourn || a.QueueWait != b.QueueWait {
		t.Errorf("summaries differ across worker counts:\n%+v\n%+v", a.Sojourn, b.Sojourn)
	}
	if a.SimulatedMs != b.SimulatedMs || a.LambdaTotalMs != b.LambdaTotalMs {
		t.Errorf("aggregates differ: %v/%v vs %v/%v", a.SimulatedMs, a.LambdaTotalMs, b.SimulatedMs, b.LambdaTotalMs)
	}
	for i := range a.SojournsMs {
		if a.SojournsMs[i] != b.SojournsMs[i] {
			t.Fatalf("raw sojourn %d differs", i)
		}
	}
}

func TestRunStreamShardErrorsAreIndexed(t *testing.T) {
	good := StreamShard{Workload: mustKernelStream(t, 2, 1), Arrivals: []float64{0, 1}}
	bad := StreamShard{Workload: mustKernelStream(t, 2, 2), Arrivals: []float64{5, 1}}
	_, err := RunStream(context.Background(), []StreamShard{good, bad}, PaperMachine(4), APT(4), nil)
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("error %v does not carry shard index 1", err)
	}
	var ae *ArrivalError
	if !errors.As(err, &ae) || ae.Reason != ArrivalNonMonotone {
		t.Fatalf("error %v does not unwrap to *ArrivalError", err)
	}
	// Pacing via StreamOptions.Options.Arrivals is a misuse, not silent.
	if _, err := RunStream(context.Background(), []StreamShard{good}, PaperMachine(4), APT(4),
		&StreamOptions{Options: &Options{Arrivals: []float64{0, 1}}}); err == nil {
		t.Error("StreamOptions.Options.Arrivals accepted")
	}
}

func TestTraceStreamRebasesWindows(t *testing.T) {
	// 4 entries with a large global offset and an inter-window gap; window
	// size 2 gives two shards, both rebased to start at 0.
	trace := "# trace\n1000000\n1000001\n5000000\n5000002\n"
	times, err := ReadTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	shards, err := TraceStream(times, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(shards))
	}
	res, err := RunStream(context.Background(), shards, PaperMachine(4), APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels != 4 {
		t.Errorf("kernels = %d, want 4", res.Kernels)
	}
	// Rebasing: no shard simulates the 1000s lead-in or the window gap —
	// makespans stay at kernel-execution scale, far below the raw offsets.
	for i, ss := range res.Shards {
		if ss.MakespanMs > 100000 {
			t.Errorf("shard %d makespan %v, want rebased (no global offset)", i, ss.MakespanMs)
		}
	}
	if math.Abs(res.Shards[0].ArrivalSpanMs-1) > 1e-9 || math.Abs(res.Shards[1].ArrivalSpanMs-2) > 1e-9 {
		t.Errorf("arrival spans = %v, %v; want 1, 2", res.Shards[0].ArrivalSpanMs, res.Shards[1].ArrivalSpanMs)
	}
	// The offered rate covers the whole trace span — including the gap
	// between windows — not just the summed in-window spans.
	if math.Abs(res.ArrivalSpanMs-4000002) > 1e-6 {
		t.Errorf("stream arrival span = %v, want 4000002 (global trace span)", res.ArrivalSpanMs)
	}
	if want := 4.0 / 4000002 * 1000; math.Abs(res.OfferedPerSec-want) > 1e-9 {
		t.Errorf("offered rate = %v, want %v (trace span, not window spans)", res.OfferedPerSec, want)
	}
}

func TestRunStreamAcrossArrivalShapes(t *testing.T) {
	m := PaperMachine(4)
	gens := map[string]func(w *Workload, seed int64) ([]float64, error){
		"poisson": func(w *Workload, seed int64) ([]float64, error) { return PoissonArrivals(w, 3, seed) },
		"bursty": func(w *Workload, seed int64) ([]float64, error) {
			return BurstyArrivals(w, BurstyConfig{BurstGapMs: 1, BurstMs: 30, IdleMs: 60}, seed)
		},
		"diurnal": func(w *Workload, seed int64) ([]float64, error) {
			return DiurnalArrivals(w, DiurnalConfig{MeanGapMs: 3, PeriodMs: 200, Amplitude: 0.8}, seed)
		},
	}
	for name, gen := range gens {
		shards, err := MakeStream(200, 100, 5, gen)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := RunStream(context.Background(), shards, m, APT(4), nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Sojourn.Count != 200 || res.Sojourn.P99Ms <= 0 {
			t.Errorf("%s: sojourn = %+v", name, res.Sojourn)
		}
	}
}

func TestResultLatencyFieldsThreaded(t *testing.T) {
	w := mustKernelStream(t, 20, 9)
	arr, err := PoissonArrivals(w, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, PaperMachine(4), APT(4), &Options{Arrivals: arr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sojourn.Count != 20 || res.QueueWait.Count != 20 {
		t.Fatalf("summary counts = %d/%d", res.Sojourn.Count, res.QueueWait.Count)
	}
	for _, k := range res.Kernels {
		if math.Abs(k.SojournMs-(k.FinishMs-k.ArrivalMs)) > 1e-9 {
			t.Errorf("kernel %d sojourn %v != finish-arrival %v", k.Kernel, k.SojournMs, k.FinishMs-k.ArrivalMs)
		}
		if math.Abs(k.QueueWaitMs-(k.ExecStartMs-k.ArrivalMs)) > 1e-9 {
			t.Errorf("kernel %d queue wait mismatch", k.Kernel)
		}
		if k.ArrivalMs != arr[k.Kernel] {
			t.Errorf("kernel %d arrival %v != schedule %v", k.Kernel, k.ArrivalMs, arr[k.Kernel])
		}
	}
}

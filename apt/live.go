package apt

import "repro/online"

// Live serving re-exports: the repro/online package runs the APT rule
// against real work at runtime (a sharded live scheduler with an HTTP
// front end in cmd/aptserve), and reports the same latency shape the
// simulator's streaming results use — count/mean/extrema plus
// p50/p90/p95/p99, in milliseconds. These aliases let code that consumes
// simulated Result.Sojourn summaries switch to live LiveStats.Sojourn
// telemetry without importing a second package.

// LiveStats is the live scheduler's counter-and-latency snapshot
// (online.Stats): submissions, completions, rejections, per-processor
// throughput, the current (possibly auto-tuned) α and sojourn /
// queue-wait percentile summaries.
type LiveStats = online.Stats

// LiveLatency is one live latency distribution summary
// (online.LatencySummary), the serving-side analogue of LatencyStats.
type LiveLatency = online.LatencySummary

package apt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGenerateApplicationStream(t *testing.T) {
	w, err := GenerateApplicationStream(10, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumKernels() < 10 {
		t.Errorf("kernels = %d, want >= 10 (one per application minimum)", w.NumKernels())
	}
	chained, err := GenerateApplicationStream(10, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if chained.NumDeps() <= w.NumDeps() {
		t.Errorf("chained deps = %d, want more than unchained %d", chained.NumDeps(), w.NumDeps())
	}
	if _, err := GenerateApplicationStream(0, 1, false); err == nil {
		t.Error("empty stream accepted")
	}
	// Streams must be schedulable end to end.
	res, err := Run(chained, PaperMachine(4), APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanMs <= 0 {
		t.Error("non-positive makespan")
	}
}

func TestApplicationNames(t *testing.T) {
	names := ApplicationNames()
	if len(names) != 11 {
		t.Fatalf("applications = %d, want 11 (paper Table 1)", len(names))
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"Needleman Wunsch", "LavaMD", "FFT"} {
		if !found[want] {
			t.Errorf("missing application %q", want)
		}
	}
}

func TestArrivalsOption(t *testing.T) {
	w, err := GenerateWorkload(Type1, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := PaperMachine(4)
	arr, err := PoissonArrivals(w, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 20 {
		t.Fatalf("arrivals = %d", len(arr))
	}
	paced, err := Run(w, m, APT(4), &Options{Arrivals: arr})
	if err != nil {
		t.Fatal(err)
	}
	unpaced, err := Run(w, m, APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pacing spreads the stream: makespan grows, total λ shrinks.
	if paced.MakespanMs <= unpaced.MakespanMs {
		t.Errorf("paced makespan %v <= unpaced %v", paced.MakespanMs, unpaced.MakespanMs)
	}
	if paced.LambdaTotalMs >= unpaced.LambdaTotalMs {
		t.Errorf("paced λ %v >= unpaced %v", paced.LambdaTotalMs, unpaced.LambdaTotalMs)
	}

	periodic, err := PeriodicArrivals(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if periodic[1]-periodic[0] != 10 {
		t.Errorf("periodic gap = %v", periodic[1]-periodic[0])
	}
}

func TestChromeTraceOutput(t *testing.T) {
	w, _ := GenerateWorkload(Type2, 15, 2)
	res, err := Run(w, PaperMachine(4), APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(events) < 15 {
		t.Errorf("trace has %d events, want >= 15", len(events))
	}
}

func TestEnergyEstimate(t *testing.T) {
	w, _ := GenerateWorkload(Type1, 20, 5)
	m := PaperMachine(4)
	apt4, err := Run(w, m, APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := apt4.EnergyJ(nil)
	if err != nil {
		t.Fatal(err)
	}
	if j <= 0 {
		t.Fatalf("energy = %v", j)
	}
	// Custom model: doubling all draws doubles the estimate.
	double := &PowerModel{
		ActiveW: map[ProcKind]float64{CPU: 190, GPU: 450, FPGA: 50},
		IdleW:   map[ProcKind]float64{CPU: 60, GPU: 50, FPGA: 20},
	}
	j2, err := apt4.EnergyJ(double)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := j2 / j; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("doubled power model ratio = %v, want 2", ratio)
	}
	// Invalid model (missing kinds) errors.
	if _, err := apt4.EnergyJ(&PowerModel{
		ActiveW: map[ProcKind]float64{CPU: 1},
		IdleW:   map[ProcKind]float64{CPU: 1},
	}); err == nil {
		t.Error("incomplete power model accepted")
	}
}

func TestOLBAndARPolicies(t *testing.T) {
	w, _ := GenerateWorkload(Type1, 25, 4)
	m := PaperMachine(4)
	olb, err := Run(w, m, OLB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Run(w, m, AR(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Run(w, m, APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if olb.Policy != "OLB" || ar.Policy != "AR" {
		t.Errorf("policies = %q/%q", olb.Policy, ar.Policy)
	}
	if best.MakespanMs >= olb.MakespanMs {
		t.Errorf("APT (%v) should beat OLB (%v)", best.MakespanMs, olb.MakespanMs)
	}
	if !strings.Contains(strings.Join(PolicyNames(), ","), "olb") {
		t.Error("olb missing from PolicyNames")
	}
}

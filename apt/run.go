package apt

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// newRand is a tiny indirection so the facade never leaks math/rand types.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Options tunes a simulation run. The zero value (or nil) selects the
// paper's model: the measured lookup table, 4 bytes per element,
// concurrent-link transfers and no per-assignment scheduler overhead.
type Options struct {
	// ElemBytes is the size of one data element in bytes (default 4).
	ElemBytes float64
	// SerialTransfers makes transfers from multiple predecessors serialize
	// instead of proceeding concurrently.
	SerialTransfers bool
	// SchedOverheadMs charges a fixed delay per assignment, modelling the
	// scheduler-processing and scheduler-to-processor communication parts
	// of the paper's λ.
	SchedOverheadMs float64
	// Arrivals optionally paces the stream: kernel k is invisible to the
	// scheduler before Arrivals[k] milliseconds. Build schedules with
	// PoissonArrivals or PeriodicArrivals, or supply custom times (one
	// non-negative entry per kernel).
	Arrivals []float64
	// Perturb optionally separates the scheduler's model from the
	// platform's reality: estimate-error noise on the lookup table the
	// hardware follows (policies keep deciding with the clean table) and
	// dynamic platform-degradation events. Nil means exact estimates on a
	// steady platform — the thesis's model. See Perturbation and
	// RunRobustness.
	Perturb *Perturbation
	// Lanes fans the trajectory-independent phases of a run — cost-table
	// preparation, schedule validation, latency sorting and result
	// assembly — across parallel lanes. The event trajectory itself stays
	// sequential (policies observe global state at every decision), so
	// results are byte-identical for every lane count: 0 or 1 serial, > 1
	// that many lanes, < 0 one per CPU. Worth it from ~10k kernels up.
	Lanes int
	// Float32Costs stores the execution-time matrix in float32, halving
	// the cost table's per-kernel footprint. Lookups widen the same stored
	// value everywhere so runs stay fully deterministic, but low-order
	// result bits differ from the default float64 table — leave this off
	// where byte-compatibility with existing outputs matters. See
	// ARCHITECTURE.md "Memory layout & partitioned execution".
	Float32Costs bool
}

// PoissonArrivals returns a streaming-arrival schedule for the workload:
// kernels arrive in stream order separated by exponential gaps with the
// given mean (milliseconds).
func PoissonArrivals(w *Workload, meanGapMs float64, seed int64) ([]float64, error) {
	return workload.PoissonArrivals(w.g, meanGapMs, seed)
}

// PeriodicArrivals returns a streaming-arrival schedule with a fixed gap
// (milliseconds) between consecutive kernels.
func PeriodicArrivals(w *Workload, gapMs float64) ([]float64, error) {
	return workload.PeriodicArrivals(w.g, gapMs)
}

// BurstyConfig shapes BurstyArrivals: mean in-burst gap, mean burst
// duration and mean idle duration, all in milliseconds.
type BurstyConfig = workload.BurstyConfig

// BurstyArrivals returns a Markov-modulated on/off arrival schedule:
// Poisson arrivals with mean gap cfg.BurstGapMs while a burst is on,
// silence while it is off, with exponentially distributed burst and idle
// durations (means cfg.BurstMs and cfg.IdleMs). The classic bursty-traffic
// model: same average rate as a Poisson stream, much harder on tails.
func BurstyArrivals(w *Workload, cfg BurstyConfig, seed int64) ([]float64, error) {
	return workload.BurstyArrivals(w.g, cfg, seed)
}

// DiurnalConfig shapes DiurnalArrivals: mean gap at the average rate, the
// rate cycle's period, and the relative rate swing in [0, 1).
type DiurnalConfig = workload.DiurnalConfig

// DiurnalArrivals returns a non-homogeneous Poisson arrival schedule whose
// rate follows a sinusoidal "time of day" cycle.
func DiurnalArrivals(w *Workload, cfg DiurnalConfig, seed int64) ([]float64, error) {
	return workload.DiurnalArrivals(w.g, cfg, seed)
}

// TraceArrivals replays a recorded arrival trace (one non-negative,
// non-decreasing millisecond timestamp per line; '#' comments and blank
// lines skipped) against the workload. The trace must hold exactly one
// timestamp per kernel.
func TraceArrivals(w *Workload, r io.Reader) ([]float64, error) {
	return workload.TraceArrivals(w.g, r)
}

// ReadTrace parses a timestamp trace without binding it to a workload;
// use with TraceStream to shard a long trace into stream windows.
func ReadTrace(r io.Reader) ([]float64, error) {
	return workload.ReadTrace(r)
}

// Arrival-schedule validation reasons reported by ArrivalError.
const (
	ArrivalLength      = "length"       // schedule length != kernel count
	ArrivalNegative    = "negative"     // negative or non-finite time
	ArrivalNonMonotone = "non-monotone" // time precedes its predecessor
)

// ArrivalError reports an invalid Options.Arrivals schedule. Run returns
// it directly; RunBatch and RunStream wrap it in a *ConfigError carrying
// the config (shard) index, so batch callers can attribute the failure.
type ArrivalError struct {
	// Kernel is the offending kernel index, or -1 for a length mismatch.
	Kernel int
	// Time is the offending arrival time (0 for a length mismatch).
	Time float64
	// Got and Want are the schedule length and the workload kernel count.
	Got, Want int
	// Reason is one of ArrivalLength, ArrivalNegative, ArrivalNonMonotone.
	Reason string
}

// Error implements error.
func (e *ArrivalError) Error() string {
	switch e.Reason {
	case ArrivalLength:
		return fmt.Sprintf("apt: %d arrival times for %d kernels", e.Got, e.Want)
	case ArrivalNegative:
		return fmt.Sprintf("apt: kernel %d has invalid arrival time %v", e.Kernel, e.Time)
	default:
		return fmt.Sprintf("apt: kernel %d arrival time %v precedes its predecessor (arrivals must be non-decreasing in stream order)",
			e.Kernel, e.Time)
	}
}

// validateArrivals checks an arrival schedule against a kernel count. An
// empty schedule (no pacing) is always valid.
func validateArrivals(kernels int, arrivals []float64) error {
	if len(arrivals) == 0 {
		return nil
	}
	if len(arrivals) != kernels {
		return &ArrivalError{Kernel: -1, Got: len(arrivals), Want: kernels, Reason: ArrivalLength}
	}
	prev := 0.0
	for i, at := range arrivals {
		if at < 0 || math.IsNaN(at) || math.IsInf(at, 0) {
			return &ArrivalError{Kernel: i, Time: at, Got: len(arrivals), Want: kernels, Reason: ArrivalNegative}
		}
		if at < prev {
			return &ArrivalError{Kernel: i, Time: at, Got: len(arrivals), Want: kernels, Reason: ArrivalNonMonotone}
		}
		prev = at
	}
	return nil
}

// KernelRun describes one kernel's lifecycle in a finished run. Times are
// milliseconds since the run started. Kernel and processor indices are
// int32, matching the engine's 32-bit ID space — at a million kernels per
// run the record layout is what bounds resident memory.
type KernelRun struct {
	Kernel      int32
	Name        string
	Proc        int32
	ProcName    string
	ArrivalMs   float64
	ReadyMs     float64
	ExecStartMs float64
	FinishMs    float64
	LambdaMs    float64
	TransferMs  float64
	// SojournMs is the open-system latency arrival → finish; QueueWaitMs
	// is arrival → exec-start (dependency wait, queueing and staging).
	SojournMs   float64
	QueueWaitMs float64
}

// ProcUse is one processor's time accounting.
type ProcUse struct {
	Proc    int32
	Name    string
	Kernels int
	ExecMs  float64
	XferMs  float64
	IdleMs  float64
}

// AltStats reports how often APT used an alternative processor (zero for
// other policies).
type AltStats struct {
	Assignments    int
	AltAssignments int
	ByKernel       map[string]int
}

// Result is everything a simulation reports.
type Result struct {
	Policy        string
	MakespanMs    float64
	LambdaTotalMs float64
	LambdaAvgMs   float64
	LambdaStdMs   float64
	// Sojourn is the distribution of per-kernel arrival→finish latency,
	// QueueWait of arrival→exec-start delay — the open-system view of the
	// run (under the closed model, arrival is 0 for every kernel).
	Sojourn   LatencyStats
	QueueWait LatencyStats
	Kernels   []KernelRun
	Procs     []ProcUse
	Alt       AltStats

	res *sim.Result
	sys *platform.System
	wl  *Workload
}

// Run simulates the workload on the machine under the policy and returns
// the metrics. A nil opts selects the defaults.
func Run(w *Workload, m *Machine, p Policy, opts *Options) (*Result, error) {
	if w == nil || m == nil {
		return nil, fmt.Errorf("apt: Run requires a workload and a machine")
	}
	run, pol, err := prepareRun(RunConfig{Workload: w, Machine: m, Policy: p, Options: opts}, nil)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(run.Costs, pol, run.Opt)
	if err != nil {
		return nil, err
	}
	if err := res.ValidateLanes(w.g, m.sys, run.Opt.Lanes); err != nil {
		return nil, fmt.Errorf("apt: internal error, invalid schedule: %w", err)
	}
	return assemble(res, w, m, pol, run.Opt.Lanes), nil
}

// Gantt renders the schedule as a time-ordered event log.
func (r *Result) Gantt() string {
	var sb strings.Builder
	if err := report.Gantt(&sb, r.res, r.wl.g, r.sys); err != nil {
		return fmt.Sprintf("gantt error: %v", err)
	}
	return sb.String()
}

// Utilisation renders per-processor busy/transfer/idle accounting.
func (r *Result) Utilisation() string {
	var sb strings.Builder
	if err := report.Utilisation(&sb, r.res, r.sys); err != nil {
		return fmt.Sprintf("utilisation error: %v", err)
	}
	return sb.String()
}

// ChromeTrace writes the schedule in Chrome's trace-event format; load the
// output in chrome://tracing or https://ui.perfetto.dev to inspect it.
func (r *Result) ChromeTrace(w io.Writer) error {
	return report.WriteChromeTrace(w, r.res, r.wl.g, r.sys)
}

// WriteTrace exports a run's placements in Chrome's trace-event format —
// one lane per processor, one slice per kernel, each slice carrying the
// queue-wait and estimate-vs-actual placement-quality args. It is the
// package-level form of Result.ChromeTrace, for callers holding the
// Result behind an interface or passing the writer separately.
func WriteTrace(w io.Writer, r *Result) error {
	if r == nil || r.res == nil {
		return fmt.Errorf("apt: WriteTrace requires a completed run result")
	}
	return report.WriteChromeTrace(w, r.res, r.wl.g, r.sys)
}

// EnergyJ estimates the schedule's total energy in joules under the given
// active/idle power draws per processor kind. A nil model selects
// representative defaults for the paper's CPU/GPU/FPGA classes (the thesis
// motivates power efficiency but reports no power numbers; see
// platform.DefaultPowerModel).
func (r *Result) EnergyJ(model *PowerModel) (float64, error) {
	pm := platform.DefaultPowerModel()
	if model != nil {
		pm = platform.PowerModel{ActiveW: map[platform.Kind]float64{}, IdleW: map[platform.Kind]float64{}}
		for k, v := range model.ActiveW { //lint:ordered — per-key map copy; writes are independent
			pm.ActiveW[platform.Kind(k)] = v
		}
		for k, v := range model.IdleW { //lint:ordered — per-key map copy; writes are independent
			pm.IdleW[platform.Kind(k)] = v
		}
	}
	if err := pm.Validate(r.sys); err != nil {
		return 0, err
	}
	var total float64
	for _, st := range r.res.ProcStats {
		kind := r.sys.KindOf(st.Proc)
		total += pm.EnergyJ(kind, st.ExecMs+st.XferMs, st.IdleMs)
	}
	return total, nil
}

// PowerModel assigns watt draws per processor kind for EnergyJ.
type PowerModel struct {
	ActiveW map[ProcKind]float64
	IdleW   map[ProcKind]float64
}

// TuneResult is one evaluated candidate of TuneAlpha.
type TuneResult struct {
	Alpha      float64
	MakespanMs float64
}

// TuneAlpha sweeps candidate flexibility factors over calibration
// workloads on the machine and returns the α with the lowest mean
// makespan, plus every evaluated point. Nil candidates selects a default
// grid spanning 1–32. This operationalises the thesis's conclusion that
// the threshold must be tuned to the degree of heterogeneity of the
// system.
func TuneAlpha(calibration []*Workload, m *Machine, candidates []float64, opts *Options) (float64, []TuneResult, error) {
	if m == nil {
		return 0, nil, fmt.Errorf("apt: TuneAlpha requires a machine")
	}
	if opts == nil {
		opts = &Options{}
	}
	mode := sim.TransferMax
	if opts.SerialTransfers {
		mode = sim.TransferSum
	}
	var costs []*sim.Costs
	for i, w := range calibration {
		if w == nil {
			return 0, nil, fmt.Errorf("apt: calibration workload %d is nil", i)
		}
		c, err := sim.PrepareCosts(w.g, m.sys, lut.Paper(), sim.CostConfig{
			ElemBytes: opts.ElemBytes,
			Mode:      mode,
		})
		if err != nil {
			return 0, nil, err
		}
		costs = append(costs, c)
	}
	best, points, err := core.TuneAlpha(costs, candidates, sim.Options{SchedOverheadMs: opts.SchedOverheadMs})
	if err != nil {
		return 0, nil, err
	}
	out := make([]TuneResult, len(points))
	for i, p := range points {
		out[i] = TuneResult{Alpha: p.Alpha, MakespanMs: p.MakespanMs}
	}
	return best, out, nil
}

// Replay returns a policy that re-applies a previous result's placement
// decisions while timing is recomputed — what-if analysis across machines
// (same processor count), element sizes or transfer modes.
func Replay(source *Result) Policy {
	return Policy{name: "REPLAY", replaySource: source}
}

// Compare runs every given policy on the same workload and machine and
// returns results in the same order.
func Compare(w *Workload, m *Machine, policies []Policy, opts *Options) ([]*Result, error) {
	out := make([]*Result, len(policies))
	for i, p := range policies {
		res, err := Run(w, m, p, opts)
		if err != nil {
			return nil, fmt.Errorf("apt: policy %s: %w", p.Name(), err)
		}
		out[i] = res
	}
	return out, nil
}

// KernelNames lists the kernels available in the paper's lookup table,
// with their admissible data sizes.
func KernelNames() map[string][]int64 {
	t := lut.Paper()
	out := map[string][]int64{}
	for _, k := range t.Kernels() {
		out[k] = t.Sizes(k)
	}
	return out
}

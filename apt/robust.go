package apt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/perturb"
	"repro/internal/platform"
	"repro/internal/stats"
)

// NoiseModel selects the shape of the estimate error a Perturbation
// injects. The zero value is NoiseUniform, so the zero Noise (Frac 0) is
// the identity.
type NoiseModel int

// The estimate-error models: independent uniform factors in [1-Frac,
// 1+Frac], median-1 log-normal factors exp(Frac·N(0,1)), and
// stale-estimate drift — a per-kind multiplicative random walk across
// lookup-table entries, modelling a table that aged between measurement
// and use.
const (
	NoiseUniform   NoiseModel = NoiseModel(perturb.NoiseUniform)
	NoiseLogNormal NoiseModel = NoiseModel(perturb.NoiseLogNormal)
	NoiseDrift     NoiseModel = NoiseModel(perturb.NoiseDrift)
)

// String names the model.
func (m NoiseModel) String() string { return perturb.NoiseModel(m).String() }

// ParseNoiseModel resolves "uniform", "lognormal" or "drift".
func ParseNoiseModel(s string) (NoiseModel, error) {
	m, err := perturb.ParseNoiseModel(s)
	return NoiseModel(m), err
}

// Noise describes estimate error: what the hardware actually does relative
// to the lookup table every policy trusts. The zero value is exact
// estimates.
type Noise struct {
	// Model is the error shape (default NoiseUniform).
	Model NoiseModel
	// Frac is the error magnitude: uniform half-width in [0,1), or the
	// log-normal / drift-step sigma. 0 disables the random component.
	Frac float64
	// Bias multiplies the actual times of a processor kind by a fixed
	// factor: Bias[GPU] = 1.3 means GPU kernels really run 30% slower than
	// estimated ("the GPU estimates are 30% optimistic").
	Bias map[ProcKind]float64
	// Seed fixes the random draws; the same Noise always perturbs
	// identically.
	Seed int64
}

// memoKey canonically encodes the noise (model, magnitude, seed, sorted
// bias entries) so worker memos can key the perturbed tables it produces;
// Apply is deterministic, so equal keys always yield equal tables.
func (n Noise) memoKey() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%g|%d", int(n.Model), n.Frac, n.Seed)
	kinds := make([]string, 0, len(n.Bias))
	for k := range n.Bias { //lint:ordered — collected then sorted just below
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&sb, "|%s=%g", k, n.Bias[ProcKind(k)])
	}
	return sb.String()
}

// internal converts the facade type.
func (n Noise) internal() perturb.Noise {
	out := perturb.Noise{Model: perturb.NoiseModel(n.Model), Frac: n.Frac, Seed: n.Seed}
	if len(n.Bias) > 0 {
		out.Bias = make(map[platform.Kind]float64, len(n.Bias))
		for k, v := range n.Bias { //lint:ordered — per-key map copy; writes are independent
			out.Bias[platform.Kind(k)] = v
		}
	}
	return out
}

// DegradeKind distinguishes platform-degradation event types.
type DegradeKind int

// Platform-degradation events: a processor running Factor× slower over a
// window, a processor fully offline over a window (in-flight work stalls
// and resumes; it cannot receive transfers), and a symmetric link with
// Factor× less bandwidth over a window.
const (
	ProcSlowdown DegradeKind = DegradeKind(perturb.ProcSlowdown)
	ProcOffline  DegradeKind = DegradeKind(perturb.ProcOffline)
	LinkSlowdown DegradeKind = DegradeKind(perturb.LinkSlowdown)
)

// DegradeEvent is one degradation episode over [StartMs, EndMs). Policies
// never observe events — only their consequences through completion times —
// which is exactly how a production scheduler experiences a degrading
// platform.
type DegradeEvent struct {
	Kind DegradeKind
	// Proc is the affected processor index (ProcSlowdown, ProcOffline).
	Proc int
	// From and To are the link endpoints (LinkSlowdown), both directions.
	From, To int
	// StartMs and EndMs bound the window; EndMs must be finite.
	StartMs, EndMs float64
	// Factor is the slowdown (>= 1); ignored for ProcOffline.
	Factor float64
}

// ParseDegradeEvents parses a comma-separated degradation spec:
//
//	slow:P:F:START:END   processor P runs F× slower during [START, END) ms
//	off:P:START:END      processor P is offline during [START, END) ms
//	link:A:B:F:START:END link A<->B has F× less bandwidth during the window
//
// Example: "slow:1:2:1000:5000,off:2:8000:9000".
func ParseDegradeEvents(spec string) ([]DegradeEvent, error) {
	evs, err := perturb.ParseEvents(spec)
	if err != nil {
		return nil, err
	}
	out := make([]DegradeEvent, len(evs))
	for i, e := range evs {
		out[i] = DegradeEvent{
			Kind: DegradeKind(e.Kind), Proc: int(e.Proc), From: int(e.From), To: int(e.To),
			StartMs: e.StartMs, EndMs: e.EndMs, Factor: e.Factor,
		}
	}
	return out, nil
}

// internalEvents converts facade events; validation happens in
// perturb.NewSchedule.
func internalEvents(evs []DegradeEvent) []perturb.Event {
	out := make([]perturb.Event, len(evs))
	for i, e := range evs {
		out[i] = perturb.Event{
			Kind: perturb.EventKind(e.Kind), Proc: platform.ProcID(e.Proc),
			From: platform.ProcID(e.From), To: platform.ProcID(e.To),
			StartMs: e.StartMs, EndMs: e.EndMs, Factor: e.Factor,
		}
	}
	return out
}

// Perturbation bundles everything that can separate the scheduler's model
// from the platform's reality in one run: estimate noise on the lookup
// table and dynamic degradation events. Attach one via Options.Perturb.
type Perturbation struct {
	// Noise perturbs the actual execution times away from the estimates.
	Noise Noise
	// Events degrade the platform dynamically while the run executes.
	Events []DegradeEvent
	// Oracle gives the policy the perturbed table too (perfect
	// information): the noise component disappears from its decisions.
	// Degradation events still apply — no policy can see the future.
	// RunRobustness uses this as the regret baseline.
	Oracle bool
}

// RobustnessConfig parameterises RunRobustness. Workloads, Machine,
// Policies and Fracs are required.
type RobustnessConfig struct {
	// Workloads is the evaluation suite; reported metrics aggregate over
	// it.
	Workloads []*Workload
	Machine   *Machine
	// Policies are compared at every noise level.
	Policies []Policy
	// Fracs is the sweep axis: one noise magnitude per operating point
	// (include 0 for the exact-estimate baseline).
	Fracs []float64
	// Model selects the noise shape (default NoiseUniform).
	Model NoiseModel
	// Bias applies fixed per-kind estimate bias at every point, on top of
	// Fracs.
	Bias map[ProcKind]float64
	// Events injects the same platform degradation at every point.
	Events []DegradeEvent
	// Seed drives the noise draws; each workload perturbs with its own
	// derived seed so suite averages do not share one noise realisation.
	Seed int64
	// Arrivals optionally paces each workload's stream (index into
	// Workloads); nil means the closed submit-at-zero model.
	Arrivals func(w *Workload, i int) ([]float64, error)
	// Options tunes the underlying runs (cost model, scheduler overhead).
	// Its Perturb and Arrivals fields must be nil; RunRobustness owns both.
	Options *Options
	// Workers bounds the concurrent simulations; <= 0 uses all CPUs.
	Workers int
}

// RobustnessPoint is one (noise level, policy) cell of a robustness sweep,
// aggregated over the config's workload suite.
type RobustnessPoint struct {
	Policy string
	// Frac is the noise magnitude of this operating point.
	Frac float64
	// MakespanMs is the suite-mean makespan when the policy decides on
	// clean estimates while the platform follows the perturbed times.
	MakespanMs float64
	// OracleMs is the suite-mean makespan of the same policy given the
	// perturbed table as its estimates (perfect information, same
	// degradation) — the noise-free-decision baseline.
	OracleMs float64
	// RegretPct is the relative makespan excess over the oracle:
	// (MakespanMs − OracleMs) / OracleMs × 100. Positive regret is the
	// price of deciding on wrong estimates; small regret at large Frac
	// means the policy is robust.
	RegretPct float64
	// LambdaTotalMs is the suite-mean total λ scheduling delay.
	LambdaTotalMs float64
	// P99SojournMs is the exact 99th-percentile sojourn (arrival → finish)
	// over every kernel of every workload in the suite.
	P99SojournMs float64
}

// RunRobustness sweeps noise magnitude × policy over the workload suite:
// at every point each policy runs twice per workload — once deciding on
// clean estimates while the platform follows a perturbed table (plus any
// degradation events), once with perfect information as the regret
// baseline — all fanned through the shared batch worker pool. Points come
// back frac-major, then policy, in config order. Everything is seeded and
// aggregation is order-fixed, so results are identical across reruns and
// worker counts.
func RunRobustness(ctx context.Context, cfg RobustnessConfig) ([]RobustnessPoint, error) {
	if len(cfg.Workloads) == 0 || cfg.Machine == nil {
		return nil, fmt.Errorf("apt: RunRobustness requires workloads and a machine")
	}
	if len(cfg.Policies) == 0 || len(cfg.Fracs) == 0 {
		return nil, fmt.Errorf("apt: RunRobustness requires at least one policy and one noise level")
	}
	base := Options{}
	if cfg.Options != nil {
		base = *cfg.Options
		if base.Perturb != nil || base.Arrivals != nil {
			return nil, fmt.Errorf("apt: RobustnessConfig.Options must not set Perturb or Arrivals")
		}
	}

	// Per-workload arrival schedules are generated once and shared by every
	// (frac, policy, oracle) combination, so the sweep axis is purely the
	// noise.
	arrivals := make([][]float64, len(cfg.Workloads))
	if cfg.Arrivals != nil {
		for i, w := range cfg.Workloads {
			a, err := cfg.Arrivals(w, i)
			if err != nil {
				return nil, fmt.Errorf("apt: arrivals for workload %d: %w", i, err)
			}
			arrivals[i] = a
		}
	}

	// Two configs per (point, workload): the noisy-estimate run and its
	// oracle twin, which must share the exact same perturbed table (same
	// seed) to make regret well defined.
	nw := len(cfg.Workloads)
	points := make([]RobustnessPoint, 0, len(cfg.Fracs)*len(cfg.Policies))
	var runs []RunConfig
	for _, frac := range cfg.Fracs {
		for _, pol := range cfg.Policies {
			points = append(points, RobustnessPoint{Policy: pol.Name(), Frac: frac})
			for wi, w := range cfg.Workloads {
				opts := base
				opts.Arrivals = arrivals[wi]
				noisy := opts
				noisy.Perturb = &Perturbation{
					Noise:  Noise{Model: cfg.Model, Frac: frac, Bias: cfg.Bias, Seed: cfg.Seed + int64(wi)*1_000_003},
					Events: cfg.Events,
				}
				oracle := opts
				op := *noisy.Perturb
				op.Oracle = true
				oracle.Perturb = &op
				runs = append(runs,
					RunConfig{Workload: w, Machine: cfg.Machine, Policy: pol, Options: &noisy},
					RunConfig{Workload: w, Machine: cfg.Machine, Policy: pol, Options: &oracle},
				)
			}
		}
	}

	results, err := RunBatch(ctx, runs, &BatchOptions{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}

	var sojourns []float64
	for pi := range points {
		sojourns = sojourns[:0]
		var mkSum, orSum, lamSum float64
		for wi := 0; wi < nw; wi++ {
			noisy := results[(pi*nw+wi)*2]
			oracle := results[(pi*nw+wi)*2+1]
			mkSum += noisy.MakespanMs
			orSum += oracle.MakespanMs
			lamSum += noisy.LambdaTotalMs
			for _, k := range noisy.Kernels {
				sojourns = append(sojourns, k.SojournMs)
			}
		}
		points[pi].MakespanMs = mkSum / float64(nw)
		points[pi].OracleMs = orSum / float64(nw)
		points[pi].LambdaTotalMs = lamSum / float64(nw)
		if points[pi].OracleMs > 0 {
			points[pi].RegretPct = (points[pi].MakespanMs - points[pi].OracleMs) / points[pi].OracleMs * 100
		}
		sort.Float64s(sojourns)
		points[pi].P99SojournMs = stats.Quantile(sojourns, 0.99)
	}
	return points, nil
}

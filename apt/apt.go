// Package apt is the public API of the APT scheduling library: a
// heterogeneous-system simulator plus seven scheduling policies, including
// the thesis's contribution — Alternative Processor within Threshold (APT),
// a dynamic heuristic that assigns a kernel to an alternative processor
// when its best processor is busy, provided the alternative's execution
// plus data-transfer time stays within a tunable threshold α·(best
// execution time).
//
// A minimal session:
//
//	machine := apt.PaperMachine(4) // CPU+GPU+FPGA, 4 GB/s PCIe
//	wl, _ := apt.GenerateWorkload(apt.Type1, 50, 7)
//	res, _ := apt.Run(wl, machine, apt.APT(4), nil)
//	fmt.Println(res.MakespanMs)
//
// The underlying engine, cost model and baseline policies live in the
// internal packages; this package wraps them behind a stable surface used
// by all examples and the command-line tools.
package apt

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/platform"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ProcKind names a processor category.
type ProcKind string

// The processor categories of the paper's system. Custom machines may use
// additional kinds as long as their lookup table covers them.
const (
	CPU  ProcKind = ProcKind(platform.CPU)
	GPU  ProcKind = ProcKind(platform.GPU)
	FPGA ProcKind = ProcKind(platform.FPGA)
)

// Machine is a heterogeneous platform: processors plus interconnect.
type Machine struct {
	sys *platform.System
}

// PaperMachine returns the thesis's evaluation platform — one CPU, one GPU
// and one FPGA, fully connected at rateGBps gigabytes per second (the
// paper uses 4 for PCIe 2.0 x8 and 8 for x16).
func PaperMachine(rateGBps float64) *Machine {
	return &Machine{sys: platform.PaperSystem(platform.GBps(rateGBps))}
}

// NumProcs returns the number of processors.
func (m *Machine) NumProcs() int { return m.sys.NumProcs() }

// ProcNames returns processor names in ID order.
func (m *Machine) ProcNames() []string {
	out := make([]string, m.sys.NumProcs())
	for i, p := range m.sys.Procs() {
		out[i] = p.Name
	}
	return out
}

// String summarises the machine.
func (m *Machine) String() string { return m.sys.String() }

// MachineBuilder assembles a custom Machine.
type MachineBuilder struct {
	b *platform.Builder
}

// NewMachine starts building a custom machine.
func NewMachine() *MachineBuilder {
	return &MachineBuilder{b: platform.NewBuilder()}
}

// AddProc appends a processor of the given kind and returns its index.
// Pass an empty name for an automatic one ("GPU0", ...).
func (mb *MachineBuilder) AddProc(kind ProcKind, name string) int {
	return int(mb.b.AddProcessor(platform.Kind(kind), name))
}

// UniformRate sets every link's bandwidth in GB/s.
func (mb *MachineBuilder) UniformRate(gbps float64) *MachineBuilder {
	mb.b.SetUniformRate(platform.GBps(gbps))
	return mb
}

// LinkRate overrides the bandwidth of both directions between two
// processors.
func (mb *MachineBuilder) LinkRate(a, b int, gbps float64) *MachineBuilder {
	mb.b.SetSymmetricRate(platform.ProcID(a), platform.ProcID(b), platform.GBps(gbps))
	return mb
}

// Build validates and returns the machine.
func (mb *MachineBuilder) Build() (*Machine, error) {
	sys, err := mb.b.Build()
	if err != nil {
		return nil, err
	}
	return &Machine{sys: sys}, nil
}

// Workload is a dataflow graph of kernels to schedule.
type Workload struct {
	g *dfg.Graph
}

// NumKernels returns the kernel count.
func (w *Workload) NumKernels() int { return w.g.NumKernels() }

// NumDeps returns the dependency-edge count.
func (w *Workload) NumDeps() int { return w.g.NumEdges() }

// GraphType selects a generated workload family.
type GraphType = workload.GraphType

// The two workload families of the thesis.
const (
	Type1 = workload.Type1 // one wide parallel level + terminal kernel
	Type2 = workload.Type2 // chains, individual kernels and diamond blocks
)

// GenerateWorkload builds a random workload of n kernels drawn from the
// paper's kernel catalog (NW, BFS, SRAD, GEM, Cholesky, MatMul, MatInv at
// their measured sizes), arranged as the given graph type. The same seed
// always yields the same workload. Type2 requires n >= 9.
func GenerateWorkload(t GraphType, n int, seed int64) (*Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("apt: workload size must be positive, got %d", n)
	}
	cat := workload.PaperCatalog()
	series := cat.RandomSeries(newRand(seed), n)
	g, err := workload.Build(t, series)
	if err != nil {
		return nil, err
	}
	return &Workload{g: g}, nil
}

// GenerateApplicationStream builds a workload of n whole applications from
// the paper's Table 1 catalogue (Needleman Wunsch, Matrix Inverse, GEM,
// Cholesky, BFS, MatMul, SRAD, LavaMD, HotSpot, Backpropagation, FFT),
// drawn uniformly at random per seed. With chained false the applications
// are mutually independent; with chained true each application's outputs
// feed the next application's inputs.
func GenerateApplicationStream(n int, seed int64, chained bool) (*Workload, error) {
	var g *dfg.Graph
	var err error
	if chained {
		g, err = apps.ChainedStream(n, seed)
	} else {
		g, err = apps.Stream(n, seed)
	}
	if err != nil {
		return nil, err
	}
	return &Workload{g: g}, nil
}

// ApplicationNames lists the Table 1 application catalogue.
func ApplicationNames() []string { return apps.Names() }

// WorkloadBuilder assembles a custom workload kernel by kernel.
type WorkloadBuilder struct {
	b *dfg.Builder
}

// NewWorkload starts building a custom workload.
func NewWorkload() *WorkloadBuilder {
	return &WorkloadBuilder{b: dfg.NewBuilder()}
}

// AddKernel appends a kernel by lookup-table name ("matmul", "mi", "cd",
// "nw", "bfs", "srad", "gem" for the paper table) with its data size in
// elements, returning its index.
func (wb *WorkloadBuilder) AddKernel(name string, dataElems int64) int {
	return int(wb.b.AddKernel(dfg.Kernel{
		Name:      name,
		Dwarf:     lut.Dwarf(name),
		DataElems: dataElems,
	}))
}

// AddDep declares that kernel b consumes kernel a's output.
func (wb *WorkloadBuilder) AddDep(a, b int) *WorkloadBuilder {
	wb.b.AddEdge(dfg.KernelID(a), dfg.KernelID(b))
	return wb
}

// Build validates (acyclicity, names, sizes) and returns the workload.
func (wb *WorkloadBuilder) Build() (*Workload, error) {
	g, err := wb.b.Build()
	if err != nil {
		return nil, err
	}
	return &Workload{g: g}, nil
}

// Policy selects a scheduling heuristic.
type Policy struct {
	name         string
	alpha        float64
	seed         int64
	replaySource *Result
}

// APT returns the thesis's policy with flexibility factor alpha (>= 1;
// pass 0 for the paper's tuned default, α = 4).
func APT(alpha float64) Policy { return Policy{name: "APT", alpha: alpha} }

// APTR returns the APT-R future-work variant, which also weighs the best
// processor's remaining busy time before settling for an alternative.
func APTR(alpha float64) Policy { return Policy{name: "APT-R", alpha: alpha} }

// MET returns minimum execution time / best-only (Braun et al.); seed
// fixes its random kernel visiting order.
func MET(seed int64) Policy { return Policy{name: "MET", seed: seed} }

// SPN returns shortest process next (Khokhar et al.).
func SPN() Policy { return Policy{name: "SPN"} }

// SS returns serial scheduling by compute-time standard deviation
// (Liu & Yang).
func SS() Policy { return Policy{name: "SS"} }

// AG returns adaptive greedy (Wu et al.).
func AG() Policy { return Policy{name: "AG"} }

// HEFT returns heterogeneous earliest finish time (Topcuoglu et al.) as
// the thesis evaluates it.
func HEFT() Policy { return Policy{name: "HEFT"} }

// PEFT returns predict earliest finish time (Arabnejad & Barbosa) as the
// thesis evaluates it.
func PEFT() Policy { return Policy{name: "PEFT"} }

// OLB returns opportunistic load balancing (Braun et al.): next ready
// kernel to next available processor, ignoring execution times. The thesis
// discusses and dismisses it; it serves as a lower baseline.
func OLB() Policy { return Policy{name: "OLB"} }

// AR returns adaptive random (Wu et al.): each kernel goes immediately to
// a processor drawn with probability inversely proportional to its
// execution time there.
func AR(seed int64) Policy { return Policy{name: "AR", seed: seed} }

// Name returns the policy's display name.
func (p Policy) Name() string {
	if p.name == "" {
		return "APT"
	}
	return p.name
}

// ParsePolicy resolves a policy by name: "apt", "apt-r", "met", "spn",
// "ss", "ag", "heft", "peft" (case-insensitive). alpha applies to the APT
// family, seed to MET.
func ParsePolicy(name string, alpha float64, seed int64) (Policy, error) {
	switch strings.ToLower(name) {
	case "apt":
		return APT(alpha), nil
	case "apt-r", "aptr":
		return APTR(alpha), nil
	case "met":
		return MET(seed), nil
	case "spn":
		return SPN(), nil
	case "ss":
		return SS(), nil
	case "ag":
		return AG(), nil
	case "heft":
		return HEFT(), nil
	case "peft":
		return PEFT(), nil
	case "olb":
		return OLB(), nil
	case "ar":
		return AR(seed), nil
	default:
		return Policy{}, fmt.Errorf("apt: unknown policy %q (known: apt, apt-r, met, spn, ss, ag, heft, peft, olb, ar)", name)
	}
}

// PolicyNames lists the built-in policy names accepted by ParsePolicy.
func PolicyNames() []string {
	return []string{"apt", "apt-r", "met", "spn", "ss", "ag", "heft", "peft", "olb", "ar"}
}

func (p Policy) instantiate() (sim.Policy, error) {
	switch p.Name() {
	case "APT":
		return core.New(p.alpha), nil
	case "APT-R":
		return core.NewR(p.alpha), nil
	case "MET":
		return policy.NewMET(p.seed), nil
	case "SPN":
		return policy.NewSPN(), nil
	case "SS":
		return policy.NewSS(), nil
	case "AG":
		return policy.NewAG(), nil
	case "HEFT":
		return policy.NewHEFT(), nil
	case "PEFT":
		return policy.NewPEFT(), nil
	case "OLB":
		return policy.NewOLB(), nil
	case "AR":
		return policy.NewAR(p.seed), nil
	case "REPLAY":
		if p.replaySource == nil {
			return nil, fmt.Errorf("apt: Replay policy requires a source result")
		}
		return policy.NewReplay(p.replaySource.res), nil
	default:
		return nil, fmt.Errorf("apt: unknown policy %q", p.name)
	}
}

package apt_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/apt"
)

// sweepConfigs builds the (policy × α × workload) grid of a small sweep,
// the shape cmd/sweep fans through RunBatch.
func sweepConfigs(t testing.TB, nWorkloads int) []apt.RunConfig {
	t.Helper()
	m := apt.PaperMachine(4)
	var workloads []*apt.Workload
	for i := 0; i < nWorkloads; i++ {
		w, err := apt.GenerateWorkload(apt.Type2, 46+9*i, 7+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		workloads = append(workloads, w)
	}
	var cfgs []apt.RunConfig
	for _, pol := range []apt.Policy{apt.APT(4), apt.APT(1.5), apt.MET(1), apt.SPN(), apt.HEFT()} {
		for _, w := range workloads {
			cfgs = append(cfgs, apt.RunConfig{Workload: w, Machine: m, Policy: pol})
		}
	}
	return cfgs
}

// TestRunBatchMatchesRun is the determinism gate: batch results must be
// identical to sequential Run over the same configs, for any worker count.
func TestRunBatchMatchesRun(t *testing.T) {
	cfgs := sweepConfigs(t, 3)
	want := make([]*apt.Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := apt.Run(cfg.Workload, cfg.Machine, cfg.Policy, cfg.Options)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 3, 16} {
		got, err := apt.RunBatch(context.Background(), cfgs, &apt.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results for %d configs", workers, len(got), len(cfgs))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d config %d (%s): batch result differs from sequential Run",
					workers, i, cfgs[i].Policy.Name())
			}
		}
	}
}

func TestRunBatchReportsConfigErrors(t *testing.T) {
	cfgs := sweepConfigs(t, 1)
	bad := apt.RunConfig{Workload: nil, Machine: apt.PaperMachine(4), Policy: apt.APT(4)}
	cfgs = append([]apt.RunConfig{cfgs[0], bad}, cfgs[2:]...)
	results, err := apt.RunBatch(context.Background(), cfgs, nil)
	if err == nil {
		t.Fatal("want error for nil workload config")
	}
	if !strings.Contains(err.Error(), "config 1") {
		t.Errorf("error should name the failing config index: %v", err)
	}
	var be *apt.BatchError
	if !errors.As(err, &be) || len(be.Errs) != 1 {
		t.Fatalf("want *apt.BatchError with 1 failure, got %v", err)
	}
	var ce *apt.ConfigError
	if !errors.As(be.Errs[0], &ce) || ce.Index != 1 {
		t.Fatalf("want *apt.ConfigError with index 1, got %v", be.Errs[0])
	}
	if results[1] != nil {
		t.Error("failed config should leave a nil result")
	}
	for i, r := range results {
		if i != 1 && r == nil {
			t.Errorf("config %d: valid config lost its result", i)
		}
	}
}

func TestRunBatchCancelledContext(t *testing.T) {
	cfgs := sweepConfigs(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := apt.RunBatch(ctx, cfgs, nil)
	if err == nil {
		t.Fatal("want error after cancelled context")
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("config %d: want nil result after pre-cancelled context", i)
		}
	}
}

func TestRunBatchEmpty(t *testing.T) {
	results, err := apt.RunBatch(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("want no results, got %d", len(results))
	}
}

// TestRunBatchAltStats checks APT allocation statistics survive the batch
// path (they are read from the per-run policy instance).
func TestRunBatchAltStats(t *testing.T) {
	w, err := apt.GenerateWorkload(apt.Type2, 73, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := apt.PaperMachine(4)
	seq, err := apt.Run(w, m, apt.APT(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := apt.RunBatch(context.Background(), []apt.RunConfig{
		{Workload: w, Machine: m, Policy: apt.APT(8)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch[0].Alt, seq.Alt) {
		t.Errorf("batch Alt stats = %+v, want %+v", batch[0].Alt, seq.Alt)
	}
	if batch[0].Alt.Assignments == 0 {
		t.Error("APT run should count assignments")
	}
}

// BenchmarkSweepBatch and BenchmarkSweepSequential compare the batch API
// against sequential Run on a multi-policy sweep — the acceptance target is
// ≥2× wall-clock on a multi-core machine.
func BenchmarkSweepBatch(b *testing.B) {
	cfgs := sweepConfigs(b, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apt.RunBatch(context.Background(), cfgs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) {
	cfgs := sweepConfigs(b, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := apt.Run(cfg.Workload, cfg.Machine, cfg.Policy, cfg.Options); err != nil {
				b.Fatal(err)
			}
		}
	}
}

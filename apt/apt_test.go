package apt

import (
	"math"
	"strings"
	"testing"
)

func TestPaperMachine(t *testing.T) {
	m := PaperMachine(4)
	if m.NumProcs() != 3 {
		t.Fatalf("NumProcs = %d, want 3", m.NumProcs())
	}
	names := m.ProcNames()
	if names[0] != "CPU0" || names[1] != "GPU0" || names[2] != "FPGA0" {
		t.Errorf("ProcNames = %v", names)
	}
	if !strings.Contains(m.String(), "GPU0") {
		t.Errorf("String = %q", m.String())
	}
}

func TestMachineBuilder(t *testing.T) {
	mb := NewMachine()
	c := mb.AddProc(CPU, "")
	g := mb.AddProc(GPU, "big-gpu")
	mb.UniformRate(4).LinkRate(c, g, 16)
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumProcs() != 2 {
		t.Errorf("NumProcs = %d", m.NumProcs())
	}
	if _, err := NewMachine().Build(); err == nil {
		t.Error("empty machine accepted")
	}
}

func TestGenerateWorkload(t *testing.T) {
	w, err := GenerateWorkload(Type1, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumKernels() != 30 {
		t.Errorf("kernels = %d, want 30", w.NumKernels())
	}
	if w.NumDeps() != 29 {
		t.Errorf("deps = %d, want 29 (Type-1 fan-in)", w.NumDeps())
	}
	if _, err := GenerateWorkload(Type1, 0, 7); err == nil {
		t.Error("zero-size workload accepted")
	}
	if _, err := GenerateWorkload(Type2, 3, 7); err == nil {
		t.Error("undersized Type-2 accepted")
	}
}

func TestWorkloadBuilder(t *testing.T) {
	wb := NewWorkload()
	a := wb.AddKernel("nw", 16777216)
	b := wb.AddKernel("bfs", 2034736)
	wb.AddDep(a, b)
	w, err := wb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.NumKernels() != 2 || w.NumDeps() != 1 {
		t.Errorf("shape = %d/%d", w.NumKernels(), w.NumDeps())
	}
	// Unknown kernels surface at Run time (lookup table validation).
	wb2 := NewWorkload()
	wb2.AddKernel("mystery", 10)
	w2, err := wb2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w2, PaperMachine(4), APT(4), nil); err == nil {
		t.Error("unknown kernel accepted at Run")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name, 4, 1)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Errorf("policy %q has empty name", name)
		}
	}
	if _, err := ParsePolicy("bogus", 4, 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if p, _ := ParsePolicy("APT-R", 2, 0); p.Name() != "APT-R" {
		t.Errorf("case-insensitive parse failed: %q", p.Name())
	}
}

func TestRunFigure5(t *testing.T) {
	// The thesis's Figure 5 example through the public API.
	wb := NewWorkload()
	wb.AddKernel("nw", 16777216)
	wb.AddKernel("bfs", 2034736)
	wb.AddKernel("bfs", 2034736)
	wb.AddKernel("bfs", 2034736)
	wb.AddKernel("cd", 250000)
	w, err := wb.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := PaperMachine(4)

	met, err := Run(w, m, MET(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.MakespanMs-318.093) > 1e-6 {
		t.Errorf("MET makespan = %v, want 318.093", met.MakespanMs)
	}
	res, err := Run(w, m, APT(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MakespanMs-212.093) > 1e-6 {
		t.Errorf("APT makespan = %v, want 212.093", res.MakespanMs)
	}
	if res.Alt.AltAssignments != 1 || res.Alt.ByKernel["bfs"] != 1 {
		t.Errorf("alt stats = %+v", res.Alt)
	}
	if len(res.Kernels) != 5 || len(res.Procs) != 3 {
		t.Errorf("result shape = %d kernels %d procs", len(res.Kernels), len(res.Procs))
	}
	if !strings.Contains(res.Gantt(), "start 0-nw") {
		t.Error("Gantt missing events")
	}
	if !strings.Contains(res.Utilisation(), "GPU0") {
		t.Error("Utilisation missing processor")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, PaperMachine(4), APT(4), nil); err == nil {
		t.Error("nil workload accepted")
	}
	w, _ := GenerateWorkload(Type1, 5, 1)
	if _, err := Run(w, nil, APT(4), nil); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := Run(w, PaperMachine(4), APT(0.5), nil); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestRunOptions(t *testing.T) {
	w, _ := GenerateWorkload(Type2, 20, 3)
	m := PaperMachine(4)
	base, err := Run(w, m, APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	over, err := Run(w, m, APT(4), &Options{SchedOverheadMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if over.MakespanMs <= base.MakespanMs {
		t.Errorf("scheduler overhead did not increase makespan: %v vs %v",
			over.MakespanMs, base.MakespanMs)
	}
	serial, err := Run(w, m, APT(4), &Options{SerialTransfers: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.MakespanMs < base.MakespanMs-1e-9 {
		t.Errorf("serial transfers beat concurrent: %v vs %v", serial.MakespanMs, base.MakespanMs)
	}
}

func TestCompare(t *testing.T) {
	w, _ := GenerateWorkload(Type1, 25, 11)
	m := PaperMachine(4)
	pols := []Policy{APT(4), MET(1), SPN(), SS(), AG(), HEFT(), PEFT()}
	results, err := Compare(w, m, pols, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pols) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Policy != pols[i].Name() {
			t.Errorf("result %d policy %q, want %q", i, r.Policy, pols[i].Name())
		}
		if r.MakespanMs <= 0 {
			t.Errorf("%s makespan %v", r.Policy, r.MakespanMs)
		}
	}
}

func TestKernelNames(t *testing.T) {
	kn := KernelNames()
	if len(kn) != 7 {
		t.Fatalf("kernels = %d, want 7", len(kn))
	}
	if len(kn["matmul"]) != 7 || len(kn["gem"]) != 1 {
		t.Errorf("sizes wrong: %v", kn)
	}
}

func TestProcUseAccounting(t *testing.T) {
	w, _ := GenerateWorkload(Type1, 15, 5)
	m := PaperMachine(8)
	r, err := Run(w, m, APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pu := range r.Procs {
		if math.Abs(pu.ExecMs+pu.XferMs+pu.IdleMs-r.MakespanMs) > 1e-6 {
			t.Errorf("proc %s accounting off: %v+%v+%v != %v",
				pu.Name, pu.ExecMs, pu.XferMs, pu.IdleMs, r.MakespanMs)
		}
		total += pu.Kernels
	}
	if total != 15 {
		t.Errorf("kernels across procs = %d, want 15", total)
	}
}

package apt

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/perturb"
	"repro/internal/sim"
)

// RunConfig describes one simulation of a batch: the same inputs Run takes,
// as a value. A nil Options selects the defaults.
type RunConfig struct {
	Workload *Workload
	Machine  *Machine
	Policy   Policy
	Options  *Options
}

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Workers bounds the concurrent simulations; <= 0 selects one worker
	// per available CPU.
	Workers int
}

// ConfigError is one failed config of a RunBatch, tagged with its index
// into the configs slice.
type ConfigError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *ConfigError) Error() string { return fmt.Sprintf("apt: config %d: %v", e.Index, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *ConfigError) Unwrap() error { return e.Err }

// BatchError joins the failures of a RunBatch. Every entry is a
// *ConfigError; errors.As recovers them, errors.Is each underlying cause.
type BatchError struct {
	// Errs holds one *ConfigError per failed config, in config order.
	Errs []error
}

// Error implements error.
func (b *BatchError) Error() string {
	if len(b.Errs) == 1 {
		return b.Errs[0].Error()
	}
	return fmt.Sprintf("%v (and %d more batch errors)", b.Errs[0], len(b.Errs)-1)
}

// Unwrap exposes the individual failures to errors.Is/As.
func (b *BatchError) Unwrap() []error { return b.Errs }

// RunBatch simulates every config concurrently across a bounded worker pool
// and returns the results in config order: results[i] corresponds to
// configs[i]. Every simulation is deterministic, so the results are
// identical to calling Run sequentially over the same configs — RunBatch
// only changes the wall-clock cost of sweeps that run thousands of
// (policy, α, workload, machine) combinations. Workers reuse their
// engine state between runs, so large batches also allocate far less than
// repeated Run calls.
//
// Cancelling the context stops unstarted simulations (in-flight ones
// complete). Failed or cancelled configs leave a nil entry in the results
// slice and contribute a *ConfigError to the returned *BatchError;
// successful results are returned either way.
func RunBatch(ctx context.Context, configs []RunConfig, opts *BatchOptions) ([]*Result, error) {
	if opts == nil {
		opts = &BatchOptions{}
	}
	// The whole per-config pipeline — cost preparation, simulation,
	// validation, result assembly — runs inside the pool, on a per-worker
	// reusable engine.
	results := make([]*Result, len(configs))
	errs := sim.RunPool(ctx, len(configs), opts.Workers, func(i int, runner *sim.Runner) error {
		res, err := runOne(runner, configs[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})

	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &ConfigError{Index: i, Err: err})
		}
	}
	if len(failed) > 0 {
		return results, &BatchError{Errs: failed}
	}
	return results, nil
}

// runOne executes one config of a batch on a reusable engine.
func runOne(runner *sim.Runner, cfg RunConfig) (*Result, error) {
	run, pol, err := prepareRun(cfg)
	if err != nil {
		return nil, err
	}
	res, err := runner.Run(run.Costs, pol, run.Opt)
	if err != nil {
		return nil, err
	}
	if err := res.Validate(cfg.Workload.g, cfg.Machine.sys); err != nil {
		return nil, fmt.Errorf("internal error, invalid schedule: %w", err)
	}
	return assemble(res, cfg.Workload, cfg.Machine, pol), nil
}

// prepareRun turns one RunConfig into an engine-level batch run plus the
// policy instance (kept so APT allocation stats can be read back).
func prepareRun(cfg RunConfig) (sim.BatchRun, sim.Policy, error) {
	if cfg.Workload == nil || cfg.Machine == nil {
		return sim.BatchRun{}, nil, fmt.Errorf("run requires a workload and a machine")
	}
	opts := cfg.Options
	if opts == nil {
		opts = &Options{}
	}
	if err := validateArrivals(cfg.Workload.NumKernels(), opts.Arrivals); err != nil {
		return sim.BatchRun{}, nil, err
	}
	mode := sim.TransferMax
	if opts.SerialTransfers {
		mode = sim.TransferSum
	}
	costCfg := sim.CostConfig{ElemBytes: opts.ElemBytes, Mode: mode}
	simOpt := sim.Options{
		SchedOverheadMs: opts.SchedOverheadMs,
		ArrivalTimes:    opts.Arrivals,
	}

	// A perturbation splits estimation from reality: the estimate table the
	// policy decides with, the actual table execution follows, and a
	// degradation schedule stretching actual durations over time.
	estTab := lut.Paper()
	if p := opts.Perturb; p != nil {
		actualTab, err := p.Noise.internal().Apply(estTab)
		if err != nil {
			return sim.BatchRun{}, nil, err
		}
		if p.Oracle {
			// Perfect information: the policy sees the actual table, so no
			// estimate/actual split remains (degradation still applies).
			estTab = actualTab
		} else if actualTab != estTab {
			actual, err := sim.PrepareCosts(cfg.Workload.g, cfg.Machine.sys, actualTab, costCfg)
			if err != nil {
				return sim.BatchRun{}, nil, err
			}
			simOpt.ActualCosts = actual
		}
		if len(p.Events) > 0 {
			sched, err := perturb.NewSchedule(internalEvents(p.Events))
			if err != nil {
				return sim.BatchRun{}, nil, err
			}
			simOpt.Degrade = sched
		}
	}

	costs, err := sim.PrepareCosts(cfg.Workload.g, cfg.Machine.sys, estTab, costCfg)
	if err != nil {
		return sim.BatchRun{}, nil, err
	}
	pol, err := cfg.Policy.instantiate()
	if err != nil {
		return sim.BatchRun{}, nil, err
	}
	return sim.BatchRun{Costs: costs, Policy: pol, Opt: simOpt}, pol, nil
}

// assemble converts an engine result into the public Result, mirroring Run.
func assemble(res *sim.Result, w *Workload, m *Machine, pol sim.Policy) *Result {
	out := &Result{
		Policy:        res.Policy,
		MakespanMs:    res.MakespanMs,
		LambdaTotalMs: res.Lambda.TotalMs,
		LambdaAvgMs:   res.Lambda.AvgMs,
		LambdaStdMs:   res.Lambda.StdMs,
		Sojourn:       latencyStats(res.Sojourn),
		QueueWait:     latencyStats(res.QueueWait),
		res:           res,
		sys:           m.sys,
		wl:            w,
	}
	for i := range res.Placements {
		pl := res.Placements[i]
		out.Kernels = append(out.Kernels, KernelRun{
			Kernel:      int(pl.Kernel),
			Name:        w.g.Kernel(pl.Kernel).Name,
			Proc:        int(pl.Proc),
			ProcName:    m.sys.Proc(pl.Proc).Name,
			ArrivalMs:   pl.Arrival,
			ReadyMs:     pl.Ready,
			ExecStartMs: pl.ExecStart,
			FinishMs:    pl.Finish,
			LambdaMs:    pl.Lambda(),
			TransferMs:  pl.ExecStart - pl.TransferStart,
			SojournMs:   pl.Sojourn(),
			QueueWaitMs: pl.QueueWait(),
		})
	}
	for _, st := range res.ProcStats {
		out.Procs = append(out.Procs, ProcUse{
			Proc:    int(st.Proc),
			Name:    m.sys.Proc(st.Proc).Name,
			Kernels: st.Kernels,
			ExecMs:  st.ExecMs,
			XferMs:  st.XferMs,
			IdleMs:  st.IdleMs,
		})
	}
	if a, ok := pol.(*core.APT); ok {
		s := a.Stats()
		out.Alt = AltStats{
			Assignments:    s.Assignments,
			AltAssignments: s.AltAssignments,
			ByKernel:       s.ByKernel,
		}
	} else {
		out.Alt.ByKernel = map[string]int{}
	}
	return out
}

package apt

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/lut"
	"repro/internal/perturb"
	"repro/internal/sim"
)

// RunConfig describes one simulation of a batch: the same inputs Run takes,
// as a value. A nil Options selects the defaults.
type RunConfig struct {
	Workload *Workload
	Machine  *Machine
	Policy   Policy
	Options  *Options
}

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Workers bounds the concurrent simulations; <= 0 selects one worker
	// per available CPU.
	Workers int
}

// ConfigError is one failed config of a RunBatch, tagged with its index
// into the configs slice.
type ConfigError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *ConfigError) Error() string { return fmt.Sprintf("apt: config %d: %v", e.Index, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *ConfigError) Unwrap() error { return e.Err }

// BatchError joins the failures of a RunBatch. Every entry is a
// *ConfigError; errors.As recovers them, errors.Is each underlying cause.
type BatchError struct {
	// Errs holds one *ConfigError per failed config, in config order.
	Errs []error
}

// Error implements error.
func (b *BatchError) Error() string {
	if len(b.Errs) == 1 {
		return b.Errs[0].Error()
	}
	return fmt.Sprintf("%v (and %d more batch errors)", b.Errs[0], len(b.Errs)-1)
}

// Unwrap exposes the individual failures to errors.Is/As.
func (b *BatchError) Unwrap() []error { return b.Errs }

// RunBatch simulates every config concurrently across a bounded worker pool
// and returns the results in config order: results[i] corresponds to
// configs[i]. Every simulation is deterministic, so the results are
// identical to calling Run sequentially over the same configs — RunBatch
// only changes the wall-clock cost of sweeps that run thousands of
// (policy, α, workload, machine) combinations. Workers reuse their
// engine state between runs, so large batches also allocate far less than
// repeated Run calls.
//
// Workers additionally memoise prepared state across the configs they
// execute: the cost oracle of a (workload, machine, cost-model) triple, a
// noise-perturbed lookup table, and the policy instance per policy value.
// Sweeps that revisit the same graph — α grids, arrival-gap scans,
// robustness fracs — therefore skip re-deriving cost tables and, for
// static policies, the whole Prepare phase (HEFT/PEFT plans and OCT tables
// are pure functions of the cost oracle; see the policy package). Caching
// never changes results, only wall-clock time: cache keys capture every
// input the cached artifact depends on.
//
// Cancelling the context stops unstarted simulations (in-flight ones
// complete). Failed or cancelled configs leave a nil entry in the results
// slice and contribute a *ConfigError to the returned *BatchError;
// successful results are returned either way.
func RunBatch(ctx context.Context, configs []RunConfig, opts *BatchOptions) ([]*Result, error) {
	if opts == nil {
		opts = &BatchOptions{}
	}
	// The whole per-config pipeline — cost preparation, simulation,
	// validation, result assembly — runs inside the pool, on a per-worker
	// reusable engine.
	results := make([]*Result, len(configs))
	errs := sim.RunPool(ctx, len(configs), opts.Workers, func(i int, w *sim.Worker) error {
		res, err := runOne(w, configs[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})

	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &ConfigError{Index: i, Err: err})
		}
	}
	if len(failed) > 0 {
		return results, &BatchError{Errs: failed}
	}
	return results, nil
}

// runOne executes one config of a batch on a worker's reusable engine,
// sharing prepared state through the worker's memo.
func runOne(w *sim.Worker, cfg RunConfig) (*Result, error) {
	run, pol, err := prepareRun(cfg, w)
	if err != nil {
		return nil, err
	}
	res, err := w.Runner().Run(run.Costs, pol, run.Opt)
	if err != nil {
		return nil, err
	}
	if err := res.ValidateLanes(cfg.Workload.g, cfg.Machine.sys, run.Opt.Lanes); err != nil {
		return nil, fmt.Errorf("internal error, invalid schedule: %w", err)
	}
	return assemble(res, cfg.Workload, cfg.Machine, pol, run.Opt.Lanes), nil
}

// costsMemoKey identifies one prepared cost oracle in a worker's memo. It
// captures every input PrepareCosts consumes: graph, platform, cost-model
// config and the exact lookup table (by identity — tables are immutable
// and lut.Paper returns a singleton).
type costsMemoKey struct {
	g   *dfg.Graph
	m   *Machine
	cfg sim.CostConfig
	tab *lut.Table
}

// tableMemoKey identifies one noise-perturbed lookup table: the base table
// plus the canonical encoding of the noise that produced it (Apply is
// deterministic per Noise).
type tableMemoKey struct {
	tab   *lut.Table
	noise string
}

// policyMemoKey identifies one policy instance per policy value. Reusing
// the instance across a worker's runs lets static policies hit their
// Prepare memoisation when the cost oracle repeats too.
type policyMemoKey struct{ p Policy }

// memoCosts returns the prepared cost oracle for (g, m, tab, cfg), from
// the worker's memo when one is supplied. The lane count only shards the
// row fills — prepared tables are byte-identical for every value — so it
// is deliberately absent from the memo key.
func memoCosts(w *sim.Worker, g *dfg.Graph, m *Machine, tab *lut.Table, cfg sim.CostConfig, lanes int) (*sim.Costs, error) {
	if w == nil {
		return sim.PrepareCostsLanes(g, m.sys, tab, cfg, lanes)
	}
	v, err := w.Memo(costsMemoKey{g: g, m: m, cfg: cfg, tab: tab}, func() (any, error) {
		return sim.PrepareCostsLanes(g, m.sys, tab, cfg, lanes)
	})
	if err != nil {
		return nil, err
	}
	return v.(*sim.Costs), nil
}

// prepareRun turns one RunConfig into an engine-level batch run plus the
// policy instance (kept so APT allocation stats can be read back). A
// non-nil worker supplies the prepared-state memo; Run passes nil.
func prepareRun(cfg RunConfig, w *sim.Worker) (sim.BatchRun, sim.Policy, error) {
	if cfg.Workload == nil || cfg.Machine == nil {
		return sim.BatchRun{}, nil, fmt.Errorf("run requires a workload and a machine")
	}
	opts := cfg.Options
	if opts == nil {
		opts = &Options{}
	}
	if err := validateArrivals(cfg.Workload.NumKernels(), opts.Arrivals); err != nil {
		return sim.BatchRun{}, nil, err
	}
	mode := sim.TransferMax
	if opts.SerialTransfers {
		mode = sim.TransferSum
	}
	costCfg := sim.CostConfig{ElemBytes: opts.ElemBytes, Mode: mode, Float32Exec: opts.Float32Costs}
	simOpt := sim.Options{
		SchedOverheadMs: opts.SchedOverheadMs,
		ArrivalTimes:    opts.Arrivals,
		Lanes:           opts.Lanes,
	}

	// A perturbation splits estimation from reality: the estimate table the
	// policy decides with, the actual table execution follows, and a
	// degradation schedule stretching actual durations over time.
	estTab := lut.Paper()
	if p := opts.Perturb; p != nil {
		actualTab, err := memoNoisyTable(w, estTab, p.Noise)
		if err != nil {
			return sim.BatchRun{}, nil, err
		}
		if p.Oracle {
			// Perfect information: the policy sees the actual table, so no
			// estimate/actual split remains (degradation still applies).
			estTab = actualTab
		} else if actualTab != estTab {
			actual, err := memoCosts(w, cfg.Workload.g, cfg.Machine, actualTab, costCfg, opts.Lanes)
			if err != nil {
				return sim.BatchRun{}, nil, err
			}
			simOpt.ActualCosts = actual
		}
		if len(p.Events) > 0 {
			sched, err := perturb.NewSchedule(internalEvents(p.Events))
			if err != nil {
				return sim.BatchRun{}, nil, err
			}
			simOpt.Degrade = sched
		}
	}

	costs, err := memoCosts(w, cfg.Workload.g, cfg.Machine, estTab, costCfg, opts.Lanes)
	if err != nil {
		return sim.BatchRun{}, nil, err
	}
	pol, err := memoPolicy(w, cfg.Policy)
	if err != nil {
		return sim.BatchRun{}, nil, err
	}
	return sim.BatchRun{Costs: costs, Policy: pol, Opt: simOpt}, pol, nil
}

// memoNoisyTable returns the actual-time table a Noise produces from tab,
// from the worker's memo when one is supplied. The identity noise returns
// tab itself (Apply's contract), keeping the no-perturbation fast path.
func memoNoisyTable(w *sim.Worker, tab *lut.Table, n Noise) (*lut.Table, error) {
	if w == nil {
		return n.internal().Apply(tab)
	}
	v, err := w.Memo(tableMemoKey{tab: tab, noise: n.memoKey()}, func() (any, error) {
		return n.internal().Apply(tab)
	})
	if err != nil {
		return nil, err
	}
	return v.(*lut.Table), nil
}

// memoPolicy returns the instantiated policy for p, from the worker's memo
// when one is supplied. Policies fully re-Prepare per run, so a worker
// reusing one instance sequentially is exactly as deterministic as fresh
// instances — but static policies can then reuse their prepared plans.
func memoPolicy(w *sim.Worker, p Policy) (sim.Policy, error) {
	if w == nil {
		return p.instantiate()
	}
	v, err := w.Memo(policyMemoKey{p: p}, func() (any, error) {
		pol, err := p.instantiate()
		if err != nil {
			return nil, err
		}
		return pol, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(sim.Policy), nil
}

// assemble converts an engine result into the public Result, mirroring Run.
// The per-kernel rows are filled into an exact-size preallocation, sharded
// across the run's lanes (disjoint index ranges, so the output is
// byte-identical for every lane count — see sim.ParallelOver).
func assemble(res *sim.Result, w *Workload, m *Machine, pol sim.Policy, lanes int) *Result {
	out := &Result{
		Policy:        res.Policy,
		MakespanMs:    res.MakespanMs,
		LambdaTotalMs: res.Lambda.TotalMs,
		LambdaAvgMs:   res.Lambda.AvgMs,
		LambdaStdMs:   res.Lambda.StdMs,
		Sojourn:       latencyStats(res.Sojourn),
		QueueWait:     latencyStats(res.QueueWait),
		res:           res,
		sys:           m.sys,
		wl:            w,
	}
	out.Kernels = make([]KernelRun, len(res.Placements))
	sim.ParallelOver(len(res.Placements), lanes, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pl := res.Placements[i]
			out.Kernels[i] = KernelRun{
				Kernel:      int32(pl.Kernel),
				Name:        w.g.Kernel(pl.Kernel).Name,
				Proc:        int32(pl.Proc),
				ProcName:    m.sys.Proc(pl.Proc).Name,
				ArrivalMs:   pl.Arrival,
				ReadyMs:     pl.Ready,
				ExecStartMs: pl.ExecStart,
				FinishMs:    pl.Finish,
				LambdaMs:    pl.Lambda(),
				TransferMs:  pl.ExecStart - pl.TransferStart,
				SojournMs:   pl.Sojourn(),
				QueueWaitMs: pl.QueueWait(),
			}
		}
	})
	out.Procs = make([]ProcUse, 0, len(res.ProcStats))
	for _, st := range res.ProcStats {
		out.Procs = append(out.Procs, ProcUse{
			Proc:    int32(st.Proc),
			Name:    m.sys.Proc(st.Proc).Name,
			Kernels: st.Kernels,
			ExecMs:  st.ExecMs,
			XferMs:  st.XferMs,
			IdleMs:  st.IdleMs,
		})
	}
	if a, ok := pol.(*core.APT); ok {
		s := a.Stats()
		out.Alt = AltStats{
			Assignments:    s.Assignments,
			AltAssignments: s.AltAssignments,
			ByKernel:       s.ByKernel,
		}
	} else {
		out.Alt.ByKernel = map[string]int{}
	}
	return out
}

package apt

import (
	"context"
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
)

// LatencyStats summarises a latency distribution in milliseconds: count,
// moments, extrema and tail percentiles. The zero value describes an empty
// distribution; every field is finite, so results always JSON-encode.
type LatencyStats struct {
	Count  int
	MeanMs float64
	StdMs  float64
	MinMs  float64
	MaxMs  float64
	P50Ms  float64
	P90Ms  float64
	P95Ms  float64
	P99Ms  float64
}

// latencyStats mirrors an internal summary into the public type.
func latencyStats(s stats.Summary) LatencyStats {
	return LatencyStats{
		Count:  s.Count,
		MeanMs: s.Mean,
		StdMs:  s.Std,
		MinMs:  s.Min,
		MaxMs:  s.Max,
		P50Ms:  s.P50,
		P90Ms:  s.P90,
		P95Ms:  s.P95,
		P99Ms:  s.P99,
	}
}

// GenerateKernelStream builds a stream of n mutually independent kernels
// drawn from the paper's catalog — the purest open-system workload, where
// every kernel is one request and sojourn latency carries no dependency
// wait. The same seed always yields the same stream.
func GenerateKernelStream(n int, seed int64) (*Workload, error) {
	g, err := workload.Independent(n, seed)
	if err != nil {
		return nil, err
	}
	return &Workload{g: g}, nil
}

// StreamShard is one window of an open-system stream: a self-contained
// workload plus the arrival time of each of its kernels. Arrivals may
// carry a global offset; RunStream rebases each shard to start near t = 0,
// which leaves sojourn and queueing-delay metrics unchanged.
type StreamShard struct {
	Workload *Workload
	Arrivals []float64
}

// StreamOptions tunes RunStream.
type StreamOptions struct {
	// Options tunes each shard's simulation (cost model, scheduler
	// overhead). Its Arrivals field must be nil: shard arrivals pace the
	// stream.
	Options *Options
	// Workers bounds concurrent shard simulations; <= 0 selects one per
	// available CPU. Results are identical at any worker count.
	Workers int
}

// StreamShardStats is one shard's contribution to a StreamResult.
type StreamShardStats struct {
	Kernels       int
	MakespanMs    float64 // shard horizon: latest finish after rebasing
	ArrivalSpanMs float64 // last arrival − first arrival within the shard
	P99SojournMs  float64
}

// StreamResult aggregates open-system metrics over every shard of a
// stream run.
type StreamResult struct {
	Policy  string
	Kernels int
	Shards  []StreamShardStats
	// SimulatedMs is the summed simulation horizon of all shards.
	// ArrivalSpanMs is the stream's offered span: for globally timed
	// shards (trace replay — the concatenated arrivals stay monotone
	// across shard boundaries) the trace's end − start, including
	// inter-window gaps; for independent window replications (MakeStream)
	// the summed in-window spans. OfferedPerSec is the arrival rate λ
	// implied by that span; CompletedPerSec the achieved service rate
	// (both 0 when the respective span is 0).
	SimulatedMs     float64
	ArrivalSpanMs   float64
	OfferedPerSec   float64
	CompletedPerSec float64
	// Sojourn and QueueWait are exact distributions over every kernel of
	// every shard (arrival→finish and arrival→exec-start).
	Sojourn   LatencyStats
	QueueWait LatencyStats
	// LambdaTotalMs sums the thesis's λ scheduling delay across shards.
	LambdaTotalMs float64
	// SojournsMs holds the raw per-kernel sojourn latencies in shard-major,
	// kernel-ID order — input for custom percentiles or histograms.
	SojournsMs []float64
}

// RunStream simulates an open-system stream: every shard runs through the
// same bounded worker pool RunBatch uses (per-worker reusable engines),
// and per-kernel latency metrics aggregate across shards. Shards are
// independent windows of the stream — the steady-state "independent
// replications" view of a long-horizon run — so a multi-thousand-kernel,
// hours-long scenario costs only one window of simulator state at a time.
//
// Every simulation is deterministic, so results are identical across
// reruns and worker counts. Invalid shard arrivals surface as a
// *ConfigError (wrapping an *ArrivalError) indexed by shard.
func RunStream(ctx context.Context, shards []StreamShard, m *Machine, p Policy, opts *StreamOptions) (*StreamResult, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("apt: RunStream requires at least one shard")
	}
	if m == nil {
		return nil, fmt.Errorf("apt: RunStream requires a machine")
	}
	if opts == nil {
		opts = &StreamOptions{}
	}
	base := Options{}
	if opts.Options != nil {
		if opts.Options.Arrivals != nil {
			return nil, fmt.Errorf("apt: StreamOptions.Options.Arrivals must be nil (shard arrivals pace the stream)")
		}
		base = *opts.Options
	}
	cfgs := make([]RunConfig, len(shards))
	for i, sh := range shards {
		if sh.Workload == nil {
			return nil, &ConfigError{Index: i, Err: fmt.Errorf("stream shard has no workload")}
		}
		if err := validateArrivals(sh.Workload.NumKernels(), sh.Arrivals); err != nil {
			return nil, &ConfigError{Index: i, Err: err}
		}
		o := base
		o.Arrivals = rebaseArrivals(sh.Arrivals)
		cfgs[i] = RunConfig{Workload: sh.Workload, Machine: m, Policy: p, Options: &o}
	}
	results, err := RunBatch(ctx, cfgs, &BatchOptions{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}

	out := &StreamResult{Policy: p.Name(), Shards: make([]StreamShardStats, len(results))}
	var sojourns, qwaits []float64
	// Globally timed shards (trace replay) keep their original, pre-rebase
	// timestamps monotone across shard boundaries; then the offered span
	// must include inter-window gaps, not just the summed in-window spans.
	globalTimes := len(shards) > 1
	var sumSpan, firstAt, prevLast float64
	for i, res := range results {
		ss := &out.Shards[i]
		ss.Kernels = len(res.Kernels)
		ss.MakespanMs = res.MakespanMs
		ss.P99SojournMs = res.Sojourn.P99Ms
		if arr := shards[i].Arrivals; len(arr) > 0 {
			ss.ArrivalSpanMs = arr[len(arr)-1] - arr[0]
			if i > 0 && arr[0] < prevLast {
				globalTimes = false
			}
			if i == 0 {
				firstAt = arr[0]
			}
			prevLast = arr[len(arr)-1]
		} else {
			globalTimes = false
		}
		sumSpan += ss.ArrivalSpanMs
		for _, k := range res.Kernels {
			sojourns = append(sojourns, k.SojournMs)
			qwaits = append(qwaits, k.QueueWaitMs)
		}
		out.Kernels += ss.Kernels
		out.SimulatedMs += ss.MakespanMs
		out.LambdaTotalMs += res.LambdaTotalMs
	}
	out.ArrivalSpanMs = sumSpan
	if globalTimes {
		out.ArrivalSpanMs = prevLast - firstAt
	}
	out.SojournsMs = append([]float64(nil), sojourns...)
	out.Sojourn = latencyStats(stats.SummarizeInPlace(sojourns))
	out.QueueWait = latencyStats(stats.SummarizeInPlace(qwaits))
	if out.ArrivalSpanMs > 0 {
		out.OfferedPerSec = float64(out.Kernels) / out.ArrivalSpanMs * 1000
	}
	if out.SimulatedMs > 0 {
		out.CompletedPerSec = float64(out.Kernels) / out.SimulatedMs * 1000
	}
	return out, nil
}

// rebaseArrivals shifts a schedule so its first arrival is 0, leaving
// sojourn and queueing metrics unchanged while sparing the simulator the
// idle lead-in of globally offset shards.
func rebaseArrivals(arr []float64) []float64 {
	if len(arr) == 0 || arr[0] == 0 {
		return arr
	}
	out := make([]float64, len(arr))
	for i, at := range arr {
		out[i] = at - arr[0]
	}
	return out
}

// MakeStream builds a synthetic open-system stream: `total` independent
// catalog kernels cut into windows of `window` kernels (default 500).
// Shard s draws its workload from GenerateKernelStream with a per-shard
// seed and its arrival schedule from gen, called with that workload and
// the same per-shard seed — so windows are independent replications of
// the arrival process and the whole stream is reproducible from `seed`.
//
//	shards, _ := apt.MakeStream(5000, 500, 1, func(w *apt.Workload, seed int64) ([]float64, error) {
//	    return apt.PoissonArrivals(w, 2, seed) // λ = 500 kernels/s
//	})
//	res, _ := apt.RunStream(ctx, shards, apt.PaperMachine(4), apt.APT(4), nil)
//	fmt.Println(res.Sojourn.P99Ms)
func MakeStream(total, window int, seed int64, gen func(w *Workload, seed int64) ([]float64, error)) ([]StreamShard, error) {
	if total <= 0 {
		return nil, fmt.Errorf("apt: stream size must be positive, got %d", total)
	}
	if window <= 0 {
		window = 500
	}
	if gen == nil {
		return nil, fmt.Errorf("apt: MakeStream requires an arrival generator")
	}
	var shards []StreamShard
	for off, shard := 0, 0; off < total; off, shard = off+window, shard+1 {
		n := window
		if rest := total - off; rest < n {
			n = rest
		}
		shardSeed := seed + int64(shard)*1_000_003
		w, err := GenerateKernelStream(n, shardSeed)
		if err != nil {
			return nil, err
		}
		arr, err := gen(w, shardSeed)
		if err != nil {
			return nil, fmt.Errorf("apt: stream shard %d arrivals: %w", shard, err)
		}
		shards = append(shards, StreamShard{Workload: w, Arrivals: arr})
	}
	return shards, nil
}

// TraceStream replays a recorded arrival trace as an open-system stream:
// the timestamps are cut into windows of `window` consecutive entries
// (default 500), each paired with an independent-kernel workload of
// matching size generated from a per-shard seed. RunStream rebases each
// window, so inter-window gaps in the trace cost no simulated idle time.
func TraceStream(times []float64, window int, seed int64) ([]StreamShard, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("apt: empty arrival trace")
	}
	if window <= 0 {
		window = 500
	}
	var shards []StreamShard
	for off, shard := 0, 0; off < len(times); off, shard = off+window, shard+1 {
		end := off + window
		if end > len(times) {
			end = len(times)
		}
		w, err := GenerateKernelStream(end-off, seed+int64(shard)*1_000_003)
		if err != nil {
			return nil, err
		}
		shards = append(shards, StreamShard{Workload: w, Arrivals: times[off:end]})
	}
	return shards, nil
}

package apt

import (
	"math"
	"testing"
)

func TestTuneAlphaFacade(t *testing.T) {
	var cal []*Workload
	for i := 0; i < 3; i++ {
		w, err := GenerateWorkload(Type1, 50+10*i, int64(20170301+i*1000003))
		if err != nil {
			t.Fatal(err)
		}
		cal = append(cal, w)
	}
	m := PaperMachine(4)
	best, points, err := TuneAlpha(cal, m, []float64{1.5, 4, 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Errorf("best α = %v, want 4", best)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].MakespanMs >= points[0].MakespanMs {
		t.Errorf("no improvement at α=4: %+v", points)
	}
}

func TestTuneAlphaFacadeValidation(t *testing.T) {
	w, _ := GenerateWorkload(Type1, 10, 1)
	if _, _, err := TuneAlpha([]*Workload{w}, nil, nil, nil); err == nil {
		t.Error("nil machine accepted")
	}
	if _, _, err := TuneAlpha([]*Workload{nil}, PaperMachine(4), nil, nil); err == nil {
		t.Error("nil workload accepted")
	}
	if _, _, err := TuneAlpha(nil, PaperMachine(4), nil, nil); err == nil {
		t.Error("empty calibration accepted")
	}
}

func TestReplayFacade(t *testing.T) {
	w, err := GenerateWorkload(Type2, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	slow := PaperMachine(4)
	orig, err := Run(w, slow, APT(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Identical environment: identical makespan.
	same, err := Run(w, slow, Replay(orig), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same.MakespanMs-orig.MakespanMs) > 1e-6 {
		t.Errorf("replay makespan %v != original %v", same.MakespanMs, orig.MakespanMs)
	}
	if same.Policy != "Replay(APT)" {
		t.Errorf("policy = %q", same.Policy)
	}
	// What-if: faster links, same decisions.
	fast := PaperMachine(8)
	whatIf, err := Run(w, fast, Replay(orig), nil)
	if err != nil {
		t.Fatal(err)
	}
	if whatIf.MakespanMs > orig.MakespanMs+1e-6 {
		t.Errorf("faster links slower: %v vs %v", whatIf.MakespanMs, orig.MakespanMs)
	}
	// Replay without a source errors.
	if _, err := Run(w, slow, Replay(nil), nil); err == nil {
		t.Error("nil replay source accepted")
	}
}

package apt

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestScaleSmoke is the CI guard for the large-graph path: a 1k-kernel
// layered DAG and a 1k-kernel fork-join mesh run end to end (validation
// included) on a 12-processor machine under both a dynamic and a static
// policy. It stays fast enough for the race-enabled test matrix.
func TestScaleSmoke(t *testing.T) {
	m, err := ScaleMachine(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	layered, err := GenerateLayeredWorkload(1000, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	forkjoin, err := GenerateForkJoinWorkload(1000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		w    *Workload
		p    Policy
	}{
		{"layered/APT", layered, APT(4)},
		{"layered/HEFT", layered, HEFT()},
		{"forkjoin/APT", forkjoin, APT(4)},
		{"forkjoin/PEFT", forkjoin, PEFT()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.w, m, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Kernels) != 1000 {
				t.Fatalf("kernels = %d", len(res.Kernels))
			}
			if res.MakespanMs <= 0 {
				t.Fatalf("makespan = %v", res.MakespanMs)
			}
		})
	}
}

func TestScaleGeneratorShapes(t *testing.T) {
	w, err := GenerateLayeredWorkload(5000, 10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumKernels() != 5000 {
		t.Fatalf("layered kernels = %d", w.NumKernels())
	}
	// Bounded fan-in: at most n·fanIn edges, and at least one per non-entry.
	if w.NumDeps() > 5000*4 {
		t.Fatalf("layered deps = %d exceeds fan-in bound", w.NumDeps())
	}
	if w.NumDeps() < 4000 {
		t.Fatalf("layered deps = %d suspiciously sparse", w.NumDeps())
	}

	fj, err := GenerateForkJoinWorkload(1300, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fj.NumKernels() != 1300 {
		t.Fatalf("forkjoin kernels = %d", fj.NumKernels())
	}

	if _, err := GenerateLayeredWorkload(0, 0, 0, 1); err == nil {
		t.Error("expected error for zero-kernel layered workload")
	}
	if _, err := GenerateForkJoinWorkload(-1, 0, 1); err == nil {
		t.Error("expected error for negative fork-join workload")
	}
	if _, err := ScaleMachine(0, 4); err == nil {
		t.Error("expected error for zero-processor machine")
	}
}

// resultFingerprint serialises the exported surface of a result for exact
// comparison across runs.
func resultFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScaleBatchDeterminism proves a 10k-kernel RunBatch is byte-identical
// across worker counts (1, 4, NumCPU): worker-memoised cost oracles and
// policy instances must never leak order dependence into results.
func TestScaleBatchDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-kernel batch in -short mode")
	}
	w, err := GenerateLayeredWorkload(10_000, 0, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ScaleMachine(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Six configs over the same workload: an α pair, two static policies
	// (exercising prepared-plan reuse), one dynamic baseline and one paced
	// variant — enough to keep several workers busy at once.
	configs := []RunConfig{
		{Workload: w, Machine: m, Policy: APT(2)},
		{Workload: w, Machine: m, Policy: APT(4)},
		{Workload: w, Machine: m, Policy: HEFT()},
		{Workload: w, Machine: m, Policy: PEFT()},
		{Workload: w, Machine: m, Policy: SPN()},
		{Workload: w, Machine: m, Policy: HEFT(), Options: &Options{SchedOverheadMs: 1}},
	}
	var baseline []string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		results, err := RunBatch(context.Background(), configs, &BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		prints := make([]string, len(results))
		for i, res := range results {
			prints[i] = resultFingerprint(t, res)
		}
		if baseline == nil {
			baseline = prints
			continue
		}
		for i := range prints {
			if prints[i] != baseline[i] {
				t.Fatalf("workers=%d: config %d result differs from single-worker baseline", workers, i)
			}
		}
	}
}

// TestScaleLaneDeterminism is the lane-count matrix: a 10k-kernel run must
// be byte-identical for every Lanes value — 0 (the default, serial), 1, 2,
// 4 and one-per-CPU — under both a dynamic and a static policy, with the
// schedule re-validated through the lane-parallel validator each time.
func TestScaleLaneDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-kernel lane matrix in -short mode")
	}
	w, err := GenerateLayeredWorkload(10_000, 0, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ScaleMachine(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{APT(4), HEFT()} {
		var baseline string
		for _, lanes := range []int{0, 1, 2, 4, runtime.NumCPU(), -1} {
			res, err := Run(w, m, pol, &Options{Lanes: lanes})
			if err != nil {
				t.Fatalf("%v lanes=%d: %v", pol, lanes, err)
			}
			fp := resultFingerprint(t, res)
			if baseline == "" {
				baseline = fp
				continue
			}
			if fp != baseline {
				t.Fatalf("%v lanes=%d: result differs from serial baseline", pol, lanes)
			}
		}
	}
}

// TestScale1MDeterminism drives the engine at the million-kernel design
// point: one 1M-kernel layered DAG scheduled serially and with one lane per
// CPU must agree byte for byte. Skipped under -short and under -race — the
// two runs move gigabytes of cost table and placement state (the race-
// instrumented lane interactions are covered at 10k by the lane matrix
// above, which CI does run with -race).
func TestScale1MDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-kernel run in -short mode")
	}
	if raceEnabled {
		t.Skip("1M-kernel run under the race detector")
	}
	w, err := GenerateLayeredWorkload(1_000_000, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ScaleMachine(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(w, m, HEFT(), &Options{Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Kernels) != 1_000_000 {
		t.Fatalf("kernels = %d", len(serial.Kernels))
	}
	parallel, err := Run(w, m, HEFT(), &Options{Lanes: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Field-by-field comparison instead of a JSON fingerprint: marshalling
	// two million KernelRuns would cost more memory than the runs themselves.
	if len(parallel.Kernels) != len(serial.Kernels) {
		t.Fatalf("kernel rows %d vs %d", len(parallel.Kernels), len(serial.Kernels))
	}
	for i := range serial.Kernels {
		if serial.Kernels[i] != parallel.Kernels[i] {
			t.Fatalf("kernel row %d differs between serial and per-CPU lanes", i)
		}
	}
	if len(parallel.Procs) != len(serial.Procs) {
		t.Fatalf("proc rows %d vs %d", len(parallel.Procs), len(serial.Procs))
	}
	for i := range serial.Procs {
		if serial.Procs[i] != parallel.Procs[i] {
			t.Fatalf("proc row %d differs between serial and per-CPU lanes", i)
		}
	}
	if serial.MakespanMs != parallel.MakespanMs ||
		serial.LambdaTotalMs != parallel.LambdaTotalMs ||
		serial.Sojourn != parallel.Sojourn ||
		serial.QueueWait != parallel.QueueWait {
		t.Fatal("headline metrics differ between serial and per-CPU lanes")
	}
}

// TestFloat32CostsDeterminism pins the float32 cost-table contract: the
// option changes estimates (quantisation is documented as NOT byte-identical
// to float64) but each mode is internally deterministic across lane counts,
// and every schedule still validates.
func TestFloat32CostsDeterminism(t *testing.T) {
	w, err := GenerateLayeredWorkload(1000, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ScaleMachine(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	var baseline string
	for _, lanes := range []int{0, 2, -1} {
		res, err := Run(w, m, HEFT(), &Options{Float32Costs: true, Lanes: lanes})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if res.MakespanMs <= 0 {
			t.Fatalf("lanes=%d: makespan %v", lanes, res.MakespanMs)
		}
		fp := resultFingerprint(t, res)
		if baseline == "" {
			baseline = fp
			continue
		}
		if fp != baseline {
			t.Fatalf("lanes=%d: float32 result differs across lane counts", lanes)
		}
	}
}

package apt

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestScaleSmoke is the CI guard for the large-graph path: a 1k-kernel
// layered DAG and a 1k-kernel fork-join mesh run end to end (validation
// included) on a 12-processor machine under both a dynamic and a static
// policy. It stays fast enough for the race-enabled test matrix.
func TestScaleSmoke(t *testing.T) {
	m, err := ScaleMachine(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	layered, err := GenerateLayeredWorkload(1000, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	forkjoin, err := GenerateForkJoinWorkload(1000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		w    *Workload
		p    Policy
	}{
		{"layered/APT", layered, APT(4)},
		{"layered/HEFT", layered, HEFT()},
		{"forkjoin/APT", forkjoin, APT(4)},
		{"forkjoin/PEFT", forkjoin, PEFT()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.w, m, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Kernels) != 1000 {
				t.Fatalf("kernels = %d", len(res.Kernels))
			}
			if res.MakespanMs <= 0 {
				t.Fatalf("makespan = %v", res.MakespanMs)
			}
		})
	}
}

func TestScaleGeneratorShapes(t *testing.T) {
	w, err := GenerateLayeredWorkload(5000, 10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumKernels() != 5000 {
		t.Fatalf("layered kernels = %d", w.NumKernels())
	}
	// Bounded fan-in: at most n·fanIn edges, and at least one per non-entry.
	if w.NumDeps() > 5000*4 {
		t.Fatalf("layered deps = %d exceeds fan-in bound", w.NumDeps())
	}
	if w.NumDeps() < 4000 {
		t.Fatalf("layered deps = %d suspiciously sparse", w.NumDeps())
	}

	fj, err := GenerateForkJoinWorkload(1300, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fj.NumKernels() != 1300 {
		t.Fatalf("forkjoin kernels = %d", fj.NumKernels())
	}

	if _, err := GenerateLayeredWorkload(0, 0, 0, 1); err == nil {
		t.Error("expected error for zero-kernel layered workload")
	}
	if _, err := GenerateForkJoinWorkload(-1, 0, 1); err == nil {
		t.Error("expected error for negative fork-join workload")
	}
	if _, err := ScaleMachine(0, 4); err == nil {
		t.Error("expected error for zero-processor machine")
	}
}

// resultFingerprint serialises the exported surface of a result for exact
// comparison across runs.
func resultFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScaleBatchDeterminism proves a 10k-kernel RunBatch is byte-identical
// across worker counts (1, 4, NumCPU): worker-memoised cost oracles and
// policy instances must never leak order dependence into results.
func TestScaleBatchDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-kernel batch in -short mode")
	}
	w, err := GenerateLayeredWorkload(10_000, 0, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ScaleMachine(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Six configs over the same workload: an α pair, two static policies
	// (exercising prepared-plan reuse), one dynamic baseline and one paced
	// variant — enough to keep several workers busy at once.
	configs := []RunConfig{
		{Workload: w, Machine: m, Policy: APT(2)},
		{Workload: w, Machine: m, Policy: APT(4)},
		{Workload: w, Machine: m, Policy: HEFT()},
		{Workload: w, Machine: m, Policy: PEFT()},
		{Workload: w, Machine: m, Policy: SPN()},
		{Workload: w, Machine: m, Policy: HEFT(), Options: &Options{SchedOverheadMs: 1}},
	}
	var baseline []string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		results, err := RunBatch(context.Background(), configs, &BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		prints := make([]string, len(results))
		for i, res := range results {
			prints[i] = resultFingerprint(t, res)
		}
		if baseline == nil {
			baseline = prints
			continue
		}
		for i := range prints {
			if prints[i] != baseline[i] {
				t.Fatalf("workers=%d: config %d result differs from single-worker baseline", workers, i)
			}
		}
	}
}

# Development entry points; CI runs the same commands (see
# .github/workflows/ci.yml).

# Benchmarks recorded into the repository's perf trajectory (ns/op, B/op,
# allocs/op snapshots that future PRs can gate against). Keep this filter
# in sync with the bench-regression job's -bench pattern.
BENCH_FILTER ?= BenchmarkRun|BenchmarkEngineRun|BenchmarkStreamRunner|BenchmarkScale|BenchmarkSweep|BenchmarkBatchSweep|BenchmarkOnlineSubmit|BenchmarkOnlineRetry|BenchmarkMetricsRender
BENCH_RECORD ?= BENCH_PR10.json

.PHONY: test build vet lint bench bench-record

build:
	go build ./...

vet:
	go vet ./...

# lint runs the full static gate: formatting, go vet, then the repo's own
# interprocedural analyzer suite (determinism, hotpath, lockorder, goleak,
# concurrency, floatcmp — see ci/lint). CI's lint job runs exactly this
# target, plus a -json artifact pass. The suite loads export data from the
# build cache; a warm cache (`make build`) keeps the run in the seconds.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	go vet ./...
	go run ./ci/lint ./...

test:
	go test ./...

bench:
	go test -run '^$$' -bench '$(BENCH_FILTER)' -benchmem ./...

# bench-record refreshes the committed perf snapshot: run it on a quiet
# machine and commit the updated $(BENCH_RECORD) alongside perf-sensitive
# changes. Compare against an older record with ci/benchgate after
# converting, or diff the JSON directly.
bench-record:
	go test -run '^$$' -bench '$(BENCH_FILTER)' -benchmem -count 3 -timeout 30m ./... \
		| go run ./ci/benchrecord -o $(BENCH_RECORD)

// Online host: the APT rule applied to real work at runtime, not in
// simulation. A host process dispatches a burst of mixed tasks across
// three worker "processors" whose relative speeds mirror the paper's
// CPU/GPU/FPGA lookup table (scaled down to microseconds so the demo runs
// instantly). Compare α=1 (MET-style strict waiting) against α=4: the
// flexible scheduler finishes the burst faster by overflowing contended
// work onto alternative workers.
//
//	go run ./examples/online-host
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/online"
)

// taskKind mirrors a lookup-table row: estimated cost per processor in
// milliseconds (also used as the simulated execution sleep).
type taskKind struct {
	name string
	est  []float64 // CPU, GPU, FPGA
}

var kinds = []taskKind{
	{"matmul", []float64{26, 0.1, 95}}, // GPU-dominant, like the paper's matmul
	{"nw", []float64{1.1, 1.5, 4.0}},   // CPU-best with a close GPU alternative
	{"bfs", []float64{3.3, 1.7, 1.1}},  // FPGA-best with a close GPU alternative
	{"cd", []float64{1.7, 0.3, 0.01}},  // FPGA-dominant
}

func runBurst(alpha float64, tasks int) (time.Duration, online.Stats, error) {
	s, err := online.New(3, alpha)
	if err != nil {
		return 0, online.Stats{}, err
	}
	s.Start()
	defer s.Close()

	start := time.Now()
	var handles []*online.Handle
	for i := 0; i < tasks; i++ {
		k := kinds[i%len(kinds)]
		h, err := s.Submit(online.Task{
			Name:  fmt.Sprintf("%s-%d", k.name, i),
			EstMs: k.est,
			Run: func(ctx context.Context, p online.ProcID) error {
				// Simulate device execution: sleep the estimated time.
				select {
				case <-time.After(time.Duration(k.est[p] * float64(time.Millisecond))):
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			},
		})
		if err != nil {
			return 0, online.Stats{}, err
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res := <-h.Done; res.Err != nil {
			return 0, online.Stats{}, res.Err
		}
	}
	return time.Since(start), s.Stats(), nil
}

func main() {
	const tasks = 40
	for _, alpha := range []float64{1, 4, 16} {
		elapsed, stats, err := runBurst(alpha, tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("α=%-3g %d tasks in %8.1f ms  (alternative assignments: %d, per-proc %v)\n",
			alpha, tasks, float64(elapsed.Microseconds())/1000, stats.AltAssignments, stats.PerProc)
	}
	fmt.Println("\nα=1 waits for each task's best worker (MET); larger α overflows")
	fmt.Println("contended work within the threshold, shortening the burst makespan.")
}

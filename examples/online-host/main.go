// Online host: the APT rule applied to real work at runtime, not in
// simulation.
//
// Default mode — in-process demo. A host process dispatches a burst of
// mixed tasks across three worker "processors" whose relative speeds
// mirror the paper's CPU/GPU/FPGA lookup table (scaled down so the demo
// runs instantly). Compare α=1 (MET-style strict waiting) against α=4:
// the flexible scheduler finishes the burst faster by overflowing
// contended work onto alternative workers within the threshold. The demo
// then submits a task DAG with SubmitGraph (dependencies release as
// predecessors finish) and prints the live sojourn / queue-wait
// percentiles the sharded scheduler collects. A final fault-tolerance
// pass injects crashes on one processor and shows retries, attempt
// counts and the circuit breaker tripping and recovering.
//
//	go run ./examples/online-host
//
// Load-generator mode — point it at a running aptserve:
//
//	go run ./cmd/aptserve -addr :8080 -procs 3 -speed 1000 &
//	go run ./examples/online-host -url http://localhost:8080 -n 200 -c 8
//
// posts n tasks from c concurrent clients to /v1/submit, fetches
// /v1/stats for the server-side percentile summary, then scrapes
// /v1/metrics and prints the Prometheus exposition — so the example
// doubles as a manual check of the ops surface.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/online"
)

// taskKind mirrors a lookup-table row: estimated cost per processor in
// milliseconds (also used as the simulated execution sleep).
type taskKind struct {
	name string
	est  []float64 // CPU, GPU, FPGA
}

var kinds = []taskKind{
	{"matmul", []float64{26, 0.1, 95}}, // GPU-dominant, like the paper's matmul
	{"nw", []float64{1.1, 1.5, 4.0}},   // CPU-best with a close GPU alternative
	{"bfs", []float64{3.3, 1.7, 1.1}},  // FPGA-best with a close GPU alternative
	{"cd", []float64{1.7, 0.3, 0.01}},  // FPGA-dominant
}

func sleepRun(est []float64) func(context.Context, online.ProcID) error {
	return func(ctx context.Context, p online.ProcID) error {
		select {
		case <-time.After(time.Duration(est[p] * float64(time.Millisecond))):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func runBurst(alpha float64, tasks int) (time.Duration, online.Stats, error) {
	s, err := online.New(3, alpha)
	if err != nil {
		return 0, online.Stats{}, err
	}
	s.Start()
	defer s.Close()

	start := time.Now()
	var handles []*online.Handle
	for i := 0; i < tasks; i++ {
		k := kinds[i%len(kinds)]
		h, err := s.Submit(online.Task{
			Name:  fmt.Sprintf("%s-%d", k.name, i),
			EstMs: k.est,
			Run:   sleepRun(k.est),
		})
		if err != nil {
			return 0, online.Stats{}, err
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res := <-h.Done; res.Err != nil {
			return 0, online.Stats{}, res.Err
		}
	}
	return time.Since(start), s.Stats(), nil
}

// runGraph submits a small imaging-style pipeline as one DAG: a decode
// fans out to two independent filters which join into a final encode.
func runGraph() error {
	s, err := online.New(3, 4)
	if err != nil {
		return err
	}
	s.Start()
	defer s.Close()

	node := func(name string, est []float64, deps ...int) online.GraphTask {
		return online.GraphTask{
			Task: online.Task{Name: name, EstMs: est, Run: sleepRun(est)},
			Deps: deps,
		}
	}
	h, err := s.SubmitGraph([]online.GraphTask{
		node("decode", []float64{1.0, 2.0, 4.0}),
		node("denoise", []float64{5.0, 0.5, 3.0}, 0),
		node("resize", []float64{0.8, 1.2, 2.0}, 0),
		node("encode", []float64{1.5, 1.0, 6.0}, 1, 2),
	})
	if err != nil {
		return err
	}
	res := <-h.Done
	if res.Err != nil {
		return res.Err
	}
	fmt.Println("\ngraph pipeline (decode → {denoise, resize} → encode):")
	for _, r := range res.Results {
		fmt.Printf("  %-8s ran on processor %d (alt=%v)\n", r.Task.Name, r.Proc, r.Alt)
	}
	st := s.Stats()
	fmt.Printf("  live latency: sojourn p50 %.2f ms p99 %.2f ms, queue-wait p99 %.2f ms\n",
		st.Sojourn.P50Ms, st.Sojourn.P99Ms, st.QueueWait.P99Ms)
	return nil
}

// runFaults demonstrates the fault-tolerance layer: a flaky "GPU" fails
// every first attempt for a while, tripping its circuit breaker; retries
// with seeded backoff move work to the alternatives until the breaker's
// half-open probe finds the processor healthy again.
func runFaults() error {
	s, err := online.NewWithConfig(online.Config{
		Procs:            3,
		Alpha:            8,
		DefaultTimeoutMs: 250,
		Retry: online.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  8 * time.Millisecond,
			JitterSeed:  1,
		},
		Breaker: &online.BreakerConfig{
			FailureThreshold: 2,
			Cooldown:         30 * time.Millisecond,
		},
	})
	if err != nil {
		return err
	}
	s.Start()
	defer s.Close()

	// Injected faults: the GPU (proc 1) crashes every Run for the first
	// 40 ms of the demo.
	fp, err := online.ParseFaultPlan("crash:1:0:40", 7)
	if err != nil {
		return err
	}
	fp.Begin()

	fmt.Println("\nfault demo (proc 1 crashing for 40 ms, retries + breaker on):")
	var handles []*online.Handle
	for i := 0; i < 12; i++ {
		k := kinds[i%len(kinds)]
		name := fmt.Sprintf("%s-%d", k.name, i)
		h, err := s.Submit(online.Task{
			Name:  name,
			EstMs: k.est,
			Run:   fp.Wrap(name, sleepRun(k.est)),
		})
		if err != nil {
			return err
		}
		handles = append(handles, h)
		time.Sleep(5 * time.Millisecond) // spread arrivals across the window
	}
	for _, h := range handles {
		res := <-h.Done
		if res.Err != nil {
			fmt.Printf("  %-10s FAILED after %d attempts: %v\n", res.Task.Name, res.Attempts, res.Err)
		} else if res.Attempts > 1 {
			fmt.Printf("  %-10s recovered on attempt %d (processor %d)\n", res.Task.Name, res.Attempts, res.Proc)
		}
	}
	st := s.Stats()
	fmt.Printf("  retries %d, timeouts %d, breaker trips %d, failed %d/%d\n",
		st.Retries, st.Timeouts, st.BreakerTrips, st.Failed, st.Submitted)
	for _, ph := range s.ProcHealth() {
		fmt.Printf("  proc %d: %-9s (healthy=%v, trips=%d)\n", ph.Proc, ph.State, ph.Healthy, ph.Trips)
	}
	return nil
}

// loadGenerate drives a running aptserve over HTTP: n tasks from c
// concurrent clients, then the server-side /stats summary.
func loadGenerate(url string, n, c int) error {
	type submitReq struct {
		Name  string    `json:"name"`
		EstMs []float64 `json:"est_ms"`
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	errCh := make(chan error, c)
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += c {
				k := kinds[i%len(kinds)]
				body, _ := json.Marshal(submitReq{Name: fmt.Sprintf("%s-%d", k.name, i), EstMs: k.est})
				resp, err := client.Post(url+"/v1/submit", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("submit %d: status %d", i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return err
	default:
	}

	resp, err := client.Get(url + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st online.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("%d tasks over HTTP in %.1f ms (%.0f tasks/s, %d clients)\n",
		n, float64(elapsed.Microseconds())/1000, float64(n)/elapsed.Seconds(), c)
	fmt.Printf("server: completed %d, alt assignments %d, per-proc %v, α %.2f\n",
		st.Completed, st.AltAssignments, st.PerProc, st.Alpha)
	fmt.Printf("sojourn    p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms\n",
		st.Sojourn.P50Ms, st.Sojourn.P95Ms, st.Sojourn.P99Ms)
	fmt.Printf("queue wait p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms\n",
		st.QueueWait.P50Ms, st.QueueWait.P95Ms, st.QueueWait.P99Ms)

	// Final ops check: what a Prometheus scrape of this server would see.
	mresp, err := client.Get(url + "/v1/metrics")
	if err != nil {
		return err
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("\n/v1/metrics scrape:\n%s", body)
	return nil
}

func main() {
	url := flag.String("url", "", "aptserve base URL; when set, run as an HTTP load generator")
	n := flag.Int("n", 200, "load generator: number of tasks")
	c := flag.Int("c", 8, "load generator: concurrent clients")
	flag.Parse()

	if *url != "" {
		if err := loadGenerate(*url, *n, *c); err != nil {
			log.Fatal(err)
		}
		return
	}

	const tasks = 40
	for _, alpha := range []float64{1, 4, 16} {
		elapsed, stats, err := runBurst(alpha, tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("α=%-3g %d tasks in %8.1f ms  (alternative assignments: %d, per-proc %v)\n",
			alpha, tasks, float64(elapsed.Microseconds())/1000, stats.AltAssignments, stats.PerProc)
	}
	fmt.Println("\nα=1 waits for each task's best worker (MET); larger α overflows")
	fmt.Println("contended work within the threshold, shortening the burst makespan.")
	if err := runGraph(); err != nil {
		log.Fatal(err)
	}
	if err := runFaults(); err != nil {
		log.Fatal(err)
	}
}

// Custom platform: the library is not limited to the paper's one-of-each
// system. This example builds an asymmetric cluster node — two CPUs, two
// GPUs and one FPGA, with a fast NVLink-style connection between the GPUs
// and slower PCIe elsewhere — and shows how extra processor instances
// change the scheduling picture: MET's weakness (waiting for the single
// best device) fades when best-kind devices are duplicated, and APT's
// advantage concentrates on the kernels whose best device is still unique.
//
//	go run ./examples/custom-platform
package main

import (
	"fmt"
	"log"

	"repro/apt"
)

func build(gpus int) (*apt.Machine, error) {
	mb := apt.NewMachine()
	mb.AddProc(apt.CPU, "cpu0")
	mb.AddProc(apt.CPU, "cpu1")
	var gpuIDs []int
	for i := 0; i < gpus; i++ {
		gpuIDs = append(gpuIDs, mb.AddProc(apt.GPU, fmt.Sprintf("gpu%d", i)))
	}
	mb.AddProc(apt.FPGA, "fpga0")
	mb.UniformRate(4)
	// GPU-to-GPU traffic rides a much faster direct link.
	for i := 0; i < len(gpuIDs); i++ {
		for j := i + 1; j < len(gpuIDs); j++ {
			mb.LinkRate(gpuIDs[i], gpuIDs[j], 25)
		}
	}
	return mb.Build()
}

func main() {
	wl, err := apt.GenerateWorkload(apt.Type2, 90, 7)
	if err != nil {
		log.Fatal(err)
	}

	for _, gpus := range []int{1, 2} {
		machine, err := build(gpus)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", machine)
		for _, pol := range []apt.Policy{apt.MET(1), apt.APT(4), apt.HEFT()} {
			res, err := apt.Run(wl, machine, pol, nil)
			if err != nil {
				log.Fatal(err)
			}
			extra := ""
			if res.Alt.Assignments > 0 {
				extra = fmt.Sprintf("   (%d alternative assignments)", res.Alt.AltAssignments)
			}
			fmt.Printf("  %-5s makespan %12.3f ms%s\n", res.Policy, res.MakespanMs, extra)
		}
		fmt.Println()
	}
	fmt.Println("Duplicating the GPU narrows the MET-vs-APT gap: waiting for \"the\"")
	fmt.Println("best processor is cheap when there are two of them. APT still wins by")
	fmt.Println("rerouting the kernels whose best device remains contended.")
}

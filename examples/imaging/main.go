// Imaging: a hand-built medical-imaging pipeline in the spirit of the
// workloads that motivate the thesis (Skalicky et al.'s transmural
// electrophysiological imaging and Binotto et al.'s X-ray processing, both
// distributed across CPU+GPU+FPGA).
//
// The pipeline processes a batch of image frames. Each frame is denoised
// (SRAD), then a linear system is solved against a shared model: Cholesky
// decomposition of the covariance (once), then per-frame matrix inversion
// and matrix-matrix products, followed by a sequence-alignment scoring pass
// (NW) and a connectivity check on the reconstruction mesh (BFS). The
// frames join into a final aggregation product.
//
//	go run ./examples/imaging
package main

import (
	"fmt"
	"log"

	"repro/apt"
)

const frames = 6

func buildPipeline() (*apt.Workload, error) {
	wb := apt.NewWorkload()

	// Shared model preparation: one big Cholesky decomposition.
	chol := wb.AddKernel("cd", 16000000)

	// Final aggregation: one matrix-matrix product over all frames.
	agg := wb.AddKernel("matmul", 16000000)

	for f := 0; f < frames; f++ {
		denoise := wb.AddKernel("srad", 134217728)
		invert := wb.AddKernel("mi", 4000000)
		project := wb.AddKernel("matmul", 4000000)
		align := wb.AddKernel("nw", 16777216)
		connect := wb.AddKernel("bfs", 2034736)

		wb.AddDep(denoise, project) // denoised frame feeds the projection
		wb.AddDep(chol, invert)     // model factorisation feeds inversion
		wb.AddDep(invert, project)  // inverted operator applied to frame
		wb.AddDep(project, align)   // projected frame scored
		wb.AddDep(project, connect) // and mesh-checked
		wb.AddDep(align, agg)       // both analyses feed aggregation
		wb.AddDep(connect, agg)
	}
	return wb.Build()
}

func main() {
	wl, err := buildPipeline()
	if err != nil {
		log.Fatal(err)
	}
	machine := apt.PaperMachine(8) // PCIe 2.0 x16

	fmt.Printf("imaging pipeline: %d frames, %d kernels, %d dependencies\n\n",
		frames, wl.NumKernels(), wl.NumDeps())

	// MET waits for each kernel's best processor — the GPU becomes the
	// bottleneck for the SRAD/inversion work. APT overflows to the CPU and
	// FPGA when the detour stays within threshold.
	runs := []struct {
		label string
		pol   apt.Policy
	}{
		{"MET", apt.MET(1)},
		{"APT(α=2)", apt.APT(2)},
		{"APT(α=4)", apt.APT(4)},
		{"APT(α=8)", apt.APT(8)},
		{"APT-R(α=4)", apt.APTR(4)},
	}
	for _, r := range runs {
		res, err := apt.Run(wl, machine, r.pol, nil)
		if err != nil {
			log.Fatal(err)
		}
		label := r.label
		if res.Alt.AltAssignments > 0 {
			label = fmt.Sprintf("%s alt=%d", r.label, res.Alt.AltAssignments)
		}
		fmt.Printf("%-16s makespan %10.3f ms   λ total %10.3f ms\n",
			label, res.MakespanMs, res.LambdaTotalMs)
	}

	// Show the winning schedule end to end.
	best, err := apt.Run(wl, machine, apt.APT(4), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(best.Utilisation())
}

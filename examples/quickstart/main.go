// Quickstart: build the paper's CPU-GPU-FPGA machine, generate a workload,
// and compare APT against the six baseline policies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/apt"
)

func main() {
	// The thesis's evaluation platform: one CPU, one GPU, one FPGA,
	// pairwise PCIe 2.0 x8 links (4 GB/s).
	machine := apt.PaperMachine(4)

	// A DFG Type-2 workload: 60 kernels from the paper's catalog arranged
	// into chains and diamond-shaped blocks, deterministic for seed 42.
	wl, err := apt.GenerateWorkload(apt.Type2, 60, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d kernels, %d dependencies on %s\n\n",
		wl.NumKernels(), wl.NumDeps(), machine)

	policies := []apt.Policy{
		apt.APT(4), // the paper's contribution at its tuned threshold
		apt.MET(1),
		apt.SPN(),
		apt.SS(),
		apt.AG(),
		apt.HEFT(),
		apt.PEFT(),
	}
	results, err := apt.Compare(wl, machine, policies, nil)
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(results, func(i, j int) bool { return results[i].MakespanMs < results[j].MakespanMs })
	fmt.Printf("%-6s  %14s  %14s\n", "policy", "makespan (ms)", "total λ (ms)")
	for _, r := range results {
		fmt.Printf("%-6s  %14.3f  %14.3f\n", r.Policy, r.MakespanMs, r.LambdaTotalMs)
	}

	// Where did APT exercise its flexibility?
	for _, r := range results {
		if r.Policy == "APT" {
			fmt.Printf("\nAPT sent %d of %d kernels to an alternative processor: %v\n",
				r.Alt.AltAssignments, r.Alt.Assignments, r.Alt.ByKernel)
			fmt.Println()
			fmt.Print(r.Utilisation())
		}
	}
}

// Threshold tuning: sweep APT's flexibility factor α to locate the
// "valley" the thesis describes — makespan falls as flexibility grows,
// bottoms out at thresholdbrk, then rises again as APT starts settling for
// processors that are too slow. The right α depends on the degree of
// heterogeneity of the system, which this example demonstrates by running
// the same sweep on a second machine whose links are ten times slower.
//
//	go run ./examples/threshold-tuning
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/apt"
)

var alphas = []float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 32}

func sweep(wls []*apt.Workload, machine *apt.Machine) ([]float64, float64) {
	avg := make([]float64, len(alphas))
	for i, a := range alphas {
		var sum float64
		for _, wl := range wls {
			res, err := apt.Run(wl, machine, apt.APT(a), nil)
			if err != nil {
				log.Fatal(err)
			}
			sum += res.MakespanMs
		}
		avg[i] = sum / float64(len(wls))
	}
	best := 0
	for i := range avg {
		if avg[i] < avg[best] {
			best = i
		}
	}
	return avg, alphas[best]
}

func chart(avg []float64) {
	max := 0.0
	for _, v := range avg {
		if v > max {
			max = v
		}
	}
	for i, v := range avg {
		bar := strings.Repeat("#", int(v/max*50))
		fmt.Printf("  α=%-5g %-50s %.0f ms\n", alphas[i], bar, v)
	}
}

func main() {
	// Ten Type-1 workloads of mixed sizes.
	var wls []*apt.Workload
	for i, n := range []int{46, 58, 50, 73, 69, 81, 125, 93, 132, 157} {
		wl, err := apt.GenerateWorkload(apt.Type1, n, int64(20170301+i*1000003))
		if err != nil {
			log.Fatal(err)
		}
		wls = append(wls, wl)
	}

	fmt.Println("paper machine (4 GB/s links):")
	avg, brk := sweep(wls, apt.PaperMachine(4))
	chart(avg)
	fmt.Printf("  thresholdbrk ≈ α=%g\n\n", brk)

	fmt.Println("slow interconnect (0.4 GB/s links):")
	slow, err := buildSlowMachine()
	if err != nil {
		log.Fatal(err)
	}
	avgSlow, brkSlow := sweep(wls, slow)
	chart(avgSlow)
	fmt.Printf("  thresholdbrk ≈ α=%g\n", brkSlow)
	fmt.Println("\nSlower links make alternative processors more expensive to feed,")
	fmt.Println("shifting the optimum flexibility — α must be tuned per system, as the")
	fmt.Println("thesis concludes.")
}

func buildSlowMachine() (*apt.Machine, error) {
	mb := apt.NewMachine()
	mb.AddProc(apt.CPU, "")
	mb.AddProc(apt.GPU, "")
	mb.AddProc(apt.FPGA, "")
	mb.UniformRate(0.4)
	return mb.Build()
}

// Command aptsim runs one scheduling simulation and prints the schedule
// and its metrics.
//
// Usage:
//
//	aptsim -type 2 -n 50 -seed 7 -policy apt -alpha 4 -rate 4 [-gantt] [-util]
//	aptsim -graph workload.json -policy met
//
// The workload is either generated (-type/-n/-seed, paper catalog) or read
// from a JSON file produced by dfggen (-graph).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/apt"
	"repro/internal/dfg"
)

func main() {
	var (
		typ     = flag.Int("type", 1, "generated DFG type: 1 (parallel level) or 2 (chains and diamond blocks)")
		n       = flag.Int("n", 50, "generated workload size in kernels")
		seed    = flag.Int64("seed", 1, "workload generation seed")
		graph   = flag.String("graph", "", "load workload from this JSON file instead of generating one")
		polName = flag.String("policy", "apt", "scheduling policy: apt, apt-r, met, spn, ss, ag, heft, peft")
		alpha   = flag.Float64("alpha", 4, "APT flexibility factor α (>= 1)")
		metSeed = flag.Int64("met-seed", 1, "MET random-order seed")
		rate    = flag.Float64("rate", 4, "uniform link bandwidth in GB/s")
		over    = flag.Float64("overhead", 0, "per-assignment scheduler overhead in ms")
		gantt   = flag.Bool("gantt", false, "print the full schedule event log")
		util    = flag.Bool("util", false, "print per-processor utilisation")
		trace   = flag.String("trace", "", "write the schedule as a Chrome trace-event file (open in chrome://tracing)")
		energy  = flag.Bool("energy", false, "print an energy estimate under the default power model")
	)
	flag.Parse()
	if err := run(*typ, *n, *seed, *graph, *polName, *alpha, *metSeed, *rate, *over, *gantt, *util, *trace, *energy); err != nil {
		fmt.Fprintln(os.Stderr, "aptsim:", err)
		os.Exit(1)
	}
}

func run(typ, n int, seed int64, graphPath, polName string, alpha float64, metSeed int64,
	rate, overhead float64, gantt, util bool, tracePath string, energy bool) error {

	var w *apt.Workload
	var err error
	if graphPath != "" {
		w, err = loadWorkload(graphPath)
	} else {
		w, err = apt.GenerateWorkload(apt.GraphType(typ), n, seed)
	}
	if err != nil {
		return err
	}

	pol, err := apt.ParsePolicy(polName, alpha, metSeed)
	if err != nil {
		return err
	}
	m := apt.PaperMachine(rate)
	res, err := apt.Run(w, m, pol, &apt.Options{SchedOverheadMs: overhead})
	if err != nil {
		return err
	}

	fmt.Printf("policy    %s\n", res.Policy)
	fmt.Printf("workload  %d kernels, %d dependencies\n", w.NumKernels(), w.NumDeps())
	fmt.Printf("machine   %s at %g GB/s\n", m, rate)
	fmt.Printf("makespan  %.3f ms\n", res.MakespanMs)
	fmt.Printf("λ total   %.3f ms (avg %.3f, stddev %.3f over %d delayed kernels)\n",
		res.LambdaTotalMs, res.LambdaAvgMs, res.LambdaStdMs, countDelayed(res))
	if res.Alt.Assignments > 0 {
		fmt.Printf("APT alternatives: %d of %d assignments", res.Alt.AltAssignments, res.Alt.Assignments)
		if len(res.Alt.ByKernel) > 0 {
			fmt.Printf(" %v", res.Alt.ByKernel)
		}
		fmt.Println()
	}
	if util {
		fmt.Println()
		fmt.Print(res.Utilisation())
	}
	if energy {
		j, err := res.EnergyJ(nil)
		if err != nil {
			return err
		}
		fmt.Printf("energy    %.1f J (default power model)\n", j)
	}
	if gantt {
		fmt.Println()
		fmt.Print(res.Gantt())
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.ChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("trace     wrote %s\n", tracePath)
	}
	return nil
}

func countDelayed(res *apt.Result) int {
	n := 0
	for _, k := range res.Kernels {
		if k.LambdaMs > 0 {
			n++
		}
	}
	return n
}

func loadWorkload(path string) (*apt.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := dfg.ReadJSON(f)
	if err != nil {
		return nil, err
	}
	// Rebuild through the public builder to keep the facade the only
	// construction path for Workload values.
	wb := apt.NewWorkload()
	for _, k := range g.Kernels() {
		wb.AddKernel(k.Name, k.DataElems)
	}
	for u := 0; u < g.NumKernels(); u++ {
		for _, v := range g.Succs(dfg.KernelID(u)) {
			wb.AddDep(u, int(v))
		}
	}
	return wb.Build()
}

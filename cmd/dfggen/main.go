// Command dfggen generates workload graphs in the thesis's two families
// and writes them as JSON (for aptsim) or Graphviz DOT (for inspection).
//
// Usage:
//
//	dfggen -type 2 -n 73 -seed 4 -o graph.json
//	dfggen -type 1 -n 46 -dot graph.dot
//	dfggen -suite 1 -dir out/   # the paper's full 10-graph suite
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func main() {
	var (
		typ   = flag.Int("type", 1, "DFG type: 1 or 2")
		n     = flag.Int("n", 50, "number of kernels")
		seed  = flag.Int64("seed", 1, "generation seed")
		out   = flag.String("o", "", "write JSON to this file (default stdout)")
		dot   = flag.String("dot", "", "also write Graphviz DOT to this file")
		suite = flag.Int("suite", 0, "generate the paper's 10-graph suite for this DFG type into -dir")
		dir   = flag.String("dir", ".", "output directory for -suite")
	)
	flag.Parse()
	if err := run(*typ, *n, *seed, *out, *dot, *suite, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "dfggen:", err)
		os.Exit(1)
	}
}

func run(typ, n int, seed int64, out, dot string, suite int, dir string) error {
	if suite != 0 {
		return writeSuite(workload.GraphType(suite), dir)
	}
	cat := workload.PaperCatalog()
	series := cat.RandomSeries(newRand(seed), n)
	g, err := workload.Build(workload.GraphType(typ), series)
	if err != nil {
		return err
	}
	if dot != "" {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(f, fmt.Sprintf("dfg-type%d-n%d", typ, n)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.WriteJSON(w)
}

func writeSuite(typ workload.GraphType, dir string) error {
	graphs, err := workload.Suite(typ, workload.DefaultSuiteSeed)
	if err != nil {
		return err
	}
	for i, g := range graphs {
		path := filepath.Join(dir, fmt.Sprintf("type%d-exp%02d.json", int(typ), i+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := g.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d kernels, %d edges)\n", path, g.NumKernels(), g.NumEdges())
	}
	return nil
}

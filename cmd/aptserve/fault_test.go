package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/online"
)

// faultCfg enables retries and a hair-trigger breaker for the HTTP-level
// fault tests.
func faultCfg() config {
	return config{
		procs:           2,
		alpha:           1, // strict pinning: est decides the processor
		retries:         3,
		retryBackoff:    time.Millisecond,
		retryMaxBackoff: 2 * time.Millisecond,
		breakerFails:    2,
		breakerCooldown: 50 * time.Millisecond,
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: condition not reached in %v", what, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProcsEndpointAndDegradedHealthz: injected crashes trip proc 0's
// breaker; /v1/procs reports the open state, /v1/healthz turns "degraded"
// (still 200) naming the processor, and stats/metrics agree. The cooldown
// is a minute so the open state cannot flip mid-assertion.
func TestProcsEndpointAndDegradedHealthz(t *testing.T) {
	cfg := faultCfg()
	cfg.retries = 1 // single attempts, so the breaker sees consecutive failures
	cfg.breakerCooldown = time.Minute
	cfg.chaos = "crash:0:0:60000"
	srv, ts := testServer(t, cfg)

	var procs struct {
		Procs []online.ProcHealth `json:"procs"`
	}
	getJSON(t, ts.URL+"/v1/procs", &procs)
	if len(procs.Procs) != 2 {
		t.Fatalf("procs = %+v, want 2", procs.Procs)
	}
	for _, ph := range procs.Procs {
		if ph.State != "closed" || !ph.Healthy {
			t.Fatalf("initial health: %+v", ph)
		}
	}

	// Two tasks pinned to proc 0 fail inside the crash window and trip it.
	for i := 0; i < 2; i++ {
		var out taskResponse
		postJSON(t, ts.URL+"/v1/submit", taskRequest{Name: "pin0", EstMs: []float64{1, 1000}}, &out)
		if out.Err == "" {
			t.Fatalf("task %d survived the crash window", i)
		}
	}
	getJSON(t, ts.URL+"/v1/procs", &procs)
	if procs.Procs[0].State != "open" || procs.Procs[0].Healthy || procs.Procs[0].Trips != 1 {
		t.Fatalf("proc 0 after crashes: %+v, want open", procs.Procs[0])
	}
	if procs.Procs[1].State != "closed" {
		t.Fatalf("proc 1 affected: %+v", procs.Procs[1])
	}

	var hz struct {
		Status    string `json:"status"`
		Unhealthy []int  `json:"unhealthy_procs"`
	}
	getJSON(t, ts.URL+"/v1/healthz", &hz) // getJSON asserts status 200
	if hz.Status != "degraded" || len(hz.Unhealthy) != 1 || hz.Unhealthy[0] != 0 {
		t.Fatalf("healthz while breaker open: %+v, want degraded [0]", hz)
	}

	// Stats and metrics surface the same condition.
	st := srv.sched.Stats()
	if st.BreakerTrips != 1 || st.PerProcHealthy[0] || !st.PerProcHealthy[1] {
		t.Fatalf("stats: trips=%d healthy=%v", st.BreakerTrips, st.PerProcHealthy)
	}
	raw := getText(t, ts.URL+"/v1/metrics")
	for _, want := range []string{
		`apt_breaker_trips_total 1`,
		`apt_proc_healthy{proc="0"} 0`,
		`apt_proc_healthy{proc="1"} 1`,
		`apt_failed_total 2`,
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBreakerRecoveryOverHTTP uses a bounded crash window: after it ends
// and the cooldown fires, the breaker goes half-open (healthz still
// "degraded"), a probe task succeeds on the recovered processor, the
// breaker closes and healthz returns to "ok" — the full trip→recover
// cycle through the API.
func TestBreakerRecoveryOverHTTP(t *testing.T) {
	cfg := faultCfg()
	cfg.retries = 1
	cfg.chaos = "crash:0:0:200"
	_, ts := testServer(t, cfg)

	for i := 0; i < 2; i++ {
		var out taskResponse
		postJSON(t, ts.URL+"/v1/submit", taskRequest{Name: "pin0", EstMs: []float64{1, 1000}}, &out)
		if out.Err == "" {
			t.Fatalf("task %d survived the crash window", i)
		}
	}
	var procs struct {
		Procs []online.ProcHealth `json:"procs"`
	}
	getJSON(t, ts.URL+"/v1/procs", &procs)
	if procs.Procs[0].State == "closed" {
		t.Fatalf("breaker not tripped: %+v", procs.Procs[0])
	}
	// Wait out both the crash window and the cooldown, then probe.
	time.Sleep(250 * time.Millisecond)
	waitCond(t, 5*time.Second, "probe-ready", func() bool {
		getJSON(t, ts.URL+"/v1/procs", &procs)
		return procs.Procs[0].State == "half-open"
	})
	var hz struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/v1/healthz", &hz)
	if hz.Status != "degraded" {
		t.Fatalf("healthz while half-open = %q, want degraded", hz.Status)
	}
	var out taskResponse
	postJSON(t, ts.URL+"/v1/submit", taskRequest{Name: "probe", EstMs: []float64{1, 1000}}, &out)
	if out.Err != "" || out.Proc != 0 {
		t.Fatalf("probe: %+v, want success on proc 0", out)
	}
	getJSON(t, ts.URL+"/v1/procs", &procs)
	if procs.Procs[0].State != "closed" {
		t.Fatalf("breaker did not close after probe: %+v", procs.Procs[0])
	}
	getJSON(t, ts.URL+"/v1/healthz", &hz)
	if hz.Status != "ok" {
		t.Fatalf("healthz after recovery = %q, want ok", hz.Status)
	}
}

// TestRetriesOverHTTP: proc 0 always crashes; the retry budget moves the
// task to proc 1 and the response reports the attempt count.
func TestRetriesOverHTTP(t *testing.T) {
	cfg := faultCfg()
	cfg.alpha = 1000 // admit proc 1 as an alternative
	cfg.breakerFails = 0
	cfg.chaos = "crash:0:0:60000"
	_, ts := testServer(t, cfg)

	var out taskResponse
	postJSON(t, ts.URL+"/v1/submit", taskRequest{Name: "flappy", EstMs: []float64{1, 5}}, &out)
	if out.Err != "" {
		t.Fatalf("task failed despite retries: %+v", out)
	}
	if out.Attempts < 2 || out.Proc != 1 {
		t.Fatalf("got %+v, want attempts >= 2 on proc 1", out)
	}
}

// TestChaosConfigValidation: malformed fault flags refuse to boot.
func TestChaosConfigValidation(t *testing.T) {
	cfg := faultCfg()
	cfg.speed = 1000
	cfg.maxBody = 1 << 20
	cfg.chaos = "explode:everything"
	if _, err := newServer(cfg); err == nil {
		t.Fatal("malformed chaos spec accepted")
	}
	cfg = faultCfg()
	cfg.speed = 1000
	cfg.maxBody = 1 << 20
	cfg.timeoutMs = -1
	if _, err := newServer(cfg); err == nil {
		t.Fatal("negative -timeout accepted")
	}
}

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/online"
)

// submitN pushes n fast tasks through /v1/submit so the scheduler has a
// latency distribution to export.
func submitN(t *testing.T, url string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				var out taskResponse
				postJSON(t, url+"/v1/submit", taskRequest{
					Name:  fmt.Sprintf("load-%d", i),
					EstMs: []float64{1 + float64(i%3), 1 + float64((i+1)%3), 1 + float64((i+2)%3)},
				}, &out)
				if out.Err != "" {
					t.Errorf("task error: %s", out.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestV1MetricsExposition scrapes /v1/metrics after real traffic and
// parses the text format end to end: content type, counter values, and
// histogram bucket monotonicity with le="+Inf" == _count.
func TestV1MetricsExposition(t *testing.T) {
	_, ts := testServer(t, config{})
	const n = 40
	submitN(t, ts.URL, n)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}

	type hist struct {
		les  []float64 // le values in order, +Inf as Inf
		cums []float64
		sum  float64
		cnt  float64
	}
	samples := map[string]float64{}
	hists := map[string]*hist{}
	getHist := func(name string) *hist {
		if hists[name] == nil {
			hists[name] = &hist{}
		}
		return hists[name]
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		key := line[:sp]
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		switch {
		case strings.Contains(key, "_bucket{le="):
			name := key[:strings.Index(key, "_bucket")]
			leStr := key[strings.Index(key, `le="`)+4 : strings.LastIndex(key, `"`)]
			h := getHist(name)
			if leStr == "+Inf" {
				h.les = append(h.les, infFloat())
			} else {
				le, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Fatalf("bad le %q: %v", leStr, err)
				}
				h.les = append(h.les, le)
			}
			h.cums = append(h.cums, v)
		case strings.HasSuffix(key, "_sum"):
			getHist(strings.TrimSuffix(key, "_sum")).sum = v
		case strings.HasSuffix(key, "_count"):
			getHist(strings.TrimSuffix(key, "_count")).cnt = v
		default:
			samples[key] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if got := samples["apt_submitted_total"]; got != n {
		t.Errorf("apt_submitted_total = %v, want %d", got, n)
	}
	if got := samples["apt_completed_total"]; got != n {
		t.Errorf("apt_completed_total = %v, want %d", got, n)
	}
	if got := samples["apt_alpha"]; got != 4 {
		t.Errorf("apt_alpha = %v, want 4", got)
	}
	if samples["apt_uptime_ms"] <= 0 {
		t.Errorf("apt_uptime_ms = %v, want > 0", samples["apt_uptime_ms"])
	}
	var perProc float64
	for p := 0; p < 3; p++ {
		perProc += samples[fmt.Sprintf(`apt_proc_completed_total{proc="%d"}`, p)]
	}
	if perProc != n {
		t.Errorf("per-proc completions sum to %v, want %d", perProc, n)
	}

	for _, name := range []string{"apt_sojourn_ms", "apt_queue_wait_ms"} {
		h := hists[name]
		if h == nil || len(h.les) < 2 {
			t.Fatalf("histogram %s missing or too small: %+v", name, h)
		}
		for i := 1; i < len(h.cums); i++ {
			if h.cums[i] < h.cums[i-1] {
				t.Errorf("%s bucket %d not monotone: %v < %v", name, i, h.cums[i], h.cums[i-1])
			}
			if !(h.les[i] > h.les[i-1]) {
				t.Errorf("%s le %d not increasing: %v after %v", name, i, h.les[i], h.les[i-1])
			}
		}
		last := len(h.cums) - 1
		if h.les[last] != infFloat() {
			t.Errorf("%s last bucket not +Inf", name)
		}
		if h.cums[last] != h.cnt || h.cnt != n {
			t.Errorf("%s +Inf=%v count=%v, want both %d", name, h.cums[last], h.cnt, n)
		}
		if name == "apt_sojourn_ms" && h.sum <= 0 {
			t.Errorf("%s sum = %v, want > 0", name, h.sum)
		}
	}
}

func infFloat() float64 {
	inf, _ := strconv.ParseFloat("+Inf", 64)
	return inf
}

// TestErrorEnvelope: every /v1 failure mode answers with the JSON
// envelope {"error","code"} and the contract's status code.
func TestErrorEnvelope(t *testing.T) {
	_, ts := testServer(t, config{maxBody: 256})
	big := strings.Repeat("x", 512)
	cases := []struct {
		name       string
		method     string
		url        string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed json", "POST", "/v1/submit", `{"name":`, http.StatusBadRequest, "bad_request"},
		{"estimate mismatch", "POST", "/v1/submit", `{"name":"x","est_ms":[1]}`, http.StatusBadRequest, "bad_request"},
		{"oversized body", "POST", "/v1/submit", `{"name":"` + big + `","est_ms":[1,1,1]}`, http.StatusRequestEntityTooLarge, "body_too_large"},
		{"graph cycle", "POST", "/v1/graph", `{"tasks":[{"name":"a","est_ms":[1,1,1],"deps":[1]},{"name":"b","est_ms":[1,1,1],"deps":[0]}]}`, http.StatusBadRequest, "bad_request"},
		{"empty graph", "POST", "/v1/graph", `{"tasks":[]}`, http.StatusBadRequest, "bad_request"},
		{"unknown endpoint", "GET", "/v1/nope", "", http.StatusNotFound, "not_found"},
		{"trace disabled", "GET", "/v1/trace", "", http.StatusNotFound, "trace_disabled"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.url, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Errorf("status %d, want %d", resp.StatusCode, c.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("content type %q, want application/json", ct)
			}
			var env errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("error response not the JSON envelope: %v", err)
			}
			if env.Code != c.wantCode {
				t.Errorf("code %q, want %q", env.Code, c.wantCode)
			}
			if env.Error == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestQueueFull429: with one processor and a queue bound of 1, a third
// concurrent task must be refused with 429 + Retry-After.
func TestQueueFull429(t *testing.T) {
	srv, ts := testServer(t, config{procs: 1, alpha: 4, queueLimit: 1, speed: 1})
	// Two long-running tasks: whichever submits first occupies the single
	// processor, the other fills the queue's one slot and stays there.
	done := make(chan struct{}, 2)
	for _, name := range []string{"hog-a", "hog-b"} {
		name := name
		go func() {
			defer func() { done <- struct{}{} }()
			var out taskResponse
			postJSON(t, ts.URL+"/v1/submit", taskRequest{
				Name: name, EstMs: []float64{1}, ActualMs: []float64{800},
			}, &out)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.sched.Stats()
		if st.Queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	var env errorResponse
	resp := postJSON(t, ts.URL+"/v1/submit", taskRequest{
		Name: "rejected", EstMs: []float64{1},
	}, &env)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if env.Code != "queue_full" {
		t.Errorf("code %q, want queue_full", env.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.shutdown(ctx)
	<-done
	<-done
}

// TestV1Trace: with tracing enabled, /v1/trace returns a Chrome trace
// JSON array whose exec slices carry the placement-quality args.
func TestV1Trace(t *testing.T) {
	_, ts := testServer(t, config{traceDepth: 8})
	submitN(t, ts.URL, 12)

	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var rows []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatalf("trace not a JSON array: %v", err)
	}
	slices := 0
	for _, r := range rows {
		if r["ph"] != "X" {
			continue
		}
		slices++
		args, ok := r["args"].(map[string]any)
		if !ok {
			t.Fatalf("slice missing args: %v", r)
		}
		for _, k := range []string{"queue_wait_ms", "est_ms", "best_est_ms", "actual_ms", "seq"} {
			if _, ok := args[k]; !ok {
				t.Errorf("slice args missing %q", k)
			}
		}
	}
	if slices != 8 { // ring keeps the last traceDepth of the 12
		t.Fatalf("trace has %d slices, want 8", slices)
	}
}

// TestHealthzDraining: /healthz flips to 503 once shutdown begins.
func TestHealthzDraining(t *testing.T) {
	srv, ts := testServer(t, config{})
	var health map[string]any
	getJSON(t, ts.URL+"/v1/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
	close(srv.draining)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.shutdown(ctx)
}

// TestDeprecatedAliases: the PR 5 unversioned routes still work and are
// marked deprecated.
func TestDeprecatedAliases(t *testing.T) {
	_, ts := testServer(t, config{})
	var out taskResponse
	resp := postJSON(t, ts.URL+"/submit", taskRequest{Name: "old", EstMs: []float64{26, 0.1, 95}}, &out)
	if resp.StatusCode != http.StatusOK || out.Proc != 1 {
		t.Fatalf("alias /submit: status %d resp %+v", resp.StatusCode, out)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Errorf("alias missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/submit") {
		t.Errorf("alias Link header %q does not point at /v1/submit", link)
	}
	var st map[string]any
	getJSON(t, ts.URL+"/stats", &st)
	if st["submitted"].(float64) != 1 {
		t.Fatalf("alias /stats: %v", st)
	}
}

// TestSnapshotCycleHTTP is the server-level zero-loss proof: kill a
// server mid-graph, assert the snapshot lands on disk, boot a second
// server from it and watch the captured tasks finish.
func TestSnapshotCycleHTTP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	cfg := config{procs: 1, alpha: 4, speed: 1, snapshotPath: path, maxBody: 1 << 20}
	srv, ts := testServer(t, cfg)

	// A slow chain: the entry runs ~2 s, so the drain bound below expires
	// with the successors still pending.
	go func() {
		var out graphResponse
		postJSON(t, ts.URL+"/v1/graph", graphRequest{Tasks: []graphTaskRequest{
			{taskRequest: taskRequest{Name: "slow", EstMs: []float64{1}, ActualMs: []float64{2000}}},
			{taskRequest: taskRequest{Name: "after1", EstMs: []float64{1}, ActualMs: []float64{0}}, Deps: []int{0}},
			{taskRequest: taskRequest{Name: "after2", EstMs: []float64{1}, ActualMs: []float64{0}}, Deps: []int{1}},
		}}, &out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.sched.Stats().Submitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("graph never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	srv.shutdown(ctx) // drain bound expires; snapshot written

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var snapCount int
	{
		var sn struct {
			Version int `json:"version"`
			Graphs  []struct {
				Tasks []json.RawMessage `json:"tasks"`
			} `json:"graphs"`
		}
		if err := json.Unmarshal(data, &sn); err != nil {
			t.Fatalf("snapshot not JSON: %v", err)
		}
		if sn.Version != online.SnapshotVersion || len(sn.Graphs) != 1 {
			t.Fatalf("snapshot shape: %s", data)
		}
		snapCount = len(sn.Graphs[0].Tasks)
	}
	if snapCount != 3 { // slow was executing (at-least-once) + 2 successors
		t.Fatalf("snapshot carries %d tasks, want 3: %s", snapCount, data)
	}

	// Second life: restore on boot, everything completes, file consumed.
	cfg2 := cfg
	cfg2.speed = 1000 // replay fast
	srv2, err := newServer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.restore(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("snapshot file not consumed after restore")
	}
	deadline = time.Now().Add(10 * time.Second)
	for srv2.sched.Stats().Completed < snapCount {
		if time.Now().After(deadline) {
			t.Fatalf("restored tasks never finished: %+v", srv2.sched.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	final := srv2.shutdown(ctx2)
	if final.Completed != snapCount || final.Submitted != snapCount {
		t.Fatalf("restored server stats %+v, want %d completed", final, snapCount)
	}
}

// aptserve is an HTTP/JSON front end over the online scheduler: an APT
// placement service a host process (or a load generator) can feed live
// work into.
//
//	aptserve -addr :8080 -procs 4 -alpha 4 -snapshot state.json
//
// The API is versioned under /v1. Data-plane endpoints:
//
//	POST /v1/submit   — one task: {"name","est_ms":[...],"xfer_ms":[...],"actual_ms":[...]}
//	                    blocks until the task finishes, returns the placement
//	                    and measured latencies. 429 when the admission queue
//	                    is full, 409 once draining has begun.
//	POST /v1/graph    — a task DAG: {"tasks":[{"name","est_ms","deps":[...]},...]}
//	                    dependencies release as predecessors finish; returns
//	                    per-task placements and the graph makespan.
//
// Ops endpoints (the config plane):
//
//	GET  /v1/stats    — live scheduler statistics: counters, current α and
//	                    sojourn / queue-wait percentiles, as JSON.
//	GET  /v1/metrics  — the same telemetry as Prometheus text-format
//	                    exposition, including full latency histograms.
//	GET  /v1/trace    — the last -trace-depth completions as a Chrome
//	                    trace-event JSON array (load in chrome://tracing).
//	GET  /v1/snapshot — the scheduler's accepted-but-unfinished work as a
//	                    versioned JSON snapshot (see -snapshot).
//	GET  /v1/procs    — per-processor health: circuit-breaker state,
//	                    consecutive failures, trips.
//	GET  /healthz     — readiness: {"status":"ok",...} when fully healthy;
//	                    {"status":"degraded",...} (still 200) while any
//	                    processor's breaker is open or half-open; 503 only
//	                    while draining. "degraded" means the service keeps
//	                    accepting and completing work on reduced capacity —
//	                    load balancers should keep routing to it, while
//	                    operators investigate the named processors.
//
// Every JSON error uses the envelope {"error": "...", "code": "..."}.
// The original unversioned routes (/submit, /graph, /stats) remain as
// deprecated aliases of their /v1 counterparts and answer with a
// "Deprecation: true" header.
//
// Tasks "execute" by sleeping their actual_ms on the chosen processor
// (divided by -speed, so demos and smoke tests run fast); actual_ms
// defaults to est_ms. On SIGINT/SIGTERM the server stops accepting HTTP
// requests and drains the scheduler (bounded by -drain-timeout). With
// -snapshot FILE, work that does not finish within the drain bound is
// written to FILE and reloaded on the next boot, so a restart loses no
// accepted tasks (at-least-once: a task that was mid-execution runs
// again). The final stats are printed as JSON on stderr.
//
// Fault tolerance: -timeout bounds each execution attempt, -retries N
// gives every task N attempts with exponential backoff (-retry-backoff,
// -retry-max-backoff, -retry-seed), and -breaker-fails enables
// per-processor circuit breakers (-breaker-cooldown, -breaker-window,
// -breaker-timeout-rate). -chaos SPEC injects seeded faults (crash/hang
// windows, flaky processors or task kinds, added latency — see
// online.ParseFaultPlan) into every task for resilience smoke tests.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/telemetry"
	"repro/online"
)

type config struct {
	procs        int
	alpha        float64
	queueLimit   int
	speed        float64
	autoTune     bool
	drainTimeout time.Duration
	snapshotPath string
	traceDepth   int
	maxBody      int64

	timeoutMs       float64
	retries         int
	retryBackoff    time.Duration
	retryMaxBackoff time.Duration
	retrySeed       int64

	breakerFails       int // 0 disables the circuit breakers
	breakerCooldown    time.Duration
	breakerWindow      int
	breakerTimeoutRate float64

	chaos     string
	chaosSeed int64
}

// server glues the HTTP handlers to one online.Scheduler.
type server struct {
	sched    *online.Scheduler
	cfg      config
	chaos    *online.FaultPlan // nil without -chaos
	start    time.Time
	draining chan struct{} // closed when shutdown begins; healthz turns 503
}

func newServer(cfg config) (*server, error) {
	if cfg.speed <= 0 {
		return nil, fmt.Errorf("aptserve: -speed must be positive, got %v", cfg.speed)
	}
	if cfg.maxBody <= 0 {
		return nil, fmt.Errorf("aptserve: -max-body must be positive, got %d", cfg.maxBody)
	}
	if cfg.timeoutMs < 0 {
		return nil, fmt.Errorf("aptserve: -timeout must be >= 0, got %v", cfg.timeoutMs)
	}
	sc := online.Config{
		Procs:            cfg.procs,
		Alpha:            cfg.alpha,
		QueueLimit:       cfg.queueLimit,
		TraceDepth:       cfg.traceDepth,
		DefaultTimeoutMs: cfg.timeoutMs,
		Retry: online.RetryPolicy{
			MaxAttempts: cfg.retries,
			BaseBackoff: cfg.retryBackoff,
			MaxBackoff:  cfg.retryMaxBackoff,
			JitterSeed:  cfg.retrySeed,
		},
	}
	if cfg.autoTune {
		sc.AutoTune = &online.AutoTuneConfig{}
	}
	if cfg.breakerFails > 0 {
		sc.Breaker = &online.BreakerConfig{
			FailureThreshold: cfg.breakerFails,
			Cooldown:         cfg.breakerCooldown,
			Window:           cfg.breakerWindow,
			TimeoutRate:      cfg.breakerTimeoutRate,
		}
	}
	var chaos *online.FaultPlan
	if cfg.chaos != "" {
		fp, err := online.ParseFaultPlan(cfg.chaos, cfg.chaosSeed)
		if err != nil {
			return nil, err
		}
		chaos = fp
	}
	sched, err := online.NewWithConfig(sc)
	if err != nil {
		return nil, err
	}
	sched.Start()
	if chaos != nil {
		chaos.Begin()
	}
	return &server{sched: sched, cfg: cfg, chaos: chaos, start: time.Now(), draining: make(chan struct{})}, nil
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/graph", s.handleGraph)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/procs", s.handleProcs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	// Unknown /v1 paths get the JSON envelope, not the default text 404.
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		apiError(w, http.StatusNotFound, "not_found", fmt.Errorf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	// PR 5 routes, kept as deprecated aliases of the /v1 handlers.
	mux.HandleFunc("POST /submit", deprecated(s.handleSubmit))
	mux.HandleFunc("POST /graph", deprecated(s.handleGraph))
	mux.HandleFunc("GET /stats", deprecated(s.handleStats))
	return mux
}

// deprecated marks an unversioned alias per RFC 9745 and points clients at
// the versioned successor.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func apiError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}

// decode parses a bounded JSON request body; on failure it writes the
// error envelope and returns false.
func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			apiError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		apiError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("decode: %w", err))
		return false
	}
	return true
}

// submitFailure maps scheduler admission errors to the API contract.
func submitFailure(err error) (int, string) {
	switch {
	case errors.Is(err, online.ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, online.ErrClosed):
		return http.StatusConflict, "draining"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, "cancelled"
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

type taskRequest struct {
	Name     string    `json:"name"`
	EstMs    []float64 `json:"est_ms"`
	XferMs   []float64 `json:"xfer_ms,omitempty"`
	ActualMs []float64 `json:"actual_ms,omitempty"`
}

type taskResponse struct {
	Name        string  `json:"name"`
	Proc        int     `json:"proc"`
	Alt         bool    `json:"alt"`
	SojournMs   float64 `json:"sojourn_ms"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	Attempts    int     `json:"attempts,omitempty"`
	Err         string  `json:"err,omitempty"`
}

// task converts a request into a scheduler task whose Run sleeps the
// actual time on the chosen processor, scaled by -speed. The request
// itself rides along as the task's snapshot payload, so a restored server
// can rebuild the same sleep behaviour.
func (s *server) task(req taskRequest) (online.Task, error) {
	actual := req.ActualMs
	if actual == nil {
		actual = req.EstMs
	}
	if len(actual) != len(req.EstMs) {
		return online.Task{}, fmt.Errorf("task %q: %d actual_ms for %d est_ms", req.Name, len(actual), len(req.EstMs))
	}
	for p, a := range actual {
		if a < 0 {
			return online.Task{}, fmt.Errorf("task %q: negative actual_ms %v on processor %d", req.Name, a, p)
		}
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return online.Task{}, fmt.Errorf("task %q: encode payload: %w", req.Name, err)
	}
	run := sleepRun(actual, s.cfg.speed)
	if s.chaos != nil {
		run = s.chaos.Wrap(req.Name, run)
	}
	return online.Task{
		Name:    req.Name,
		EstMs:   req.EstMs,
		XferMs:  req.XferMs,
		Payload: payload,
		Run:     run,
	}, nil
}

// sleepRun builds the standard "execute by sleeping" task body.
func sleepRun(actualMs []float64, speed float64) func(context.Context, online.ProcID) error {
	return func(ctx context.Context, p online.ProcID) error {
		d := time.Duration(actualMs[p] / speed * float64(time.Millisecond))
		if d <= 0 {
			return nil
		}
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// rebuild reconstructs a snapshot task's Run from the taskRequest payload
// the submit handler stored; a payload-less task sleeps its est_ms.
func (s *server) rebuild(st online.SnapshotTask) (func(context.Context, online.ProcID) error, error) {
	req := taskRequest{EstMs: st.EstMs}
	if len(st.Payload) > 0 {
		if err := json.Unmarshal(st.Payload, &req); err != nil {
			return nil, fmt.Errorf("payload: %w", err)
		}
	}
	actual := req.ActualMs
	if len(actual) != len(st.EstMs) {
		actual = st.EstMs
	}
	run := sleepRun(actual, s.cfg.speed)
	if s.chaos != nil {
		run = s.chaos.Wrap(st.Name, run)
	}
	return run, nil
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req taskRequest
	if !s.decode(w, r, &req) {
		return
	}
	task, err := s.task(req)
	if err != nil {
		apiError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	// Fast-fail admission: a full queue is the client's backpressure
	// signal (429 + Retry-After), not a reason to pin a handler goroutine.
	h, err := s.sched.Submit(task)
	if err != nil {
		status, code := submitFailure(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		apiError(w, status, code, err)
		return
	}
	// Don't pin the handler goroutine on an abandoned request: the task
	// keeps running to completion either way, but a disconnected client
	// releases this goroutine immediately.
	var res online.Result
	select {
	case res = <-h.Done:
	case <-r.Context().Done():
		apiError(w, http.StatusServiceUnavailable, "cancelled", r.Context().Err())
		return
	}
	resp := taskResponse{
		Name:        req.Name,
		Proc:        int(res.Proc),
		Alt:         res.Alt,
		SojournMs:   res.SojournMs,
		QueueWaitMs: res.QueueWaitMs,
		Attempts:    res.Attempts,
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

type graphRequest struct {
	Tasks []graphTaskRequest `json:"tasks"`
}

type graphTaskRequest struct {
	taskRequest
	Deps []int `json:"deps,omitempty"`
}

type graphResponse struct {
	ElapsedMs float64        `json:"elapsed_ms"`
	Err       string         `json:"err,omitempty"`
	Results   []taskResponse `json:"results"`
}

func (s *server) handleGraph(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if !s.decode(w, r, &req) {
		return
	}
	tasks := make([]online.GraphTask, len(req.Tasks))
	for i, tr := range req.Tasks {
		task, err := s.task(tr.taskRequest)
		if err != nil {
			apiError(w, http.StatusBadRequest, "bad_request", err)
			return
		}
		tasks[i] = online.GraphTask{Task: task, Deps: tr.Deps}
	}
	start := time.Now()
	h, err := s.sched.SubmitGraph(tasks)
	if err != nil {
		status, code := submitFailure(err)
		apiError(w, status, code, err)
		return
	}
	var res online.GraphResult
	select {
	case res = <-h.Done:
	case <-r.Context().Done():
		// The graph keeps executing; only the abandoned handler returns.
		apiError(w, http.StatusServiceUnavailable, "cancelled", r.Context().Err())
		return
	}
	resp := graphResponse{
		ElapsedMs: durMs(time.Since(start)),
		Results:   make([]taskResponse, len(res.Results)),
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	}
	for i, tr := range res.Results {
		resp.Results[i] = taskResponse{
			Name:        req.Tasks[i].Name,
			Proc:        int(tr.Proc),
			Alt:         tr.Alt,
			SojournMs:   tr.SojournMs,
			QueueWaitMs: tr.QueueWaitMs,
			Attempts:    tr.Attempts,
		}
		if tr.Err != nil {
			resp.Results[i].Err = tr.Err.Error()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	soj, qw := s.sched.LatencyHistograms()
	e := telemetry.SchedulerMetrics(st, soj, qw)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := e.WriteTo(w); err != nil {
		log.Printf("aptserve: metrics write: %v", err)
	}
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	events := s.sched.Trace()
	if events == nil {
		apiError(w, http.StatusNotFound, "trace_disabled",
			fmt.Errorf("placement tracing is disabled; start aptserve with -trace-depth N"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.WriteChromeTrace(w, s.sched.NumProcs(), events); err != nil {
		log.Printf("aptserve: trace write: %v", err)
	}
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sn, err := s.sched.Snapshot()
	if err != nil {
		apiError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	writeJSON(w, http.StatusOK, sn)
}

// handleProcs reports per-processor health: breaker state, consecutive
// failures and trips — the observable form of the register/withdraw
// lifecycle a multi-node cluster will need.
func (s *server) handleProcs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"procs": s.sched.ProcHealth()})
}

// handleHealthz distinguishes three readiness states: "ok" (every breaker
// closed), "degraded" (some breaker open or half-open — still 200, the
// service completes work on reduced capacity; the affected processors are
// listed in "unhealthy_procs") and "draining" (503: shutdown has begun,
// stop routing here).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	default:
	}
	status := "ok"
	var unhealthy []int
	for _, ph := range s.sched.ProcHealth() {
		if ph.State == "open" || ph.State == "half-open" {
			status = "degraded"
			unhealthy = append(unhealthy, int(ph.Proc))
		}
	}
	body := map[string]any{
		"status":    status,
		"procs":     s.sched.NumProcs(),
		"alpha":     s.sched.Alpha(),
		"uptime_ms": durMs(time.Since(s.start)),
	}
	if len(unhealthy) > 0 {
		body["unhealthy_procs"] = unhealthy
	}
	writeJSON(w, http.StatusOK, body)
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// restore loads a boot snapshot if one exists, resubmits its tasks and
// removes the file (it is consumed; the next shutdown writes a fresh one).
func (s *server) restore(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	sn, err := online.ReadSnapshot(f)
	f.Close()
	if err != nil {
		return err
	}
	n, err := online.Restore(context.Background(), s.sched, sn, s.rebuild)
	if err != nil {
		return fmt.Errorf("restored %d of %d tasks: %w", n, sn.Count(), err)
	}
	log.Printf("aptserve: restored %d tasks from snapshot %s", n, path)
	return os.Remove(path)
}

// shutdown quiesces the scheduler; if the drain bound expires with work
// still pending and -snapshot is set, the leftover tasks are captured to
// disk before the hard close. Returns the final stats.
func (s *server) shutdown(ctx context.Context) online.Stats {
	err := s.sched.Quiesce(ctx)
	if err != nil {
		log.Printf("aptserve: drain: %v", err)
		if s.cfg.snapshotPath != "" {
			if werr := s.writeSnapshot(); werr != nil {
				log.Printf("aptserve: snapshot: %v", werr)
			}
		}
	}
	s.sched.Close()
	return s.sched.Stats()
}

// writeSnapshot captures unfinished work atomically (tmp file + rename) so
// a crash mid-write never leaves a truncated snapshot for the next boot.
func (s *server) writeSnapshot() error {
	sn, err := s.sched.Snapshot()
	if err != nil {
		return err
	}
	if sn.Count() == 0 {
		log.Printf("aptserve: no unfinished tasks; skipping snapshot")
		return nil
	}
	tmp := s.cfg.snapshotPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sn.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.cfg.snapshotPath); err != nil {
		os.Remove(tmp)
		return err
	}
	log.Printf("aptserve: wrote %d unfinished tasks to snapshot %s", sn.Count(), s.cfg.snapshotPath)
	return nil
}

func main() {
	var cfg config
	addr := flag.String("addr", ":8080", "listen address")
	flag.IntVar(&cfg.procs, "procs", 4, "number of worker processors")
	flag.Float64Var(&cfg.alpha, "alpha", 4, "flexibility factor α (>= 1)")
	flag.IntVar(&cfg.queueLimit, "queue", online.DefaultQueueLimit, "admission queue bound (negative = unbounded)")
	flag.Float64Var(&cfg.speed, "speed", 1, "divide simulated execution times by this factor")
	flag.BoolVar(&cfg.autoTune, "autotune", false, "auto-tune α from observed alt-assignment regret")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful drain bound on shutdown")
	flag.StringVar(&cfg.snapshotPath, "snapshot", "", "snapshot unfinished work to FILE when the drain bound expires, and restore from it on boot")
	flag.IntVar(&cfg.traceDepth, "trace-depth", 256, "completions kept for GET /v1/trace (0 disables tracing)")
	flag.Int64Var(&cfg.maxBody, "max-body", 1<<20, "maximum JSON request body size in bytes")
	flag.Float64Var(&cfg.timeoutMs, "timeout", 0, "per-attempt execution bound in wall-clock ms (0 = none)")
	flag.IntVar(&cfg.retries, "retries", 1, "execution attempts per task, including the first")
	flag.DurationVar(&cfg.retryBackoff, "retry-backoff", time.Millisecond, "delay before the first retry (doubles per attempt)")
	flag.DurationVar(&cfg.retryMaxBackoff, "retry-max-backoff", time.Second, "cap on the exponential retry backoff")
	flag.Int64Var(&cfg.retrySeed, "retry-seed", 0, "seed for the deterministic retry jitter")
	flag.IntVar(&cfg.breakerFails, "breaker-fails", 0, "consecutive failures that trip a processor's circuit breaker (0 disables breakers)")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", time.Second, "open→half-open cooldown before a recovery probe")
	flag.IntVar(&cfg.breakerWindow, "breaker-window", 20, "attempt outcomes tracked per processor for the timeout-rate rule")
	flag.Float64Var(&cfg.breakerTimeoutRate, "breaker-timeout-rate", 0.5, "fraction of a full window that must time out to trip the breaker")
	flag.StringVar(&cfg.chaos, "chaos", "", "fault-injection spec, e.g. \"flaky:0:0.6,crash:1:0:1500,lat:2:5\" (see online.ParseFaultPlan)")
	flag.Int64Var(&cfg.chaosSeed, "chaos-seed", 1, "seed for the chaos plan's probability draws")
	flag.Parse()

	srv, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.snapshotPath != "" {
		if err := srv.restore(cfg.snapshotPath); err != nil {
			log.Fatalf("aptserve: restore: %v", err)
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("aptserve: listening on %s (procs=%d α=%g autotune=%v)", *addr, cfg.procs, cfg.alpha, cfg.autoTune)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	close(srv.draining)
	log.Printf("aptserve: draining (timeout %s)", cfg.drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("aptserve: http shutdown: %v", err)
	}
	final := srv.shutdown(shutCtx)
	out, _ := json.Marshal(final)
	fmt.Fprintf(os.Stderr, "aptserve: final stats %s\n", out)
}

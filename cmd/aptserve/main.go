// aptserve is an HTTP/JSON front end over the online scheduler: an APT
// placement service a host process (or a load generator) can feed live
// work into.
//
//	aptserve -addr :8080 -procs 4 -alpha 4
//
// Endpoints:
//
//	POST /submit  — one task: {"name","est_ms":[...],"xfer_ms":[...],"actual_ms":[...]}
//	                blocks until the task finishes, returns the placement
//	                and measured latencies.
//	POST /graph   — a task DAG: {"tasks":[{"name","est_ms","deps":[...]},...]}
//	                dependencies release as predecessors finish; returns
//	                per-task placements and the graph makespan.
//	GET  /stats   — live scheduler statistics: counters, current α and
//	                sojourn / queue-wait percentiles.
//	GET  /healthz — liveness: {"status":"ok",...}.
//
// Tasks "execute" by sleeping their actual_ms on the chosen processor
// (divided by -speed, so demos and smoke tests run fast); actual_ms
// defaults to est_ms. On SIGINT/SIGTERM the server stops accepting HTTP
// requests, drains the scheduler (bounded by -drain-timeout) and prints
// the final stats as JSON on stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/online"
)

type config struct {
	procs        int
	alpha        float64
	queueLimit   int
	speed        float64
	autoTune     bool
	drainTimeout time.Duration
}

// server glues the HTTP handlers to one online.Scheduler.
type server struct {
	sched *online.Scheduler
	cfg   config
	start time.Time
}

func newServer(cfg config) (*server, error) {
	if cfg.speed <= 0 {
		return nil, fmt.Errorf("aptserve: -speed must be positive, got %v", cfg.speed)
	}
	sc := online.Config{Procs: cfg.procs, Alpha: cfg.alpha, QueueLimit: cfg.queueLimit}
	if cfg.autoTune {
		sc.AutoTune = &online.AutoTuneConfig{}
	}
	sched, err := online.NewWithConfig(sc)
	if err != nil {
		return nil, err
	}
	sched.Start()
	return &server{sched: sched, cfg: cfg, start: time.Now()}, nil
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /submit", s.handleSubmit)
	mux.HandleFunc("POST /graph", s.handleGraph)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// drain quiesces the scheduler and returns its final stats.
func (s *server) drain(ctx context.Context) (online.Stats, error) {
	err := s.sched.Drain(ctx)
	return s.sched.Stats(), err
}

type taskRequest struct {
	Name     string    `json:"name"`
	EstMs    []float64 `json:"est_ms"`
	XferMs   []float64 `json:"xfer_ms,omitempty"`
	ActualMs []float64 `json:"actual_ms,omitempty"`
}

type taskResponse struct {
	Name        string  `json:"name"`
	Proc        int     `json:"proc"`
	Alt         bool    `json:"alt"`
	SojournMs   float64 `json:"sojourn_ms"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	Err         string  `json:"err,omitempty"`
}

// task converts a request into a scheduler task whose Run sleeps the
// actual time on the chosen processor, scaled by -speed.
func (s *server) task(req taskRequest) (online.Task, error) {
	actual := req.ActualMs
	if actual == nil {
		actual = req.EstMs
	}
	if len(actual) != len(req.EstMs) {
		return online.Task{}, fmt.Errorf("task %q: %d actual_ms for %d est_ms", req.Name, len(actual), len(req.EstMs))
	}
	for p, a := range actual {
		if a < 0 {
			return online.Task{}, fmt.Errorf("task %q: negative actual_ms %v on processor %d", req.Name, a, p)
		}
	}
	speed := s.cfg.speed
	return online.Task{
		Name:   req.Name,
		EstMs:  req.EstMs,
		XferMs: req.XferMs,
		Run: func(ctx context.Context, p online.ProcID) error {
			d := time.Duration(actual[p] / speed * float64(time.Millisecond))
			if d <= 0 {
				return nil
			}
			select {
			case <-time.After(d):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}, nil
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req taskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	task, err := s.task(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	h, err := s.sched.SubmitCtx(r.Context(), task)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, online.ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	// Don't pin the handler goroutine on an abandoned request: the task
	// keeps running to completion either way, but a disconnected client
	// releases this goroutine immediately.
	var res online.Result
	select {
	case res = <-h.Done:
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	resp := taskResponse{
		Name:        req.Name,
		Proc:        int(res.Proc),
		Alt:         res.Alt,
		SojournMs:   res.SojournMs,
		QueueWaitMs: res.QueueWaitMs,
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

type graphRequest struct {
	Tasks []graphTaskRequest `json:"tasks"`
}

type graphTaskRequest struct {
	taskRequest
	Deps []int `json:"deps,omitempty"`
}

type graphResponse struct {
	ElapsedMs float64        `json:"elapsed_ms"`
	Err       string         `json:"err,omitempty"`
	Results   []taskResponse `json:"results"`
}

func (s *server) handleGraph(w http.ResponseWriter, r *http.Request) {
	var req graphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	tasks := make([]online.GraphTask, len(req.Tasks))
	for i, tr := range req.Tasks {
		task, err := s.task(tr.taskRequest)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		tasks[i] = online.GraphTask{Task: task, Deps: tr.Deps}
	}
	start := time.Now()
	h, err := s.sched.SubmitGraph(tasks)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, online.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	var res online.GraphResult
	select {
	case res = <-h.Done:
	case <-r.Context().Done():
		// The graph keeps executing; only the abandoned handler returns.
		httpError(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	resp := graphResponse{
		ElapsedMs: durMs(time.Since(start)),
		Results:   make([]taskResponse, len(res.Results)),
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	}
	for i, tr := range res.Results {
		resp.Results[i] = taskResponse{
			Name:        req.Tasks[i].Name,
			Proc:        int(tr.Proc),
			Alt:         tr.Alt,
			SojournMs:   tr.SojournMs,
			QueueWaitMs: tr.QueueWaitMs,
		}
		if tr.Err != nil {
			resp.Results[i].Err = tr.Err.Error()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"procs":     s.sched.NumProcs(),
		"alpha":     s.sched.Alpha(),
		"uptime_ms": durMs(time.Since(s.start)),
	})
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func main() {
	var cfg config
	addr := flag.String("addr", ":8080", "listen address")
	flag.IntVar(&cfg.procs, "procs", 4, "number of worker processors")
	flag.Float64Var(&cfg.alpha, "alpha", 4, "flexibility factor α (>= 1)")
	flag.IntVar(&cfg.queueLimit, "queue", online.DefaultQueueLimit, "admission queue bound (negative = unbounded)")
	flag.Float64Var(&cfg.speed, "speed", 1, "divide simulated execution times by this factor")
	flag.BoolVar(&cfg.autoTune, "autotune", false, "auto-tune α from observed alt-assignment regret")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful drain bound on shutdown")
	flag.Parse()

	srv, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("aptserve: listening on %s (procs=%d α=%g autotune=%v)", *addr, cfg.procs, cfg.alpha, cfg.autoTune)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("aptserve: draining (timeout %s)", cfg.drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("aptserve: http shutdown: %v", err)
	}
	final, err := srv.drain(shutCtx)
	if err != nil {
		log.Printf("aptserve: drain: %v", err)
	}
	out, _ := json.Marshal(final)
	fmt.Fprintf(os.Stderr, "aptserve: final stats %s\n", out)
}

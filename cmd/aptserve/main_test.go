package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	if cfg.procs == 0 {
		cfg.procs = 3
	}
	if cfg.alpha == 0 {
		cfg.alpha = 4
	}
	if cfg.speed == 0 {
		cfg.speed = 1000 // millisecond estimates run in microseconds
	}
	if cfg.maxBody == 0 {
		cfg.maxBody = 1 << 20
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestServeSmoke is the end-to-end smoke: submit over HTTP, submit a
// dependency graph, read /stats percentiles, then drain. Run with -race
// in CI, it covers the full serving stack.
func TestServeSmoke(t *testing.T) {
	srv, ts := testServer(t, config{})

	var health map[string]any
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	// Single task: GPU-dominant estimates, expect processor 1.
	var sub taskResponse
	resp := postJSON(t, ts.URL+"/submit", taskRequest{
		Name:  "matmul",
		EstMs: []float64{26, 0.1, 95},
	}, &sub)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if sub.Err != "" || sub.Proc != 1 {
		t.Fatalf("submit response %+v, want proc 1", sub)
	}
	if sub.SojournMs <= 0 {
		t.Errorf("sojourn %v, want > 0", sub.SojournMs)
	}

	// Concurrent load so /stats has a distribution to report.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var out taskResponse
				postJSON(t, ts.URL+"/submit", taskRequest{
					Name:  fmt.Sprintf("t%d-%d", g, i),
					EstMs: []float64{1 + float64(i%3), 1 + float64((i+1)%3), 1 + float64((i+2)%3)},
				}, &out)
				if out.Err != "" {
					t.Errorf("task error: %s", out.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Diamond graph: a → {b, c} → d.
	var graph graphResponse
	resp = postJSON(t, ts.URL+"/graph", graphRequest{Tasks: []graphTaskRequest{
		{taskRequest: taskRequest{Name: "a", EstMs: []float64{1, 2, 3}}},
		{taskRequest: taskRequest{Name: "b", EstMs: []float64{2, 1, 3}}, Deps: []int{0}},
		{taskRequest: taskRequest{Name: "c", EstMs: []float64{3, 2, 1}}, Deps: []int{0}},
		{taskRequest: taskRequest{Name: "d", EstMs: []float64{1, 1, 1}}, Deps: []int{1, 2}},
	}}, &graph)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph status %d", resp.StatusCode)
	}
	if graph.Err != "" || len(graph.Results) != 4 {
		t.Fatalf("graph response %+v", graph)
	}
	if graph.ElapsedMs <= 0 {
		t.Errorf("graph elapsed %v, want > 0", graph.ElapsedMs)
	}
	for _, r := range graph.Results {
		if r.SojournMs <= 0 {
			t.Errorf("graph task %q sojourn %v, want > 0 (measured, not fabricated)", r.Name, r.SojournMs)
		}
	}

	var st struct {
		Submitted int `json:"submitted"`
		Completed int `json:"completed"`
		Sojourn   struct {
			Count int     `json:"count"`
			P50Ms float64 `json:"p50_ms"`
			P99Ms float64 `json:"p99_ms"`
		} `json:"sojourn"`
		Alpha float64 `json:"alpha"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	want := 1 + 8*10 + 4
	if st.Completed != want || st.Submitted != want {
		t.Fatalf("stats %+v, want %d completed", st, want)
	}
	if st.Sojourn.Count != want || st.Sojourn.P50Ms <= 0 || st.Sojourn.P99Ms < st.Sojourn.P50Ms {
		t.Fatalf("sojourn summary insane: %+v", st.Sojourn)
	}
	if st.Alpha != 4 {
		t.Errorf("alpha = %v, want 4", st.Alpha)
	}

	// Graceful drain publishes a final snapshot.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final := srv.shutdown(ctx)
	if final.Completed != want {
		t.Fatalf("final stats %+v, want %d completed", final, want)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := testServer(t, config{})
	cases := []struct {
		url  string
		body any
	}{
		{"/submit", taskRequest{Name: "wrong-len", EstMs: []float64{1}}},
		{"/submit", taskRequest{Name: "neg", EstMs: []float64{1, -2, 3}}},
		{"/submit", taskRequest{Name: "actual-mismatch", EstMs: []float64{1, 2, 3}, ActualMs: []float64{1}}},
		{"/graph", graphRequest{Tasks: []graphTaskRequest{
			{taskRequest: taskRequest{Name: "cyc-a", EstMs: []float64{1, 1, 1}}, Deps: []int{1}},
			{taskRequest: taskRequest{Name: "cyc-b", EstMs: []float64{1, 1, 1}}, Deps: []int{0}},
		}}},
		{"/graph", graphRequest{}},
	}
	for _, c := range cases {
		var out map[string]any
		resp := postJSON(t, ts.URL+c.url, c.body, &out)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %+v: status %d, want 400", c.url, c.body, resp.StatusCode)
		}
		if out["error"] == "" {
			t.Errorf("POST %s: no error message", c.url)
		}
	}
}

func TestServeSubmitAfterDrain(t *testing.T) {
	srv, ts := testServer(t, config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.shutdown(ctx)
	var out map[string]any
	resp := postJSON(t, ts.URL+"/v1/submit", taskRequest{Name: "late", EstMs: []float64{1, 1, 1}}, &out)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("submit after drain: status %d, want 409", resp.StatusCode)
	}
	if out["code"] != "draining" {
		t.Fatalf("submit after drain: code %v, want draining", out["code"])
	}
}

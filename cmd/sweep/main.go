// Command sweep explores APT's parameter space beyond the paper's grid:
// a dense α sweep at multiple transfer rates, run in parallel, reporting
// suite-average makespan and λ per point plus the empirical thresholdbrk
// (the α minimising average makespan — the bottom of the paper's valley).
//
// With -stream it switches to the open-system evaluation the paper never
// ran: a multi-thousand-kernel arrival stream, sharded into windows and
// fanned across the batch runner, sweeping arrival rate λ against
// per-policy sojourn-latency percentiles (p50/p95/p99).
//
// With -robust it sweeps estimate-error magnitude × policy: policies keep
// deciding with the clean lookup table while the simulated hardware follows
// a perturbed copy (optionally plus platform-degradation events), and every
// point reports the regret against the perfect-information oracle — "which
// policy survives bad estimates".
//
// Usage:
//
//	sweep -type 2 -alphas 1,1.5,2,3,4,6,8,12,16,24,32 -rates 1,4,8,16
//	sweep -type 1 -policy apt-r    # sweep the future-work variant
//	sweep -type 2 -trace-out best.json   # also export the best-α schedule
//	                                     # as a chrome://tracing JSON trace
//	sweep -stream -arrival poisson -kernels 5000 -gaps 500,1000,2000
//	sweep -stream -arrival bursty -gaps 100,200 -burst-len 2000 -idle-len 8000
//	sweep -stream -arrival trace -trace arrivals.txt
//	sweep -robust -noise uniform -fracs 0,0.1,0.3,0.5 -policies apt,met,heft
//	sweep -robust -noise drift -bias gpu:1.3 -degrade slow:1:2:5000:20000
//
// With -scale it sweeps large synthetic graphs (bounded-fan-in layered
// DAGs or fork-join meshes, up to 100k kernels) × policies on a
// many-processor machine — the large-graph stress mode behind the
// BenchmarkScale suite:
//
//	sweep -scale -scale-sizes 1000,10000,100000 -policies apt,heft -procs 16 -timing
//	sweep -scale -shape forkjoin -width 128 -scale-sizes 50000 -procs 64
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/apt"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	var (
		typ     = flag.Int("type", 1, "DFG type: 1 or 2")
		alphas  = flag.String("alphas", "1,1.5,2,3,4,6,8,12,16,24,32", "comma-separated α values")
		rates   = flag.String("rates", "4,8", "comma-separated link rates in GB/s")
		polName = flag.String("policy", "apt", "apt or apt-r")
		seed    = flag.Int64("seed", 20170301, "workload suite seed")
		sizes   = flag.String("sizes", "46,58,50,73,69,81,125,93,132,157", "kernel counts of the suite graphs")

		stream   = flag.Bool("stream", false, "open-system streaming mode: sweep arrival rate vs latency percentiles")
		arrival  = flag.String("arrival", "poisson", "streaming arrival shape: poisson, periodic, bursty, diurnal or trace")
		kernels  = flag.Int("kernels", 5000, "streaming: total kernels in the stream")
		window   = flag.Int("window", 500, "streaming: kernels per shard window")
		gaps     = flag.String("gaps", "500,1000,2000,4000", "streaming: mean arrival gaps in ms (the λ sweep axis)")
		policies = flag.String("policies", "apt,met,spn,olb,heft", "streaming: comma-separated policies to compare")
		alpha    = flag.Float64("alpha", 4, "streaming: APT flexibility factor")
		rate     = flag.Float64("rate", 4, "streaming: link rate in GB/s")
		tracePth = flag.String("trace", "", "streaming: arrival-trace file (one ms timestamp per line) for -arrival trace")
		burstLen = flag.Float64("burst-len", 2000, "streaming bursty: mean burst duration ms")
		idleLen  = flag.Float64("idle-len", 8000, "streaming bursty: mean idle duration ms")
		period   = flag.Float64("period", 60000, "streaming diurnal: rate cycle period ms")
		amp      = flag.Float64("amp", 0.8, "streaming diurnal: rate amplitude in [0,1)")
		hist     = flag.Bool("hist", false, "streaming: print a sojourn histogram per policy for the last gap")

		scale      = flag.Bool("scale", false, "scale mode: large synthetic graphs × policies on a many-processor machine")
		scaleShape = flag.String("shape", "layered", "scale: graph family — layered or forkjoin")
		scaleSizes = flag.String("scale-sizes", "1000,10000", "scale: kernel counts to sweep")
		procs      = flag.Int("procs", 8, "scale: number of processors (kinds cycle CPU/GPU/FPGA)")
		layers     = flag.Int("layers", 0, "scale layered: dependency levels (0 = default 32)")
		fanIn      = flag.Int("fanin", 0, "scale layered: max predecessors per kernel (0 = default 3)")
		width      = flag.Int("width", 0, "scale forkjoin: parallel kernels per stage (0 = default 64)")
		timing     = flag.Bool("timing", false, "scale: print wall-clock throughput to stderr")
		lanes      = flag.Int("lanes", 0, "scale: parallel lanes per run (0 or 1 serial, -1 one per CPU); output is byte-identical for every value")

		robust  = flag.Bool("robust", false, "robustness mode: sweep estimate-error magnitude vs per-policy regret")
		noise   = flag.String("noise", "uniform", "robustness: noise model — uniform, lognormal or drift")
		fracs   = flag.String("fracs", "0,0.1,0.3,0.5", "robustness: noise magnitudes (the sweep axis)")
		bias    = flag.String("bias", "", "robustness: per-kind estimate bias, e.g. gpu:1.3,cpu:0.9 (actual = estimate × factor)")
		degrade = flag.String("degrade", "", "robustness: degradation events, e.g. slow:1:2:1000:5000,off:2:8000:9000,link:0:1:4:0:2000")
		gap     = flag.Float64("gap", 500, "robustness: Poisson arrival mean gap ms (0 = closed submit-at-zero model)")

		traceOut = flag.String("trace-out", "", "write a Chrome trace (chrome://tracing JSON) of the best-α run on the largest suite graph to FILE (α-sweep mode only)")
	)
	flag.Parse()
	var err error
	switch {
	case *stream:
		err = runStream(os.Stdout, streamConfig{
			arrival: *arrival, kernels: *kernels, window: *window,
			gapCSV: *gaps, policyCSV: *policies, alpha: *alpha, rate: *rate,
			seed: *seed, tracePath: *tracePth,
			burstLen: *burstLen, idleLen: *idleLen, period: *period, amp: *amp,
			hist: *hist,
		})
	case *scale:
		err = runScale(os.Stdout, scaleConfig{
			shape: *scaleShape, sizeCSV: *scaleSizes, policyCSV: *policies,
			procs: *procs, layers: *layers, fanIn: *fanIn, width: *width,
			alpha: *alpha, rate: *rate, seed: *seed, timing: *timing,
			lanes: *lanes,
		})
	case *robust:
		err = runRobust(os.Stdout, robustConfig{
			typ: *typ, sizeCSV: *sizes, fracCSV: *fracs, policyCSV: *policies,
			noise: *noise, biasCSV: *bias, degradeCSV: *degrade,
			alpha: *alpha, rate: *rate, seed: *seed, gapMs: *gap,
		})
	default:
		err = run(os.Stdout, *typ, *alphas, *rates, *polName, *seed, *sizes, *traceOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// robustConfig carries the flags of the robustness mode.
type robustConfig struct {
	typ        int
	sizeCSV    string
	fracCSV    string
	policyCSV  string
	noise      string
	biasCSV    string
	degradeCSV string
	alpha      float64
	rate       float64
	seed       int64
	gapMs      float64
}

// runRobust sweeps estimate-error magnitude × policy over the workload
// suite and reports per-policy regret against the perfect-information
// oracle plus the p99 sojourn tail. Everything is seeded, so reruns print
// byte-identical results.
func runRobust(w io.Writer, cfg robustConfig) error {
	model, err := apt.ParseNoiseModel(cfg.noise)
	if err != nil {
		return err
	}
	fracsMs, err := parseFloats(cfg.fracCSV)
	if err != nil {
		return fmt.Errorf("fracs: %w", err)
	}
	pols, err := parsePolicies(cfg.policyCSV, cfg.alpha)
	if err != nil {
		return err
	}
	biasMap, err := parseBias(cfg.biasCSV)
	if err != nil {
		return err
	}
	var events []apt.DegradeEvent
	if cfg.degradeCSV != "" {
		events, err = apt.ParseDegradeEvents(cfg.degradeCSV)
		if err != nil {
			return err
		}
	}
	workloads, err := suiteWorkloads(cfg.typ, cfg.sizeCSV, cfg.seed)
	if err != nil {
		return err
	}

	rcfg := apt.RobustnessConfig{
		Workloads: workloads,
		Machine:   apt.PaperMachine(cfg.rate),
		Policies:  pols,
		Fracs:     fracsMs,
		Model:     model,
		Bias:      biasMap,
		Events:    events,
		Seed:      cfg.seed,
	}
	if cfg.gapMs > 0 {
		rcfg.Arrivals = func(wl *apt.Workload, i int) ([]float64, error) {
			return apt.PoissonArrivals(wl, cfg.gapMs, cfg.seed+int64(i))
		}
	}
	points, err := apt.RunRobustness(context.Background(), rcfg)
	if err != nil {
		return err
	}

	// Points come back frac-major in config order: one regret table per
	// noise level, then cross-level figures.
	var xLabels []string
	regret := map[string][]float64{}
	p99 := map[string][]float64{}
	var order []string
	for _, p := range pols {
		order = append(order, p.Name())
	}
	for i := 0; i < len(points); i += len(pols) {
		frac := points[i].Frac
		var rows []report.RegretRow
		for _, pt := range points[i : i+len(pols)] {
			rows = append(rows, report.RegretRow{
				Label:        pt.Policy,
				MakespanMs:   pt.MakespanMs,
				OracleMs:     pt.OracleMs,
				RegretPct:    pt.RegretPct,
				P99SojournMs: pt.P99SojournMs,
			})
			regret[pt.Policy] = append(regret[pt.Policy], pt.RegretPct)
			p99[pt.Policy] = append(p99[pt.Policy], pt.P99SojournMs)
		}
		xLabels = append(xLabels, fmt.Sprintf("%g", frac))
		title := fmt.Sprintf("robustness, %s noise frac=%g, %d workloads, gap=%g ms", model, frac, len(workloads), cfg.gapMs)
		if len(events) > 0 {
			title += fmt.Sprintf(", %d degradation events", len(events))
		}
		if err := report.RegretTable(title, rows).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if len(xLabels) > 1 {
		for _, fig := range []struct {
			title, y string
			ys       map[string][]float64
		}{
			{"regret vs estimate-error magnitude", "regret %", regret},
			{"p99 sojourn vs estimate-error magnitude", "p99 sojourn ms", p99},
		} {
			f, err := report.LatencyFigure(fig.title, "noise frac", fig.y, xLabels, order, fig.ys)
			if err != nil {
				return err
			}
			if err := f.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// parsePolicies resolves a comma-separated policy list.
func parsePolicies(csv string, alpha float64) ([]apt.Policy, error) {
	var pols []apt.Policy
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, err := apt.ParsePolicy(name, alpha, 1)
		if err != nil {
			return nil, err
		}
		pols = append(pols, p)
	}
	if len(pols) == 0 {
		return nil, fmt.Errorf("no policies given")
	}
	return pols, nil
}

// parseBias parses "gpu:1.3,cpu:0.9" into a per-kind bias map (empty spec
// -> nil).
func parseBias(csv string) (map[apt.ProcKind]float64, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	out := map[apt.ProcKind]float64{}
	for _, item := range strings.Split(csv, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kv := strings.Split(item, ":")
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed bias %q (want kind:factor)", item)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bias %q: %w", item, err)
		}
		out[apt.ProcKind(strings.ToUpper(strings.TrimSpace(kv[0])))] = v
	}
	return out, nil
}

// suiteWorkloads generates the batch suite the makespan sweep also uses.
func suiteWorkloads(typ int, sizeCSV string, seed int64) ([]*apt.Workload, error) {
	sizesF, err := parseFloats(sizeCSV)
	if err != nil {
		return nil, fmt.Errorf("sizes: %w", err)
	}
	var workloads []*apt.Workload
	for i, sz := range sizesF {
		w, err := apt.GenerateWorkload(apt.GraphType(typ), int(sz), seed+int64(i)*1_000_003)
		if err != nil {
			return nil, err
		}
		workloads = append(workloads, w)
	}
	return workloads, nil
}

// streamConfig carries the flags of the open-system streaming mode.
type streamConfig struct {
	arrival   string
	kernels   int
	window    int
	gapCSV    string
	policyCSV string
	alpha     float64
	rate      float64
	seed      int64
	tracePath string
	burstLen  float64
	idleLen   float64
	period    float64
	amp       float64
	hist      bool
}

// runStream sweeps arrival rate λ against per-policy sojourn-latency
// percentiles over a sharded open-system stream. Everything is seeded, so
// reruns print byte-identical results.
func runStream(w io.Writer, cfg streamConfig) error {
	pols, err := parsePolicies(cfg.policyCSV, cfg.alpha)
	if err != nil {
		return err
	}
	m := apt.PaperMachine(cfg.rate)

	gapsMs, err := parseFloats(cfg.gapCSV)
	if err != nil {
		return fmt.Errorf("gaps: %w", err)
	}
	if cfg.arrival == "trace" {
		gapsMs = []float64{0} // a trace is one operating point, not a sweep
	}

	var xLabels []string
	p99 := map[string][]float64{}
	var order []string
	for _, p := range pols {
		order = append(order, p.Name())
	}
	var lastResults []*apt.StreamResult
	for _, gap := range gapsMs {
		shards, err := buildShards(cfg, gap)
		if err != nil {
			return err
		}
		var rows []report.LatencyRow
		lastResults = lastResults[:0]
		var offered float64
		for _, p := range pols {
			res, err := apt.RunStream(context.Background(), shards, m, p, nil)
			if err != nil {
				return fmt.Errorf("policy %s: %w", p.Name(), err)
			}
			rows = append(rows, report.LatencyRow{Label: p.Name(), S: summaryOf(res.Sojourn)})
			p99[p.Name()] = append(p99[p.Name()], res.Sojourn.P99Ms)
			offered = res.OfferedPerSec
			lastResults = append(lastResults, res)
		}
		label := fmt.Sprintf("%g", gap)
		title := fmt.Sprintf("sojourn latency, arrival=%s, %d kernels in %d-kernel windows, gap=%g ms (offered λ=%.3f/s)",
			cfg.arrival, lastResults[0].Kernels, cfg.window, gap, offered)
		if cfg.arrival == "trace" {
			label = "trace"
			title = fmt.Sprintf("sojourn latency, trace %s, %d kernels in %d-kernel windows (offered λ=%.3f/s)",
				cfg.tracePath, lastResults[0].Kernels, cfg.window, offered)
		}
		xLabels = append(xLabels, label)
		if err := report.LatencyTable(title, rows).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if len(xLabels) > 1 {
		fig, err := report.LatencyFigure("p99 sojourn vs arrival gap", "gap ms", "p99 sojourn ms", xLabels, order, p99)
		if err != nil {
			return err
		}
		if err := fig.Render(w); err != nil {
			return err
		}
	}
	if cfg.hist {
		for i, p := range pols {
			h, err := stats.NewHistogram(1.3)
			if err != nil {
				return err
			}
			for _, s := range lastResults[i].SojournsMs {
				h.Add(s)
			}
			fig := report.HistogramFigure(fmt.Sprintf("%s sojourn distribution (last gap)", p.Name()), "sojourn ms", h)
			if err := fig.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// summaryOf mirrors an already-computed public latency summary back into
// the report layer's type, avoiding a re-sort of the raw samples.
func summaryOf(ls apt.LatencyStats) stats.Summary {
	return stats.Summary{
		Count: ls.Count, Mean: ls.MeanMs, Std: ls.StdMs, Min: ls.MinMs, Max: ls.MaxMs,
		P50: ls.P50Ms, P90: ls.P90Ms, P95: ls.P95Ms, P99: ls.P99Ms,
	}
}

// buildShards constructs the stream's windows for one operating point.
func buildShards(cfg streamConfig, gapMs float64) ([]apt.StreamShard, error) {
	if cfg.arrival == "trace" {
		if cfg.tracePath == "" {
			return nil, fmt.Errorf("-arrival trace requires -trace FILE")
		}
		f, err := os.Open(cfg.tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		times, err := apt.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		return apt.TraceStream(times, cfg.window, cfg.seed)
	}
	gen := func(w *apt.Workload, seed int64) ([]float64, error) {
		switch cfg.arrival {
		case "poisson":
			return apt.PoissonArrivals(w, gapMs, seed)
		case "periodic":
			return apt.PeriodicArrivals(w, gapMs)
		case "bursty":
			return apt.BurstyArrivals(w, apt.BurstyConfig{
				BurstGapMs: gapMs, BurstMs: cfg.burstLen, IdleMs: cfg.idleLen}, seed)
		case "diurnal":
			return apt.DiurnalArrivals(w, apt.DiurnalConfig{
				MeanGapMs: gapMs, PeriodMs: cfg.period, Amplitude: cfg.amp}, seed)
		default:
			return nil, fmt.Errorf("unknown arrival shape %q (known: poisson, periodic, bursty, diurnal, trace)", cfg.arrival)
		}
	}
	return apt.MakeStream(cfg.kernels, cfg.window, cfg.seed, gen)
}

type point struct {
	rate, alpha      float64
	makespan, lambda float64
}

func run(w io.Writer, typ int, alphaCSV, rateCSV, polName string, seed int64, sizeCSV, traceOut string) error {
	alphas, err := parseFloats(alphaCSV)
	if err != nil {
		return fmt.Errorf("alphas: %w", err)
	}
	rates, err := parseFloats(rateCSV)
	if err != nil {
		return fmt.Errorf("rates: %w", err)
	}

	// Pre-generate the suite once; runs share the graphs read-only.
	workloads, err := suiteWorkloads(typ, sizeCSV, seed)
	if err != nil {
		return err
	}

	// Fan the (rate, alpha, workload) grid through the batch runner: one
	// config per simulation, point-major so point i owns configs
	// [i*len(workloads), (i+1)*len(workloads)).
	var points []point
	var cfgs []apt.RunConfig
	for _, r := range rates {
		m := apt.PaperMachine(r)
		for _, a := range alphas {
			pol, err := apt.ParsePolicy(polName, a, 1)
			if err != nil {
				return err
			}
			points = append(points, point{rate: r, alpha: a})
			for _, w := range workloads {
				cfgs = append(cfgs, apt.RunConfig{Workload: w, Machine: m, Policy: pol})
			}
		}
	}
	results, err := apt.RunBatch(context.Background(), cfgs, nil)
	if err != nil {
		return err
	}
	for i := range points {
		var mkSum, lamSum float64
		for _, res := range results[i*len(workloads) : (i+1)*len(workloads)] {
			mkSum += res.MakespanMs
			lamSum += res.LambdaTotalMs
		}
		points[i].makespan = mkSum / float64(len(workloads))
		points[i].lambda = lamSum / float64(len(workloads))
	}

	sort.Slice(points, func(i, j int) bool {
		// Three-way rate comparison (no float equality): exact ties fall
		// through to the alpha tie-break.
		if points[i].rate < points[j].rate {
			return true
		}
		if points[j].rate < points[i].rate {
			return false
		}
		return points[i].alpha < points[j].alpha
	})
	fmt.Fprintf(w, "%-8s %-8s %-16s %-16s\n", "rate", "alpha", "avg makespan ms", "avg lambda ms")
	bestPerRate := map[float64]point{}
	for _, p := range points {
		fmt.Fprintf(w, "%-8g %-8g %-16.3f %-16.3f\n", p.rate, p.alpha, p.makespan, p.lambda)
		if b, ok := bestPerRate[p.rate]; !ok || p.makespan < b.makespan {
			bestPerRate[p.rate] = p
		}
	}
	fmt.Fprintln(w)
	for _, r := range rates {
		b := bestPerRate[r]
		fmt.Fprintf(w, "thresholdbrk at %g GB/s: α = %g (avg makespan %.3f ms)\n", r, b.alpha, b.makespan)
	}

	if traceOut != "" {
		// Re-run the best-α point of the first rate on the largest suite
		// graph and export its placements. The note goes to stderr: stdout
		// is the sweep table, which CI byte-diffs against a golden copy.
		best := bestPerRate[rates[0]]
		pol, err := apt.ParsePolicy(polName, best.alpha, 1)
		if err != nil {
			return err
		}
		biggest := workloads[0]
		for _, wl := range workloads[1:] {
			if wl.NumKernels() > biggest.NumKernels() {
				biggest = wl
			}
		}
		res, err := apt.Run(biggest, apt.PaperMachine(rates[0]), pol, nil)
		if err != nil {
			return err
		}
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := apt.WriteTrace(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote Chrome trace of %d kernels (α=%g, rate=%g GB/s) to %s\n",
			biggest.NumKernels(), best.alpha, rates[0], traceOut)
	}
	return nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// Command sweep explores APT's parameter space beyond the paper's grid:
// a dense α sweep at multiple transfer rates, run in parallel, reporting
// suite-average makespan and λ per point plus the empirical thresholdbrk
// (the α minimising average makespan — the bottom of the paper's valley).
//
// Usage:
//
//	sweep -type 2 -alphas 1,1.5,2,3,4,6,8,12,16,24,32 -rates 1,4,8,16
//	sweep -type 1 -policy apt-r    # sweep the future-work variant
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/apt"
)

func main() {
	var (
		typ     = flag.Int("type", 1, "DFG type: 1 or 2")
		alphas  = flag.String("alphas", "1,1.5,2,3,4,6,8,12,16,24,32", "comma-separated α values")
		rates   = flag.String("rates", "4,8", "comma-separated link rates in GB/s")
		polName = flag.String("policy", "apt", "apt or apt-r")
		seed    = flag.Int64("seed", 20170301, "workload suite seed")
		sizes   = flag.String("sizes", "46,58,50,73,69,81,125,93,132,157", "kernel counts of the suite graphs")
	)
	flag.Parse()
	if err := run(*typ, *alphas, *rates, *polName, *seed, *sizes); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type point struct {
	rate, alpha      float64
	makespan, lambda float64
}

func run(typ int, alphaCSV, rateCSV, polName string, seed int64, sizeCSV string) error {
	alphas, err := parseFloats(alphaCSV)
	if err != nil {
		return fmt.Errorf("alphas: %w", err)
	}
	rates, err := parseFloats(rateCSV)
	if err != nil {
		return fmt.Errorf("rates: %w", err)
	}
	sizesF, err := parseFloats(sizeCSV)
	if err != nil {
		return fmt.Errorf("sizes: %w", err)
	}

	// Pre-generate the suite once; runs share the graphs read-only.
	var workloads []*apt.Workload
	for i, sz := range sizesF {
		w, err := apt.GenerateWorkload(apt.GraphType(typ), int(sz), seed+int64(i)*1_000_003)
		if err != nil {
			return err
		}
		workloads = append(workloads, w)
	}

	// Fan the (rate, alpha, workload) grid through the batch runner: one
	// config per simulation, point-major so point i owns configs
	// [i*len(workloads), (i+1)*len(workloads)).
	var points []point
	var cfgs []apt.RunConfig
	for _, r := range rates {
		m := apt.PaperMachine(r)
		for _, a := range alphas {
			pol, err := apt.ParsePolicy(polName, a, 1)
			if err != nil {
				return err
			}
			points = append(points, point{rate: r, alpha: a})
			for _, w := range workloads {
				cfgs = append(cfgs, apt.RunConfig{Workload: w, Machine: m, Policy: pol})
			}
		}
	}
	results, err := apt.RunBatch(context.Background(), cfgs, nil)
	if err != nil {
		return err
	}
	for i := range points {
		var mkSum, lamSum float64
		for _, res := range results[i*len(workloads) : (i+1)*len(workloads)] {
			mkSum += res.MakespanMs
			lamSum += res.LambdaTotalMs
		}
		points[i].makespan = mkSum / float64(len(workloads))
		points[i].lambda = lamSum / float64(len(workloads))
	}

	sort.Slice(points, func(i, j int) bool {
		if points[i].rate != points[j].rate {
			return points[i].rate < points[j].rate
		}
		return points[i].alpha < points[j].alpha
	})
	fmt.Printf("%-8s %-8s %-16s %-16s\n", "rate", "alpha", "avg makespan ms", "avg lambda ms")
	bestPerRate := map[float64]point{}
	for _, p := range points {
		fmt.Printf("%-8g %-8g %-16.3f %-16.3f\n", p.rate, p.alpha, p.makespan, p.lambda)
		if b, ok := bestPerRate[p.rate]; !ok || p.makespan < b.makespan {
			bestPerRate[p.rate] = p
		}
	}
	fmt.Println()
	for _, r := range rates {
		b := bestPerRate[r]
		fmt.Printf("thresholdbrk at %g GB/s: α = %g (avg makespan %.3f ms)\n", r, b.alpha, b.makespan)
	}
	return nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

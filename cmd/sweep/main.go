// Command sweep explores APT's parameter space beyond the paper's grid:
// a dense α sweep at multiple transfer rates, run in parallel, reporting
// suite-average makespan and λ per point plus the empirical thresholdbrk
// (the α minimising average makespan — the bottom of the paper's valley).
//
// With -stream it switches to the open-system evaluation the paper never
// ran: a multi-thousand-kernel arrival stream, sharded into windows and
// fanned across the batch runner, sweeping arrival rate λ against
// per-policy sojourn-latency percentiles (p50/p95/p99).
//
// Usage:
//
//	sweep -type 2 -alphas 1,1.5,2,3,4,6,8,12,16,24,32 -rates 1,4,8,16
//	sweep -type 1 -policy apt-r    # sweep the future-work variant
//	sweep -stream -arrival poisson -kernels 5000 -gaps 500,1000,2000
//	sweep -stream -arrival bursty -gaps 100,200 -burst-len 2000 -idle-len 8000
//	sweep -stream -arrival trace -trace arrivals.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/apt"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	var (
		typ     = flag.Int("type", 1, "DFG type: 1 or 2")
		alphas  = flag.String("alphas", "1,1.5,2,3,4,6,8,12,16,24,32", "comma-separated α values")
		rates   = flag.String("rates", "4,8", "comma-separated link rates in GB/s")
		polName = flag.String("policy", "apt", "apt or apt-r")
		seed    = flag.Int64("seed", 20170301, "workload suite seed")
		sizes   = flag.String("sizes", "46,58,50,73,69,81,125,93,132,157", "kernel counts of the suite graphs")

		stream   = flag.Bool("stream", false, "open-system streaming mode: sweep arrival rate vs latency percentiles")
		arrival  = flag.String("arrival", "poisson", "streaming arrival shape: poisson, periodic, bursty, diurnal or trace")
		kernels  = flag.Int("kernels", 5000, "streaming: total kernels in the stream")
		window   = flag.Int("window", 500, "streaming: kernels per shard window")
		gaps     = flag.String("gaps", "500,1000,2000,4000", "streaming: mean arrival gaps in ms (the λ sweep axis)")
		policies = flag.String("policies", "apt,met,spn,olb,heft", "streaming: comma-separated policies to compare")
		alpha    = flag.Float64("alpha", 4, "streaming: APT flexibility factor")
		rate     = flag.Float64("rate", 4, "streaming: link rate in GB/s")
		tracePth = flag.String("trace", "", "streaming: arrival-trace file (one ms timestamp per line) for -arrival trace")
		burstLen = flag.Float64("burst-len", 2000, "streaming bursty: mean burst duration ms")
		idleLen  = flag.Float64("idle-len", 8000, "streaming bursty: mean idle duration ms")
		period   = flag.Float64("period", 60000, "streaming diurnal: rate cycle period ms")
		amp      = flag.Float64("amp", 0.8, "streaming diurnal: rate amplitude in [0,1)")
		hist     = flag.Bool("hist", false, "streaming: print a sojourn histogram per policy for the last gap")
	)
	flag.Parse()
	var err error
	if *stream {
		err = runStream(streamConfig{
			arrival: *arrival, kernels: *kernels, window: *window,
			gapCSV: *gaps, policyCSV: *policies, alpha: *alpha, rate: *rate,
			seed: *seed, tracePath: *tracePth,
			burstLen: *burstLen, idleLen: *idleLen, period: *period, amp: *amp,
			hist: *hist,
		})
	} else {
		err = run(*typ, *alphas, *rates, *polName, *seed, *sizes)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// streamConfig carries the flags of the open-system streaming mode.
type streamConfig struct {
	arrival   string
	kernels   int
	window    int
	gapCSV    string
	policyCSV string
	alpha     float64
	rate      float64
	seed      int64
	tracePath string
	burstLen  float64
	idleLen   float64
	period    float64
	amp       float64
	hist      bool
}

// runStream sweeps arrival rate λ against per-policy sojourn-latency
// percentiles over a sharded open-system stream. Everything is seeded, so
// reruns print byte-identical results.
func runStream(cfg streamConfig) error {
	var pols []apt.Policy
	for _, name := range strings.Split(cfg.policyCSV, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, err := apt.ParsePolicy(name, cfg.alpha, 1)
		if err != nil {
			return err
		}
		pols = append(pols, p)
	}
	if len(pols) == 0 {
		return fmt.Errorf("no policies given")
	}
	m := apt.PaperMachine(cfg.rate)

	gapsMs, err := parseFloats(cfg.gapCSV)
	if err != nil {
		return fmt.Errorf("gaps: %w", err)
	}
	if cfg.arrival == "trace" {
		gapsMs = []float64{0} // a trace is one operating point, not a sweep
	}

	var xLabels []string
	p99 := map[string][]float64{}
	var order []string
	for _, p := range pols {
		order = append(order, p.Name())
	}
	var lastResults []*apt.StreamResult
	for _, gap := range gapsMs {
		shards, err := buildShards(cfg, gap)
		if err != nil {
			return err
		}
		var rows []report.LatencyRow
		lastResults = lastResults[:0]
		var offered float64
		for _, p := range pols {
			res, err := apt.RunStream(context.Background(), shards, m, p, nil)
			if err != nil {
				return fmt.Errorf("policy %s: %w", p.Name(), err)
			}
			rows = append(rows, report.LatencyRow{Label: p.Name(), S: summaryOf(res.Sojourn)})
			p99[p.Name()] = append(p99[p.Name()], res.Sojourn.P99Ms)
			offered = res.OfferedPerSec
			lastResults = append(lastResults, res)
		}
		label := fmt.Sprintf("%g", gap)
		title := fmt.Sprintf("sojourn latency, arrival=%s, %d kernels in %d-kernel windows, gap=%g ms (offered λ=%.3f/s)",
			cfg.arrival, lastResults[0].Kernels, cfg.window, gap, offered)
		if cfg.arrival == "trace" {
			label = "trace"
			title = fmt.Sprintf("sojourn latency, trace %s, %d kernels in %d-kernel windows (offered λ=%.3f/s)",
				cfg.tracePath, lastResults[0].Kernels, cfg.window, offered)
		}
		xLabels = append(xLabels, label)
		if err := report.LatencyTable(title, rows).Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if len(xLabels) > 1 {
		fig, err := report.LatencyFigure("p99 sojourn vs arrival gap", "gap ms", "p99 sojourn ms", xLabels, order, p99)
		if err != nil {
			return err
		}
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
	}
	if cfg.hist {
		for i, p := range pols {
			h, err := stats.NewHistogram(1.3)
			if err != nil {
				return err
			}
			for _, s := range lastResults[i].SojournsMs {
				h.Add(s)
			}
			fig := report.HistogramFigure(fmt.Sprintf("%s sojourn distribution (last gap)", p.Name()), "sojourn ms", h)
			if err := fig.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

// summaryOf mirrors an already-computed public latency summary back into
// the report layer's type, avoiding a re-sort of the raw samples.
func summaryOf(ls apt.LatencyStats) stats.Summary {
	return stats.Summary{
		Count: ls.Count, Mean: ls.MeanMs, Std: ls.StdMs, Min: ls.MinMs, Max: ls.MaxMs,
		P50: ls.P50Ms, P90: ls.P90Ms, P95: ls.P95Ms, P99: ls.P99Ms,
	}
}

// buildShards constructs the stream's windows for one operating point.
func buildShards(cfg streamConfig, gapMs float64) ([]apt.StreamShard, error) {
	if cfg.arrival == "trace" {
		if cfg.tracePath == "" {
			return nil, fmt.Errorf("-arrival trace requires -trace FILE")
		}
		f, err := os.Open(cfg.tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		times, err := apt.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		return apt.TraceStream(times, cfg.window, cfg.seed)
	}
	gen := func(w *apt.Workload, seed int64) ([]float64, error) {
		switch cfg.arrival {
		case "poisson":
			return apt.PoissonArrivals(w, gapMs, seed)
		case "periodic":
			return apt.PeriodicArrivals(w, gapMs)
		case "bursty":
			return apt.BurstyArrivals(w, apt.BurstyConfig{
				BurstGapMs: gapMs, BurstMs: cfg.burstLen, IdleMs: cfg.idleLen}, seed)
		case "diurnal":
			return apt.DiurnalArrivals(w, apt.DiurnalConfig{
				MeanGapMs: gapMs, PeriodMs: cfg.period, Amplitude: cfg.amp}, seed)
		default:
			return nil, fmt.Errorf("unknown arrival shape %q (known: poisson, periodic, bursty, diurnal, trace)", cfg.arrival)
		}
	}
	return apt.MakeStream(cfg.kernels, cfg.window, cfg.seed, gen)
}

type point struct {
	rate, alpha      float64
	makespan, lambda float64
}

func run(typ int, alphaCSV, rateCSV, polName string, seed int64, sizeCSV string) error {
	alphas, err := parseFloats(alphaCSV)
	if err != nil {
		return fmt.Errorf("alphas: %w", err)
	}
	rates, err := parseFloats(rateCSV)
	if err != nil {
		return fmt.Errorf("rates: %w", err)
	}
	sizesF, err := parseFloats(sizeCSV)
	if err != nil {
		return fmt.Errorf("sizes: %w", err)
	}

	// Pre-generate the suite once; runs share the graphs read-only.
	var workloads []*apt.Workload
	for i, sz := range sizesF {
		w, err := apt.GenerateWorkload(apt.GraphType(typ), int(sz), seed+int64(i)*1_000_003)
		if err != nil {
			return err
		}
		workloads = append(workloads, w)
	}

	// Fan the (rate, alpha, workload) grid through the batch runner: one
	// config per simulation, point-major so point i owns configs
	// [i*len(workloads), (i+1)*len(workloads)).
	var points []point
	var cfgs []apt.RunConfig
	for _, r := range rates {
		m := apt.PaperMachine(r)
		for _, a := range alphas {
			pol, err := apt.ParsePolicy(polName, a, 1)
			if err != nil {
				return err
			}
			points = append(points, point{rate: r, alpha: a})
			for _, w := range workloads {
				cfgs = append(cfgs, apt.RunConfig{Workload: w, Machine: m, Policy: pol})
			}
		}
	}
	results, err := apt.RunBatch(context.Background(), cfgs, nil)
	if err != nil {
		return err
	}
	for i := range points {
		var mkSum, lamSum float64
		for _, res := range results[i*len(workloads) : (i+1)*len(workloads)] {
			mkSum += res.MakespanMs
			lamSum += res.LambdaTotalMs
		}
		points[i].makespan = mkSum / float64(len(workloads))
		points[i].lambda = lamSum / float64(len(workloads))
	}

	sort.Slice(points, func(i, j int) bool {
		if points[i].rate != points[j].rate {
			return points[i].rate < points[j].rate
		}
		return points[i].alpha < points[j].alpha
	})
	fmt.Printf("%-8s %-8s %-16s %-16s\n", "rate", "alpha", "avg makespan ms", "avg lambda ms")
	bestPerRate := map[float64]point{}
	for _, p := range points {
		fmt.Printf("%-8g %-8g %-16.3f %-16.3f\n", p.rate, p.alpha, p.makespan, p.lambda)
		if b, ok := bestPerRate[p.rate]; !ok || p.makespan < b.makespan {
			bestPerRate[p.rate] = p
		}
	}
	fmt.Println()
	for _, r := range rates {
		b := bestPerRate[r]
		fmt.Printf("thresholdbrk at %g GB/s: α = %g (avg makespan %.3f ms)\n", r, b.alpha, b.makespan)
	}
	return nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/apt"
)

// scaleConfig carries the flags of the large-graph scale mode.
type scaleConfig struct {
	shape     string // layered or forkjoin
	sizeCSV   string // kernel counts, e.g. "1000,10000,100000"
	policyCSV string
	procs     int
	layers    int
	fanIn     int
	width     int
	alpha     float64
	rate      float64
	seed      int64
	timing    bool // wall-clock throughput to stderr (non-deterministic)
	lanes     int  // parallel lanes per run; output byte-identical for every value
}

// runScale sweeps large synthetic graphs × policies on a scale machine:
// for every kernel count it generates one workload (layered random DAG or
// fork-join mesh) and runs every policy on it through the batch runner on
// a single worker, so consecutive runs share one memo and actually
// exercise the prepared-policy reuse path (with the default worker count,
// each of the few per-size configs would land on its own worker and
// prepare the large cost oracle from scratch). The printed table is fully
// seeded and byte-identical across reruns; wall-clock throughput goes to
// stderr only with -timing, keeping stdout diffable.
func runScale(w io.Writer, cfg scaleConfig) error {
	sizes, err := parseFloats(cfg.sizeCSV)
	if err != nil {
		return err
	}
	pols, err := parsePolicies(cfg.policyCSV, cfg.alpha)
	if err != nil {
		return err
	}
	if cfg.shape != "layered" && cfg.shape != "forkjoin" {
		return fmt.Errorf("unknown scale shape %q (layered, forkjoin)", cfg.shape)
	}
	m, err := apt.ScaleMachine(cfg.procs, cfg.rate)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scale sweep: shape=%s procs=%d rate=%g GB/s seed=%d\n\n",
		cfg.shape, cfg.procs, cfg.rate, cfg.seed)
	fmt.Fprintf(w, "%10s %10s %-8s %18s %14s\n", "kernels", "deps", "policy", "makespan ms", "λ avg ms")
	for _, sz := range sizes {
		n := int(sz)
		var wl *apt.Workload
		if cfg.shape == "layered" {
			wl, err = apt.GenerateLayeredWorkload(n, cfg.layers, cfg.fanIn, cfg.seed)
		} else {
			wl, err = apt.GenerateForkJoinWorkload(n, cfg.width, cfg.seed)
		}
		if err != nil {
			return err
		}
		cfgs := make([]apt.RunConfig, len(pols))
		for i, p := range pols {
			cfgs[i] = apt.RunConfig{Workload: wl, Machine: m, Policy: p,
				Options: &apt.Options{Lanes: cfg.lanes}}
		}
		// Side-band throughput timing: the elapsed wall time is printed to
		// stderr only (and only under -timing); the diffed stdout table is
		// built purely from simulated results.
		//lint:wallclock
		start := time.Now()
		results, err := apt.RunBatch(context.Background(), cfgs, &apt.BatchOptions{Workers: 1})
		if err != nil {
			return err
		}
		//lint:wallclock stderr-only throughput report, see above
		elapsed := time.Since(start)
		for _, res := range results {
			fmt.Fprintf(w, "%10d %10d %-8s %18.1f %14.3f\n",
				wl.NumKernels(), wl.NumDeps(), res.Policy, res.MakespanMs, res.LambdaAvgMs)
		}
		if cfg.timing {
			fmt.Fprintf(os.Stderr, "scale: %d kernels × %d policies in %v (%.0f kernels/s simulated)\n",
				n, len(pols), elapsed, float64(n*len(pols))/elapsed.Seconds())
		}
	}
	return nil
}

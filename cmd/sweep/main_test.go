package main

import (
	"bytes"
	"strings"
	"testing"
)

// Every sweep mode is fully seeded, so rerunning the same configuration
// must print byte-identical output — the in-process counterpart of the CI
// determinism gate, which diffs the built binary's output the same way.

func rerunIdentical(t *testing.T, name string, f func(w *bytes.Buffer) error) string {
	t.Helper()
	var a, b bytes.Buffer
	if err := f(&a); err != nil {
		t.Fatalf("%s first run: %v", name, err)
	}
	if err := f(&b); err != nil {
		t.Fatalf("%s second run: %v", name, err)
	}
	if a.Len() == 0 {
		t.Fatalf("%s produced no output", name)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("%s output differs across reruns of the same seed", name)
	}
	return a.String()
}

func TestBatchModeDeterministic(t *testing.T) {
	out := rerunIdentical(t, "batch", func(w *bytes.Buffer) error {
		return run(w, 1, "2,4", "4", "apt", 7, "20,30", "")
	})
	if !strings.Contains(out, "thresholdbrk") {
		t.Errorf("batch output missing thresholdbrk summary:\n%s", out)
	}
}

func TestStreamModeDeterministic(t *testing.T) {
	out := rerunIdentical(t, "stream", func(w *bytes.Buffer) error {
		return runStream(w, streamConfig{
			arrival: "bursty", kernels: 300, window: 100,
			gapCSV: "200,400", policyCSV: "apt,met", alpha: 4, rate: 4,
			seed: 7, burstLen: 1000, idleLen: 3000, hist: true,
		})
	})
	if !strings.Contains(out, "p99 sojourn vs arrival gap") {
		t.Errorf("stream output missing sweep figure:\n%s", out)
	}
}

func TestRobustModeDeterministic(t *testing.T) {
	cfg := robustConfig{
		typ: 1, sizeCSV: "20,30", fracCSV: "0,0.3", policyCSV: "apt,met",
		noise: "uniform", biasCSV: "gpu:1.2", degradeCSV: "slow:1:2:100:4000",
		alpha: 4, rate: 4, seed: 7, gapMs: 50,
	}
	out := rerunIdentical(t, "robust", func(w *bytes.Buffer) error {
		return runRobust(w, cfg)
	})
	for _, want := range []string{"Regret %", "regret vs estimate-error magnitude", "p99 sojourn vs estimate-error magnitude"} {
		if !strings.Contains(out, want) {
			t.Errorf("robust output missing %q:\n%s", want, out)
		}
	}
	// Zero-noise block still has the degradation applied to both the noisy
	// and the oracle run, so the table must render +0.00 regret there.
	if !strings.Contains(out, "+0.00") {
		t.Errorf("robust output missing zero regret at frac 0:\n%s", out)
	}
}

func TestRobustModeRejectsBadFlags(t *testing.T) {
	var w bytes.Buffer
	bad := []robustConfig{
		{typ: 1, sizeCSV: "20", fracCSV: "0", policyCSV: "apt", noise: "gaussian", rate: 4},
		{typ: 1, sizeCSV: "20", fracCSV: "0", policyCSV: "apt", noise: "uniform", biasCSV: "gpu", rate: 4},
		{typ: 1, sizeCSV: "20", fracCSV: "0", policyCSV: "apt", noise: "uniform", degradeCSV: "melt:1:2:3", rate: 4},
		{typ: 1, sizeCSV: "20", fracCSV: "", policyCSV: "apt", noise: "uniform", rate: 4},
		{typ: 1, sizeCSV: "20", fracCSV: "0", policyCSV: "nope", noise: "uniform", rate: 4},
	}
	for i, cfg := range bad {
		if err := runRobust(&w, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestScaleModeDeterministic(t *testing.T) {
	out := rerunIdentical(t, "scale", func(w *bytes.Buffer) error {
		return runScale(w, scaleConfig{
			shape: "layered", sizeCSV: "500,1000", policyCSV: "apt,heft",
			procs: 6, alpha: 4, rate: 4, seed: 7,
		})
	})
	if !strings.Contains(out, "scale sweep") || !strings.Contains(out, "HEFT") {
		t.Errorf("scale output missing table:\n%s", out)
	}
	outFJ := rerunIdentical(t, "scale-forkjoin", func(w *bytes.Buffer) error {
		return runScale(w, scaleConfig{
			shape: "forkjoin", sizeCSV: "500", policyCSV: "apt", procs: 6,
			alpha: 4, rate: 4, seed: 7, width: 32,
		})
	})
	if !strings.Contains(outFJ, "forkjoin") {
		t.Errorf("fork-join scale output missing header:\n%s", outFJ)
	}
}
